package sophon

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each iteration
// regenerates the experiment at paper scale through the evaluation harness
// and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` both times the reproduction and prints the
// numbers EXPERIMENTS.md records.

import (
	"testing"

	"repro/internal/eval"
)

// benchOpts runs experiments at paper scale (40k OpenImages / 91k ImageNet
// samples) with the default seed.
func benchOpts() eval.Options { return eval.Options{Seed: 2024} }

func BenchmarkTable1_CapabilityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.Table1()
		if len(t.Rows) != 5 {
			b.Fatalf("table 1 rows = %d", len(t.Rows))
		}
	}
}

func BenchmarkFigure1a_SizeTrace(b *testing.B) {
	var minA int
	for i := 0; i < b.N; i++ {
		res, _, err := eval.Figure1a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		minA = res.MinStageA()
	}
	b.ReportMetric(float64(minA), "sampleA_min_stage")
}

func BenchmarkFigure1b_MinStageDistribution(b *testing.B) {
	var oi, in float64
	for i := 0; i < b.N; i++ {
		res, _, err := eval.Figure1b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		oi = res.Benefiting["openimages-12g"]
		in = res.Benefiting["imagenet-11g"]
	}
	b.ReportMetric(oi*100, "openimages_benefiting_%")
	b.ReportMetric(in*100, "imagenet_benefiting_%")
}

func BenchmarkFigure1c_EfficiencyCDF(b *testing.B) {
	var zero, p50 float64
	for i := 0; i < b.N; i++ {
		res, _, err := eval.Figure1c(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		zero = res.FractionZero
		p50 = res.PercentileMBps[50]
	}
	b.ReportMetric(zero*100, "zero_efficiency_%")
	b.ReportMetric(p50, "p50_MB_per_cpu_s")
}

func BenchmarkFigure1d_GPUUtilization(b *testing.B) {
	var alexnet, r18, r50 float64
	for i := 0; i < b.N; i++ {
		res, _, err := eval.Figure1d(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		alexnet = res.Utilization["alexnet"]
		r18 = res.Utilization["resnet18"]
		r50 = res.Utilization["resnet50"]
	}
	b.ReportMetric(alexnet*100, "alexnet_util_%")
	b.ReportMetric(r18*100, "resnet18_util_%")
	b.ReportMetric(r50*100, "resnet50_util_%")
}

func BenchmarkFigure3_AmpleCPU(b *testing.B) {
	var oiReduction, inReduction float64
	for i := 0; i < b.N; i++ {
		results, _, err := eval.Figure3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			noOff, _ := res.Run("No-Off")
			sophon, _ := res.Run("SOPHON")
			reduction := noOff.TrafficGB / sophon.TrafficGB
			if res.Dataset == "openimages-12g" {
				oiReduction = reduction
			} else {
				inReduction = reduction
			}
		}
	}
	b.ReportMetric(oiReduction, "openimages_traffic_reduction_x")
	b.ReportMetric(inReduction, "imagenet_traffic_reduction_x")
}

func BenchmarkFigure4_LimitedCPU(b *testing.B) {
	var firstGain, lastGain float64
	for i := 0; i < b.N; i++ {
		res, _, err := eval.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s := res.Runs["SOPHON"]
		firstGain = s[0].EpochSeconds - s[1].EpochSeconds // 0→1 core
		lastGain = s[4].EpochSeconds - s[5].EpochSeconds  // 4→5 cores
	}
	b.ReportMetric(firstGain, "core0to1_gain_s")
	b.ReportMetric(lastGain, "core4to5_gain_s")
}

func BenchmarkHeadline_Speedup(b *testing.B) {
	var minSpeedup, maxReduction float64
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.Headline(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		minSpeedup, maxReduction = rows[0].TimeSpeedup, 0
		for _, r := range rows {
			if r.TimeSpeedup < minSpeedup {
				minSpeedup = r.TimeSpeedup
			}
			if r.TrafficReduction > maxReduction {
				maxReduction = r.TrafficReduction
			}
		}
	}
	b.ReportMetric(minSpeedup, "min_speedup_x")
	b.ReportMetric(maxReduction, "max_traffic_reduction_x")
}

func BenchmarkAblation_StepGuard(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.AblationStepGuard(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		delta = rows[0].BaseSeconds - rows[0].GuardedSeconds
	}
	b.ReportMetric(delta, "guard_gain_at_1core_s")
}

func BenchmarkAblation_SelectiveCompression(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		res, _, err := eval.AblationCompression(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		extra = res.BaseTrafficGB / res.CompTrafficGB
	}
	b.ReportMetric(extra, "extra_traffic_reduction_x")
}

func BenchmarkAblation_HeterogeneousCPU(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.AblationHeterogeneous(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		penalty = rows[len(rows)-1].EpochSeconds / rows[0].EpochSeconds
	}
	b.ReportMetric(penalty, "slow3x_epoch_penalty_x")
}

func BenchmarkAblation_LocalCache(b *testing.B) {
	var sophonVsQuarterCache float64
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.AblationLocalCache(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.CapacityFraction == 0.25 {
				sophonVsQuarterCache = r.CacheSeconds / r.SophonSeconds
			}
		}
	}
	b.ReportMetric(sophonVsQuarterCache, "cache25_over_sophon_x")
}

func BenchmarkAblation_OracleGap(b *testing.B) {
	var gapAt1Core float64
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.AblationOracle(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Cores == 1 {
				gapAt1Core = r.OracleSec / r.SophonSec
			}
		}
	}
	b.ReportMetric(gapAt1Core, "oracle_over_sophon_at_1core_x")
}

func BenchmarkValidation_ModelVsDES(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.ValidateModel(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		maxErr = 0
		for _, r := range rows {
			if r.ErrorPct > maxErr {
				maxErr = r.ErrorPct
			}
		}
	}
	b.ReportMetric(maxErr, "max_model_error_pct")
}

func BenchmarkDiscussionF_BandwidthSweep(b *testing.B) {
	var activations int
	for i := 0; i < b.N; i++ {
		rows, _, err := eval.DiscussionBandwidthSweep(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		activations = 0
		for _, r := range rows {
			if r.Activated {
				activations++
			}
		}
	}
	b.ReportMetric(float64(activations), "io_bound_points")
}

func BenchmarkDiscussionG_LLMWorkload(b *testing.B) {
	var offloaded int
	for i := 0; i < b.N; i++ {
		res, _, err := eval.DiscussionLLM(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		offloaded = res.Offloaded
	}
	b.ReportMetric(float64(offloaded), "samples_offloaded")
}

func BenchmarkAblation_MultiTenant(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := eval.AblationMultiTenant(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gain = res.EvenTotalSeconds - res.SmartTotalSeconds
	}
	b.ReportMetric(gain, "scheduler_gain_s")
}
