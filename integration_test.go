package sophon

// Full-stack integration: a bandwidth-shaped storage server with chaos
// injection, monitored over HTTP, profiled by the two-stage profiler, planned
// by the decision engine, trained with batched fetches + retry + local cache,
// and cross-checked against the discrete-event engine — every subsystem in
// one scenario.

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/monitor"
	"repro/internal/persist"
)

func TestFullStackIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration")
	}
	cluster, err := StartCluster(ClusterConfig{
		DatasetName:     "integration",
		NumSamples:      40,
		Seed:            99,
		MinDim:          128,
		MaxDim:          360,
		CropSize:        64,
		StorageCores:    2,
		BandwidthMbps:   16,
		ChaosConnBudget: 2 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	trainer, err := cluster.NewTrainer(TrainerOptions{
		Workers:        4,
		BatchSize:      8,
		JobID:          17,
		Shuffle:        true,
		FetchBatchSize: 4,
		RetryAttempts:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()

	// Two-stage profiling over the real (shaped, chaotic) link.
	trace, stage1, epoch1, err := trainer.Profile(2)
	if err != nil {
		t.Fatal(err)
	}
	if epoch1.Samples != 40 || trace.N() != 40 {
		t.Fatalf("profiling epoch: %d samples, trace %d", epoch1.Samples, trace.N())
	}

	// Persist the trace and reload it — the profile-once workflow.
	tracePath := t.TempDir() + "/trace.bin"
	if err := persist.SaveTrace(tracePath, trace); err != nil {
		t.Fatal(err)
	}
	reloaded, err := persist.LoadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.N() != trace.N() || reloaded.TotalRawBytes() != trace.TotalRawBytes() {
		t.Fatal("trace changed across persistence")
	}

	// Decide with the measured stage-1 verdict against the real env.
	env := Env{
		Bandwidth:       Mbps(16),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             AlexNet,
	}
	decision, err := DecideMeasured(reloaded, env, stage1)
	if err != nil {
		t.Fatal(err)
	}
	if !decision.Activated || decision.Plan.OffloadedCount() == 0 {
		if raceEnabled {
			// Under the race detector local CPU is ~20× slower while the
			// link is not, so the measured bottleneck legitimately moves
			// from IO to CPU and the gate correctly declines to offload.
			t.Skipf("race detector skews stage-1 probes (stage1 %+v)", stage1)
		}
		t.Fatalf("expected activation on a 16 Mbps link: %+v (stage1 %+v)", decision.Activated, stage1)
	}

	// Train under the plan; traffic must drop versus the profiling epoch.
	epoch2, err := trainer.TrainEpoch(2, decision.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if epoch2.Samples != 40 || epoch2.Offloaded != decision.Plan.OffloadedCount() {
		t.Fatalf("epoch 2: %+v", epoch2)
	}
	if epoch2.BytesFetched >= epoch1.BytesFetched {
		t.Fatalf("offloading did not cut traffic: %d vs %d", epoch2.BytesFetched, epoch1.BytesFetched)
	}

	// The discrete-event engine, replaying the measured trace under the
	// same plan, should agree with the live traffic within framing noise.
	sim, err := SimulateEpoch(reloaded, decision.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sim.TrafficBytes) / float64(epoch2.BytesFetched)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("DES traffic %d vs live %d (%.2fx)", sim.TrafficBytes, epoch2.BytesFetched, ratio)
	}

	// The storage server burned CPU on offloaded prefixes and the HTTP
	// monitor reports it.
	if cluster.ServerCPUNanos() == 0 {
		t.Fatal("no storage CPU recorded")
	}
	mon := monitor.New(nil, cluster.serverCounters())
	addr, err := mon.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		SamplesServed uint64 `json:"samples_served"`
		OpsExecuted   uint64 `json:"ops_executed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.SamplesServed == 0 || stats.OpsExecuted == 0 {
		t.Fatalf("monitor stats empty: %+v", stats)
	}
}
