package sophon_test

import (
	"fmt"

	sophon "repro"
)

// Example_modelTier plans and simulates a full paper-scale epoch without
// touching the network: generate the OpenImages-like trace, let the SOPHON
// framework decide, and replay the epoch through the discrete-event engine.
func Example_modelTier() {
	trace, err := sophon.GenerateTrace(sophon.OpenImagesProfile(0), 2024)
	if err != nil {
		panic(err)
	}
	env := sophon.Env{
		Bandwidth:       sophon.Mbps(500),
		ComputeCores:    48,
		StorageCores:    48,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}
	decision, err := sophon.Decide(trace, env)
	if err != nil {
		panic(err)
	}
	noOff, _, err := sophon.SimulatePolicy(sophon.NoOffPolicy(), trace, env)
	if err != nil {
		panic(err)
	}
	withPlan, err := sophon.SimulateEpoch(trace, decision.Plan, env)
	if err != nil {
		panic(err)
	}
	fmt.Printf("activated: %v\n", decision.Activated)
	fmt.Printf("traffic: %.2f GB -> %.2f GB\n",
		float64(noOff.TrafficBytes)/1e9, float64(withPlan.TrafficBytes)/1e9)
	fmt.Printf("traffic reduction: %.1fx\n",
		float64(noOff.TrafficBytes)/float64(withPlan.TrafficBytes))
	// Output:
	// activated: true
	// traffic: 12.09 GB -> 5.57 GB
	// traffic reduction: 2.2x
}

// ExampleOffloadCandidates inspects the per-sample quantities behind the
// paper's Figure 1c: how many samples benefit from offloading at all.
func ExampleOffloadCandidates() {
	trace, err := sophon.GenerateTrace(sophon.OpenImagesProfile(10000), 2024)
	if err != nil {
		panic(err)
	}
	beneficial := 0
	for _, c := range sophon.OffloadCandidates(trace) {
		if c.Saving > 0 {
			beneficial++
		}
	}
	fmt.Printf("beneficial: %d%%\n", beneficial*100/trace.N())
	// Output:
	// beneficial: 75%
}

// ExampleEpochModelFor evaluates the paper's four epoch cost metrics for a
// uniform Resize-Off plan.
func ExampleEpochModelFor() {
	trace, err := sophon.GenerateTrace(sophon.OpenImagesProfile(0), 2024)
	if err != nil {
		panic(err)
	}
	plan, err := sophon.NewUniformPlan("Resize-Off", trace.N(), 2)
	if err != nil {
		panic(err)
	}
	env := sophon.Env{
		Bandwidth:       sophon.Mbps(500),
		ComputeCores:    48,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             sophon.AlexNet,
	}
	m, err := sophon.EpochModelFor(trace, plan, env)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dominant: %s\n", m.Dominant())
	// With only 2 storage cores, offloading Decode+Crop for every sample
	// makes the storage CPU the bottleneck — Figure 4's Resize-Off cliff.
	// Output:
	// dominant: TCS
}
