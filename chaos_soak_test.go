package sophon

// Chaos soak suite: end-to-end training over a fault-injected storage
// fabric, checked for bit-identical artifacts, exact failure accounting,
// goroutine hygiene, and seed reproducibility. The short default runs in CI;
// longer targeted soaks are driven by flags:
//
//	go test -run TestChaosSoakSeeded -chaos.seed=12345 -chaos.class=mixed -chaos.duration=30s .
//
// A failing soak reports its seed and plan digest; re-running with the same
// -chaos.seed replays the identical fault schedule.

import (
	"flag"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/soak"
)

var (
	chaosSeed     = flag.Uint64("chaos.seed", 0, "run a targeted chaos soak with this fault seed (0 skips)")
	chaosClass    = flag.String("chaos.class", "mixed", "fault class for -chaos.seed soaks: none|delays|corrupt|mixed|partition")
	chaosDuration = flag.Duration("chaos.duration", 0, "keep soaking (varying the seed deterministically) until this much time has passed")
)

// settleGoroutines waits for the goroutine count to drop back to within
// slack of base, failing the test if background workers leaked.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d running, started with %d (slack %d)\n%s",
		n, base, slack, buf[:runtime.Stack(buf, true)])
}

// runSoak executes one soak and asserts every invariant the fault model
// promises, plus goroutine hygiene around the whole run.
func runSoak(t *testing.T, cfg soak.Config) soak.Report {
	t.Helper()
	base := runtime.NumGoroutine()
	rep, err := soak.Run(cfg)
	if err != nil {
		t.Fatalf("soak seed=%d class=%s: %v", cfg.Seed, cfg.Class, err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("seed=%d class=%s digest=%08x: %d of %d artifacts mismatched the fault-free reference",
			cfg.Seed, cfg.Class, rep.Digest, rep.Mismatches, rep.Compared)
	}
	if rep.Failed != rep.WantFailed {
		t.Fatalf("seed=%d class=%s digest=%08x: %d samples failed, expected exactly %d",
			cfg.Seed, cfg.Class, rep.Digest, rep.Failed, rep.WantFailed)
	}
	settleGoroutines(t, base, 4)
	return rep
}

// TestChaosSoakClasses: a short soak per fault class. Recoverable classes
// must lose nothing; the partition class must lose exactly the severed
// shard's samples for the severed epoch.
func TestChaosSoakClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	for _, class := range []soak.Class{soak.ClassDelays, soak.ClassCorrupt, soak.ClassMixed, soak.ClassPartition} {
		class := class
		t.Run(string(class), func(t *testing.T) {
			rep := runSoak(t, soak.Config{Seed: 0xC0FFEE, Class: class, Samples: 24, Epochs: 3})
			injected := int64(0)
			for _, s := range rep.Chaos {
				injected += s.Total()
			}
			if class != soak.ClassPartition && class != soak.ClassNone && injected == 0 {
				t.Fatalf("class %s injected no faults — the soak exercised nothing", class)
			}
			t.Logf("class=%s digest=%08x compared=%d injected=%d failed=%d",
				class, rep.Digest, rep.Compared, injected, rep.Failed)
		})
	}
}

// TestChaosSoakReproducible: the same seed must yield the identical fault
// schedule (digest) and the identical outcome, run to run — the
// replay-from-seed contract end to end.
func TestChaosSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	cfg := soak.Config{Seed: 77, Class: soak.ClassPartition, Samples: 24, Epochs: 3}
	a := runSoak(t, cfg)
	b := runSoak(t, cfg)
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different schedules: %08x vs %08x", a.Digest, b.Digest)
	}
	if a.Failed != b.Failed || a.Compared != b.Compared || a.Mismatches != b.Mismatches {
		t.Fatalf("same seed, different outcomes:\n a %+v\n b %+v", a, b)
	}
	for i := range a.Epochs {
		if a.Epochs[i].Samples != b.Epochs[i].Samples || a.Epochs[i].Failed != b.Epochs[i].Failed {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, a.Epochs[i], b.Epochs[i])
		}
	}
	other := soak.Config{Seed: 78, Class: cfg.Class, Samples: cfg.Samples, Epochs: cfg.Epochs}
	if other.Plan().Digest(16) == a.Digest {
		t.Fatal("different seeds produced the same plan digest")
	}
}

// TestChaosSoakLookaheadPartition: the clairvoyant scheduler under chaos. A
// shard is severed for the middle epoch while a deep per-shard lookahead has
// speculative fetches in flight against it; the soak must still deliver
// bit-identical artifacts, account the loss exactly (the severed shard's
// owned samples, once), and replay digest-identically from the same seed.
func TestChaosSoakLookaheadPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	cfg := soak.Config{Seed: 0xD15C0, Class: soak.ClassPartition, Samples: 24, Epochs: 3, Lookahead: 8}
	a := runSoak(t, cfg)
	if a.WantFailed == 0 {
		t.Fatal("partition soak expected no failures — the severed shard owned nothing")
	}
	// Exactly one epoch absorbs the partition; the others lose nothing.
	lossy := 0
	for _, er := range a.Epochs {
		if er.Failed > 0 {
			lossy++
			if er.Failed != a.WantFailed {
				t.Fatalf("partitioned epoch lost %d samples, want exactly %d", er.Failed, a.WantFailed)
			}
		}
	}
	if lossy != 1 {
		t.Fatalf("%d epochs lost samples, want exactly the severed one", lossy)
	}
	b := runSoak(t, cfg)
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different schedules: %08x vs %08x", a.Digest, b.Digest)
	}
	if a.Failed != b.Failed || a.Compared != b.Compared {
		t.Fatalf("same seed, different outcomes:\n a %+v\n b %+v", a, b)
	}
	// The deep-lookahead soak and the reactive soak fetch through the same
	// fault schedule, so their loss accounting must agree.
	reactive := runSoak(t, soak.Config{Seed: cfg.Seed, Class: cfg.Class, Samples: cfg.Samples, Epochs: cfg.Epochs})
	if reactive.Failed != a.Failed {
		t.Fatalf("lookahead lost %d samples, reactive lost %d — accounting diverged", a.Failed, reactive.Failed)
	}
	t.Logf("lookahead=%d digest=%08x compared=%d failed=%d", cfg.Lookahead, a.Digest, a.Compared, a.Failed)
}

// TestChaosSoakMixFlip: the variance-aware work-stealing scheduler under
// chaos plus a mid-training skew flip. Epochs run over a fault-injected
// fabric with the seeded heavy set flipping from ~8% to ~60% halfway through
// epoch 2; the soak must deliver bit-identical artifacts and exact failure
// accounting (enforced by runSoak), the adaptive controller must replan with
// reason "mix-drift" and thread the new plan version into later epochs, the
// pool must conserve every dispatched sample, and the whole outcome —
// including per-epoch heavy counts and the replan history — must replay
// identically from the same seed.
func TestChaosSoakMixFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	cfg := soak.Config{Seed: 0xF11BED, Class: soak.ClassMixed, Samples: 48, Epochs: 4, MixFlip: true}
	a := runSoak(t, cfg)
	if !a.MixFlip || a.Lookahead == 0 {
		t.Fatalf("mix-flip soak not marked variance-aware: %+v", a)
	}
	if a.Replans == 0 {
		t.Fatalf("skew flip never replanned: %+v", a)
	}
	for _, reason := range a.ReplanReasons {
		if !strings.Contains(reason, "mix-drift") {
			t.Fatalf("replan reasons %v, want mix-drift", a.ReplanReasons)
		}
	}
	if !a.Ok() {
		t.Fatalf("report fails its own invariants: %+v", a)
	}
	// The flip is visible in the per-epoch mix and in the plan versions: the
	// first epoch runs sparse under the initial plan, the last runs dominant
	// under a replanned one.
	first, last := a.Epochs[0], a.Epochs[len(a.Epochs)-1]
	if first.Heavy >= last.Heavy {
		t.Fatalf("heavy mix never flipped: first epoch %d heavy, last %d", first.Heavy, last.Heavy)
	}
	if first.PlanVersion != 1 || last.PlanVersion < 2 {
		t.Fatalf("plan versions %d→%d, want the replan to land after epoch 1", first.PlanVersion, last.PlanVersion)
	}
	// Scheduler conservation end to end: every dispatched sample was taken
	// exactly once (own pop or steal), across every epoch.
	if a.Prepsched == nil {
		t.Fatal("mix-flip report has no prepsched counters")
	}
	dispatched := int64(cfg.Samples * cfg.Epochs)
	if a.Prepsched.Light+a.Prepsched.Heavy != dispatched {
		t.Fatalf("classified %d+%d samples, want %d", a.Prepsched.Light, a.Prepsched.Heavy, dispatched)
	}
	if a.Prepsched.OwnPops+a.Prepsched.Steals != dispatched {
		t.Fatalf("took %d+%d samples, want %d", a.Prepsched.OwnPops, a.Prepsched.Steals, dispatched)
	}

	b := runSoak(t, cfg)
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different schedules: %08x vs %08x", a.Digest, b.Digest)
	}
	if a.Replans != b.Replans || !slicesEqual(a.ReplanReasons, b.ReplanReasons) {
		t.Fatalf("same seed, different replan histories:\n a %d %v\n b %d %v",
			a.Replans, a.ReplanReasons, b.Replans, b.ReplanReasons)
	}
	for i := range a.Epochs {
		ae, be := a.Epochs[i], b.Epochs[i]
		if ae.Samples != be.Samples || ae.Failed != be.Failed || ae.Heavy != be.Heavy || ae.PlanVersion != be.PlanVersion {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, ae, be)
		}
	}
	// Classification is deterministic; steal/stall counts are scheduling
	// noise and deliberately not compared.
	if a.Prepsched.Light != b.Prepsched.Light || a.Prepsched.Heavy != b.Prepsched.Heavy {
		t.Fatalf("same seed, different classifications: %+v vs %+v", a.Prepsched, b.Prepsched)
	}
	t.Logf("mix flip: heavy %d→%d, replans %v, digest=%08x", first.Heavy, last.Heavy, a.ReplanReasons, a.Digest)
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosSoakSeeded is the operator-driven entry point: skipped unless
// -chaos.seed is set, then soaks that exact seed (and keeps going with
// derived seeds while -chaos.duration has budget).
func TestChaosSoakSeeded(t *testing.T) {
	if *chaosSeed == 0 {
		t.Skip("set -chaos.seed to run a targeted soak")
	}
	class, err := soak.ParseClass(*chaosClass)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(*chaosDuration)
	seed := *chaosSeed
	for i := 0; ; i++ {
		rep := runSoak(t, soak.Config{Seed: seed, Class: class})
		t.Logf("soak %d: seed=%d digest=%08x compared=%d failed=%d", i, seed, rep.Digest, rep.Compared, rep.Failed)
		if !time.Now().Before(deadline) {
			return
		}
		seed = seed*0x9E3779B97F4A7C15 + 1 // deterministic next seed, reproducible from the first
	}
}
