package sophon

// Live adaptive control-plane smoke: a bandwidth-shaped cluster is profiled
// and trained under the controller's versioned snapshots, the link is
// reshaped 500→250 Mbps between epochs, and the controller must replan at
// the next epoch boundary — with the new plan version visible end to end:
// stamped on the wire, ratcheted by the server, and recorded in the epoch
// report.

import (
	"strings"
	"testing"
)

func TestAdaptiveLiveReshape(t *testing.T) {
	if testing.Short() {
		t.Skip("live adaptive smoke")
	}
	cluster, err := StartCluster(ClusterConfig{
		DatasetName:   "adaptive-live",
		NumSamples:    32,
		Seed:          7,
		MinDim:        256,
		MaxDim:        448,
		CropSize:      64,
		StorageCores:  2,
		BandwidthMbps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// No local cache: the bandwidth probe must see the link, not a cache.
	trainer, err := cluster.NewTrainer(TrainerOptions{
		Workers:        4,
		BatchSize:      8,
		JobID:          5,
		FetchBatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()

	// Epoch 1: the profiling epoch runs bare (no snapshot), so it reports
	// plan version 0 and stamps nothing on the wire.
	trace, _, first, err := trainer.Profile(2)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanVersion != 0 {
		t.Fatalf("profiling epoch reported plan version %d, want 0", first.PlanVersion)
	}

	env := Env{
		Bandwidth:       Mbps(500),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             AlexNet,
	}
	// Hysteresis 1 so the 50% bandwidth drop replans at the very next
	// boundary; the 0.35 threshold leaves headroom for serial-probe
	// measurement noise at the full rate (loopback latency, burst credit).
	ctrl, err := NewController(ControllerConfig{
		Trace: trace,
		Env:   env,
		Drift: DriftConfig{Alpha: 1, RelThreshold: 0.35, Hysteresis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The probe rereads the dataset three times over: enough wire traffic to
	// amortize the shaper's 256 KB burst allowance.
	const probeSamples = 96
	observe := func(epoch uint64) {
		t.Helper()
		bw, err := trainer.MeasureBandwidth(probeSamples)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ctrl.ObserveEpoch(EpochSample{Epoch: epoch, Bandwidth: bw}); err != nil {
			t.Fatal(err)
		}
		t.Logf("epoch %d: measured %.1f MB/s", epoch, bw/1e6)
	}

	// Epoch 2 under v1 at the full rate: version threads through, no drift.
	rep, err := trainer.TrainEpochSnapshot(2, ctrl.Current())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanVersion != 1 {
		t.Fatalf("epoch 2 plan version = %d, want 1", rep.PlanVersion)
	}
	if got := cluster.ServerPlanVersion(); got != 1 {
		t.Fatalf("server observed plan version %d after epoch 2, want 1", got)
	}
	observe(2)
	if h := ctrl.History(); len(h) != 1 {
		t.Fatalf("replan before any reshape: %v", h)
	}

	// Reshape the live link to half rate, then run the degraded epoch still
	// under v1 — the boundary observation after it must trigger the replan.
	if err := cluster.SetBandwidth(250); err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.TrainEpochSnapshot(3, ctrl.Current()); err != nil {
		t.Fatal(err)
	}
	observe(3)

	hist := ctrl.History()
	if len(hist) != 2 {
		t.Fatalf("want exactly one replan after the reshape, history %v", hist)
	}
	ev := hist[1]
	if ev.Version != 2 || ev.Epoch != 4 {
		t.Fatalf("replan landed as v%d@epoch%d, want v2@epoch4", ev.Version, ev.Epoch)
	}
	if !strings.Contains(ev.Reason, "bandwidth-drift") {
		t.Fatalf("replan reason %q does not name bandwidth drift", ev.Reason)
	}
	// The new plan must assume the measured degraded link, not the profiled
	// one. Loose bounds: the serial probe over real TCP is noisy.
	if ev.Bandwidth < Mbps(150) || ev.Bandwidth > Mbps(375) {
		t.Fatalf("replanned bandwidth %.1f MB/s not near the 250 Mbps reshape", ev.Bandwidth/1e6)
	}

	// Epoch 4 under v2: the bumped version threads through to the server.
	rep, err = trainer.TrainEpochSnapshot(4, ctrl.Current())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanVersion != 2 {
		t.Fatalf("epoch 4 plan version = %d, want 2", rep.PlanVersion)
	}
	if got := cluster.ServerPlanVersion(); got != 2 {
		t.Fatalf("server observed plan version %d after epoch 4, want 2", got)
	}
	if got := cluster.serverCounters().PlanRegressions.Load(); got != 0 {
		t.Fatalf("server counted %d plan regressions, want 0", got)
	}
}
