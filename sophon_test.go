package sophon

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelTierEndToEnd(t *testing.T) {
	tr, err := GenerateTrace(OpenImagesProfile(2000), 3)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{
		Bandwidth:       Mbps(500),
		ComputeCores:    48,
		StorageCores:    48,
		StorageSlowdown: 1,
		GPU:             AlexNet,
	}
	d, err := Decide(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Activated {
		t.Fatal("paper setup did not activate offloading")
	}
	res, err := SimulateEpoch(tr, d.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	noOff, _, err := SimulatePolicy(NoOffPolicy(), tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochTime >= noOff.EpochTime {
		t.Fatalf("SOPHON epoch %v not faster than No-Off %v", res.EpochTime, noOff.EpochTime)
	}
	if len(AllPolicies()) != 5 {
		t.Fatalf("AllPolicies = %d", len(AllPolicies()))
	}
}

func TestLiveClusterEndToEnd(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		DatasetName:  "api-test",
		NumSamples:   16,
		Seed:         5,
		MinDim:       48,
		MaxDim:       140,
		CropSize:     64,
		StorageCores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.NumSamples() != 16 || cluster.Addr() == "" {
		t.Fatalf("cluster facts: %d %q", cluster.NumSamples(), cluster.Addr())
	}

	trainer, err := cluster.NewTrainer(TrainerOptions{
		Workers:   3,
		BatchSize: 8,
		JobID:     9,
		Shuffle:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()

	// Two-stage profiling.
	trace, stage1, report, err := trainer.Profile(2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Samples != 16 || trace.N() != 16 {
		t.Fatalf("profiling epoch: %d samples, trace %d", report.Samples, trace.N())
	}
	if stage1.IOThroughput <= 0 {
		t.Fatalf("stage1: %+v", stage1)
	}

	// Plan on an artificially tight link so offloading activates, then
	// train a real epoch under the plan.
	env := Env{
		Bandwidth:       Mbps(2),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             AlexNet,
	}
	d, err := Decide(trace, env)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trainer.TrainEpoch(2, d.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 16 {
		t.Fatalf("trained %d samples", rep.Samples)
	}
	if d.Plan.OffloadedCount() > 0 {
		if rep.Offloaded != d.Plan.OffloadedCount() {
			t.Fatalf("offloaded %d, plan says %d", rep.Offloaded, d.Plan.OffloadedCount())
		}
		if cluster.ServerCPUNanos() == 0 {
			t.Fatal("server burned no CPU despite offloading")
		}
	}
}

func TestDecideMeasuredOverride(t *testing.T) {
	tr, err := GenerateTrace(OpenImagesProfile(300), 4)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Bandwidth: Mbps(500), ComputeCores: 48, StorageCores: 8, StorageSlowdown: 1, GPU: AlexNet}
	cpuBound := Stage1Result{GPUThroughput: 500, IOThroughput: 400, CPUThroughput: 50}
	d, err := DecideMeasured(tr, env, cpuBound)
	if err != nil {
		t.Fatal(err)
	}
	if d.Activated {
		t.Fatal("measured CPU-bound verdict still activated offloading")
	}
}

func TestStartClusterValidation(t *testing.T) {
	if _, err := StartCluster(ClusterConfig{}); err == nil {
		t.Fatal("accepted zero samples")
	}
	if _, err := StartCluster(ClusterConfig{NumSamples: 2, MinDim: 100, MaxDim: 20}); err == nil {
		t.Fatal("accepted inverted dims")
	}
}

func TestReproduceSmallScale(t *testing.T) {
	var buf bytes.Buffer
	if err := Reproduce(ExperimentOptions{Seed: 3, OpenImages: 1000, ImageNet: 1000}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("report incomplete")
	}
}

func TestAutoTrainWithChaosRetryAndCache(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		DatasetName:     "auto",
		NumSamples:      24,
		Seed:            6,
		MinDim:          96,
		MaxDim:          280,
		CropSize:        64,
		StorageCores:    2,
		ChaosConnBudget: 512 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	trainer, err := cluster.NewTrainer(TrainerOptions{
		Workers:       3,
		BatchSize:     8,
		JobID:         4,
		Shuffle:       true,
		RetryAttempts: 8,
		CacheBytes:    16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()

	env := Env{
		Bandwidth:       Mbps(4),
		ComputeCores:    3,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             AlexNet,
	}
	decision, reports, err := trainer.AutoTrain(3, env, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d epoch reports", len(reports))
	}
	for i, r := range reports {
		if r.Samples != 24 {
			t.Fatalf("epoch %d trained %d samples", i+1, r.Samples)
		}
	}
	if reports[1].Offloaded != decision.Plan.OffloadedCount() {
		t.Fatalf("epoch 2 offloaded %d, plan says %d",
			reports[1].Offloaded, decision.Plan.OffloadedCount())
	}
	// Warm cache: later epochs fetch at most the offloaded artifacts.
	if decision.Plan.OffloadedCount() == 0 && reports[2].BytesFetched != 0 {
		t.Fatalf("warm no-offload epoch fetched %d bytes", reports[2].BytesFetched)
	}
	if _, _, err := trainer.AutoTrain(0, env, 1); err == nil {
		t.Fatal("AutoTrain accepted 0 epochs")
	}
}

func TestBatchedTrainerViaPublicAPI(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		NumSamples: 12, Seed: 8, MinDim: 48, MaxDim: 96, CropSize: 48, StorageCores: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	trainer, err := cluster.NewTrainer(TrainerOptions{
		Workers: 2, BatchSize: 4, JobID: 1, FetchBatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	rep, err := trainer.TrainEpoch(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 12 {
		t.Fatalf("trained %d", rep.Samples)
	}
}

func TestPipelineConstructors(t *testing.T) {
	if StandardPipeline(96).Len() != 5 {
		t.Fatal("standard pipeline shape")
	}
	v, err := ValidationPipeline(128, 112)
	if err != nil || v.Len() != 5 {
		t.Fatalf("validation pipeline: %v", err)
	}
	a, err := AugmentedPipeline(96, 0.3, 0.1)
	if err != nil || a.Len() != 7 {
		t.Fatalf("augmented pipeline: %v", err)
	}
	if _, err := ValidationPipeline(100, 200); err == nil {
		t.Fatal("accepted crop > resize")
	}
}

func TestGPUProfilesExported(t *testing.T) {
	for _, m := range []GPUModel{AlexNet, ResNet18, ResNet50} {
		if !m.Valid() {
			t.Fatalf("model %q invalid", m.Name)
		}
	}
	if ImageNetProfile(100).N != 100 || OpenImagesProfile(0).N != 40000 {
		t.Fatal("profile scaling broken")
	}
}
