// Command sophon-profile inspects a dataset profile the way SOPHON's
// stage-2 profiler sees it: per-stage size distribution, min-stage
// histogram, offloading-efficiency percentiles, and the decision the engine
// would make in a given environment.
//
// Usage:
//
//	sophon-profile -profile openimages -cores 4 -mbps 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/persist"
	"repro/internal/policy"
)

func main() {
	profileName := flag.String("profile", "openimages", "dataset profile (openimages|imagenet)")
	n := flag.Int("n", 0, "sample-count override (0 = paper scale)")
	seed := flag.Uint64("seed", 2024, "generation seed")
	cores := flag.Int("cores", 48, "storage cores for the planning preview")
	mbps := flag.Float64("mbps", 500, "link bandwidth (Mbit/s)")
	modelName := flag.String("model", "alexnet", "GPU model profile")
	dumpTrace := flag.String("dump-trace", "", "write the generated trace to this file (for sophon-train -trace-file)")
	dumpPlan := flag.String("dump-plan", "", "write the SOPHON plan to this file (for sophon-train -plan-file)")
	cliutil.Parse("sophon-profile", "Inspects a dataset profile and previews the SOPHON offload plan for an environment.")

	logger := log.New(os.Stderr, "sophon-profile: ", 0)
	cliutil.ValidateInts(logger,
		map[string]bool{"cores": true},
		map[string]bool{"n": true},
		map[string]int{"cores": *cores, "n": *n})

	var profile dataset.Profile
	switch strings.ToLower(*profileName) {
	case "openimages":
		profile = dataset.OpenImages12G()
	case "imagenet":
		profile = dataset.ImageNet11G()
	default:
		logger.Fatalf("unknown profile %q", *profileName)
	}
	if *n > 0 {
		profile = profile.ScaledTo(*n)
	}
	model, err := gpu.ByName(*modelName)
	if err != nil {
		logger.Fatal(err)
	}

	tr, err := dataset.GenerateTrace(profile, *seed)
	if err != nil {
		logger.Fatal(err)
	}

	fmt.Printf("dataset %s: %d samples, %.2f GB raw (mean %.0f KB)\n",
		tr.Name, tr.N(), float64(tr.TotalRawBytes())/1e9,
		float64(tr.TotalRawBytes())/float64(tr.N())/1e3)
	fmt.Printf("full preprocessing: %.0f CPU-seconds (%.1f ms/sample)\n",
		tr.TotalPreprocessCPU().Seconds(),
		tr.TotalPreprocessCPU().Seconds()/float64(tr.N())*1e3)

	names := []string{"raw", "decode", "rrcrop", "flip", "totensor", "normalize"}
	hist := tr.MinStageHistogram()
	fmt.Println("\nmin-size stage histogram:")
	for i, c := range hist {
		fmt.Printf("  %-10s %6.2f%%  (%d samples)\n", names[i], 100*float64(c)/float64(tr.N()), c)
	}
	fmt.Printf("benefiting from offload: %.1f%%\n", 100*tr.FractionBenefiting())

	cands := policy.Candidates(tr)
	effs := make([]float64, 0, len(cands))
	for _, c := range cands {
		if c.Efficiency > 0 {
			effs = append(effs, c.Efficiency)
		}
	}
	sort.Float64s(effs)
	if len(effs) > 0 {
		fmt.Println("\noffloading efficiency among beneficiaries (MB saved / CPU-second):")
		for _, p := range []int{10, 50, 90, 99} {
			fmt.Printf("  p%-3d %8.2f\n", p, effs[p*(len(effs)-1)/100]/1e6)
		}
	}

	env := policy.Env{
		Bandwidth:       netsim.Mbps(*mbps),
		ComputeCores:    48,
		StorageCores:    *cores,
		StorageSlowdown: 1,
		GPU:             model,
	}
	plan, err := policy.NewSophon().Plan(tr, env)
	if err != nil {
		logger.Fatal(err)
	}
	m, err := policy.ModelFor(tr, plan, env)
	if err != nil {
		logger.Fatal(err)
	}
	base, _ := policy.NewUniformPlan("No-Off", tr.N(), 0)
	bm, _ := policy.ModelFor(tr, base, env)
	traffic, _ := plan.Traffic(tr)
	fmt.Printf("\nSOPHON plan at %d storage cores, %.0f Mbps, %s:\n", *cores, *mbps, model.Name)
	fmt.Printf("  offloaded %d/%d samples\n", plan.OffloadedCount(), tr.N())
	splitHist := plan.SplitHistogram()
	for k, c := range splitHist {
		if k > 0 && c > 0 {
			fmt.Printf("    split %d (%s prefix): %d samples\n", k, names[k], c)
		}
	}
	fmt.Printf("  traffic   %.2f GB (No-Off %.2f GB, %.2fx reduction)\n",
		float64(traffic)/1e9, float64(tr.TotalRawBytes())/1e9,
		float64(tr.TotalRawBytes())/float64(traffic))
	fmt.Printf("  epoch     T_G=%.1fs T_CC=%.1fs T_CS=%.1fs T_Net=%.1fs → %.1fs (No-Off %.1fs)\n",
		m.TG.Seconds(), m.TCC.Seconds(), m.TCS.Seconds(), m.TNet.Seconds(),
		m.Predicted().Seconds(), bm.Predicted().Seconds())

	if *dumpTrace != "" {
		if err := persist.SaveTrace(*dumpTrace, tr); err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *dumpTrace)
	}
	if *dumpPlan != "" {
		if err := persist.SavePlan(*dumpPlan, plan); err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *dumpPlan)
	}
}
