// Command sophon-train is the compute-node half: it connects to a running
// sophon-server, runs the two-stage profiler (stage 1 throughput probes,
// stage 2 on-the-fly per-sample profiling during epoch 1), asks the chosen
// policy for an offload plan, and trains the remaining epochs under it.
//
// Usage:
//
//	sophon-train -addr 127.0.0.1:7070 -epochs 3 -policy sophon -mbps 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/persist"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/prepsched"
	"repro/internal/profiler"
	"repro/internal/storage"
	"repro/internal/trainsim"
)

// liveClassifier is the late-bound variance-aware classifier: the trainer is
// constructed before the stage-2 trace exists, so its Classify hook reads
// this pointer — nil (everything light) through the profiling epoch, then
// the trace-derived classifier for the trained epochs.
type liveClassifier struct {
	cl *prepsched.Classifier
	tr *dataset.Trace
}

func pickPolicy(name string) (policy.Policy, error) {
	switch strings.ToLower(name) {
	case "sophon":
		return policy.NewSophon(), nil
	case "sophon-guard":
		return &policy.Sophon{StepGuard: true}, nil
	case "nooff", "no-off":
		return policy.NoOff{}, nil
	case "alloff", "all-off":
		return policy.AllOff{}, nil
	case "resizeoff", "resize-off":
		return policy.ResizeOff{}, nil
	case "fastflow":
		return policy.FastFlow{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "storage server address")
	jobID := flag.Uint64("job", 1, "job id (seeds augmentations)")
	workers := flag.Int("workers", 4, "loader workers")
	computeCores := flag.Int("compute-cores", 0, "local preprocessing cores (0 = workers)")
	batch := flag.Int("batch", 32, "GPU batch size")
	epochs := flag.Int("epochs", 3, "epochs to train (epoch 1 profiles)")
	modelName := flag.String("model", "alexnet", "GPU model profile (alexnet|resnet18|resnet50)")
	policyName := flag.String("policy", "sophon", "offload policy (sophon|sophon-guard|nooff|alloff|resizeoff|fastflow)")
	crop := flag.Int("crop", 224, "RandomResizedCrop output side (must match server)")
	mbps := flag.Float64("mbps", 500, "assumed link bandwidth for planning (Mbit/s)")
	storageCores := flag.Int("storage-cores", 4, "assumed storage-node preprocessing cores for planning")
	probeBatches := flag.Int("probe-batches", 50, "stage-1 probe batches")
	planFile := flag.String("plan-file", "", "load a precomputed plan and skip profiling")
	dumpTrace := flag.String("dump-trace", "", "write the measured stage-2 trace to this file")
	fetchBatch := flag.Int("fetch-batch", 0, "samples per storage round trip (0 = one)")
	prefetch := flag.Int("prefetch", 0, "in-flight fetch requests on the session in reactive mode (0 = 2x workers; exclusive with -lookahead)")
	lookahead := flag.Int("lookahead", 0, "clairvoyant prefetch: round trips kept in flight per shard (0 = reactive mode)")
	lookaheadHorizon := flag.Int("lookahead-horizon", 0, "max stream positions fetched ahead of consumption (0 = 8 x lookahead x fetch-batch x shards; needs -lookahead)")
	stagingBytes := flag.Int64("staging-bytes", 0, "soft byte budget for staged prefetched artifacts (0 = unbounded; needs -lookahead)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent requests the session admits (0 = default 64)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request timeout (0 = default 30s, negative = none)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated shard server addresses (overrides -addr; enables the fan-out client)")
	attempts := flag.Int("attempts", 3, "per-operation tries on each shard session before giving up")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "pause before each shard redial")
	degraded := flag.Bool("degraded", false, "degraded mode: skip samples of unreachable shards instead of aborting the epoch")
	adaptive := flag.Bool("adaptive", false, "adaptive control plane: re-probe the link each epoch and replan on drift (sophon policies only)")
	driftThreshold := flag.Float64("drift-threshold", 0, "relative change that counts as drift (0 = default 0.2)")
	driftHysteresis := flag.Int("drift-hysteresis", 0, "consecutive drifted epochs before replanning (0 = default 2)")
	varianceAware := flag.Bool("variance-aware", false, "variance-aware preprocessing: classify samples heavy/light from the stage-2 profile and run epochs under per-worker work-stealing deques (needs -lookahead)")
	heavyThreshold := flag.Float64("heavy-threshold", 0, "heavy classification threshold as a multiple of the mean per-sample preprocessing cost (0 = default 4x; needs -variance-aware)")
	cliutil.Parse("sophon-train", "Profiles, plans, and trains against a running sophon-server under an offload policy.")

	logger := log.New(os.Stderr, "sophon-train: ", log.LstdFlags)
	cliutil.ValidateInts(logger,
		map[string]bool{"workers": true, "batch": true, "epochs": true, "attempts": true},
		map[string]bool{"prefetch": true, "max-inflight": true, "fetch-batch": true, "compute-cores": true, "lookahead": true, "lookahead-horizon": true},
		map[string]int{
			"workers": *workers, "batch": *batch, "epochs": *epochs, "attempts": *attempts,
			"prefetch": *prefetch, "max-inflight": *maxInFlight,
			"fetch-batch": *fetchBatch, "compute-cores": *computeCores,
			"lookahead": *lookahead, "lookahead-horizon": *lookaheadHorizon,
		})
	if *stagingBytes < 0 {
		logger.Fatalf("-staging-bytes must be >= 0, got %d", *stagingBytes)
	}
	if *heavyThreshold < 0 {
		logger.Fatalf("-heavy-threshold must be >= 0, got %g", *heavyThreshold)
	}
	if *heavyThreshold > 0 && !*varianceAware {
		logger.Fatal("-heavy-threshold needs -variance-aware")
	}
	if *varianceAware {
		if *lookahead <= 0 {
			logger.Fatal("-variance-aware needs -lookahead: the work-stealing dispatcher rides the clairvoyant stream")
		}
		if *planFile != "" {
			logger.Fatal("-variance-aware needs the profiling path: classification comes from the stage-2 trace, which -plan-file skips")
		}
	}

	model, err := gpu.ByName(*modelName)
	if err != nil {
		logger.Fatal(err)
	}
	pol, err := pickPolicy(*policyName)
	if err != nil {
		logger.Fatal(err)
	}

	opts := storage.ClientOptions{
		JobID:          *jobID,
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxInFlight,
	}
	// Single-addr mode gets the same retry wrapper as the sharded fan-out:
	// without it, an admission-control rejection (server shedding load)
	// surfaces to the trainer instead of being retried after the hint.
	dial := func() (trainsim.StorageClient, error) {
		return storage.NewReconnecting(func() (*storage.Client, error) {
			return storage.DialWithOptions(*addr, opts)
		}, *attempts, *backoff, nil)
	}
	nShards := 1
	if *shardAddrs != "" {
		addrs := strings.Split(*shardAddrs, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
			if addrs[i] == "" {
				logger.Fatalf("-shard-addrs entry %d is empty", i)
			}
		}
		nShards = len(addrs)
		dial = func() (trainsim.StorageClient, error) {
			return dialSharded(addrs, opts, *attempts, *backoff, *degraded)
		}
		logger.Printf("fan-out client over %d shards (degraded=%v)", nShards, *degraded)
	}

	var live atomic.Pointer[liveClassifier]
	var classify func(sample int) prepsched.Class
	if *varianceAware {
		classify = func(sample int) prepsched.Class {
			lc := live.Load()
			if lc == nil || sample >= lc.tr.N() {
				return prepsched.Light
			}
			return lc.cl.Classify(lc.tr.Records[sample].TotalTime())
		}
	}

	trainer, err := trainsim.New(trainsim.Config{
		DialClient:       dial,
		Workers:          *workers,
		ComputeCores:     *computeCores,
		Pipeline:         pipeline.Standard(pipeline.StandardOptions{CropSize: *crop, FlipP: -1}),
		GPU:              model,
		BatchSize:        *batch,
		JobID:            *jobID,
		Shuffle:          true,
		FetchBatchSize:   *fetchBatch,
		PrefetchWindow:   *prefetch,
		Lookahead:        *lookahead,
		LookaheadHorizon: *lookaheadHorizon,
		StagingBytes:     *stagingBytes,
		DegradedMode:     *degraded,
		VarianceAware:    *varianceAware,
		Classify:         classify,
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer trainer.Close()
	logger.Printf("connected: %d samples, training %s with %s", trainer.N(), model.Name, pol.Name())

	// Precomputed plan: skip profiling entirely.
	if *planFile != "" {
		plan, meta, err := persist.LoadPlanVersioned(*planFile)
		if err != nil {
			logger.Fatal(err)
		}
		if plan.N() != trainer.N() {
			logger.Fatalf("plan covers %d samples, dataset has %d", plan.N(), trainer.N())
		}
		if meta.Version > 0 {
			logger.Printf("loaded plan %q v%d (env fingerprint %016x): %d samples offloaded",
				plan.Name, meta.Version, meta.EnvFingerprint, plan.OffloadedCount())
		} else {
			logger.Printf("loaded plan %q: %d samples offloaded", plan.Name, plan.OffloadedCount())
		}
		for e := 1; e <= *epochs; e++ {
			rep, err := trainer.RunEpoch(uint64(e), plan, nil)
			if err != nil {
				logger.Fatal(err)
			}
			printEpoch(e, rep)
		}
		return
	}

	// Stage 1: throughput probes.
	stage1, err := profiler.RunStage1(trainer.Stage1Probes(), *probeBatches)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("stage 1: gpu=%.0f io=%.0f cpu=%.0f samples/s → %s",
		stage1.GPUThroughput, stage1.IOThroughput, stage1.CPUThroughput, stage1.Bottleneck())

	// Stage 2: profile during epoch 1.
	collector, err := profiler.NewCollector(trainer.N())
	if err != nil {
		logger.Fatal(err)
	}
	rep, err := trainer.RunEpoch(1, nil, collector)
	if err != nil {
		logger.Fatal(err)
	}
	printEpoch(1, rep)
	trace, err := collector.Trace("measured")
	if err != nil {
		logger.Fatal(err)
	}
	if *dumpTrace != "" {
		if err := persist.SaveTrace(*dumpTrace, trace); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("stage-2 trace written to %s", *dumpTrace)
	}
	if *varianceAware {
		cl, err := prepsched.FromTrace(trace, *heavyThreshold)
		if err != nil {
			logger.Fatal(err)
		}
		live.Store(&liveClassifier{cl: cl, tr: trace})
		logger.Printf("variance-aware: heavy above %v (%.1f%% of the profile)",
			cl.Threshold().Round(time.Microsecond), 100*cl.BaselineHeavyFrac())
	}

	env := policy.Env{
		Bandwidth:       netsim.Mbps(*mbps),
		ComputeCores:    maxInt(*computeCores, *workers),
		StorageCores:    *storageCores,
		StorageSlowdown: 1,
		GPU:             model,
		// Per-shard planning: -mbps and -storage-cores describe ONE shard's
		// link and cores; the engine budgets each shard independently.
		Shards: nShards,
	}
	if *adaptive {
		s, ok := pol.(*policy.Sophon)
		if !ok {
			logger.Fatalf("-adaptive requires a sophon policy, got %s", pol.Name())
		}
		runAdaptive(logger, trainer, &core.Framework{Engine: s}, trace, env, *epochs, *batch,
			profiler.DriftConfig{RelThreshold: *driftThreshold, Hysteresis: *driftHysteresis},
			*heavyThreshold, *varianceAware)
		return
	}

	var plan *policy.Plan
	if s, ok := pol.(*policy.Sophon); ok {
		d, err := (&core.Framework{Engine: s}).DecideWithStage1(trace, env, stage1)
		if err != nil {
			logger.Fatal(err)
		}
		plan = d.Plan
		logger.Printf("decision: activated=%v offloaded=%d predicted speedup %.2fx",
			d.Activated, plan.OffloadedCount(), d.PredictedSpeedup())
	} else {
		plan, err = pol.Plan(trace, env)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("%s plan offloads %d samples", pol.Name(), plan.OffloadedCount())
	}

	for e := 2; e <= *epochs; e++ {
		rep, err := trainer.RunEpoch(uint64(e), plan, nil)
		if err != nil {
			logger.Fatal(err)
		}
		printEpoch(e, rep)
	}
}

// runAdaptive closes the control loop on the live trainer: each epoch runs
// under the controller's current snapshot, a serial fetch probe re-measures
// the link, and drift replans at the next boundary. Under variance-aware
// mode the observed heavy/light mix is folded in alongside the bandwidth, so
// a mid-training skew flip replans too ("mix-drift").
func runAdaptive(logger *log.Logger, trainer *trainsim.Trainer, fw *core.Framework,
	trace *dataset.Trace, env policy.Env, epochs, batch int, drift profiler.DriftConfig,
	heavyRatio float64, mix bool) {
	ctrl, err := core.NewController(core.ControllerConfig{
		Framework: fw, Trace: trace, Env: env, Drift: drift, HeavyRatio: heavyRatio,
	})
	if err != nil {
		logger.Fatal(err)
	}
	first := ctrl.Current()
	logger.Printf("adaptive: initial plan v%d offloads %d samples", first.Version, first.Plan.OffloadedCount())
	probeSamples := 4 * batch
	if probeSamples > trainer.N() {
		probeSamples = trainer.N()
	}
	for e := 2; e <= epochs; e++ {
		snap := ctrl.Current()
		rep, err := trainer.RunEpochSnapshot(uint64(e), snap, nil)
		if err != nil {
			logger.Fatal(err)
		}
		printEpoch(e, rep)
		bw, err := trainer.MeasureBandwidth(probeSamples)
		if err != nil {
			logger.Fatal(err)
		}
		sample := profiler.EpochSample{Epoch: uint64(e), Bandwidth: bw}
		if mix {
			sample.MixHeavy, sample.MixTotal = rep.Heavy, rep.Samples
		}
		next, drifts, err := ctrl.ObserveEpoch(sample)
		if err != nil {
			logger.Fatal(err)
		}
		if len(drifts) > 0 {
			logger.Printf("replanned: %s (link %.1f MB/s, %d offloaded, effective epoch %d)",
				next.Reason, bw/1e6, next.Plan.OffloadedCount(), next.Epoch)
		}
	}
	for _, ev := range ctrl.History() {
		logger.Printf("history: %s", ev)
	}
}

// dialSharded builds the fan-out client: one reconnecting session per shard
// address, routed by the canonical shard map.
func dialSharded(addrs []string, opts storage.ClientOptions, attempts int, backoff time.Duration, degraded bool) (trainsim.StorageClient, error) {
	m, err := cluster.NewShardMap(len(addrs))
	if err != nil {
		return nil, err
	}
	shards := make([]cluster.ShardClient, len(addrs))
	for i, a := range addrs {
		a := a
		rc, err := storage.NewReconnecting(func() (*storage.Client, error) {
			return storage.DialWithOptions(a, opts)
		}, attempts, backoff, nil)
		if err != nil {
			for _, prev := range shards[:i] {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, fmt.Errorf("shard %d (%s): %w", i, a, err)
		}
		shards[i] = rc
	}
	return cluster.NewShardedClient(m, shards, degraded)
}

func printEpoch(e int, r trainsim.EpochReport) {
	failed := ""
	if r.Failed > 0 {
		failed = fmt.Sprintf(", %d failed", r.Failed)
	}
	fmt.Printf("epoch %d: %d samples in %v, fetched %.1f MB, offloaded %d%s, gpu util %.1f%%\n",
		e, r.Samples, r.Duration.Round(1e6), float64(r.BytesFetched)/1e6,
		r.Offloaded, failed, 100*r.GPUUtilization)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
