// Command sophon-server runs the storage-node half of the system: an
// in-memory object store holding a synthetic dataset, a near-storage
// preprocessing executor with a bounded core budget, and the wire-protocol
// server, optionally behind a token-bucket bandwidth cap (the paper's
// 500 Mbps link).
//
// With -shards K > 1 it runs a sharded storage tier instead: K servers on
// consecutive ports starting at -addr's port, each owning only the samples
// the rendezvous-hashed shard map places on it, each with its own core
// budget and (when -mbps is set) its own shaped link. Point sophon-train's
// -shard-addrs at the K addresses.
//
// Usage:
//
//	sophon-server -addr :7070 -n 2000 -cores 4 -mbps 500
//	sophon-server -addr :7070 -n 2000 -cores 4 -mbps 500 -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address (shard i listens on port+i)")
	dataDir := flag.String("data-dir", "", "serve a datagen-written dataset directory instead of synthesizing")
	n := flag.Int("n", 1000, "number of synthetic samples to materialize")
	seed := flag.Uint64("seed", 1, "dataset seed")
	name := flag.String("dataset", "synthetic", "dataset name")
	minDim := flag.Int("min-dim", 80, "smallest image side (px)")
	maxDim := flag.Int("max-dim", 480, "largest image side (px)")
	crop := flag.Int("crop", 224, "RandomResizedCrop output side")
	cores := flag.Int("cores", 4, "storage CPU cores per shard for offloaded preprocessing (0 disables)")
	slowdown := flag.Float64("slowdown", 1, "storage CPU slowdown factor (>= 1)")
	mbps := flag.Float64("mbps", 0, "cap each shard's outbound bandwidth (Mbit/s; 0 = unshaped)")
	httpAddr := flag.String("http", "", "serve /healthz, /stats, /metrics on this address (empty = disabled)")
	idle := flag.Duration("idle-timeout", 0, "drop connections idle for this long (0 = never)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently handled requests per connection (0 = default 32)")
	shards := flag.Int("shards", 1, "number of shard servers (rendezvous-hashed sample placement)")
	admitBytes := flag.Int64("admit-bytes", 0, "global in-flight byte budget shared by all shards (0 = admission disabled)")
	admitQueue := flag.Int("admit-queue", 0, "max queued requests per tenant at the admission gate (0 = default)")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint carried by shed-load rejections (0 = default)")
	cliutil.Parse("sophon-server", "Serves a synthetic dataset over the SOPHON wire protocol with near-storage preprocessing.")

	logger := log.New(os.Stderr, "sophon-server: ", log.LstdFlags)
	cliutil.ValidateInts(logger,
		map[string]bool{"n": true, "shards": true},
		map[string]bool{"max-inflight": true},
		map[string]int{"n": *n, "shards": *shards, "max-inflight": *maxInFlight})
	if *cores < 0 {
		logger.Fatalf("-cores must be non-negative, got %d", *cores)
	}

	var store *storage.Store
	if *dataDir != "" {
		logger.Printf("loading dataset from %s...", *dataDir)
		ds, err := dataset.LoadDir(*dataDir)
		if err != nil {
			logger.Fatal(err)
		}
		blobs, err := ds.Materialize()
		if err != nil {
			logger.Fatal(err)
		}
		store, err = storage.NewStore(ds.Name(), blobs)
		if err != nil {
			logger.Fatal(err)
		}
	} else {
		logger.Printf("materializing %d samples (seed %d)...", *n, *seed)
		set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
			Name: *name, N: *n, Seed: *seed, MinDim: *minDim, MaxDim: *maxDim,
		})
		if err != nil {
			logger.Fatal(err)
		}
		store, err = storage.FromImageSet(set)
		if err != nil {
			logger.Fatal(err)
		}
	}
	logger.Printf("store ready: %d objects, %.1f MB", store.N(), float64(store.TotalBytes())/1e6)

	shardMap, err := cluster.NewShardMap(*shards)
	if err != nil {
		logger.Fatal(err)
	}
	host, portStr, err := net.SplitHostPort(*addr)
	if err != nil {
		logger.Fatalf("bad -addr %q: %v", *addr, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		logger.Fatalf("bad -addr port %q: %v", portStr, err)
	}
	pipe := pipeline.Standard(pipeline.StandardOptions{CropSize: *crop, FlipP: -1})

	var admission *storage.AdmissionController
	if *admitBytes != 0 {
		admission, err = storage.NewAdmissionController(storage.AdmissionConfig{
			MaxInFlightBytes:  *admitBytes,
			MaxQueuePerTenant: *admitQueue,
			RetryAfter:        *retryAfter,
		})
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("admission: %.1f MB in-flight budget shared across %d shard(s), retry-after %v",
			float64(*admitBytes)/1e6, *shards, admission.RetryAfterHint())
	} else if *admitQueue != 0 || *retryAfter != 0 {
		logger.Fatal("-admit-queue/-retry-after need -admit-bytes > 0")
	}

	servers := make([]*storage.Server, *shards)
	listeners := make([]net.Listener, *shards)
	counters := make([]*storage.Counters, *shards)
	for s := 0; s < *shards; s++ {
		shardStore := store
		if *shards > 1 {
			owned := shardMap.Owned(store.N(), s)
			objects := make(map[uint32][]byte, len(owned))
			for _, id := range owned {
				b, err := store.Get(id)
				if err != nil {
					logger.Fatal(err)
				}
				objects[id] = b
			}
			shardStore, err = storage.NewPartialStore(
				fmt.Sprintf("%s/shard-%d-of-%d", store.Name(), s, *shards), store.N(), objects)
			if err != nil {
				logger.Fatal(err)
			}
		}
		srv, err := storage.NewServer(storage.ServerConfig{
			Store:       shardStore,
			Pipeline:    pipe,
			Cores:       *cores,
			Slowdown:    *slowdown,
			IdleTimeout: *idle,
			MaxInFlight: *maxInFlight,
			Admission:   admission,
			Logger:      logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		shardAddr := net.JoinHostPort(host, strconv.Itoa(basePort+s))
		inner, err := net.Listen("tcp", shardAddr)
		if err != nil {
			logger.Fatal(err)
		}
		var l net.Listener = inner
		if *mbps > 0 {
			bucket, err := netsim.NewTokenBucket(netsim.Mbps(*mbps), 256<<10, nil)
			if err != nil {
				logger.Fatal(err)
			}
			l = netsim.ShapeListener(inner, bucket)
		}
		servers[s] = srv
		listeners[s] = l
		counters[s] = srv.Counters()
		if *shards > 1 {
			logger.Printf("shard %d: %d/%d objects on %s", s, shardStore.Owned(), shardStore.N(), inner.Addr())
		}
	}
	if *mbps > 0 {
		logger.Printf("each shard's link capped at %.0f Mbps", *mbps)
	}

	if *httpAddr != "" {
		mon := monitor.NewMulti(nil, counters...)
		if admission != nil {
			mon.WatchAdmission(admission)
		}
		bound, err := mon.ListenAndServe(*httpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		defer mon.Close()
		logger.Printf("monitoring on http://%s/{healthz,stats,metrics}", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		for _, srv := range servers {
			srv.Close()
		}
	}()

	logger.Printf("serving %q on %s (%d shard(s), %d offload cores each)",
		*name, *addr, *shards, *cores)
	var wg sync.WaitGroup
	for s := range servers {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := servers[s].Serve(listeners[s]); err != nil && err != storage.ErrServerClosed {
				logger.Printf("shard %d: %v", s, err)
			}
		}(s)
	}
	wg.Wait()

	var served, ops, sent, cpu uint64
	for _, c := range counters {
		served += c.SamplesServed.Load()
		ops += c.OpsExecuted.Load()
		sent += c.BytesSent.Load()
		cpu += c.CPUNanos.Load()
	}
	fmt.Printf("served %d samples, executed %d ops, sent %.1f MB, burned %.2fs CPU\n",
		served, ops, float64(sent)/1e6, float64(cpu)/1e9)
}
