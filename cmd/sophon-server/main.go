// Command sophon-server runs the storage-node half of the system: an
// in-memory object store holding a synthetic dataset, a near-storage
// preprocessing executor with a bounded core budget, and the wire-protocol
// server, optionally behind a token-bucket bandwidth cap (the paper's
// 500 Mbps link).
//
// Usage:
//
//	sophon-server -addr :7070 -n 2000 -cores 4 -mbps 500
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dataDir := flag.String("data-dir", "", "serve a datagen-written dataset directory instead of synthesizing")
	n := flag.Int("n", 1000, "number of synthetic samples to materialize")
	seed := flag.Uint64("seed", 1, "dataset seed")
	name := flag.String("dataset", "synthetic", "dataset name")
	minDim := flag.Int("min-dim", 80, "smallest image side (px)")
	maxDim := flag.Int("max-dim", 480, "largest image side (px)")
	crop := flag.Int("crop", 224, "RandomResizedCrop output side")
	cores := flag.Int("cores", 4, "storage CPU cores for offloaded preprocessing (0 disables)")
	slowdown := flag.Float64("slowdown", 1, "storage CPU slowdown factor (>= 1)")
	mbps := flag.Float64("mbps", 0, "cap outbound bandwidth (Mbit/s; 0 = unshaped)")
	httpAddr := flag.String("http", "", "serve /healthz, /stats, /metrics on this address (empty = disabled)")
	idle := flag.Duration("idle-timeout", 0, "drop connections idle for this long (0 = never)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently handled requests per connection (0 = default 32)")
	flag.Parse()

	logger := log.New(os.Stderr, "sophon-server: ", log.LstdFlags)

	var store *storage.Store
	if *dataDir != "" {
		logger.Printf("loading dataset from %s...", *dataDir)
		ds, err := dataset.LoadDir(*dataDir)
		if err != nil {
			logger.Fatal(err)
		}
		blobs, err := ds.Materialize()
		if err != nil {
			logger.Fatal(err)
		}
		store, err = storage.NewStore(ds.Name(), blobs)
		if err != nil {
			logger.Fatal(err)
		}
	} else {
		logger.Printf("materializing %d samples (seed %d)...", *n, *seed)
		set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
			Name: *name, N: *n, Seed: *seed, MinDim: *minDim, MaxDim: *maxDim,
		})
		if err != nil {
			logger.Fatal(err)
		}
		store, err = storage.FromImageSet(set)
		if err != nil {
			logger.Fatal(err)
		}
	}
	logger.Printf("store ready: %d objects, %.1f MB", store.N(), float64(store.TotalBytes())/1e6)

	srv, err := storage.NewServer(storage.ServerConfig{
		Store:       store,
		Pipeline:    pipeline.Standard(pipeline.StandardOptions{CropSize: *crop, FlipP: -1}),
		Cores:       *cores,
		Slowdown:    *slowdown,
		IdleTimeout: *idle,
		MaxInFlight: *maxInFlight,
		Logger:      logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	inner, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	var l net.Listener = inner
	if *mbps > 0 {
		bucket, err := netsim.NewTokenBucket(netsim.Mbps(*mbps), 256<<10, nil)
		if err != nil {
			logger.Fatal(err)
		}
		l = netsim.ShapeListener(inner, bucket)
		logger.Printf("link capped at %.0f Mbps", *mbps)
	}

	if *httpAddr != "" {
		mon := monitor.New(nil, srv.Counters())
		bound, err := mon.ListenAndServe(*httpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		defer mon.Close()
		logger.Printf("monitoring on http://%s/{healthz,stats,metrics}", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		srv.Close()
	}()

	logger.Printf("serving %q on %s (%d offload cores)", *name, inner.Addr(), *cores)
	if err := srv.Serve(l); err != nil && err != storage.ErrServerClosed {
		logger.Fatal(err)
	}
	c := srv.Counters()
	fmt.Printf("served %d samples, executed %d ops, sent %.1f MB, burned %.2fs CPU\n",
		c.SamplesServed.Load(), c.OpsExecuted.Load(),
		float64(c.BytesSent.Load())/1e6, float64(c.CPUNanos.Load())/1e9)
}
