// Command datagen writes a synthetic dataset to disk: one SJPG file per
// sample plus a manifest.json, in the layout dataset.LoadDir (and therefore
// sophon-server -data-dir) reads back.
//
// Usage:
//
//	datagen -out ./data -n 100 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/dataset"
)

func main() {
	out := flag.String("out", "./data", "output directory")
	n := flag.Int("n", 100, "number of samples")
	seed := flag.Uint64("seed", 1, "dataset seed")
	name := flag.String("name", "synthetic", "dataset name")
	minDim := flag.Int("min-dim", 80, "smallest image side (px)")
	maxDim := flag.Int("max-dim", 480, "largest image side (px)")
	cliutil.Parse("datagen", "Writes a synthetic SJPG dataset directory for sophon-server -data-dir.")

	logger := log.New(os.Stderr, "datagen: ", 0)
	cliutil.ValidateInts(logger,
		map[string]bool{"n": true, "min-dim": true, "max-dim": true},
		nil,
		map[string]int{"n": *n, "min-dim": *minDim, "max-dim": *maxDim})

	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: *name, N: *n, Seed: *seed, MinDim: *minDim, MaxDim: *maxDim,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	m, err := dataset.WriteDir(set, *out, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples (%.1f MB) to %s\n", m.N, float64(m.TotalBytes)/1e6, *out)
}
