package main

// The -fleet scenario: 100 training jobs (20 datasets × 5 tenants) contend
// for one shared storage tier. Two planning regimes run through the SAME
// deterministic fleet replay with the cross-job artifact cache:
//
//   - independent: every job plans with SOPHON as if it owned the whole
//     tier (full link, full core budget) — N single-job planners.
//   - coordinated: the fleet coordinator admits all jobs against the shared
//     budgets, granting weighted-fair bandwidth shares and water-filled
//     cores, so every plan reflects the contention it will actually see.
//
// The report records both replays plus the determinism check: the
// coordinated replay runs twice and the digests must match bit-for-bit
// (CI additionally re-runs the whole scenario and diffs the reports).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sched"
)

const (
	fleetDatasets      = 20
	fleetTenantsPerSet = 5
	fleetSamples       = 400
	fleetCores         = 16
	fleetLinkMbps      = 2000
	fleetCacheBytes    = 1 << 30
)

// fleetSide is one planning regime's slice of the report.
type fleetSide struct {
	AggregateEpochSeconds float64 `json:"aggregate_epoch_seconds"`
	MakespanSeconds       float64 `json:"makespan_seconds"`
	TrafficGB             float64 `json:"traffic_gb"`
	CacheHits             int64   `json:"cache_hits"`
	CacheHitRate          float64 `json:"cache_hit_rate"`
	CacheBytesSavedGB     float64 `json:"cache_bytes_saved_gb"`
	Digest                string  `json:"digest"`
}

type fleetReport struct {
	Kind          string  `json:"kind"` // always "BENCH"
	PR            int     `json:"pr"`
	Description   string  `json:"description"`
	GoVersion     string  `json:"go_version"`
	Jobs          int     `json:"jobs"`
	Datasets      int     `json:"datasets"`
	SamplesPerJob int     `json:"samples_per_job"`
	SharedCores   int     `json:"shared_cores"`
	SharedMbps    float64 `json:"shared_link_mbps"`

	Coordinated fleetSide `json:"coordinated"`
	Independent fleetSide `json:"independent"`
	// CoordinatedSpeedup is independent/coordinated aggregate epoch time
	// (>1 means the coordinator beats N independent planners).
	CoordinatedSpeedup float64 `json:"coordinated_speedup"`
	// DeterminismOK records that two same-seed coordinated replays produced
	// identical digests; the command exits non-zero when they differ.
	DeterminismOK bool `json:"determinism_ok"`
}

func side(r engine.FleetResult) fleetSide {
	return fleetSide{
		AggregateEpochSeconds: r.AggregateEpochTime.Seconds(),
		MakespanSeconds:       r.Makespan.Seconds(),
		TrafficGB:             float64(r.TrafficBytes) / 1e9,
		CacheHits:             r.CacheHits,
		CacheHitRate:          r.CacheHitRate(),
		CacheBytesSavedGB:     float64(r.CacheBytesSaved) / 1e9,
		Digest:                fmt.Sprintf("%016x", r.Digest),
	}
}

func writeFleetJSON(path string, seed uint64) error {
	// Per-tenant resources; the tier-wide link and core budgets are shared.
	tenantEnv := policy.Env{
		Bandwidth:       netsim.Mbps(fleetLinkMbps), // coordinator overrides with the fair share
		ComputeCores:    8,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	tierEnv := tenantEnv
	tierEnv.StorageCores = fleetCores

	// 20 datasets, 5 tenants each: tenants of one dataset share a trace
	// (same data, same profile) and a share key, so their artifacts overlap.
	type tenantSpec struct {
		name    string
		trace   *dataset.Trace
		dataset uint64
	}
	var specs []tenantSpec
	for d := 0; d < fleetDatasets; d++ {
		tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(fleetSamples), seed+uint64(d))
		if err != nil {
			return err
		}
		for j := 0; j < fleetTenantsPerSet; j++ {
			specs = append(specs, tenantSpec{
				name:    fmt.Sprintf("ds%02d-job%d", d, j),
				trace:   tr,
				dataset: uint64(d + 1),
			})
		}
	}

	// Independent regime: each job plans as if alone on the tier.
	soloEngine := policy.NewSophon()
	independent := make([]engine.FleetJob, len(specs))
	for i, s := range specs {
		plan, err := soloEngine.Plan(s.trace, tierEnv)
		if err != nil {
			return fmt.Errorf("independent plan %s: %w", s.name, err)
		}
		independent[i] = engine.FleetJob{Name: s.name, Trace: s.trace, Plan: plan, Dataset: s.dataset}
	}

	// Coordinated regime: the fleet coordinator admits every tenant against
	// the shared budgets.
	coord, err := sched.NewCoordinator(sched.FleetConfig{
		Cores:     fleetCores,
		Bandwidth: netsim.Mbps(fleetLinkMbps),
	})
	if err != nil {
		return err
	}
	for _, s := range specs {
		if _, err := coord.Admit(sched.Tenant{
			Name: s.name, Trace: s.trace, Env: tenantEnv, Dataset: s.dataset,
		}); err != nil {
			return fmt.Errorf("admit %s: %w", s.name, err)
		}
	}
	grants := coord.Grants()
	coordinated := make([]engine.FleetJob, len(specs))
	for i, s := range specs {
		coordinated[i] = engine.FleetJob{Name: s.name, Trace: s.trace, Plan: grants[s.name].Plan, Dataset: s.dataset}
	}

	replay := func(jobs []engine.FleetJob) (engine.FleetResult, error) {
		return engine.RunFleet(engine.FleetConfig{
			Jobs:        jobs,
			Env:         tierEnv,
			BatchSize:   32,
			CacheBytes:  fleetCacheBytes,
			ShuffleSeed: seed,
		})
	}
	coordRes, err := replay(coordinated)
	if err != nil {
		return fmt.Errorf("coordinated replay: %w", err)
	}
	coordRes2, err := replay(coordinated)
	if err != nil {
		return fmt.Errorf("coordinated replay (2nd): %w", err)
	}
	indepRes, err := replay(independent)
	if err != nil {
		return fmt.Errorf("independent replay: %w", err)
	}

	report := fleetReport{
		Kind: "BENCH",
		PR:   6,
		Description: "Fleet control plane: 100 jobs (20 datasets × 5 tenants) on one shared tier. " +
			"Coordinated = fleet coordinator (weighted fair bandwidth + water-filled cores); " +
			"independent = each job planned as if alone. Both replayed through the deterministic " +
			"fleet DES with the cross-job artifact cache. Regenerate with `sophon-bench -fleet <file>`.",
		GoVersion:          runtime.Version(),
		Jobs:               len(specs),
		Datasets:           fleetDatasets,
		SamplesPerJob:      fleetSamples,
		SharedCores:        fleetCores,
		SharedMbps:         fleetLinkMbps,
		Coordinated:        side(coordRes),
		Independent:        side(indepRes),
		CoordinatedSpeedup: indepRes.AggregateEpochTime.Seconds() / coordRes.AggregateEpochTime.Seconds(),
		DeterminismOK:      coordRes.Digest == coordRes2.Digest,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !report.DeterminismOK {
		return fmt.Errorf("fleet replay not deterministic: %016x vs %016x", coordRes.Digest, coordRes2.Digest)
	}
	if report.CoordinatedSpeedup <= 1 {
		return fmt.Errorf("coordinated planning (%.1fs aggregate) did not beat independent planning (%.1fs)",
			report.Coordinated.AggregateEpochSeconds, report.Independent.AggregateEpochSeconds)
	}
	if coordRes.CacheHits == 0 {
		return fmt.Errorf("overlapping-dataset tenants produced no cross-job cache hits")
	}
	return nil
}
