package main

// The -prepsched mode: the variance-aware preprocessing scheduler comparison
// on a compute-bound skewed epoch. Both runs replay the identical shuffled
// stream through the discrete-event engine with per-worker preprocessing
// queues; the only difference is the dispatch model — static FIFO assignment
// (head-of-line blocking behind heavy samples) versus work-stealing. The
// JSON report (BENCH_pr9.json) records epoch time, per-worker stall
// fraction, and steal counts for both, and the speedup.

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// prepschedOptions collects the -prepsched.* knobs.
type prepschedOptions struct {
	samples   int
	workers   int
	heavyFrac float64
	costRatio int
	threshold float64 // heavy classification ratio (0 = prepsched default)
}

// prepschedMode is one dispatch model's measured epoch.
type prepschedMode struct {
	EpochSeconds         float64   `json:"epoch_seconds"`
	WorkerStallFrac      float64   `json:"worker_stall_frac"`
	PerWorkerIdleSeconds []float64 `json:"per_worker_idle_seconds"`
	Steals               int       `json:"steals"`
	TrafficMB            float64   `json:"traffic_mb"`
}

// prepschedReport is the JSON shape of BENCH_pr9.json.
type prepschedReport struct {
	Kind        string  `json:"kind"` // always "BENCH"
	PR          int     `json:"pr"`
	Description string  `json:"description"`
	GoVersion   string  `json:"go_version"`
	Samples     int     `json:"samples"`
	Workers     int     `json:"workers"`
	HeavyFrac   float64 `json:"heavy_frac"`
	CostRatio   int     `json:"cost_ratio"`
	// HeavyRatio is the classifier threshold as a multiple of the mean
	// per-sample cost (0 = prepsched's default).
	HeavyRatio float64 `json:"heavy_threshold_ratio,omitempty"`
	// HeavySamples is the classifier's heavy count — identical across modes
	// by construction (classification is scheduling-independent).
	HeavySamples int           `json:"heavy_samples"`
	FIFO         prepschedMode `json:"fifo"`
	Steal        prepschedMode `json:"steal"`
	// PrepschedSpeedup is FIFO epoch time / steal epoch time.
	PrepschedSpeedup float64 `json:"prepsched_speedup"`
}

func prepschedModeOf(r engine.Result) prepschedMode {
	m := prepschedMode{
		EpochSeconds:    r.EpochTime.Seconds(),
		WorkerStallFrac: r.WorkerStallFrac,
		Steals:          r.Steals,
		TrafficMB:       float64(r.TrafficBytes) / (1 << 20),
	}
	for _, d := range r.PerWorkerIdle {
		m.PerWorkerIdleSeconds = append(m.PerWorkerIdleSeconds, d.Seconds())
	}
	return m
}

// skewedTrace makes heavyFrac of the samples costRatio× more expensive in
// every preprocessing op — the service-time mix the comparison is about. The
// heavy set is chosen by a seeded PCG so heavy samples land spread across
// stream positions rather than clustered.
func skewedTrace(n int, heavyFrac float64, costRatio int, seed uint64) (*dataset.Trace, error) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	heavy := int(float64(n) * heavyFrac)
	for _, i := range rng.Perm(n)[:heavy] {
		for op := range tr.Records[i].OpTimes {
			tr.Records[i].OpTimes[op] *= time.Duration(costRatio)
		}
	}
	return tr, nil
}

// writePrepschedJSON runs the comparison and writes the report. The workload
// is deliberately compute-bound (the link rate is scaled far past need): the
// binding resource is the per-worker preprocessing queue, so any time a
// worker idles behind another's heavy sample is epoch time lost. FIFO pins
// sample i to worker i mod W; steal lets an idle worker take the queued work
// from the loaded one's tail.
func writePrepschedJSON(path string, seed uint64, opt prepschedOptions) error {
	tr, err := skewedTrace(opt.samples, opt.heavyFrac, opt.costRatio, seed)
	if err != nil {
		return err
	}
	plan, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
	if err != nil {
		return err
	}
	env := policy.Env{
		Bandwidth:       netsim.Mbps(500) * 1000, // never the bottleneck
		ComputeCores:    opt.workers,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	base := engine.Config{
		Trace:       tr,
		Plan:        plan,
		Env:         env,
		ShuffleSeed: seed,
		BatchSize:   64,
		Lookahead:   8,
		PrepWorkers: opt.workers,
		HeavyRatio:  opt.threshold,
	}
	fifoCfg := base
	fifoCfg.PrepSched = engine.PrepSchedFIFO
	fifo, err := engine.Run(fifoCfg)
	if err != nil {
		return err
	}
	stealCfg := base
	stealCfg.PrepSched = engine.PrepSchedSteal
	steal, err := engine.Run(stealCfg)
	if err != nil {
		return err
	}
	if fifo.TrafficBytes != steal.TrafficBytes || fifo.HeavySamples != steal.HeavySamples {
		return fmt.Errorf("prepsched: scheduling changed the workload: traffic %d/%d heavy %d/%d",
			fifo.TrafficBytes, steal.TrafficBytes, fifo.HeavySamples, steal.HeavySamples)
	}
	report := prepschedReport{
		Kind: "BENCH",
		PR:   9,
		Description: "Variance-aware preprocessing scheduler: per-worker work-stealing deques vs static " +
			"FIFO assignment on a compute-bound epoch with a skewed heavy/light cost mix (No-Off plan, " +
			"AlexNet). Regenerate with `sophon-bench -prepsched <file>`.",
		GoVersion:        runtime.Version(),
		Samples:          tr.N(),
		Workers:          opt.workers,
		HeavyFrac:        opt.heavyFrac,
		CostRatio:        opt.costRatio,
		HeavyRatio:       opt.threshold,
		HeavySamples:     steal.HeavySamples,
		FIFO:             prepschedModeOf(fifo),
		Steal:            prepschedModeOf(steal),
		PrepschedSpeedup: fifo.EpochTime.Seconds() / steal.EpochTime.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sophon-bench: prepsched: fifo %.2fs (%.1f%% worker stall) vs steal %.2fs (%.1f%% worker stall, %d steals), %.3fx\n",
		report.FIFO.EpochSeconds, 100*report.FIFO.WorkerStallFrac,
		report.Steal.EpochSeconds, 100*report.Steal.WorkerStallFrac,
		report.Steal.Steals, report.PrepschedSpeedup)
	return nil
}
