package main

// The -prefetch mode: the clairvoyant-vs-reactive loader comparison on an
// I/O-bound sharded epoch. Both runs replay the identical shuffled access
// stream through the discrete-event engine; the only difference is the
// loader model — a reactive global prefetch window versus per-shard
// lookahead issue queues. The JSON report (BENCH_pr8.json) records epoch
// time and per-link idle for both, and the speedup.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// prefetchOptions collects the -prefetch.* knobs.
type prefetchOptions struct {
	samples int
	shards  int
	depth   int
}

// prefetchMode is one loader model's measured epoch.
type prefetchMode struct {
	EpochSeconds       float64   `json:"epoch_seconds"`
	LinkIdleFrac       float64   `json:"link_idle_frac"`
	PerLinkIdleSeconds []float64 `json:"per_link_idle_seconds"`
	TrafficMB          float64   `json:"traffic_mb"`
	GPUUtilization     float64   `json:"gpu_utilization"`
}

// prefetchReport is the JSON shape of BENCH_pr8.json.
type prefetchReport struct {
	Kind        string       `json:"kind"` // always "BENCH"
	PR          int          `json:"pr"`
	Description string       `json:"description"`
	GoVersion   string       `json:"go_version"`
	Samples     int          `json:"samples"`
	Shards      int          `json:"shards"`
	BatchSize   int          `json:"batch_size"`
	Depth       int          `json:"lookahead_depth"`
	Reactive    prefetchMode `json:"reactive"`
	Clairvoyant prefetchMode `json:"clairvoyant"`
	// PrefetchSpeedup is reactive epoch time / clairvoyant epoch time.
	PrefetchSpeedup float64 `json:"prefetch_speedup"`
}

func modeOf(r engine.Result) prefetchMode {
	m := prefetchMode{
		EpochSeconds:   r.EpochTime.Seconds(),
		LinkIdleFrac:   r.LinkIdleFrac,
		TrafficMB:      float64(r.TrafficBytes) / (1 << 20),
		GPUUtilization: r.GPUUtilization,
	}
	for _, d := range r.PerLinkIdle {
		m.PerLinkIdleSeconds = append(m.PerLinkIdleSeconds, d.Seconds())
	}
	return m
}

// writePrefetchJSON runs the comparison and writes the report. The workload
// is the paper's I/O-bound regime: AlexNet over OpenImages with no
// offloading, so the shard links are the binding resource and any time a
// link sits idle is epoch time lost. The reactive run uses the engine's
// default window (4× the GPU batch) — the point of the comparison is that a
// fixed global window leaves links idle as the shard fan-out grows, while
// per-shard lookahead depth keeps every link saturated at any fan-out.
func writePrefetchJSON(path string, seed uint64, opt prefetchOptions) error {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(opt.samples), seed)
	if err != nil {
		return err
	}
	plan, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
	if err != nil {
		return err
	}
	env := policy.Env{
		Bandwidth:       netsim.Mbps(500), // the paper's storage link, per shard
		ComputeCores:    48,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	base := engine.Config{
		Trace:       tr,
		Plan:        plan,
		Env:         env,
		Shards:      opt.shards,
		ShuffleSeed: seed,
		BatchSize:   64,
		RTT:         200 * time.Microsecond,
	}
	reactive, err := engine.Run(base)
	if err != nil {
		return err
	}
	la := base
	la.Lookahead = opt.depth
	clair, err := engine.Run(la)
	if err != nil {
		return err
	}
	report := prefetchReport{
		Kind: "BENCH",
		PR:   8,
		Description: "Clairvoyant shard-aware prefetching: per-shard lookahead issue queues vs the " +
			"reactive global prefetch window on an I/O-bound sharded epoch (No-Off plan, AlexNet). " +
			"Regenerate with `sophon-bench -prefetch <file>`.",
		GoVersion:       runtime.Version(),
		Samples:         tr.N(),
		Shards:          opt.shards,
		BatchSize:       base.BatchSize,
		Depth:           opt.depth,
		Reactive:        modeOf(reactive),
		Clairvoyant:     modeOf(clair),
		PrefetchSpeedup: reactive.EpochTime.Seconds() / clair.EpochTime.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sophon-bench: prefetch: reactive %.2fs (%.1f%% link idle) vs clairvoyant %.2fs (%.2f%% link idle), %.3fx\n",
		report.Reactive.EpochSeconds, 100*report.Reactive.LinkIdleFrac,
		report.Clairvoyant.EpochSeconds, 100*report.Clairvoyant.LinkIdleFrac,
		report.PrefetchSpeedup)
	return nil
}
