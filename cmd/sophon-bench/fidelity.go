package main

// The -fidelity mode: the progressive-fidelity evaluation behind BENCH_pr10.
// It first calibrates the byte/quality ladder from the LIVE codec — encoding
// synthetic photos as progressive containers, slicing every prefix depth,
// and measuring real prefix byte fractions and reconstruction error — then
// plans the same storage-core-starved epoch twice: the paper's discrete
// greedy loop alone, and with the progressive second pass, which sheds
// further bytes by withholding refinement scans at zero storage-CPU cost.
// Both plans replay through the discrete-event engine; the report records
// traffic, epoch time, and mean reconstruction quality for both, and the
// whole scenario runs twice to prove bit-identical determinism.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/imaging"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// fidelityOptions collects the -fidelity.* knobs.
type fidelityOptions struct {
	samples   int
	floor     float64 // per-sample quality floor
	meanFloor float64 // plan-wide mean quality floor
}

// fidelityMode is one plan's measured epoch.
type fidelityMode struct {
	Plan           string  `json:"plan"`
	TrafficMB      float64 `json:"traffic_mb"`
	EpochSeconds   float64 `json:"epoch_seconds"`
	MeanQuality    float64 `json:"mean_quality"`
	Offloaded      int     `json:"offloaded"`
	Reduced        int     `json:"reduced"`
	BytesSavedMB   float64 `json:"fidelity_bytes_saved_mb"`
	GPUUtilization float64 `json:"gpu_utilization"`
}

// fidelityReport is the JSON shape of BENCH_pr10.json.
type fidelityReport struct {
	Kind        string `json:"kind"` // always "BENCH"
	PR          int    `json:"pr"`
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	Samples     int    `json:"samples"`

	// The ladder measured from the live codec (level k = first k+1 scans).
	CalibratedByteFrac []float64 `json:"calibrated_byte_frac"`
	CalibratedQuality  []float64 `json:"calibrated_quality"`

	QualityFloor     float64 `json:"quality_floor"`
	MeanQualityFloor float64 `json:"mean_quality_floor"`

	Discrete    fidelityMode `json:"discrete"`
	Progressive fidelityMode `json:"progressive"`

	// TrafficReduction is 1 − progressive/discrete traffic: the headline
	// bytes-on-the-wire win of the fidelity continuum at iso-quality.
	TrafficReduction float64 `json:"traffic_reduction"`
	// Deterministic records that a second full run (calibration, planning,
	// simulation) reproduced this report bit for bit.
	Deterministic bool `json:"deterministic"`
}

// calibrateFidelity measures the progressive ladder from the live codec on a
// deterministic synthetic photo set: ByteFrac[k] is the mean fraction of the
// container shipped by the first k+1 scans, Quality[k] the mean
// reconstruction quality (1 − mean absolute pixel error / 255) of decoding
// that prefix.
func calibrateFidelity(seed uint64) (policy.FidelityModel, error) {
	const probes = 16
	fm := policy.FidelityModel{
		Levels:   imaging.MaxScans,
		ByteFrac: make([]float64, imaging.MaxScans),
		Quality:  make([]float64, imaging.MaxScans),
	}
	for i := 0; i < probes; i++ {
		im, err := imaging.Synthesize(imaging.SynthParams{
			W: 96 + 32*(i%5), H: 96 + 32*(i%3), Detail: float64(i%8) / 8, Seed: seed + uint64(i),
		})
		if err != nil {
			return fm, err
		}
		full, err := imaging.EncodeProgressive(im, imaging.DefaultQuality, imaging.MaxScans)
		if err != nil {
			return fm, err
		}
		ref, _, err := imaging.DecodeProgressive(full)
		if err != nil {
			return fm, err
		}
		for k := 1; k <= imaging.MaxScans; k++ {
			n, err := imaging.PrefixSize(full, k)
			if err != nil {
				return fm, err
			}
			fm.ByteFrac[k-1] += float64(n) / float64(len(full))
			dec, err := imaging.DecodeAtFidelity(full, k)
			if err != nil {
				return fm, err
			}
			var abs int64
			for p := range dec.Pix {
				d := int64(dec.Pix[p]) - int64(ref.Pix[p])
				if d < 0 {
					d = -d
				}
				abs += d
			}
			fm.Quality[k-1] += 1 - float64(abs)/float64(len(dec.Pix))/255
		}
	}
	for k := range fm.ByteFrac {
		fm.ByteFrac[k] /= probes
		fm.Quality[k] /= probes
	}
	// Full depth is exact by construction; pin the float averages so the
	// ladder validates (the codec guarantees both are 1 at full depth).
	fm.ByteFrac[imaging.MaxScans-1] = 1
	fm.Quality[imaging.MaxScans-1] = 1
	return fm, fm.Validate()
}

// runFidelityScenario performs one full calibration + plan + simulate pass.
func runFidelityScenario(seed uint64, opt fidelityOptions) (fidelityReport, error) {
	fm, err := calibrateFidelity(seed)
	if err != nil {
		return fidelityReport{}, fmt.Errorf("calibrate: %w", err)
	}
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(opt.samples), seed)
	if err != nil {
		return fidelityReport{}, err
	}
	// The storage-core-starved extreme of the paper's I/O-bound regime: the
	// tier has NO preprocessing cores, so the discrete decision space is
	// empty (the best discrete-cut plan is No-Off) and the link stays the
	// strictly dominant cost for the whole epoch. This is exactly where a
	// zero-CPU byte lever matters: withholding refinement scans is the only
	// traffic reduction available, and it costs the server nothing but a
	// container slice.
	env := policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    0,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	discretePlan, err := policy.NewSophon().Plan(tr, env)
	if err != nil {
		return fidelityReport{}, err
	}
	prog := &policy.Sophon{Fidelity: &policy.FidelityPass{
		Model:            fm,
		QualityFloor:     opt.floor,
		MeanQualityFloor: opt.meanFloor,
	}}
	progPlan, err := prog.Plan(tr, env)
	if err != nil {
		return fidelityReport{}, err
	}
	base := engine.Config{
		Trace:       tr,
		Env:         env,
		ShuffleSeed: seed,
		BatchSize:   64,
		RTT:         200 * time.Microsecond,
		Fidelity:    &fm,
	}
	dc := base
	dc.Plan = discretePlan
	discrete, err := engine.Run(dc)
	if err != nil {
		return fidelityReport{}, err
	}
	pc := base
	pc.Plan = progPlan
	progressive, err := engine.Run(pc)
	if err != nil {
		return fidelityReport{}, err
	}
	modeOf := func(name string, r engine.Result) fidelityMode {
		return fidelityMode{
			Plan:           name,
			TrafficMB:      float64(r.TrafficBytes) / (1 << 20),
			EpochSeconds:   r.EpochTime.Seconds(),
			MeanQuality:    r.MeanQuality,
			Offloaded:      r.SamplesOffloaded,
			Reduced:        r.SamplesReduced,
			BytesSavedMB:   float64(r.FidelityBytesSaved) / (1 << 20),
			GPUUtilization: r.GPUUtilization,
		}
	}
	return fidelityReport{
		Kind: "BENCH",
		PR:   10,
		Description: "Progressive artifact fidelity: SOPHON's discrete greedy plan vs the same plan with the " +
			"progressive second pass (refinement scans withheld at zero storage-CPU cost) on a " +
			"storage-core-starved I/O-bound epoch, with the byte/quality ladder calibrated from the live " +
			"SJPR codec. Regenerate with `sophon-bench -fidelity <file>`.",
		GoVersion:          runtime.Version(),
		Samples:            tr.N(),
		CalibratedByteFrac: fm.ByteFrac,
		CalibratedQuality:  fm.Quality,
		QualityFloor:       opt.floor,
		MeanQualityFloor:   opt.meanFloor,
		Discrete:           modeOf(discretePlan.Name, discrete),
		Progressive:        modeOf(progPlan.Name, progressive),
		TrafficReduction:   1 - float64(progressive.TrafficBytes)/float64(discrete.TrafficBytes),
	}, nil
}

// writeFidelityJSON runs the scenario twice, requires bit-identical reports
// and the headline ≥15 % traffic reduction at iso-quality, and writes the
// report.
func writeFidelityJSON(path string, seed uint64, opt fidelityOptions) error {
	first, err := runFidelityScenario(seed, opt)
	if err != nil {
		return err
	}
	second, err := runFidelityScenario(seed, opt)
	if err != nil {
		return err
	}
	a, err := json.Marshal(first)
	if err != nil {
		return err
	}
	b, err := json.Marshal(second)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("fidelity: scenario is not deterministic across replays")
	}
	first.Deterministic = true
	if first.TrafficReduction < 0.15 {
		return fmt.Errorf("fidelity: traffic reduction %.1f%% below the 15%% bar",
			100*first.TrafficReduction)
	}
	if first.Progressive.MeanQuality < opt.meanFloor {
		return fmt.Errorf("fidelity: mean quality %.4f below the %.4f floor",
			first.Progressive.MeanQuality, opt.meanFloor)
	}
	data, err := json.MarshalIndent(first, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sophon-bench: fidelity: discrete %.1f MB vs progressive %.1f MB (−%.1f%%) at mean quality %.4f\n",
		first.Discrete.TrafficMB, first.Progressive.TrafficMB,
		100*first.TrafficReduction, first.Progressive.MeanQuality)
	return nil
}
