package main

// The -load / -gate / -convert modes: the heavy-traffic serving harness's
// CLI surface. -load runs the open-loop load generator against the simulated
// sharded tier and writes a versioned SLO record; -gate.cur diffs a fresh
// record against the committed baseline and exits non-zero on regression
// (the CI perf-trajectory gate); -convert folds historical BENCH_pr*.json
// records into one TRAJECTORY file.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/perfbench"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// loadOptions collects the -load.* knobs.
type loadOptions struct {
	sessions int
	duration time.Duration
	shards   int
	cores    int
	mbps     float64
}

// buildLoadJobs derives the mixed job profiles from fleet tenant specs: two
// tenants (an OpenImages-profile job and an ImageNet-profile job) admitted
// to one coordinator sharing the tier's cores and link, their grants turned
// into loadgen specs. Roughly 2/3 of the sessions go to the heavier tenant.
// Arrival rates are scaled so the offered link traffic is util × the tier's
// capacity — util < 1 is a steady workload, util > 1 open-loop overload.
func buildLoadJobs(seed uint64, opt loadOptions, util float64) ([]loadgen.JobSpec, error) {
	trA, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(1200), seed)
	if err != nil {
		return nil, err
	}
	trB, err := dataset.GenerateTrace(dataset.ImageNet11G().ScaledTo(800), seed+1)
	if err != nil {
		return nil, err
	}
	coord, err := sched.NewCoordinator(sched.FleetConfig{
		Cores:     opt.shards * opt.cores,
		Bandwidth: netsim.Mbps(opt.mbps),
		Shards:    opt.shards,
		Clock:     simclock.NewVirtual(time.Unix(0, 0)),
	})
	if err != nil {
		return nil, err
	}
	env := policy.Env{
		ComputeCores:    16,
		Bandwidth:       netsim.Mbps(opt.mbps),
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	tenants := []sched.Tenant{
		{Name: "openimages", Weight: 2, Trace: trA, Env: env},
		{Name: "imagenet", Weight: 1, Trace: trB, Env: env},
	}
	var jobs []loadgen.JobSpec
	for i, t := range tenants {
		if _, err := coord.Admit(t); err != nil {
			return nil, fmt.Errorf("admit %s: %w", t.Name, err)
		}
		grant := coord.Grants()[t.Name]
		sessions := opt.sessions * 2 / 3
		hitRate := 0.4
		if i == 1 {
			sessions = opt.sessions - sessions
			hitRate = 0.3
		}
		// Provisional per-session rates (scaled to the link below): the
		// heavier tenant's sessions also arrive faster.
		spec := loadgen.SpecFromTenant(t, grant, sessions, 1.5, hitRate)
		if i == 1 {
			// The lighter tenant arrives in bursts — mixed arrival processes
			// stress the admission queue harder than two smooth streams.
			spec.Arrival = loadgen.Bursty
			spec.Burst = 8
			spec.Rate = 1
		}
		jobs = append(jobs, spec)
	}
	// Scale every rate so offered traffic = util × tier bandwidth.
	var offered float64
	for _, j := range jobs {
		perReq := j.Mix[1]*float64(j.OffloadedBytes) + j.Mix[2]*float64(j.RawBytes)
		offered += float64(j.Sessions) * j.Rate * perReq
	}
	if offered <= 0 {
		return nil, fmt.Errorf("load workload offers no link traffic")
	}
	scale := util * netsim.Mbps(opt.mbps) / offered
	for i := range jobs {
		jobs[i].Rate *= scale
	}
	return jobs, nil
}

// runLoadScenario runs one named workload through the DES harness.
func runLoadScenario(name string, seed uint64, opt loadOptions, util float64, adm loadgen.AdmissionSpec) (perfbench.SLOScenario, *loadgen.Report, error) {
	jobs, err := buildLoadJobs(seed, opt, util)
	if err != nil {
		return perfbench.SLOScenario{}, nil, err
	}
	rep, err := loadgen.Run(loadgen.Config{
		Seed:            seed,
		Duration:        opt.duration,
		Jobs:            jobs,
		Shards:          opt.shards,
		CoresPerShard:   opt.cores,
		LinkBytesPerSec: netsim.Mbps(opt.mbps) / float64(opt.shards),
		Admission:       adm,
	})
	if err != nil {
		return perfbench.SLOScenario{}, nil, err
	}
	return perfbench.ScenarioFromReport(name, rep), rep, nil
}

// writeLoadJSON runs the steady and overload scenarios and writes the SLO
// record. Steady offers ~65% of tier capacity; overload offers 2.6x
// capacity against a tight admission budget, so the record shows both
// nominal SLOs and shed-load behavior.
func writeLoadJSON(path string, seed uint64, opt loadOptions) error {
	steady, steadyRep, err := runLoadScenario("steady", seed, opt, 0.65, loadgen.AdmissionSpec{})
	if err != nil {
		return err
	}
	overload, overloadRep, err := runLoadScenario("overload", seed, opt, 2.6, loadgen.AdmissionSpec{
		MaxInFlightBytes:  2 << 20,
		MaxQueuePerTenant: 16,
	})
	if err != nil {
		return err
	}
	record := perfbench.SLORecord{
		Kind:      "SLO",
		Version:   perfbench.SLORecordVersion,
		GoVersion: runtime.Version(),
		Seed:      seed,
		Scenarios: []perfbench.SLOScenario{steady, overload},
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, s := range []struct {
		name string
		rep  *loadgen.Report
	}{{"steady", steadyRep}, {"overload", overloadRep}} {
		fmt.Fprintf(os.Stderr, "sophon-bench: %-8s %d sessions, %.0f rps offered, %.0f rps served, %.2f%% shed",
			s.name, s.rep.Sessions, s.rep.OfferedRPS, s.rep.ThroughputRPS, 100*s.rep.ShedRate)
		if c := s.rep.Classes["raw"]; c != nil {
			fmt.Fprintf(os.Stderr, ", raw p99 %.2f ms", float64(c.P99.Nanoseconds())/1e6)
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}

// runGate diffs two committed perf records and prints every regression past
// the thresholds; returns false (→ exit 1) when any is found. The record
// shape is detected from the files: two SLO records gate latency and
// throughput with CompareSLO, two alloc-suite BENCH records gate allocs/op
// with CompareBench (allocSlack extra allocations tolerated per kernel).
// Mixing shapes is a usage error.
func runGate(prevPath, curPath string, noise float64, allocSlack int64) bool {
	read := func(path string) ([]byte, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			return nil, false
		}
		return data, true
	}
	prevData, ok := read(prevPath)
	if !ok {
		return false
	}
	curData, ok := read(curPath)
	if !ok {
		return false
	}
	if perfbench.IsBenchSuite(prevData) != perfbench.IsBenchSuite(curData) {
		fmt.Fprintf(os.Stderr, "sophon-bench: %s and %s are different record shapes; gate like against like\n", prevPath, curPath)
		return false
	}

	var regs []string
	if perfbench.IsBenchSuite(prevData) {
		var prev, cur perfbench.BenchRecord
		if err := json.Unmarshal(prevData, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %s: %v\n", prevPath, err)
			return false
		}
		if err := json.Unmarshal(curData, &cur); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %s: %v\n", curPath, err)
			return false
		}
		regs = perfbench.CompareBench(prev, cur, allocSlack)
	} else {
		decode := func(path string, data []byte) (perfbench.SLORecord, bool) {
			var rec perfbench.SLORecord
			if err := json.Unmarshal(data, &rec); err != nil {
				fmt.Fprintf(os.Stderr, "sophon-bench: %s: %v\n", path, err)
				return rec, false
			}
			if rec.Kind != "SLO" {
				fmt.Fprintf(os.Stderr, "sophon-bench: %s: kind %q, want SLO or an alloc-suite BENCH record\n", path, rec.Kind)
				return rec, false
			}
			return rec, true
		}
		prev, ok := decode(prevPath, prevData)
		if !ok {
			return false
		}
		cur, ok := decode(curPath, curData)
		if !ok {
			return false
		}
		regs = perfbench.CompareSLO(prev, cur, noise)
	}
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "sophon-bench: gate PASS (%s vs %s)\n", curPath, prevPath)
		return true
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "sophon-bench: gate FAIL: %s\n", r)
	}
	return false
}

// writeConvertJSON folds the comma-separated record files into one
// TRAJECTORY file, in the order given.
func writeConvertJSON(files, outPath string) error {
	traj := perfbench.Trajectory{Kind: "TRAJECTORY", Version: 1}
	for _, f := range strings.Split(files, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		e, err := perfbench.ConvertBenchRecord(f, data)
		if err != nil {
			return err
		}
		traj.Entries = append(traj.Entries, e)
	}
	if len(traj.Entries) == 0 {
		return fmt.Errorf("no records in -convert %q", files)
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
