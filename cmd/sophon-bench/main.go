// Command sophon-bench regenerates every table and figure from the paper's
// evaluation section and writes the report to stdout (or a file).
//
// Usage:
//
//	sophon-bench [-seed N] [-openimages N] [-imagenet N] [-o report.txt]
//	sophon-bench -json bench.json
//
// With no size overrides the datasets run at paper scale (40 000 OpenImages
// samples, 91 000 ImageNet samples); the whole suite still completes in a
// few seconds because the evaluation replays profiled traces through the
// discrete-event engine.
//
// With -json the command instead runs the data-plane micro-benchmark suite
// (codec, fused tensor kernel, pipeline, wire framing) and writes one BENCH
// record per kernel — ns/op, B/op, allocs/op, MB/s — to the given file, then
// exits without running the evaluation. These records are the input to the
// allocation-regression tracking in BENCH_pr3.json.
//
// With -adaptive the command instead runs the adaptive control-plane
// scenario — the storage link reshaped 500→250 Mbps mid-run, the controller
// replanning at the next epoch boundary — and writes a JSON report comparing
// adaptive, static, and oracle epoch times (the contents of BENCH_pr5.json).
//
// With -fleet the command instead runs the multi-tenant fleet scenario — 100
// jobs (20 datasets × 5 tenants) planned by the fleet coordinator against the
// shared tier budgets versus 100 independent single-job planners, both
// replayed through the deterministic fleet DES with the cross-job artifact
// cache — and writes a JSON comparison (the contents of BENCH_pr6.json). The
// coordinated replay runs twice; mismatching digests fail the command.
//
// With -load the command instead runs the heavy-traffic serving harness:
// thousands of open-loop sessions (Poisson and bursty arrivals, job profiles
// drawn from fleet tenant specs) against the simulated sharded tier, once at
// ~65% of link capacity and once at 2.6x capacity behind admission control.
// The output is a versioned SLO record — p50/p90/p99/p999 per fetch class
// (cache hit / offloaded / raw) plus throughput and shed rates — the
// contents of BENCH_pr7.json. -gate.prev/-gate.cur diff two committed perf
// records and exit non-zero on any regression (the CI perf-trajectory gate):
// two SLO records gate p99 and throughput past -gate.noise; two alloc-suite
// BENCH records (from -json) gate allocs/op against the baseline plus
// -gate.allocslack. -convert folds historical BENCH_pr*.json and SLO records
// into one TRAJECTORY.json time series.
//
// With -prefetch the command instead runs the clairvoyant-vs-reactive loader
// comparison on an I/O-bound sharded epoch — per-shard lookahead issue queues
// against the reactive global prefetch window, same shuffled stream — and
// writes a JSON report with epoch times and per-link idle fractions (the
// contents of BENCH_pr8.json).
//
// With -prepsched the command instead runs the variance-aware preprocessing
// scheduler comparison on a compute-bound epoch with a skewed heavy/light
// cost mix — per-worker work-stealing deques against static FIFO assignment,
// same shuffled stream — and writes a JSON report with epoch times,
// per-worker stall fractions, and steal counts (the contents of
// BENCH_pr9.json).
//
// With -chaos.seed the command instead runs the deterministic chaos soak: a
// trainer over a fault-injected sharded storage tier, checked against a
// fault-free reference for bit-identical artifacts and exact failure
// accounting. One JSON report per soak is written to stdout; -chaos.duration
// keeps soaking with deterministically derived seeds until the budget runs
// out, and -chaos.class picks the fault mix. A failing soak's report carries
// the seed and plan digest needed to replay it exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/perfbench"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/soak"
)

func writeBenchJSON(path string) error {
	report, err := perfbench.NewBenchRecord()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// adaptiveReport is the JSON shape of the adaptive control-plane scenario:
// the link is reshaped 500→250 Mbps after epoch 2 and the adaptive run is
// compared against the frozen initial plan and against an oracle planned
// directly for the degraded link.
type adaptiveReport struct {
	Kind        string  `json:"kind"` // always "BENCH"
	PR          int     `json:"pr"`
	Description string  `json:"description"`
	GoVersion   string  `json:"go_version"`
	Samples     int     `json:"samples"`
	BaseMbps    float64 `json:"base_mbps"`
	ReshapeMbps float64 `json:"reshape_mbps"`
	// ReshapeEpoch is the first epoch the degraded link applies to.
	ReshapeEpoch uint64             `json:"reshape_epoch"`
	Adaptive     []core.SimEpoch    `json:"adaptive_epochs"`
	Static       []core.SimEpoch    `json:"static_epochs"`
	History      []core.ReplanEvent `json:"replan_history"`
	// OracleEpochSeconds is one degraded epoch under the oracle plan.
	OracleEpochSeconds float64 `json:"oracle_epoch_seconds"`
	// AdaptiveVsOracle and StaticVsAdaptive summarize the post-replan tail:
	// mean epoch-time ratios (1.0 = parity; lower is better for the first).
	AdaptiveVsOracle float64 `json:"adaptive_vs_oracle"`
	StaticVsAdaptive float64 `json:"static_vs_adaptive"`
}

func writeAdaptiveJSON(path string, seed uint64) error {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(2000), seed)
	if err != nil {
		return err
	}
	// Two storage cores keep the offload crossover bandwidth-dependent (with
	// plentiful cores the same plan is optimal at every link rate and the
	// scenario shows nothing).
	env := policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	const epochs = 6
	const reshapeEpoch = 3
	degraded := env
	degraded.Bandwidth = netsim.Mbps(250)
	envAt := func(e uint64) policy.Env {
		if e >= reshapeEpoch {
			return degraded
		}
		return env
	}
	cfg := core.SimConfig{
		Trace: tr, Env: env, Epochs: epochs, EnvAt: envAt, Adaptive: true,
		Drift: profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 1},
	}
	adaptive, err := core.RunAdaptiveSim(cfg)
	if err != nil {
		return err
	}
	staticCfg := cfg
	staticCfg.Adaptive = false
	static, err := core.RunAdaptiveSim(staticCfg)
	if err != nil {
		return err
	}
	oracleDecision, err := core.New().Decide(tr, degraded)
	if err != nil {
		return err
	}
	oracle, err := engine.Run(engine.Config{Trace: tr, Plan: oracleDecision.Plan, Env: degraded})
	if err != nil {
		return err
	}

	// Post-replan tail: every epoch after the boundary the replan landed on.
	tailFrom := adaptive.History[len(adaptive.History)-1].Epoch
	var aSum, sSum, n float64
	for i := range adaptive.Epochs {
		if adaptive.Epochs[i].Epoch < tailFrom {
			continue
		}
		aSum += adaptive.Epochs[i].EpochTime.Seconds()
		sSum += static.Epochs[i].EpochTime.Seconds()
		n++
	}
	report := adaptiveReport{
		Kind: "BENCH",
		PR:   5,
		Description: "Adaptive control plane: link reshaped 500→250 Mbps after epoch 2; " +
			"the controller replans at the next boundary and converges on the oracle plan. " +
			"Regenerate with `sophon-bench -adaptive <file>`.",
		GoVersion:          runtime.Version(),
		Samples:            tr.N(),
		BaseMbps:           500,
		ReshapeMbps:        250,
		ReshapeEpoch:       reshapeEpoch,
		Adaptive:           adaptive.Epochs,
		Static:             static.Epochs,
		History:            adaptive.History,
		OracleEpochSeconds: oracle.EpochTime.Seconds(),
		AdaptiveVsOracle:   aSum / (n * oracle.EpochTime.Seconds()),
		StaticVsAdaptive:   sSum / aSum,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runChaos soaks until the duration budget is spent (always at least once),
// printing one JSON report per run. Returns false if any soak failed.
func runChaos(seed uint64, class string, duration time.Duration) bool {
	cl, err := soak.ParseClass(class)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
		return false
	}
	enc := json.NewEncoder(os.Stdout)
	deadline := time.Now().Add(duration)
	ok := true
	for i := 0; ; i++ {
		rep, err := soak.Run(soak.Config{Seed: seed, Class: cl})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: soak seed=%d: %v\n", seed, err)
			return false
		}
		enc.Encode(rep)
		if !rep.Ok() {
			fmt.Fprintf(os.Stderr, "sophon-bench: soak seed=%d digest=%08x FAILED: %d mismatches, %d failed (want %d)\n",
				seed, rep.Digest, rep.Mismatches, rep.Failed, rep.WantFailed)
			ok = false
		}
		if !time.Now().Before(deadline) {
			return ok
		}
		seed = seed*0x9E3779B97F4A7C15 + 1 // same derivation as the soak test suite
	}
}

func main() {
	seed := flag.Uint64("seed", 2024, "random seed for dataset generation")
	openImages := flag.Int("openimages", 0, "OpenImages sample-count override (0 = paper scale, 40000)")
	imageNet := flag.Int("imagenet", 0, "ImageNet sample-count override (0 = paper scale, 91000)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	csvDir := flag.String("csv", "", "also write one CSV per table into this directory")
	jsonOut := flag.String("json", "", "run the data-plane micro-benchmarks and write BENCH records to this file (skips the evaluation)")
	chaosSeed := flag.Uint64("chaos.seed", 0, "run the deterministic chaos soak with this fault seed instead of the evaluation")
	chaosClass := flag.String("chaos.class", "mixed", "chaos soak fault class: none|delays|corrupt|mixed|partition")
	chaosDuration := flag.Duration("chaos.duration", 0, "keep soaking with derived seeds until this much time has passed")
	adaptiveOut := flag.String("adaptive", "", "run the adaptive control-plane scenario (500→250 Mbps reshape) and write the JSON report to this file (skips the evaluation)")
	prefetchOut := flag.String("prefetch", "", "run the clairvoyant-vs-reactive prefetch comparison and write the JSON report to this file (skips the evaluation)")
	prefetchSamples := flag.Int("prefetch.samples", 8000, "samples in the prefetch comparison epoch")
	prefetchShards := flag.Int("prefetch.shards", 8, "storage shards in the prefetch comparison")
	prefetchDepth := flag.Int("prefetch.depth", 16, "per-shard lookahead depth for the clairvoyant run")
	prepschedOut := flag.String("prepsched", "", "run the work-stealing-vs-FIFO preprocessing scheduler comparison and write the JSON report to this file (skips the evaluation)")
	prepschedSamples := flag.Int("prepsched.samples", 2000, "samples in the prepsched comparison epoch")
	prepschedWorkers := flag.Int("prepsched.workers", 8, "preprocessing workers (and compute cores) in the prepsched comparison")
	prepschedHeavyFrac := flag.Float64("prepsched.heavyfrac", 0.05, "fraction of samples made heavy in the skewed mix")
	prepschedCostRatio := flag.Int("prepsched.costratio", 20, "preprocessing cost multiplier for heavy samples")
	prepschedThreshold := flag.Float64("prepsched.threshold", 0, "heavy classification threshold as a multiple of the mean cost (0 = default)")
	fleetOut := flag.String("fleet", "", "run the 100-job fleet scenario (coordinated vs independent planning on a shared tier) and write the JSON report to this file (skips the evaluation)")
	fidelityOut := flag.String("fidelity", "", "run the progressive-fidelity evaluation (discrete vs fidelity-aware SOPHON plan, ladder calibrated from the live codec) and write the JSON report to this file (skips the evaluation)")
	fidelitySamples := flag.Int("fidelity.samples", 8000, "samples in the fidelity comparison epoch")
	fidelityFloor := flag.Float64("fidelity.floor", 0.95, "per-sample reconstruction quality floor")
	fidelityMeanFloor := flag.Float64("fidelity.meanfloor", 0.97, "plan-wide mean reconstruction quality floor")
	loadOut := flag.String("load", "", "run the heavy-traffic load harness (steady + overload scenarios) and write the SLO record to this file (skips the evaluation)")
	loadSessions := flag.Int("load.sessions", 2400, "total concurrent sessions across the load tenants")
	loadDuration := flag.Duration("load.duration", 5*time.Second, "simulated load window per scenario")
	loadShards := flag.Int("load.shards", 4, "storage shards in the simulated tier")
	loadCores := flag.Int("load.cores", 8, "offload cores per shard")
	loadMbps := flag.Float64("load.mbps", 500, "total tier bandwidth (Mbit/s), split evenly across shards; the default matches the paper's 500 Mbps storage link")
	gatePrev := flag.String("gate.prev", "", "perf-trajectory gate: committed baseline SLO record")
	gateCur := flag.String("gate.cur", "", "perf-trajectory gate: freshly generated SLO record to check")
	gateNoise := flag.Float64("gate.noise", 0, "gate noise threshold as a fraction (0 = default 0.10); SLO records only")
	gateAllocSlack := flag.Int64("gate.allocslack", 0, "extra allocs/op tolerated per kernel when gating alloc-suite BENCH records")
	convertIn := flag.String("convert", "", "comma-separated BENCH/SLO record files to fold into one TRAJECTORY file")
	convertOut := flag.String("convert.o", "TRAJECTORY.json", "output path for -convert")
	cliutil.Parse("sophon-bench", "Regenerates the paper's evaluation tables, micro-benchmarks, and load/SLO records.")

	logger := log.New(os.Stderr, "sophon-bench: ", 0)
	cliutil.ValidateInts(logger,
		map[string]bool{
			"load.sessions": true, "load.shards": true, "load.cores": true,
			"prefetch.samples": true, "prefetch.shards": true, "prefetch.depth": true,
			"prepsched.samples": true, "prepsched.workers": true, "prepsched.costratio": true,
			"fidelity.samples": true,
		},
		map[string]bool{"openimages": true, "imagenet": true},
		map[string]int{
			"load.sessions": *loadSessions, "load.shards": *loadShards, "load.cores": *loadCores,
			"openimages": *openImages, "imagenet": *imageNet,
			"prefetch.samples": *prefetchSamples, "prefetch.shards": *prefetchShards, "prefetch.depth": *prefetchDepth,
			"prepsched.samples": *prepschedSamples, "prepsched.workers": *prepschedWorkers, "prepsched.costratio": *prepschedCostRatio,
			"fidelity.samples": *fidelitySamples,
		})
	if *prepschedHeavyFrac <= 0 || *prepschedHeavyFrac >= 1 {
		logger.Fatalf("-prepsched.heavyfrac must be in (0, 1), got %g", *prepschedHeavyFrac)
	}
	if *prepschedThreshold < 0 {
		logger.Fatalf("-prepsched.threshold must be non-negative, got %g", *prepschedThreshold)
	}
	if *fidelityFloor < 0 || *fidelityFloor > 1 || *fidelityMeanFloor < 0 || *fidelityMeanFloor > 1 {
		logger.Fatalf("-fidelity.floor and -fidelity.meanfloor must be in [0, 1], got %g and %g", *fidelityFloor, *fidelityMeanFloor)
	}

	if *loadOut != "" {
		opt := loadOptions{
			sessions: *loadSessions,
			duration: *loadDuration,
			shards:   *loadShards,
			cores:    *loadCores,
			mbps:     *loadMbps,
		}
		if err := writeLoadJSON(*loadOut, *seed, opt); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: SLO record written to %s\n", *loadOut)
		return
	}

	if *gateCur != "" || *gatePrev != "" {
		if *gateCur == "" || *gatePrev == "" {
			fmt.Fprintln(os.Stderr, "sophon-bench: -gate.prev and -gate.cur must be set together")
			os.Exit(2)
		}
		if !runGate(*gatePrev, *gateCur, *gateNoise, *gateAllocSlack) {
			os.Exit(1)
		}
		return
	}

	if *convertIn != "" {
		if err := writeConvertJSON(*convertIn, *convertOut); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: trajectory written to %s\n", *convertOut)
		return
	}

	if *fidelityOut != "" {
		opt := fidelityOptions{samples: *fidelitySamples, floor: *fidelityFloor, meanFloor: *fidelityMeanFloor}
		if err := writeFidelityJSON(*fidelityOut, *seed, opt); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: fidelity comparison written to %s\n", *fidelityOut)
		return
	}

	if *fleetOut != "" {
		if err := writeFleetJSON(*fleetOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: fleet scenario written to %s\n", *fleetOut)
		return
	}

	if *prepschedOut != "" {
		opt := prepschedOptions{
			samples:   *prepschedSamples,
			workers:   *prepschedWorkers,
			heavyFrac: *prepschedHeavyFrac,
			costRatio: *prepschedCostRatio,
			threshold: *prepschedThreshold,
		}
		if err := writePrepschedJSON(*prepschedOut, *seed, opt); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: prepsched comparison written to %s\n", *prepschedOut)
		return
	}

	if *prefetchOut != "" {
		opt := prefetchOptions{samples: *prefetchSamples, shards: *prefetchShards, depth: *prefetchDepth}
		if err := writePrefetchJSON(*prefetchOut, *seed, opt); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: prefetch comparison written to %s\n", *prefetchOut)
		return
	}

	if *adaptiveOut != "" {
		if err := writeAdaptiveJSON(*adaptiveOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: adaptive scenario written to %s\n", *adaptiveOut)
		return
	}

	if *chaosSeed != 0 {
		if !runChaos(*chaosSeed, *chaosClass, *chaosDuration) {
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: BENCH records written to %s\n", *jsonOut)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	opts := eval.Options{Seed: *seed, OpenImages: *openImages, ImageNet: *imageNet}
	if err := eval.RunAll(opts, w); err != nil {
		fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := eval.WriteCSVDir(opts, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: CSVs written to %s\n", *csvDir)
	}
}
