// Command sophon-bench regenerates every table and figure from the paper's
// evaluation section and writes the report to stdout (or a file).
//
// Usage:
//
//	sophon-bench [-seed N] [-openimages N] [-imagenet N] [-o report.txt]
//
// With no size overrides the datasets run at paper scale (40 000 OpenImages
// samples, 91 000 ImageNet samples); the whole suite still completes in a
// few seconds because the evaluation replays profiled traces through the
// discrete-event engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	seed := flag.Uint64("seed", 2024, "random seed for dataset generation")
	openImages := flag.Int("openimages", 0, "OpenImages sample-count override (0 = paper scale, 40000)")
	imageNet := flag.Int("imagenet", 0, "ImageNet sample-count override (0 = paper scale, 91000)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	csvDir := flag.String("csv", "", "also write one CSV per table into this directory")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	opts := eval.Options{Seed: *seed, OpenImages: *openImages, ImageNet: *imageNet}
	if err := eval.RunAll(opts, w); err != nil {
		fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := eval.WriteCSVDir(opts, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "sophon-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sophon-bench: CSVs written to %s\n", *csvDir)
	}
}
