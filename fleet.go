package sophon

import (
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/storage"
)

// This file exposes the fleet control plane: multi-tenant SOPHON planning
// under shared per-shard core and bandwidth budgets, the cross-job artifact
// cache, and the deterministic fleet replay.

// FleetTenant is one live training job requesting admission to the fleet.
type FleetTenant = sched.Tenant

// FleetGrant is a tenant's resource assignment at one fleet generation.
type FleetGrant = sched.Grant

// FleetCoordinatorConfig configures the fleet coordinator's shared budgets.
type FleetCoordinatorConfig = sched.FleetConfig

// FleetCoordinator admits tenants against shared budgets and republishes
// every tenant's plan whenever the fleet mix changes.
type FleetCoordinator = sched.Coordinator

// FleetEvent records one fleet transition (admit, depart, bandwidth drift).
type FleetEvent = sched.FleetEvent

// FleetStatus is the coordinator's observability snapshot.
type FleetStatus = sched.FleetStatus

// NewFleetCoordinator builds a fleet coordinator over shared per-shard
// storage-core and bandwidth budgets.
func NewFleetCoordinator(cfg FleetCoordinatorConfig) (*FleetCoordinator, error) {
	return sched.NewCoordinator(cfg)
}

// SharedArtifactCache is the fleet's cross-job artifact cache, keyed by
// (dataset, sample, pipeline cut) rather than by job.
type SharedArtifactCache = cache.SharedArtifactCache

// SharedCacheSnapshot is the shared cache's accounting snapshot.
type SharedCacheSnapshot = cache.SharedSnapshot

// TenantCacheStats is one tenant's slice of the shared-cache accounting.
type TenantCacheStats = cache.TenantCacheStats

// NewSharedArtifactCache builds a cross-job artifact cache with the given
// byte capacity.
func NewSharedArtifactCache(capacityBytes int64) (*SharedArtifactCache, error) {
	return cache.NewShared(capacityBytes)
}

// TenantFetcher is one tenant's view of the shared artifact cache stacked
// over any storage transport.
type TenantFetcher = cache.TenantFetcher

// NewTenantFetcher wraps a storage client for one tenant of a share group.
// Every tenant of the group must have dialed with the group's dataset share
// key as job ID so cached artifacts are bit-identical across tenants.
func NewTenantFetcher(inner cache.Fetcher, shared *SharedArtifactCache, tenant string, dataset uint64) (*TenantFetcher, error) {
	return cache.NewTenantFetcher(inner, shared, tenant, dataset)
}

// DialStorageShared opens a storage session for one tenant of a share group:
// the connection authenticates as the group's dataset key so offloaded
// augmentation seeds — and therefore cached artifacts — match across the
// group's tenants.
func DialStorageShared(addr string, dataset uint64, opts StorageClientOptions) (*storage.Client, error) {
	opts.JobID = dataset
	return storage.DialWithOptions(addr, opts)
}

// FleetSimJob is one tenant of a fleet replay.
type FleetSimJob = engine.FleetJob

// FleetSimConfig describes a deterministic multi-job replay over one shared
// storage tier.
type FleetSimConfig = engine.FleetConfig

// FleetSimResult summarizes a fleet replay, including the determinism
// digest.
type FleetSimResult = engine.FleetResult

// SimulateFleet replays one epoch of every job over the shared tier with a
// deterministic interleave; equal seeds produce equal digests.
func SimulateFleet(cfg FleetSimConfig) (FleetSimResult, error) {
	return engine.RunFleet(cfg)
}
