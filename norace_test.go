//go:build !race

package sophon

const raceEnabled = false
