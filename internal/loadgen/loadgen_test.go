package loadgen

import (
	"encoding/json"
	"testing"
	"time"
)

// steadyConfig returns a moderately-loaded scenario: 2,400 sessions across
// two job profiles against a 4-shard tier, sized so the tier keeps up.
func steadyConfig() Config {
	return Config{
		Seed:     2024,
		Duration: 2 * time.Second,
		Shards:   4,
		// 8 cores per shard, 2 Gbps per shard link.
		CoresPerShard:   8,
		LinkBytesPerSec: 250e6,
		// Offered link load ≈ 640 MB/s against 4×250 MB/s capacity (~64%
		// utilization); storage cores run ~25% busy.
		Jobs: []JobSpec{
			{
				Name: "openimages", Weight: 2, Sessions: 1600, Rate: 3,
				Arrival: Poisson,
				Mix:     [3]float64{0.4, 0.45, 0.15},
				// ~90 KB artifacts, ~500 KB raw, 3ms prefix CPU.
				OffloadedBytes: 90 << 10, RawBytes: 500 << 10,
				OffloadCPU: 3 * time.Millisecond,
			},
			{
				Name: "imagenet", Weight: 1, Sessions: 800, Rate: 2,
				Arrival: Bursty, Burst: 8,
				Mix:            [3]float64{0.3, 0.5, 0.2},
				OffloadedBytes: 60 << 10, RawBytes: 110 << 10,
				OffloadCPU: 2 * time.Millisecond,
			},
		},
	}
}

func TestRunSteadySLOs(t *testing.T) {
	rep, err := Run(steadyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions < 2000 {
		t.Fatalf("Sessions = %d, want >= 2000", rep.Sessions)
	}
	if rep.Offered == 0 || rep.Completed == 0 {
		t.Fatalf("no traffic: offered=%d completed=%d", rep.Offered, rep.Completed)
	}
	// Steady state: nearly everything completes, nothing is shed.
	if rep.ShedRate > 0.01 {
		t.Fatalf("steady scenario shed %.2f%% of load", rep.ShedRate*100)
	}
	if ratio := float64(rep.Completed) / float64(rep.Offered); ratio < 0.99 {
		t.Fatalf("completed/offered = %.3f, want >= 0.99", ratio)
	}
	for _, class := range []string{"hit", "offloaded", "raw"} {
		cr := rep.Classes[class]
		if cr == nil || cr.Count == 0 {
			t.Fatalf("class %q missing from report: %+v", class, rep.Classes)
		}
		if cr.P50 <= 0 || cr.P99 < cr.P50 || cr.P999 < cr.P99 || cr.Max < cr.P999 {
			t.Fatalf("class %q quantiles not monotone: %+v", class, cr)
		}
	}
	// Cache hits never touch the tier; they must be orders of magnitude
	// faster than raw fetches.
	if rep.Classes["hit"].P99 >= rep.Classes["raw"].P50 {
		t.Fatalf("hit p99 %v >= raw p50 %v", rep.Classes["hit"].P99, rep.Classes["raw"].P50)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(steadyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(steadyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different reports:\n%s\n%s", ja, jb)
	}
	cfg := steadyConfig()
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical reports")
	}
}

// overloadConfig drives ~5x the steady rate at a much weaker tier.
func overloadConfig(admission AdmissionSpec) Config {
	cfg := steadyConfig()
	cfg.Shards = 2
	cfg.CoresPerShard = 2
	cfg.LinkBytesPerSec = 60e6
	for i := range cfg.Jobs {
		cfg.Jobs[i].Rate *= 5
	}
	cfg.Admission = admission
	return cfg
}

// TestOverloadBoundedP99 is the acceptance property: with admission
// control on, an overloaded tier sheds load and keeps p99 bounded; with
// admission off the open-loop backlog grows without bound and p99 explodes
// toward the simulation horizon.
func TestOverloadBoundedP99(t *testing.T) {
	shed, err := Run(overloadConfig(AdmissionSpec{
		MaxInFlightBytes:  4 << 20,
		MaxQueuePerTenant: 16,
	}))
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := Run(overloadConfig(AdmissionSpec{Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}

	if shed.Shed == 0 {
		t.Fatal("overloaded run with admission control shed nothing")
	}
	if shed.ShedRate < 0.05 {
		t.Fatalf("shed rate %.3f too low for a 5x overload", shed.ShedRate)
	}

	for _, class := range []string{"offloaded", "raw"} {
		bounded := shed.Classes[class].P99
		collapsed := unbounded.Classes[class].P99
		// The admission-controlled tail must stay far below the
		// uncontrolled one (which queues toward the full sim horizon).
		if bounded*10 > collapsed {
			t.Errorf("class %q: admission p99 %v not ≪ unbounded p99 %v", class, bounded, collapsed)
		}
	}
	// Bounded queues: the depth high-water can never exceed
	// jobs × shards × per-tenant cap.
	const ceiling = 2 * 2 * 16
	if shed.MaxQueueDepth > ceiling {
		t.Fatalf("queue depth %d exceeded ceiling %d", shed.MaxQueueDepth, ceiling)
	}
}

// TestWeightedTenantShedding: under overload, the heavier tenant should
// complete at least its fair share relative to the light one.
func TestWeightedTenantShedding(t *testing.T) {
	cfg := Config{
		Seed:            7,
		Duration:        time.Second,
		Shards:          1,
		CoresPerShard:   1,
		LinkBytesPerSec: 20e6,
		Admission:       AdmissionSpec{MaxInFlightBytes: 4 << 20, MaxQueuePerTenant: 512},
		Jobs: []JobSpec{
			{Name: "heavy", Weight: 4, Sessions: 200, Rate: 50, Mix: [3]float64{0, 0, 1}, RawBytes: 100 << 10},
			{Name: "light", Weight: 1, Sessions: 200, Rate: 50, Mix: [3]float64{0, 0, 1}, RawBytes: 100 << 10},
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("expected shedding under overload")
	}
	// Both jobs offer the same load; the weighted queues should let the
	// weight-4 tenant through at a higher rate than weight-1. We can't
	// split completions by job from the public report, so assert the
	// aggregate stays sane and shedding engaged; the wfq package's own
	// tests pin the share property.
	if rep.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestRunBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
	if _, err := Run(Config{Duration: time.Second, LinkBytesPerSec: 1e6}); err == nil {
		t.Fatal("no sessions should fail")
	}
	if _, err := Run(Config{
		Duration: time.Second, LinkBytesPerSec: 1e6,
		Jobs: []JobSpec{{Sessions: 1, Rate: -1}},
	}); err == nil {
		t.Fatal("negative rate should fail")
	}
}

func TestArrivalRates(t *testing.T) {
	// Mean inter-arrival of both processes must track 1/rate.
	for _, kind := range []ArrivalKind{Poisson, Bursty} {
		proc := newArrivalProc(1, 2, kind, 100, 8)
		var sum time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			sum += proc.next()
		}
		mean := sum.Seconds() / n
		if mean < 0.008 || mean > 0.012 {
			t.Errorf("%v: mean gap %.5fs, want ~0.010s", kind, mean)
		}
	}
}
