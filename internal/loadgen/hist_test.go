package loadgen

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistExactBelowLinearRegion(t *testing.T) {
	h := NewHist()
	for v := 0; v < histSub; v++ {
		h.Record(time.Duration(v))
	}
	// Every small value lands in its own bucket, so quantiles are exact.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(0.5); got != histSub/2 {
		t.Fatalf("q50 = %d, want %d", got, histSub/2)
	}
}

func TestHistIndexValueRoundTrip(t *testing.T) {
	// valueAt(index(v)) must be within the bucket's relative error bound.
	for _, v := range []uint64{0, 1, 63, 64, 65, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint32} {
		got := valueAt(index(v))
		rel := math.Abs(float64(got)-float64(v)) / math.Max(float64(v), 1)
		if rel > 1.0/histSub {
			t.Fatalf("valueAt(index(%d)) = %d, rel err %.4f > %.4f", v, got, rel, 1.0/histSub)
		}
	}
}

func TestHistQuantilesVsExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	h := NewHist()
	const n = 50000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform latencies across 1µs..1s — the shape real fetch
		// latencies take under mixed cache/offload/raw classes.
		v := math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(n))]
		got := float64(h.Quantile(q))
		rel := math.Abs(got-exact) / exact
		if rel > 0.03 {
			t.Fatalf("q%.3f: hist %.0f vs exact %.0f, rel err %.4f", q, got, exact, rel)
		}
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
}

func TestHistMaxExact(t *testing.T) {
	h := NewHist()
	h.Record(123456789 * time.Nanosecond)
	h.Record(time.Millisecond)
	if h.Max() != 123456789 {
		t.Fatalf("Max = %d, want 123456789", h.Max())
	}
	if h.Quantile(1) != 123456789 {
		t.Fatalf("Quantile(1) = %d, want exact max", h.Quantile(1))
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
		b.Record(time.Duration(i+100) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d, want 200", a.Count())
	}
	med := a.Quantile(0.5)
	want := 100 * time.Millisecond
	if med < want*95/100 || med > want*105/100 {
		t.Fatalf("merged median = %v, want ~%v", med, want)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist()
	h.Record(-time.Second)
	if h.Quantile(0.5) != 0 {
		t.Fatal("negative duration should clamp to 0")
	}
}
