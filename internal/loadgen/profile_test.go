package loadgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/simclock"
)

func TestSpecFromTenant(t *testing.T) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := sched.NewCoordinator(sched.FleetConfig{
		Cores:     8,
		Bandwidth: netsim.Mbps(1000),
		Clock:     simclock.NewVirtual(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tenant := sched.Tenant{
		Name:   "probe",
		Weight: 3,
		Trace:  tr,
		Env: policy.Env{
			ComputeCores:    16,
			Bandwidth:       netsim.Mbps(1000),
			StorageSlowdown: 1,
			GPU:             gpu.AlexNet,
		},
	}
	if _, err := coord.Admit(tenant); err != nil {
		t.Fatal(err)
	}
	grant, ok := coord.Grants()["probe"]
	if !ok {
		t.Fatal("no grant for admitted tenant")
	}

	spec := SpecFromTenant(tenant, grant, 100, 5, 0.4)
	if spec.Name != "probe" || spec.Weight != 3 || spec.Sessions != 100 || spec.Rate != 5 {
		t.Fatalf("identity fields wrong: %+v", spec)
	}
	sum := spec.Mix[0] + spec.Mix[1] + spec.Mix[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mix sums to %v, want 1", sum)
	}
	if math.Abs(spec.Mix[0]-0.4) > 1e-9 {
		t.Fatalf("hit fraction %v, want 0.4", spec.Mix[0])
	}
	wantOffFrac := float64(grant.Plan.OffloadedCount()) / float64(tr.N())
	gotOffFrac := spec.Mix[1] / (1 - spec.Mix[0])
	if math.Abs(gotOffFrac-wantOffFrac) > 1e-9 {
		t.Fatalf("offloaded fraction %v, want %v", gotOffFrac, wantOffFrac)
	}
	if grant.Plan.OffloadedCount() > 0 {
		if spec.OffloadedBytes <= 0 || spec.OffloadCPU <= 0 {
			t.Fatalf("offloaded stats missing: %+v", spec)
		}
		// Artifacts must be no bigger than the mean raw sample — that's
		// the point of offloading.
		if spec.RawBytes > 0 && spec.OffloadedBytes > spec.RawBytes*4 {
			t.Fatalf("offloaded bytes %d implausibly large vs raw %d", spec.OffloadedBytes, spec.RawBytes)
		}
	}

	// A spec straight from the grant must drive the generator.
	spec.Sessions = 50
	spec.Rate = 2
	rep, err := Run(Config{
		Seed:            1,
		Duration:        500 * time.Millisecond,
		Shards:          2,
		CoresPerShard:   4,
		LinkBytesPerSec: 250e6,
		Jobs:            []JobSpec{spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("derived spec produced no completions")
	}
}

func TestSpecFromTenantNoPlan(t *testing.T) {
	spec := SpecFromTenant(sched.Tenant{Name: "bare"}, sched.Grant{}, 10, 1, 2 /* clamps to 1 */)
	if spec.Mix[0] != 1 || spec.Mix[1] != 0 || spec.Mix[2] != 0 {
		t.Fatalf("clamped hitRate mix = %v", spec.Mix)
	}
	spec = SpecFromTenant(sched.Tenant{Name: "bare"}, sched.Grant{}, 10, 1, -1)
	if spec.Mix[0] != 0 || spec.Mix[2] != 1 {
		t.Fatalf("no-plan mix = %v, want all raw", spec.Mix)
	}
	if spec.RawBytes <= 0 {
		t.Fatal("no-plan spec needs a positive raw size")
	}
}
