package loadgen

import (
	"math/bits"
	"time"
)

// Hist is an HDR-style latency histogram: exact below 64 units, then 64
// logarithmically-spaced sub-buckets per power of two, giving a worst-case
// relative quantile error of about 1.6% across the full uint64 range with a
// few KB of counters. Values are recorded in nanoseconds; quantiles come
// back as time.Duration.
//
// The zero value is not ready to use; call NewHist.
type Hist struct {
	counts []uint64
	total  uint64
	max    uint64
	sum    uint64
}

const (
	histSubBits = 6 // 64 sub-buckets per power of two
	histSub     = 1 << histSubBits
	// Indexes run [0, histSub) for the linear region then one histSub-wide
	// segment per remaining power of two (57 of them for 64-bit values),
	// with the top segment's indexes reaching (58*histSub, 59*histSub).
	histBuckets = (64 - histSubBits + 1) * histSub
)

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]uint64, histBuckets)}
}

// index maps a value to its bucket.
func index(v uint64) int {
	if v < histSub {
		return int(v)
	}
	// top = position of the highest set bit above the sub-bucket field.
	top := bits.Len64(v) - histSubBits - 1
	return top*histSub + int(v>>uint(top))
}

// valueAt returns a representative (midpoint) value for bucket i — the
// inverse of index up to sub-bucket resolution. Bucket i >= histSub sits
// in segment top = i/histSub - 1 (index wrote top*histSub + v>>top with
// v>>top in [histSub, 2*histSub)), where buckets are 1<<top wide.
func valueAt(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	top := uint(i/histSub - 1)
	base := uint64(i%histSub+histSub) << top
	return base + uint64(1)<<top/2
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	h.counts[index(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Max reports the largest recorded value exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean reports the arithmetic mean of recorded values.
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns the value at quantile q in [0, 1]. Quantile(1) returns
// the exact maximum; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := valueAt(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge adds every observation from other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
