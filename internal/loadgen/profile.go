package loadgen

import (
	"time"

	"repro/internal/sched"
)

// SpecFromTenant derives a load-generator job profile from a fleet tenant
// and its coordinator grant, so the harness drives the storage tier with
// the same class mix the planner actually decided: the grant's plan fixes
// the offloaded/raw split and the mean artifact sizes and storage-CPU cost
// per offloaded fetch, while hitRate models the tenant's shared-cache hit
// fraction (measured or assumed).
//
// sessions and rate shape the offered load: sessions concurrent pipelined
// streams each offering rate requests/second, bursty to model prefetch
// windows (callers can override Arrival/Burst on the returned spec).
func SpecFromTenant(t sched.Tenant, g sched.Grant, sessions int, rate, hitRate float64) JobSpec {
	if hitRate < 0 {
		hitRate = 0
	}
	if hitRate > 1 {
		hitRate = 1
	}
	spec := JobSpec{
		Name:     t.Name,
		Weight:   t.Weight,
		Sessions: sessions,
		Rate:     rate,
		Arrival:  Poisson,
	}

	tr := t.Trace
	n := 0
	if tr != nil {
		n = tr.N()
	}
	if n == 0 || g.Plan == nil || g.Plan.N() != n {
		// No usable plan: everything is a raw fetch of unknown size.
		spec.Mix = [3]float64{hitRate, 0, 1 - hitRate}
		spec.RawBytes = 1 << 20
		return spec
	}

	// Walk the plan once for exact per-class means: samples with a
	// non-zero split ship their stage artifact after PrefixTime of
	// storage CPU; split-0 samples ship raw bytes.
	var (
		offCount int
		offBytes int64
		offCPU   time.Duration
		rawCount int
		rawBytes int64
	)
	for i := range tr.Records {
		k := g.Plan.Split(i)
		if k > 0 {
			offCount++
			offBytes += tr.Records[i].StageSizes[k]
			offCPU += tr.Records[i].PrefixTime(k)
		} else {
			rawCount++
			rawBytes += tr.Records[i].StageSizes[0]
		}
	}
	offFrac := float64(offCount) / float64(n)
	spec.Mix = [3]float64{hitRate, (1 - hitRate) * offFrac, (1 - hitRate) * (1 - offFrac)}
	if offCount > 0 {
		spec.OffloadedBytes = offBytes / int64(offCount)
		spec.OffloadCPU = offCPU / time.Duration(offCount)
	}
	if rawCount > 0 {
		spec.RawBytes = rawBytes / int64(rawCount)
	} else {
		// All samples offloaded; keep a sane raw size for the residual
		// raw probability (zero here, but the field should not be 0).
		spec.RawBytes = spec.OffloadedBytes
	}
	return spec
}
