// Package loadgen is the heavy-traffic serving harness: an open-loop load
// generator that drives thousands of concurrent pipelined sessions against
// a model of the sharded storage tier and reports per-class fetch-latency
// SLOs (p50/p90/p99/p999 for cache hits, offloaded fetches, and raw
// fetches).
//
// The harness is a discrete-event simulation on virtual time, like
// internal/engine's fleet DES: arrivals, storage-core completions, and
// link-transfer completions are events on a single heap, so a run with
// 10,000 sessions over minutes of simulated load finishes in well under a
// second of wall time and is bit-reproducible from its seed. Arrival
// processes (Poisson or bursty) draw from per-session PCG streams using the
// same seeding idiom as internal/chaos.
//
// The server model mirrors the real tier's admission control: a per-shard
// in-flight byte budget with per-tenant weighted fair queues (internal/wfq,
// the same scheduler the live storage server uses) and bounded queues that
// shed load with retry-after rejections instead of queueing without bound.
// Open-loop arrivals keep coming while the server sheds, which is exactly
// what exposes the bounded-p99-vs-collapse tradeoff the SLO report records.
package loadgen

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/wfq"
)

// Class labels one of the three fetch paths a request can take.
type Class int

const (
	// ClassHit is a shared-artifact-cache hit: served from the trainer-side
	// cache without touching the storage tier.
	ClassHit Class = iota
	// ClassOffloaded is a fetch whose preprocessing prefix runs on a
	// storage core before the (smaller) artifact crosses the link.
	ClassOffloaded
	// ClassRaw is a fetch of untransformed bytes straight off the link.
	ClassRaw
	classCount
)

func (c Class) String() string {
	switch c {
	case ClassHit:
		return "hit"
	case ClassOffloaded:
		return "offloaded"
	case ClassRaw:
		return "raw"
	default:
		return "unknown"
	}
}

// JobSpec describes one job profile: a group of identical open-loop
// sessions with a fetch-class mix. Profiles are typically derived from
// sched tenant grants via SpecFromTenant.
type JobSpec struct {
	// Name labels the job in the report.
	Name string
	// Weight is the tenant's fair-share weight in the server's admission
	// queues (0 means 1).
	Weight float64
	// Sessions is the number of concurrent pipelined sessions.
	Sessions int
	// Rate is the per-session offered load in requests/second.
	Rate float64
	// Arrival selects the arrival process (Poisson or Bursty).
	Arrival ArrivalKind
	// Burst is the mean burst size for Bursty arrivals (ignored for
	// Poisson; values < 1 clamp to 1).
	Burst float64
	// Mix is the fetch-class probability vector [hit, offloaded, raw];
	// it is normalized internally, so any non-negative weights work.
	Mix [3]float64
	// OffloadedBytes and RawBytes are the mean artifact / raw sample sizes
	// crossing the link for the respective classes.
	OffloadedBytes int64
	RawBytes       int64
	// OffloadCPU is the mean storage-core CPU time per offloaded fetch.
	OffloadCPU time.Duration
}

// AdmissionSpec models the server-side admission controller.
type AdmissionSpec struct {
	// Disabled turns admission off: every request is accepted and queues
	// without bound (the PR-6-and-earlier behavior, kept for comparison
	// runs).
	Disabled bool
	// MaxInFlightBytes is the per-shard in-flight byte budget
	// (0 → DefaultMaxInFlightBytes).
	MaxInFlightBytes int64
	// MaxQueuePerTenant bounds each tenant's admission queue per shard;
	// pushes beyond the bound are shed (0 → DefaultMaxQueuePerTenant).
	MaxQueuePerTenant int
}

// Defaults for AdmissionSpec zero values.
const (
	DefaultMaxInFlightBytes  = 64 << 20
	DefaultMaxQueuePerTenant = 256
	// DefaultHitService is the modeled local service time of a cache hit.
	DefaultHitService = 30 * time.Microsecond
)

// Config configures one load-generation run.
type Config struct {
	// Seed drives every PCG stream in the run; same seed, same report.
	Seed uint64
	// Duration is the simulated time during which sessions offer load.
	// In-flight requests at the deadline are left to drain (up to Drain).
	Duration time.Duration
	// Jobs is the workload mix; at least one job with Sessions > 0.
	Jobs []JobSpec
	// Shards is the storage-server count (0 → 1).
	Shards int
	// CoresPerShard is the storage-CPU count per shard (0 → 1).
	CoresPerShard int
	// LinkBytesPerSec is the per-shard link bandwidth (required > 0).
	LinkBytesPerSec float64
	// Admission models the server-side admission controller.
	Admission AdmissionSpec
	// HitService overrides the local cache-hit service time
	// (0 → DefaultHitService).
	HitService time.Duration
	// Drain bounds how long past Duration the simulation runs to let
	// admitted requests finish (0 → Duration, i.e. a full extra window).
	Drain time.Duration
}

// ErrBadConfig reports an invalid Config.
var ErrBadConfig = errors.New("loadgen: bad config")

// Report is the result of one run.
type Report struct {
	Seed        uint64        `json:"seed"`
	Sessions    int           `json:"sessions"`
	SimDuration time.Duration `json:"sim_duration"`
	// Offered counts arrivals during the load window; Completed the
	// requests that finished (including post-deadline drain); Shed the
	// requests rejected by admission control.
	Offered   uint64 `json:"offered"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	// OfferedRPS and ThroughputRPS are Offered/Completed over Duration.
	OfferedRPS    float64 `json:"offered_rps"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// ShedRate is Shed/Offered.
	ShedRate float64 `json:"shed_rate"`
	// MaxQueueDepth is the high-water total admission-queue depth across
	// shards — bounded queues keep this (and p99) from growing without
	// limit under overload.
	MaxQueueDepth int `json:"max_queue_depth"`
	// Classes holds per-fetch-class latency distributions keyed
	// "hit" / "offloaded" / "raw".
	Classes map[string]*ClassReport `json:"classes"`
}

// ClassReport is the latency distribution of one fetch class.
type ClassReport struct {
	Count uint64        `json:"count"`
	Shed  uint64        `json:"shed"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// event kinds.
const (
	evArrival = iota // next arrival for a session
	evCoreDone
	evXferDone
)

type event struct {
	at   time.Duration
	seq  uint64
	kind int
	// session index for evArrival; request for the others.
	session int
	req     *request
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

type request struct {
	arrived time.Duration
	class   Class
	job     int
	bytes   int64
	cpu     time.Duration
	shard   int
}

// shardState models one storage server: its admission controller, core
// pool, and outbound link.
type shardState struct {
	inFlightBytes int64
	queue         *wfq.Queue // admission queue; Item.Value = *request
	busyCores     int
	coreQueue     []*request // admitted, waiting for a core
	linkFree      time.Duration
}

type session struct {
	proc *arrivalProc
	rng  *rand.Rand // classification + shard choice + size jitter
	job  int
}

type sim struct {
	cfg      Config
	now      time.Duration
	seq      uint64
	events   eventHeap
	shards   []*shardState
	sessions []*session
	hists    [classCount]*Hist
	offered  uint64
	done     uint64
	shed     [classCount]uint64
	maxDepth int

	budget   int64
	maxQueue int
	hitSvc   time.Duration
}

// Run executes the load scenario and returns its report. Identical
// configs yield identical reports.
func Run(cfg Config) (*Report, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: Duration must be > 0", ErrBadConfig)
	}
	if cfg.LinkBytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: LinkBytesPerSec must be > 0", ErrBadConfig)
	}
	total := 0
	for i := range cfg.Jobs {
		if cfg.Jobs[i].Sessions < 0 || cfg.Jobs[i].Rate < 0 {
			return nil, fmt.Errorf("%w: job %q has negative sessions or rate", ErrBadConfig, cfg.Jobs[i].Name)
		}
		total += cfg.Jobs[i].Sessions
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: no sessions", ErrBadConfig)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.CoresPerShard <= 0 {
		cfg.CoresPerShard = 1
	}

	s := &sim{
		cfg:      cfg,
		budget:   cfg.Admission.MaxInFlightBytes,
		maxQueue: cfg.Admission.MaxQueuePerTenant,
		hitSvc:   cfg.HitService,
	}
	if s.budget <= 0 {
		s.budget = DefaultMaxInFlightBytes
	}
	if s.maxQueue <= 0 {
		s.maxQueue = DefaultMaxQueuePerTenant
	}
	if s.hitSvc <= 0 {
		s.hitSvc = DefaultHitService
	}
	for i := range s.hists {
		s.hists[i] = NewHist()
	}
	s.shards = make([]*shardState, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shardState{queue: wfq.New()}
	}

	// One PCG stream pair per session: stream 2k for arrivals, 2k+1 for
	// classification — the chaos idiom (seed fixed, stream index varies).
	idx := 0
	for j := range cfg.Jobs {
		job := &cfg.Jobs[j]
		for k := 0; k < job.Sessions; k++ {
			rate := job.Rate
			if rate <= 0 {
				continue
			}
			sess := &session{
				proc: newArrivalProc(cfg.Seed, uint64(idx)*2, job.Arrival, rate, job.Burst),
				rng:  rand.New(rand.NewPCG(cfg.Seed, uint64(idx)*2+1)),
				job:  j,
			}
			s.sessions = append(s.sessions, sess)
			s.schedule(sess.proc.next(), evArrival, len(s.sessions)-1, nil)
			idx++
		}
	}
	if len(s.sessions) == 0 {
		return nil, fmt.Errorf("%w: no sessions with positive rate", ErrBadConfig)
	}

	drain := cfg.Drain
	if drain <= 0 {
		drain = cfg.Duration
	}
	horizon := cfg.Duration + drain

	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.at > horizon {
			break
		}
		s.now = ev.at
		switch ev.kind {
		case evArrival:
			s.onArrival(ev.session)
		case evCoreDone:
			s.onCoreDone(ev.req)
		case evXferDone:
			s.onXferDone(ev.req)
		}
	}

	return s.report(total), nil
}

func (s *sim) schedule(delay time.Duration, kind, sessionIdx int, req *request) {
	ev := &event{at: s.now + delay, seq: s.seq, kind: kind, session: sessionIdx, req: req}
	s.seq++
	heap.Push(&s.events, ev)
}

// classify draws the fetch class from the job's normalized mix.
func classify(rng *rand.Rand, mix [3]float64) Class {
	sum := mix[0] + mix[1] + mix[2]
	if sum <= 0 {
		return ClassRaw
	}
	r := rng.Float64() * sum
	if r < mix[0] {
		return ClassHit
	}
	if r < mix[0]+mix[1] {
		return ClassOffloaded
	}
	return ClassRaw
}

func (s *sim) onArrival(sessionIdx int) {
	sess := s.sessions[sessionIdx]
	job := &s.cfg.Jobs[sess.job]

	// Next arrival first, so the open loop never stalls on a slow server.
	if next := sess.proc.next(); s.now+next <= s.cfg.Duration {
		s.schedule(next, evArrival, sessionIdx, nil)
	}
	if s.now > s.cfg.Duration {
		return
	}
	s.offered++

	class := classify(sess.rng, job.Mix)
	if class == ClassHit {
		// Served from the trainer-side shared cache; never touches the
		// storage tier or its admission queues.
		s.hists[ClassHit].Record(s.hitSvc)
		s.done++
		return
	}

	req := &request{
		arrived: s.now,
		class:   class,
		job:     sess.job,
		shard:   sess.rng.IntN(s.cfg.Shards),
	}
	if class == ClassOffloaded {
		req.bytes = job.OffloadedBytes
		req.cpu = job.OffloadCPU
	} else {
		req.bytes = job.RawBytes
	}
	if req.bytes <= 0 {
		req.bytes = 1
	}

	sh := s.shards[req.shard]
	if s.cfg.Admission.Disabled {
		s.startService(sh, req)
		return
	}
	// Admission: fast path when the budget fits and no one is queued;
	// otherwise join the tenant's weighted queue, unless it is full —
	// then the request is shed (the server answers retry-after).
	if sh.inFlightBytes+req.bytes <= s.budget && sh.queue.Len() == 0 {
		sh.inFlightBytes += req.bytes
		s.startService(sh, req)
		return
	}
	if sh.queue.TenantLen(uint64(req.job)) >= s.maxQueue {
		s.shed[class]++
		return
	}
	weight := job.Weight
	if weight <= 0 {
		weight = 1
	}
	sh.queue.Push(uint64(req.job), weight, float64(req.bytes), req)
	depth := 0
	for _, other := range s.shards {
		depth += other.queue.Len()
	}
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
}

// startService runs an admitted request: offloaded work claims a core
// first, raw fetches go straight to the link.
func (s *sim) startService(sh *shardState, req *request) {
	if req.class == ClassOffloaded && req.cpu > 0 {
		if sh.busyCores < s.cfg.CoresPerShard {
			sh.busyCores++
			s.schedule(req.cpu, evCoreDone, 0, req)
		} else {
			sh.coreQueue = append(sh.coreQueue, req)
		}
		return
	}
	s.startXfer(sh, req)
}

// startXfer puts the request's bytes on the shard's FIFO link.
func (s *sim) startXfer(sh *shardState, req *request) {
	xfer := time.Duration(float64(req.bytes) / s.cfg.LinkBytesPerSec * float64(time.Second))
	start := sh.linkFree
	if s.now > start {
		start = s.now
	}
	sh.linkFree = start + xfer
	s.schedule(sh.linkFree-s.now, evXferDone, 0, req)
}

func (s *sim) onCoreDone(req *request) {
	sh := s.shards[req.shard]
	// Hand the freed core to the next queued prefix, if any.
	if len(sh.coreQueue) > 0 {
		next := sh.coreQueue[0]
		copy(sh.coreQueue, sh.coreQueue[1:])
		sh.coreQueue[len(sh.coreQueue)-1] = nil
		sh.coreQueue = sh.coreQueue[:len(sh.coreQueue)-1]
		s.schedule(next.cpu, evCoreDone, 0, next)
	} else {
		sh.busyCores--
	}
	s.startXfer(sh, req)
}

func (s *sim) onXferDone(req *request) {
	sh := s.shards[req.shard]
	s.hists[req.class].Record(s.now - req.arrived)
	s.done++
	if s.cfg.Admission.Disabled {
		return
	}
	sh.inFlightBytes -= req.bytes
	// Admit queued requests in weighted-fair order while the budget fits.
	for {
		it := sh.queue.Peek()
		if it == nil {
			break
		}
		next := it.Value.(*request)
		if sh.inFlightBytes+next.bytes > s.budget {
			break
		}
		sh.queue.Pop()
		sh.inFlightBytes += next.bytes
		s.startService(sh, next)
	}
}

func (s *sim) report(sessions int) *Report {
	var shedTotal uint64
	for _, c := range s.shed {
		shedTotal += c
	}
	rep := &Report{
		Seed:          s.cfg.Seed,
		Sessions:      sessions,
		SimDuration:   s.cfg.Duration,
		Offered:       s.offered,
		Completed:     s.done,
		Shed:          shedTotal,
		MaxQueueDepth: s.maxDepth,
		Classes:       make(map[string]*ClassReport, classCount),
	}
	secs := s.cfg.Duration.Seconds()
	rep.OfferedRPS = float64(s.offered) / secs
	rep.ThroughputRPS = float64(s.done) / secs
	if s.offered > 0 {
		rep.ShedRate = float64(shedTotal) / float64(s.offered)
	}
	for c := Class(0); c < classCount; c++ {
		h := s.hists[c]
		if h.Count() == 0 && s.shed[c] == 0 {
			continue
		}
		rep.Classes[c.String()] = &ClassReport{
			Count: h.Count(),
			Shed:  s.shed[c],
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
			Max:   h.Max(),
			Mean:  h.Mean(),
		}
	}
	return rep
}
