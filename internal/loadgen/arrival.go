package loadgen

import (
	"math"
	"math/rand/v2"
	"time"
)

// ArrivalKind selects the open-loop arrival process for a session.
type ArrivalKind int

const (
	// Poisson arrivals: independent exponential inter-arrival gaps with
	// mean 1/rate. The classic open-loop model — arrivals keep coming at
	// the offered rate regardless of how slow the server is, which is what
	// exposes queueing collapse (closed-loop generators self-throttle and
	// hide it).
	Poisson ArrivalKind = iota
	// Bursty arrivals: geometrically-sized batches of back-to-back
	// requests separated by exponential gaps, preserving the same mean
	// rate but with much heavier short-term peaks. Models synchronized
	// prefetch windows waking up across trainer steps.
	Bursty
)

func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	default:
		return "unknown"
	}
}

// arrivalProc generates the arrival instants for one session from its own
// seeded PCG stream (same idiom as internal/chaos: one PCG per logical
// stream keyed by seed and stream index, so runs are reproducible and
// sessions are independent).
type arrivalProc struct {
	rng   *rand.Rand
	kind  ArrivalKind
	rate  float64 // mean arrivals per second
	burst float64 // mean batch size for Bursty; ignored for Poisson

	pending int // remaining arrivals in the current burst
}

func newArrivalProc(seed uint64, stream uint64, kind ArrivalKind, rate, burst float64) *arrivalProc {
	if burst < 1 {
		burst = 1
	}
	return &arrivalProc{
		rng:   rand.New(rand.NewPCG(seed, stream)),
		kind:  kind,
		rate:  rate,
		burst: burst,
	}
}

// expGap draws an exponential gap with the given mean.
func (a *arrivalProc) expGap(mean float64) time.Duration {
	// Inverse-CDF; 1-Float64() avoids log(0).
	gap := -math.Log(1-a.rng.Float64()) * mean
	return time.Duration(gap * float64(time.Second))
}

// next returns the delay from the previous arrival to the next one.
func (a *arrivalProc) next() time.Duration {
	switch a.kind {
	case Bursty:
		if a.pending > 0 {
			a.pending--
			return 0 // back-to-back within the burst
		}
		// Draw the next batch size (geometric with mean a.burst, support
		// >= 1) and the exponential gap to its first arrival. Gap mean is
		// burst/rate so the long-run rate matches the Poisson case.
		p := 1 / a.burst
		n := 1
		for a.rng.Float64() > p && n < 1<<16 {
			n++
		}
		a.pending = n - 1
		return a.expGap(a.burst / a.rate)
	default:
		return a.expGap(1 / a.rate)
	}
}
