package eval

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/compressor"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/sched"
)

// AblationGuardRow compares the paper-faithful engine with the step-guarded
// variant at one storage-core budget.
type AblationGuardRow struct {
	Cores          int
	BaseSeconds    float64
	GuardedSeconds float64
}

// AblationStepGuard runs Ablation A: does rejecting epoch-worsening greedy
// steps change the outcome?
func AblationStepGuard(opts Options) ([]AblationGuardRow, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:   "Ablation A: SOPHON greedy loop with and without the step guard (epoch s)",
		Columns: []string{"Storage cores", "SOPHON", "SOPHON+guard"},
	}
	var rows []AblationGuardRow
	for _, cores := range []int{1, 2, 4, 48} {
		env := DefaultEnv(cores)
		base, _, err := engine.RunPolicy(policy.NewSophon(), tr, env, 256)
		if err != nil {
			return nil, Table{}, err
		}
		guarded, _, err := engine.RunPolicy(&policy.Sophon{StepGuard: true}, tr, env, 256)
		if err != nil {
			return nil, Table{}, err
		}
		row := AblationGuardRow{
			Cores:          cores,
			BaseSeconds:    base.EpochTime.Seconds(),
			GuardedSeconds: guarded.EpochTime.Seconds(),
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%d", cores), fmtF(row.BaseSeconds, 1), fmtF(row.GuardedSeconds, 1))
	}
	return rows, t, nil
}

// AblationCompressionResult compares SOPHON with and without selective
// transfer compression (future-work extension).
type AblationCompressionResult struct {
	BaseSeconds       float64
	CompressedSeconds float64
	BaseTrafficGB     float64
	CompTrafficGB     float64
	SamplesCompressed int
}

// AblationCompression runs Ablation B on OpenImages with ample cores.
func AblationCompression(opts Options) (AblationCompressionResult, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return AblationCompressionResult{}, Table{}, err
	}
	env := DefaultEnv(48)
	plan, err := policy.NewSophon().Plan(tr, env)
	if err != nil {
		return AblationCompressionResult{}, Table{}, err
	}
	base, err := engine.Run(engine.Config{Trace: tr, Plan: plan, Env: env})
	if err != nil {
		return AblationCompressionResult{}, Table{}, err
	}
	model := compressor.DefaultModel()
	sel, err := compressor.Select(tr, plan, env, model)
	if err != nil {
		return AblationCompressionResult{}, Table{}, err
	}
	adjusted, err := compressor.ApplyToTrace(tr, plan, sel, model)
	if err != nil {
		return AblationCompressionResult{}, Table{}, err
	}
	comp, err := engine.Run(engine.Config{Trace: adjusted, Plan: plan, Env: env})
	if err != nil {
		return AblationCompressionResult{}, Table{}, err
	}
	res := AblationCompressionResult{
		BaseSeconds:       base.EpochTime.Seconds(),
		CompressedSeconds: comp.EpochTime.Seconds(),
		BaseTrafficGB:     gb(base.TrafficBytes),
		CompTrafficGB:     gb(comp.TrafficBytes),
		SamplesCompressed: sel.Count(),
	}
	t := Table{
		Title:   "Ablation B: selective transfer compression on top of SOPHON (OpenImages, 48 cores)",
		Columns: []string{"Variant", "Epoch (s)", "Traffic (GB)", "Compressed samples"},
	}
	t.AddRow("SOPHON", fmtF(res.BaseSeconds, 1), fmtF(res.BaseTrafficGB, 2), "0")
	t.AddRow("SOPHON+compress", fmtF(res.CompressedSeconds, 1), fmtF(res.CompTrafficGB, 2),
		fmt.Sprintf("%d", res.SamplesCompressed))
	return res, t, nil
}

// AblationHeteroRow is one storage-CPU speed point.
type AblationHeteroRow struct {
	Slowdown     float64
	EpochSeconds float64
	Offloaded    int
}

// AblationHeterogeneous runs Ablation C: SOPHON planning with storage CPUs
// 1×–3× slower than compute CPUs (future-work extension).
func AblationHeterogeneous(opts Options) ([]AblationHeteroRow, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:   "Ablation C: heterogeneous storage CPUs (4 cores, OpenImages)",
		Columns: []string{"Storage slowdown", "Epoch (s)", "Offloaded samples"},
	}
	var rows []AblationHeteroRow
	for _, slow := range []float64{1, 1.5, 2, 3} {
		env := DefaultEnv(4)
		env.StorageSlowdown = slow
		res, plan, err := engine.RunPolicy(policy.NewSophon(), tr, env, 256)
		if err != nil {
			return nil, Table{}, err
		}
		row := AblationHeteroRow{
			Slowdown:     slow,
			EpochSeconds: res.EpochTime.Seconds(),
			Offloaded:    plan.OffloadedCount(),
		}
		rows = append(rows, row)
		t.AddRow(fmtF(slow, 1)+"x", fmtF(row.EpochSeconds, 1), fmt.Sprintf("%d", row.Offloaded))
	}
	return rows, t, nil
}

// AblationCacheRow is one local-cache capacity point.
type AblationCacheRow struct {
	CapacityFraction float64 // cache size as a fraction of the dataset
	CacheSeconds     float64 // No-Off + local cache
	SophonSeconds    float64 // SOPHON, no local cache
	ComboSeconds     float64 // SOPHON planned over the cached trace
}

// AblationLocalCache runs Ablation E: the caching alternative the paper's
// introduction contrasts against. A compute-local no-evict cache of
// capacity f·|dataset| removes f of the raw traffic; SOPHON needs no local
// storage at all, and composing the two (SOPHON planned over the cache's
// resident set) stacks their savings.
func AblationLocalCache(opts Options) ([]AblationCacheRow, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return nil, Table{}, err
	}
	env := DefaultEnv(48)
	sophon, _, err := engine.RunPolicy(policy.NewSophon(), tr, env, 256)
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title: "Ablation E: local raw-object cache vs SOPHON (OpenImages, 48 cores, epoch s)",
		Columns: []string{"Cache capacity", "No-Off+cache", "SOPHON (no cache)",
			"SOPHON+cache"},
	}
	var rows []AblationCacheRow
	total := tr.TotalRawBytes()
	for _, frac := range []float64{0.10, 0.25, 0.50} {
		capacity := int64(frac * float64(total))
		cached, _ := cache.ApplyToTrace(tr, capacity, opts.seed())
		noOffPlan, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
		if err != nil {
			return nil, Table{}, err
		}
		cacheRun, err := engine.Run(engine.Config{Trace: cached, Plan: noOffPlan, Env: env, BatchSize: 256})
		if err != nil {
			return nil, Table{}, err
		}
		comboRun, _, err := engine.RunPolicy(policy.NewSophon(), cached, env, 256)
		if err != nil {
			return nil, Table{}, err
		}
		row := AblationCacheRow{
			CapacityFraction: frac,
			CacheSeconds:     cacheRun.EpochTime.Seconds(),
			SophonSeconds:    sophon.EpochTime.Seconds(),
			ComboSeconds:     comboRun.EpochTime.Seconds(),
		}
		rows = append(rows, row)
		t.AddRow(fmtF(frac*100, 0)+"%",
			fmtF(row.CacheSeconds, 1), fmtF(row.SophonSeconds, 1), fmtF(row.ComboSeconds, 1))
	}
	t.Notes = append(t.Notes,
		"no-evict cache (the DL-cache admission policy); SOPHON needs zero local storage")
	return rows, t, nil
}

// AblationMultiTenantResult compares the marginal-gain scheduler against an
// even split.
type AblationMultiTenantResult struct {
	SmartTotalSeconds float64
	EvenTotalSeconds  float64
	SmartCores        map[string]int
}

// AblationMultiTenant runs Ablation D: three concurrent jobs sharing eight
// storage cores (future-work extension).
func AblationMultiTenant(opts Options) (AblationMultiTenantResult, Table, error) {
	scale := func(p dataset.Profile, n int) dataset.Profile {
		if n > 0 {
			return p.ScaledTo(n)
		}
		return p.ScaledTo(p.N / 8) // multi-tenant runs at 1/8 scale by default
	}
	oiA, err := dataset.GenerateTrace(scale(dataset.OpenImages12G(), opts.OpenImages), opts.seed()+1)
	if err != nil {
		return AblationMultiTenantResult{}, Table{}, err
	}
	oiB, err := dataset.GenerateTrace(scale(dataset.OpenImages12G(), opts.OpenImages), opts.seed()+2)
	if err != nil {
		return AblationMultiTenantResult{}, Table{}, err
	}
	in, err := dataset.GenerateTrace(scale(dataset.ImageNet11G(), opts.ImageNet), opts.seed()+3)
	if err != nil {
		return AblationMultiTenantResult{}, Table{}, err
	}
	env := DefaultEnv(0)
	jobs := []sched.Job{
		{Name: "openimages-a", Trace: oiA, Env: env},
		{Name: "openimages-b", Trace: oiB, Env: env},
		{Name: "imagenet", Trace: in, Env: env},
	}
	const totalCores = 8
	smart, err := sched.Allocate(jobs, totalCores, nil)
	if err != nil {
		return AblationMultiTenantResult{}, Table{}, err
	}
	even, err := sched.EvenSplit(jobs, totalCores, nil)
	if err != nil {
		return AblationMultiTenantResult{}, Table{}, err
	}
	res := AblationMultiTenantResult{
		SmartTotalSeconds: smart.TotalPredicted().Seconds(),
		EvenTotalSeconds:  even.TotalPredicted().Seconds(),
		SmartCores:        smart.Cores,
	}
	t := Table{
		Title:   "Ablation D: multi-tenant storage-CPU scheduling (3 jobs, 8 cores)",
		Columns: []string{"Allocator", "Total predicted epoch (s)", "Core grants"},
	}
	t.AddRow("marginal-gain", fmtF(res.SmartTotalSeconds, 1), grantString(jobs, smart.Cores))
	t.AddRow("even-split", fmtF(res.EvenTotalSeconds, 1), grantString(jobs, even.Cores))
	return res, t, nil
}

func grantString(jobs []sched.Job, cores map[string]int) string {
	s := ""
	for i, j := range jobs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", j.Name, cores[j.Name])
	}
	return s
}
