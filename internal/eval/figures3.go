package eval

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/policy"
)

// PolicyRun is one bar of Figures 3/4: a policy's epoch outcome.
type PolicyRun struct {
	Policy       string
	EpochSeconds float64
	TrafficGB    float64
	Offloaded    int
	StorageBusy  time.Duration
}

// Fig3Result holds the ample-CPU comparison for one dataset.
type Fig3Result struct {
	Dataset string
	Runs    []PolicyRun
}

// Run looks up a policy's outcome by name.
func (r Fig3Result) Run(name string) (PolicyRun, bool) {
	for _, run := range r.Runs {
		if run.Policy == name {
			return run, true
		}
	}
	return PolicyRun{}, false
}

// runPolicies simulates every policy over a trace.
func runPolicies(tr *dataset.Trace, env policy.Env) ([]PolicyRun, error) {
	var runs []PolicyRun
	for _, p := range policy.All() {
		res, plan, err := engine.RunPolicy(p, tr, env, 256)
		if err != nil {
			return nil, fmt.Errorf("eval: %s on %s: %w", p.Name(), tr.Name, err)
		}
		runs = append(runs, PolicyRun{
			Policy:       p.Name(),
			EpochSeconds: res.EpochTime.Seconds(),
			TrafficGB:    gb(res.TrafficBytes),
			Offloaded:    plan.OffloadedCount(),
			StorageBusy:  res.StorageBusy,
		})
	}
	return runs, nil
}

// Figure3 reproduces the ample-CPU evaluation: per-epoch training time and
// data traffic for every policy on both datasets with 48 storage cores.
func Figure3(opts Options) ([]Fig3Result, Table, error) {
	t := Table{
		Title:   "Figure 3: per-epoch training time and data traffic, ample (48) storage cores",
		Columns: []string{"Dataset", "Policy", "Epoch (s)", "Traffic (GB)", "Traffic vs No-Off", "Offloaded"},
	}
	var out []Fig3Result
	for _, pr := range []dataset.Profile{profileOI(opts), profileIN(opts)} {
		tr, err := dataset.GenerateTrace(pr, opts.seed())
		if err != nil {
			return nil, Table{}, err
		}
		runs, err := runPolicies(tr, DefaultEnv(48))
		if err != nil {
			return nil, Table{}, err
		}
		res := Fig3Result{Dataset: pr.Name, Runs: runs}
		base, _ := res.Run("No-Off")
		for _, run := range runs {
			t.AddRow(pr.Name, run.Policy,
				fmtF(run.EpochSeconds, 1),
				fmtF(run.TrafficGB, 2),
				fmtF(run.TrafficGB/base.TrafficGB, 2)+"x",
				fmt.Sprintf("%d", run.Offloaded))
		}
		out = append(out, res)
	}
	return out, t, nil
}

// Fig4Result holds the limited-CPU sweep on OpenImages.
type Fig4Result struct {
	Cores []int
	// Runs maps policy name to one PolicyRun per core count (same order
	// as Cores).
	Runs map[string][]PolicyRun
}

// Figure4 sweeps storage-core budgets on OpenImages for every policy.
func Figure4(opts Options) (Fig4Result, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return Fig4Result{}, Table{}, err
	}
	res := Fig4Result{
		Cores: []int{0, 1, 2, 3, 4, 5, 6, 8},
		Runs:  map[string][]PolicyRun{},
	}
	t := Table{
		Title:   "Figure 4: OpenImages epoch time (s) vs storage-node CPU cores",
		Columns: append([]string{"Policy"}, coreColumns(res.Cores)...),
	}
	for _, p := range policy.All() {
		row := []string{p.Name()}
		for _, cores := range res.Cores {
			env := DefaultEnv(cores)
			r, plan, err := engine.RunPolicy(p, tr, env, 256)
			if err != nil {
				return Fig4Result{}, Table{}, fmt.Errorf("eval: %s at %d cores: %w", p.Name(), cores, err)
			}
			res.Runs[p.Name()] = append(res.Runs[p.Name()], PolicyRun{
				Policy:       p.Name(),
				EpochSeconds: r.EpochTime.Seconds(),
				TrafficGB:    gb(r.TrafficBytes),
				Offloaded:    plan.OffloadedCount(),
				StorageBusy:  r.StorageBusy,
			})
			row = append(row, fmtF(r.EpochTime.Seconds(), 1))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "All-Off/Resize-Off/SOPHON fall back to no offloading at 0 cores")
	return res, t, nil
}

func coreColumns(cores []int) []string {
	out := make([]string, len(cores))
	for i, c := range cores {
		out[i] = fmt.Sprintf("%dc", c)
	}
	return out
}

// HeadlineRow is one scenario of the paper's 1.2–2.2× claim.
type HeadlineRow struct {
	Scenario         string
	TrafficReduction float64 // No-Off traffic / SOPHON traffic
	TimeSpeedup      float64 // best-baseline epoch / SOPHON epoch
}

// Headline computes the paper's abstract-level claim — SOPHON reduces data
// traffic and training time by 1.2–2.2× over existing solutions — from the
// Figure 3 runs.
func Headline(opts Options) ([]HeadlineRow, Table, error) {
	fig3, _, err := Figure3(opts)
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:   "Headline: SOPHON vs existing solutions",
		Columns: []string{"Scenario", "Traffic reduction", "Epoch speedup vs best baseline"},
	}
	var rows []HeadlineRow
	for _, res := range fig3 {
		sophon, ok := res.Run("SOPHON")
		if !ok {
			return nil, Table{}, fmt.Errorf("eval: no SOPHON run for %s", res.Dataset)
		}
		noOff, _ := res.Run("No-Off")
		bestBaseline := noOff
		for _, run := range res.Runs {
			if run.Policy != "SOPHON" && run.EpochSeconds < bestBaseline.EpochSeconds {
				bestBaseline = run
			}
		}
		row := HeadlineRow{
			Scenario:         res.Dataset + " @48 cores",
			TrafficReduction: noOff.TrafficGB / sophon.TrafficGB,
			TimeSpeedup:      bestBaseline.EpochSeconds / sophon.EpochSeconds,
		}
		rows = append(rows, row)
		t.AddRow(row.Scenario, fmtF(row.TrafficReduction, 2)+"x", fmtF(row.TimeSpeedup, 2)+"x")
	}
	return rows, t, nil
}
