package eval

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testOpts shrinks datasets so the full suite runs in well under a second.
func testOpts() Options {
	return Options{Seed: 7, OpenImages: 3000, ImageNet: 3000}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow("x", "y")
	out := tbl.String()
	for _, want := range []string{"== demo ==", "a", "bbbb", "x", "y", "note: hello", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 5 {
		t.Fatalf("Table 1 has %d rows", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "SOPHON" {
		t.Fatalf("last row is %q", last[0])
	}
	for i := 1; i < 5; i++ {
		if last[i] != "yes" {
			t.Fatalf("SOPHON column %d = %q", i, last[i])
		}
	}
	// No baseline has full data-selectivity.
	for _, row := range tbl.Rows[:4] {
		if row[3] == "yes" {
			t.Fatalf("%s claims data-selectivity", row[0])
		}
	}
}

// TestFigure1aShape: sample A's min is mid-pipeline with ~4x tensor
// inflation; sample B's min is the raw form — the paper's two motivating
// samples.
func TestFigure1aShape(t *testing.T) {
	res, tbl, err := Figure1a(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MinStageA(); got != 2 && got != 3 {
		t.Fatalf("sample A min stage %d, want crop/flip", got)
	}
	if res.MinStageB() != 0 {
		t.Fatalf("sample B min stage %d, want raw", res.MinStageB())
	}
	// Sample A raw should be in the hundreds of KB like the paper's 462 KB.
	if res.SampleA[0] < 200e3 || res.SampleA[0] > 900e3 {
		t.Fatalf("sample A raw %d bytes", res.SampleA[0])
	}
	ratio := float64(res.SampleA[4]) / float64(res.SampleA[3])
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("ToTensor inflation %.2f, want ~4", ratio)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("figure 1a table rows = %d", len(tbl.Rows))
	}
}

func TestFigure1bMatchesPaperFractions(t *testing.T) {
	res, _, err := Figure1b(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	oi := res.Benefiting["openimages-12g"]
	if oi < 0.72 || oi > 0.80 {
		t.Fatalf("OpenImages benefiting %.3f, want ~0.76", oi)
	}
	in := res.Benefiting["imagenet-11g"]
	if in < 0.21 || in > 0.31 {
		t.Fatalf("ImageNet benefiting %.3f, want ~0.26", in)
	}
	// Fractions per dataset sum to 1.
	for name, hist := range res.Hist {
		sum := 0.0
		for _, f := range hist {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s histogram sums to %f", name, sum)
		}
	}
}

func TestFigure1cShape(t *testing.T) {
	res, _, err := Figure1c(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.FractionZero < 0.20 || res.FractionZero > 0.28 {
		t.Fatalf("fraction at zero %.3f, want ~0.24", res.FractionZero)
	}
	if res.PercentileMBps[99] <= res.PercentileMBps[50] {
		t.Fatal("efficiency distribution not increasing")
	}
	if res.PercentileMBps[50] <= 0 {
		t.Fatal("median efficiency is zero")
	}
}

func TestFigure1dShape(t *testing.T) {
	res, _, err := Figure1d(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization["resnet50"] < 0.85 {
		t.Fatalf("ResNet50 util %.2f", res.Utilization["resnet50"])
	}
	if u := res.Utilization["resnet18"]; u < 0.25 || u > 0.50 {
		t.Fatalf("ResNet18 util %.2f", u)
	}
	if res.Utilization["alexnet"] > 0.2 {
		t.Fatalf("AlexNet util %.2f", res.Utilization["alexnet"])
	}
}

// TestFigure3MatchesPaperShape checks every qualitative claim of Figure 3.
func TestFigure3MatchesPaperShape(t *testing.T) {
	results, _, err := Figure3(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d datasets", len(results))
	}
	for _, res := range results {
		noOff, _ := res.Run("No-Off")
		allOff, _ := res.Run("All-Off")
		fastFlow, _ := res.Run("FastFlow")
		resizeOff, _ := res.Run("Resize-Off")
		sophon, _ := res.Run("SOPHON")

		if fastFlow.TrafficGB != noOff.TrafficGB {
			t.Errorf("%s: FastFlow traffic %f != No-Off %f", res.Dataset, fastFlow.TrafficGB, noOff.TrafficGB)
		}
		if allOff.EpochSeconds <= noOff.EpochSeconds {
			t.Errorf("%s: All-Off not slowest", res.Dataset)
		}
		if sophon.EpochSeconds >= noOff.EpochSeconds {
			t.Errorf("%s: SOPHON not faster than No-Off", res.Dataset)
		}
		if sophon.TrafficGB >= noOff.TrafficGB {
			t.Errorf("%s: SOPHON did not reduce traffic", res.Dataset)
		}

		switch res.Dataset {
		case "openimages-12g":
			if r := allOff.TrafficGB / noOff.TrafficGB; r < 1.7 || r > 2.3 {
				t.Errorf("OpenImages All-Off traffic ratio %.2f, want ~1.9-2.0", r)
			}
			if r := resizeOff.TrafficGB / noOff.TrafficGB; r < 0.40 || r > 0.60 {
				t.Errorf("OpenImages Resize-Off traffic ratio %.2f, want ~0.5", r)
			}
			if r := noOff.TrafficGB / sophon.TrafficGB; r < 1.9 || r > 2.5 {
				t.Errorf("OpenImages SOPHON reduction %.2f, want ~2.2", r)
			}
		case "imagenet-11g":
			if r := allOff.TrafficGB / noOff.TrafficGB; r < 4.3 || r > 5.7 {
				t.Errorf("ImageNet All-Off traffic ratio %.2f, want ~5", r)
			}
			if r := resizeOff.TrafficGB / noOff.TrafficGB; r < 1.1 || r > 1.45 {
				t.Errorf("ImageNet Resize-Off traffic ratio %.2f, want ~1.3 (an increase)", r)
			}
			if r := noOff.TrafficGB / sophon.TrafficGB; r < 1.1 || r > 1.5 {
				t.Errorf("ImageNet SOPHON reduction %.2f, want ~1.2", r)
			}
		default:
			t.Errorf("unexpected dataset %q", res.Dataset)
		}
	}
}

// TestFigure4MatchesPaperShape checks the limited-CPU claims.
func TestFigure4MatchesPaperShape(t *testing.T) {
	res, _, err := Figure4(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	coreIdx := map[int]int{}
	for i, c := range res.Cores {
		coreIdx[c] = i
	}
	noOff := res.Runs["No-Off"]
	resize := res.Runs["Resize-Off"]
	sophon := res.Runs["SOPHON"]

	// Resize-Off slower than No-Off at ≤2 cores, faster at ≥4.
	for _, c := range []int{1, 2} {
		if resize[coreIdx[c]].EpochSeconds <= noOff[coreIdx[c]].EpochSeconds {
			t.Errorf("Resize-Off@%d not slower than No-Off", c)
		}
	}
	if resize[coreIdx[8]].EpochSeconds >= noOff[coreIdx[8]].EpochSeconds {
		t.Error("Resize-Off@8 not faster than No-Off")
	}
	// SOPHON shortest (within 1%) at every core count.
	for i, c := range res.Cores {
		for name, runs := range res.Runs {
			if sophon[i].EpochSeconds > runs[i].EpochSeconds*1.01 {
				t.Errorf("cores=%d: SOPHON %.1fs slower than %s %.1fs",
					c, sophon[i].EpochSeconds, name, runs[i].EpochSeconds)
			}
		}
	}
	// Diminishing returns: 0→1 gain > 4→5 gain.
	g01 := sophon[coreIdx[0]].EpochSeconds - sophon[coreIdx[1]].EpochSeconds
	g45 := sophon[coreIdx[4]].EpochSeconds - sophon[coreIdx[5]].EpochSeconds
	if g01 <= 0 || g45 >= g01 {
		t.Errorf("diminishing returns violated: 0→1 %.1fs, 4→5 %.1fs", g01, g45)
	}
}

// TestHeadlineClaim: the abstract's 1.2–2.2× range.
func TestHeadlineClaim(t *testing.T) {
	rows, _, err := Headline(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d headline scenarios", len(rows))
	}
	for _, r := range rows {
		if r.TrafficReduction < 1.1 || r.TrafficReduction > 2.6 {
			t.Errorf("%s: traffic reduction %.2f outside the paper's band", r.Scenario, r.TrafficReduction)
		}
		if r.TimeSpeedup < 1.0 {
			t.Errorf("%s: speedup %.2f < 1", r.Scenario, r.TimeSpeedup)
		}
	}
}

func TestAblations(t *testing.T) {
	opts := testOpts()

	guard, _, err := AblationStepGuard(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range guard {
		if row.GuardedSeconds > row.BaseSeconds*1.02 {
			t.Errorf("guard at %d cores worse: %.1f vs %.1f", row.Cores, row.GuardedSeconds, row.BaseSeconds)
		}
	}

	comp, _, err := AblationCompression(opts)
	if err != nil {
		t.Fatal(err)
	}
	if comp.CompTrafficGB >= comp.BaseTrafficGB {
		t.Errorf("compression did not cut traffic: %.2f vs %.2f", comp.CompTrafficGB, comp.BaseTrafficGB)
	}
	if comp.SamplesCompressed == 0 {
		t.Error("nothing compressed")
	}

	hetero, _, err := AblationHeterogeneous(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hetero) != 4 {
		t.Fatalf("%d hetero rows", len(hetero))
	}
	if hetero[3].EpochSeconds < hetero[0].EpochSeconds {
		t.Error("3x slower storage produced faster epochs")
	}

	mt, _, err := AblationMultiTenant(Options{Seed: 7, OpenImages: 1200, ImageNet: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if mt.SmartTotalSeconds > mt.EvenTotalSeconds*1.001 {
		t.Errorf("scheduler %.1fs worse than even split %.1fs", mt.SmartTotalSeconds, mt.EvenTotalSeconds)
	}

	cacheRows, _, err := AblationLocalCache(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cacheRows) != 3 {
		t.Fatalf("%d cache rows", len(cacheRows))
	}
	for i, row := range cacheRows {
		// A bigger cache shortens the cached epoch.
		if i > 0 && row.CacheSeconds > cacheRows[i-1].CacheSeconds {
			t.Errorf("cache %v%% slower than smaller cache", row.CapacityFraction*100)
		}
		// SOPHON without local storage beats small caches.
		if row.CapacityFraction <= 0.25 && row.SophonSeconds >= row.CacheSeconds {
			t.Errorf("SOPHON (%.1fs) not faster than %.0f%% cache (%.1fs)",
				row.SophonSeconds, row.CapacityFraction*100, row.CacheSeconds)
		}
		// Composition is at least as good as either alone.
		if row.ComboSeconds > row.SophonSeconds*1.01 || row.ComboSeconds > row.CacheSeconds*1.01 {
			t.Errorf("combo (%.1fs) worse than components (%.1fs / %.1fs)",
				row.ComboSeconds, row.SophonSeconds, row.CacheSeconds)
		}
	}
}

// TestValidateModel: the analytic max() model the decision engine reasons
// with stays within ~12% of the discrete-event simulation everywhere the
// evaluation uses it.
func TestValidateModel(t *testing.T) {
	rows, _, err := ValidateModel(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("%d validation rows", len(rows))
	}
	for _, r := range rows {
		if r.ErrorPct > 12 {
			t.Errorf("%s: model error %.1f%% (predicted %.1fs, DES %.1fs)",
				r.Scenario, r.ErrorPct, r.PredictedSec, r.SimulatedSec)
		}
	}
}

// TestAblationOracle: SOPHON matches the CPU-oblivious Oracle with ample
// cores and beats it under CPU constraints.
func TestAblationOracle(t *testing.T) {
	rows, _, err := AblationOracle(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	byCores := map[int]AblationOracleRow{}
	for _, r := range rows {
		byCores[r.Cores] = r
	}
	rich := byCores[48]
	if math.Abs(rich.SophonSec-rich.OracleSec) > rich.OracleSec*0.05 {
		t.Errorf("48 cores: SOPHON %.1fs far from Oracle %.1fs", rich.SophonSec, rich.OracleSec)
	}
	poor := byCores[1]
	if poor.SophonSec >= poor.OracleSec {
		t.Errorf("1 core: SOPHON %.1fs not better than CPU-oblivious Oracle %.1fs",
			poor.SophonSec, poor.OracleSec)
	}
	if poor.OracleTraffic > poor.SophonTraffic {
		t.Errorf("Oracle traffic %.2f above SOPHON %.2f", poor.OracleTraffic, poor.SophonTraffic)
	}
}

// TestValidateGenerator: the real tier obeys the model tier's size law
// exactly — the foundation of the dataset substitution.
func TestValidateGenerator(t *testing.T) {
	res, _, err := ValidateGenerator(48, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.LawViolations != 0 {
		t.Fatalf("%d size-law violations", res.LawViolations)
	}
	if res.MinStageMismatch != 0 {
		t.Fatalf("%d min-stage mismatches", res.MinStageMismatch)
	}
	if res.Benefiting <= 0 || res.Benefiting >= 1 {
		t.Fatalf("degenerate benefiting fraction %v", res.Benefiting)
	}
}

// TestDiscussionBandwidthSweep checks §5's crossover claims: SOPHON
// activates below the I/O crossover and declines above it, and the
// crossover moves to higher bandwidth with more GPUs sharing the link.
func TestDiscussionBandwidthSweep(t *testing.T) {
	rows, _, err := DiscussionBandwidthSweep(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]DiscussionFRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%.2f/%d", r.GbpsLink, r.GPUs)] = r
	}
	// Slow link, 1 GPU: I/O-bound, activated, faster with SOPHON.
	slow := byKey["0.10/1"]
	if !slow.Activated || slow.Dominant != "TNet" {
		t.Fatalf("0.1Gbps/1GPU: %+v", slow)
	}
	if slow.SophonSecond >= slow.NoOffSeconds {
		t.Fatalf("0.1Gbps/1GPU: SOPHON %v not faster than %v", slow.SophonSecond, slow.NoOffSeconds)
	}
	// Fast link, 1 GPU: GPU-bound, declined, identical epochs.
	fast := byKey["4.00/1"]
	if fast.Activated || fast.Dominant != "TG" {
		t.Fatalf("4Gbps/1GPU: %+v", fast)
	}
	if fast.SophonSecond != fast.NoOffSeconds {
		t.Fatalf("4Gbps/1GPU: declined but epochs differ: %v vs %v", fast.SophonSecond, fast.NoOffSeconds)
	}
	// 8 GPUs push the crossover up: a link that is ample for 1 GPU is a
	// bottleneck for 8 (the paper's 16 Gbps argument).
	if one, eight := byKey["1.00/1"], byKey["1.00/8"]; one.Activated || !eight.Activated {
		t.Fatalf("1Gbps crossover: 1GPU activated=%v, 8GPU activated=%v", one.Activated, eight.Activated)
	}
}

// TestDiscussionLLM checks §5's LLM claim: zero candidates, plan ≡ No-Off.
func TestDiscussionLLM(t *testing.T) {
	res, _, err := DiscussionLLM(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 0 || res.Offloaded != 0 {
		t.Fatalf("LLM trace produced candidates=%d offloaded=%d", res.Candidates, res.Offloaded)
	}
	if res.SophonSeconds != res.NoOffSeconds {
		t.Fatalf("LLM epochs differ: %v vs %v", res.SophonSeconds, res.NoOffSeconds)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("1", "two, quoted \"x\"")
	got := tbl.CSV()
	want := "a,b\n1,\"two, quoted \"\"x\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSVDir(Options{Seed: 7, OpenImages: 800, ImageNet: 800}, dir); err != nil {
		t.Fatal(err)
	}
	for _, slug := range []string{"table1_capabilities", "figure3_ample_cpu", "discussion_g_llm"} {
		data, err := os.ReadFile(filepath.Join(dir, slug+".csv"))
		if err != nil {
			t.Fatalf("missing %s.csv: %v", slug, err)
		}
		if len(data) == 0 || !strings.Contains(string(data), ",") {
			t.Fatalf("%s.csv looks empty: %q", slug, data[:min(40, len(data))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunAllProducesFullReport(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(Options{Seed: 7, OpenImages: 1500, ImageNet: 1500}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1a", "Figure 1b", "Figure 1c", "Figure 1d",
		"Figure 3", "Figure 4", "Headline",
		"Ablation A", "Ablation B", "Ablation C", "Ablation D", "Ablation E",
		"Discussion F", "Discussion G",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
