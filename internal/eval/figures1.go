package eval

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/policy"
)

// stageNames labels the six pipeline stages.
var stageNames = [dataset.StageCount]string{
	"raw", "decode", "rrcrop", "flip", "totensor", "normalize",
}

// Table1 reproduces the paper's capability matrix: prior offloading systems
// versus SOPHON. The literature rows encode the published designs; the
// SOPHON row comes from the decision engine's own metadata.
func Table1() Table {
	rows := []struct {
		name string
		c    policy.Capabilities
	}{
		{"tf.data service [32]", policy.Capabilities{}},
		{"FastFlow [33]", policy.FastFlow{}.Capabilities()},
		{"GoldMiner [34]", policy.Capabilities{OperationSelective: policy.Partial}},
		{"cedar [35]", policy.Capabilities{OperationSelective: policy.Partial}},
		{"SOPHON", policy.NewSophon().Capabilities()},
	}
	t := Table{
		Title:   "Table 1: Existing Offloading vs SOPHON",
		Columns: []string{"System", "Operation Selective", "Data Partial", "Data Selective", "To Near Storage"},
	}
	for _, r := range rows {
		t.AddRow(r.name,
			r.c.OperationSelective.String(),
			r.c.DataPartial.String(),
			r.c.DataSelective.String(),
			r.c.NearStorage.String())
	}
	return t
}

// Fig1aResult holds per-stage wire sizes for the two representative
// samples: A (large photo, min size mid-pipeline) and B (small photo, min
// size raw).
type Fig1aResult struct {
	SampleA [dataset.StageCount]int64
	SampleB [dataset.StageCount]int64
}

// MinStageA returns sample A's smallest stage.
func (r Fig1aResult) MinStageA() int { return minStage(r.SampleA) }

// MinStageB returns sample B's smallest stage.
func (r Fig1aResult) MinStageB() int { return minStage(r.SampleB) }

func minStage(sizes [dataset.StageCount]int64) int {
	best := 0
	for i, s := range sizes {
		if s < sizes[best] {
			best = i
		}
	}
	return best
}

// Figure1a traces two real synthetic photos through the real pipeline:
// Sample A is a detailed ~1-megapixel photo whose raw encoding (~460 KB)
// shrinks to the ~150 KB crop artifact; Sample B is a small photo whose raw
// form is already the minimum.
func Figure1a(opts Options) (Fig1aResult, Table, error) {
	var res Fig1aResult
	p := pipeline.DefaultStandard()

	trace := func(w, h int, detail float64, seed uint64, sample uint64) ([dataset.StageCount]int64, error) {
		var sizes [dataset.StageCount]int64
		im, err := imaging.Synthesize(imaging.SynthParams{W: w, H: h, Detail: detail, Seed: seed})
		if err != nil {
			return sizes, err
		}
		raw, err := imaging.EncodeDefault(im)
		if err != nil {
			return sizes, err
		}
		_, st, err := p.Trace(raw, pipeline.Seed{Job: opts.seed(), Epoch: 1, Sample: sample})
		if err != nil {
			return sizes, err
		}
		for i, s := range st.Sizes {
			sizes[i] = int64(s)
		}
		return sizes, nil
	}

	var err error
	// Sample A: a large, detailed photo (the paper's 462 KB JPEG).
	res.SampleA, err = trace(1180, 885, 0.85, opts.seed()+1, 1)
	if err != nil {
		return res, Table{}, fmt.Errorf("eval: sample A: %w", err)
	}
	// Sample B: a small photo already below the crop-artifact size.
	res.SampleB, err = trace(210, 160, 0.35, opts.seed()+2, 2)
	if err != nil {
		return res, Table{}, fmt.Errorf("eval: sample B: %w", err)
	}

	t := Table{
		Title:   "Figure 1a: artifact size through the preprocessing pipeline (KB)",
		Columns: []string{"Stage", "Sample A", "Sample B"},
	}
	for i := 0; i < dataset.StageCount; i++ {
		t.AddRow(stageNames[i],
			fmtF(float64(res.SampleA[i])/1e3, 1),
			fmtF(float64(res.SampleB[i])/1e3, 1))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("sample A min at stage %q; sample B min at stage %q",
			stageNames[res.MinStageA()], stageNames[res.MinStageB()]))
	return res, t, nil
}

// Fig1bResult holds min-stage distributions per dataset.
type Fig1bResult struct {
	Datasets   []string
	Hist       map[string][dataset.StageCount]float64 // fraction per stage
	Benefiting map[string]float64                     // fraction with min after stage 0
}

// Figure1b computes, for both dataset profiles, the fraction of samples
// whose minimum wire size occurs at each stage (the paper: 76 % of
// OpenImages and 26 % of ImageNet benefit from some offloading).
func Figure1b(opts Options) (Fig1bResult, Table, error) {
	res := Fig1bResult{
		Hist:       map[string][dataset.StageCount]float64{},
		Benefiting: map[string]float64{},
	}
	t := Table{
		Title:   "Figure 1b: where each sample reaches its minimum size (fraction of dataset)",
		Columns: append([]string{"Dataset"}, append(stageNames[:], "benefiting")...),
	}
	for _, pr := range []dataset.Profile{profileOI(opts), profileIN(opts)} {
		tr, err := dataset.GenerateTrace(pr, opts.seed())
		if err != nil {
			return res, Table{}, err
		}
		hist := tr.MinStageHistogram()
		var frac [dataset.StageCount]float64
		row := []string{pr.Name}
		for i, c := range hist {
			frac[i] = float64(c) / float64(tr.N())
			row = append(row, fmtF(frac[i], 3))
		}
		res.Datasets = append(res.Datasets, pr.Name)
		res.Hist[pr.Name] = frac
		res.Benefiting[pr.Name] = tr.FractionBenefiting()
		row = append(row, fmtF(res.Benefiting[pr.Name], 3))
		t.AddRow(row...)
	}
	return res, t, nil
}

// Fig1cResult summarizes the offloading-efficiency distribution.
type Fig1cResult struct {
	FractionZero float64
	// PercentileMBps maps percentile (e.g. 50) to efficiency in MB saved
	// per CPU-second, over the whole dataset (zeros included).
	PercentileMBps map[int]float64
}

// Figure1c computes the distribution of offloading efficiency (size
// reduction per CPU-second) across the OpenImages profile.
func Figure1c(opts Options) (Fig1cResult, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return Fig1cResult{}, Table{}, err
	}
	cands := policy.Candidates(tr)
	effs := make([]float64, len(cands))
	zero := 0
	for i, c := range cands {
		effs[i] = c.Efficiency
		if c.Efficiency == 0 {
			zero++
		}
	}
	sort.Float64s(effs)
	res := Fig1cResult{
		FractionZero:   float64(zero) / float64(len(effs)),
		PercentileMBps: map[int]float64{},
	}
	t := Table{
		Title:   "Figure 1c: offloading efficiency distribution, OpenImages (MB saved per CPU-second)",
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("fraction at zero", fmtF(res.FractionZero, 3))
	for _, pct := range []int{25, 50, 75, 90, 99} {
		idx := pct * (len(effs) - 1) / 100
		v := effs[idx] / 1e6
		res.PercentileMBps[pct] = v
		t.AddRow(fmt.Sprintf("p%d", pct), fmtF(v, 2))
	}
	return res, t, nil
}

// Fig1dResult maps model name to GPU utilization under the constrained
// link.
type Fig1dResult struct {
	Utilization map[string]float64
}

// Figure1d simulates a no-offloading epoch per model profile and reports
// GPU utilization.
func Figure1d(opts Options) (Fig1dResult, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return Fig1dResult{}, Table{}, err
	}
	plan, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
	if err != nil {
		return Fig1dResult{}, Table{}, err
	}
	res := Fig1dResult{Utilization: map[string]float64{}}
	t := Table{
		Title:   "Figure 1d: GPU utilization under a 500 Mbps link (no offloading)",
		Columns: []string{"Model", "GPU util", "Fetch-idle"},
	}
	for _, m := range gpu.Models() {
		env := DefaultEnv(0)
		env.GPU = m
		r, err := engine.Run(engine.Config{Trace: tr, Plan: plan, Env: env})
		if err != nil {
			return Fig1dResult{}, Table{}, err
		}
		res.Utilization[m.Name] = r.GPUUtilization
		t.AddRow(m.Name, fmtF(r.GPUUtilization, 3), fmtF(1-r.GPUUtilization, 3))
	}
	return res, t, nil
}

func profileOI(opts Options) dataset.Profile {
	p := dataset.OpenImages12G()
	if opts.OpenImages > 0 {
		p = p.ScaledTo(opts.OpenImages)
	}
	return p
}

func profileIN(opts Options) dataset.Profile {
	p := dataset.ImageNet11G()
	if opts.ImageNet > 0 {
		p = p.ScaledTo(opts.ImageNet)
	}
	return p
}
