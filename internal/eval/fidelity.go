package eval

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profiler"
)

// FidelityResult checks the model tier against the real tier: records
// measured by running the real codec and real ops must obey exactly the
// wire-size law the trace generator assumes, and their offload structure
// (which stage is minimal) must follow from raw size vs crop-artifact size
// the same way.
type FidelityResult struct {
	Samples          int
	LawViolations    int     // measured stage sizes that break the artifact size law
	MinStageMismatch int     // samples whose min stage isn't argmin(raw, decode, crop)
	Benefiting       float64 // fraction with min stage > 0 in the real tier
}

// ValidateGenerator renders n real synthetic photos, measures them through
// the real pipeline (profiler stage 2), and audits every record against the
// model tier's assumptions. DESIGN.md's substitution argument rests on this
// correspondence.
func ValidateGenerator(n int, seed uint64) (FidelityResult, Table, error) {
	if n <= 0 {
		n = 96
	}
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "fidelity", N: n, Seed: seed, MinDim: 64, MaxDim: 420,
	})
	if err != nil {
		return FidelityResult{}, Table{}, err
	}
	const crop = 128
	p := pipeline.Standard(pipeline.StandardOptions{CropSize: crop, FlipP: -1})
	collector, err := profiler.NewCollector(n)
	if err != nil {
		return FidelityResult{}, Table{}, err
	}
	for i := 0; i < n; i++ {
		raw, err := set.Raw(i)
		if err != nil {
			return FidelityResult{}, Table{}, err
		}
		meta, err := set.Meta(i)
		if err != nil {
			return FidelityResult{}, Table{}, err
		}
		_, st, err := p.Trace(raw, pipeline.Seed{Job: seed, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			return FidelityResult{}, Table{}, err
		}
		if err := collector.Observe(uint32(i), st, meta.W, meta.H); err != nil {
			return FidelityResult{}, Table{}, err
		}
	}
	tr, err := collector.Trace("fidelity")
	if err != nil {
		return FidelityResult{}, Table{}, err
	}

	res := FidelityResult{Samples: n, Benefiting: tr.FractionBenefiting()}
	cropWire := int64(pipeline.ImageWireSize(crop, crop))
	tensorWire := int64(pipeline.TensorWireSize(3, crop, crop))
	for i := range tr.Records {
		r := &tr.Records[i]
		// The artifact size law the trace generator assumes.
		if r.StageSizes[0] != int64(pipeline.RawWireSize(int(r.RawSize))) ||
			r.StageSizes[1] != int64(pipeline.ImageWireSize(r.Width, r.Height)) ||
			r.StageSizes[2] != cropWire || r.StageSizes[3] != cropWire ||
			r.StageSizes[4] != tensorWire || r.StageSizes[5] != tensorWire {
			res.LawViolations++
		}
		// Min stage must be the argmin over {raw, decode, crop} (tensor
		// stages are always the largest).
		want := 0
		if r.StageSizes[1] < r.StageSizes[want] {
			want = 1
		}
		if cropWire < r.StageSizes[want] {
			want = 2
		}
		if r.MinStage() != want {
			res.MinStageMismatch++
		}
	}
	t := Table{
		Title:   "Fidelity: real-tier measurements vs the model tier's assumptions",
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("samples measured (real codec + real ops)", fmt.Sprintf("%d", res.Samples))
	t.AddRow("artifact size-law violations", fmt.Sprintf("%d", res.LawViolations))
	t.AddRow("min-stage mismatches", fmt.Sprintf("%d", res.MinStageMismatch))
	t.AddRow("benefiting fraction (real tier)", fmtF(res.Benefiting, 3))
	t.Notes = append(t.Notes,
		"zero violations ⇒ the statistical trace generator and the real pipeline share one size law")
	return res, t, nil
}
