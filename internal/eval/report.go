package eval

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// NamedTable pairs a table with a file-name-safe slug.
type NamedTable struct {
	Slug  string
	Table Table
}

// Collect runs every experiment and returns the rendered tables in report
// order.
func Collect(opts Options) ([]NamedTable, error) {
	type step struct {
		slug string
		run  func() (Table, error)
	}
	steps := []step{
		{"table1_capabilities", func() (Table, error) { return Table1(), nil }},
		{"figure1a_size_trace", func() (Table, error) { _, t, err := Figure1a(opts); return t, err }},
		{"figure1b_min_stage", func() (Table, error) { _, t, err := Figure1b(opts); return t, err }},
		{"figure1c_efficiency", func() (Table, error) { _, t, err := Figure1c(opts); return t, err }},
		{"figure1d_gpu_util", func() (Table, error) { _, t, err := Figure1d(opts); return t, err }},
		{"figure3_ample_cpu", func() (Table, error) { _, t, err := Figure3(opts); return t, err }},
		{"figure4_limited_cpu", func() (Table, error) { _, t, err := Figure4(opts); return t, err }},
		{"headline", func() (Table, error) { _, t, err := Headline(opts); return t, err }},
		{"ablation_a_step_guard", func() (Table, error) { _, t, err := AblationStepGuard(opts); return t, err }},
		{"ablation_b_compression", func() (Table, error) { _, t, err := AblationCompression(opts); return t, err }},
		{"ablation_c_heterogeneous", func() (Table, error) { _, t, err := AblationHeterogeneous(opts); return t, err }},
		{"ablation_d_multitenant", func() (Table, error) { _, t, err := AblationMultiTenant(opts); return t, err }},
		{"ablation_e_local_cache", func() (Table, error) { _, t, err := AblationLocalCache(opts); return t, err }},
		{"ablation_h_oracle", func() (Table, error) { _, t, err := AblationOracle(opts); return t, err }},
		{"validation_model_vs_des", func() (Table, error) { _, t, err := ValidateModel(opts); return t, err }},
		{"validation_generator_fidelity", func() (Table, error) { _, t, err := ValidateGenerator(96, opts.seed()); return t, err }},
		{"discussion_f_bandwidth", func() (Table, error) { _, t, err := DiscussionBandwidthSweep(opts); return t, err }},
		{"discussion_g_llm", func() (Table, error) { _, t, err := DiscussionLLM(opts); return t, err }},
	}
	out := make([]NamedTable, 0, len(steps))
	for _, s := range steps {
		t, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", s.slug, err)
		}
		out = append(out, NamedTable{Slug: s.slug, Table: t})
	}
	return out, nil
}

// RunAll executes every experiment and writes the rendered tables to w —
// the full paper reproduction in one call.
func RunAll(opts Options, w io.Writer) error {
	tables, err := Collect(opts)
	if err != nil {
		return err
	}
	for _, nt := range tables {
		if _, err := fmt.Fprintln(w, nt.Table.String()); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells containing
// commas or quotes), one header row plus data rows. Notes are omitted.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSVDir runs every experiment and writes one CSV file per table into
// dir (created if needed) — plot-ready data for external tooling.
func WriteCSVDir(opts Options, dir string) error {
	tables, err := Collect(opts)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eval: mkdir: %w", err)
	}
	for _, nt := range tables {
		path := filepath.Join(dir, nt.Slug+".csv")
		if err := os.WriteFile(path, []byte(nt.Table.CSV()), 0o644); err != nil {
			return fmt.Errorf("eval: write %s: %w", path, err)
		}
	}
	return nil
}
