// Package eval is the experiment harness: one constructor per table and
// figure in the paper's evaluation, each returning structured numbers plus
// a rendered text table. cmd/sophon-bench and the repository's bench_test.go
// both drive this package, and EXPERIMENTS.md records its output.
package eval

import (
	"fmt"
	"strings"

	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// DefaultEnv mirrors the paper's testbed: a 500 Mbps link, 48 compute
// cores, identical CPUs, AlexNet as the trained model.
func DefaultEnv(storageCores int) policy.Env {
	return policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    storageCores,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

// Options scales the experiments. Zero values mean paper-scale datasets.
type Options struct {
	Seed       uint64
	OpenImages int // sample-count override for the OpenImages-12G profile
	ImageNet   int // sample-count override for the ImageNet-11G profile
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 2024
	}
	return o.Seed
}

func gb(bytes int64) float64 { return float64(bytes) / 1e9 }

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
