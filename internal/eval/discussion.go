package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// The paper's §5 Discussion makes two falsifiable claims beyond the main
// evaluation: (F) SOPHON matters exactly when remote I/O is the bottleneck —
// faster links or fewer GPUs per link move the crossover; (G) LLM shard
// workloads offer no offloading opportunity and SOPHON must degenerate to
// the baseline. These experiments check both.

// DiscussionFRow is one (bandwidth, GPU count) point.
type DiscussionFRow struct {
	GbpsLink     float64
	GPUs         int
	Dominant     string
	Activated    bool
	NoOffSeconds float64
	SophonSecond float64
}

// DiscussionBandwidthSweep sweeps the link speed for 1- and 8-GPU compute
// nodes training ResNet50 on the ImageNet profile: offloading activates
// below the I/O crossover and correctly stays off above it.
func DiscussionBandwidthSweep(opts Options) ([]DiscussionFRow, Table, error) {
	tr, err := dataset.GenerateTrace(profileIN(opts), opts.seed())
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:   "Discussion F: when does remote I/O bottleneck? (ImageNet, ResNet50, 48 storage cores)",
		Columns: []string{"Link", "GPUs", "Dominant", "Offload", "No-Off (s)", "SOPHON (s)"},
	}
	var rows []DiscussionFRow
	framework := core.New()
	for _, gpus := range []int{1, 8} {
		for _, gbps := range []float64{0.1, 0.25, 0.5, 1, 2, 4} {
			env := DefaultEnv(48)
			env.Bandwidth = netsim.Mbps(gbps * 1000)
			env.GPU = gpu.ResNet50
			env.GPUCount = gpus
			d, err := framework.Decide(tr, env)
			if err != nil {
				return nil, Table{}, err
			}
			noOffPlan, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
			if err != nil {
				return nil, Table{}, err
			}
			noOff, err := engine.Run(engine.Config{Trace: tr, Plan: noOffPlan, Env: env, BatchSize: 256})
			if err != nil {
				return nil, Table{}, err
			}
			sophon, err := engine.Run(engine.Config{Trace: tr, Plan: d.Plan, Env: env, BatchSize: 256})
			if err != nil {
				return nil, Table{}, err
			}
			row := DiscussionFRow{
				GbpsLink:     gbps,
				GPUs:         gpus,
				Dominant:     d.Baseline.Dominant(),
				Activated:    d.Activated,
				NoOffSeconds: noOff.EpochTime.Seconds(),
				SophonSecond: sophon.EpochTime.Seconds(),
			}
			rows = append(rows, row)
			t.AddRow(fmtF(gbps, 2)+" Gbps", fmt.Sprintf("%d", gpus), row.Dominant,
				fmt.Sprintf("%v", row.Activated),
				fmtF(row.NoOffSeconds, 1), fmtF(row.SophonSecond, 1))
		}
	}
	return rows, t, nil
}

// DiscussionLLMResult captures the LLM-workload sanity check.
type DiscussionLLMResult struct {
	Candidates    int
	Offloaded     int
	NoOffSeconds  float64
	SophonSeconds float64
}

// DiscussionLLM runs SOPHON over an LLM shard trace: no sample shrinks
// during preprocessing, so the engine finds zero candidates and the plan is
// exactly No-Off — the paper's "scenarios where SOPHON might not work".
func DiscussionLLM(opts Options) (DiscussionLLMResult, Table, error) {
	tr, err := dataset.GenerateTextTrace(dataset.TextShards1G(), opts.seed())
	if err != nil {
		return DiscussionLLMResult{}, Table{}, err
	}
	env := DefaultEnv(48)
	cands := policy.Candidates(tr)
	beneficial := 0
	for _, c := range cands {
		if c.Saving > 0 {
			beneficial++
		}
	}
	plan, err := policy.NewSophon().Plan(tr, env)
	if err != nil {
		return DiscussionLLMResult{}, Table{}, err
	}
	noOffPlan, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
	if err != nil {
		return DiscussionLLMResult{}, Table{}, err
	}
	noOff, err := engine.Run(engine.Config{Trace: tr, Plan: noOffPlan, Env: env, BatchSize: 64})
	if err != nil {
		return DiscussionLLMResult{}, Table{}, err
	}
	sophon, err := engine.Run(engine.Config{Trace: tr, Plan: plan, Env: env, BatchSize: 64})
	if err != nil {
		return DiscussionLLMResult{}, Table{}, err
	}
	res := DiscussionLLMResult{
		Candidates:    beneficial,
		Offloaded:     plan.OffloadedCount(),
		NoOffSeconds:  noOff.EpochTime.Seconds(),
		SophonSeconds: sophon.EpochTime.Seconds(),
	}
	t := Table{
		Title:   "Discussion G: LLM token-shard workload (no shrinking stages)",
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("beneficial candidates", fmt.Sprintf("%d", res.Candidates))
	t.AddRow("samples offloaded", fmt.Sprintf("%d", res.Offloaded))
	t.AddRow("No-Off epoch (s)", fmtF(res.NoOffSeconds, 1))
	t.AddRow("SOPHON epoch (s)", fmtF(res.SophonSeconds, 1))
	t.Notes = append(t.Notes, "SOPHON degenerates to No-Off exactly as §5 predicts")
	return res, t, nil
}
