package eval

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/policy"
)

// ValidationRow compares SOPHON's analytic epoch model (the max of the four
// metrics the decision engine reasons with) against the discrete-event
// simulation of the same plan.
type ValidationRow struct {
	Scenario     string
	PredictedSec float64
	SimulatedSec float64
	ErrorPct     float64
}

// ValidateModel runs the comparison across the policies and core counts the
// evaluation uses. Small errors justify the paper's use of the max() model
// inside the greedy loop.
func ValidateModel(opts Options) ([]ValidationRow, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:   "Validation: analytic epoch model vs discrete-event simulation (OpenImages)",
		Columns: []string{"Scenario", "Model (s)", "DES (s)", "Error"},
	}
	var rows []ValidationRow
	add := func(name string, p policy.Policy, cores int) error {
		env := DefaultEnv(cores)
		plan, err := p.Plan(tr, env)
		if err != nil {
			return err
		}
		m, err := policy.ModelFor(tr, plan, env)
		if err != nil {
			return err
		}
		sim, err := engine.Run(engine.Config{Trace: tr, Plan: plan, Env: env, BatchSize: 256})
		if err != nil {
			return err
		}
		row := ValidationRow{
			Scenario:     fmt.Sprintf("%s @%dc", name, cores),
			PredictedSec: m.Predicted().Seconds(),
			SimulatedSec: sim.EpochTime.Seconds(),
		}
		row.ErrorPct = 100 * math.Abs(row.PredictedSec-row.SimulatedSec) / row.SimulatedSec
		rows = append(rows, row)
		t.AddRow(row.Scenario, fmtF(row.PredictedSec, 1), fmtF(row.SimulatedSec, 1),
			fmtF(row.ErrorPct, 1)+"%")
		return nil
	}
	for _, p := range policy.All() {
		if err := add(p.Name(), p, 48); err != nil {
			return nil, Table{}, err
		}
	}
	for _, cores := range []int{1, 2, 4} {
		if err := add("SOPHON", policy.NewSophon(), cores); err != nil {
			return nil, Table{}, err
		}
	}
	return rows, t, nil
}

// AblationOracleRow compares SOPHON against the CPU-oblivious traffic
// lower bound at one core count.
type AblationOracleRow struct {
	Cores         int
	OracleSec     float64
	SophonSec     float64
	OracleTraffic float64 // GB
	SophonTraffic float64 // GB
}

// AblationOracle runs Ablation H: how close does the efficiency-ordered
// greedy loop get to the per-sample optimum? With ample cores they should
// coincide; under CPU constraints Oracle's traffic optimum backfires.
func AblationOracle(opts Options) ([]AblationOracleRow, Table, error) {
	tr, err := dataset.GenerateTrace(profileOI(opts), opts.seed())
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:   "Ablation H: SOPHON vs the CPU-oblivious Oracle (OpenImages)",
		Columns: []string{"Cores", "Oracle (s)", "SOPHON (s)", "Oracle GB", "SOPHON GB"},
	}
	var rows []AblationOracleRow
	for _, cores := range []int{1, 2, 4, 48} {
		env := DefaultEnv(cores)
		oracle, _, err := engine.RunPolicy(policy.Oracle{}, tr, env, 256)
		if err != nil {
			return nil, Table{}, err
		}
		sophon, _, err := engine.RunPolicy(policy.NewSophon(), tr, env, 256)
		if err != nil {
			return nil, Table{}, err
		}
		row := AblationOracleRow{
			Cores:         cores,
			OracleSec:     oracle.EpochTime.Seconds(),
			SophonSec:     sophon.EpochTime.Seconds(),
			OracleTraffic: gb(oracle.TrafficBytes),
			SophonTraffic: gb(sophon.TrafficBytes),
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%d", cores),
			fmtF(row.OracleSec, 1), fmtF(row.SophonSec, 1),
			fmtF(row.OracleTraffic, 2), fmtF(row.SophonTraffic, 2))
	}
	t.Notes = append(t.Notes,
		"Oracle minimizes traffic unconditionally; with few cores its storage-CPU bill dominates")
	return rows, t, nil
}
