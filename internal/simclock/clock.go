// Package simclock provides a clock abstraction with two implementations: a
// wall clock backed by package time, and a deterministic virtual clock that
// only advances when told to. The virtual clock lets the discrete-event
// engine and the live trainer share timing code while keeping benchmarks
// fast and reproducible.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// Sleep blocks the caller for d. On the virtual clock, Sleep returns
	// once the clock has been advanced past the deadline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real returns a Clock backed by the system wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a deterministic, manually advanced clock. Goroutines blocked in
// Sleep or waiting on After channels are released in timestamp order as the
// clock advances. The zero value is not usable; call NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

type waiter struct {
	at  time.Time
	seq int64
	ch  chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now returns the virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep blocks until the virtual clock reaches Now()+d. A non-positive d
// returns immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel that fires when the clock passes Now()+d. The
// channel is buffered so Advance never blocks on delivery.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{at: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Advance moves the clock forward by d, releasing every waiter whose
// deadline falls within the advanced window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	target := v.now.Add(d)
	for v.waiters.Len() > 0 && !v.waiters[0].at.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.at
		w.ch <- v.now
	}
	v.now = target
	v.mu.Unlock()
}

// AdvanceToNext advances the clock to the earliest pending waiter, releasing
// it, and reports whether a waiter existed.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.Lock()
	if v.waiters.Len() == 0 {
		v.mu.Unlock()
		return false
	}
	w := heap.Pop(&v.waiters).(*waiter)
	v.now = w.at
	w.ch <- v.now
	v.mu.Unlock()
	return true
}

// PendingWaiters reports how many sleepers are currently queued.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}
