package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2024, 7, 8, 0, 0, 0, 0, time.UTC)

func TestRealClockNow(t *testing.T) {
	c := Real()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("real After never fired")
	}
}

func TestVirtualNowStationary(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now = %v, want %v", got, epoch)
	}
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now moved without Advance: %v", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(3 * time.Second)
	if got, want := v.Now(), epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
	v.Advance(-time.Second) // negative is a no-op
	if got, want := v.Now(), epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("negative Advance moved clock: %v", got)
	}
}

func TestVirtualAfterOrdering(t *testing.T) {
	v := NewVirtual(epoch)
	c2 := v.After(2 * time.Second)
	c1 := v.After(1 * time.Second)
	v.Advance(5 * time.Second)
	t1 := <-c1
	t2 := <-c2
	if !t1.Equal(epoch.Add(1 * time.Second)) {
		t.Fatalf("first waiter fired at %v", t1)
	}
	if !t2.Equal(epoch.Add(2 * time.Second)) {
		t.Fatalf("second waiter fired at %v", t2)
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case tm := <-v.After(0):
		if !tm.Equal(epoch) {
			t.Fatalf("immediate waiter got %v", tm)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualSleepReleasedByAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	v.Advance(10 * time.Second)
	wg.Wait()
	<-done
}

func TestVirtualSleepZero(t *testing.T) {
	v := NewVirtual(epoch)
	start := time.Now()
	v.Sleep(0)
	v.Sleep(-time.Hour)
	if time.Since(start) > time.Second {
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestVirtualAdvanceToNext(t *testing.T) {
	v := NewVirtual(epoch)
	if v.AdvanceToNext() {
		t.Fatal("AdvanceToNext reported waiter on empty clock")
	}
	ch := v.After(7 * time.Second)
	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext missed pending waiter")
	}
	tm := <-ch
	if !tm.Equal(epoch.Add(7 * time.Second)) {
		t.Fatalf("waiter fired at %v", tm)
	}
	if !v.Now().Equal(epoch.Add(7 * time.Second)) {
		t.Fatalf("clock at %v after AdvanceToNext", v.Now())
	}
}

func TestVirtualTieBreakFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	a := v.After(time.Second)
	b := v.After(time.Second)
	v.Advance(time.Second)
	// After channels are buffered, so both deliveries happened inside
	// Advance — in registration order, by the heap's sequence tie-break —
	// and the values are already waiting. No goroutines, no sleeps.
	want := epoch.Add(time.Second)
	select {
	case ta := <-a:
		if !ta.Equal(want) {
			t.Fatalf("waiter a fired at %v, want %v", ta, want)
		}
	default:
		t.Fatal("tied waiter a not released by Advance")
	}
	select {
	case tb := <-b:
		if !tb.Equal(want) {
			t.Fatalf("waiter b fired at %v, want %v", tb, want)
		}
	default:
		t.Fatal("tied waiter b not released by Advance")
	}
}

func TestVirtualManyWaitersStress(t *testing.T) {
	v := NewVirtual(epoch)
	const n = 500
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(i%50+1) * time.Millisecond
		go func() {
			defer wg.Done()
			v.Sleep(d)
		}()
	}
	for v.PendingWaiters() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	wg.Wait()
	if v.PendingWaiters() != 0 {
		t.Fatalf("%d waiters left after Advance", v.PendingWaiters())
	}
}
