package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/imaging"
	"repro/internal/tensor"
)

// encodeSample builds SJPG bytes for a synthetic image.
func encodeSample(t testing.TB, w, h int, detail float64, seed uint64) []byte {
	t.Helper()
	im, err := imaging.Synthesize(imaging.SynthParams{W: w, H: h, Detail: detail, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := imaging.EncodeDefault(im)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestArtifactEncodeDecodeRaw(t *testing.T) {
	a := RawArtifact([]byte{1, 2, 3})
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != a.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(enc), a.WireSize())
	}
	got, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatal("raw artifact round trip mismatch")
	}
}

func TestArtifactEncodeDecodeImage(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 13, H: 7, Detail: 0.5, Seed: 1})
	a := ImageArtifact(im)
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != a.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(enc), a.WireSize())
	}
	got, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatal("image artifact round trip mismatch")
	}
}

func TestArtifactEncodeDecodeTensor(t *testing.T) {
	tt, _ := tensor.New(3, 4, 5)
	tt.Set(1, 2, 3, -2.5)
	a := TensorArtifact(tt)
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != a.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(enc), a.WireSize())
	}
	got, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatal("tensor artifact round trip mismatch")
	}
}

func TestDecodeArtifactRejectsCorrupt(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 4, H: 4, Detail: 0, Seed: 1})
	good, _ := ImageArtifact(im).Encode()
	cases := map[string][]byte{
		"empty":           {},
		"unknown kind":    {99, 0, 0},
		"short image":     good[:5],
		"truncated image": good[:len(good)-1],
		"zero image dims": func() []byte {
			d := append([]byte(nil), good...)
			for i := 1; i < 9; i++ {
				d[i] = 0
			}
			return d
		}(),
		"bad tensor": {byte(KindTensor), 1, 2, 3},
	}
	for name, c := range cases {
		if _, err := DecodeArtifact(c); err == nil {
			t.Errorf("DecodeArtifact accepted %s", name)
		}
	}
}

func TestArtifactEqualAcrossKinds(t *testing.T) {
	if RawArtifact([]byte{1}).Equal(ImageArtifact(imaging.MustNew(1, 1))) {
		t.Fatal("different kinds reported equal")
	}
	if !RawArtifact(nil).Equal(RawArtifact([]byte{})) {
		t.Fatal("empty raw artifacts should be equal")
	}
}

func TestNewValidatesChaining(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := New(toTensorOp{}); err == nil {
		t.Fatal("pipeline starting with image-consumer accepted")
	}
	if _, err := New(decodeOp{}, decodeOp{}); err == nil {
		t.Fatal("kind-mismatched chain accepted")
	}
	if _, err := New(decodeOp{}, toTensorOp{}, normalizeOp{Mean: tensor.ImageNetMean, Std: tensor.ImageNetStd}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestStandardPipelineShape(t *testing.T) {
	p := DefaultStandard()
	if p.Len() != 5 {
		t.Fatalf("standard pipeline has %d ops", p.Len())
	}
	want := []OpID{OpDecode, OpRandomResizedCrop, OpRandomHorizontalFlip, OpToTensor, OpNormalize}
	got := p.OpIDs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunProducesNormalizedTensor(t *testing.T) {
	raw := encodeSample(t, 300, 200, 0.4, 7)
	p := DefaultStandard()
	out, err := p.Run(raw, Seed{Job: 1, Epoch: 1, Sample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindTensor {
		t.Fatalf("output kind %s", out.Kind)
	}
	tt := out.Tensor
	if tt.C != 3 || tt.H != 224 || tt.W != 224 {
		t.Fatalf("tensor shape %dx%dx%d", tt.C, tt.H, tt.W)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	raw := encodeSample(t, 120, 90, 0.5, 8)
	p := DefaultStandard()
	s := Seed{Job: 2, Epoch: 3, Sample: 4}
	a, err := p.Run(raw, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(raw, s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different outputs")
	}
	c, err := p.Run(raw, Seed{Job: 2, Epoch: 4, Sample: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different epochs produced identical augmentations")
	}
}

func TestRunRangeValidatesSplit(t *testing.T) {
	p := DefaultStandard()
	a := RawArtifact([]byte{1})
	for _, bad := range [][2]int{{-1, 2}, {0, 6}, {3, 2}} {
		if _, err := p.RunRange(a, bad[0], bad[1], Seed{}); err == nil {
			t.Errorf("RunRange accepted [%d, %d)", bad[0], bad[1])
		}
	}
	same, err := p.RunRange(a, 2, 2, Seed{})
	if err != nil || !same.Equal(a) {
		t.Fatalf("empty range should be identity: %v", err)
	}
}

// TestSplitEquivalence is invariant #1 from DESIGN.md: for every split point
// k, prefix-then-suffix equals a full local run, including an artifact
// encode/decode across the "network" boundary.
func TestSplitEquivalence(t *testing.T) {
	raw := encodeSample(t, 260, 180, 0.6, 9)
	p := DefaultStandard()
	seed := Seed{Job: 11, Epoch: 2, Sample: 33}
	want, err := p.Run(raw, seed)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= p.Len(); k++ {
		remote, err := p.RunRange(RawArtifact(raw), 0, k, seed)
		if err != nil {
			t.Fatalf("split %d prefix: %v", k, err)
		}
		wire, err := remote.Encode()
		if err != nil {
			t.Fatalf("split %d encode: %v", k, err)
		}
		arrived, err := DecodeArtifact(wire)
		if err != nil {
			t.Fatalf("split %d decode: %v", k, err)
		}
		got, err := p.RunRange(arrived, k, p.Len(), seed)
		if err != nil {
			t.Fatalf("split %d suffix: %v", k, err)
		}
		if !got.Equal(want) {
			t.Fatalf("split %d output differs from local run", k)
		}
	}
}

// Property: split equivalence holds for arbitrary images, seeds, and splits.
func TestSplitEquivalenceProperty(t *testing.T) {
	p := DefaultStandard()
	f := func(w8, h8 uint8, imgSeed, job, epoch, sample uint64, k8 uint8) bool {
		w := int(w8%200) + 30
		h := int(h8%200) + 30
		im, err := imaging.Synthesize(imaging.SynthParams{W: w, H: h, Detail: 0.5, Seed: imgSeed})
		if err != nil {
			return false
		}
		raw, err := imaging.EncodeDefault(im)
		if err != nil {
			return false
		}
		seed := Seed{Job: job, Epoch: epoch, Sample: sample}
		k := int(k8) % (p.Len() + 1)
		want, err := p.Run(raw, seed)
		if err != nil {
			return false
		}
		prefix, err := p.RunRange(RawArtifact(raw), 0, k, seed)
		if err != nil {
			return false
		}
		enc, err := prefix.Encode()
		if err != nil {
			return false
		}
		dec, err := DecodeArtifact(enc)
		if err != nil {
			return false
		}
		got, err := p.RunRange(dec, k, p.Len(), seed)
		return err == nil && got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSizesMatchPaperShape(t *testing.T) {
	// A large detailed image: raw > 224-crop stage, tensor stage ~4x the
	// cropped image stage (Findings #1 and #2).
	raw := encodeSample(t, 900, 700, 0.9, 10)
	p := DefaultStandard()
	out, trace, err := p.Trace(raw, Seed{Job: 1, Epoch: 1, Sample: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindTensor {
		t.Fatalf("trace output kind %s", out.Kind)
	}
	if len(trace.Sizes) != 6 || len(trace.OpTimes) != 5 {
		t.Fatalf("trace lengths %d/%d", len(trace.Sizes), len(trace.OpTimes))
	}
	if trace.Sizes[0] != len(raw)+1 {
		t.Fatalf("stage 0 size %d, want %d", trace.Sizes[0], len(raw)+1)
	}
	// Stage 2 (after RandomResizedCrop) is the 224×224 image.
	want224 := 1 + 8 + 3*224*224
	if trace.Sizes[2] != want224 {
		t.Fatalf("stage 2 size %d, want %d", trace.Sizes[2], want224)
	}
	if trace.Sizes[3] != want224 {
		t.Fatalf("stage 3 (flip) size %d, want %d", trace.Sizes[3], want224)
	}
	ratio := float64(trace.Sizes[4]) / float64(trace.Sizes[3])
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("ToTensor inflation %.2fx, want ~4x", ratio)
	}
	if trace.Sizes[5] != trace.Sizes[4] {
		t.Fatal("Normalize changed wire size")
	}
	// Decode inflates a compressed raw image.
	if trace.Sizes[1] <= trace.Sizes[0] {
		t.Fatalf("decode did not inflate: %d -> %d", trace.Sizes[0], trace.Sizes[1])
	}
}

func TestTraceMinStage(t *testing.T) {
	big := StageTrace{Sizes: []int{500000, 900000, 150000, 150000, 600000, 600000}}
	if got := big.MinStage(); got != 2 {
		t.Fatalf("MinStage = %d, want 2 (earliest min)", got)
	}
	small := StageTrace{Sizes: []int{80000, 900000, 150000, 150000, 600000, 600000}}
	if got := small.MinStage(); got != 0 {
		t.Fatalf("MinStage = %d, want 0", got)
	}
}

func TestSeedForOpIndependence(t *testing.T) {
	s := Seed{Job: 1, Epoch: 2, Sample: 3}
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		v := s.ForOp(i)
		if seen[v] {
			t.Fatalf("op %d reuses another op's stream seed", i)
		}
		seen[v] = true
	}
	if s.ForOp(0) != s.ForOp(0) {
		t.Fatal("ForOp not deterministic")
	}
	if (Seed{Job: 1, Epoch: 2, Sample: 4}).ForOp(0) == s.ForOp(0) {
		t.Fatal("different samples share op seed")
	}
}

func TestRandomResizedCropFallbackOnTinyImages(t *testing.T) {
	p := DefaultStandard()
	// 1×1 image: every sampled crop fails, fallback must still work.
	im := imaging.MustNew(1, 1)
	raw, err := imaging.Encode(im, 90)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(raw, Seed{Job: 5, Epoch: 1, Sample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tensor.H != 224 || out.Tensor.W != 224 {
		t.Fatalf("tiny image produced %dx%d tensor", out.Tensor.H, out.Tensor.W)
	}
}

func TestExtremeAspectRatioFallback(t *testing.T) {
	p := DefaultStandard()
	for _, dims := range [][2]int{{400, 10}, {10, 400}} {
		im, _ := imaging.Synthesize(imaging.SynthParams{W: dims[0], H: dims[1], Detail: 0.3, Seed: 3})
		raw, err := imaging.EncodeDefault(im)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(raw, Seed{Job: 6, Epoch: 1, Sample: 1}); err != nil {
			t.Fatalf("aspect %v failed: %v", dims, err)
		}
	}
}

func TestOpsRejectWrongKinds(t *testing.T) {
	rngSeed := Seed{Job: 1, Epoch: 1, Sample: 1}
	p := DefaultStandard()
	// Feed a tensor artifact to the image-stage suffix.
	tt, _ := tensor.New(3, 2, 2)
	if _, err := p.RunRange(TensorArtifact(tt), 1, 3, rngSeed); err == nil {
		t.Fatal("image ops accepted tensor input")
	}
	if _, err := p.RunRange(RawArtifact([]byte{1, 2}), 4, 5, rngSeed); err == nil {
		t.Fatal("normalize accepted raw input")
	}
}

func TestFlipProbabilityZeroAndOne(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 30, H: 20, Detail: 0.6, Seed: 12})
	never := randomHorizontalFlipOp{P: 0}
	always := randomHorizontalFlipOp{P: 1}
	seed := Seed{Job: 9, Epoch: 9, Sample: 9}
	// Apply consumes (and may mutate) its input, so each call gets a clone
	// and im stays pristine for the comparisons.
	a, err := never.Apply(ImageArtifact(im.Clone()), rngFor(seed, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Image.Equal(im) {
		t.Fatal("P=0 flipped the image")
	}
	b, err := always.Apply(ImageArtifact(im.Clone()), rngFor(seed, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Image.Equal(imaging.FlipHorizontal(im)) {
		t.Fatal("P=1 did not flip the image")
	}
}

func TestOpIDStrings(t *testing.T) {
	for id, want := range map[OpID]string{
		OpDecode:               "Decode",
		OpRandomResizedCrop:    "RandomResizedCrop",
		OpRandomHorizontalFlip: "RandomHorizontalFlip",
		OpToTensor:             "ToTensor",
		OpNormalize:            "Normalize",
		OpID(77):               "Op(77)",
	} {
		if id.String() != want {
			t.Errorf("OpID(%d).String() = %q", id, id.String())
		}
	}
	for k, want := range map[Kind]string{KindRaw: "raw", KindImage: "image", KindTensor: "tensor", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}
