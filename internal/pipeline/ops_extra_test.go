package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

func TestValidationPipelineShape(t *testing.T) {
	p, err := Validation(256, 224)
	if err != nil {
		t.Fatal(err)
	}
	want := []OpID{OpDecode, OpResizeShorter, OpCenterCrop, OpToTensor, OpNormalize}
	got := p.OpIDs()
	if len(got) != len(want) {
		t.Fatalf("%d ops", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %s", i, got[i])
		}
	}
	if _, err := Validation(224, 256); err == nil {
		t.Fatal("accepted crop > resize")
	}
	// Defaults.
	if p, err := Validation(0, 0); err != nil || p.Len() != 5 {
		t.Fatalf("defaults: %v", err)
	}
}

func TestValidationPipelineDeterministicOutput(t *testing.T) {
	raw := encodeSample(t, 400, 300, 0.5, 41)
	p, err := Validation(128, 112)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(raw, Seed{Job: 1, Epoch: 1, Sample: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Validation pipelines have no randomness: different seeds agree.
	b, err := p.Run(raw, Seed{Job: 9, Epoch: 9, Sample: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("validation pipeline output depends on the seed")
	}
	if a.Tensor.H != 112 || a.Tensor.W != 112 {
		t.Fatalf("tensor %dx%d", a.Tensor.H, a.Tensor.W)
	}
}

func TestResizeShorterPreservesAspect(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 400, H: 200, Detail: 0.4, Seed: 2})
	out, err := resizeShorterOp{Size: 100}.Apply(ImageArtifact(im), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Image.H != 100 || out.Image.W != 200 {
		t.Fatalf("landscape resized to %dx%d", out.Image.W, out.Image.H)
	}
	tall, _ := imaging.Synthesize(imaging.SynthParams{W: 150, H: 450, Detail: 0.4, Seed: 3})
	out, err = resizeShorterOp{Size: 50}.Apply(ImageArtifact(tall), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Image.W != 50 || out.Image.H != 150 {
		t.Fatalf("portrait resized to %dx%d", out.Image.W, out.Image.H)
	}
}

func TestCenterCropGeometry(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 100, H: 80, Detail: 0.4, Seed: 4})
	out, err := centerCropOp{Size: 60}.Apply(ImageArtifact(im), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Image.W != 60 || out.Image.H != 60 {
		t.Fatalf("crop %dx%d", out.Image.W, out.Image.H)
	}
	// Undersized input still yields the requested square.
	small, _ := imaging.Synthesize(imaging.SynthParams{W: 30, H: 40, Detail: 0.4, Seed: 5})
	out, err = centerCropOp{Size: 60}.Apply(ImageArtifact(small), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Image.W != 60 || out.Image.H != 60 {
		t.Fatalf("undersized crop %dx%d", out.Image.W, out.Image.H)
	}
}

func TestColorJitterBounds(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 20, H: 20, Detail: 0.6, Seed: 6})
	// Apply consumes (and mutates) its input, so pass clones to keep im
	// pristine for the identity comparison.
	out, err := colorJitterOp{Strength: 0.4}.Apply(ImageArtifact(im.Clone()), rngFor(Seed{Job: 1}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Image.W != 20 || out.Image.H != 20 {
		t.Fatal("jitter changed geometry")
	}
	// Zero strength is identity.
	same, err := colorJitterOp{Strength: 0}.Apply(ImageArtifact(im.Clone()), rngFor(Seed{Job: 1}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !same.Image.Equal(im) {
		t.Fatal("zero-strength jitter altered pixels")
	}
}

func TestGrayscaleOp(t *testing.T) {
	im, _ := imaging.Synthesize(imaging.SynthParams{W: 10, H: 10, Detail: 0.8, Seed: 7})
	out, err := grayscaleOp{P: 1}.Apply(ImageArtifact(im.Clone()), rngFor(Seed{Job: 2}, 4))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			r, g, b := out.Image.At(x, y)
			if r != g || g != b {
				t.Fatalf("pixel (%d,%d) not gray: %d %d %d", x, y, r, g, b)
			}
		}
	}
	keep, err := grayscaleOp{P: 0}.Apply(ImageArtifact(im.Clone()), rngFor(Seed{Job: 2}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !keep.Image.Equal(im) {
		t.Fatal("P=0 grayscale altered the image")
	}
}

func TestAugmentedPipelineSplitEquivalence(t *testing.T) {
	p, err := Augmented(96, 0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Fatalf("augmented pipeline has %d ops", p.Len())
	}
	raw := encodeSample(t, 300, 240, 0.5, 43)
	seed := Seed{Job: 3, Epoch: 2, Sample: 9}
	want, err := p.Run(raw, seed)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= p.Len(); k++ {
		prefix, err := p.RunRange(RawArtifact(raw), 0, k, seed)
		if err != nil {
			t.Fatalf("split %d: %v", k, err)
		}
		enc, err := prefix.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeArtifact(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.RunRange(dec, k, p.Len(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("augmented split %d differs from local run", k)
		}
	}
}

// Property: split equivalence holds on the validation pipeline too.
func TestValidationSplitEquivalenceProperty(t *testing.T) {
	p, err := Validation(128, 112)
	if err != nil {
		t.Fatal(err)
	}
	f := func(imgSeed uint64, k8 uint8) bool {
		im, err := imaging.Synthesize(imaging.SynthParams{W: 200, H: 160, Detail: 0.5, Seed: imgSeed})
		if err != nil {
			return false
		}
		raw, err := imaging.EncodeDefault(im)
		if err != nil {
			return false
		}
		seed := Seed{Job: 1, Epoch: 1, Sample: imgSeed}
		k := int(k8) % (p.Len() + 1)
		want, err := p.Run(raw, seed)
		if err != nil {
			return false
		}
		prefix, err := p.RunRange(RawArtifact(raw), 0, k, seed)
		if err != nil {
			return false
		}
		got, err := p.RunRange(prefix, k, p.Len(), seed)
		return err == nil && got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestExtraOpNames(t *testing.T) {
	for id, want := range map[OpID]string{
		OpResizeShorter: "ResizeShorter",
		OpCenterCrop:    "CenterCrop",
		OpColorJitter:   "ColorJitter",
		OpGrayscale:     "Grayscale",
	} {
		if id.String() != want {
			t.Errorf("OpID(%d) = %q", id, id.String())
		}
	}
}
