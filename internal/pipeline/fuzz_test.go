package pipeline

import (
	"testing"

	"repro/internal/imaging"
	"repro/internal/tensor"
)

// FuzzDecodeArtifact: the artifact parser must never panic, and accepted
// artifacts must re-encode losslessly.
func FuzzDecodeArtifact(f *testing.F) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 8, H: 6, Detail: 0.4, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	if enc, err := ImageArtifact(im).Encode(); err == nil {
		f.Add(enc)
	}
	if enc, err := RawArtifact([]byte{1, 2, 3}).Encode(); err == nil {
		f.Add(enc)
	}
	tt, _ := tensor.New(1, 2, 2)
	if enc, err := TensorArtifact(tt).Encode(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{99, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(data)
		if err != nil {
			return
		}
		enc, err := a.Encode()
		if err != nil {
			t.Fatalf("accepted artifact failed to encode: %v", err)
		}
		b, err := DecodeArtifact(enc)
		if err != nil {
			t.Fatalf("re-encoded artifact failed to decode: %v", err)
		}
		if !a.Equal(b) {
			t.Fatal("artifact changed across round trip")
		}
		if len(enc) != a.WireSize() {
			t.Fatalf("WireSize %d != encoded %d", a.WireSize(), len(enc))
		}
	})
}
