// Package pipeline implements the preprocessing-pipeline framework at the
// heart of SOPHON's offloading model: typed intermediate artifacts with an
// exact wire encoding (so every stage has a measurable transfer size), the
// five standard image-classification ops (Decode, RandomResizedCrop,
// RandomHorizontalFlip, ToTensor, Normalize), deterministic per-op
// augmentation seeding, and split execution — run a prefix of the ops on the
// storage server and the suffix on the compute node with a byte-identical
// result to running everything locally.
package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/imaging"
	"repro/internal/tensor"
)

// Kind identifies an artifact's payload type.
type Kind uint8

// Artifact kinds, in pipeline order.
const (
	KindRaw    Kind = 1 // encoded (SJPG) bytes, as stored
	KindImage  Kind = 2 // decoded RGB pixels
	KindTensor Kind = 3 // float32 CHW tensor
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRaw:
		return "raw"
	case KindImage:
		return "image"
	case KindTensor:
		return "tensor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Artifact is the value flowing between pipeline ops. Exactly one payload
// field is set, selected by Kind.
type Artifact struct {
	Kind   Kind
	Raw    []byte
	Image  *imaging.Image
	Tensor *tensor.Tensor
}

// Package errors.
var (
	ErrKindMismatch = errors.New("pipeline: artifact kind mismatch")
	ErrCorrupt      = errors.New("pipeline: corrupt artifact encoding")
)

// RawArtifact wraps encoded bytes.
func RawArtifact(data []byte) Artifact { return Artifact{Kind: KindRaw, Raw: data} }

// ImageArtifact wraps a decoded image.
func ImageArtifact(im *imaging.Image) Artifact { return Artifact{Kind: KindImage, Image: im} }

// TensorArtifact wraps a tensor.
func TensorArtifact(t *tensor.Tensor) Artifact { return Artifact{Kind: KindTensor, Tensor: t} }

const imageHeader = 1 + 8 // kind byte + W,H uint32

// RawWireSize returns the encoded size of a raw artifact with n payload
// bytes.
func RawWireSize(n int) int { return 1 + n }

// ImageWireSize returns the encoded size of a w×h image artifact.
func ImageWireSize(w, h int) int { return imageHeader + w*h*imaging.Channels }

// TensorWireSize returns the encoded size of a c×h×w tensor artifact.
func TensorWireSize(c, h, w int) int { return 1 + tensor.MarshaledSize(c, h, w) }

// WireSize returns the exact number of bytes this artifact occupies when
// encoded for network transfer. This is the quantity the paper's Figure 1a
// traces through the pipeline.
func (a Artifact) WireSize() int {
	switch a.Kind {
	case KindRaw:
		return 1 + len(a.Raw)
	case KindImage:
		return imageHeader + a.Image.ByteSize()
	case KindTensor:
		return 1 + tensor.MarshaledSize(a.Tensor.C, a.Tensor.H, a.Tensor.W)
	default:
		return 0
	}
}

// Encode serializes the artifact: a kind byte followed by the payload
// (raw bytes verbatim; images as W,H plus pixels; tensors via
// tensor.Marshal). The result is freshly allocated; use AppendEncode to
// encode into a pooled buffer instead.
func (a Artifact) Encode() ([]byte, error) {
	return a.AppendEncode(make([]byte, 0, a.WireSize()))
}

// AppendEncode appends the artifact encoding to dst and returns the extended
// slice. When dst has WireSize() spare capacity the call performs no
// allocation, which is how the storage executor encodes into pooled buffers.
func (a Artifact) AppendEncode(dst []byte) ([]byte, error) {
	switch a.Kind {
	case KindRaw:
		dst = append(dst, byte(KindRaw))
		return append(dst, a.Raw...), nil
	case KindImage:
		im := a.Image
		var hdr [imageHeader]byte
		hdr[0] = byte(KindImage)
		binary.LittleEndian.PutUint32(hdr[1:5], uint32(im.W))
		binary.LittleEndian.PutUint32(hdr[5:9], uint32(im.H))
		dst = append(dst, hdr[:]...)
		return append(dst, im.Pix...), nil
	case KindTensor:
		dst = append(dst, byte(KindTensor))
		return a.Tensor.AppendMarshal(dst), nil
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, a.Kind)
	}
}

// Release returns pooled payload buffers to the bufpool arena. Image and
// tensor payloads are owned by whoever holds the artifact; raw payloads are
// borrowed (they may alias the store or a cache) and are left untouched.
// Call at most once; the artifact must not be used afterwards.
func (a Artifact) Release() {
	switch a.Kind {
	case KindImage:
		a.Image.Release()
	case KindTensor:
		a.Tensor.Release()
	}
}

// DecodeArtifact parses an encoded artifact. Image and tensor payloads are
// copied into pool-backed buffers — the caller owns the result (Release when
// done) and data is never aliased. Raw payloads are copied into plain memory
// since raw artifacts are borrowed-by-convention and never released.
func DecodeArtifact(data []byte) (Artifact, error) {
	if len(data) < 1 {
		return Artifact{}, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	switch Kind(data[0]) {
	case KindRaw:
		raw := make([]byte, len(data)-1)
		copy(raw, data[1:])
		return RawArtifact(raw), nil
	case KindImage:
		if len(data) < imageHeader {
			return Artifact{}, fmt.Errorf("%w: short image header", ErrCorrupt)
		}
		w := int(binary.LittleEndian.Uint32(data[1:5]))
		h := int(binary.LittleEndian.Uint32(data[5:9]))
		const maxDim = 1 << 16
		if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
			return Artifact{}, fmt.Errorf("%w: image dims %dx%d", ErrCorrupt, w, h)
		}
		want := imageHeader + w*h*imaging.Channels
		if len(data) != want {
			return Artifact{}, fmt.Errorf("%w: image payload %d bytes, want %d", ErrCorrupt, len(data), want)
		}
		im, err := imaging.NewPooled(w, h)
		if err != nil {
			return Artifact{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		copy(im.Pix, data[imageHeader:])
		return ImageArtifact(im), nil
	case KindTensor:
		t, err := tensor.Unmarshal(data[1:])
		if err != nil {
			return Artifact{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return TensorArtifact(t), nil
	default:
		return Artifact{}, fmt.Errorf("%w: kind %d", ErrCorrupt, data[0])
	}
}

// Equal compares artifacts by kind and payload bytes/values.
func (a Artifact) Equal(b Artifact) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindRaw:
		if len(a.Raw) != len(b.Raw) {
			return false
		}
		for i := range a.Raw {
			if a.Raw[i] != b.Raw[i] {
				return false
			}
		}
		return true
	case KindImage:
		return a.Image.Equal(b.Image)
	case KindTensor:
		return a.Tensor.Equal(b.Tensor)
	default:
		return false
	}
}
