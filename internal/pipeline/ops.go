package pipeline

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/imaging"
	"repro/internal/tensor"
)

// OpID is the stable identifier for a preprocessing operation, used in wire
// messages and offload plans.
type OpID uint8

// Standard op identifiers, in pipeline order.
const (
	OpDecode OpID = iota + 1
	OpRandomResizedCrop
	OpRandomHorizontalFlip
	OpToTensor
	OpNormalize
)

// String names the op.
func (id OpID) String() string {
	switch id {
	case OpDecode:
		return "Decode"
	case OpRandomResizedCrop:
		return "RandomResizedCrop"
	case OpRandomHorizontalFlip:
		return "RandomHorizontalFlip"
	case OpToTensor:
		return "ToTensor"
	case OpNormalize:
		return "Normalize"
	default:
		if name, ok := extraOpName(id); ok {
			return name
		}
		return fmt.Sprintf("Op(%d)", uint8(id))
	}
}

// Op is one preprocessing operation. Apply must be deterministic given the
// artifact and the rng stream.
//
// Ownership: Apply CONSUMES its input artifact. Image and tensor payloads
// are owned by the pipeline — an op may mutate them in place or Release
// them to the buffer pool; callers must not touch an artifact after passing
// it to Apply. Raw payloads are the one exception: they are borrowed
// (they may alias the store or a cache) and must never be mutated or
// released. See DESIGN.md "Buffer ownership".
type Op interface {
	ID() OpID
	Name() string
	// InKind and OutKind declare the artifact types the op consumes and
	// produces; Pipeline validates adjacency at construction.
	InKind() Kind
	OutKind() Kind
	Apply(a Artifact, rng *rand.Rand) (Artifact, error)
}

// decodeOp turns stored SJPG or progressive SJPR bytes into a pixel image.
// Progressive containers decode from however many scans are present, so a
// prefix a reduced-fidelity fetch shipped flows through the same pipeline as
// a full object — at lower fidelity, not as an error.
type decodeOp struct{}

func (decodeOp) ID() OpID      { return OpDecode }
func (decodeOp) Name() string  { return OpDecode.String() }
func (decodeOp) InKind() Kind  { return KindRaw }
func (decodeOp) OutKind() Kind { return KindImage }

func (decodeOp) Apply(a Artifact, _ *rand.Rand) (Artifact, error) {
	if a.Kind != KindRaw {
		return Artifact{}, fmt.Errorf("%w: Decode wants raw, got %s", ErrKindMismatch, a.Kind)
	}
	if imaging.IsProgressive(a.Raw) {
		im, _, err := imaging.DecodeProgressive(a.Raw)
		if err != nil {
			return Artifact{}, fmt.Errorf("pipeline: decode progressive: %w", err)
		}
		return ImageArtifact(im), nil
	}
	im, err := imaging.Decode(a.Raw)
	if err != nil {
		return Artifact{}, fmt.Errorf("pipeline: decode: %w", err)
	}
	return ImageArtifact(im), nil
}

// randomResizedCropOp reproduces torchvision's RandomResizedCrop: sample a
// crop with area in scale×srcArea and aspect ratio in [3/4, 4/3] (10
// attempts, then a clamped center-crop fallback), and resize to Size².
type randomResizedCropOp struct {
	Size     int
	ScaleLo  float64
	ScaleHi  float64
	RatioLo  float64
	RatioHi  float64
	Attempts int
}

func newRandomResizedCrop(size int) randomResizedCropOp {
	return randomResizedCropOp{
		Size:    size,
		ScaleLo: 0.08, ScaleHi: 1.0,
		RatioLo: 3.0 / 4.0, RatioHi: 4.0 / 3.0,
		Attempts: 10,
	}
}

func (randomResizedCropOp) ID() OpID      { return OpRandomResizedCrop }
func (randomResizedCropOp) Name() string  { return OpRandomResizedCrop.String() }
func (randomResizedCropOp) InKind() Kind  { return KindImage }
func (randomResizedCropOp) OutKind() Kind { return KindImage }

func (op randomResizedCropOp) Apply(a Artifact, rng *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: RandomResizedCrop wants image, got %s", ErrKindMismatch, a.Kind)
	}
	im := a.Image
	rect := op.sampleRect(im.W, im.H, rng)
	out, err := imaging.CropResize(im, rect, op.Size, op.Size)
	if err != nil {
		return Artifact{}, fmt.Errorf("pipeline: random resized crop: %w", err)
	}
	im.Release()
	return ImageArtifact(out), nil
}

func (op randomResizedCropOp) sampleRect(w, h int, rng *rand.Rand) imaging.Rect {
	area := float64(w * h)
	logLo, logHi := math.Log(op.RatioLo), math.Log(op.RatioHi)
	for i := 0; i < op.Attempts; i++ {
		target := area * (op.ScaleLo + rng.Float64()*(op.ScaleHi-op.ScaleLo))
		ratio := math.Exp(logLo + rng.Float64()*(logHi-logLo))
		cw := int(math.Round(math.Sqrt(target * ratio)))
		ch := int(math.Round(math.Sqrt(target / ratio)))
		if cw > 0 && ch > 0 && cw <= w && ch <= h {
			x := rng.IntN(w - cw + 1)
			y := rng.IntN(h - ch + 1)
			return imaging.Rect{X: x, Y: y, W: cw, H: ch}
		}
	}
	// Fallback: largest centered crop within the ratio bounds.
	inRatio := float64(w) / float64(h)
	var cw, ch int
	switch {
	case inRatio < op.RatioLo:
		cw = w
		ch = int(math.Round(float64(cw) / op.RatioLo))
	case inRatio > op.RatioHi:
		ch = h
		cw = int(math.Round(float64(ch) * op.RatioHi))
	default:
		cw, ch = w, h
	}
	if cw < 1 {
		cw = 1
	}
	if ch < 1 {
		ch = 1
	}
	return imaging.Rect{X: (w - cw) / 2, Y: (h - ch) / 2, W: cw, H: ch}
}

// randomHorizontalFlipOp mirrors the image with probability P.
type randomHorizontalFlipOp struct {
	P float64
}

func (randomHorizontalFlipOp) ID() OpID      { return OpRandomHorizontalFlip }
func (randomHorizontalFlipOp) Name() string  { return OpRandomHorizontalFlip.String() }
func (randomHorizontalFlipOp) InKind() Kind  { return KindImage }
func (randomHorizontalFlipOp) OutKind() Kind { return KindImage }

func (op randomHorizontalFlipOp) Apply(a Artifact, rng *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: RandomHorizontalFlip wants image, got %s", ErrKindMismatch, a.Kind)
	}
	// The op owns its input, so the flip happens in the image's own buffer:
	// no copy on either branch.
	if rng.Float64() < op.P {
		imaging.FlipHorizontalInPlace(a.Image)
	}
	return ImageArtifact(a.Image), nil
}

// toTensorOp converts uint8 RGB to a float32 CHW tensor in [0, 1] — the 4×
// wire-size inflation the paper's Finding #2 hinges on.
type toTensorOp struct{}

func (toTensorOp) ID() OpID      { return OpToTensor }
func (toTensorOp) Name() string  { return OpToTensor.String() }
func (toTensorOp) InKind() Kind  { return KindImage }
func (toTensorOp) OutKind() Kind { return KindTensor }

func (toTensorOp) Apply(a Artifact, _ *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: ToTensor wants image, got %s", ErrKindMismatch, a.Kind)
	}
	t := tensor.FromImage(a.Image)
	a.Image.Release()
	return TensorArtifact(t), nil
}

// normalizeOp standardizes the tensor with per-channel mean/std.
type normalizeOp struct {
	Mean []float32
	Std  []float32
}

func (normalizeOp) ID() OpID      { return OpNormalize }
func (normalizeOp) Name() string  { return OpNormalize.String() }
func (normalizeOp) InKind() Kind  { return KindTensor }
func (normalizeOp) OutKind() Kind { return KindTensor }

func (op normalizeOp) Apply(a Artifact, _ *rand.Rand) (Artifact, error) {
	if a.Kind != KindTensor {
		return Artifact{}, fmt.Errorf("%w: Normalize wants tensor, got %s", ErrKindMismatch, a.Kind)
	}
	// In place: the op owns its input tensor.
	if err := a.Tensor.Normalize(op.Mean, op.Std); err != nil {
		return Artifact{}, fmt.Errorf("pipeline: normalize: %w", err)
	}
	return a, nil
}
