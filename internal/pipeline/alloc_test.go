package pipeline

import (
	"testing"

	"repro/internal/imaging"
	"repro/internal/raceflag"
	"repro/internal/tensor"
)

// Steady-state allocation budgets for the per-sample preprocessing path.
// Budgets are deliberately small but non-zero: the object headers (Image,
// Tensor) still allocate, and a GC may clear a sync.Pool mid-run.

func TestFusedToTensorNormalizeAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector degrades sync.Pool caching; budgets not meaningful")
	}
	im, err := imaging.Synthesize(imaging.SynthParams{W: 224, H: 224, Detail: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm := func() {
		tt, err := tensor.FromImageNormalized(im, tensor.ImageNetMean, tensor.ImageNetStd)
		if err != nil {
			t.Fatal(err)
		}
		tt.Release()
	}
	for i := 0; i < 8; i++ {
		warm()
	}
	allocs := testing.AllocsPerRun(50, warm)
	if allocs > 2 {
		t.Fatalf("fused ToTensor+Normalize allocates %.1f allocs/op at steady state, budget is 2", allocs)
	}
}

func TestFullPipelineSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark in -short mode")
	}
	if raceflag.Enabled {
		t.Skip("race detector degrades sync.Pool caching; budgets not meaningful")
	}
	im, err := imaging.Synthesize(imaging.SynthParams{W: 320, H: 240, Detail: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := imaging.EncodeDefault(im)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultStandard()
	run := func(fatal func(...any), i int) {
		out, err := p.Run(raw, Seed{Job: 3, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			fatal(err)
		}
		out.Release()
	}
	for i := 0; i < 8; i++ {
		run(t.Fatal, i)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b.Fatal, i)
		}
	})
	// With warm pools the per-sample path allocates a couple of object
	// headers plus compress/flate's internal per-block huffman tables
	// (~2 KB, ~45 tiny allocs — see the imaging alloc tests). The byte
	// budget is what matters: pre-pooling this path allocated ~3.4 MB/op.
	if got := res.AllocedBytesPerOp(); got > 64<<10 {
		t.Fatalf("full pipeline allocates %d B/op at steady state, budget is 64 KiB (pre-pooling: ~3.4 MB)", got)
	}
	if got := res.AllocsPerOp(); got > 60 {
		t.Fatalf("full pipeline makes %d allocs/op at steady state, budget is 60", got)
	}
}
