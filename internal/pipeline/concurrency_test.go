package pipeline

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/imaging"
	"repro/internal/tensor"
)

// TestConcurrentFusedKernelBitIdentical checks that the fused
// ToTensor+Normalize kernel, running on pooled tensors from many goroutines,
// produces output bit-identical to the unfused two-pass reference computed
// single-threaded. Pool reuse must never leak one sample's values into
// another's output.
func TestConcurrentFusedKernelBitIdentical(t *testing.T) {
	const nInputs = 4
	type input struct {
		im  *imaging.Image
		ref *tensor.Tensor // plain memory via Clone
	}
	inputs := make([]input, nInputs)
	for k := 0; k < nInputs; k++ {
		im, err := imaging.Synthesize(imaging.SynthParams{W: 64 + 8*k, H: 48 + 8*k, Detail: 0.5, Seed: uint64(k + 11)})
		if err != nil {
			t.Fatal(err)
		}
		ref := tensor.FromImage(im)
		if err := ref.Normalize(tensor.ImageNetMean, tensor.ImageNetStd); err != nil {
			t.Fatal(err)
		}
		inputs[k] = input{im: im, ref: ref.Clone()}
		ref.Release()
	}

	workers := runtime.GOMAXPROCS(0)
	iters := 50
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				in := inputs[(w+i)%nInputs]
				got, err := tensor.FromImageNormalized(in.im, tensor.ImageNetMean, tensor.ImageNetStd)
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(in.ref) {
					t.Errorf("worker %d iter %d: fused kernel output differs from unfused reference", w, i)
					got.Release()
					return
				}
				got.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentPipelineDeterministic runs the full pipeline (pooled decode,
// in-place augmentations, pooled per-op rng, fused tensor tail) from many
// goroutines and checks that each (raw, seed) pair yields a tensor
// bit-identical to the one produced single-threaded. This pins two properties
// at once: pooled rng re-seeding reproduces the exact rand.NewPCG stream, and
// no pooled buffer is shared across concurrent samples.
func TestConcurrentPipelineDeterministic(t *testing.T) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 320, H: 240, Detail: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := imaging.EncodeDefault(im)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultStandard()

	const nSeeds = 8
	refs := make([]*tensor.Tensor, nSeeds)
	for s := 0; s < nSeeds; s++ {
		out, err := p.Run(raw, Seed{Job: 2, Epoch: 1, Sample: uint64(s)})
		if err != nil {
			t.Fatal(err)
		}
		if out.Kind != KindTensor {
			t.Fatalf("pipeline output kind %v, want tensor", out.Kind)
		}
		refs[s] = out.Tensor.Clone()
		out.Release()
	}

	workers := runtime.GOMAXPROCS(0)
	iters := 20
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := (w + i) % nSeeds
				out, err := p.Run(raw, Seed{Job: 2, Epoch: 1, Sample: uint64(s)})
				if err != nil {
					t.Error(err)
					return
				}
				if out.Kind != KindTensor || !out.Tensor.Equal(refs[s]) {
					t.Errorf("worker %d iter %d: concurrent pipeline output differs from single-threaded run for seed %d", w, i, s)
					out.Release()
					return
				}
				out.Release()
			}
		}(w)
	}
	wg.Wait()
}
