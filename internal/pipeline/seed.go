package pipeline

// Seed identifies one augmentation context: a training job, an epoch, and a
// sample. Each op in the pipeline derives its own independent random stream
// from the seed, so a prefix of ops executed on the storage server and the
// suffix executed locally consume exactly the same randomness as a fully
// local run — the split-equivalence invariant SOPHON's correctness rests on.
type Seed struct {
	Job    uint64
	Epoch  uint64
	Sample uint64
}

// ForOp derives the 64-bit stream seed for the op at index opIndex.
func (s Seed) ForOp(opIndex int) uint64 {
	x := splitmix(s.Job ^ 0x243f6a8885a308d3)
	x = splitmix(x ^ s.Epoch)
	x = splitmix(x ^ s.Sample)
	return splitmix(x ^ uint64(opIndex)*0x9e3779b97f4a7c15)
}

// splitmix is the SplitMix64 finalizer — a cheap, well-distributed 64-bit
// mixer used to derive independent streams.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
