package pipeline

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/tensor"
)

// Pipeline is an ordered sequence of ops whose artifact kinds chain
// correctly. Indexing convention used across the repository: "stage k" is
// the artifact after the first k ops, so stage 0 is the raw sample and stage
// len(Ops) is the fully preprocessed tensor. An offload plan with split k
// runs ops [0, k) on the storage server and ops [k, len) locally.
type Pipeline struct {
	ops []Op
}

// ErrBadSplit reports an out-of-range split point.
var ErrBadSplit = errors.New("pipeline: split out of range")

// New validates that each op consumes what its predecessor produces and that
// the first op consumes raw bytes.
func New(ops ...Op) (*Pipeline, error) {
	if len(ops) == 0 {
		return nil, errors.New("pipeline: no ops")
	}
	if ops[0].InKind() != KindRaw {
		return nil, fmt.Errorf("pipeline: first op %s must consume raw, consumes %s", ops[0].Name(), ops[0].InKind())
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].InKind() != ops[i-1].OutKind() {
			return nil, fmt.Errorf("pipeline: %s produces %s but %s consumes %s",
				ops[i-1].Name(), ops[i-1].OutKind(), ops[i].Name(), ops[i].InKind())
		}
	}
	return &Pipeline{ops: append([]Op(nil), ops...)}, nil
}

// StandardOptions configures the standard image-classification pipeline.
type StandardOptions struct {
	CropSize int       // output side length; 0 means 224
	FlipP    float64   // horizontal-flip probability; negative means 0.5
	Mean     []float32 // normalization mean; nil means ImageNet stats
	Std      []float32 // normalization std; nil means ImageNet stats
}

// Standard builds the paper's five-op pipeline:
// Decode → RandomResizedCrop → RandomHorizontalFlip → ToTensor → Normalize.
func Standard(opts StandardOptions) *Pipeline {
	if opts.CropSize <= 0 {
		opts.CropSize = 224
	}
	if opts.FlipP < 0 {
		opts.FlipP = 0.5
	}
	if opts.Mean == nil {
		opts.Mean = tensor.ImageNetMean
	}
	if opts.Std == nil {
		opts.Std = tensor.ImageNetStd
	}
	p, err := New(
		decodeOp{},
		newRandomResizedCrop(opts.CropSize),
		randomHorizontalFlipOp{P: opts.FlipP},
		toTensorOp{},
		normalizeOp{Mean: opts.Mean, Std: opts.Std},
	)
	if err != nil {
		// The standard pipeline is statically well-formed.
		panic(err)
	}
	return p
}

// DefaultStandard is Standard with all defaults (224 crop, p=0.5 flip,
// ImageNet normalization).
func DefaultStandard() *Pipeline { return Standard(StandardOptions{FlipP: -1}) }

// Len returns the number of ops.
func (p *Pipeline) Len() int { return len(p.ops) }

// Ops returns the op list (callers must not mutate it).
func (p *Pipeline) Ops() []Op { return p.ops }

// OpIDs returns the ordered op identifiers.
func (p *Pipeline) OpIDs() []OpID {
	ids := make([]OpID, len(p.ops))
	for i, op := range p.ops {
		ids[i] = op.ID()
	}
	return ids
}

// rngFor builds the op's independent random stream. It is the reference for
// rngHolder.seedFor, which produces the identical stream without allocating.
func rngFor(seed Seed, opIndex int) *rand.Rand {
	s := seed.ForOp(opIndex)
	return rand.New(rand.NewPCG(s, splitmix(s)))
}

// rngHolder is a reusable PCG generator. rand.Rand carries no state beyond
// its source, so re-seeding the PCG yields exactly the stream a fresh
// rand.New(rand.NewPCG(...)) would.
type rngHolder struct {
	pcg *rand.PCG
	rng *rand.Rand
}

var rngPool = sync.Pool{New: func() any {
	pcg := rand.NewPCG(0, 0)
	return &rngHolder{pcg: pcg, rng: rand.New(pcg)}
}}

// seedFor re-seeds the holder to op opIndex's independent stream, matching
// rngFor bit for bit.
func (h *rngHolder) seedFor(seed Seed, opIndex int) *rand.Rand {
	s := seed.ForOp(opIndex)
	h.pcg.Seed(s, splitmix(s))
	return h.rng
}

// RunRange applies ops [from, to) to a, deriving each op's rng from seed.
// from==to returns a unchanged.
//
// Ownership follows the Op contract: the pipeline consumes a (image/tensor
// payloads may be mutated in place or released to the buffer pool; raw
// payloads are borrowed and left untouched). The returned artifact is owned
// by the caller — Release it when done to keep the path allocation-free.
//
// An adjacent ToTensor+Normalize pair inside [from, to) is fused into a
// single pass (tensor.FromImageNormalized); both ops ignore their rng and
// the fused kernel is bit-identical to the sequential pair, so results are
// unchanged.
func (p *Pipeline) RunRange(a Artifact, from, to int, seed Seed) (Artifact, error) {
	if from < 0 || to > len(p.ops) || from > to {
		return Artifact{}, fmt.Errorf("%w: [%d, %d) of %d ops", ErrBadSplit, from, to, len(p.ops))
	}
	h := rngPool.Get().(*rngHolder)
	defer rngPool.Put(h)
	cur := a
	for i := from; i < to; i++ {
		if _, isTT := p.ops[i].(toTensorOp); isTT && i+1 < to && cur.Kind == KindImage {
			if nz, isNZ := p.ops[i+1].(normalizeOp); isNZ {
				t, err := tensor.FromImageNormalized(cur.Image, nz.Mean, nz.Std)
				if err != nil {
					return Artifact{}, fmt.Errorf("pipeline: op %d (%s): %w", i+1, p.ops[i+1].Name(), err)
				}
				cur.Image.Release()
				cur = TensorArtifact(t)
				i++ // loop increment skips the fused Normalize as well
				continue
			}
		}
		next, err := p.ops[i].Apply(cur, h.seedFor(seed, i))
		if err != nil {
			return Artifact{}, fmt.Errorf("pipeline: op %d (%s): %w", i, p.ops[i].Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// Run applies the full pipeline to raw sample bytes.
func (p *Pipeline) Run(raw []byte, seed Seed) (Artifact, error) {
	return p.RunRange(RawArtifact(raw), 0, len(p.ops), seed)
}

// StageTrace records the artifact wire size after every stage and the CPU
// time each op took. Sizes has Len()+1 entries (stage 0 = raw); OpTimes has
// Len() entries.
type StageTrace struct {
	Sizes   []int
	OpTimes []time.Duration
}

// MinStage returns the stage index with the smallest wire size, preferring
// the earliest stage on ties (an earlier minimum means less server CPU for
// the same traffic).
func (t StageTrace) MinStage() int {
	best := 0
	for i, s := range t.Sizes {
		if s < t.Sizes[best] {
			best = i
		}
	}
	return best
}

// Trace runs the full pipeline over raw bytes, recording per-stage wire
// sizes and per-op wall times. It is the measurement kernel of the profiler's
// second stage, so it deliberately runs every op sequentially — no
// ToTensor+Normalize fusion — to measure each op's true cost.
func (p *Pipeline) Trace(raw []byte, seed Seed) (Artifact, StageTrace, error) {
	trace := StageTrace{
		Sizes:   make([]int, len(p.ops)+1),
		OpTimes: make([]time.Duration, len(p.ops)),
	}
	cur := RawArtifact(raw)
	trace.Sizes[0] = cur.WireSize()
	for i, op := range p.ops {
		start := time.Now()
		next, err := op.Apply(cur, rngFor(seed, i))
		trace.OpTimes[i] = time.Since(start)
		if err != nil {
			return Artifact{}, StageTrace{}, fmt.Errorf("pipeline: trace op %d (%s): %w", i, op.Name(), err)
		}
		cur = next
		trace.Sizes[i+1] = cur.WireSize()
	}
	return cur, trace, nil
}
