package pipeline

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/imaging"
	"repro/internal/tensor"
)

// Additional torchvision-style ops beyond the paper's five: the
// deterministic resize/center-crop pair used by validation/eval pipelines,
// plus two more random augmentations. All compose with split execution —
// the server can run any prefix of any pipeline built from them.

// Extended op identifiers (continuing the OpID space).
const (
	OpResizeShorter OpID = iota + 6
	OpCenterCrop
	OpColorJitter
	OpGrayscale
)

// extraOpName extends OpID.String for the additional ops.
func extraOpName(id OpID) (string, bool) {
	switch id {
	case OpResizeShorter:
		return "ResizeShorter", true
	case OpCenterCrop:
		return "CenterCrop", true
	case OpColorJitter:
		return "ColorJitter", true
	case OpGrayscale:
		return "Grayscale", true
	default:
		return "", false
	}
}

// resizeShorterOp scales the image so its shorter side equals Size,
// preserving aspect ratio — torchvision's Resize(int).
type resizeShorterOp struct {
	Size int
}

func (resizeShorterOp) ID() OpID      { return OpResizeShorter }
func (resizeShorterOp) Name() string  { return OpResizeShorter.String() }
func (resizeShorterOp) InKind() Kind  { return KindImage }
func (resizeShorterOp) OutKind() Kind { return KindImage }

func (op resizeShorterOp) Apply(a Artifact, _ *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: ResizeShorter wants image, got %s", ErrKindMismatch, a.Kind)
	}
	im := a.Image
	w, h := im.W, im.H
	if w < h {
		h = h * op.Size / w
		w = op.Size
	} else {
		w = w * op.Size / h
		h = op.Size
	}
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out, err := imaging.CropResize(im, imaging.Rect{X: 0, Y: 0, W: im.W, H: im.H}, w, h)
	if err != nil {
		return Artifact{}, fmt.Errorf("pipeline: resize shorter: %w", err)
	}
	im.Release()
	return ImageArtifact(out), nil
}

// centerCropOp extracts the central Size×Size region, padding via clamped
// crop when the image is smaller (torchvision center-crops after resizing,
// so the common path always fits).
type centerCropOp struct {
	Size int
}

func (centerCropOp) ID() OpID      { return OpCenterCrop }
func (centerCropOp) Name() string  { return OpCenterCrop.String() }
func (centerCropOp) InKind() Kind  { return KindImage }
func (centerCropOp) OutKind() Kind { return KindImage }

func (op centerCropOp) Apply(a Artifact, _ *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: CenterCrop wants image, got %s", ErrKindMismatch, a.Kind)
	}
	im := a.Image
	cw, ch := op.Size, op.Size
	if cw > im.W {
		cw = im.W
	}
	if ch > im.H {
		ch = im.H
	}
	rect := imaging.Rect{X: (im.W - cw) / 2, Y: (im.H - ch) / 2, W: cw, H: ch}
	// CropResize fuses the crop and the (upscale-if-undersized) resize into
	// one pass; when rect already matches the target it is a pure crop copy.
	out, err := imaging.CropResize(im, rect, op.Size, op.Size)
	if err != nil {
		return Artifact{}, fmt.Errorf("pipeline: center crop: %w", err)
	}
	im.Release()
	return ImageArtifact(out), nil
}

// colorJitterOp randomly scales brightness and contrast within ±Strength.
type colorJitterOp struct {
	Strength float64 // e.g. 0.4 → factors in [0.6, 1.4]
}

func (colorJitterOp) ID() OpID      { return OpColorJitter }
func (colorJitterOp) Name() string  { return OpColorJitter.String() }
func (colorJitterOp) InKind() Kind  { return KindImage }
func (colorJitterOp) OutKind() Kind { return KindImage }

func (op colorJitterOp) Apply(a Artifact, rng *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: ColorJitter wants image, got %s", ErrKindMismatch, a.Kind)
	}
	s := op.Strength
	if s < 0 {
		s = 0
	}
	brightness := 1 + (rng.Float64()*2-1)*s
	contrast := 1 + (rng.Float64()*2-1)*s
	// Element-wise, so the jitter runs in place in the owned input buffer.
	im := a.Image
	for i, v := range im.Pix {
		f := (float64(v)-128)*contrast + 128
		f *= brightness
		if f < 0 {
			f = 0
		}
		if f > 255 {
			f = 255
		}
		im.Pix[i] = uint8(f + 0.5)
	}
	return ImageArtifact(im), nil
}

// grayscaleOp converts to luma with probability P (RandomGrayscale).
type grayscaleOp struct {
	P float64
}

func (grayscaleOp) ID() OpID      { return OpGrayscale }
func (grayscaleOp) Name() string  { return OpGrayscale.String() }
func (grayscaleOp) InKind() Kind  { return KindImage }
func (grayscaleOp) OutKind() Kind { return KindImage }

func (op grayscaleOp) Apply(a Artifact, rng *rand.Rand) (Artifact, error) {
	if a.Kind != KindImage {
		return Artifact{}, fmt.Errorf("%w: Grayscale wants image, got %s", ErrKindMismatch, a.Kind)
	}
	if rng.Float64() >= op.P {
		return ImageArtifact(a.Image), nil
	}
	im := a.Image
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			// ITU-R BT.601 luma, computed in place per pixel.
			l := uint8((299*int(r) + 587*int(g) + 114*int(b) + 500) / 1000)
			im.Set(x, y, l, l, l)
		}
	}
	return ImageArtifact(im), nil
}

// Validation builds the deterministic eval-time pipeline torchvision
// pairs with the training one: Decode → Resize(shorter=resize) →
// CenterCrop(crop) → ToTensor → Normalize.
func Validation(resize, crop int) (*Pipeline, error) {
	if resize <= 0 {
		resize = 256
	}
	if crop <= 0 {
		crop = 224
	}
	if crop > resize {
		return nil, fmt.Errorf("pipeline: crop %d exceeds resize %d", crop, resize)
	}
	return New(
		decodeOp{},
		resizeShorterOp{Size: resize},
		centerCropOp{Size: crop},
		toTensorOp{},
		normalizeOp{Mean: tensor.ImageNetMean, Std: tensor.ImageNetStd},
	)
}

// Augmented builds a heavier training pipeline with the extra random ops:
// Decode → RandomResizedCrop → RandomHorizontalFlip → ColorJitter →
// Grayscale → ToTensor → Normalize.
func Augmented(crop int, jitter, grayP float64) (*Pipeline, error) {
	if crop <= 0 {
		crop = 224
	}
	return New(
		decodeOp{},
		newRandomResizedCrop(crop),
		randomHorizontalFlipOp{P: 0.5},
		colorJitterOp{Strength: jitter},
		grayscaleOp{P: grayP},
		toTensorOp{},
		normalizeOp{Mean: tensor.ImageNetMean, Std: tensor.ImageNetStd},
	)
}
