package pipeline

import (
	"testing"

	"repro/internal/imaging"
)

func benchRaw(b *testing.B, w, h int) []byte {
	b.Helper()
	im, err := imaging.Synthesize(imaging.SynthParams{W: w, H: h, Detail: 0.5, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := imaging.EncodeDefault(im)
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func BenchmarkFullPipeline640x480(b *testing.B) {
	raw := benchRaw(b, 640, 480)
	p := DefaultStandard()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := p.Run(raw, Seed{Job: 1, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkPrefixDecodeCrop(b *testing.B) {
	raw := benchRaw(b, 640, 480)
	p := DefaultStandard()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := p.RunRange(RawArtifact(raw), 0, 2, Seed{Job: 1, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkTraceInstrumentation(b *testing.B) {
	raw := benchRaw(b, 320, 240)
	p := DefaultStandard()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := p.Trace(raw, Seed{Job: 1, Epoch: 1, Sample: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkArtifactEncodeImage224(b *testing.B) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 224, H: 224, Detail: 0.5, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	a := ImageArtifact(im)
	b.SetBytes(int64(a.WireSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactDecodeImage224(b *testing.B) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 224, H: 224, Detail: 0.5, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	enc, err := ImageArtifact(im).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := DecodeArtifact(enc)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}
