package cache_test

// Cross-job cache correctness over the real storage path: tenants of one
// share group dial the sharded tier with the group's dataset key as job ID
// (coordinated prep), fetch overlapping samples through TenantFetchers over
// one SharedArtifactCache, and must observe bit-identical artifacts whether
// served from the wire or from another tenant's cached fetch. Run under
// -race by the CI matrix.

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

const shareKey = 77 // the share group's dataset key = every tenant's job ID

func launchTier(t testing.TB, n, shards int) *cluster.Cluster {
	t.Helper()
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "crossjob", N: n, Seed: 5, MinDim: 48, MaxDim: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Launch(cluster.Config{
		Shards:        shards,
		Store:         store,
		Pipeline:      pipeline.Standard(pipeline.StandardOptions{CropSize: 32, FlipP: 0.5}),
		CoresPerShard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func tenantOver(t testing.TB, c *cluster.Cluster, shared *cache.SharedArtifactCache, name string) *cache.TenantFetcher {
	t.Helper()
	sc, err := c.NewShardedClient(storage.ClientOptions{JobID: shareKey}, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := cache.NewTenantFetcher(sc, shared, name, shareKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tf.Close() })
	return tf
}

func encode(t testing.TB, res storage.FetchResult) []byte {
	t.Helper()
	enc, err := res.Artifact.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// Two tenants with overlapping sample sets observe bit-identical artifacts —
// raw and augmented — regardless of which tenant fetched first, and the
// second tenant's overlap is served without wire traffic.
func TestCrossJobArtifactsBitIdentical(t *testing.T) {
	const n = 16
	tier := launchTier(t, n, 2)
	shared, err := cache.NewShared(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	a := tenantOver(t, tier, shared, "tenant-a")
	b := tenantOver(t, tier, shared, "tenant-b")
	ctx := context.Background()

	// Tenant a fetches everything first: raw for even samples, an offloaded
	// 3-op prefix (includes the random crop + flip) for odd ones.
	split := func(s uint32) int {
		if s%2 == 0 {
			return 0
		}
		return 3
	}
	wireA := make([][]byte, n)
	for s := uint32(0); s < n; s++ {
		res, err := a.Fetch(ctx, s, split(s), 1)
		if err != nil {
			t.Fatal(err)
		}
		wireA[s] = encode(t, res)
	}

	// Tenant b overlaps on every sample; all fetches must hit.
	for s := uint32(0); s < n; s++ {
		res, err := b.Fetch(ctx, s, split(s), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, res), wireA[s]) {
			t.Fatalf("sample %d split %d: tenant b's artifact differs from tenant a's", s, split(s))
		}
		if res.WireBytes != 0 {
			t.Fatalf("sample %d served over the wire despite the cache", s)
		}
	}
	if st := b.Stats(); st.Hits != n || st.Misses != 0 {
		t.Fatalf("tenant b stats %+v, want %d pure hits", st, n)
	}

	// Bit-identity holds against the tier itself, not just the cache: a
	// fresh fetch from the wire for an augmented sample matches the cached
	// encoding (both tenants authenticate as the share group).
	fresh, err := tier.NewShardedClient(storage.ClientOptions{JobID: shareKey}, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	res, err := fresh.Fetch(ctx, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, res), wireA[3]) {
		t.Fatal("wire artifact diverges from the cached one: share-group seeding broken")
	}

	// A different job ID yields a DIFFERENT augmented artifact — the reason
	// the coordinated-prep contract exists at all.
	other, err := tier.NewShardedClient(storage.ClientOptions{JobID: shareKey + 1}, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	res, err = other.Fetch(ctx, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encode(t, res), wireA[3]) {
		t.Fatal("foreign job ID reproduced the share group's augmentation")
	}
}

// Eviction driven by one tenant's churn never corrupts artifacts another
// tenant already decoded, and re-fetches after eviction read back identical
// bytes. Concurrent tenants hammer the same small cache under -race.
func TestCrossJobEvictionIsolation(t *testing.T) {
	const n = 24
	tier := launchTier(t, n, 1)
	// Tiny cache: a few KiB forces constant eviction under 32×32 tensors.
	shared, err := cache.NewShared(24 << 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Reference encodings straight from the tier.
	ref, err := tier.NewShardedClient(storage.ClientOptions{JobID: shareKey}, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([][]byte, n)
	for s := uint32(0); s < n; s++ {
		res, err := ref.Fetch(ctx, s, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = encode(t, res)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		tf := tenantOver(t, tier, shared, "tenant-"+string(rune('a'+w)))
		wg.Add(1)
		go func(tf *cache.TenantFetcher) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for s := uint32(0); s < n; s++ {
					res, err := tf.Fetch(ctx, s, 3, 1)
					if err != nil {
						t.Errorf("sample %d: %v", s, err)
						return
					}
					got := res.Artifact
					enc, err := got.Encode()
					if err != nil {
						t.Errorf("sample %d: %v", s, err)
						return
					}
					if !bytes.Equal(enc, want[s]) {
						t.Errorf("sample %d corrupted under eviction churn", s)
						return
					}
				}
			}
		}(tf)
	}
	wg.Wait()

	snap := shared.Snapshot()
	if snap.Evictions == 0 {
		t.Fatal("cache never evicted — capacity too generous for the test to mean anything")
	}
	if snap.Bytes > snap.Capacity {
		t.Fatalf("resident bytes %d exceed capacity %d", snap.Bytes, snap.Capacity)
	}
}
