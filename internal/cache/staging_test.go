package cache_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/storage"
)

func TestStagingLedger(t *testing.T) {
	if _, err := cache.NewStaging(0); !errors.Is(err, cache.ErrBadCapacity) {
		t.Fatalf("NewStaging(0) = %v, want ErrBadCapacity", err)
	}
	s, err := cache.NewStaging(100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Over() {
		t.Fatal("empty ledger reports over budget")
	}
	s.Reserve(60)
	if s.Over() {
		t.Fatal("60/100 reports over budget")
	}
	s.Reserve(50)
	if !s.Over() {
		t.Fatal("110/100 not over budget")
	}
	s.Release(60)
	if s.Over() {
		t.Fatal("50/100 still over budget after release")
	}
	snap := s.Snapshot()
	if snap.UsedBytes != 50 || snap.PeakBytes != 110 || snap.Capacity != 100 {
		t.Fatalf("snapshot %+v, want used=50 peak=110 cap=100", snap)
	}
	if snap.Reserves != 2 || snap.Releases != 1 {
		t.Fatalf("snapshot counts %+v, want 2 reserves / 1 release", snap)
	}
}

// TestTenantFetchShardStacksCache: the per-shard issue path must serve
// shared-cache hits locally (zero wire bytes) and retain its misses, exactly
// like FetchBatch — the deepest-first preference of the prefetch stack.
func TestTenantFetchShardStacksCache(t *testing.T) {
	const n = 20
	tier := launchTier(t, n, 2)
	shared, err := cache.NewShared(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	a := tenantOver(t, tier, shared, "tenant-a")
	b := tenantOver(t, tier, shared, "tenant-b")
	ctx := context.Background()

	shards, shardOf, ok := a.ShardInfo()
	if !ok || shards != 2 {
		t.Fatalf("ShardInfo through the cache = (%d, _, %v), want (2, _, true)", shards, ok)
	}
	var owned []uint32
	var splits []int
	for id := uint32(0); id < n; id++ {
		if shardOf(id) == 1 {
			owned = append(owned, id)
			splits = append(splits, 3)
		}
	}
	first, err := a.FetchShard(ctx, 1, owned, splits, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.Err != nil || r.WireBytes == 0 {
			t.Fatalf("cold fetch of sample %d: err=%v wire=%d", r.Sample, r.Err, r.WireBytes)
		}
	}
	second, err := b.FetchShard(ctx, 1, owned, splits, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range second {
		if r.Err != nil {
			t.Fatalf("warm fetch of sample %d: %v", r.Sample, r.Err)
		}
		if r.WireBytes != 0 {
			t.Fatalf("sample %d hit the wire (%d bytes) despite a shared-cache entry", r.Sample, r.WireBytes)
		}
		if !first[k].Artifact.Equal(r.Artifact) {
			t.Fatalf("sample %d: cache hit differs from the wire artifact", r.Sample)
		}
	}
	if hits := shared.TenantStats("tenant-b").Hits; hits != int64(len(owned)) {
		t.Fatalf("tenant-b hits = %d, want %d", hits, len(owned))
	}
	var _ storage.ShardRouter = a // compile-time: the cache stack routes
}
