// Package cache implements the compute-local caching alternative the paper
// contrasts against (its §1: "existing approaches mainly focus on
// selectively caching data in local storage or memory ... limited by the
// capacities of local storage"). Two real byte-capacity caches are
// provided — classic LRU and the admit-until-full, never-evict policy DL
// caches (CoorDL's MinIO cache, Quiver) use for repeated full
// scans — plus a client wrapper for the live trainer and a model-tier
// adapter that folds a cache's steady-state behaviour into a profiled
// trace. Caches hold raw (stage-0) artifacts only: augmented artifacts
// differ every epoch, which is exactly why the paper keeps preprocessing
// online.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Cache is a byte-capacity key/value store over sample IDs.
type Cache interface {
	// Get returns the cached bytes and whether they were present.
	Get(id uint32) ([]byte, bool)
	// Put inserts bytes, evicting as needed. Objects larger than the
	// capacity are not cached.
	Put(id uint32, data []byte)
	// Stats returns a snapshot of the cache's counters.
	Stats() Stats
}

// Stats summarizes cache behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
	Items     int
	Capacity  int64
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ErrBadCapacity reports a non-positive capacity.
var ErrBadCapacity = errors.New("cache: capacity must be positive")

// lruCache is a classic least-recently-used byte cache.
type lruCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recent
	items    map[uint32]*list.Element
	stats    Stats
}

type lruEntry struct {
	id   uint32
	data []byte
}

// NewLRU builds an LRU cache with the given byte capacity.
func NewLRU(capacity int64) (Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[uint32]*list.Element),
	}, nil
}

func (c *lruCache) Get(id uint32) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*lruEntry).data, true
}

func (c *lruCache) Put(id uint32, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		c.bytes += int64(len(data)) - int64(len(el.Value.(*lruEntry).data))
		el.Value.(*lruEntry).data = data
		c.ll.MoveToFront(el)
	} else {
		c.items[id] = c.ll.PushFront(&lruEntry{id: id, data: data})
		c.bytes += int64(len(data))
	}
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, e.id)
		c.bytes -= int64(len(e.data))
		c.stats.Evictions++
	}
}

func (c *lruCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.bytes
	s.Items = len(c.items)
	s.Capacity = c.capacity
	return s
}

// noEvictCache admits objects until full and never evicts — the policy DL
// caches (CoorDL's MinIO cache, Quiver's substitutable cache) use, because
// under repeated full-dataset scans any churn-based policy (LRU, random
// replacement) evicts every object right before its next use and converges
// to ~zero hits, while a frozen resident set yields a stable
// capacity/datasetSize hit rate.
type noEvictCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	data     map[uint32][]byte
	stats    Stats
}

// NewNoEvict builds an admit-until-full, never-evict cache.
func NewNoEvict(capacity int64) (Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	return &noEvictCache{
		capacity: capacity,
		data:     make(map[uint32][]byte),
	}, nil
}

func (c *noEvictCache) Get(id uint32) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.data[id]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	return d, true
}

func (c *noEvictCache) Put(id uint32, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.data[id]; ok {
		delta := int64(len(data)) - int64(len(old))
		if c.bytes+delta > c.capacity {
			return // the grown replacement no longer fits; keep the old copy
		}
		c.bytes += delta
		c.data[id] = data
		return
	}
	if c.bytes+int64(len(data)) > c.capacity {
		return // full: admission denied, nothing is ever evicted
	}
	c.data[id] = data
	c.bytes += int64(len(data))
}

func (c *noEvictCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.bytes
	s.Items = len(c.data)
	s.Capacity = c.capacity
	return s
}
