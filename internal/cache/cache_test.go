package cache

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewLRU(0); err == nil {
		t.Fatal("LRU accepted zero capacity")
	}
	if _, err := NewNoEvict(-1); err == nil {
		t.Fatal("no-evict accepted negative capacity")
	}
}

func TestLRUBasics(t *testing.T) {
	c, err := NewLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, bytes.Repeat([]byte{1}, 40))
	c.Put(2, bytes.Repeat([]byte{2}, 40))
	if d, ok := c.Get(1); !ok || d[0] != 1 {
		t.Fatal("miss after put")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Items != 2 || s.Bytes != 80 || s.Capacity != 100 {
		t.Fatalf("stats %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v", got)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c, _ := NewLRU(100)
	c.Put(1, bytes.Repeat([]byte{1}, 40))
	c.Put(2, bytes.Repeat([]byte{2}, 40))
	c.Get(1) // 1 is now most recent
	c.Put(3, bytes.Repeat([]byte{3}, 40))
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU kept the least-recent entry")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("LRU evicted the most-recent entry")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c, _ := NewLRU(100)
	c.Put(1, bytes.Repeat([]byte{1}, 40))
	c.Put(1, bytes.Repeat([]byte{9}, 60))
	if s := c.Stats(); s.Bytes != 60 || s.Items != 1 {
		t.Fatalf("stats after update: %+v", s)
	}
	d, ok := c.Get(1)
	if !ok || len(d) != 60 || d[0] != 9 {
		t.Fatal("update lost data")
	}
}

func TestOversizedObjectNotCached(t *testing.T) {
	for _, c := range mkCaches(t, 50) {
		c.Put(1, make([]byte, 100))
		if _, ok := c.Get(1); ok {
			t.Fatal("cached an object larger than capacity")
		}
		if c.Stats().Bytes != 0 {
			t.Fatal("oversized object consumed bytes")
		}
	}
}

func mkCaches(t testing.TB, capacity int64) []Cache {
	t.Helper()
	l, err := NewLRU(capacity)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewNoEvict(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return []Cache{l, u}
}

// Property: both caches never exceed capacity and Get returns exactly what
// Put stored.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const capacity = 1 << 12
		l, err := NewLRU(capacity)
		if err != nil {
			return false
		}
		u, err := NewNoEvict(capacity)
		if err != nil {
			return false
		}
		for _, c := range []Cache{l, u} {
			for _, op := range ops {
				id := uint32(op % 64)
				size := int(op%800) + 1
				data := bytes.Repeat([]byte{byte(id)}, size)
				c.Put(id, data)
				if got, ok := c.Get(id); ok {
					if len(got) == 0 || got[0] != byte(id) {
						return false
					}
				}
				if c.Stats().Bytes > capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNoEvictBeatsLRUOnCyclicScan demonstrates the DL-cache insight: under
// repeated full scans larger than the cache, LRU gets ~zero hits while a
// frozen resident set keeps a stable capacity-fraction hit rate.
func TestNoEvictBeatsLRUOnCyclicScan(t *testing.T) {
	const n, objSize, capacity = 200, 10, 500 // cache holds 1/4 of the set
	l, _ := NewLRU(capacity)
	u, _ := NewNoEvict(capacity)
	scan := func(c Cache) float64 {
		obj := bytes.Repeat([]byte{7}, objSize)
		for epoch := 0; epoch < 10; epoch++ {
			for id := uint32(0); id < n; id++ {
				if _, ok := c.Get(id); !ok {
					c.Put(id, obj)
				}
			}
		}
		return c.Stats().HitRate()
	}
	lru := scan(l)
	noEvict := scan(u)
	if lru > 0.05 {
		t.Fatalf("LRU hit rate %.3f on cyclic scan, expected ~0", lru)
	}
	// 9 of 10 epochs hit the 25% resident set: ~0.225 overall.
	if noEvict < 0.15 {
		t.Fatalf("no-evict hit rate %.3f, expected near resident fraction ~0.22", noEvict)
	}
	if noEvict <= lru {
		t.Fatalf("no-evict (%.3f) not better than LRU (%.3f)", noEvict, lru)
	}
}

func TestExpectedHitFraction(t *testing.T) {
	if got := ExpectedHitFraction(25, 100); got != 0.25 {
		t.Fatalf("fraction = %v", got)
	}
	if ExpectedHitFraction(200, 100) != 1 {
		t.Fatal("fraction not clamped")
	}
	if ExpectedHitFraction(0, 100) != 0 || ExpectedHitFraction(10, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestApplyToTrace(t *testing.T) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(500), 5)
	if err != nil {
		t.Fatal(err)
	}
	capacity := tr.TotalRawBytes() / 4
	adjusted, resident := ApplyToTrace(tr, capacity, 9)
	if resident == 0 {
		t.Fatal("nothing resident")
	}
	var cached, total int64
	count := 0
	for i := range adjusted.Records {
		if adjusted.Records[i].StageSizes[0] == 1 {
			cached += tr.Records[i].RawSize
			count++
		}
		total += tr.Records[i].RawSize
	}
	if count != resident {
		t.Fatalf("resident count %d vs marked %d", resident, count)
	}
	if cached > capacity {
		t.Fatalf("resident bytes %d exceed capacity %d", cached, capacity)
	}
	if float64(cached) < float64(capacity)*0.9 {
		t.Fatalf("cache underfilled: %d of %d", cached, capacity)
	}
	// Original untouched.
	if tr.Records[0].StageSizes[0] == 1 && tr.Records[0].RawSize > 1 {
		t.Fatal("ApplyToTrace mutated its input")
	}
	// Zero capacity: no residents.
	_, none := ApplyToTrace(tr, 0, 9)
	if none != 0 {
		t.Fatal("zero capacity marked residents")
	}
}

func TestFetchingCacheLive(t *testing.T) {
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "c", N: 4, Seed: 2, MinDim: 32, MaxDim: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := storage.NewServer(storage.ServerConfig{Store: store, Pipeline: pipeline.DefaultStandard(), Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	defer srv.Close()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := storage.NewClient(conn, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewLRU(10 << 20)
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFetchingCache(client, inner)
	defer fc.Close()

	// First raw fetch misses and populates; second hits with zero wire
	// bytes and identical content.
	first, err := fc.Fetch(context.Background(), 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first.WireBytes == 0 {
		t.Fatal("first fetch reported zero wire bytes")
	}
	second, err := fc.Fetch(context.Background(), 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if second.WireBytes != 0 {
		t.Fatal("cache hit cost wire bytes")
	}
	if !second.Artifact.Equal(first.Artifact) {
		t.Fatal("cached artifact differs")
	}

	// Offloaded fetches bypass the cache.
	off, err := fc.Fetch(context.Background(), 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if off.WireBytes == 0 || off.Artifact.Kind != pipeline.KindImage {
		t.Fatal("offloaded fetch served from cache")
	}
	s := fc.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("cache stats %+v", s)
	}
}
