package cache

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/storage"
)

// Fetcher is the minimal fetch surface the tenant wrapper composes over. It
// is satisfied by *storage.Client, *storage.ReconnectingClient,
// *cluster.ShardedClient, and *FetchingCache, so the cross-job cache stacks
// on any transport the fleet uses.
type Fetcher interface {
	Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error)
	FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error)
	NumSamples() int
	Close() error
}

// TenantFetcher is one tenant's view of the fleet's shared artifact cache:
// fetches are keyed by (dataset, sample, cut) — not by tenant — so artifacts
// another tenant of the same share group already pulled are served from
// local memory at zero wire bytes, with hits and bytes accounted to this
// tenant in the shared cache's per-tenant counters.
//
// Correctness contract: every tenant of a share group must dial the storage
// tier with the group's dataset share key as job ID, so offloaded prefixes
// derive augmentation randomness from the shared seed and the cached bytes
// are bit-identical no matter which tenant fetched first. Hits decode a
// fresh artifact from the immutable cached encoding, so tenants never alias
// (and can never corrupt) each other's buffers.
type TenantFetcher struct {
	inner   Fetcher
	shared  *SharedArtifactCache
	tenant  string
	dataset uint64
}

// NewTenantFetcher wraps inner for one tenant of a share group. dataset is
// the group's share key (the job ID the inner client dialed with).
func NewTenantFetcher(inner Fetcher, shared *SharedArtifactCache, tenant string, dataset uint64) (*TenantFetcher, error) {
	if inner == nil {
		return nil, errors.New("cache: tenant fetcher needs a client")
	}
	if shared == nil {
		return nil, errors.New("cache: tenant fetcher needs a shared cache")
	}
	if tenant == "" {
		return nil, errors.New("cache: tenant fetcher needs a tenant name")
	}
	return &TenantFetcher{inner: inner, shared: shared, tenant: tenant, dataset: dataset}, nil
}

// key builds the fleet-wide artifact key for one fetch. Raw (cut-0)
// artifacts carry no per-epoch randomness and share across epochs. The
// split is a packed directive (see storage.PackDirective): the fidelity
// half must land in its own key dimension — a bare uint8 cast of the packed
// int would collapse a reduced-fidelity fetch onto the full-fidelity key
// and serve truncated bytes to full-fidelity readers.
func (t *TenantFetcher) key(sample uint32, split int, epoch uint64) ArtifactKey {
	cut, fid := storage.UnpackDirective(split)
	k := ArtifactKey{Dataset: t.dataset, Sample: sample, Cut: uint8(cut), Fidelity: uint8(fid)}
	if cut > 0 {
		k.Epoch = epoch
	}
	return k
}

// hit decodes a cached encoding into a fresh, caller-owned artifact.
func hit(sample uint32, split int, data []byte) (storage.FetchResult, error) {
	art, err := pipeline.DecodeArtifact(data)
	if err != nil {
		// A corrupt cache entry would be a bug, not an I/O fault; surface it.
		return storage.FetchResult{}, fmt.Errorf("cache: shared entry for sample %d: %w", sample, err)
	}
	cut, fid := storage.UnpackDirective(split)
	return storage.FetchResult{Sample: sample, Artifact: art, Split: cut, Fidelity: fid, WireBytes: 0}, nil
}

// retain encodes a fetched artifact into a plain owned buffer for the shared
// cache. The source artifact is only read, never retained or released.
func (t *TenantFetcher) retain(key ArtifactKey, res storage.FetchResult) {
	enc, err := res.Artifact.AppendEncode(make([]byte, 0, res.Artifact.WireSize()))
	if err != nil {
		return // unencodable artifact kinds are simply not cached
	}
	t.shared.Put(t.tenant, key, enc)
}

// Fetch serves the sample from the shared cache when any tenant of the share
// group already fetched it, and forwards (then retains) otherwise.
func (t *TenantFetcher) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	k := t.key(sample, split, epoch)
	if data, ok := t.shared.Get(t.tenant, k); ok {
		return hit(sample, split, data)
	}
	res, err := t.inner.Fetch(ctx, sample, split, epoch)
	if err != nil {
		return res, err
	}
	t.retain(k, res)
	return res, nil
}

// FetchBatch serves cache hits locally and forwards only the misses,
// preserving request order. Per-item failures scatter through unchanged;
// only successful fetches populate the cache.
func (t *TenantFetcher) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("cache: %d samples but %d splits", len(samples), len(splits))
	}
	out := make([]storage.FetchResult, len(samples))
	var missSamples []uint32
	var missSplits []int
	var missIdx []int
	for i := range samples {
		k := t.key(samples[i], splits[i], epoch)
		if data, ok := t.shared.Get(t.tenant, k); ok {
			res, err := hit(samples[i], splits[i], data)
			if err != nil {
				return nil, err
			}
			out[i] = res
			continue
		}
		missSamples = append(missSamples, samples[i])
		missSplits = append(missSplits, splits[i])
		missIdx = append(missIdx, i)
	}
	if len(missSamples) > 0 {
		fetched, err := t.inner.FetchBatch(ctx, missSamples, missSplits, epoch)
		if err != nil {
			return nil, err
		}
		for j, res := range fetched {
			out[missIdx[j]] = res
			if res.Err == nil {
				t.retain(t.key(missSamples[j], missSplits[j], epoch), res)
			}
		}
	}
	return out, nil
}

// NumSamples reports the dataset size from the wrapped client.
func (t *TenantFetcher) NumSamples() int { return t.inner.NumSamples() }

// ShardInfo implements storage.ShardRouter by forwarding to the wrapped
// client; ok=false when the transport underneath has no shard structure, in
// which case lookahead falls back to single-link scheduling (through the
// cache as usual).
func (t *TenantFetcher) ShardInfo() (int, func(sample uint32) int, bool) {
	if r, ok := t.inner.(storage.ShardRouter); ok {
		return r.ShardInfo()
	}
	return 1, nil, false
}

// FetchShard implements storage.ShardRouter with the same deepest-first
// preference as FetchBatch: shared-cache hits are served from local memory
// at zero wire bytes, and only the misses go to the shard's link. This is
// what makes the prefetcher's per-shard issue queues cache-aware — a stream
// entry another tenant already pulled never occupies the link at all. When
// the wrapped client has no FetchShard, misses forward through FetchBatch
// (the single-shard fallback, where routing is a no-op).
func (t *TenantFetcher) FetchShard(ctx context.Context, shard int, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("cache: %d samples but %d splits", len(samples), len(splits))
	}
	out := make([]storage.FetchResult, len(samples))
	var missSamples []uint32
	var missSplits []int
	var missIdx []int
	for i := range samples {
		k := t.key(samples[i], splits[i], epoch)
		if data, ok := t.shared.Get(t.tenant, k); ok {
			res, err := hit(samples[i], splits[i], data)
			if err != nil {
				return nil, err
			}
			out[i] = res
			continue
		}
		missSamples = append(missSamples, samples[i])
		missSplits = append(missSplits, splits[i])
		missIdx = append(missIdx, i)
	}
	if len(missSamples) > 0 {
		var fetched []storage.FetchResult
		var err error
		if r, ok := t.inner.(storage.ShardRouter); ok {
			fetched, err = r.FetchShard(ctx, shard, missSamples, missSplits, epoch)
		} else {
			fetched, err = t.inner.FetchBatch(ctx, missSamples, missSplits, epoch)
		}
		if err != nil {
			return nil, err
		}
		for j, res := range fetched {
			out[missIdx[j]] = res
			if res.Err == nil {
				t.retain(t.key(missSamples[j], missSplits[j], epoch), res)
			}
		}
	}
	return out, nil
}

// SetPlanVersion implements storage.PlanVersioner when the wrapped client
// does: cache hits are local and carry no stamp, but every fetch that
// reaches the wire carries the tenant's current plan version.
func (t *TenantFetcher) SetPlanVersion(v uint32) {
	if pv, ok := t.inner.(storage.PlanVersioner); ok {
		pv.SetPlanVersion(v)
	}
}

// Stats returns this tenant's slice of the shared cache accounting.
func (t *TenantFetcher) Stats() TenantCacheStats { return t.shared.TenantStats(t.tenant) }

// Shared exposes the underlying fleet cache (monitor wiring).
func (t *TenantFetcher) Shared() *SharedArtifactCache { return t.shared }

// Close closes the wrapped client.
func (t *TenantFetcher) Close() error { return t.inner.Close() }
