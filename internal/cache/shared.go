package cache

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
)

// This file implements the cross-job artifact cache of the fleet control
// plane. Where the per-job caches above key by sample ID alone, the shared
// cache keys by (dataset, sample, pipeline-cut): tenants training on
// overlapping datasets fetch each offloaded artifact once, and every tenant
// after the first is served from compute-local memory — the CoorDL insight
// ("Analyzing and Mitigating Data Stalls in DNN Training") that coordinating
// the cache across jobs eliminates redundant fetches.
//
// Cross-tenant identity of augmented artifacts requires that every tenant in
// a share group derive augmentation randomness from the same seed: tenants
// dial the storage tier with the group's dataset share key as their job ID
// (coordinated prep), so the server's prefix execution for a given
// (sample, cut, epoch) is bit-identical regardless of which tenant asked.

// ArtifactKey identifies one cacheable artifact fleet-wide. Keys carry no
// tenant identity — that is the whole point.
type ArtifactKey struct {
	// Dataset is the share-group key (conventionally the dataset
	// fingerprint, used as the storage job ID by every tenant in the group).
	Dataset uint64
	// Sample is the sample ID within the dataset.
	Sample uint32
	// Cut is the pipeline cut (split): the number of ops executed on the
	// storage server. Cut 0 is the raw object.
	Cut uint8
	// Fidelity is the progressive dimension: the number of refinement scans
	// withheld from a cut-0 progressive container (0 = the full object).
	// Keys at different fidelities name different byte strings, but a
	// deeper entry (smaller Fidelity) can satisfy a shallower request by
	// truncation — see Get's prefix-aware probe.
	Fidelity uint8
	// Epoch scopes augmented artifacts, which embed per-epoch randomness.
	// Raw (cut-0) artifacts are epoch-invariant and use Epoch 0.
	Epoch uint64
}

// String renders the key for logs.
func (k ArtifactKey) String() string {
	return fmt.Sprintf("ds=%x sample=%d cut=%d fid=%d epoch=%d", k.Dataset, k.Sample, k.Cut, k.Fidelity, k.Epoch)
}

// TenantCacheStats is one tenant's slice of the shared cache's accounting.
type TenantCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Inserts       int64 `json:"inserts"`
	BytesSaved    int64 `json:"bytes_saved"`    // payload bytes served from cache instead of the wire
	BytesInserted int64 `json:"bytes_inserted"` // payload bytes this tenant contributed
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (s TenantCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// SharedSnapshot is the monitor-facing view of the shared cache.
type SharedSnapshot struct {
	Items     int                         `json:"items"`
	Bytes     int64                       `json:"bytes"`
	Capacity  int64                       `json:"capacity"`
	Evictions int64                       `json:"evictions"`
	Hits      int64                       `json:"hits"`
	Misses    int64                       `json:"misses"`
	Tenants   map[string]TenantCacheStats `json:"tenants,omitempty"`
}

// HitRate returns the aggregate hit rate.
func (s SharedSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TenantNames returns the accounted tenants in sorted order.
func (s SharedSnapshot) TenantNames() []string {
	names := make([]string, 0, len(s.Tenants))
	for n := range s.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SharedArtifactCache is a byte-capacity LRU over encoded artifacts, shared
// by every tenant of a fleet and safe for concurrent use. Payloads are
// immutable once inserted: Get returns the stored slice (callers must treat
// it as read-only — decoding copies anyway), and eviction merely drops the
// cache's reference, so artifacts decoded by one tenant are never corrupted
// by another tenant's churn.
type SharedArtifactCache struct {
	mu        sync.Mutex
	capacity  int64
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[ArtifactKey]*list.Element
	tenants   map[string]*TenantCacheStats
	evictions int64
	hits      int64
	misses    int64
}

type sharedEntry struct {
	key  ArtifactKey
	data []byte
}

// NewShared builds a shared artifact cache with the given byte capacity.
func NewShared(capacity int64) (*SharedArtifactCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	return &SharedArtifactCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[ArtifactKey]*list.Element),
		tenants:  make(map[string]*TenantCacheStats),
	}, nil
}

func (c *SharedArtifactCache) tenantLocked(tenant string) *TenantCacheStats {
	s, ok := c.tenants[tenant]
	if !ok {
		s = &TenantCacheStats{}
		c.tenants[tenant] = s
	}
	return s
}

// Get returns the encoded artifact for key, charging the lookup to tenant.
// The returned slice is read-only and remains valid after eviction.
//
// Keys are prefix-aware: when an exact entry for a reduced-fidelity cut-0
// request is absent, a deeper entry of the same sample (fewer scans dropped,
// including the full container) is truncated to the requested fidelity —
// bit-identical to what the storage server would have sliced — and served as
// a hit. Only the exact byte length served is charged to BytesSaved.
func (c *SharedArtifactCache) Get(tenant string, key ArtifactKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tenantLocked(tenant)
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*sharedEntry)
		ts.Hits++
		ts.BytesSaved += int64(len(e.data))
		c.hits++
		return e.data, true
	}
	if key.Cut == 0 && key.Fidelity > 0 {
		probe := key
		for df := uint8(0); df < key.Fidelity; df++ {
			probe.Fidelity = df
			el, ok := c.items[probe]
			if !ok {
				continue
			}
			e := el.Value.(*sharedEntry)
			prefix, ok := truncateToFidelity(e.data, key.Fidelity)
			if !ok {
				continue
			}
			c.ll.MoveToFront(el)
			ts.Hits++
			ts.BytesSaved += int64(len(prefix))
			c.hits++
			return prefix, true
		}
	}
	ts.Misses++
	c.misses++
	return nil, false
}

// Put inserts an encoded artifact under key, charging the insert to tenant.
// The cache takes ownership of data — callers must not mutate it afterwards.
// Objects larger than the capacity are not cached; a key already present is
// kept as-is (first writer wins, so concurrent same-key misses are benign).
func (c *SharedArtifactCache) Put(tenant string, key ArtifactKey, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Identical content by construction (keys name immutable artifacts);
		// just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&sharedEntry{key: key, data: data})
	c.bytes += int64(len(data))
	ts := c.tenantLocked(tenant)
	ts.Inserts++
	ts.BytesInserted += int64(len(data))
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*sharedEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.data))
		c.evictions++
	}
}

// Len returns the resident artifact count.
func (c *SharedArtifactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// TenantStats returns one tenant's counters (zero value for unknown tenants).
func (c *SharedArtifactCache) TenantStats(tenant string) TenantCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.tenants[tenant]; ok {
		return *s
	}
	return TenantCacheStats{}
}

// Snapshot returns the full accounting picture for the monitor.
func (c *SharedArtifactCache) Snapshot() SharedSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := SharedSnapshot{
		Items:     len(c.items),
		Bytes:     c.bytes,
		Capacity:  c.capacity,
		Evictions: c.evictions,
		Hits:      c.hits,
		Misses:    c.misses,
		Tenants:   make(map[string]TenantCacheStats, len(c.tenants)),
	}
	for name, s := range c.tenants {
		out.Tenants[name] = *s
	}
	return out
}
