package cache

import (
	"repro/internal/imaging"
	"repro/internal/pipeline"
)

// truncateToFidelity returns the byte prefix of a cached raw-artifact
// encoding (kind byte + progressive container) that a fetch withholding
// drop refinement scans would have shipped. The result aliases data — the
// cache's entries are immutable and decoding copies, so sharing the backing
// array is safe. ok is false when the entry is not a progressive container,
// does not hold enough scans to cover the request, or drop is zero (the
// caller should use the full entry).
func truncateToFidelity(data []byte, drop uint8) ([]byte, bool) {
	if len(data) < 1 || data[0] != byte(pipeline.KindRaw) {
		return nil, false
	}
	n, ok := prefixLenAtFidelity(data[1:], drop)
	if !ok {
		return nil, false
	}
	return data[:1+n], true
}

// truncateBodyToFidelity is truncateToFidelity over bare container bytes
// (no artifact kind byte) — the form the per-job raw cache stores.
func truncateBodyToFidelity(body []byte, drop uint8) ([]byte, bool) {
	n, ok := prefixLenAtFidelity(body, drop)
	if !ok {
		return nil, false
	}
	return body[:n], true
}

// prefixLenAtFidelity returns the byte length of the progressive prefix a
// fetch withholding drop scans would have shipped for this container body.
func prefixLenAtFidelity(body []byte, drop uint8) (int, bool) {
	if drop == 0 || !imaging.IsProgressive(body) {
		return 0, false
	}
	_, _, _, scans, present, err := imaging.ProgressiveInfo(body)
	if err != nil {
		return 0, false
	}
	// Mirror the server's clamp: never drop the base scan.
	keep := scans - int(drop)
	if keep < 1 {
		keep = 1
	}
	if present < keep {
		return 0, false // shallower than the request; cannot invent scans
	}
	n, err := imaging.PrefixSize(body, keep)
	if err != nil {
		return 0, false
	}
	return n, true
}
