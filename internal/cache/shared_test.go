package cache

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/storage"
)

func TestNewSharedValidation(t *testing.T) {
	if _, err := NewShared(0); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := NewShared(-10); err == nil {
		t.Fatal("accepted negative capacity")
	}
}

func TestSharedGetPutAccounting(t *testing.T) {
	c, err := NewShared(1000)
	if err != nil {
		t.Fatal(err)
	}
	key := ArtifactKey{Dataset: 1, Sample: 5, Cut: 2, Epoch: 3}
	if _, ok := c.Get("a", key); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", key, bytes.Repeat([]byte{7}, 100))
	// Tenant b hits what tenant a inserted — the cross-job point.
	data, ok := c.Get("b", key)
	if !ok || len(data) != 100 || data[0] != 7 {
		t.Fatal("tenant b missed tenant a's artifact")
	}
	a, b := c.TenantStats("a"), c.TenantStats("b")
	if a.Inserts != 1 || a.BytesInserted != 100 || a.Misses != 1 {
		t.Fatalf("tenant a stats %+v", a)
	}
	if b.Hits != 1 || b.BytesSaved != 100 || b.Misses != 0 {
		t.Fatalf("tenant b stats %+v", b)
	}
	snap := c.Snapshot()
	if snap.Items != 1 || snap.Bytes != 100 || snap.Hits != 1 || snap.Misses != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if got := snap.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v", got)
	}
	if names := snap.TenantNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tenant names %v", names)
	}
}

func TestSharedFirstWriterWins(t *testing.T) {
	c, _ := NewShared(1000)
	key := ArtifactKey{Dataset: 1, Sample: 1}
	c.Put("a", key, []byte{1, 1, 1})
	c.Put("b", key, []byte{2, 2, 2}) // same key: refreshed, not replaced
	data, ok := c.Get("a", key)
	if !ok || data[0] != 1 {
		t.Fatal("duplicate insert replaced the original payload")
	}
	if s := c.TenantStats("b"); s.Inserts != 0 {
		t.Fatalf("duplicate insert accounted: %+v", s)
	}
	if c.Len() != 1 {
		t.Fatalf("%d items after duplicate insert", c.Len())
	}
}

func TestSharedEvictionKeepsReadersValid(t *testing.T) {
	c, _ := NewShared(250)
	k1 := ArtifactKey{Dataset: 1, Sample: 1}
	k2 := ArtifactKey{Dataset: 1, Sample: 2}
	k3 := ArtifactKey{Dataset: 1, Sample: 3}
	c.Put("a", k1, bytes.Repeat([]byte{1}, 100))
	c.Put("a", k2, bytes.Repeat([]byte{2}, 100))
	// Tenant b holds a reference to k1's payload across tenant a's churn.
	held, ok := c.Get("b", k1)
	if !ok {
		t.Fatal("missed k1")
	}
	c.Put("a", k3, bytes.Repeat([]byte{3}, 100)) // evicts k2 (k1 is recent)
	if _, ok := c.Get("a", k2); ok {
		t.Fatal("LRU kept the least-recent entry")
	}
	if snap := c.Snapshot(); snap.Evictions != 1 || snap.Bytes > 250 {
		t.Fatalf("snapshot after eviction %+v", snap)
	}
	// Evict k1 too; the held slice must still read back intact.
	c.Put("a", ArtifactKey{Dataset: 1, Sample: 4}, bytes.Repeat([]byte{4}, 100))
	c.Put("a", ArtifactKey{Dataset: 1, Sample: 5}, bytes.Repeat([]byte{5}, 100))
	for i, v := range held {
		if v != 1 {
			t.Fatalf("held[%d] = %d after eviction", i, v)
		}
	}
}

func TestSharedOversizedNotCached(t *testing.T) {
	c, _ := NewShared(50)
	c.Put("a", ArtifactKey{Sample: 1}, make([]byte, 100))
	if c.Len() != 0 {
		t.Fatal("cached an object larger than capacity")
	}
}

func TestSharedConcurrentTenants(t *testing.T) {
	c, _ := NewShared(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", w)
			for i := 0; i < 200; i++ {
				key := ArtifactKey{Dataset: 1, Sample: uint32(i % 50), Cut: 2}
				if data, ok := c.Get(tenant, key); ok {
					if len(data) != 64 {
						t.Errorf("corrupt payload: %d bytes", len(data))
						return
					}
					continue
				}
				c.Put(tenant, key, bytes.Repeat([]byte{byte(i % 50)}, 64))
			}
		}(w)
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Items == 0 || snap.Items > 50 {
		t.Fatalf("%d items for 50 distinct keys", snap.Items)
	}
	// Every cached payload carries the value its key demands.
	for i := 0; i < 50; i++ {
		key := ArtifactKey{Dataset: 1, Sample: uint32(i), Cut: 2}
		if data, ok := c.Get("check", key); ok && data[0] != byte(i) {
			t.Fatalf("key %v holds payload %d", key, data[0])
		}
	}
}

// fakeFetcher serves deterministic raw artifacts and counts wire fetches.
type fakeFetcher struct {
	n       int
	fetches int
	closed  bool
	// lastVersion records SetPlanVersion passthroughs.
	lastVersion uint32
}

func (f *fakeFetcher) payload(sample uint32, split int, epoch uint64) []byte {
	return []byte(fmt.Sprintf("s%d/c%d/e%d", sample, split, epoch))
}

func (f *fakeFetcher) Fetch(_ context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	f.fetches++
	return storage.FetchResult{
		Sample:    sample,
		Artifact:  pipeline.RawArtifact(f.payload(sample, split, epoch)),
		Split:     split,
		WireBytes: 64,
	}, nil
}

func (f *fakeFetcher) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	out := make([]storage.FetchResult, len(samples))
	for i := range samples {
		res, err := f.Fetch(ctx, samples[i], splits[i], epoch)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (f *fakeFetcher) NumSamples() int         { return f.n }
func (f *fakeFetcher) SetPlanVersion(v uint32) { f.lastVersion = v }
func (f *fakeFetcher) Close() error            { f.closed = true; return nil }

func TestTenantFetcherValidation(t *testing.T) {
	shared, _ := NewShared(1 << 20)
	inner := &fakeFetcher{n: 10}
	if _, err := NewTenantFetcher(nil, shared, "a", 1); err == nil {
		t.Fatal("accepted nil client")
	}
	if _, err := NewTenantFetcher(inner, nil, "a", 1); err == nil {
		t.Fatal("accepted nil cache")
	}
	if _, err := NewTenantFetcher(inner, shared, "", 1); err == nil {
		t.Fatal("accepted empty tenant name")
	}
}

func TestTenantFetcherServesPeersFromCache(t *testing.T) {
	shared, _ := NewShared(1 << 20)
	innerA := &fakeFetcher{n: 10}
	innerB := &fakeFetcher{n: 10}
	a, err := NewTenantFetcher(innerA, shared, "a", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTenantFetcher(innerB, shared, "b", 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	resA, err := a.Fetch(ctx, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Fetch(ctx, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if innerB.fetches != 0 {
		t.Fatalf("tenant b went to the wire %d times for a cached artifact", innerB.fetches)
	}
	if resB.WireBytes != 0 {
		t.Fatalf("cache hit reported %d wire bytes", resB.WireBytes)
	}
	if !resA.Artifact.Equal(resB.Artifact) {
		t.Fatal("cached artifact differs from the fetched one")
	}
	// The hit decodes into fresh memory — mutating one never touches the other.
	resB.Artifact.Raw[0] ^= 0xff
	if resA.Artifact.Raw[0] == resB.Artifact.Raw[0] {
		t.Fatal("hit aliases the original artifact")
	}
	if s := b.Stats(); s.Hits != 1 || s.BytesSaved == 0 {
		t.Fatalf("tenant b stats %+v", s)
	}
}

func TestTenantFetcherEpochKeying(t *testing.T) {
	shared, _ := NewShared(1 << 20)
	inner := &fakeFetcher{n: 10}
	f, _ := NewTenantFetcher(inner, shared, "a", 1)
	ctx := context.Background()

	// Raw (cut-0) artifacts are epoch-invariant: epoch 2 hits epoch 1's entry.
	if _, err := f.Fetch(ctx, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch(ctx, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if inner.fetches != 1 {
		t.Fatalf("raw refetched across epochs: %d wire fetches", inner.fetches)
	}

	// Augmented (cut>0) artifacts embed per-epoch randomness: epoch 2 misses.
	if _, err := f.Fetch(ctx, 1, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch(ctx, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if inner.fetches != 3 {
		t.Fatalf("augmented artifact shared across epochs: %d wire fetches", inner.fetches)
	}
}

func TestTenantFetcherBatchPartialHits(t *testing.T) {
	shared, _ := NewShared(1 << 20)
	innerA := &fakeFetcher{n: 10}
	innerB := &fakeFetcher{n: 10}
	a, _ := NewTenantFetcher(innerA, shared, "a", 9)
	b, _ := NewTenantFetcher(innerB, shared, "b", 9)
	ctx := context.Background()

	// Tenant a warms samples 2 and 4.
	if _, err := a.FetchBatch(ctx, []uint32{2, 4}, []int{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Tenant b asks for 1..5; only the cold ones may reach the wire, and the
	// results must come back in request order.
	samples := []uint32{1, 2, 3, 4, 5}
	splits := []int{1, 1, 1, 1, 1}
	out, err := b.FetchBatch(ctx, samples, splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if innerB.fetches != 3 {
		t.Fatalf("%d wire fetches, want 3 misses", innerB.fetches)
	}
	for i, res := range out {
		if res.Sample != samples[i] {
			t.Fatalf("slot %d holds sample %d, want %d", i, res.Sample, samples[i])
		}
		want := innerB.payload(samples[i], 1, 1)
		if !bytes.Equal(res.Artifact.Raw, want) {
			t.Fatalf("sample %d payload %q, want %q", res.Sample, res.Artifact.Raw, want)
		}
	}
	if s := b.Stats(); s.Hits != 2 || s.Misses != 3 {
		t.Fatalf("tenant b stats %+v", s)
	}
	if len(samples) != 5 || len(splits) != 5 {
		t.Fatal("inputs mutated")
	}
	if _, err := b.FetchBatch(ctx, samples, splits[:2], 1); err == nil {
		t.Fatal("accepted mismatched samples/splits")
	}
}

func TestTenantFetcherPassthroughs(t *testing.T) {
	shared, _ := NewShared(1 << 20)
	inner := &fakeFetcher{n: 23}
	f, _ := NewTenantFetcher(inner, shared, "a", 1)
	if f.NumSamples() != 23 {
		t.Fatalf("NumSamples %d", f.NumSamples())
	}
	f.SetPlanVersion(9)
	if inner.lastVersion != 9 {
		t.Fatalf("plan version not forwarded: %d", inner.lastVersion)
	}
	if f.Shared() != shared {
		t.Fatal("Shared() lost the cache")
	}
	if err := f.Close(); err != nil || !inner.closed {
		t.Fatal("Close not forwarded")
	}
}
