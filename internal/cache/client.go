package cache

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

// FetchingCache wraps a storage client with a local raw-object cache. Only
// split-0 fetches are cacheable: partially preprocessed artifacts embed
// per-epoch random augmentations and must be recomputed, which is the
// paper's argument for keeping preprocessing online rather than storing
// preprocessed datasets.
type FetchingCache struct {
	client *storage.Client
	cache  Cache
}

// NewFetchingCache wraps client with cache.
func NewFetchingCache(client *storage.Client, c Cache) *FetchingCache {
	return &FetchingCache{client: client, cache: c}
}

// Fetch returns the sample's artifact. Raw fetches that hit the cache cost
// zero wire bytes; raw misses populate the cache. Offloaded fetches bypass
// the cache entirely. A reduced-fidelity raw directive is served from a
// cached full object by truncating its progressive container locally —
// bit-identical to the prefix the server would slice; only full-fidelity
// fetches populate the cache, so a truncated container never poisons
// full-fidelity readers.
func (f *FetchingCache) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	cut, fid := storage.UnpackDirective(split)
	if cut == 0 {
		if data, ok := f.cache.Get(sample); ok {
			raw := data
			if fid > 0 {
				if prefix, ok := truncateBodyToFidelity(data, uint8(fid)); ok {
					raw = prefix
				}
			}
			return storage.FetchResult{
				Sample:    sample,
				Artifact:  pipeline.RawArtifact(raw),
				Split:     0,
				Fidelity:  fid,
				WireBytes: 0,
			}, nil
		}
	}
	res, err := f.client.Fetch(ctx, sample, split, epoch)
	if err != nil {
		return storage.FetchResult{}, err
	}
	if split == 0 && res.Artifact.Kind == pipeline.KindRaw {
		// Safe to retain: raw artifact payloads are decoded into plain owned
		// memory, never pool-backed buffers (see pipeline.DecodeArtifact), so
		// the cache cannot alias memory the arena might hand out again.
		// (split == 0 means cut 0 AND full fidelity: truncated containers
		// are never inserted.)
		f.cache.Put(sample, res.Artifact.Raw)
	}
	return res, nil
}

// FetchBatch serves cache hits locally and forwards the misses to the
// server in a single batched round trip, preserving request order.
// Per-item failures from the server scatter through to the matching
// FetchResult.Err; only successfully fetched raw items populate the cache.
func (f *FetchingCache) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	if len(samples) != len(splits) {
		return nil, fmt.Errorf("cache: %d samples but %d splits", len(samples), len(splits))
	}
	out := make([]storage.FetchResult, len(samples))
	var missSamples []uint32
	var missSplits []int
	var missIdx []int
	for i := range samples {
		if cut, fid := storage.UnpackDirective(splits[i]); cut == 0 {
			if data, ok := f.cache.Get(samples[i]); ok {
				raw := data
				if fid > 0 {
					if prefix, ok := truncateBodyToFidelity(data, uint8(fid)); ok {
						raw = prefix
					}
				}
				out[i] = storage.FetchResult{Sample: samples[i], Artifact: pipeline.RawArtifact(raw), Fidelity: fid}
				continue
			}
		}
		missSamples = append(missSamples, samples[i])
		missSplits = append(missSplits, splits[i])
		missIdx = append(missIdx, i)
	}
	if len(missSamples) > 0 {
		fetched, err := f.client.FetchBatch(ctx, missSamples, missSplits, epoch)
		if err != nil {
			return nil, err
		}
		for k, res := range fetched {
			i := missIdx[k]
			out[i] = res
			if res.Err == nil && missSplits[k] == 0 && res.Artifact.Kind == pipeline.KindRaw {
				// Raw payloads are plain owned memory (never pooled); see Fetch.
				f.cache.Put(missSamples[k], res.Artifact.Raw)
			}
		}
	}
	return out, nil
}

// NumSamples reports the dataset size from the wrapped client.
func (f *FetchingCache) NumSamples() int { return f.client.NumSamples() }

// SetPlanVersion implements storage.PlanVersioner by forwarding to the
// wrapped session — cache hits are local and carry no stamp, but every
// fetch that does reach the wire carries the current plan version.
func (f *FetchingCache) SetPlanVersion(v uint32) { f.client.SetPlanVersion(v) }

// Stats exposes the underlying cache counters.
func (f *FetchingCache) Stats() Stats { return f.cache.Stats() }

// Close closes the wrapped client.
func (f *FetchingCache) Close() error { return f.client.Close() }

// ExpectedHitFraction estimates the steady-state hit rate of a
// uniform-eviction cache of capacityBytes over repeated full scans of a
// dataset totaling totalBytes: the resident fraction.
func ExpectedHitFraction(capacityBytes, totalBytes int64) float64 {
	if totalBytes <= 0 || capacityBytes <= 0 {
		return 0
	}
	f := float64(capacityBytes) / float64(totalBytes)
	if f > 1 {
		return 1
	}
	return f
}

// ApplyToTrace folds a steady-state cache into a trace copy: a
// deterministic pseudo-random subset of samples totaling ~capacityBytes is
// marked resident, and resident samples' raw (stage-0) wire size drops to
// the 1-byte artifact header — they are served from local memory. Plans
// computed over the adjusted trace automatically skip offloading resident
// samples (their raw form is already free), so SOPHON composes with caching
// for free.
func ApplyToTrace(tr *dataset.Trace, capacityBytes int64, seed uint64) (*dataset.Trace, int) {
	out := &dataset.Trace{Name: tr.Name + "+cache", Records: make([]dataset.Record, tr.N())}
	copy(out.Records, tr.Records)
	if capacityBytes <= 0 {
		return out, 0
	}
	perm := permute(tr.N(), seed)
	var used int64
	resident := 0
	for _, idx := range perm {
		size := out.Records[idx].RawSize
		if used+size > capacityBytes {
			continue
		}
		used += size
		out.Records[idx].StageSizes[0] = 1
		resident++
	}
	return out, resident
}

// permute returns a deterministic permutation of [0, n).
func permute(n int, seed uint64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = splitmix(s)
		j := int(s % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
