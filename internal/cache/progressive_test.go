package cache

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

// progressiveContainer builds one synthetic full-scan progressive container.
func progressiveContainer(t testing.TB, seed uint64) []byte {
	t.Helper()
	im, err := imaging.Synthesize(imaging.SynthParams{W: 64, H: 48, Detail: 0.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	data, err := imaging.EncodeProgressive(im, 80, imaging.MaxScans)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// encodedRaw wraps container bytes in the raw-artifact encoding the shared
// cache stores (kind byte + payload).
func encodedRaw(body []byte) []byte {
	return append([]byte{byte(pipeline.KindRaw)}, body...)
}

func TestTruncateToFidelity(t *testing.T) {
	body := progressiveContainer(t, 1)
	enc := encodedRaw(body)
	_, _, _, scans, _, err := imaging.ProgressiveInfo(body)
	if err != nil {
		t.Fatal(err)
	}
	for drop := 1; drop < scans; drop++ {
		got, ok := truncateToFidelity(enc, uint8(drop))
		if !ok {
			t.Fatalf("drop %d: not truncatable", drop)
		}
		want, err := imaging.SlicePrefix(body, scans-drop)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[1:], want) || got[0] != byte(pipeline.KindRaw) {
			t.Fatalf("drop %d: truncated bytes differ from SlicePrefix", drop)
		}
	}
	// Over-deep drops clamp to the base scan, same as the server.
	deep, ok := truncateToFidelity(enc, 200)
	if !ok {
		t.Fatal("over-deep drop not truncatable")
	}
	base, err := imaging.SlicePrefix(body, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deep[1:], base) {
		t.Fatal("over-deep drop did not clamp to base scan")
	}
	if _, ok := truncateToFidelity(enc, 0); ok {
		t.Fatal("drop 0 should refuse (caller uses the full entry)")
	}
	if _, ok := truncateToFidelity(encodedRaw([]byte("not progressive")), 1); ok {
		t.Fatal("non-progressive payload truncated")
	}
}

// The regression at the heart of the bug sweep: a fidelity-carrying packed
// directive must never collapse onto the full-fidelity key. The old code cast
// the packed int straight to uint8, so PackDirective(0, 2) == 512 keyed as
// cut 0 / full fidelity — poisoning full readers with truncated bytes.
func TestTenantKeyCarriesFidelity(t *testing.T) {
	tf := &TenantFetcher{dataset: 7}
	full := tf.key(3, 0, 5)
	reduced := tf.key(3, storage.PackDirective(0, 2), 5)
	if full == reduced {
		t.Fatal("packed fidelity directive collided with the full-fidelity key")
	}
	if reduced.Cut != 0 || reduced.Fidelity != 2 {
		t.Fatalf("reduced key = %+v", reduced)
	}
	if full.Fidelity != 0 {
		t.Fatalf("full key = %+v", full)
	}
	// Raw keys stay epoch-invariant at every fidelity.
	if tf.key(3, storage.PackDirective(0, 2), 9) != reduced {
		t.Fatal("raw fidelity key depends on epoch")
	}
	// Offloaded cuts keep their epoch scoping under packing.
	if tf.key(3, storage.PackDirective(2, 1), 5).Epoch != 5 {
		t.Fatal("offloaded packed key lost epoch")
	}
}

// A deep cached entry must satisfy a shallower request bit-identically to the
// prefix the storage server would have sliced, and the served length — not
// the full entry length — is what lands in BytesSaved.
func TestSharedCachePrefixAwareHit(t *testing.T) {
	body := progressiveContainer(t, 2)
	_, _, _, scans, _, err := imaging.ProgressiveInfo(body)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewShared(1 << 20)
	fullKey := ArtifactKey{Dataset: 42, Sample: 0, Cut: 0, Fidelity: 0}
	c.Put("a", fullKey, encodedRaw(body))

	req := fullKey
	req.Fidelity = 2
	got, ok := c.Get("b", req)
	if !ok {
		t.Fatal("deep entry did not satisfy shallow request")
	}
	want, err := imaging.SlicePrefix(body, scans-2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[1:], want) {
		t.Fatal("prefix-aware hit differs from server-side SlicePrefix")
	}
	if s := c.TenantStats("b"); s.Hits != 1 || s.BytesSaved != int64(len(got)) {
		t.Fatalf("tenant b stats %+v (served %d bytes)", s, len(got))
	}
	// The reverse direction must miss: a shallow entry cannot invent scans
	// for a deeper (higher-fidelity) request.
	d, _ := NewShared(1 << 20)
	shallowKey := fullKey
	shallowKey.Fidelity = 2
	prefix, _ := truncateToFidelity(encodedRaw(body), 2)
	d.Put("a", shallowKey, prefix)
	if _, ok := d.Get("a", fullKey); ok {
		t.Fatal("shallow entry served a full-fidelity request")
	}
	if _, ok := d.Get("a", ArtifactKey{Dataset: 42, Fidelity: 1}); ok {
		t.Fatal("drop-2 entry served a drop-1 request")
	}
	// Equal or deeper requests are served (exact, then truncated further).
	if _, ok := d.Get("a", shallowKey); !ok {
		t.Fatal("exact reduced-fidelity key missed")
	}
	if _, ok := d.Get("a", ArtifactKey{Dataset: 42, Fidelity: 3}); !ok {
		t.Fatal("drop-2 entry did not serve a drop-3 request")
	}
}

// progFetcher serves one progressive container, honoring fidelity directives
// by slicing exactly like the storage server.
type progFetcher struct {
	body    []byte
	fetches int
}

func (p *progFetcher) Fetch(_ context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	p.fetches++
	cut, fid := storage.UnpackDirective(split)
	raw := p.body
	if cut == 0 && fid > 0 {
		if prefix, ok := truncateBodyToFidelity(p.body, uint8(fid)); ok {
			raw = prefix
		}
	}
	return storage.FetchResult{
		Sample:    sample,
		Artifact:  pipeline.RawArtifact(raw),
		Split:     cut,
		Fidelity:  fid,
		WireBytes: len(raw) + 1,
	}, nil
}

func (p *progFetcher) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	out := make([]storage.FetchResult, len(samples))
	for i := range samples {
		res, err := p.Fetch(ctx, samples[i], splits[i], epoch)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (p *progFetcher) NumSamples() int { return 1 }
func (p *progFetcher) Close() error    { return nil }

// The per-job raw cache must serve reduced-fidelity directives from a cached
// full object at zero wire bytes, without ever inserting truncated bytes.
func TestFetchingCacheServesTruncatedPrefix(t *testing.T) {
	body := progressiveContainer(t, 3)
	_, _, _, scans, _, err := imaging.ProgressiveInfo(body)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := NewLRU(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// nil client: every fetch below must be a cache hit or it panics.
	fc := &FetchingCache{cache: lru}

	// Seed the cache the way a full fetch would.
	lru.Put(0, body)

	fid := storage.PackDirective(0, 1)
	res, err := fc.Fetch(context.Background(), 0, fid, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := imaging.SlicePrefix(body, scans-1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifact.Raw, want) {
		t.Fatal("cached truncation differs from server-side SlicePrefix")
	}
	if res.WireBytes != 0 || res.Fidelity != 1 {
		t.Fatalf("hit result %+v", res)
	}
	// Batch path serves the same bytes.
	batch, err := fc.FetchBatch(context.Background(), []uint32{0}, []int{fid}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch[0].Artifact.Raw, want) {
		t.Fatal("batch truncation differs from SlicePrefix")
	}
	// The full object is still intact in the cache.
	full, err := fc.Fetch(context.Background(), 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Artifact.Raw, body) {
		t.Fatal("full-fidelity read no longer sees the full container")
	}
}

// TenantFetcher end to end: the first tenant pulls the full object; a second
// tenant's reduced-fidelity fetch is served by truncating the shared entry
// instead of going to the wire.
func TestTenantFetcherProgressivePrefixHit(t *testing.T) {
	body := progressiveContainer(t, 4)
	_, _, _, scans, _, err := imaging.ProgressiveInfo(body)
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := NewShared(1 << 20)
	innerA := &progFetcher{body: body}
	innerB := &progFetcher{body: body}
	a, err := NewTenantFetcher(innerA, shared, "a", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTenantFetcher(innerB, shared, "b", 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := a.Fetch(ctx, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := b.Fetch(ctx, 0, storage.PackDirective(0, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if innerB.fetches != 0 {
		t.Fatalf("reduced-fidelity fetch went to the wire %d times despite a deeper cached entry", innerB.fetches)
	}
	want, err := imaging.SlicePrefix(body, scans-2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifact.Raw, want) {
		t.Fatal("tenant prefix hit differs from server-side SlicePrefix")
	}
	if res.Fidelity != 2 || res.Split != 0 {
		t.Fatalf("hit result split=%d fidelity=%d", res.Split, res.Fidelity)
	}
}
