package cache

import (
	"fmt"
	"sync"
)

// Staging is the byte ledger of the prefetch staging area: artifacts a
// lookahead scheduler has fetched but the trainer has not yet consumed.
// Staged bytes are deliberately NOT resident in the shared artifact cache —
// they live in the scheduler's reorder slots under this separate budget, so
// a deep prefetch window can never evict hot cross-job artifacts from the
// LRU; total memory is bounded by (shared cache capacity + staging
// capacity). One Staging may be shared by several trainers of a fleet, in
// which case the budget bounds their combined staging footprint.
//
// The ledger is advisory in the same way the scheduler's gate is: Reserve
// never blocks or fails (completions must land), Over reports exhaustion so
// issuers stop admitting new work. Safe for concurrent use.
type Staging struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64
	reserves int64
	releases int64
}

// StagingSnapshot is the monitor-facing view of the ledger.
type StagingSnapshot struct {
	UsedBytes int64 `json:"used_bytes"`
	PeakBytes int64 `json:"peak_bytes"`
	Capacity  int64 `json:"capacity"`
	Reserves  int64 `json:"reserves"`
	Releases  int64 `json:"releases"`
}

// NewStaging builds a ledger with the given byte capacity.
func NewStaging(capacity int64) (*Staging, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	return &Staging{capacity: capacity}, nil
}

// Reserve charges n staged bytes to the ledger.
func (s *Staging) Reserve(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.used += n
	s.reserves++
	if s.used > s.peak {
		s.peak = s.used
	}
}

// Release returns n staged bytes (consumption or an aborted epoch).
func (s *Staging) Release(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.used -= n
	s.releases++
}

// Over reports whether the budget is exhausted: issuers should stop
// admitting new prefetches until consumption drains staged bytes.
func (s *Staging) Over() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used >= s.capacity
}

// Capacity returns the configured budget.
func (s *Staging) Capacity() int64 {
	return s.capacity
}

// Snapshot copies the ledger state.
func (s *Staging) Snapshot() StagingSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StagingSnapshot{
		UsedBytes: s.used,
		PeakBytes: s.peak,
		Capacity:  s.capacity,
		Reserves:  s.reserves,
		Releases:  s.releases,
	}
}
