package sched

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/policy"
	"repro/internal/simclock"
)

// The fleet coordinator is the multi-tenant control plane: it admits live
// training jobs against SHARED per-shard storage-CPU and link-bandwidth
// budgets, grants each tenant a weighted fair share, re-runs SOPHON's
// decision engine per tenant under its grant, and publishes every tenant's
// plan through its own PlanFeed. Any change to the fleet mix — a job
// arriving, a job departing, the tier's measured bandwidth drifting — bumps
// the fleet generation and republishes every tenant's snapshot, so tenants
// replan exactly the way a single job replans under the adaptive controller.
//
// Budget semantics follow policy.Env: with K shards, Cores and Bandwidth
// are PER-SHARD quantities. Bandwidth is divided weighted-fair among
// tenants (every tenant streams concurrently, so the link is shared
// continuously); cores are granted whole via weighted marginal-gain
// water-filling (a core is indivisible, but the grant applies on each
// shard). A tenant granted zero cores still receives a valid transfer-only
// plan — admission never drops a tenant from the fleet.

// Tenant is one live training job requesting admission.
type Tenant struct {
	// Name identifies the tenant fleet-wide; must be unique and non-empty.
	Name string
	// Weight is the fair-share weight (0 means 1). A weight-2 tenant
	// receives twice the bandwidth share of a weight-1 tenant and its
	// marginal core gains count double in the water-filling loop.
	Weight float64
	// JobID is the tenant's wire identity — the JobID its trainers stamp on
	// storage requests. When set (non-zero), AdmissionWeight resolves it to
	// this tenant's Weight so the storage tier's admission queue drains in
	// the same proportions the coordinator planned. 0 = not wired.
	JobID uint64
	// Trace is the tenant's stage-2 profile.
	Trace *dataset.Trace
	// Env carries the tenant's OWN resources (compute cores, GPU model,
	// storage slowdown). Bandwidth, StorageCores, and Shards are overridden
	// by the coordinator's grants.
	Env policy.Env
	// Dataset is the artifact share key (conventionally the dataset
	// fingerprint): tenants with equal keys train on the same dataset and
	// share offloaded artifacts through the cross-job cache. 0 = private.
	Dataset uint64
}

// weight returns the effective fair-share weight.
func (t Tenant) weight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Grant is what the coordinator assigned one tenant at one generation.
type Grant struct {
	// Cores is the per-shard storage-CPU grant.
	Cores int `json:"cores"`
	// Bandwidth is the per-shard link share in bytes/second.
	Bandwidth float64 `json:"bandwidth"`
	// Plan is the SOPHON plan computed under the grant (never nil).
	Plan *policy.Plan `json:"-"`
	// Predicted is the modeled epoch time under the grant.
	Predicted time.Duration `json:"predicted"`
}

// FleetEvent records one control-plane transition.
type FleetEvent struct {
	// Generation is the fleet plan generation the event produced; it is the
	// plan version stamped on every tenant snapshot published for it.
	Generation uint64 `json:"generation"`
	// Reason names the trigger: "admit:<name>", "depart:<name>", or
	// "bandwidth-drift".
	Reason string `json:"reason"`
	// Tenants is the fleet size after the transition.
	Tenants int `json:"tenants"`
	// Bandwidth is the per-shard link capacity the fleet planned against.
	Bandwidth float64 `json:"bandwidth"`
	// At is the coordinator clock's time of the transition.
	At time.Time `json:"at"`
}

// String renders the event for logs.
func (e FleetEvent) String() string {
	return fmt.Sprintf("gen%d %s (%d tenants, %.1f MB/s)", e.Generation, e.Reason, e.Tenants, e.Bandwidth/1e6)
}

// TenantStatus is one tenant's row of the fleet's observability surface.
type TenantStatus struct {
	Name             string  `json:"name"`
	Weight           float64 `json:"weight"`
	Dataset          uint64  `json:"dataset,omitempty"`
	Cores            int     `json:"cores"`
	BandwidthMBps    float64 `json:"bandwidth_mbps"`
	PlanVersion      uint64  `json:"plan_version"`
	Samples          int     `json:"samples"`
	Offloaded        int     `json:"offloaded"`
	PredictedSeconds float64 `json:"predicted_seconds"`
}

// FleetStatus is the coordinator's slice of /stats.
type FleetStatus struct {
	Generation uint64  `json:"generation"`
	Shards     int     `json:"shards"`
	Cores      int     `json:"cores"`
	CoresUsed  int     `json:"cores_used"`
	Bandwidth  float64 `json:"bandwidth"`
	// Rejections counts admissions refused with ErrFleetSaturated (always 0
	// unless FleetConfig.RejectSaturated is set).
	Rejections uint64         `json:"rejections"`
	Tenants    []TenantStatus `json:"tenants"`
	History    []FleetEvent   `json:"history"`
}

// DefaultFleetDrift is the relative bandwidth change that triggers a fleet
// replan when FleetConfig.DriftThreshold is zero.
const DefaultFleetDrift = 0.2

// ErrFleetSaturated is the typed rejection RejectSaturated admissions
// return: every shared core is granted, the candidate would be admitted at
// the transfer-only floor (zero cores), and offloading would actually help
// it. Callers match it with errors.Is and retry after the fleet drains.
var ErrFleetSaturated = errors.New("sched: fleet saturated")

// FleetConfig configures a coordinator.
type FleetConfig struct {
	// Cores is the shared per-shard storage-CPU budget (≥ 0).
	Cores int
	// Bandwidth is the shared per-shard link capacity in bytes/second.
	Bandwidth float64
	// Shards is the storage tier's server count (0 → 1).
	Shards int
	// Engine plans; nil means the paper-faithful SOPHON engine.
	Engine *policy.Sophon
	// Clock timestamps fleet events (nil → wall clock).
	Clock simclock.Clock
	// MaxHistory bounds the event history (0 → 256).
	MaxHistory int
	// DriftThreshold is the relative bandwidth deviation that triggers a
	// replan via ObserveBandwidth (0 → DefaultFleetDrift).
	DriftThreshold float64
	// RejectSaturated makes Admit refuse — with ErrFleetSaturated — a
	// tenant that would be granted zero cores while every shared core is
	// taken AND a core would actually improve its epoch time. Off by
	// default: the historical behavior admits every tenant, falling back to
	// a transfer-only plan, which is right for closed fleets (benchmarks,
	// replays) but queues unbounded work on an open serving tier.
	RejectSaturated bool
}

// tenantState is one admitted tenant plus its live plan feed.
type tenantState struct {
	Tenant
	feed  *policy.PlanFeed
	grant Grant
}

// Coordinator is the fleet control plane. All methods are safe for
// concurrent use.
type Coordinator struct {
	cores      int
	shards     int
	engine     *policy.Sophon
	clock      simclock.Clock
	maxHistory int
	drift      float64
	rejectSat  bool

	mu         sync.Mutex
	bandwidth  float64 // current per-shard capacity estimate
	generation uint64
	tenants    map[string]*tenantState
	order      []string // admission order, the deterministic planning order
	history    []FleetEvent
	rejections uint64
}

// NewCoordinator builds an empty fleet.
func NewCoordinator(cfg FleetConfig) (*Coordinator, error) {
	if cfg.Cores < 0 {
		return nil, fmt.Errorf("sched: negative core budget %d", cfg.Cores)
	}
	if cfg.Bandwidth <= 0 {
		return nil, errors.New("sched: fleet bandwidth must be positive")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("sched: negative shard count %d", cfg.Shards)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	engine := cfg.Engine
	if engine == nil {
		engine = policy.NewSophon()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real()
	}
	maxHistory := cfg.MaxHistory
	if maxHistory <= 0 {
		maxHistory = 256
	}
	drift := cfg.DriftThreshold
	if drift <= 0 {
		drift = DefaultFleetDrift
	}
	return &Coordinator{
		cores:      cfg.Cores,
		shards:     shards,
		engine:     engine,
		clock:      clock,
		maxHistory: maxHistory,
		drift:      drift,
		rejectSat:  cfg.RejectSaturated,
		bandwidth:  cfg.Bandwidth,
		tenants:    make(map[string]*tenantState),
	}, nil
}

// Admit joins a tenant to the fleet, replans every tenant under the new
// mix, and returns the tenant's live plan provider. The returned provider's
// first snapshot is the admission-generation plan; later fleet transitions
// publish higher generations on it.
func (c *Coordinator) Admit(t Tenant) (policy.PlanProvider, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Name == "" {
		return nil, errors.New("sched: tenant has no name")
	}
	if _, ok := c.tenants[t.Name]; ok {
		return nil, fmt.Errorf("sched: tenant %q already admitted", t.Name)
	}
	if t.Trace == nil || t.Trace.N() == 0 {
		return nil, fmt.Errorf("sched: tenant %q has an empty trace", t.Name)
	}
	if t.JobID != 0 {
		for _, name := range c.order {
			if c.tenants[name].JobID == t.JobID {
				return nil, fmt.Errorf("sched: tenant %q: wire JobID %d already claimed by %q", t.Name, t.JobID, name)
			}
		}
	}
	env := t.Env
	env.StorageCores = 0
	env.Bandwidth = c.bandwidth
	env.Shards = c.shards
	if err := env.Validate(); err != nil {
		return nil, fmt.Errorf("sched: tenant %q: %w", t.Name, err)
	}
	if c.rejectSat && c.cores > 0 {
		starved, err := c.wouldStarveLocked(t)
		if err != nil {
			return nil, err
		}
		if starved {
			c.rejections++
			return nil, fmt.Errorf("sched: tenant %q: %w (%d/%d cores granted, transfer-only floor refused)",
				t.Name, ErrFleetSaturated, c.cores, c.cores)
		}
	}
	st := &tenantState{Tenant: t}
	c.tenants[t.Name] = st
	c.order = append(c.order, t.Name)
	if err := c.replanLocked("admit:" + t.Name); err != nil {
		// Roll the failed admission back so the fleet stays consistent.
		delete(c.tenants, t.Name)
		c.order = c.order[:len(c.order)-1]
		return nil, err
	}
	return st.feed, nil
}

// wouldStarveLocked dry-runs the water-filling allocator with candidate t
// included — no coordinator state is touched — and reports whether t would
// land at zero cores with the budget exhausted while a core would actually
// cut its epoch time. The dry run happens BEFORE Admit mutates anything
// because replanLocked publishes snapshots to earlier tenants mid-loop and
// cannot be rolled back. Called with c.mu held.
func (c *Coordinator) wouldStarveLocked(t Tenant) (bool, error) {
	totalWeight := t.weight()
	for _, name := range c.order {
		totalWeight += c.tenants[name].weight()
	}
	jobs := make([]Job, 0, len(c.order)+1)
	weights := make([]float64, 0, len(c.order)+1)
	for _, name := range c.order {
		st := c.tenants[name]
		env := st.Env
		env.Bandwidth = c.bandwidth * st.weight() / totalWeight
		env.Shards = c.shards
		jobs = append(jobs, Job{Name: name, Trace: st.Trace, Env: env})
		weights = append(weights, st.weight())
	}
	env := t.Env
	env.StorageCores = 0
	env.Bandwidth = c.bandwidth * t.weight() / totalWeight
	env.Shards = c.shards
	cand := Job{Name: t.Name, Trace: t.Trace, Env: env}
	jobs = append(jobs, cand)
	weights = append(weights, t.weight())

	ev := newEvaluator(c.engine)
	granted, _, err := waterFill(jobs, weights, c.cores, ev)
	if err != nil {
		return false, fmt.Errorf("sched: saturation probe for %q: %w", t.Name, err)
	}
	if granted[t.Name] > 0 {
		return false, nil
	}
	used := 0
	for _, g := range granted {
		used += g
	}
	if used < c.cores {
		// Cores are idle: the candidate landed at zero because offloading
		// doesn't help it, not because the fleet is full. Admit it.
		return false, nil
	}
	at0, err := ev.evaluate(cand, 0)
	if err != nil {
		return false, err
	}
	at1, err := ev.evaluate(cand, 1)
	if err != nil {
		return false, err
	}
	return at1.time < at0.time, nil
}

// Depart removes a tenant and replans the remaining fleet, which typically
// widens everyone else's grants. The departed tenant's feed stops updating.
func (c *Coordinator) Depart(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tenants[name]; !ok {
		return fmt.Errorf("sched: tenant %q not admitted", name)
	}
	delete(c.tenants, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return c.replanLocked("depart:" + name)
}

// ObserveBandwidth folds a measured per-shard link capacity into the
// coordinator. If it deviates from the planning estimate by more than the
// drift threshold, the fleet replans against the measurement; otherwise the
// observation is absorbed without a replan. Returns whether a replan ran.
func (c *Coordinator) ObserveBandwidth(measured float64) (bool, error) {
	if measured <= 0 {
		return false, fmt.Errorf("sched: measured bandwidth %.1f", measured)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if math.Abs(measured-c.bandwidth)/c.bandwidth < c.drift {
		return false, nil
	}
	c.bandwidth = measured
	if err := c.replanLocked("bandwidth-drift"); err != nil {
		return false, err
	}
	return true, nil
}

// Provider returns a tenant's live plan feed.
func (c *Coordinator) Provider(name string) (policy.PlanProvider, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.tenants[name]
	if !ok {
		return nil, false
	}
	return st.feed, true
}

// Grants returns every tenant's current grant.
func (c *Coordinator) Grants() map[string]Grant {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Grant, len(c.tenants))
	for name, st := range c.tenants {
		out[name] = st.grant
	}
	return out
}

// AdmissionWeight resolves a wire JobID to the owning tenant's fair-share
// weight — the bridge between the fleet's planned shares and the storage
// tier's admission queue. Plug it into storage.AdmissionConfig.Weight so
// requests drain in the same proportions the coordinator granted bandwidth.
// Unknown or unset (0) JobIDs weigh 1, and departures fall back to 1
// automatically. Safe for concurrent use from the serving hot path.
func (c *Coordinator) AdmissionWeight(jobID uint64) float64 {
	if jobID == 0 {
		return 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.tenants {
		if st.JobID == jobID {
			return st.weight()
		}
	}
	return 1
}

// Generation returns the current fleet plan generation.
func (c *Coordinator) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// History returns a copy of the fleet event history, oldest first.
func (c *Coordinator) History() []FleetEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FleetEvent, len(c.history))
	copy(out, c.history)
	return out
}

// Status snapshots the fleet for the monitor, tenants in admission order.
func (c *Coordinator) Status() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := FleetStatus{
		Generation: c.generation,
		Shards:     c.shards,
		Cores:      c.cores,
		Bandwidth:  c.bandwidth,
		Rejections: c.rejections,
		Tenants:    make([]TenantStatus, 0, len(c.order)),
		History:    append([]FleetEvent(nil), c.history...),
	}
	for _, name := range c.order {
		st := c.tenants[name]
		row := TenantStatus{
			Name:             name,
			Weight:           st.weight(),
			Dataset:          st.Dataset,
			Cores:            st.grant.Cores,
			BandwidthMBps:    st.grant.Bandwidth * 8 / 1e6,
			Samples:          st.Trace.N(),
			PredictedSeconds: st.grant.Predicted.Seconds(),
		}
		if st.grant.Plan != nil {
			row.Offloaded = st.grant.Plan.OffloadedCount()
		}
		if st.feed != nil {
			row.PlanVersion = uint64(st.feed.Current().Version)
		}
		out.CoresUsed += st.grant.Cores
		out.Tenants = append(out.Tenants, row)
	}
	return out
}

// replanLocked recomputes every tenant's grant and plan at a new fleet
// generation and publishes the snapshots. Called with c.mu held.
func (c *Coordinator) replanLocked(reason string) error {
	c.generation++
	gen := c.generation

	if len(c.order) > 0 {
		var totalWeight float64
		for _, name := range c.order {
			totalWeight += c.tenants[name].weight()
		}

		// Weighted fair bandwidth shares, then weighted water-filling for
		// cores, each tenant evaluated under ITS OWN bandwidth grant.
		jobs := make([]Job, 0, len(c.order))
		weights := make([]float64, 0, len(c.order))
		for _, name := range c.order {
			st := c.tenants[name]
			env := st.Env
			env.Bandwidth = c.bandwidth * st.weight() / totalWeight
			env.Shards = c.shards
			jobs = append(jobs, Job{Name: name, Trace: st.Trace, Env: env})
			weights = append(weights, st.weight())
		}
		granted, current, err := waterFill(jobs, weights, c.cores, newEvaluator(c.engine))
		if err != nil {
			c.generation--
			return fmt.Errorf("sched: fleet replan (%s): %w", reason, err)
		}

		for _, j := range jobs {
			st := c.tenants[j.Name]
			o := current[j.Name]
			st.grant = Grant{
				Cores:     granted[j.Name],
				Bandwidth: j.Env.Bandwidth,
				Plan:      o.plan,
				Predicted: o.time,
			}
			env := j.Env
			env.StorageCores = granted[j.Name]
			snap := &policy.PlanSnapshot{
				Version: policy.PlanVersion(gen),
				Plan:    o.plan,
				Env:     env,
				Reason:  reason,
			}
			// Neither call can fail here (the plan is non-nil and gen strictly
			// increases), but a surfaced error must not roll the generation
			// back: earlier tenants in this loop already published it.
			if st.feed == nil {
				feed, err := policy.NewPlanFeed(snap)
				if err != nil {
					return err
				}
				st.feed = feed
			} else if err := st.feed.Publish(snap); err != nil {
				return err
			}
		}
	}

	c.history = append(c.history, FleetEvent{
		Generation: gen,
		Reason:     reason,
		Tenants:    len(c.tenants),
		Bandwidth:  c.bandwidth,
		At:         c.clock.Now(),
	})
	if len(c.history) > c.maxHistory {
		c.history = c.history[len(c.history)-c.maxHistory:]
	}
	return nil
}

// ShareGroups returns the tenants of each non-private dataset share key, in
// admission order — the groups whose artifacts the cross-job cache
// deduplicates.
func (c *Coordinator) ShareGroups() map[uint64][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64][]string)
	for _, name := range c.order {
		st := c.tenants[name]
		if st.Dataset != 0 {
			out[st.Dataset] = append(out[st.Dataset], name)
		}
	}
	return out
}
