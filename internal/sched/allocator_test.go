package sched

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/netsim"
)

// Table tests for the allocator's edge paths: a zero-core job must still
// carry a valid transfer-only plan, a single job absorbs the whole budget it
// can use, and an exhausted budget leaves late jobs planned at zero cores.
func TestAllocateEdgeCases(t *testing.T) {
	jobs := makeJobs(t)
	cases := []struct {
		name  string
		jobs  []Job
		cores int
		check func(t *testing.T, jobs []Job, a Allocation)
	}{
		{
			name:  "zero-core jobs get transfer-only plans",
			jobs:  jobs,
			cores: 0,
			check: func(t *testing.T, jobs []Job, a Allocation) {
				for _, j := range jobs {
					plan, ok := a.Plans[j.Name]
					if !ok || plan == nil {
						t.Fatalf("job %s dropped from the allocation", j.Name)
					}
					if plan.N() != j.Trace.N() {
						t.Fatalf("job %s: plan covers %d of %d samples", j.Name, plan.N(), j.Trace.N())
					}
					if plan.OffloadedCount() != 0 {
						t.Fatalf("job %s offloads %d samples with 0 cores", j.Name, plan.OffloadedCount())
					}
					if a.Predicted[j.Name] <= 0 {
						t.Fatalf("job %s has no predicted epoch time", j.Name)
					}
				}
			},
		},
		{
			name:  "single job absorbs the budget",
			jobs:  jobs[:1],
			cores: 8,
			check: func(t *testing.T, jobs []Job, a Allocation) {
				if len(a.Cores) != 1 {
					t.Fatalf("allocation covers %d jobs, want 1", len(a.Cores))
				}
				if a.Cores[jobs[0].Name] == 0 {
					t.Fatal("network-bound single job granted nothing")
				}
				if a.Plans[jobs[0].Name].OffloadedCount() == 0 {
					t.Fatal("granted cores but the plan offloads nothing")
				}
			},
		},
		{
			name:  "cores exhausted before every job is served",
			jobs:  jobs,
			cores: 1,
			check: func(t *testing.T, jobs []Job, a Allocation) {
				spent, zeroed := 0, 0
				for _, j := range jobs {
					c := a.Cores[j.Name]
					spent += c
					if c == 0 {
						zeroed++
						if a.Plans[j.Name].OffloadedCount() != 0 {
							t.Fatalf("job %s offloads without a core", j.Name)
						}
					}
				}
				if spent != 1 {
					t.Fatalf("spent %d of 1 core", spent)
				}
				if zeroed != len(jobs)-1 {
					t.Fatalf("%d of %d jobs at zero cores, want %d", zeroed, len(jobs), len(jobs)-1)
				}
				// The starved jobs still carry usable transfer-only plans.
				for _, j := range jobs {
					if a.Plans[j.Name] == nil || a.Plans[j.Name].N() != j.Trace.N() {
						t.Fatalf("job %s lacks a full-coverage plan", j.Name)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Allocate(tc.jobs, tc.cores, nil)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, tc.jobs, a)
		})
	}
}

// A compute-bound job (huge local CPU pool, fat link) gains nothing from
// offloading; the allocator must leave it at zero cores rather than burn
// budget, and its plan stays transfer-only.
func TestAllocateSkipsComputeBoundJob(t *testing.T) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(800), 7)
	if err != nil {
		t.Fatal(err)
	}
	env := jobEnv()
	env.Bandwidth = netsim.Mbps(100_000) // link is never the bottleneck
	jobs := []Job{{Name: "compute-bound", Trace: tr, Env: env}}
	a, err := Allocate(jobs, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Cores["compute-bound"]; got != 0 {
		t.Fatalf("compute-bound job granted %d cores", got)
	}
	if a.Plans["compute-bound"].OffloadedCount() != 0 {
		t.Fatal("compute-bound job offloads")
	}
}
