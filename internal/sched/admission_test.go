package sched

import (
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestAdmissionWeightResolvesJobIDs: the JobID → weight bridge follows the
// live roster — admissions register, departures fall back to 1.
func TestAdmissionWeightResolvesJobIDs(t *testing.T) {
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	heavy := fleetTenant(t, "heavy", 1)
	heavy.Weight = 3
	heavy.JobID = 11
	light := fleetTenant(t, "light", 2)
	light.JobID = 22
	for _, tn := range []Tenant{heavy, light} {
		if _, err := c.Admit(tn); err != nil {
			t.Fatal(err)
		}
	}
	if w := c.AdmissionWeight(11); w != 3 {
		t.Fatalf("heavy weight %v, want 3", w)
	}
	if w := c.AdmissionWeight(22); w != 1 {
		t.Fatalf("light weight %v, want 1", w)
	}
	if w := c.AdmissionWeight(99); w != 1 {
		t.Fatalf("unknown JobID weight %v, want 1", w)
	}
	if w := c.AdmissionWeight(0); w != 1 {
		t.Fatalf("unset JobID weight %v, want 1", w)
	}
	// A duplicate wire identity would make the mapping ambiguous.
	dup := fleetTenant(t, "dup", 3)
	dup.JobID = 11
	if _, err := c.Admit(dup); err == nil {
		t.Fatal("admitted duplicate JobID")
	}
	if err := c.Depart("heavy"); err != nil {
		t.Fatal(err)
	}
	if w := c.AdmissionWeight(11); w != 1 {
		t.Fatalf("departed tenant still weighs %v", w)
	}
}

// TestAdmissionDrainsByFleetWeights is the end-to-end fairness claim: with
// the coordinator's weights plugged into the storage admission controller, a
// 3:1 tenant weight drains the overload queue ~3:1 until the heavy tenant's
// backlog is spent.
func TestAdmissionDrainsByFleetWeights(t *testing.T) {
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	heavy := fleetTenant(t, "heavy", 1)
	heavy.Weight = 3
	heavy.JobID = 11
	light := fleetTenant(t, "light", 2)
	light.Weight = 1
	light.JobID = 22
	for _, tn := range []Tenant{heavy, light} {
		if _, err := c.Admit(tn); err != nil {
			t.Fatal(err)
		}
	}
	adm, err := storage.NewAdmissionController(storage.AdmissionConfig{
		MaxInFlightBytes: 100,
		Weight:           c.AdmissionWeight,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the budget, then pile up an equal backlog per tenant. Each
	// queued request is budget-sized, so releases drain the queue strictly
	// one at a time in WFQ order.
	hold, err := adm.Acquire(99, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	const perTenant = 24
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for _, jobID := range []uint64{11, 22} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				release, err := adm.Acquire(id, 100, nil)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				release()
			}(jobID)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for adm.Stats().QueueDepth < 2*perTenant {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", adm.Stats().QueueDepth, 2*perTenant)
		}
		time.Sleep(time.Millisecond)
	}
	hold() // open the floodgate; the queue drains serially in WFQ order
	wg.Wait()

	if len(order) != 2*perTenant {
		t.Fatalf("drained %d grants, want %d", len(order), 2*perTenant)
	}
	// While both tenants have backlog (the first 32 grants), WFQ with
	// weights 3:1 must interleave ~3 heavy per light. The tail is all-light
	// by construction (heavy runs out), so it is excluded.
	window := order[:32]
	heavyN := 0
	for _, id := range window {
		if id == 11 {
			heavyN++
		}
	}
	lightN := len(window) - heavyN
	if lightN == 0 {
		t.Fatalf("light tenant starved across %d grants", len(window))
	}
	ratio := float64(heavyN) / float64(lightN)
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("drain ratio %.2f (heavy %d, light %d), want ~3:1", ratio, heavyN, lightN)
	}
}
