package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/simclock"
)

func fleetConfig() FleetConfig {
	return FleetConfig{
		Cores:     8,
		Bandwidth: netsim.Mbps(1000),
		Clock:     simclock.NewVirtual(time.Unix(0, 0)),
	}
}

func fleetTenant(t testing.TB, name string, seed uint64) Tenant {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(1000), seed)
	if err != nil {
		t.Fatal(err)
	}
	return Tenant{Name: name, Trace: tr, Env: jobEnv()}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(FleetConfig{Cores: -1, Bandwidth: 1}); err == nil {
		t.Fatal("accepted negative cores")
	}
	if _, err := NewCoordinator(FleetConfig{Cores: 1}); err == nil {
		t.Fatal("accepted zero bandwidth")
	}
	if _, err := NewCoordinator(FleetConfig{Cores: 1, Bandwidth: 1, Shards: -2}); err == nil {
		t.Fatal("accepted negative shards")
	}
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(Tenant{}); err == nil {
		t.Fatal("admitted unnamed tenant")
	}
	if _, err := c.Admit(Tenant{Name: "t", Trace: &dataset.Trace{}, Env: jobEnv()}); err == nil {
		t.Fatal("admitted empty trace")
	}
	if err := c.Depart("ghost"); err == nil {
		t.Fatal("departed unknown tenant")
	}
	if _, err := c.ObserveBandwidth(-5); err == nil {
		t.Fatal("accepted negative bandwidth measurement")
	}
	// A failed admission must not leak into the fleet.
	if g := c.Generation(); g != 0 {
		t.Fatalf("failed admissions bumped the generation to %d", g)
	}
	if len(c.Grants()) != 0 {
		t.Fatal("failed admissions left tenants behind")
	}
}

func TestCoordinatorAdmitDepartReplans(t *testing.T) {
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	provA, err := c.Admit(fleetTenant(t, "a", 1))
	if err != nil {
		t.Fatal(err)
	}
	snapA1 := provA.Current()
	if snapA1.Version != 1 || snapA1.Reason != "admit:a" {
		t.Fatalf("first snapshot: version %d reason %q", snapA1.Version, snapA1.Reason)
	}
	// Alone, tenant a gets the whole link and the whole core budget it can use.
	grants := c.Grants()
	if grants["a"].Bandwidth != netsim.Mbps(1000) {
		t.Fatalf("solo tenant granted %.0f B/s of the link", grants["a"].Bandwidth)
	}

	subA := provA.Subscribe()
	provB, err := c.Admit(fleetTenant(t, "b", 2))
	if err != nil {
		t.Fatal(err)
	}
	// b's arrival republishes a's plan at the next generation with a halved
	// link share.
	snapA2 := <-subA
	if snapA2.Version != 2 || snapA2.Reason != "admit:b" {
		t.Fatalf("replan snapshot: version %d reason %q", snapA2.Version, snapA2.Reason)
	}
	if got := snapA2.Env.Bandwidth; got != netsim.Mbps(500) {
		t.Fatalf("tenant a's share after b arrived: %.0f B/s", got)
	}
	if provB.Current().Version != 2 {
		t.Fatalf("tenant b admitted at version %d", provB.Current().Version)
	}

	// Departure widens the survivor's grant again.
	subA2 := provA.Subscribe()
	if err := c.Depart("b"); err != nil {
		t.Fatal(err)
	}
	snapA3 := <-subA2
	if snapA3.Version != 3 || snapA3.Reason != "depart:b" {
		t.Fatalf("post-departure snapshot: version %d reason %q", snapA3.Version, snapA3.Reason)
	}
	if got := snapA3.Env.Bandwidth; got != netsim.Mbps(1000) {
		t.Fatalf("tenant a's share after b departed: %.0f B/s", got)
	}
	// The departed tenant's feed froze at its last generation.
	if provB.Current().Version != 2 {
		t.Fatalf("departed tenant's feed moved to %d", provB.Current().Version)
	}

	hist := c.History()
	if len(hist) != 3 {
		t.Fatalf("history has %d events, want 3", len(hist))
	}
	for i, e := range hist {
		if e.Generation != uint64(i+1) {
			t.Fatalf("event %d at generation %d", i, e.Generation)
		}
	}
}

func TestCoordinatorWeightedShares(t *testing.T) {
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	heavy := fleetTenant(t, "heavy", 3)
	heavy.Weight = 3
	if _, err := c.Admit(heavy); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "light", 4)); err != nil {
		t.Fatal(err)
	}
	grants := c.Grants()
	wantHeavy := netsim.Mbps(1000) * 3 / 4
	if got := grants["heavy"].Bandwidth; got != wantHeavy {
		t.Fatalf("weight-3 tenant granted %.0f B/s, want %.0f", got, wantHeavy)
	}
	if got := grants["light"].Bandwidth; got != netsim.Mbps(1000)/4 {
		t.Fatalf("weight-1 tenant granted %.0f B/s, want %.0f", got, netsim.Mbps(1000)/4)
	}
}

// A tenant the water-filling loop starves of cores must still hold a valid
// transfer-only plan — admission never drops a tenant.
func TestCoordinatorZeroCoreTenantStillPlanned(t *testing.T) {
	cfg := fleetConfig()
	cfg.Cores = 1
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"t0", "t1", "t2"} {
		if _, err := c.Admit(fleetTenant(t, name, uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	starved := 0
	for name, g := range c.Grants() {
		if g.Plan == nil || g.Plan.N() == 0 {
			t.Fatalf("tenant %s has no plan", name)
		}
		if g.Cores == 0 {
			starved++
			if g.Plan.OffloadedCount() != 0 {
				t.Fatalf("tenant %s offloads with 0 cores", name)
			}
		}
		if g.Predicted <= 0 {
			t.Fatalf("tenant %s has no predicted epoch", name)
		}
	}
	if starved != 2 {
		t.Fatalf("%d tenants starved under a 1-core budget, want 2", starved)
	}
	status := c.Status()
	if status.CoresUsed != 1 {
		t.Fatalf("status reports %d cores used, want 1", status.CoresUsed)
	}
}

func TestCoordinatorBandwidthDrift(t *testing.T) {
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	prov, err := c.Admit(fleetTenant(t, "a", 20))
	if err != nil {
		t.Fatal(err)
	}
	// Within the 20% threshold: absorbed, no replan.
	replanned, err := c.ObserveBandwidth(netsim.Mbps(900))
	if err != nil {
		t.Fatal(err)
	}
	if replanned {
		t.Fatal("10% deviation triggered a replan")
	}
	if g := c.Generation(); g != 1 {
		t.Fatalf("generation moved to %d without a replan", g)
	}
	// Past the threshold: the fleet replans against the measurement.
	sub := prov.Subscribe()
	replanned, err = c.ObserveBandwidth(netsim.Mbps(400))
	if err != nil {
		t.Fatal(err)
	}
	if !replanned {
		t.Fatal("60% deviation absorbed silently")
	}
	snap := <-sub
	if snap.Reason != "bandwidth-drift" || snap.Version != 2 {
		t.Fatalf("drift snapshot: version %d reason %q", snap.Version, snap.Reason)
	}
	if snap.Env.Bandwidth != netsim.Mbps(400) {
		t.Fatalf("replanned at %.0f B/s, want measured capacity", snap.Env.Bandwidth)
	}
}

func TestCoordinatorStatusAndShareGroups(t *testing.T) {
	c, err := NewCoordinator(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := fleetTenant(t, "a", 30)
	a.Dataset = 42
	b := fleetTenant(t, "b", 31)
	b.Dataset = 42
	solo := fleetTenant(t, "solo", 32)
	for _, tn := range []Tenant{a, b, solo} {
		if _, err := c.Admit(tn); err != nil {
			t.Fatal(err)
		}
	}
	groups := c.ShareGroups()
	if len(groups) != 1 || len(groups[42]) != 2 {
		t.Fatalf("share groups %v, want {42: [a b]}", groups)
	}
	st := c.Status()
	if st.Generation != 3 || len(st.Tenants) != 3 {
		t.Fatalf("status: generation %d, %d tenants", st.Generation, len(st.Tenants))
	}
	// Rows come back in admission order with live plan versions.
	for i, want := range []string{"a", "b", "solo"} {
		row := st.Tenants[i]
		if row.Name != want {
			t.Fatalf("row %d is %q, want %q", i, row.Name, want)
		}
		if row.PlanVersion != st.Generation {
			t.Fatalf("tenant %s at plan version %d, fleet at %d", row.Name, row.PlanVersion, st.Generation)
		}
		if row.Samples != 1000 {
			t.Fatalf("tenant %s reports %d samples", row.Name, row.Samples)
		}
	}
}

// The water-filling total across the fleet never exceeds the shared budget,
// and the fleet objective improves over granting nobody cores.
func TestCoordinatorRespectsCoreBudget(t *testing.T) {
	cfg := fleetConfig()
	cfg.Cores = 4
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Admit(fleetTenant(t, string(rune('a'+i)), uint64(40+i))); err != nil {
			t.Fatal(err)
		}
	}
	spent := 0
	var total time.Duration
	for _, g := range c.Grants() {
		spent += g.Cores
		total += g.Predicted
	}
	if spent > 4 {
		t.Fatalf("fleet spent %d of 4 shared cores", spent)
	}
	if spent == 0 {
		t.Fatal("network-bound fleet granted no cores at all")
	}

	// Compare with a zero-core fleet over the same tenants.
	zeroCfg := fleetConfig()
	zeroCfg.Cores = 0
	z, err := NewCoordinator(zeroCfg)
	if err != nil {
		t.Fatal(err)
	}
	var zeroTotal time.Duration
	for i := 0; i < 3; i++ {
		if _, err := z.Admit(fleetTenant(t, string(rune('a'+i)), uint64(40+i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range z.Grants() {
		zeroTotal += g.Predicted
	}
	if total >= zeroTotal {
		t.Fatalf("shared cores did not improve the fleet: %v vs %v", total, zeroTotal)
	}
}

var _ policy.PlanProvider = (*policy.PlanFeed)(nil)

// TestRejectSaturated: with one shared core and RejectSaturated on, the
// second tenant — which would land at the transfer-only floor even though a
// core would help it — is refused with the typed error, and the refusal
// leaves no trace in the fleet beyond the rejection counter.
func TestRejectSaturated(t *testing.T) {
	cfg := FleetConfig{
		Cores:           1,
		Bandwidth:       netsim.Mbps(300),
		Clock:           simclock.NewVirtual(time.Unix(0, 0)),
		RejectSaturated: true,
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Grants()["a"].Cores; got != 1 {
		t.Fatalf("tenant a holds %d cores, want the whole budget (1) for a saturation test", got)
	}
	genBefore := c.Generation()

	_, err = c.Admit(fleetTenant(t, "b", 2))
	if !errors.Is(err, ErrFleetSaturated) {
		t.Fatalf("saturated admission returned %v, want ErrFleetSaturated", err)
	}
	if g := c.Generation(); g != genBefore {
		t.Fatalf("rejection bumped the generation %d → %d", genBefore, g)
	}
	if _, ok := c.Grants()["b"]; ok {
		t.Fatal("rejected tenant left a grant behind")
	}
	st := c.Status()
	if st.Rejections != 1 {
		t.Fatalf("Rejections = %d, want 1", st.Rejections)
	}
	if len(st.Tenants) != 1 {
		t.Fatalf("fleet has %d tenants after rejection, want 1", len(st.Tenants))
	}

	// After the incumbent departs, the same tenant is admitted.
	if err := c.Depart("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "b", 2)); err != nil {
		t.Fatalf("admission after drain: %v", err)
	}
}

// TestRejectSaturatedDefaultOff: the historical behavior — admit at zero
// cores with a transfer-only plan — is unchanged unless opted into.
func TestRejectSaturatedDefaultOff(t *testing.T) {
	cfg := FleetConfig{
		Cores:     1,
		Bandwidth: netsim.Mbps(300),
		Clock:     simclock.NewVirtual(time.Unix(0, 0)),
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "b", 2)); err != nil {
		t.Fatalf("default config rejected a tenant: %v", err)
	}
	grants := c.Grants()
	if grants["a"].Cores+grants["b"].Cores != 1 {
		t.Fatalf("grants %v don't sum to the budget", grants)
	}
	if grants["b"].Plan == nil {
		t.Fatal("zero-core tenant has no plan")
	}
	if c.Status().Rejections != 0 {
		t.Fatalf("Rejections = %d without RejectSaturated", c.Status().Rejections)
	}
}

// TestRejectSaturatedIdleCores: a candidate that would be granted zero cores
// while cores sit idle (offloading doesn't help it) is still admitted — the
// fleet isn't saturated, the tenant just doesn't want cores.
func TestRejectSaturatedIdleCores(t *testing.T) {
	cfg := FleetConfig{
		Cores:           64, // far more than two tenants can use
		Bandwidth:       netsim.Mbps(4000),
		Clock:           simclock.NewVirtual(time.Unix(0, 0)),
		RejectSaturated: true,
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(fleetTenant(t, "b", 2)); err != nil {
		t.Fatalf("unsaturated fleet rejected a tenant: %v", err)
	}
	if c.Status().Rejections != 0 {
		t.Fatalf("Rejections = %d on an unsaturated fleet", c.Status().Rejections)
	}
}
