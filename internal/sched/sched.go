// Package sched implements the paper's multi-tenant future-work extension,
// grown into a fleet control plane. The core is a marginal-gain
// water-filling allocator: each storage-CPU core goes to the job whose
// predicted epoch time (after re-running SOPHON's decision engine at the
// candidate core count) drops the most, until cores run out or no job
// benefits. The fleet coordinator (fleet.go) generalizes it to weighted
// fair-share admission of live tenants against shared per-shard core and
// bandwidth budgets, with per-tenant plan feeds.
package sched

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/policy"
)

// Job is one tenant: a profiled dataset plus its training environment. The
// environment's StorageCores field is ignored — the allocator decides it.
type Job struct {
	Name  string
	Trace *dataset.Trace
	Env   policy.Env
}

// Allocation is the scheduler's output. Every job appears in all three
// maps — a job granted zero cores still carries a valid transfer-only plan
// and a predicted epoch time; nothing is silently dropped.
type Allocation struct {
	// Cores maps job name to granted storage cores.
	Cores map[string]int
	// Plans maps job name to the SOPHON plan at the granted core count.
	Plans map[string]*policy.Plan
	// Predicted maps job name to the modeled epoch time.
	Predicted map[string]time.Duration
}

// TotalPredicted sums the predicted epoch times — the objective the
// allocator minimizes.
func (a Allocation) TotalPredicted() time.Duration {
	var sum time.Duration
	for _, d := range a.Predicted {
		sum += d
	}
	return sum
}

// checkJobs validates a job set: unique non-empty names, non-empty traces,
// and environments valid at every candidate core count.
func checkJobs(jobs []Job) error {
	if len(jobs) == 0 {
		return errors.New("sched: no jobs")
	}
	seen := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		if j.Name == "" {
			return fmt.Errorf("sched: job %d has no name", i)
		}
		if seen[j.Name] {
			return fmt.Errorf("sched: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.Trace == nil || j.Trace.N() == 0 {
			return fmt.Errorf("sched: job %q has an empty trace", j.Name)
		}
		env := j.Env
		env.StorageCores = 0
		if err := env.Validate(); err != nil {
			return fmt.Errorf("sched: job %q: %w", j.Name, err)
		}
	}
	return nil
}

// outcome is one (job, cores) planning result.
type outcome struct {
	plan *policy.Plan
	time time.Duration
}

// evaluator plans jobs at candidate core counts, memoized per (job, cores).
type evaluator struct {
	engine *policy.Sophon
	memo   map[string]outcome
}

func newEvaluator(engine *policy.Sophon) *evaluator {
	if engine == nil {
		engine = policy.NewSophon()
	}
	return &evaluator{engine: engine, memo: make(map[string]outcome)}
}

// evaluate returns the plan and predicted epoch for a job at c cores. The
// plan is never nil: a job that cannot offload (zero cores, or a workload
// that is not network-bound) gets the transfer-only plan.
func (e *evaluator) evaluate(j Job, cores int) (outcome, error) {
	key := fmt.Sprintf("%s/%d", j.Name, cores)
	if o, ok := e.memo[key]; ok {
		return o, nil
	}
	env := j.Env
	env.StorageCores = cores
	plan, err := e.engine.Plan(j.Trace, env)
	if err != nil {
		return outcome{}, fmt.Errorf("sched: plan %q at %d cores: %w", j.Name, cores, err)
	}
	if plan == nil {
		// Defensive: no engine path returns (nil, nil) today, but the
		// allocation invariant — every job holds a usable plan — must not
		// depend on that.
		plan, err = policy.TransferOnly(j.Name, j.Trace.N())
		if err != nil {
			return outcome{}, err
		}
	}
	m, err := policy.ModelFor(j.Trace, plan, env)
	if err != nil {
		return outcome{}, fmt.Errorf("sched: model %q at %d cores: %w", j.Name, cores, err)
	}
	o := outcome{plan: plan, time: m.Predicted()}
	e.memo[key] = o
	return o, nil
}

// waterFill runs the marginal-gain loop over validated jobs: each core goes
// to the job maximizing weight × predicted-epoch-time drop. weights may be
// nil (all 1). Returns every job's grant and final outcome.
func waterFill(jobs []Job, weights []float64, totalCores int, ev *evaluator) (map[string]int, map[string]outcome, error) {
	granted := make(map[string]int, len(jobs))
	current := make(map[string]outcome, len(jobs))
	for _, j := range jobs {
		o, err := ev.evaluate(j, 0)
		if err != nil {
			return nil, nil, err
		}
		current[j.Name] = o
		granted[j.Name] = 0
	}
	weightOf := func(i int) float64 {
		if weights == nil || weights[i] <= 0 {
			return 1
		}
		return weights[i]
	}
	for c := 0; c < totalCores; c++ {
		bestIdx := -1
		var bestGain float64
		var bestNext outcome
		for i, j := range jobs {
			next, err := ev.evaluate(j, granted[j.Name]+1)
			if err != nil {
				return nil, nil, err
			}
			gain := weightOf(i) * float64(current[j.Name].time-next.time)
			if gain > bestGain { // ties resolve to the earliest job
				bestGain = gain
				bestIdx = i
				bestNext = next
			}
		}
		if bestIdx < 0 || bestGain <= 0 {
			break // no job benefits from another core
		}
		name := jobs[bestIdx].Name
		granted[name]++
		current[name] = bestNext
	}
	return granted, current, nil
}

// Allocate distributes totalCores across the jobs. A nil engine means the
// default SOPHON engine. Every job appears in the returned allocation; jobs
// granted zero cores carry a transfer-only plan.
func Allocate(jobs []Job, totalCores int, engine *policy.Sophon) (Allocation, error) {
	if err := checkJobs(jobs); err != nil {
		return Allocation{}, err
	}
	if totalCores < 0 {
		return Allocation{}, fmt.Errorf("sched: negative core budget %d", totalCores)
	}
	granted, current, err := waterFill(jobs, nil, totalCores, newEvaluator(engine))
	if err != nil {
		return Allocation{}, err
	}
	alloc := Allocation{
		Cores:     granted,
		Plans:     make(map[string]*policy.Plan, len(jobs)),
		Predicted: make(map[string]time.Duration, len(jobs)),
	}
	for _, j := range jobs {
		alloc.Plans[j.Name] = current[j.Name].plan
		alloc.Predicted[j.Name] = current[j.Name].time
	}
	return alloc, nil
}

// EvenSplit is the naive baseline: totalCores divided equally (remainder to
// the first jobs), with SOPHON planning at the fixed grant.
func EvenSplit(jobs []Job, totalCores int, engine *policy.Sophon) (Allocation, error) {
	if err := checkJobs(jobs); err != nil {
		return Allocation{}, err
	}
	if totalCores < 0 {
		return Allocation{}, fmt.Errorf("sched: negative core budget %d", totalCores)
	}
	ev := newEvaluator(engine)
	base := totalCores / len(jobs)
	rem := totalCores % len(jobs)
	alloc := Allocation{
		Cores:     make(map[string]int, len(jobs)),
		Plans:     make(map[string]*policy.Plan, len(jobs)),
		Predicted: make(map[string]time.Duration, len(jobs)),
	}
	for i, j := range jobs {
		cores := base
		if i < rem {
			cores++
		}
		o, err := ev.evaluate(j, cores)
		if err != nil {
			return Allocation{}, fmt.Errorf("sched: even split: %w", err)
		}
		alloc.Cores[j.Name] = cores
		alloc.Plans[j.Name] = o.plan
		alloc.Predicted[j.Name] = o.time
	}
	return alloc, nil
}
