// Package sched implements the paper's multi-tenant future-work extension:
// dividing a storage node's CPU cores among several concurrent training
// jobs. The allocator is a marginal-gain water-filling loop: each core goes
// to the job whose predicted epoch time (after re-running SOPHON's decision
// engine at the candidate core count) drops the most, until cores run out
// or no job benefits.
package sched

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/policy"
)

// Job is one tenant: a profiled dataset plus its training environment. The
// environment's StorageCores field is ignored — the allocator decides it.
type Job struct {
	Name  string
	Trace *dataset.Trace
	Env   policy.Env
}

// Allocation is the scheduler's output.
type Allocation struct {
	// Cores maps job name to granted storage cores.
	Cores map[string]int
	// Plans maps job name to the SOPHON plan at the granted core count.
	Plans map[string]*policy.Plan
	// Predicted maps job name to the modeled epoch time.
	Predicted map[string]time.Duration
}

// TotalPredicted sums the predicted epoch times — the objective the
// allocator minimizes.
func (a Allocation) TotalPredicted() time.Duration {
	var sum time.Duration
	for _, d := range a.Predicted {
		sum += d
	}
	return sum
}

// Allocate distributes totalCores across the jobs. A nil engine means the
// default SOPHON engine.
func Allocate(jobs []Job, totalCores int, engine *policy.Sophon) (Allocation, error) {
	if len(jobs) == 0 {
		return Allocation{}, errors.New("sched: no jobs")
	}
	if totalCores < 0 {
		return Allocation{}, fmt.Errorf("sched: negative core budget %d", totalCores)
	}
	if engine == nil {
		engine = policy.NewSophon()
	}
	seen := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		if j.Name == "" {
			return Allocation{}, fmt.Errorf("sched: job %d has no name", i)
		}
		if seen[j.Name] {
			return Allocation{}, fmt.Errorf("sched: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.Trace == nil || j.Trace.N() == 0 {
			return Allocation{}, fmt.Errorf("sched: job %q has an empty trace", j.Name)
		}
		env := j.Env
		env.StorageCores = 0
		if err := env.Validate(); err != nil {
			return Allocation{}, fmt.Errorf("sched: job %q: %w", j.Name, err)
		}
	}

	// evaluate returns the plan and predicted epoch for a job at c cores,
	// memoized per (job, cores).
	type outcome struct {
		plan *policy.Plan
		time time.Duration
	}
	memo := make(map[string]outcome)
	evaluate := func(j Job, cores int) (outcome, error) {
		key := fmt.Sprintf("%s/%d", j.Name, cores)
		if o, ok := memo[key]; ok {
			return o, nil
		}
		env := j.Env
		env.StorageCores = cores
		plan, err := engine.Plan(j.Trace, env)
		if err != nil {
			return outcome{}, fmt.Errorf("sched: plan %q at %d cores: %w", j.Name, cores, err)
		}
		m, err := policy.ModelFor(j.Trace, plan, env)
		if err != nil {
			return outcome{}, fmt.Errorf("sched: model %q at %d cores: %w", j.Name, cores, err)
		}
		o := outcome{plan: plan, time: m.Predicted()}
		memo[key] = o
		return o, nil
	}

	granted := make(map[string]int, len(jobs))
	current := make(map[string]outcome, len(jobs))
	for _, j := range jobs {
		o, err := evaluate(j, 0)
		if err != nil {
			return Allocation{}, err
		}
		current[j.Name] = o
	}

	for c := 0; c < totalCores; c++ {
		bestIdx := -1
		var bestGain time.Duration
		var bestNext outcome
		for i, j := range jobs {
			next, err := evaluate(j, granted[j.Name]+1)
			if err != nil {
				return Allocation{}, err
			}
			gain := current[j.Name].time - next.time
			if gain > bestGain { // ties resolve to the earliest job
				bestGain = gain
				bestIdx = i
				bestNext = next
			}
		}
		if bestIdx < 0 || bestGain <= 0 {
			break // no job benefits from another core
		}
		name := jobs[bestIdx].Name
		granted[name]++
		current[name] = bestNext
	}

	alloc := Allocation{
		Cores:     granted,
		Plans:     make(map[string]*policy.Plan, len(jobs)),
		Predicted: make(map[string]time.Duration, len(jobs)),
	}
	for _, j := range jobs {
		if _, ok := granted[j.Name]; !ok {
			granted[j.Name] = 0
		}
		alloc.Plans[j.Name] = current[j.Name].plan
		alloc.Predicted[j.Name] = current[j.Name].time
	}
	alloc.Cores = granted
	return alloc, nil
}

// EvenSplit is the naive baseline: totalCores divided equally (remainder to
// the first jobs), with SOPHON planning at the fixed grant.
func EvenSplit(jobs []Job, totalCores int, engine *policy.Sophon) (Allocation, error) {
	if len(jobs) == 0 {
		return Allocation{}, errors.New("sched: no jobs")
	}
	if totalCores < 0 {
		return Allocation{}, fmt.Errorf("sched: negative core budget %d", totalCores)
	}
	if engine == nil {
		engine = policy.NewSophon()
	}
	base := totalCores / len(jobs)
	rem := totalCores % len(jobs)
	alloc := Allocation{
		Cores:     make(map[string]int, len(jobs)),
		Plans:     make(map[string]*policy.Plan, len(jobs)),
		Predicted: make(map[string]time.Duration, len(jobs)),
	}
	for i, j := range jobs {
		cores := base
		if i < rem {
			cores++
		}
		env := j.Env
		env.StorageCores = cores
		plan, err := engine.Plan(j.Trace, env)
		if err != nil {
			return Allocation{}, fmt.Errorf("sched: even split %q: %w", j.Name, err)
		}
		m, err := policy.ModelFor(j.Trace, plan, env)
		if err != nil {
			return Allocation{}, fmt.Errorf("sched: even split model %q: %w", j.Name, err)
		}
		alloc.Cores[j.Name] = cores
		alloc.Plans[j.Name] = plan
		alloc.Predicted[j.Name] = m.Predicted()
	}
	return alloc, nil
}
