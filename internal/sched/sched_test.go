package sched

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

func jobEnv() policy.Env {
	return policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func makeJobs(t testing.TB) []Job {
	t.Helper()
	oi, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(1500), 31)
	if err != nil {
		t.Fatal(err)
	}
	oi2, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(1500), 32)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.GenerateTrace(dataset.ImageNet11G().ScaledTo(1500), 33)
	if err != nil {
		t.Fatal(err)
	}
	return []Job{
		{Name: "job-oi-a", Trace: oi, Env: jobEnv()},
		{Name: "job-oi-b", Trace: oi2, Env: jobEnv()},
		{Name: "job-in", Trace: in, Env: jobEnv()},
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(nil, 4, nil); err == nil {
		t.Fatal("accepted no jobs")
	}
	jobs := makeJobs(t)
	if _, err := Allocate(jobs, -1, nil); err == nil {
		t.Fatal("accepted negative cores")
	}
	dup := []Job{jobs[0], jobs[0]}
	if _, err := Allocate(dup, 2, nil); err == nil {
		t.Fatal("accepted duplicate names")
	}
	anon := []Job{{Trace: jobs[0].Trace, Env: jobEnv()}}
	if _, err := Allocate(anon, 2, nil); err == nil {
		t.Fatal("accepted unnamed job")
	}
	empty := []Job{{Name: "e", Trace: &dataset.Trace{}, Env: jobEnv()}}
	if _, err := Allocate(empty, 2, nil); err == nil {
		t.Fatal("accepted empty trace")
	}
	bad := []Job{{Name: "b", Trace: jobs[0].Trace, Env: policy.Env{}}}
	if _, err := Allocate(bad, 2, nil); err == nil {
		t.Fatal("accepted invalid env")
	}
}

func TestAllocateSpendsBudget(t *testing.T) {
	jobs := makeJobs(t)
	const total = 6
	alloc, err := Allocate(jobs, total, nil)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0
	for _, c := range alloc.Cores {
		if c < 0 {
			t.Fatalf("negative grant: %v", alloc.Cores)
		}
		spent += c
	}
	if spent > total {
		t.Fatalf("spent %d of %d cores", spent, total)
	}
	// I/O-bound jobs benefit from at least some cores.
	if spent == 0 {
		t.Fatal("allocator granted nothing to I/O-bound jobs")
	}
	for name, plan := range alloc.Plans {
		if alloc.Cores[name] == 0 && plan.OffloadedCount() > 0 {
			t.Fatalf("job %s offloads with 0 cores", name)
		}
	}
}

func TestAllocateZeroBudget(t *testing.T) {
	jobs := makeJobs(t)
	alloc, err := Allocate(jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range alloc.Cores {
		if c != 0 {
			t.Fatalf("job %s granted %d cores from a zero budget", name, c)
		}
	}
	if alloc.TotalPredicted() <= 0 {
		t.Fatal("no predicted times")
	}
}

func TestAllocateImprovesTotalOverZero(t *testing.T) {
	jobs := makeJobs(t)
	zero, err := Allocate(jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	some, err := Allocate(jobs, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if some.TotalPredicted() >= zero.TotalPredicted() {
		t.Fatalf("8 cores (%v) not better than 0 (%v)",
			some.TotalPredicted(), zero.TotalPredicted())
	}
}

// TestAllocateBeatsEvenSplit: marginal-gain allocation is never worse than
// the naive even split, and typically better when jobs differ.
func TestAllocateBeatsEvenSplit(t *testing.T) {
	jobs := makeJobs(t)
	const total = 5 // uneven across 3 jobs
	smart, err := Allocate(jobs, total, nil)
	if err != nil {
		t.Fatal(err)
	}
	even, err := EvenSplit(jobs, total, nil)
	if err != nil {
		t.Fatal(err)
	}
	if smart.TotalPredicted() > even.TotalPredicted() {
		t.Fatalf("water-filling (%v) worse than even split (%v)",
			smart.TotalPredicted(), even.TotalPredicted())
	}
}

func TestAllocateMonotoneInBudget(t *testing.T) {
	jobs := makeJobs(t)
	var prev Allocation
	for i, budget := range []int{0, 2, 4, 8, 16} {
		alloc, err := Allocate(jobs, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && alloc.TotalPredicted() > prev.TotalPredicted() {
			t.Fatalf("budget %d total %v worse than smaller budget %v",
				budget, alloc.TotalPredicted(), prev.TotalPredicted())
		}
		prev = alloc
	}
}

func TestAllocateStopsWhenNoGain(t *testing.T) {
	jobs := makeJobs(t)
	// With a huge budget the allocator must stop early rather than spend
	// hundreds of cores on fully-offloaded jobs.
	alloc, err := Allocate(jobs, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0
	for _, c := range alloc.Cores {
		spent += c
	}
	if spent >= 500 {
		t.Fatalf("allocator burned the whole %d-core budget", spent)
	}
}

// TestAllocationPredictionsMatchEngine: the scheduler's analytic epoch
// predictions track a discrete-event replay of the granted plans.
func TestAllocationPredictionsMatchEngine(t *testing.T) {
	jobs := makeJobs(t)
	alloc, err := Allocate(jobs, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		env := j.Env
		env.StorageCores = alloc.Cores[j.Name]
		res, err := engine.Run(engine.Config{
			Trace: j.Trace, Plan: alloc.Plans[j.Name], Env: env, BatchSize: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		predicted := alloc.Predicted[j.Name].Seconds()
		simulated := res.EpochTime.Seconds()
		if diff := (simulated - predicted) / simulated; diff < -0.12 || diff > 0.12 {
			t.Errorf("job %s: predicted %.1fs vs simulated %.1fs (%.0f%% off)",
				j.Name, predicted, simulated, 100*diff)
		}
	}
}

func TestEvenSplitValidation(t *testing.T) {
	if _, err := EvenSplit(nil, 3, nil); err == nil {
		t.Fatal("accepted no jobs")
	}
	jobs := makeJobs(t)
	if _, err := EvenSplit(jobs, -2, nil); err == nil {
		t.Fatal("accepted negative budget")
	}
	alloc, err := EvenSplit(jobs, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0
	for _, c := range alloc.Cores {
		spent += c
	}
	if spent != 7 {
		t.Fatalf("even split spent %d of 7", spent)
	}
}
