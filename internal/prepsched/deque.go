package prepsched

import "sync"

// Deque is one worker's class-aware work-stealing deque. It keeps a FIFO
// lane per class so stream order survives inside each class, and exposes the
// two ends asymmetrically:
//
//   - Pop (the owner) takes from the HEAD, light lane first: the owner chews
//     through light samples in push order and only falls back to its own
//     heavy work when no light work remains — light flows around heavy.
//   - Steal (an idle worker) takes from the TAIL, heavy lane first: a thief
//     relieves a backlogged owner of its most recently queued work, and
//     prefers to absorb a heavy sample — the long pole — so the owner keeps
//     draining its light lane in order.
//
// Invariants (property-tested in quick_test.go under randomized push/pop/
// steal interleavings):
//
//  1. Conservation: every pushed value is returned exactly once across Pop
//     and Steal — nothing lost, nothing duplicated.
//  2. Per-class order: the values the owner Pops from a given lane come out
//     in push order (steals puncture a lane only at its tail, so they never
//     reorder what the owner still sees).
//  3. Tail-only steals: a successful Steal returns the value that was the
//     most recently pushed of its lane at that moment.
//
// All methods are safe for concurrent use. The zero value is ready to use.
type Deque[T any] struct {
	mu    sync.Mutex
	lanes [2]lane[T]
}

// lane is a slice-backed FIFO ring: head index advances on Pop, the slice
// end is the tail. Compaction amortizes to O(1) per operation.
type lane[T any] struct {
	buf  []T
	head int
}

func (l *lane[T]) len() int { return len(l.buf) - l.head }

func (l *lane[T]) push(v T) {
	if l.head > 0 && l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
	}
	l.buf = append(l.buf, v)
}

func (l *lane[T]) popHead() (T, bool) {
	var zero T
	if l.len() == 0 {
		return zero, false
	}
	v := l.buf[l.head]
	l.buf[l.head] = zero
	l.head++
	if l.head >= 64 && l.head*2 >= len(l.buf) {
		n := copy(l.buf, l.buf[l.head:])
		for i := n; i < len(l.buf); i++ {
			l.buf[i] = zero
		}
		l.buf = l.buf[:n]
		l.head = 0
	}
	return v, true
}

func (l *lane[T]) popTail() (T, bool) {
	var zero T
	if l.len() == 0 {
		return zero, false
	}
	v := l.buf[len(l.buf)-1]
	l.buf[len(l.buf)-1] = zero
	l.buf = l.buf[:len(l.buf)-1]
	return v, true
}

// Push appends v to the tail of its class's lane.
func (d *Deque[T]) Push(v T, c Class) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lanes[laneOf(c)].push(v)
}

// Pop is the owner's take: head of the light lane, else head of the heavy
// lane. Returns false when the deque is empty.
func (d *Deque[T]) Pop() (T, Class, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.lanes[0].popHead(); ok {
		return v, Light, true
	}
	v, ok := d.lanes[1].popHead()
	return v, Heavy, ok
}

// Steal is a thief's take: tail of the heavy lane, else tail of the light
// lane. Returns false when the deque is empty.
func (d *Deque[T]) Steal() (T, Class, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.lanes[1].popTail(); ok {
		return v, Heavy, true
	}
	v, ok := d.lanes[0].popTail()
	return v, Light, ok
}

// Len reports the queued values across both lanes.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lanes[0].len() + d.lanes[1].len()
}

func laneOf(c Class) int {
	if c == Heavy {
		return 1
	}
	return 0
}
