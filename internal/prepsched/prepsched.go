// Package prepsched is the variance-aware preprocessing scheduler: it
// classifies samples heavy or light from their profiled per-sample
// preprocessing cost (internal/profiler stage 2) and schedules local
// preprocessing over per-worker work-stealing deques, so light samples flow
// around heavy ones instead of queueing behind them — the head-of-line
// blocking MinatoLoader identifies as a first-order loss in real loaders.
//
// The scheduler never changes WHAT is computed, only WHEN: preprocessing is
// deterministic in (job, epoch, sample) for a given cut, so artifact bytes
// are bit-identical to FIFO scheduling no matter which worker runs a sample
// or in what order. Only completion timing moves, which is the point — a
// heavy decode overlaps the transfer and preprocessing of the staged samples
// behind it instead of stalling them.
//
// The observed heavy/light mix feeds the adaptive control plane: the trainer
// reports per-epoch class counts (EpochReport.Heavy) into the drift
// detector's mix track (profiler.EpochSample.MixHeavy/MixTotal), so a
// mid-training skew flip triggers a replan like any other environment drift.
package prepsched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
)

// Class labels one sample's preprocessing weight.
type Class uint8

// Sample classes. Light is the zero value so an unclassified sample never
// queues behind the heavy lane by accident.
const (
	Light Class = iota
	Heavy
)

// String names the class for logs and metrics.
func (c Class) String() string {
	if c == Heavy {
		return "heavy"
	}
	return "light"
}

// DefaultHeavyRatio is the classification threshold when a caller leaves the
// ratio zero: a sample is heavy when its profiled preprocessing cost is at
// least this multiple of the dataset's mean cost.
const DefaultHeavyRatio = 4.0

// Classifier maps per-sample preprocessing cost to a class against a fixed
// threshold derived from the profiled cost distribution. Safe for concurrent
// use: Classify is an atomic threshold read plus atomic class counters, so
// loader workers and a monitor scraping HeavyFrac never race.
type Classifier struct {
	threshold atomic.Int64 // ns; cost >= threshold is heavy
	baseline  float64      // heavy fraction of the profile it was built from
	light     atomic.Int64
	heavy     atomic.Int64
}

// NewClassifier derives the heavy threshold from a profiled per-sample cost
// distribution: threshold = ratio × mean(costs), ratio 0 meaning
// DefaultHeavyRatio. The returned classifier also remembers the profile's
// own heavy fraction (BaselineHeavyFrac) — the mix baseline the drift
// detector anchors to.
func NewClassifier(costs []time.Duration, ratio float64) (*Classifier, error) {
	if len(costs) == 0 {
		return nil, errors.New("prepsched: classifier needs a non-empty cost profile")
	}
	if ratio == 0 {
		ratio = DefaultHeavyRatio
	}
	if ratio <= 0 {
		return nil, fmt.Errorf("prepsched: heavy ratio %v must be positive", ratio)
	}
	var sum time.Duration
	for _, c := range costs {
		if c < 0 {
			return nil, fmt.Errorf("prepsched: negative sample cost %v", c)
		}
		sum += c
	}
	mean := float64(sum) / float64(len(costs))
	threshold := int64(ratio * mean)
	heavy := 0
	for _, c := range costs {
		if int64(c) >= threshold && threshold > 0 {
			heavy++
		}
	}
	cl := &Classifier{baseline: float64(heavy) / float64(len(costs))}
	cl.threshold.Store(threshold)
	return cl, nil
}

// FromTrace builds a classifier from a stage-2 trace, costing each sample at
// its full profiled preprocessing time.
func FromTrace(tr *dataset.Trace, ratio float64) (*Classifier, error) {
	if tr == nil || tr.N() == 0 {
		return nil, errors.New("prepsched: classifier needs a non-empty trace")
	}
	costs := make([]time.Duration, tr.N())
	for i := range tr.Records {
		costs[i] = tr.Records[i].TotalTime()
	}
	return NewClassifier(costs, ratio)
}

// Threshold returns the heavy cutoff.
func (c *Classifier) Threshold() time.Duration {
	return time.Duration(c.threshold.Load())
}

// SetThreshold replaces the heavy cutoff (an adaptive controller retuning
// the classifier after a replan).
func (c *Classifier) SetThreshold(d time.Duration) {
	if d > 0 {
		c.threshold.Store(int64(d))
	}
}

// BaselineHeavyFrac is the heavy fraction of the cost profile the classifier
// was built from — the plan-time mix the drift detector treats as baseline.
func (c *Classifier) BaselineHeavyFrac() float64 { return c.baseline }

// Classify maps one sample's profiled cost to its class and counts the
// observation into the live mix.
func (c *Classifier) Classify(cost time.Duration) Class {
	cl := c.Class(cost)
	if cl == Heavy {
		c.heavy.Add(1)
	} else {
		c.light.Add(1)
	}
	return cl
}

// Class maps a cost to its class without recording an observation.
func (c *Classifier) Class(cost time.Duration) Class {
	if t := c.threshold.Load(); t > 0 && int64(cost) >= t {
		return Heavy
	}
	return Light
}

// HeavyFrac returns the observed heavy fraction across all Classify calls
// (0 before any observation).
func (c *Classifier) HeavyFrac() float64 {
	h, l := c.heavy.Load(), c.light.Load()
	if h+l == 0 {
		return 0
	}
	return float64(h) / float64(h+l)
}

// Observed returns the raw observed class counts (heavy, light).
func (c *Classifier) Observed() (heavy, light int64) {
	return c.heavy.Load(), c.light.Load()
}
