package prepsched

import "sync/atomic"

// Metrics counts the scheduler's classification and scheduling activity with
// lock-free atomics, the same discipline as prefetch.Metrics: loader workers
// bump counters on their hot path and a monitor snapshots them concurrently.
// All methods are nil-safe so instrumentation can be left unwired.
type Metrics struct {
	light   atomic.Int64
	heavy   atomic.Int64
	ownPops atomic.Int64
	steals  atomic.Int64
	stalls  atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of the counters, JSON-shaped for
// the monitor's /stats block.
type MetricsSnapshot struct {
	// Light and Heavy count samples dispatched per class.
	Light int64 `json:"light"`
	Heavy int64 `json:"heavy"`
	// OwnPops counts takes a worker served from its own deque; Steals counts
	// takes served from another worker's tail.
	OwnPops int64 `json:"own_pops"`
	Steals  int64 `json:"steals"`
	// Stalls counts the times a worker found every deque empty and had to
	// block waiting for more dispatched work.
	Stalls int64 `json:"stalls"`
	// HeavyFrac is Heavy / (Light + Heavy), 0 before any dispatch.
	HeavyFrac float64 `json:"heavy_frac"`
}

func (m *Metrics) noteDispatch(c Class) {
	if m == nil {
		return
	}
	if c == Heavy {
		m.heavy.Add(1)
	} else {
		m.light.Add(1)
	}
}

func (m *Metrics) noteOwnPop() {
	if m != nil {
		m.ownPops.Add(1)
	}
}

func (m *Metrics) noteSteal() {
	if m != nil {
		m.steals.Add(1)
	}
}

func (m *Metrics) noteStall() {
	if m != nil {
		m.stalls.Add(1)
	}
}

// Snapshot returns a consistent-enough copy for monitoring (each counter is
// read atomically; the set is not a single linearized cut). Nil-safe.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	s := MetricsSnapshot{
		Light:   m.light.Load(),
		Heavy:   m.heavy.Load(),
		OwnPops: m.ownPops.Load(),
		Steals:  m.steals.Load(),
		Stalls:  m.stalls.Load(),
	}
	if total := s.Light + s.Heavy; total > 0 {
		s.HeavyFrac = float64(s.Heavy) / float64(total)
	}
	return s
}
