package prepsched

import (
	"testing"
	"time"

	"repro/internal/dataset"
)

func TestClassifierThresholdFromProfile(t *testing.T) {
	// Mean is 212.5µs; default ratio 4 puts the cutoff at 850µs, so only
	// the 1ms outlier is heavy.
	costs := []time.Duration{
		100 * time.Microsecond, 100 * time.Microsecond, 100 * time.Microsecond,
		100 * time.Microsecond, 100 * time.Microsecond, 100 * time.Microsecond,
		100 * time.Microsecond, 1 * time.Millisecond,
	}
	cl, err := NewClassifier(costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cl.Threshold(), 850*time.Microsecond; got != want {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
	if got, want := cl.BaselineHeavyFrac(), 1.0/8; got != want {
		t.Fatalf("baseline heavy frac = %v, want %v", got, want)
	}
	if c := cl.Classify(100 * time.Microsecond); c != Light {
		t.Fatalf("100µs classified %v, want light", c)
	}
	if c := cl.Classify(1 * time.Millisecond); c != Heavy {
		t.Fatalf("1ms classified %v, want heavy", c)
	}
	if c := cl.Classify(850 * time.Microsecond); c != Heavy {
		t.Fatalf("cost at the threshold classified %v, want heavy", c)
	}
	h, l := cl.Observed()
	if h != 2 || l != 1 {
		t.Fatalf("observed (heavy,light) = (%d,%d), want (2,1)", h, l)
	}
	if got, want := cl.HeavyFrac(), 2.0/3; got != want {
		t.Fatalf("heavy frac = %v, want %v", got, want)
	}
}

func TestClassifierErrors(t *testing.T) {
	if _, err := NewClassifier(nil, 0); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := NewClassifier([]time.Duration{time.Millisecond}, -1); err == nil {
		t.Fatal("negative ratio accepted")
	}
	if _, err := NewClassifier([]time.Duration{-time.Millisecond}, 0); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := FromTrace(nil, 0); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestClassifierSetThreshold(t *testing.T) {
	cl, err := NewClassifier([]time.Duration{time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetThreshold(2 * time.Millisecond)
	if got := cl.Threshold(); got != 2*time.Millisecond {
		t.Fatalf("threshold = %v after SetThreshold", got)
	}
	cl.SetThreshold(-1) // ignored
	if got := cl.Threshold(); got != 2*time.Millisecond {
		t.Fatalf("threshold = %v after invalid SetThreshold", got)
	}
	if c := cl.Class(3 * time.Millisecond); c != Heavy {
		t.Fatalf("Class() = %v, want heavy", c)
	}
	if h, l := cl.Observed(); h != 0 || l != 0 {
		t.Fatalf("Class() recorded an observation: (%d,%d)", h, l)
	}
}

func TestClassifierFromTrace(t *testing.T) {
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(64), 11)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromTrace(tr, 1) // threshold at the mean: both classes present
	if err != nil {
		t.Fatal(err)
	}
	if cl.Threshold() <= 0 {
		t.Fatalf("threshold = %v, want > 0", cl.Threshold())
	}
	heavy := 0
	for i := range tr.Records {
		if cl.Class(tr.Records[i].TotalTime()) == Heavy {
			heavy++
		}
	}
	if heavy == 0 || heavy == tr.N() {
		t.Fatalf("degenerate classification: %d/%d heavy at ratio 1", heavy, tr.N())
	}
	if got, want := cl.BaselineHeavyFrac(), float64(heavy)/float64(tr.N()); got != want {
		t.Fatalf("baseline %v disagrees with recount %v", got, want)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.noteDispatch(Heavy)
	m.noteOwnPop()
	m.noteSteal()
	m.noteStall()
	if s := m.Snapshot(); s != (MetricsSnapshot{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestClassString(t *testing.T) {
	if Light.String() != "light" || Heavy.String() != "heavy" {
		t.Fatalf("class names: %q %q", Light, Heavy)
	}
}
