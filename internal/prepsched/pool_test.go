package prepsched

import (
	"sync"
	"testing"
)

func TestPoolConfigErrors(t *testing.T) {
	if _, err := NewPool[int](0, 8, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewPool[int](4, 2, nil); err == nil {
		t.Fatal("capacity below worker count accepted")
	}
}

// TestPoolConservesSamples churns a bounded pool with one dispatcher and W
// concurrent workers (each stealing when its own deque is dry) and checks
// the multiset identity end to end: every dispatched sample is taken exactly
// once, and the class tags survive the trip.
func TestPoolConservesSamples(t *testing.T) {
	const (
		workers = 4
		n       = 4096
	)
	var m Metrics
	p, err := NewPool[int](workers, 2*workers, &m)
	if err != nil {
		t.Fatal(err)
	}
	classOf := func(i int) Class {
		if i%7 == 0 {
			return Heavy
		}
		return Light
	}
	var mu sync.Mutex
	taken := make(map[int]Class, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				v, c, ok := p.Take(w)
				if !ok {
					return
				}
				mu.Lock()
				if prev, dup := taken[v]; dup {
					t.Errorf("sample %d taken twice (classes %v, %v)", v, prev, c)
				}
				taken[v] = c
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		if !p.Dispatch(i, i, classOf(i)) {
			t.Errorf("dispatch %d rejected", i)
		}
	}
	p.Close()
	wg.Wait()
	if len(taken) != n {
		t.Fatalf("took %d samples, dispatched %d", len(taken), n)
	}
	for i := 0; i < n; i++ {
		c, ok := taken[i]
		if !ok {
			t.Fatalf("sample %d lost", i)
		}
		if c != classOf(i) {
			t.Fatalf("sample %d class %v, want %v", i, c, classOf(i))
		}
	}
	s := m.Snapshot()
	if s.Light+s.Heavy != n {
		t.Fatalf("metrics dispatched %d+%d, want %d", s.Light, s.Heavy, n)
	}
	if s.OwnPops+s.Steals != n {
		t.Fatalf("metrics takes %d+%d, want %d", s.OwnPops, s.Steals, n)
	}
	if s.HeavyFrac <= 0 || s.HeavyFrac >= 1 {
		t.Fatalf("heavy frac %v, want interior", s.HeavyFrac)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending %d after drain", p.Pending())
	}
}

// TestPoolStopUnblocksEveryone parks workers on an empty pool and a
// dispatcher on a full one, then checks Stop releases them all with ok=false.
func TestPoolStopUnblocksEveryone(t *testing.T) {
	p, err := NewPool[int](2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fill to capacity so the next Dispatch blocks.
	p.Dispatch(0, 0, Light)
	p.Dispatch(1, 1, Light)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if p.Dispatch(2, 2, Light) {
			t.Error("dispatch succeeded after stop")
		}
	}()
	// A worker on a second pool that is empty, to park in Take.
	empty, err := NewPool[int](2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, ok := empty.Take(0); ok {
			t.Error("take succeeded on stopped empty pool")
		}
	}()
	p.Stop()
	empty.Stop()
	wg.Wait()
	// Stopped pools reject further traffic immediately.
	if p.Dispatch(3, 3, Light) {
		t.Fatal("dispatch accepted after stop")
	}
	if _, _, ok := p.Take(0); ok {
		t.Fatal("take returned a sample after stop")
	}
}

// TestPoolDrainsAfterClose closes with samples still queued and checks Take
// hands them all out before reporting done.
func TestPoolDrainsAfterClose(t *testing.T) {
	p, err := NewPool[int](2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p.Dispatch(i, i, Light)
	}
	p.Close()
	got := 0
	for {
		_, _, ok := p.Take(0)
		if !ok {
			break
		}
		got++
	}
	if got != 6 {
		t.Fatalf("drained %d samples, want 6", got)
	}
}

// TestPoolOwnerPreference checks a worker serves its own deque before
// stealing: with both deques loaded, worker 0's takes start with its own
// light-lane samples in FIFO order.
func TestPoolOwnerPreference(t *testing.T) {
	p, err := NewPool[int](2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Dispatch(0, 100, Light) // worker 0's deque
	p.Dispatch(2, 101, Light)
	p.Dispatch(1, 200, Light) // worker 1's deque
	for _, want := range []int{100, 101} {
		v, _, ok := p.Take(0)
		if !ok || v != want {
			t.Fatalf("take = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	v, _, ok := p.Take(0) // own deque empty: steal from worker 1
	if !ok || v != 200 {
		t.Fatalf("steal take = (%d,%v), want (200,true)", v, ok)
	}
}
