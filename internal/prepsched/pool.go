package prepsched

import (
	"errors"
	"fmt"
	"sync"
)

// Pool fans dispatched samples out over per-worker two-lane deques and lets
// idle workers steal from busy ones. A single dispatcher assigns sample seq
// to deque seq%W — the same static assignment FIFO scheduling would use — so
// work-stealing changes only who executes a sample and when, never what is
// computed. Dispatch is capacity-bounded so the dispatcher cannot run
// arbitrarily far ahead of the workers and defeat the prefetcher's staging
// discipline.
//
// Lifecycle: the dispatcher calls Dispatch until the stream ends, then
// Close; workers loop on Take until it returns false (drained after Close,
// or aborted by Stop). Stop wakes every blocked Dispatch and Take for
// error-path teardown.
type Pool[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  []Deque[T]
	pending int
	cap     int
	closed  bool
	stopped bool
	metrics *Metrics
}

// NewPool builds a pool of workers deques holding at most capacity
// undispatched samples. metrics may be nil.
func NewPool[T any](workers, capacity int, m *Metrics) (*Pool[T], error) {
	if workers <= 0 {
		return nil, errors.New("prepsched: pool needs at least one worker")
	}
	if capacity < workers {
		return nil, fmt.Errorf("prepsched: pool capacity %d below worker count %d", capacity, workers)
	}
	p := &Pool[T]{
		deques:  make([]Deque[T], workers),
		cap:     capacity,
		metrics: m,
	}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// Workers returns the number of per-worker deques.
func (p *Pool[T]) Workers() int { return len(p.deques) }

// Dispatch queues v on deque seq%W, blocking while the pool is at capacity.
// Returns false once the pool is closed or stopped — the value was not
// queued and the dispatcher should quit.
func (p *Pool[T]) Dispatch(seq int, v T, c Class) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending >= p.cap && !p.stopped && !p.closed {
		p.cond.Wait()
	}
	if p.stopped || p.closed {
		return false
	}
	p.deques[seq%len(p.deques)].Push(v, c)
	p.pending++
	p.metrics.noteDispatch(c)
	p.cond.Broadcast()
	return true
}

// Take serves worker owner: its own Pop first (per-class FIFO, light first),
// else a steal sweep over the other deques in ring order. Blocks when every
// deque is empty but more work may still arrive; returns false when the pool
// is stopped, or closed and fully drained.
func (p *Pool[T]) Take(owner int) (T, Class, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			var zero T
			return zero, Light, false
		}
		if p.pending > 0 {
			if v, c, ok := p.deques[owner%len(p.deques)].Pop(); ok {
				p.pending--
				p.metrics.noteOwnPop()
				p.cond.Broadcast()
				return v, c, true
			}
			for i := 1; i < len(p.deques); i++ {
				if v, c, ok := p.deques[(owner+i)%len(p.deques)].Steal(); ok {
					p.pending--
					p.metrics.noteSteal()
					p.cond.Broadcast()
					return v, c, true
				}
			}
		}
		if p.closed {
			var zero T
			return zero, Light, false
		}
		p.metrics.noteStall()
		p.cond.Wait()
	}
}

// Close marks the stream complete: blocked Dispatch calls return false, and
// Take drains the remaining queued samples before returning false.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Stop aborts the pool: every blocked Dispatch and Take wakes and returns
// false immediately, abandoning queued samples. For error-path teardown.
func (p *Pool[T]) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Pending reports the queued-but-untaken sample count.
func (p *Pool[T]) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}
