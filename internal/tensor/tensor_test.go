package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

func TestNewRejectsBadShape(t *testing.T) {
	for _, s := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if _, err := New(s[0], s[1], s[2]); err == nil {
			t.Errorf("New(%v) accepted bad shape", s)
		}
	}
}

func TestSetAt(t *testing.T) {
	tt, err := New(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	tt.Set(2, 3, 4, 1.5)
	if got := tt.At(2, 3, 4); got != 1.5 {
		t.Fatalf("At = %v", got)
	}
	if tt.Len() != 60 || tt.ByteSize() != 240 {
		t.Fatalf("Len=%d ByteSize=%d", tt.Len(), tt.ByteSize())
	}
}

func TestCloneEqual(t *testing.T) {
	a, _ := New(2, 2, 2)
	a.Set(1, 1, 1, 3.25)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(0, 0, 0, 7)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.At(0, 0, 0) != 0 {
		t.Fatal("clone shares storage")
	}
	c, _ := New(2, 2, 3)
	if a.Equal(c) || a.Equal(nil) {
		t.Fatal("Equal ignores shape or nil")
	}
}

func TestEqualComparesNaNByBits(t *testing.T) {
	a, _ := New(1, 1, 1)
	b, _ := New(1, 1, 1)
	a.Data[0] = float32(math.NaN())
	b.Data[0] = float32(math.NaN())
	if !a.Equal(b) {
		t.Fatal("identical NaN payloads not equal")
	}
}

func TestFromImageScalesAndTransposes(t *testing.T) {
	im := imaging.MustNew(2, 1)
	im.Set(0, 0, 255, 0, 51)
	im.Set(1, 0, 0, 255, 102)
	tt := FromImage(im)
	if tt.C != 3 || tt.H != 1 || tt.W != 2 {
		t.Fatalf("shape %dx%dx%d", tt.C, tt.H, tt.W)
	}
	if tt.At(0, 0, 0) != 1 || tt.At(1, 0, 1) != 1 {
		t.Fatal("channel values misplaced")
	}
	if got := tt.At(2, 0, 0); math.Abs(float64(got)-51.0/255) > 1e-6 {
		t.Fatalf("blue scaled to %v", got)
	}
}

func TestNormalize(t *testing.T) {
	tt, _ := New(2, 1, 2)
	copy(tt.Data, []float32{0.5, 1.0, 0.25, 0.75})
	if err := tt.Normalize([]float32{0.5, 0.25}, []float32{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, 0, 1}
	for i, w := range want {
		if tt.Data[i] != w {
			t.Fatalf("Data[%d] = %v, want %v", i, tt.Data[i], w)
		}
	}
}

func TestNormalizeValidates(t *testing.T) {
	tt, _ := New(3, 1, 1)
	if err := tt.Normalize([]float32{0, 0}, ImageNetStd); err == nil {
		t.Fatal("accepted short mean")
	}
	if err := tt.Normalize(ImageNetMean, []float32{1, 0, 1}); err == nil {
		t.Fatal("accepted zero std")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 17, H: 9, Detail: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tt := FromImage(im)
	if err := tt.Normalize(ImageNetMean, ImageNetStd); err != nil {
		t.Fatal(err)
	}
	data := tt.Marshal()
	if len(data) != MarshaledSize(3, 9, 17) {
		t.Fatalf("marshaled %d bytes, want %d", len(data), MarshaledSize(3, 9, 17))
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tt) {
		t.Fatal("round trip mismatch")
	}
}

func TestMarshaledSizeMatchesPaperInflation(t *testing.T) {
	// 224×224 RGB: ~150 KB as bytes, ~602 KB as float tensor (Finding #2).
	raw := 3 * 224 * 224
	enc := MarshaledSize(3, 224, 224)
	if enc < 4*raw || enc > 4*raw+64 {
		t.Fatalf("tensor wire size %d not ~4x of %d", enc, raw)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	tt, _ := New(1, 2, 2)
	data := tt.Marshal()
	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:8],
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"bad version": func() []byte { d := append([]byte(nil), data...); d[4] = 9; return d }(),
		"truncated":   data[:len(data)-1],
		"padded":      append(append([]byte(nil), data...), 0),
		"zero shape": func() []byte {
			d := append([]byte(nil), data...)
			d[8], d[9], d[10], d[11] = 0, 0, 0, 0
			return d
		}(),
	}
	for name, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal accepted %s", name)
		}
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary tensor contents exactly.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(c8, h8, w8 uint8, vals []float32) bool {
		c := int(c8%3) + 1
		h := int(h8%8) + 1
		w := int(w8%8) + 1
		tt, err := New(c, h, w)
		if err != nil {
			return false
		}
		for i := range tt.Data {
			if len(vals) > 0 {
				tt.Data[i] = vals[i%len(vals)]
			}
		}
		got, err := Unmarshal(tt.Marshal())
		return err == nil && got.Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalize then denormalize recovers values within float32
// tolerance.
func TestNormalizeInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		im, err := imaging.Synthesize(imaging.SynthParams{W: 8, H: 8, Detail: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		orig := FromImage(im)
		tt := orig.Clone()
		if err := tt.Normalize(ImageNetMean, ImageNetStd); err != nil {
			return false
		}
		// Denormalize: v*std + mean.
		plane := tt.H * tt.W
		for c := 0; c < tt.C; c++ {
			for i := 0; i < plane; i++ {
				tt.Data[c*plane+i] = tt.Data[c*plane+i]*ImageNetStd[c] + ImageNetMean[c]
			}
		}
		for i := range tt.Data {
			if math.Abs(float64(tt.Data[i]-orig.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
