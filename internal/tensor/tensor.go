// Package tensor implements the float32 CHW tensors produced by the tail of
// the preprocessing pipeline (ToTensor, Normalize), along with a compact
// binary wire encoding. A 3×224×224 tensor encodes to ~602 KB — four bytes
// per value — which is exactly the 4× inflation the paper observes after
// ToTensor.
package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bufpool"
	"repro/internal/imaging"
)

// Tensor is a dense float32 tensor in CHW layout: Data[c*H*W + y*W + x].
type Tensor struct {
	C, H, W int
	Data    []float32
}

// Wire-format constants.
const (
	wireMagic   = "STSR"
	wireVersion = 1
	headerSize  = 4 + 1 + 3 + 4*3 // magic, version, pad, C/H/W
)

// Errors returned by this package.
var (
	ErrBadShape = errors.New("tensor: bad shape")
	ErrCorrupt  = errors.New("tensor: corrupt stream")
)

// New allocates a zero tensor with the given shape.
func New(c, h, w int) (*Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return nil, fmt.Errorf("%w: %dx%dx%d", ErrBadShape, c, h, w)
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}, nil
}

// NewPooled allocates a tensor whose element buffer comes from the bufpool
// arena. The caller owns it; Release returns the buffer to the pool. The
// elements are NOT zeroed — callers must overwrite every value.
func NewPooled(c, h, w int) (*Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return nil, fmt.Errorf("%w: %dx%dx%d", ErrBadShape, c, h, w)
	}
	return &Tensor{C: c, H: h, W: w, Data: bufpool.GetFloat32(c * h * w)}, nil
}

// Release returns the element buffer to the bufpool arena and clears the
// tensor. Safe on any tensor (foreign buffers are dropped, not recycled) but
// must be called at most once, after which the tensor must not be used.
func (t *Tensor) Release() {
	if t == nil || t.Data == nil {
		return
	}
	bufpool.PutFloat32(t.Data)
	t.Data = nil
	t.C, t.H, t.W = 0, 0, 0
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return t.C * t.H * t.W }

// ByteSize returns the in-memory payload size (4 bytes per element).
func (t *Tensor) ByteSize() int { return 4 * t.Len() }

// At returns element (c, y, x). Callers must pass in-bounds indices.
func (t *Tensor) At(c, y, x int) float32 {
	return t.Data[c*t.H*t.W+y*t.W+x]
}

// Set stores element (c, y, x). Callers must pass in-bounds indices.
func (t *Tensor) Set(c, y, x int, v float32) {
	t.Data[c*t.H*t.W+y*t.W+x] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.Data))
	copy(data, t.Data)
	return &Tensor{C: t.C, H: t.H, W: t.W, Data: data}
}

// Equal reports exact equality of shape and elements. NaNs compare by bit
// pattern so deterministic pipelines remain comparable.
func (t *Tensor) Equal(o *Tensor) bool {
	if o == nil || t.C != o.C || t.H != o.H || t.W != o.W {
		return false
	}
	for i := range t.Data {
		if math.Float32bits(t.Data[i]) != math.Float32bits(o.Data[i]) {
			return false
		}
	}
	return true
}

// FromImage converts an RGB image to a float tensor scaled to [0, 1],
// matching torchvision's ToTensor: channel-major output, v/255. The result
// is pool-backed (Release when done).
func FromImage(im *imaging.Image) *Tensor {
	t, _ := NewPooled(imaging.Channels, im.H, im.W)
	plane := im.H * im.W
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			i := y*im.W + x
			t.Data[i] = float32(r) / 255
			t.Data[plane+i] = float32(g) / 255
			t.Data[2*plane+i] = float32(b) / 255
		}
	}
	return t
}

// FromImageNormalized is the fused ToTensor+Normalize kernel: one pass over
// the pixels computing (v/255 - mean[c]) / std[c] directly into a pooled
// tensor, instead of a full [0,1] conversion pass followed by a full
// normalization pass. The arithmetic is the exact float32 operation sequence
// of FromImage followed by Normalize, so outputs are bit-identical to the
// unfused pair. mean and std must have 3 entries and std must be non-zero.
func FromImageNormalized(im *imaging.Image, mean, std []float32) (*Tensor, error) {
	if len(mean) != imaging.Channels || len(std) != imaging.Channels {
		return nil, fmt.Errorf("%w: normalize wants %d-channel stats, got %d/%d",
			ErrBadShape, imaging.Channels, len(mean), len(std))
	}
	for c := 0; c < imaging.Channels; c++ {
		if std[c] == 0 {
			return nil, fmt.Errorf("%w: zero std for channel %d", ErrBadShape, c)
		}
	}
	t, err := NewPooled(imaging.Channels, im.H, im.W)
	if err != nil {
		return nil, err
	}
	plane := im.H * im.W
	mr, mg, mb := mean[0], mean[1], mean[2]
	sr, sg, sb := std[0], std[1], std[2]
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			i := y*im.W + x
			// Two float32 steps per value, matching FromImage then
			// Normalize exactly; do not algebraically rearrange.
			vr := float32(r) / 255
			vg := float32(g) / 255
			vb := float32(b) / 255
			t.Data[i] = (vr - mr) / sr
			t.Data[plane+i] = (vg - mg) / sg
			t.Data[2*plane+i] = (vb - mb) / sb
		}
	}
	return t, nil
}

// Normalize applies (v - mean[c]) / std[c] per channel in place, matching
// torchvision's Normalize. mean and std must have C entries and std must be
// non-zero.
func (t *Tensor) Normalize(mean, std []float32) error {
	if len(mean) != t.C || len(std) != t.C {
		return fmt.Errorf("%w: normalize wants %d-channel stats, got %d/%d", ErrBadShape, t.C, len(mean), len(std))
	}
	for c := 0; c < t.C; c++ {
		if std[c] == 0 {
			return fmt.Errorf("%w: zero std for channel %d", ErrBadShape, c)
		}
	}
	plane := t.H * t.W
	for c := 0; c < t.C; c++ {
		m, s := mean[c], std[c]
		seg := t.Data[c*plane : (c+1)*plane]
		for i := range seg {
			seg[i] = (seg[i] - m) / s
		}
	}
	return nil
}

// ImageNetMean and ImageNetStd are the canonical normalization constants
// used by the PyTorch ImageNet example.
var (
	ImageNetMean = []float32{0.485, 0.456, 0.406}
	ImageNetStd  = []float32{0.229, 0.224, 0.225}
)

// Marshal encodes the tensor to the STSR wire format: header plus
// little-endian float32 payload.
func (t *Tensor) Marshal() []byte {
	return t.AppendMarshal(make([]byte, 0, headerSize+4*t.Len()))
}

// AppendMarshal appends the STSR encoding to dst and returns the extended
// slice, letting callers marshal into pooled buffers without allocating.
func (t *Tensor) AppendMarshal(dst []byte) []byte {
	start := len(dst)
	n := headerSize + 4*t.Len()
	if cap(dst)-start >= n {
		dst = dst[:start+n]
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	out := dst[start:]
	copy(out, wireMagic)
	out[4] = wireVersion
	binary.LittleEndian.PutUint32(out[8:12], uint32(t.C))
	binary.LittleEndian.PutUint32(out[12:16], uint32(t.H))
	binary.LittleEndian.PutUint32(out[16:20], uint32(t.W))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(out[headerSize+4*i:], math.Float32bits(v))
	}
	return dst
}

// Unmarshal decodes an STSR stream. The returned tensor is pool-backed
// (Release when done); its data is copied out of data, never aliased.
func Unmarshal(data []byte) (*Tensor, error) {
	if len(data) < headerSize || string(data[:4]) != wireMagic {
		return nil, ErrCorrupt
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, data[4])
	}
	c := int(binary.LittleEndian.Uint32(data[8:12]))
	h := int(binary.LittleEndian.Uint32(data[12:16]))
	w := int(binary.LittleEndian.Uint32(data[16:20]))
	const maxElems = 1 << 28
	if c <= 0 || h <= 0 || w <= 0 || c*h*w > maxElems {
		return nil, fmt.Errorf("%w: shape %dx%dx%d", ErrCorrupt, c, h, w)
	}
	want := headerSize + 4*c*h*w
	if len(data) != want {
		return nil, fmt.Errorf("%w: have %d bytes, want %d", ErrCorrupt, len(data), want)
	}
	t, err := NewPooled(c, h, w)
	if err != nil {
		return nil, err
	}
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[headerSize+4*i:]))
	}
	return t, nil
}

// MarshaledSize returns the wire size of a c×h×w tensor without building it.
func MarshaledSize(c, h, w int) int { return headerSize + 4*c*h*w }
