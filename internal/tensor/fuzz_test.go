package tensor

import "testing"

// FuzzUnmarshal: the tensor parser must never panic, and accepted tensors
// round-trip exactly.
func FuzzUnmarshal(f *testing.F) {
	tt, _ := New(3, 2, 2)
	tt.Set(0, 0, 0, 1.5)
	f.Add(tt.Marshal())
	f.Add([]byte{})
	f.Add([]byte("STSR"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(got.Marshal())
		if err != nil || !again.Equal(got) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
