package policy

import (
	"testing"

	"repro/internal/dataset"
)

func benchTrace(b *testing.B, n int) *dataset.Trace {
	b.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkSophonPlan40k(b *testing.B) {
	tr := benchTrace(b, 40000)
	env := paperEnv(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSophon().Plan(tr, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidates40k(b *testing.B) {
	tr := benchTrace(b, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Candidates(tr); len(got) != 40000 {
			b.Fatal("wrong candidate count")
		}
	}
}

func BenchmarkModelFor40k(b *testing.B) {
	tr := benchTrace(b, 40000)
	plan, err := NewUniformPlan("r", tr.N(), 2)
	if err != nil {
		b.Fatal(err)
	}
	env := paperEnv(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ModelFor(tr, plan, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastFlowDecision40k(b *testing.B) {
	tr := benchTrace(b, 40000)
	env := paperEnv(48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FastFlow{}).Plan(tr, env); err != nil {
			b.Fatal(err)
		}
	}
}
