package policy

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// PlanVersion identifies one immutable plan snapshot. Versions increase
// monotonically within a run; version 0 is reserved for "unversioned" (a
// bare plan handed to the trainer outside any provider).
type PlanVersion uint32

// PlanSnapshot is an immutable (plan, environment) pair: the plan the
// control plane currently wants executed plus the environment it was
// computed against. Consumers must treat the snapshot and everything it
// points to as read-only — a replan publishes a NEW snapshot with a higher
// version rather than mutating an old one, so in-flight work holding a
// stale snapshot stays internally consistent.
type PlanSnapshot struct {
	// Version orders snapshots; higher supersedes lower.
	Version PlanVersion
	// Plan is the per-sample offload plan.
	Plan *Plan
	// Env is the environment the plan was computed against; its
	// Fingerprint ties persisted plans back to their planning inputs.
	Env Env
	// Epoch is the first training epoch the snapshot applies to.
	Epoch uint64
	// Reason records why this snapshot was produced ("initial",
	// "bandwidth-drift", "shard-loss", ...).
	Reason string
}

// String summarizes the snapshot for logs and replan histories.
func (s *PlanSnapshot) String() string {
	return fmt.Sprintf("PlanSnapshot(v%d epoch %d %q: %d/%d offloaded)",
		s.Version, s.Epoch, s.Reason, s.Plan.OffloadedCount(), s.Plan.N())
}

// PlanProvider is the consumer-side view of the control plane: every layer
// that used to hold a *Plan for the whole run holds a provider instead and
// re-reads Current at each epoch boundary. Implementations must make both
// methods safe for concurrent use.
type PlanProvider interface {
	// Current returns the latest snapshot; never nil.
	Current() *PlanSnapshot
	// Subscribe returns a channel delivering each newly published snapshot.
	// Delivery is latest-wins: a slow receiver may miss intermediate
	// versions but always eventually observes the newest. Providers that
	// never republish (static plans) return a channel that never fires.
	Subscribe() <-chan *PlanSnapshot
}

// StaticProvider adapts a fixed plan to the PlanProvider interface — the
// trivial provider that makes every pre-existing "plan once, train forever"
// call site a degenerate case of the adaptive control plane.
type StaticProvider struct {
	snap *PlanSnapshot
}

// NewStaticProvider wraps plan (computed against env) as a never-changing
// provider at version 1.
func NewStaticProvider(plan *Plan, env Env) (*StaticProvider, error) {
	if plan == nil {
		return nil, errors.New("policy: static provider needs a plan")
	}
	return &StaticProvider{snap: &PlanSnapshot{
		Version: 1,
		Plan:    plan,
		Env:     env,
		Epoch:   1,
		Reason:  "static",
	}}, nil
}

// Current implements PlanProvider.
func (p *StaticProvider) Current() *PlanSnapshot { return p.snap }

// Subscribe implements PlanProvider; the channel never fires.
func (p *StaticProvider) Subscribe() <-chan *PlanSnapshot {
	return make(chan *PlanSnapshot)
}

// PlanFeed is the publishing side of a live control plane: Publish installs
// a new snapshot (version must strictly increase) and notifies subscribers
// with latest-wins coalescing, so a subscriber that cannot keep up never
// blocks the publisher and never observes versions out of order.
type PlanFeed struct {
	mu   sync.Mutex
	cur  *PlanSnapshot
	subs []chan *PlanSnapshot
}

// NewPlanFeed starts a feed at the given initial snapshot.
func NewPlanFeed(initial *PlanSnapshot) (*PlanFeed, error) {
	if initial == nil || initial.Plan == nil {
		return nil, errors.New("policy: plan feed needs an initial snapshot with a plan")
	}
	if initial.Version == 0 {
		return nil, errors.New("policy: snapshot version 0 is reserved for unversioned plans")
	}
	return &PlanFeed{cur: initial}, nil
}

// Current implements PlanProvider.
func (f *PlanFeed) Current() *PlanSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// Subscribe implements PlanProvider. The returned channel has capacity 1;
// Publish drains a stale pending snapshot before delivering the new one.
func (f *PlanFeed) Subscribe() <-chan *PlanSnapshot {
	ch := make(chan *PlanSnapshot, 1)
	f.mu.Lock()
	f.subs = append(f.subs, ch)
	f.mu.Unlock()
	return ch
}

// Publish installs snap as the current snapshot. It rejects nil plans and
// non-increasing versions — the monotonicity every downstream layer (wire
// stamping, server-side validation, replan histories) relies on.
func (f *PlanFeed) Publish(snap *PlanSnapshot) error {
	if snap == nil || snap.Plan == nil {
		return errors.New("policy: publish needs a snapshot with a plan")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if snap.Version <= f.cur.Version {
		return fmt.Errorf("policy: plan version %d does not supersede %d",
			snap.Version, f.cur.Version)
	}
	f.cur = snap
	for _, ch := range f.subs {
		// Latest-wins: clear a stale undelivered snapshot, then deliver.
		select {
		case <-ch:
		default:
		}
		ch <- snap
	}
	return nil
}

// Fingerprint hashes the planning-relevant environment fields into a stable
// 64-bit identity. Persisted plans carry it so a loaded plan can be checked
// against the environment it is about to be used in; two Envs with equal
// fingerprints were (up to float bit patterns) the same planning inputs.
func (e Env) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(math.Float64bits(e.Bandwidth))
	put(uint64(e.ComputeCores))
	put(uint64(e.StorageCores))
	put(math.Float64bits(e.StorageSlowdown))
	put(math.Float64bits(e.GPU.Throughput))
	put(uint64(e.GPUs()))
	put(uint64(e.ShardCount()))
	return h.Sum64()
}
