package policy

import (
	"testing"

	"repro/internal/netsim"
)

func defaultPass() *FidelityPass {
	return &FidelityPass{
		Model:            DefaultFidelityModel(),
		MaxDrop:          1,
		QualityFloor:     0.97,
		MeanQualityFloor: 0.98,
	}
}

func TestFidelityModelValidate(t *testing.T) {
	if err := DefaultFidelityModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FidelityModel{
		{Levels: 0},
		{Levels: 2, ByteFrac: []float64{0.5}, Quality: []float64{0.9, 1}},
		{Levels: 2, ByteFrac: []float64{0.5, 1}, Quality: []float64{1, 0.9}},        // not monotone
		{Levels: 2, ByteFrac: []float64{0.5, 0.9}, Quality: []float64{0.9, 1}},     // doesn't reach 1
		{Levels: 2, ByteFrac: []float64{0, 1}, Quality: []float64{0.9, 1}},         // zero fraction
		{Levels: 2, ByteFrac: []float64{0.5, 1}, Quality: []float64{1.1, 1}},       // above 1
		{Levels: 3, ByteFrac: []float64{0.9, 0.5, 1}, Quality: []float64{1, 1, 1}}, // not monotone
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

// Under a constrained link, the fidelity pass must cut planned traffic
// beyond the best discrete plan while honoring the quality floors — the
// core claim of the progressive refactor.
func TestSophonFidelityPassReducesTraffic(t *testing.T) {
	tr := openImages(t, 400)
	env := paperEnv(4) // few storage cores: the discrete loop stalls on TCS
	env.Bandwidth = netsim.Mbps(200)

	discrete, err := NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := (&Sophon{Fidelity: defaultPass()}).Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if !fid.HasFidelity() {
		t.Fatal("fidelity pass reduced no samples under a saturated link")
	}
	fm := DefaultFidelityModel()
	discTraffic, err := discrete.TrafficWith(tr, fm)
	if err != nil {
		t.Fatal(err)
	}
	fidTraffic, err := fid.TrafficWith(tr, fm)
	if err != nil {
		t.Fatal(err)
	}
	if fidTraffic >= discTraffic {
		t.Fatalf("fidelity plan ships %d bytes, discrete ships %d", fidTraffic, discTraffic)
	}
	if q := fid.MeanQuality(fm); q < 0.98 {
		t.Fatalf("mean quality %.4f below the configured floor 0.98", q)
	}
	for i := range fid.Fidelity {
		if fid.Fidelity[i] > 0 && fid.Splits[i] != 0 {
			t.Fatalf("sample %d has fidelity %d at split %d; fidelity only applies to raw containers",
				i, fid.Fidelity[i], fid.Splits[i])
		}
		if drop := fid.FidelityOf(i); drop > 0 && fm.qualityFor(drop) < 0.97 {
			t.Fatalf("sample %d dropped to quality %.3f, floor is 0.97", i, fm.qualityFor(drop))
		}
	}

	// Epoch model must improve (or hold) with the extra dimension.
	dm, err := ModelForWith(tr, discrete, env, fm)
	if err != nil {
		t.Fatal(err)
	}
	fmod, err := ModelForWith(tr, fid, env, fm)
	if err != nil {
		t.Fatal(err)
	}
	if fmod.Predicted() > dm.Predicted() {
		t.Fatalf("fidelity plan predicts %v, discrete predicts %v", fmod.Predicted(), dm.Predicted())
	}
}

// With zero storage cores the discrete loop is disabled entirely, yet the
// progressive pass still applies — slicing needs no preprocessing CPU.
func TestSophonFidelityWithZeroStorageCores(t *testing.T) {
	tr := openImages(t, 300)
	env := paperEnv(0)
	env.Bandwidth = netsim.Mbps(150)
	plan, err := (&Sophon{Fidelity: defaultPass()}).Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OffloadedCount() != 0 {
		t.Fatal("offloaded with zero storage cores")
	}
	if !plan.HasFidelity() {
		t.Fatal("no fidelity reduction despite a saturated link and zero storage cores")
	}
}

// A workload that is not network-bound must be left untouched at full
// fidelity, mirroring the discrete gate.
func TestSophonFidelityNotIOBound(t *testing.T) {
	tr := openImages(t, 120)
	env := paperEnv(8)
	env.Bandwidth = netsim.Mbps(100000)
	plan, err := (&Sophon{Fidelity: defaultPass()}).Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HasFidelity() {
		t.Fatal("reduced fidelity on a compute-bound workload")
	}
	if q := plan.MeanQuality(DefaultFidelityModel()); q != 1 {
		t.Fatalf("mean quality %.4f, want exactly 1", q)
	}
}

// The fidelity accounting variants must agree with the classic functions
// when the plan carries no fidelity dimension.
func TestFidelityAccountingBackwardCompatible(t *testing.T) {
	tr := openImages(t, 200)
	plan, err := NewSophon().Plan(tr, paperEnv(16))
	if err != nil {
		t.Fatal(err)
	}
	fm := DefaultFidelityModel()
	classic, err := plan.Traffic(tr)
	if err != nil {
		t.Fatal(err)
	}
	with, err := plan.TrafficWith(tr, fm)
	if err != nil {
		t.Fatal(err)
	}
	if classic != with {
		t.Fatalf("TrafficWith %d != Traffic %d on a fidelity-free plan", with, classic)
	}
	m1, err := ModelFor(tr, plan, paperEnv(16))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ModelForWith(tr, plan, paperEnv(16), fm)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("ModelForWith %+v != ModelFor %+v on a fidelity-free plan", m2, m1)
	}
	if plan.FidelityOf(0) != 0 || plan.FidelityOf(-5) != 0 || plan.FidelityOf(10_000) != 0 {
		t.Fatal("FidelityOf must be 0 for missing/out-of-range entries")
	}
}

func TestFidelityPassValidate(t *testing.T) {
	good := defaultPass()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := FidelityPass{Model: DefaultFidelityModel(), MaxDrop: 9}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted out-of-range MaxDrop")
	}
	bad = FidelityPass{Model: DefaultFidelityModel(), QualityFloor: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted quality floor above 1")
	}
	if _, err := (&Sophon{Fidelity: &FidelityPass{}}).Plan(openImages(t, 10), paperEnv(4)); err == nil {
		t.Fatal("accepted zero-valued fidelity pass (invalid model)")
	}
}
