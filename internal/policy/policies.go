package policy

import (
	"repro/internal/dataset"
)

// Capability is a tri-state feature level for the Table 1 comparison.
type Capability uint8

// Capability levels.
const (
	No Capability = iota
	Partial
	Yes
)

// String renders the level the way the paper's table does.
func (c Capability) String() string {
	switch c {
	case Yes:
		return "yes"
	case Partial:
		return "partial"
	default:
		return "no"
	}
}

// Capabilities is one row of the paper's Table 1.
type Capabilities struct {
	OperationSelective Capability // can offload a subset of ops
	DataPartial        Capability // can offload part of the data path per sample
	DataSelective      Capability // chooses per-sample whether to offload
	NearStorage        Capability // offloads to the storage cluster itself
}

// Policy produces an offload plan for a profiled dataset in an environment.
type Policy interface {
	Name() string
	Capabilities() Capabilities
	Plan(tr *dataset.Trace, env Env) (*Plan, error)
}

// NoOff is the original training pipeline: nothing is offloaded.
type NoOff struct{}

// Name implements Policy.
func (NoOff) Name() string { return "No-Off" }

// Capabilities implements Policy.
func (NoOff) Capabilities() Capabilities { return Capabilities{} }

// Plan implements Policy.
func (NoOff) Plan(tr *dataset.Trace, env Env) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return NewUniformPlan("No-Off", tr.N(), 0)
}

// AllOff offloads every op of every sample — the coarse strategy the paper
// shows backfires because ToTensor inflates the transfer 4×.
type AllOff struct{}

// Name implements Policy.
func (AllOff) Name() string { return "All-Off" }

// Capabilities implements Policy.
func (AllOff) Capabilities() Capabilities {
	return Capabilities{NearStorage: Yes}
}

// Plan implements Policy.
func (AllOff) Plan(tr *dataset.Trace, env Env) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.StorageCores == 0 {
		return NewUniformPlan("All-Off", tr.N(), 0)
	}
	return NewUniformPlan("All-Off", tr.N(), dataset.OpCount)
}

// ResizeOff offloads Decode and RandomResizedCrop for every sample — the
// static heuristic from the paper's evaluation, which wins on OpenImages
// but loses on ImageNet and saturates weak storage CPUs.
type ResizeOff struct{}

// ResizeSplit is the prefix length of Decode+RandomResizedCrop.
const ResizeSplit = 2

// Name implements Policy.
func (ResizeOff) Name() string { return "Resize-Off" }

// Capabilities implements Policy.
func (ResizeOff) Capabilities() Capabilities {
	return Capabilities{OperationSelective: Yes, DataPartial: Yes, NearStorage: Yes}
}

// Plan implements Policy.
func (ResizeOff) Plan(tr *dataset.Trace, env Env) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.StorageCores == 0 {
		return NewUniformPlan("Resize-Off", tr.N(), 0)
	}
	return NewUniformPlan("Resize-Off", tr.N(), ResizeSplit)
}

// FastFlow models the published FastFlow decision rule: it treats the whole
// preprocessing pipeline as a single unit, applies one decision uniformly
// to all samples, and offloads only when its cost model predicts a shorter
// epoch. With traffic-inflating pipelines it therefore always declines —
// exactly the behaviour the paper reports in both evaluation scenarios.
type FastFlow struct{}

// Name implements Policy.
func (FastFlow) Name() string { return "FastFlow" }

// Capabilities implements Policy.
func (FastFlow) Capabilities() Capabilities {
	return Capabilities{DataPartial: Partial}
}

// Plan implements Policy.
func (FastFlow) Plan(tr *dataset.Trace, env Env) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	noOff, err := NewUniformPlan("FastFlow", tr.N(), 0)
	if err != nil {
		return nil, err
	}
	if env.StorageCores == 0 {
		return noOff, nil
	}
	baseline, err := ModelFor(tr, noOff, env)
	if err != nil {
		return nil, err
	}
	allOff, err := NewUniformPlan("FastFlow", tr.N(), dataset.OpCount)
	if err != nil {
		return nil, err
	}
	offloaded, err := ModelFor(tr, allOff, env)
	if err != nil {
		return nil, err
	}
	if offloaded.Predicted() < baseline.Predicted() {
		return allOff, nil
	}
	return noOff, nil
}

// Oracle is the traffic lower bound: every sample ships its minimum-size
// stage regardless of storage CPU cost. It is not achievable under CPU
// constraints — the gap between Oracle and SOPHON measures what the
// efficiency-ordered greedy loop gives up to respect them (Ablation H).
type Oracle struct{}

// Name implements Policy.
func (Oracle) Name() string { return "Oracle" }

// Capabilities implements Policy.
func (Oracle) Capabilities() Capabilities {
	return Capabilities{
		OperationSelective: Yes,
		DataPartial:        Yes,
		DataSelective:      Yes,
		NearStorage:        Yes,
	}
}

// Plan implements Policy.
func (Oracle) Plan(tr *dataset.Trace, env Env) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	plan, err := NewUniformPlan("Oracle", tr.N(), 0)
	if err != nil {
		return nil, err
	}
	if env.StorageCores == 0 {
		return plan, nil
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		if k := r.MinStage(); k > 0 && r.Saving(k) > 0 {
			plan.Splits[i] = uint8(k)
		}
	}
	return plan, nil
}

// Baselines returns the four comparison policies in the paper's order.
func Baselines() []Policy {
	return []Policy{NoOff{}, AllOff{}, FastFlow{}, ResizeOff{}}
}

// All returns every policy including SOPHON, in the paper's figure order.
func All() []Policy {
	return append(Baselines(), NewSophon())
}
