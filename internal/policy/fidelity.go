package policy

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
)

// FidelityModel describes a progressive container family's byte/quality
// ladder: with Levels scans, serving the first k scans costs
// ByteFrac[k-1] of the full container and reconstructs at Quality[k-1].
// The planner consumes this instead of per-sample scan tables — the
// fractions are calibrated once against the real codec (imaging.SJPR) on
// representative images, the same way the dataset's cost model calibrates
// op times.
type FidelityModel struct {
	Levels   int
	ByteFrac []float64 // cumulative prefix byte fraction; ByteFrac[Levels-1] == 1
	Quality  []float64 // reconstruction quality in (0, 1]; Quality[Levels-1] == 1
}

// ErrFidelityModel reports an inconsistent ladder.
var ErrFidelityModel = errors.New("policy: invalid fidelity model")

// Validate checks ladder shape: both tracks cover every level, are
// monotone non-decreasing, stay in (0, 1], and reach exactly 1 at full
// depth.
func (m FidelityModel) Validate() error {
	if m.Levels < 1 {
		return fmt.Errorf("%w: %d levels", ErrFidelityModel, m.Levels)
	}
	if len(m.ByteFrac) != m.Levels || len(m.Quality) != m.Levels {
		return fmt.Errorf("%w: %d levels with %d byte fractions, %d qualities",
			ErrFidelityModel, m.Levels, len(m.ByteFrac), len(m.Quality))
	}
	for k := 0; k < m.Levels; k++ {
		if m.ByteFrac[k] <= 0 || m.ByteFrac[k] > 1 || m.Quality[k] <= 0 || m.Quality[k] > 1 {
			return fmt.Errorf("%w: level %d out of (0, 1]", ErrFidelityModel, k)
		}
		if k > 0 && (m.ByteFrac[k] < m.ByteFrac[k-1] || m.Quality[k] < m.Quality[k-1]) {
			return fmt.Errorf("%w: level %d not monotone", ErrFidelityModel, k)
		}
	}
	if m.ByteFrac[m.Levels-1] != 1 || m.Quality[m.Levels-1] != 1 {
		return fmt.Errorf("%w: full depth must be exactly 1", ErrFidelityModel)
	}
	return nil
}

// DefaultFidelityModel is a 4-scan ladder calibrated against imaging.SJPR
// on synthetic photos at DefaultQuality (see the calibration test in
// internal/eval and the sophon-bench -fidelity harness, which re-measures
// it from the live codec rather than trusting these constants).
func DefaultFidelityModel() FidelityModel {
	return FidelityModel{
		Levels:   4,
		ByteFrac: []float64{0.20, 0.42, 0.68, 1},
		Quality:  []float64{0.86, 0.94, 0.98, 1},
	}
}

// MaxDrop returns the deepest scan drop the ladder supports.
func (m FidelityModel) MaxDrop() int { return m.Levels - 1 }

// fracFor returns the byte fraction shipped when drop scans are withheld.
func (m FidelityModel) fracFor(drop int) float64 {
	if drop <= 0 {
		return 1
	}
	if drop > m.Levels-1 {
		drop = m.Levels - 1
	}
	return m.ByteFrac[m.Levels-1-drop]
}

// qualityFor returns the reconstruction quality when drop scans are
// withheld.
func (m FidelityModel) qualityFor(drop int) float64 {
	if drop <= 0 {
		return 1
	}
	if drop > m.Levels-1 {
		drop = m.Levels - 1
	}
	return m.Quality[m.Levels-1-drop]
}

// BytesAt returns the transfer size when drop scans are withheld from a
// full container of size bytes (never below 1 byte; drop 0 is the full
// size). This is the single byte-accounting rule shared by the planner and
// the discrete-event engine.
func (m FidelityModel) BytesAt(size int64, drop int) int64 {
	if drop <= 0 {
		return size
	}
	scaled := int64(float64(size) * m.fracFor(drop))
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// QualityAt returns the reconstruction quality when drop scans are withheld
// (1 at full fidelity).
func (m FidelityModel) QualityAt(drop int) float64 { return m.qualityFor(drop) }

// FidelityOf returns how many refinement scans sample id's raw container
// drops in transfer (0 = full fidelity; plans without a fidelity dimension
// are full-fidelity everywhere).
func (p *Plan) FidelityOf(id int) int {
	if id < 0 || id >= len(p.Fidelity) {
		return 0
	}
	return int(p.Fidelity[id])
}

// HasFidelity reports whether any sample ships at reduced fidelity.
func (p *Plan) HasFidelity() bool {
	for _, f := range p.Fidelity {
		if f > 0 {
			return true
		}
	}
	return false
}

// ReducedCount returns how many samples ship at reduced fidelity.
func (p *Plan) ReducedCount() int {
	n := 0
	for _, f := range p.Fidelity {
		if f > 0 {
			n++
		}
	}
	return n
}

// MeanQuality returns the plan's mean per-sample reconstruction quality
// under the ladder: 1.0 for discrete-cut and full-fidelity samples,
// Quality[L-1-drop] for reduced ones.
func (p *Plan) MeanQuality(fm FidelityModel) float64 {
	if p.N() == 0 {
		return 1
	}
	sum := 0.0
	for i := range p.Splits {
		if p.Splits[i] == 0 {
			sum += fm.qualityFor(p.FidelityOf(i))
		} else {
			sum += 1
		}
	}
	return sum / float64(p.N())
}

// sampleBytes returns sample i's planned transfer size: the stage-split
// artifact, scaled by the fidelity prefix fraction when the sample ships
// its raw progressive container at reduced depth. Fidelity only applies at
// split 0 — deeper cuts ship decoded artifacts that have no scan
// structure.
func (p *Plan) sampleBytes(r *dataset.Record, i int, fm FidelityModel) int64 {
	size := r.StageSizes[p.Splits[i]]
	if p.Splits[i] != 0 {
		return size
	}
	return fm.BytesAt(size, p.FidelityOf(i))
}

// TrafficWith is Traffic with fidelity-aware byte accounting.
func (p *Plan) TrafficWith(tr *dataset.Trace, fm FidelityModel) (int64, error) {
	if err := fm.Validate(); err != nil {
		return 0, err
	}
	if len(p.Splits) != tr.N() {
		return 0, fmt.Errorf("%w: plan %d vs trace %d", ErrPlanMismatch, len(p.Splits), tr.N())
	}
	var sum int64
	for i := range tr.Records {
		sum += p.sampleBytes(&tr.Records[i], i, fm)
	}
	return sum, nil
}

// ShardLoadsWith is ShardLoads with fidelity-aware byte accounting.
// Prefix serving burns no storage CPU — the server slices the stored
// container — so the CPU track is identical to ShardLoads.
func (p *Plan) ShardLoadsWith(tr *dataset.Trace, shards int, fm FidelityModel) ([]int64, []time.Duration, error) {
	if err := fm.Validate(); err != nil {
		return nil, nil, err
	}
	if len(p.Splits) != tr.N() {
		return nil, nil, fmt.Errorf("%w: plan %d vs trace %d", ErrPlanMismatch, len(p.Splits), tr.N())
	}
	m, err := cluster.NewShardMap(shards)
	if err != nil {
		return nil, nil, err
	}
	traffic := make([]int64, shards)
	storageCPU := make([]time.Duration, shards)
	for i := range tr.Records {
		s := m.ShardOf(uint32(i))
		traffic[s] += p.sampleBytes(&tr.Records[i], i, fm)
		storageCPU[s] += tr.Records[i].PrefixTime(int(p.Splits[i]))
	}
	return traffic, storageCPU, nil
}

// ModelForWith is ModelFor with fidelity-aware byte accounting.
func ModelForWith(tr *dataset.Trace, p *Plan, env Env, fm FidelityModel) (EpochModel, error) {
	if err := env.Validate(); err != nil {
		return EpochModel{}, err
	}
	computeCPU, err := p.ComputeCPU(tr)
	if err != nil {
		return EpochModel{}, err
	}
	m := EpochModel{
		TG:  env.GPU.EpochTime(tr.N()) / time.Duration(env.GPUs()),
		TCC: computeCPU / time.Duration(env.ComputeCores),
	}
	traffic, storageCPU, err := p.ShardLoadsWith(tr, env.ShardCount(), fm)
	if err != nil {
		return EpochModel{}, err
	}
	for s := range traffic {
		if t := time.Duration(float64(traffic[s]) / env.Bandwidth * float64(time.Second)); t > m.TNet {
			m.TNet = t
		}
		if storageCPU[s] > 0 {
			if env.StorageCores == 0 {
				return EpochModel{}, errors.New("policy: plan offloads but storage has 0 cores")
			}
			scaled := time.Duration(float64(storageCPU[s]) * env.StorageSlowdown)
			if t := scaled / time.Duration(env.StorageCores); t > m.TCS {
				m.TCS = t
			}
		}
	}
	return m, nil
}

// FidelityPass configures SOPHON's progressive second pass: after the
// discrete greedy loop, samples still shipping raw may withhold refinement
// scans. Unlike a discrete cut, a fidelity drop saves bytes at ZERO
// storage-CPU cost (the server slices the stored container without
// re-encoding), so it reaches exactly the samples the discrete loop cannot
// help once storage cores are the binding constraint — the continuum the
// progressive-records line of work adds to the paper's decision space.
type FidelityPass struct {
	// Model is the calibrated byte/quality ladder; required.
	Model FidelityModel
	// MaxDrop caps scans withheld per sample; 0 means the ladder's maximum.
	MaxDrop int
	// QualityFloor is the per-sample reconstruction quality floor; samples
	// are never dropped below it. 0 means no per-sample floor.
	QualityFloor float64
	// MeanQualityFloor bounds the plan-wide mean quality; admission stops
	// before crossing it. 0 means no aggregate floor.
	MeanQualityFloor float64
}

// Validate checks the pass configuration.
func (fp FidelityPass) Validate() error {
	if err := fp.Model.Validate(); err != nil {
		return err
	}
	if fp.MaxDrop < 0 || fp.MaxDrop > fp.Model.MaxDrop() {
		return fmt.Errorf("%w: max drop %d with %d levels", ErrFidelityModel, fp.MaxDrop, fp.Model.Levels)
	}
	if fp.QualityFloor < 0 || fp.QualityFloor > 1 || fp.MeanQualityFloor < 0 || fp.MeanQualityFloor > 1 {
		return fmt.Errorf("%w: quality floors out of [0, 1]", ErrFidelityModel)
	}
	return nil
}

// applyFidelityPass runs the progressive greedy loop over a discrete plan
// in place: rank split-0 samples by bytes saved at their deepest
// floor-respecting drop, admit while the sample's shard keeps T_Net
// strictly dominant and the plan-wide mean quality stays above the floor.
// The tg/tcc/tnet/tcs state continues from the discrete loop so the stop
// condition is shared.
func applyFidelityPass(plan *Plan, tr *dataset.Trace, env Env, fp FidelityPass,
	shardMap *cluster.ShardMap, tg, tcc time.Duration, tnet, tcs []time.Duration) {
	maxDrop := fp.MaxDrop
	if maxDrop == 0 {
		maxDrop = fp.Model.MaxDrop()
	}
	type fidCand struct {
		id     int
		drop   int
		saving int64
	}
	cands := make([]fidCand, 0, tr.N())
	for i := range tr.Records {
		if plan.Splits[i] != 0 {
			continue
		}
		drop := maxDrop
		for drop > 0 && fp.QualityFloor > 0 && fp.Model.qualityFor(drop) < fp.QualityFloor {
			drop--
		}
		if drop == 0 {
			continue
		}
		raw := tr.Records[i].StageSizes[0]
		saving := raw - int64(float64(raw)*fp.Model.fracFor(drop))
		if saving <= 0 {
			continue
		}
		cands = append(cands, fidCand{id: i, drop: drop, saving: saving})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].saving != cands[j].saving {
			return cands[i].saving > cands[j].saving
		}
		return cands[i].id < cands[j].id
	})

	netDominant := func(sh int) bool {
		return tnet[sh] > tg && tnet[sh] > tcc && tnet[sh] > tcs[sh]
	}
	n := float64(plan.N())
	qualityBudget := 0.0 // total quality mass the floor allows us to spend
	if fp.MeanQualityFloor > 0 {
		qualityBudget = (1 - fp.MeanQualityFloor) * n
	}
	spent := 0.0
	for _, c := range cands {
		sh := shardMap.ShardOf(uint32(c.id))
		if !netDominant(sh) {
			continue
		}
		cost := 1 - fp.Model.qualityFor(c.drop)
		if fp.MeanQualityFloor > 0 && spent+cost > qualityBudget {
			continue // a cheaper (shallower-loss) candidate may still fit
		}
		if len(plan.Fidelity) == 0 {
			plan.Fidelity = make([]uint8, plan.N())
		}
		plan.Fidelity[c.id] = uint8(c.drop)
		spent += cost
		tnet[sh] -= time.Duration(float64(c.saving) / env.Bandwidth * float64(time.Second))
	}
}
