// Package policy implements offloading plans and the policies that produce
// them: the paper's baselines (No-Off, All-Off, Resize-Off, FastFlow) and
// SOPHON's decision engine, which selects samples in descending offloading
// efficiency until network time stops being the dominant epoch cost.
package policy

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gpu"
)

// Plan assigns each sample a split: the number of pipeline ops executed on
// the storage server before transfer. Split 0 ships the raw object.
//
// Fidelity is the progressive second dimension: for split-0 samples stored
// as progressive containers, Fidelity[i] refinement scans are withheld in
// transfer (the server slices the stored container; see imaging.SJPR). A
// nil or all-zero Fidelity means full fidelity everywhere — the discrete
// plans of earlier versions are exactly that case, so SOPHPLN1/2 plans
// load unchanged. Fidelity is advisory for split > 0: deeper cuts ship
// decoded artifacts with no scan structure.
type Plan struct {
	Name     string
	Splits   []uint8
	Fidelity []uint8 // scans dropped per sample; nil = full fidelity
}

// ErrPlanMismatch reports a plan sized for a different dataset.
var ErrPlanMismatch = errors.New("policy: plan does not match trace")

// NewUniformPlan assigns the same split to every one of n samples.
func NewUniformPlan(name string, n, split int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("policy: plan needs n > 0, got %d", n)
	}
	if split < 0 || split > dataset.OpCount {
		return nil, fmt.Errorf("policy: split %d out of range", split)
	}
	splits := make([]uint8, n)
	for i := range splits {
		splits[i] = uint8(split)
	}
	return &Plan{Name: name, Splits: splits}, nil
}

// TransferOnly returns the plan that ships every sample raw — the valid
// fallback for a tenant granted zero storage cores, which must still train
// (transfer-only) rather than be dropped from an allocation.
func TransferOnly(name string, n int) (*Plan, error) {
	return NewUniformPlan(name, n, 0)
}

// N returns the number of samples covered.
func (p *Plan) N() int { return len(p.Splits) }

// Split returns sample id's split.
func (p *Plan) Split(id int) int {
	if id < 0 || id >= len(p.Splits) {
		return 0
	}
	return int(p.Splits[id])
}

// OffloadedCount returns how many samples have a non-zero split.
func (p *Plan) OffloadedCount() int {
	n := 0
	for _, s := range p.Splits {
		if s > 0 {
			n++
		}
	}
	return n
}

// SplitHistogram counts samples per split value; index k of the result is
// the number of samples shipping their stage-k artifact.
func (p *Plan) SplitHistogram() [dataset.StageCount]int {
	var h [dataset.StageCount]int
	for _, s := range p.Splits {
		if int(s) < dataset.StageCount {
			h[s]++
		}
	}
	return h
}

// String summarizes the plan for logs: name, coverage, and the split
// distribution.
func (p *Plan) String() string {
	h := p.SplitHistogram()
	if p.HasFidelity() {
		return fmt.Sprintf("Plan(%s: %d/%d offloaded, %d reduced-fidelity, splits %v)",
			p.Name, p.OffloadedCount(), p.N(), p.ReducedCount(), h)
	}
	return fmt.Sprintf("Plan(%s: %d/%d offloaded, splits %v)",
		p.Name, p.OffloadedCount(), p.N(), h)
}

// Traffic returns the planned per-epoch transfer volume in bytes: each
// sample ships its stage-split artifact.
func (p *Plan) Traffic(tr *dataset.Trace) (int64, error) {
	if len(p.Splits) != tr.N() {
		return 0, fmt.Errorf("%w: plan %d vs trace %d", ErrPlanMismatch, len(p.Splits), tr.N())
	}
	var sum int64
	for i := range tr.Records {
		sum += tr.Records[i].StageSizes[p.Splits[i]]
	}
	return sum, nil
}

// StorageCPU returns the total single-core CPU time of the offloaded
// prefixes.
func (p *Plan) StorageCPU(tr *dataset.Trace) (time.Duration, error) {
	if len(p.Splits) != tr.N() {
		return 0, fmt.Errorf("%w: plan %d vs trace %d", ErrPlanMismatch, len(p.Splits), tr.N())
	}
	var sum time.Duration
	for i := range tr.Records {
		sum += tr.Records[i].PrefixTime(int(p.Splits[i]))
	}
	return sum, nil
}

// ComputeCPU returns the total single-core CPU time of the local suffixes.
func (p *Plan) ComputeCPU(tr *dataset.Trace) (time.Duration, error) {
	if len(p.Splits) != tr.N() {
		return 0, fmt.Errorf("%w: plan %d vs trace %d", ErrPlanMismatch, len(p.Splits), tr.N())
	}
	var sum time.Duration
	for i := range tr.Records {
		sum += tr.Records[i].TotalTime() - tr.Records[i].PrefixTime(int(p.Splits[i]))
	}
	return sum, nil
}

// Env describes the training environment's resources — everything the
// decision engine needs besides per-sample metrics.
type Env struct {
	// Bandwidth is the storage→compute link capacity in bytes/second.
	Bandwidth float64
	// ComputeCores is the CPU-core count available for local preprocessing.
	ComputeCores int
	// StorageCores is the CPU-core budget for offloaded preprocessing
	// (0 disables offloading).
	StorageCores int
	// StorageSlowdown scales offloaded op times for weaker storage CPUs
	// (1 = identical CPUs, the paper's assumption).
	StorageSlowdown float64
	// GPU is the training model's speed profile.
	GPU gpu.Model
	// GPUCount is the number of accelerators sharing the link (the paper's
	// Discussion: a 400-GPU cluster needs ~200 Gbps). 0 means 1.
	GPUCount int
	// Shards is the storage-server count of a sharded tier. With K > 1,
	// Bandwidth and StorageCores become PER-SHARD quantities: every sample
	// competes only for its own shard's cores and link (placement follows
	// cluster.ShardMap), so TCS and TNet are the maxima over per-shard
	// loads rather than pooled totals. 0 or 1 means the single-server
	// setup and reproduces the paper's model exactly.
	Shards int
}

// Validate checks the environment is usable.
func (e Env) Validate() error {
	if e.Bandwidth <= 0 {
		return errors.New("policy: bandwidth must be positive")
	}
	if e.ComputeCores <= 0 {
		return errors.New("policy: compute cores must be positive")
	}
	if e.StorageCores < 0 {
		return errors.New("policy: storage cores must be non-negative")
	}
	if e.StorageSlowdown < 1 {
		return errors.New("policy: storage slowdown must be >= 1")
	}
	if !e.GPU.Valid() {
		return errors.New("policy: GPU model must have positive throughput")
	}
	if e.GPUCount < 0 {
		return errors.New("policy: GPU count must be non-negative")
	}
	if e.Shards < 0 {
		return errors.New("policy: shard count must be non-negative")
	}
	return nil
}

// GPUs returns the effective accelerator count.
func (e Env) GPUs() int {
	if e.GPUCount <= 0 {
		return 1
	}
	return e.GPUCount
}

// ShardCount returns the effective storage-server count.
func (e Env) ShardCount() int {
	if e.Shards <= 0 {
		return 1
	}
	return e.Shards
}

// EpochModel holds the paper's four per-epoch cost metrics.
type EpochModel struct {
	TG   time.Duration // GPU compute time
	TCC  time.Duration // compute-node CPU time (local preprocessing / cores)
	TCS  time.Duration // storage-node CPU time (offloaded prefixes / cores)
	TNet time.Duration // link transfer time (traffic / bandwidth)
}

// Predicted returns the modeled epoch time: the pipeline's slowest stage.
func (m EpochModel) Predicted() time.Duration {
	max := m.TG
	for _, d := range []time.Duration{m.TCC, m.TCS, m.TNet} {
		if d > max {
			max = d
		}
	}
	return max
}

// NetDominant reports whether T_Net is the strict maximum — the paper's
// condition for continuing to offload.
func (m EpochModel) NetDominant() bool {
	return m.TNet > m.TG && m.TNet > m.TCC && m.TNet > m.TCS
}

// Dominant names the largest metric (ties broken in order TG, TCC, TCS,
// TNet).
func (m EpochModel) Dominant() string {
	name, max := "TG", m.TG
	for _, c := range []struct {
		name string
		d    time.Duration
	}{{"TCC", m.TCC}, {"TCS", m.TCS}, {"TNet", m.TNet}} {
		if c.d > max {
			name, max = c.name, c.d
		}
	}
	return name
}

// ShardLoads returns each shard's planned transfer volume and single-core
// storage CPU under the canonical cluster placement. With shards == 1 the
// sums equal Plan.Traffic / Plan.StorageCPU.
func (p *Plan) ShardLoads(tr *dataset.Trace, shards int) ([]int64, []time.Duration, error) {
	if len(p.Splits) != tr.N() {
		return nil, nil, fmt.Errorf("%w: plan %d vs trace %d", ErrPlanMismatch, len(p.Splits), tr.N())
	}
	m, err := cluster.NewShardMap(shards)
	if err != nil {
		return nil, nil, err
	}
	traffic := make([]int64, shards)
	storageCPU := make([]time.Duration, shards)
	for i := range tr.Records {
		s := m.ShardOf(uint32(i))
		traffic[s] += tr.Records[i].StageSizes[p.Splits[i]]
		storageCPU[s] += tr.Records[i].PrefixTime(int(p.Splits[i]))
	}
	return traffic, storageCPU, nil
}

// ModelFor evaluates the four metrics for a plan under an environment. With
// env.Shards > 1 the storage-side metrics are per-shard maxima: each shard
// serves only its own samples over its own link with its own cores, so the
// epoch is paced by the most loaded shard, not the pooled average.
func ModelFor(tr *dataset.Trace, p *Plan, env Env) (EpochModel, error) {
	if err := env.Validate(); err != nil {
		return EpochModel{}, err
	}
	computeCPU, err := p.ComputeCPU(tr)
	if err != nil {
		return EpochModel{}, err
	}
	m := EpochModel{
		TG:  env.GPU.EpochTime(tr.N()) / time.Duration(env.GPUs()),
		TCC: computeCPU / time.Duration(env.ComputeCores),
	}
	traffic, storageCPU, err := p.ShardLoads(tr, env.ShardCount())
	if err != nil {
		return EpochModel{}, err
	}
	for s := range traffic {
		if t := time.Duration(float64(traffic[s]) / env.Bandwidth * float64(time.Second)); t > m.TNet {
			m.TNet = t
		}
		if storageCPU[s] > 0 {
			if env.StorageCores == 0 {
				return EpochModel{}, errors.New("policy: plan offloads but storage has 0 cores")
			}
			scaled := time.Duration(float64(storageCPU[s]) * env.StorageSlowdown)
			if t := scaled / time.Duration(env.StorageCores); t > m.TCS {
				m.TCS = t
			}
		}
	}
	return m, nil
}
