package policy

import (
	"testing"

	"repro/internal/gpu"
)

func testEnv() Env {
	return Env{
		Bandwidth:       62.5e6,
		ComputeCores:    8,
		StorageCores:    4,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func mustUniform(t *testing.T, n, split int) *Plan {
	t.Helper()
	p, err := NewUniformPlan("test", n, split)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStaticProvider(t *testing.T) {
	plan := mustUniform(t, 10, 0)
	p, err := NewStaticProvider(plan, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Current()
	if snap == nil || snap.Plan != plan {
		t.Fatalf("Current() = %+v, want the wrapped plan", snap)
	}
	if snap.Version != 1 {
		t.Fatalf("static snapshot version = %d, want 1", snap.Version)
	}
	select {
	case s := <-p.Subscribe():
		t.Fatalf("static provider published %v", s)
	default:
	}
	if _, err := NewStaticProvider(nil, testEnv()); err == nil {
		t.Fatal("NewStaticProvider(nil) accepted")
	}
}

func TestPlanFeedPublishAndSubscribe(t *testing.T) {
	env := testEnv()
	feed, err := NewPlanFeed(&PlanSnapshot{Version: 1, Plan: mustUniform(t, 10, 0), Env: env, Epoch: 1, Reason: "initial"})
	if err != nil {
		t.Fatal(err)
	}
	sub := feed.Subscribe()

	if err := feed.Publish(&PlanSnapshot{Version: 1, Plan: mustUniform(t, 10, 1), Env: env}); err == nil {
		t.Fatal("equal version accepted")
	}
	if err := feed.Publish(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}

	v2 := &PlanSnapshot{Version: 2, Plan: mustUniform(t, 10, 1), Env: env, Epoch: 3, Reason: "drift"}
	if err := feed.Publish(v2); err != nil {
		t.Fatal(err)
	}
	if got := feed.Current(); got != v2 {
		t.Fatalf("Current() = %v, want v2", got)
	}
	select {
	case got := <-sub:
		if got != v2 {
			t.Fatalf("subscriber got %v, want v2", got)
		}
	default:
		t.Fatal("subscriber did not receive the published snapshot")
	}

	// Latest-wins coalescing: an undrained subscriber sees only the newest.
	v3 := &PlanSnapshot{Version: 3, Plan: mustUniform(t, 10, 2), Env: env}
	v4 := &PlanSnapshot{Version: 4, Plan: mustUniform(t, 10, 3), Env: env}
	if err := feed.Publish(v3); err != nil {
		t.Fatal(err)
	}
	if err := feed.Publish(v4); err != nil {
		t.Fatal(err)
	}
	if got := <-sub; got != v4 {
		t.Fatalf("coalesced subscriber got v%d, want v4", got.Version)
	}
}

func TestEnvFingerprint(t *testing.T) {
	a := testEnv()
	b := testEnv()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal envs fingerprint differently")
	}
	b.Bandwidth /= 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("bandwidth change did not move the fingerprint")
	}
	c := testEnv()
	c.StorageCores++
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("core change did not move the fingerprint")
	}
	// GPUCount 0 and 1 are the same effective environment.
	d := testEnv()
	d.GPUCount = 1
	if a.Fingerprint() != d.Fingerprint() {
		t.Fatal("GPUCount 0 vs 1 should fingerprint identically")
	}
}
