package policy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

func TestShardLoadsSumToPlanTotals(t *testing.T) {
	tr := openImages(t, 200)
	plan, err := (&Sophon{}).Plan(tr, paperEnv(8))
	if err != nil {
		t.Fatal(err)
	}
	wantTraffic, err := plan.Traffic(tr)
	if err != nil {
		t.Fatal(err)
	}
	wantCPU, err := plan.StorageCPU(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		traffic, cpu, err := plan.ShardLoads(tr, shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(traffic) != shards || len(cpu) != shards {
			t.Fatalf("shards=%d: got %d traffic, %d cpu entries", shards, len(traffic), len(cpu))
		}
		var sumT int64
		var sumC time.Duration
		for s := range traffic {
			sumT += traffic[s]
			sumC += cpu[s]
		}
		if sumT != wantTraffic || sumC != wantCPU {
			t.Errorf("shards=%d: loads sum to (%d, %v), plan totals (%d, %v)",
				shards, sumT, sumC, wantTraffic, wantCPU)
		}
	}
}

func TestShardLoadsRejectsMismatch(t *testing.T) {
	tr := openImages(t, 50)
	short, _ := NewUniformPlan("s", 10, 0)
	if _, _, err := short.ShardLoads(tr, 2); err == nil {
		t.Fatal("accepted plan/trace size mismatch")
	}
	full, _ := NewUniformPlan("f", tr.N(), 0)
	if _, _, err := full.ShardLoads(tr, 0); err == nil {
		t.Fatal("accepted 0 shards")
	}
}

func TestEnvValidateRejectsNegativeShards(t *testing.T) {
	env := paperEnv(4)
	env.Shards = -1
	if err := env.Validate(); err == nil {
		t.Fatal("accepted negative shard count")
	}
}

// TestModelForSharded: with K shards the storage-side metrics are per-shard
// maxima, so T_Net sits between the single-link time divided by K (perfect
// balance) and the whole single-link time, and shrinks as shards are added.
func TestModelForSharded(t *testing.T) {
	tr := openImages(t, 400)
	plan, _ := NewUniformPlan("No-Off", tr.N(), 0)

	single := paperEnv(4)
	base, err := ModelFor(tr, plan, single)
	if err != nil {
		t.Fatal(err)
	}

	// Shards: 1 must be byte-identical to the unset (paper) model.
	one := single
	one.Shards = 1
	m1, err := ModelFor(tr, plan, one)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != base {
		t.Fatalf("Shards=1 model %+v differs from paper model %+v", m1, base)
	}

	prev := base.TNet
	for _, k := range []int{2, 4} {
		env := single
		env.Shards = k
		m, err := ModelFor(tr, plan, env)
		if err != nil {
			t.Fatal(err)
		}
		if m.TNet >= prev {
			t.Errorf("shards=%d: TNet %v did not shrink from %v", k, m.TNet, prev)
		}
		if m.TNet < base.TNet/time.Duration(k) {
			t.Errorf("shards=%d: TNet %v below perfect-balance bound %v", k, m.TNet, base.TNet/time.Duration(k))
		}
		if m.TG != base.TG || m.TCC != base.TCC {
			t.Errorf("shards=%d: sharding changed non-storage metrics", k)
		}
		prev = m.TNet
	}
}

// TestSophonShardedPlan: the per-shard greedy loop must (a) collapse to the
// paper's scalar loop at one shard, and (b) still produce plans whose
// predicted epoch improves on No-Off when the workload is link-bound.
func TestSophonShardedPlan(t *testing.T) {
	tr := openImages(t, 400)
	s := NewSophon()

	legacy, err := s.Plan(tr, paperEnv(8))
	if err != nil {
		t.Fatal(err)
	}
	envOne := paperEnv(8)
	envOne.Shards = 1
	one, err := s.Plan(tr, envOne)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.N(); i++ {
		if legacy.Split(i) != one.Split(i) {
			t.Fatalf("sample %d: Shards=1 split %d differs from paper split %d", i, one.Split(i), legacy.Split(i))
		}
	}

	for _, k := range []int{2, 4} {
		// Keep the per-shard link slow enough that the sharded workload is
		// still I/O-bound, otherwise the stage-1 gate plans nothing.
		env := paperEnv(8)
		env.Bandwidth = netsim.Mbps(200)
		env.Shards = k
		plan, err := s.Plan(tr, env)
		if err != nil {
			t.Fatal(err)
		}
		if plan.OffloadedCount() == 0 {
			t.Fatalf("shards=%d: link-bound workload planned no offloads", k)
		}
		noOff, _ := NewUniformPlan("No-Off", tr.N(), 0)
		mOff, err := ModelFor(tr, plan, env)
		if err != nil {
			t.Fatal(err)
		}
		mNo, err := ModelFor(tr, noOff, env)
		if err != nil {
			t.Fatal(err)
		}
		if mOff.Predicted() > mNo.Predicted() {
			t.Errorf("shards=%d: offload plan predicts %v, worse than No-Off's %v",
				k, mOff.Predicted(), mNo.Predicted())
		}
	}
}

// TestSophonStopsPerShard: after planning, no shard may still have a
// strictly dominant T_Net while offloadable candidates remain on it — the
// per-shard generalization of the paper's stop condition.
func TestSophonStopsPerShard(t *testing.T) {
	tr := openImages(t, 400)
	const k = 4
	env := paperEnv(8)
	env.Bandwidth = netsim.Mbps(200)
	env.Shards = k
	plan, err := NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFor(tr, plan, env)
	if err != nil {
		t.Fatal(err)
	}
	traffic, cpu, err := plan.ShardLoads(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(tr)
	remaining := make([]int, k)
	shardMap, err := cluster.NewShardMap(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Saving > 0 && plan.Split(c.ID) == 0 {
			remaining[shardMap.ShardOf(uint32(c.ID))]++
		}
	}
	for s := 0; s < k; s++ {
		tnet := time.Duration(float64(traffic[s]) / env.Bandwidth * float64(time.Second))
		tcs := time.Duration(float64(cpu[s])*env.StorageSlowdown) / time.Duration(env.StorageCores)
		dominant := tnet > m.TG && tnet > m.TCC && tnet > tcs
		if dominant && remaining[s] > 0 {
			t.Errorf("shard %d still net-dominant (TNet %v) with %d candidates left", s, tnet, remaining[s])
		}
	}
}
