package policy

import (
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
)

// Sophon is the paper's decision engine. Given per-sample profiles and the
// environment, it: (1) finds each sample's minimum-size stage and the CPU
// cost to reach it; (2) ranks samples by offloading efficiency — bytes of
// traffic saved per storage-CPU second; (3) greedily offloads in that order,
// updating the four epoch metrics, until T_Net stops being the strictly
// dominant cost or candidates run out.
type Sophon struct {
	// StepGuard, when set, skips any candidate whose admission would
	// increase the predicted epoch time (an extension over the paper's
	// stop conditions; benchmarked as Ablation A).
	StepGuard bool
	// Fidelity, when non-nil, enables the progressive second pass: after
	// the discrete loop, split-0 samples may additionally withhold
	// refinement scans of their progressive container (zero storage-CPU
	// cost, bounded by the pass's quality floors). The resulting plan
	// carries a Fidelity vector and persists as SOPHPLN3.
	Fidelity *FidelityPass
}

// NewSophon returns the paper-faithful engine (no step guard).
func NewSophon() *Sophon { return &Sophon{} }

// Name implements Policy.
func (s *Sophon) Name() string {
	name := "SOPHON"
	if s.StepGuard {
		name += "+guard"
	}
	if s.Fidelity != nil {
		name += "+fid"
	}
	return name
}

// Capabilities implements Policy: SOPHON is the only system with all four
// properties from Table 1.
func (s *Sophon) Capabilities() Capabilities {
	return Capabilities{
		OperationSelective: Yes,
		DataPartial:        Yes,
		DataSelective:      Yes,
		NearStorage:        Yes,
	}
}

// Candidate is one sample's best offloading option.
type Candidate struct {
	ID         int
	Split      int           // stage index of the sample's minimum size
	Saving     int64         // bytes saved vs shipping raw
	PrefixCPU  time.Duration // storage-side CPU cost (one core, unscaled)
	Efficiency float64       // bytes saved per CPU-second; 0 if not worth offloading
}

// Candidates evaluates every sample's best offload option. Samples whose
// minimum size is the raw form get Split 0 and Efficiency 0 — the 24 %
// (OpenImages) / 74 % (ImageNet) of Figure 1c that sit at ratio zero.
func Candidates(tr *dataset.Trace) []Candidate {
	out := make([]Candidate, tr.N())
	for i := range tr.Records {
		r := &tr.Records[i]
		c := Candidate{ID: i}
		k := r.MinStage()
		if k > 0 {
			saving := r.Saving(k)
			if saving > 0 {
				prefix := r.PrefixTime(k)
				c.Split = k
				c.Saving = saving
				c.PrefixCPU = prefix
				if prefix > 0 {
					c.Efficiency = float64(saving) / prefix.Seconds()
				} else {
					c.Efficiency = math.Inf(1)
				}
			}
		}
		out[i] = c
	}
	return out
}

// Plan implements Policy.
func (s *Sophon) Plan(tr *dataset.Trace, env Env) (*Plan, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if s.Fidelity != nil {
		if err := s.Fidelity.Validate(); err != nil {
			return nil, err
		}
	}
	plan, err := NewUniformPlan(s.Name(), tr.N(), 0)
	if err != nil {
		return nil, err
	}
	if env.StorageCores == 0 {
		// Discrete offloading is impossible without storage cores — but a
		// fidelity drop costs none (the server slices stored containers),
		// so the progressive pass still applies when the link dominates.
		if s.Fidelity != nil {
			if err := s.fidelityOnly(plan, tr, env); err != nil {
				return nil, err
			}
		}
		return plan, nil
	}
	model, err := ModelFor(tr, plan, env)
	if err != nil {
		return nil, err
	}
	if !model.NetDominant() {
		// The workload is not I/O-bound: the profiler would not have
		// activated offloading (stage-1 gate), and neither do we.
		return plan, nil
	}

	cands := Candidates(tr)
	// Keep only samples with a real benefit, ranked by efficiency
	// (deterministic tie-break on ID).
	ranked := cands[:0]
	for _, c := range cands {
		if c.Saving > 0 {
			ranked = append(ranked, c)
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Efficiency != ranked[j].Efficiency {
			return ranked[i].Efficiency > ranked[j].Efficiency
		}
		return ranked[i].ID < ranked[j].ID
	})

	// The greedy loop tracks the storage-side metrics PER SHARD: each
	// candidate's admission relieves only its own shard's link and burns
	// only its own shard's cores, and a candidate is admitted only while
	// its shard's T_Net is still the strictly dominant cost. With one
	// shard this collapses to the paper's scalar loop exactly.
	shards := env.ShardCount()
	shardMap, err := cluster.NewShardMap(shards)
	if err != nil {
		return nil, err
	}
	traffic, _, err := plan.ShardLoads(tr, shards)
	if err != nil {
		return nil, err
	}
	tg, tcc := model.TG, model.TCC
	tnet := make([]time.Duration, shards)
	tcs := make([]time.Duration, shards)
	for sh, b := range traffic {
		tnet[sh] = time.Duration(float64(b) / env.Bandwidth * float64(time.Second))
	}
	maxOf := func(ds []time.Duration) time.Duration {
		max := ds[0]
		for _, d := range ds[1:] {
			if d > max {
				max = d
			}
		}
		return max
	}
	netDominant := func(sh int) bool {
		return tnet[sh] > tg && tnet[sh] > tcc && tnet[sh] > tcs[sh]
	}
	anyDominant := func() bool {
		for sh := range tnet {
			if netDominant(sh) {
				return true
			}
		}
		return false
	}
	storage := time.Duration(env.StorageCores)
	compute := time.Duration(env.ComputeCores)
	for _, c := range ranked {
		if !anyDominant() {
			break // no shard's T_Net is the predominant metric anymore
		}
		sh := shardMap.ShardOf(uint32(c.ID))
		if !netDominant(sh) {
			continue // this sample's shard is already off the critical path
		}
		dNet := time.Duration(float64(c.Saving) / env.Bandwidth * float64(time.Second))
		dCS := time.Duration(float64(c.PrefixCPU)*env.StorageSlowdown) / storage
		dCC := c.PrefixCPU / compute
		if s.StepGuard {
			cur := EpochModel{TG: tg, TCC: tcc, TCS: maxOf(tcs), TNet: maxOf(tnet)}.Predicted()
			tnet[sh] -= dNet
			tcs[sh] += dCS
			next := EpochModel{TG: tg, TCC: tcc - dCC, TCS: maxOf(tcs), TNet: maxOf(tnet)}.Predicted()
			tnet[sh] += dNet
			tcs[sh] -= dCS
			if next > cur {
				continue
			}
		}
		plan.Splits[c.ID] = uint8(c.Split)
		tnet[sh] -= dNet
		tcs[sh] += dCS
		tcc -= dCC
	}
	if s.Fidelity != nil {
		// Continue the greedy state into the progressive pass: shards whose
		// T_Net the discrete loop could not bring down (typically because
		// storage cores ran out first) shed further bytes by withholding
		// refinement scans, which costs no storage CPU at all.
		applyFidelityPass(plan, tr, env, *s.Fidelity, shardMap, tg, tcc, tnet, tcs)
	}
	return plan, nil
}

// fidelityOnly runs just the progressive pass over a no-offload plan, for
// environments whose storage tier has zero preprocessing cores.
func (s *Sophon) fidelityOnly(plan *Plan, tr *dataset.Trace, env Env) error {
	model, err := ModelFor(tr, plan, env)
	if err != nil {
		return err
	}
	if !model.NetDominant() {
		return nil
	}
	shards := env.ShardCount()
	shardMap, err := cluster.NewShardMap(shards)
	if err != nil {
		return err
	}
	traffic, _, err := plan.ShardLoads(tr, shards)
	if err != nil {
		return err
	}
	tnet := make([]time.Duration, shards)
	tcs := make([]time.Duration, shards)
	for sh, b := range traffic {
		tnet[sh] = time.Duration(float64(b) / env.Bandwidth * float64(time.Second))
	}
	applyFidelityPass(plan, tr, env, *s.Fidelity, shardMap, model.TG, model.TCC, tnet, tcs)
	return nil
}
