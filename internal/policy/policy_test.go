package policy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
)

// paperEnv mirrors the paper's evaluation setup: 500 Mbps link, 48 compute
// cores, AlexNet.
func paperEnv(storageCores int) Env {
	return Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    storageCores,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func openImages(t testing.TB, n int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func imageNet(t testing.TB, n int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.ImageNet11G().ScaledTo(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUniformPlanValidation(t *testing.T) {
	if _, err := NewUniformPlan("x", 0, 0); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := NewUniformPlan("x", 5, -1); err == nil {
		t.Fatal("accepted negative split")
	}
	if _, err := NewUniformPlan("x", 5, dataset.OpCount+1); err == nil {
		t.Fatal("accepted oversized split")
	}
	p, err := NewUniformPlan("x", 5, 2)
	if err != nil || p.N() != 5 || p.Split(3) != 2 || p.OffloadedCount() != 5 {
		t.Fatalf("plan: %+v, %v", p, err)
	}
	if p.Split(-1) != 0 || p.Split(99) != 0 {
		t.Fatal("out-of-range Split should return 0")
	}
}

func TestPlanSplitHistogramAndString(t *testing.T) {
	p := &Plan{Name: "mix", Splits: []uint8{0, 0, 2, 2, 2, 5}}
	h := p.SplitHistogram()
	if h[0] != 2 || h[2] != 3 || h[5] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	s := p.String()
	for _, want := range []string{"mix", "4/6"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestPlanAccountingAgainstTrace(t *testing.T) {
	tr := openImages(t, 300)
	noOff, _ := NewUniformPlan("no", tr.N(), 0)
	allOff, _ := NewUniformPlan("all", tr.N(), dataset.OpCount)

	traffic, err := noOff.Traffic(tr)
	if err != nil || traffic != tr.TotalRawBytes() {
		t.Fatalf("no-off traffic %d vs %d, %v", traffic, tr.TotalRawBytes(), err)
	}
	sCPU, _ := noOff.StorageCPU(tr)
	if sCPU != 0 {
		t.Fatal("no-off has storage CPU")
	}
	cCPU, _ := noOff.ComputeCPU(tr)
	if cCPU != tr.TotalPreprocessCPU() {
		t.Fatal("no-off compute CPU != total")
	}

	sCPU, _ = allOff.StorageCPU(tr)
	if sCPU != tr.TotalPreprocessCPU() {
		t.Fatal("all-off storage CPU != total")
	}
	cCPU, _ = allOff.ComputeCPU(tr)
	if cCPU != 0 {
		t.Fatal("all-off has compute CPU")
	}
	// Plan/trace size mismatch is rejected.
	short, _ := NewUniformPlan("s", 10, 0)
	if _, err := short.Traffic(tr); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}

func TestEnvValidate(t *testing.T) {
	good := paperEnv(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Env{
		{Bandwidth: 0, ComputeCores: 1, StorageSlowdown: 1, GPU: gpu.AlexNet},
		{Bandwidth: 1, ComputeCores: 0, StorageSlowdown: 1, GPU: gpu.AlexNet},
		{Bandwidth: 1, ComputeCores: 1, StorageCores: -1, StorageSlowdown: 1, GPU: gpu.AlexNet},
		{Bandwidth: 1, ComputeCores: 1, StorageSlowdown: 0.5, GPU: gpu.AlexNet},
		{Bandwidth: 1, ComputeCores: 1, StorageSlowdown: 1},
	}
	for i, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, e)
		}
	}
}

func TestEpochModelPredictedAndDominant(t *testing.T) {
	m := EpochModel{TG: 1, TCC: 2, TCS: 3, TNet: 4}
	if m.Predicted() != 4 || m.Dominant() != "TNet" || !m.NetDominant() {
		t.Fatalf("model %+v: predicted=%v dominant=%s", m, m.Predicted(), m.Dominant())
	}
	m = EpochModel{TG: 9, TCC: 2, TCS: 3, TNet: 4}
	if m.Predicted() != 9 || m.Dominant() != "TG" || m.NetDominant() {
		t.Fatalf("model %+v misreported", m)
	}
	tie := EpochModel{TG: 4, TNet: 4}
	if tie.NetDominant() {
		t.Fatal("tie should not be strictly dominant")
	}
}

func TestModelForIOBoundBaseline(t *testing.T) {
	tr := openImages(t, 2000)
	noOff, _ := NewUniformPlan("no", tr.N(), 0)
	m, err := ModelFor(tr, noOff, paperEnv(48))
	if err != nil {
		t.Fatal(err)
	}
	if !m.NetDominant() {
		t.Fatalf("paper setup should be I/O-bound: %+v", m)
	}
	if m.TCS != 0 {
		t.Fatal("no-off model has storage CPU time")
	}
	// Sanity of magnitudes: ~300 KB × 2000 at 62.5 MB/s ≈ 9.6 s.
	if m.TNet < 7*time.Second || m.TNet > 13*time.Second {
		t.Fatalf("TNet = %v, want ≈9.6 s", m.TNet)
	}
}

func TestModelForRejectsOffloadWithoutCores(t *testing.T) {
	tr := openImages(t, 50)
	all, _ := NewUniformPlan("all", tr.N(), dataset.OpCount)
	if _, err := ModelFor(tr, all, paperEnv(0)); err == nil {
		t.Fatal("offloading plan with 0 storage cores accepted")
	}
}

func TestNoOffPolicy(t *testing.T) {
	tr := openImages(t, 100)
	p, err := NoOff{}.Plan(tr, paperEnv(48))
	if err != nil {
		t.Fatal(err)
	}
	if p.OffloadedCount() != 0 {
		t.Fatal("No-Off offloaded samples")
	}
}

func TestAllOffPolicy(t *testing.T) {
	tr := openImages(t, 100)
	p, err := AllOff{}.Plan(tr, paperEnv(48))
	if err != nil {
		t.Fatal(err)
	}
	if p.OffloadedCount() != tr.N() {
		t.Fatal("All-Off did not offload everything")
	}
	for i := 0; i < tr.N(); i++ {
		if p.Split(i) != dataset.OpCount {
			t.Fatalf("sample %d split %d", i, p.Split(i))
		}
	}
	// Without storage cores it degrades to no offloading.
	p, err = AllOff{}.Plan(tr, paperEnv(0))
	if err != nil || p.OffloadedCount() != 0 {
		t.Fatalf("All-Off with 0 cores: %d offloaded, %v", p.OffloadedCount(), err)
	}
}

func TestResizeOffPolicy(t *testing.T) {
	tr := openImages(t, 100)
	p, err := ResizeOff{}.Plan(tr, paperEnv(48))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.N(); i++ {
		if p.Split(i) != ResizeSplit {
			t.Fatalf("sample %d split %d", i, p.Split(i))
		}
	}
}

// TestAllOffInflatesTraffic reproduces the All-Off column of Figure 3:
// ~2× traffic on OpenImages, ~5× on ImageNet.
func TestAllOffInflatesTraffic(t *testing.T) {
	for _, tc := range []struct {
		trace  *dataset.Trace
		lo, hi float64
	}{
		{openImages(t, 3000), 1.7, 2.3},
		{imageNet(t, 3000), 4.4, 5.6},
	} {
		all, _ := NewUniformPlan("all", tc.trace.N(), dataset.OpCount)
		traffic, err := all.Traffic(tc.trace)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(traffic) / float64(tc.trace.TotalRawBytes())
		if ratio < tc.lo || ratio > tc.hi {
			t.Fatalf("%s All-Off traffic ratio %.2f, want [%.1f, %.1f]",
				tc.trace.Name, ratio, tc.lo, tc.hi)
		}
	}
}

// TestResizeOffTrafficSplit reproduces the Resize-Off rows of Figure 3:
// ~0.5× on OpenImages (a 2× reduction) but ~1.2-1.3× on ImageNet (an
// increase).
func TestResizeOffTrafficSplit(t *testing.T) {
	oi := openImages(t, 3000)
	rp, _ := NewUniformPlan("r", oi.N(), ResizeSplit)
	traffic, _ := rp.Traffic(oi)
	ratio := float64(traffic) / float64(oi.TotalRawBytes())
	if ratio < 0.40 || ratio > 0.60 {
		t.Fatalf("OpenImages Resize-Off ratio %.2f, want ~0.5", ratio)
	}

	in := imageNet(t, 3000)
	rp, _ = NewUniformPlan("r", in.N(), ResizeSplit)
	traffic, _ = rp.Traffic(in)
	ratio = float64(traffic) / float64(in.TotalRawBytes())
	if ratio < 1.10 || ratio > 1.45 {
		t.Fatalf("ImageNet Resize-Off ratio %.2f, want ~1.25", ratio)
	}
}

// TestFastFlowDeclines reproduces the paper's FastFlow observation: its
// all-or-nothing cost model predicts offloading would slow training, so it
// keeps everything local in both evaluated setups.
func TestFastFlowDeclines(t *testing.T) {
	for _, tr := range []*dataset.Trace{openImages(t, 2000), imageNet(t, 2000)} {
		p, err := FastFlow{}.Plan(tr, paperEnv(48))
		if err != nil {
			t.Fatal(err)
		}
		if p.OffloadedCount() != 0 {
			t.Fatalf("FastFlow offloaded %d samples on %s", p.OffloadedCount(), tr.Name)
		}
	}
}

// TestFastFlowAcceptsWhenProfitable: on a synthetic CPU-bound trace where
// full offload genuinely helps, FastFlow must offload — the rule is a cost
// model, not a constant "no".
func TestFastFlowAcceptsWhenProfitable(t *testing.T) {
	// Records whose tensor stage is *smaller* than raw (pathological but
	// legal) with heavy local CPU cost: offloading all ops reduces both
	// traffic and compute time.
	tr := trace50MBRaw(t)
	env := Env{Bandwidth: 1e6, ComputeCores: 1, StorageCores: 32, StorageSlowdown: 1, GPU: gpu.AlexNet}
	p, err := FastFlow{}.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if p.OffloadedCount() != tr.N() {
		t.Fatalf("FastFlow declined a profitable offload (offloaded %d)", p.OffloadedCount())
	}
}

// trace50MBRaw builds a trace where every stage shrinks and preprocessing
// is expensive.
func trace50MBRaw(t testing.TB) *dataset.Trace {
	t.Helper()
	recs := make([]dataset.Record, 64)
	for i := range recs {
		recs[i] = dataset.Record{
			ID:         uint32(i),
			RawSize:    50 << 20,
			Width:      1000,
			Height:     1000,
			StageSizes: [dataset.StageCount]int64{50 << 20, 3 << 20, 150537, 150537, 602134, 602134},
			OpTimes: [dataset.OpCount]time.Duration{
				50 * time.Millisecond, 10 * time.Millisecond, time.Millisecond,
				2 * time.Millisecond, time.Millisecond,
			},
		}
	}
	return &dataset.Trace{Name: "pathological", Records: recs}
}

func TestCandidates(t *testing.T) {
	tr := openImages(t, 1000)
	cands := Candidates(tr)
	if len(cands) != tr.N() {
		t.Fatalf("got %d candidates", len(cands))
	}
	zero, positive := 0, 0
	for i, c := range cands {
		if c.ID != i {
			t.Fatalf("candidate %d has ID %d", i, c.ID)
		}
		if c.Saving > 0 {
			positive++
			if c.Split == 0 || c.Efficiency <= 0 {
				t.Fatalf("beneficial candidate %d: split=%d eff=%v", i, c.Split, c.Efficiency)
			}
			if c.Efficiency != math.Inf(1) &&
				math.Abs(c.Efficiency-float64(c.Saving)/c.PrefixCPU.Seconds()) > 1 {
				t.Fatalf("candidate %d efficiency inconsistent", i)
			}
		} else {
			zero++
			if c.Split != 0 || c.Efficiency != 0 {
				t.Fatalf("non-beneficial candidate %d: %+v", i, c)
			}
		}
	}
	frac := float64(positive) / float64(len(cands))
	if frac < 0.70 || frac > 0.82 {
		t.Fatalf("beneficial fraction %.2f, want ~0.76 (Figure 1c)", frac)
	}
	_ = zero
}

// TestSophonAmpleCores reproduces the ample-CPU scenario of Figure 3 on
// OpenImages: ~2.2× traffic reduction, better than Resize-Off, epoch time
// strictly better than No-Off.
func TestSophonAmpleCores(t *testing.T) {
	tr := openImages(t, 4000)
	env := paperEnv(48)
	plan, err := NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	traffic, _ := plan.Traffic(tr)
	reduction := float64(tr.TotalRawBytes()) / float64(traffic)
	if reduction < 1.9 || reduction > 2.5 {
		t.Fatalf("SOPHON traffic reduction %.2fx, want ~2.2x", reduction)
	}

	resize, _ := ResizeOff{}.Plan(tr, env)
	rm, _ := ModelFor(tr, resize, env)
	sm, _ := ModelFor(tr, plan, env)
	nm, _ := ModelFor(tr, mustPlan(t, NoOff{}, tr, env), env)
	if sm.Predicted() >= nm.Predicted() {
		t.Fatalf("SOPHON (%v) not faster than No-Off (%v)", sm.Predicted(), nm.Predicted())
	}
	if sm.Predicted() > rm.Predicted() {
		t.Fatalf("SOPHON (%v) slower than Resize-Off (%v) with ample cores", sm.Predicted(), rm.Predicted())
	}
}

// TestSophonImageNet reproduces the ImageNet half of Figure 3: SOPHON still
// reduces traffic (~1.2×) where Resize-Off increases it.
func TestSophonImageNet(t *testing.T) {
	tr := imageNet(t, 4000)
	env := paperEnv(48)
	plan, err := NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	traffic, _ := plan.Traffic(tr)
	reduction := float64(tr.TotalRawBytes()) / float64(traffic)
	if reduction < 1.1 || reduction > 1.5 {
		t.Fatalf("SOPHON ImageNet reduction %.2fx, want ~1.2-1.3x", reduction)
	}
}

// TestSophonRespectsWeakStorage: with one storage core, SOPHON offloads far
// fewer samples than with 48, and T_CS never strictly exceeds every other
// metric (the stop condition).
func TestSophonRespectsWeakStorage(t *testing.T) {
	tr := openImages(t, 4000)
	rich, err := NewSophon().Plan(tr, paperEnv(48))
	if err != nil {
		t.Fatal(err)
	}
	poor, err := NewSophon().Plan(tr, paperEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	if poor.OffloadedCount() >= rich.OffloadedCount() {
		t.Fatalf("1-core plan offloads %d ≥ 48-core plan %d",
			poor.OffloadedCount(), rich.OffloadedCount())
	}
	pm, err := ModelFor(tr, poor, paperEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	// The greedy loop stops as soon as TNet is no longer strictly largest;
	// TCS can overshoot by at most one sample's increment.
	if pm.TCS > pm.TNet*2 {
		t.Fatalf("TCS %v runs far beyond TNet %v", pm.TCS, pm.TNet)
	}
	// And the plan must still beat No-Off.
	nm, _ := ModelFor(tr, mustPlan(t, NoOff{}, tr, paperEnv(1)), paperEnv(1))
	if pm.Predicted() >= nm.Predicted() {
		t.Fatalf("SOPHON@1core (%v) not faster than No-Off (%v)", pm.Predicted(), nm.Predicted())
	}
}

// TestSophonMonotonicity is invariant #3: selected samples form an
// efficiency-prefix — no unselected candidate has strictly higher
// efficiency than a selected one (modulo exact ties).
func TestSophonMonotonicity(t *testing.T) {
	tr := openImages(t, 2000)
	plan, err := NewSophon().Plan(tr, paperEnv(2))
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(tr)
	minSelected := math.Inf(1)
	for _, c := range cands {
		if plan.Split(c.ID) > 0 && c.Efficiency < minSelected {
			minSelected = c.Efficiency
		}
	}
	for _, c := range cands {
		if plan.Split(c.ID) == 0 && c.Saving > 0 && c.Efficiency > minSelected+1e-9 {
			t.Fatalf("unselected candidate %d (eff %.0f) beats selected floor %.0f",
				c.ID, c.Efficiency, minSelected)
		}
	}
	// Selected samples always ship their min stage and never lose bytes.
	for _, c := range cands {
		if s := plan.Split(c.ID); s > 0 {
			if s != c.Split {
				t.Fatalf("sample %d split %d != min stage %d", c.ID, s, c.Split)
			}
			if tr.Records[c.ID].Saving(s) <= 0 {
				t.Fatalf("sample %d offloaded with non-positive saving", c.ID)
			}
		}
	}
}

func TestSophonZeroStorageCoresFallsBack(t *testing.T) {
	tr := openImages(t, 200)
	plan, err := NewSophon().Plan(tr, paperEnv(0))
	if err != nil {
		t.Fatal(err)
	}
	if plan.OffloadedCount() != 0 {
		t.Fatal("SOPHON offloaded with 0 storage cores")
	}
}

func TestSophonNotIOBoundDoesNothing(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(48)
	env.Bandwidth = netsim.Mbps(100000) // infinitely fast link → GPU-bound
	plan, err := NewSophon().Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OffloadedCount() != 0 {
		t.Fatal("SOPHON offloaded a non-I/O-bound workload")
	}
}

// TestSophonGuardNeverWorse: the guarded variant's predicted epoch is never
// worse than the unguarded one.
func TestSophonGuardNeverWorse(t *testing.T) {
	tr := openImages(t, 2000)
	for _, cores := range []int{1, 2, 4, 48} {
		env := paperEnv(cores)
		base, err := NewSophon().Plan(tr, env)
		if err != nil {
			t.Fatal(err)
		}
		guarded, err := (&Sophon{StepGuard: true}).Plan(tr, env)
		if err != nil {
			t.Fatal(err)
		}
		bm, _ := ModelFor(tr, base, env)
		gm, _ := ModelFor(tr, guarded, env)
		if gm.Predicted() > bm.Predicted() {
			t.Fatalf("cores=%d: guarded %v worse than base %v", cores, gm.Predicted(), bm.Predicted())
		}
	}
}

// Property: for arbitrary storage core counts and bandwidths, SOPHON's plan
// never predicts a slower epoch than No-Off.
func TestSophonNeverWorseThanNoOffProperty(t *testing.T) {
	tr := openImages(t, 800)
	f := func(cores8 uint8, mbps16 uint16) bool {
		cores := int(cores8%16) + 1
		mbps := float64(mbps16%2000) + 50
		env := Env{
			Bandwidth:       netsim.Mbps(mbps),
			ComputeCores:    48,
			StorageCores:    cores,
			StorageSlowdown: 1,
			GPU:             gpu.AlexNet,
		}
		sp, err := NewSophon().Plan(tr, env)
		if err != nil {
			return false
		}
		np, err := NoOff{}.Plan(tr, env)
		if err != nil {
			return false
		}
		sm, err := ModelFor(tr, sp, env)
		if err != nil {
			return false
		}
		nm, err := ModelFor(tr, np, env)
		if err != nil {
			return false
		}
		// Allow one-sample overshoot slack (0.5%).
		return float64(sm.Predicted()) <= float64(nm.Predicted())*1.005
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCapabilitiesTable(t *testing.T) {
	s := NewSophon()
	c := s.Capabilities()
	if c.OperationSelective != Yes || c.DataPartial != Yes || c.DataSelective != Yes || c.NearStorage != Yes {
		t.Fatalf("SOPHON capabilities: %+v", c)
	}
	for _, p := range Baselines() {
		if p.Capabilities().DataSelective == Yes {
			t.Fatalf("%s claims data-selectivity", p.Name())
		}
	}
	if len(All()) != 5 {
		t.Fatalf("All() has %d policies", len(All()))
	}
	if No.String() != "no" || Partial.String() != "partial" || Yes.String() != "yes" {
		t.Fatal("capability strings")
	}
}

func mustPlan(t testing.TB, p Policy, tr *dataset.Trace, env Env) *Plan {
	t.Helper()
	plan, err := p.Plan(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}
