// Package cliutil holds the flag-handling conventions shared by every
// cmd/* binary: one -version flag with a uniform stamp, a usage banner
// naming the binary (unknown flags print it and exit 2, the flag
// package's ExitOnError behavior), and the positive / zero-means-default
// integer validation that sophon-server and sophon-train previously
// carried as duplicated private helpers.
package cliutil

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
)

// Version is the repo-wide version stamp every binary reports under
// -version. Bump it when cutting a tagged snapshot of the tree.
const Version = "0.7.0"

// VersionLine is the single line printed by -version:
//
//	sophon-server 0.7.0 go1.24.0 linux/amd64
func VersionLine(name string) string {
	return fmt.Sprintf("%s %s %s %s/%s", name, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Setup registers the shared -version flag on fs and installs a usage
// banner that leads with the binary name and synopsis. It must run after
// the binary's own flags are registered and before fs is parsed. The
// returned bool reports, post-parse, whether -version was requested.
func Setup(fs *flag.FlagSet, name, synopsis string) *bool {
	version := fs.Bool("version", false, "print version and exit")
	fs.Usage = func() {
		out := fs.Output()
		fmt.Fprintf(out, "Usage: %s [flags]\n", name)
		if synopsis != "" {
			fmt.Fprintf(out, "%s\n", synopsis)
		}
		fmt.Fprintf(out, "\nFlags:\n")
		fs.PrintDefaults()
	}
	return version
}

// Parse wires Setup into the default flag set and parses os.Args: the
// standard main() entry point, replacing a bare flag.Parse(). Unknown
// flags print the usage banner and exit 2; -version prints VersionLine
// on stdout and exits 0.
func Parse(name, synopsis string) {
	version := Setup(flag.CommandLine, name, synopsis)
	flag.Parse()
	if *version {
		fmt.Println(VersionLine(name))
		os.Exit(0)
	}
}

// CheckInts validates integer flag values and returns every violation,
// sorted by flag name. Flags in positive must be > 0. Flags in
// zeroMeansDefault must be >= 0, and 0 is only allowed implicitly — a
// user who writes -flag=0 explicitly gets an error instead of silently
// falling back to the default. explicit holds the set of flag names the
// user actually set (see flag.FlagSet.Visit).
func CheckInts(explicit, positive, zeroMeansDefault map[string]bool, values map[string]int) []error {
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		v := values[name]
		switch {
		case positive[name] && v <= 0:
			errs = append(errs, fmt.Errorf("-%s must be positive, got %d", name, v))
		case zeroMeansDefault[name] && v < 0:
			errs = append(errs, fmt.Errorf("-%s must be non-negative, got %d", name, v))
		case zeroMeansDefault[name] && v == 0 && explicit[name]:
			errs = append(errs, fmt.Errorf("-%s must be positive when set explicitly (omit it for the default)", name))
		}
	}
	return errs
}

// ValidateInts applies CheckInts to the default flag set after parsing
// and fatals on the first violation. It is the drop-in replacement for
// the validateFlags helpers the binaries used to define privately.
func ValidateInts(logger *log.Logger, positive, zeroMeansDefault map[string]bool, values map[string]int) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if errs := CheckInts(explicit, positive, zeroMeansDefault, values); len(errs) > 0 {
		logger.Fatal(errs[0])
	}
}
