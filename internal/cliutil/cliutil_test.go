package cliutil

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestVersionLine(t *testing.T) {
	line := VersionLine("sophon-x")
	want := fmt.Sprintf("sophon-x %s %s %s/%s", Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if line != want {
		t.Fatalf("VersionLine = %q, want %q", line, want)
	}
}

func TestSetupVersionFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 1, "samples")
	version := Setup(fs, "x", "does x")
	if err := fs.Parse([]string{"-version", "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	if !*version {
		t.Fatal("-version not recorded")
	}
	if *n != 3 {
		t.Fatalf("-n = %d, want 3", *n)
	}
}

func TestSetupUsageBanner(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var buf strings.Builder
	fs.SetOutput(&buf)
	fs.Int("n", 1, "samples")
	Setup(fs, "sophon-x", "exercises the x subsystem")
	// Unknown flags must produce a non-nil error and the named banner —
	// the behavior main() surfaces as usage + exit 2 under ExitOnError.
	if err := fs.Parse([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag parsed without error")
	}
	out := buf.String()
	for _, want := range []string{"Usage: sophon-x", "exercises the x subsystem", "-version", "-n"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckInts(t *testing.T) {
	positive := map[string]bool{"n": true, "shards": true}
	zeroDef := map[string]bool{"max-inflight": true}

	t.Run("valid", func(t *testing.T) {
		errs := CheckInts(nil, positive, zeroDef,
			map[string]int{"n": 10, "shards": 2, "max-inflight": 0})
		if len(errs) != 0 {
			t.Fatalf("unexpected errors: %v", errs)
		}
	})
	t.Run("nonPositive", func(t *testing.T) {
		errs := CheckInts(nil, positive, zeroDef, map[string]int{"n": 0})
		if len(errs) != 1 || !strings.Contains(errs[0].Error(), "-n must be positive") {
			t.Fatalf("errs = %v", errs)
		}
	})
	t.Run("negativeZeroDefault", func(t *testing.T) {
		errs := CheckInts(nil, positive, zeroDef, map[string]int{"max-inflight": -1})
		if len(errs) != 1 || !strings.Contains(errs[0].Error(), "non-negative") {
			t.Fatalf("errs = %v", errs)
		}
	})
	t.Run("explicitZero", func(t *testing.T) {
		explicit := map[string]bool{"max-inflight": true}
		errs := CheckInts(explicit, positive, zeroDef, map[string]int{"max-inflight": 0})
		if len(errs) != 1 || !strings.Contains(errs[0].Error(), "set explicitly") {
			t.Fatalf("errs = %v", errs)
		}
	})
	t.Run("implicitZeroOK", func(t *testing.T) {
		errs := CheckInts(nil, positive, zeroDef, map[string]int{"max-inflight": 0})
		if len(errs) != 0 {
			t.Fatalf("unexpected errors: %v", errs)
		}
	})
	t.Run("sortedMultiple", func(t *testing.T) {
		errs := CheckInts(nil, positive, zeroDef, map[string]int{"shards": -1, "n": 0})
		if len(errs) != 2 {
			t.Fatalf("errs = %v", errs)
		}
		if !strings.Contains(errs[0].Error(), "-n ") || !strings.Contains(errs[1].Error(), "-shards ") {
			t.Fatalf("errors not sorted by flag name: %v", errs)
		}
	})
}
