package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestFetchBatchRoundTrip(t *testing.T) {
	in := &FetchBatch{
		RequestID:   9,
		Epoch:       3,
		PlanVersion: 2,
		Items: []FetchBatchItem{
			{Sample: 1, Split: 0},
			{Sample: 7, Split: 2},
			{Sample: 42, Split: 5},
		},
	}
	got := roundTrip(t, in).(*FetchBatch)
	if got.RequestID != 9 || got.Epoch != 3 || got.PlanVersion != 2 || len(got.Items) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range in.Items {
		if got.Items[i] != in.Items[i] {
			t.Fatalf("item %d: %+v != %+v", i, got.Items[i], in.Items[i])
		}
	}
}

func TestFetchBatchEmpty(t *testing.T) {
	got := roundTrip(t, &FetchBatch{RequestID: 1}).(*FetchBatch)
	if len(got.Items) != 0 {
		t.Fatalf("got %d items", len(got.Items))
	}
}

func TestFetchBatchRespRoundTrip(t *testing.T) {
	in := &FetchBatchResp{
		RequestID: 11,
		Items: []FetchBatchRespItem{
			{Sample: 1, Split: 0, Status: FetchOK, Artifact: []byte{1, 2, 3}},
			{Sample: 2, Split: 2, Status: FetchNotFound, Artifact: nil},
			{Sample: 3, Split: 5, Status: FetchOK, Artifact: bytes.Repeat([]byte{7}, 1000)},
		},
	}
	got := roundTrip(t, in).(*FetchBatchResp)
	if got.RequestID != 11 || len(got.Items) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range in.Items {
		a, b := got.Items[i], in.Items[i]
		if a.Sample != b.Sample || a.Split != b.Split || a.Status != b.Status || !bytes.Equal(a.Artifact, b.Artifact) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestFetchBatchRejectsOversized(t *testing.T) {
	items := make([]FetchBatchItem, MaxBatchItems+1)
	var buf bytes.Buffer
	if err := Write(&buf, &FetchBatch{RequestID: 1, Items: items}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("accepted oversized batch")
	}
}

func TestFetchBatchCorruptPayloads(t *testing.T) {
	mk := func(mt MsgType, payload []byte) []byte {
		b := make([]byte, 10+len(payload))
		binary.BigEndian.PutUint32(b[0:4], Magic)
		b[4] = uint8(mt)
		binary.BigEndian.PutUint32(b[6:10], uint32(len(payload)))
		copy(b[10:], payload)
		return b
	}
	declareN := func(size, n int) []byte {
		p := make([]byte, size)
		binary.BigEndian.PutUint16(p[20:22], uint16(n))
		return p
	}
	declareRespN := func(size, n int) []byte {
		p := make([]byte, size)
		binary.BigEndian.PutUint16(p[8:10], uint16(n))
		return p
	}
	cases := map[string][]byte{
		"batch short header":    mk(TypeFetchBatch, make([]byte, 10)),
		"batch wrong item size": mk(TypeFetchBatch, declareN(24, 3)),
		"resp short header":     mk(TypeFetchBatchResp, make([]byte, 5)),
		"resp truncated item":   mk(TypeFetchBatchResp, declareRespN(12, 1)),
		"resp bad artifact len": mk(TypeFetchBatchResp, func() []byte {
			p := declareRespN(20, 1)
			binary.BigEndian.PutUint32(p[16:20], 500)
			return p
		}()),
		"resp trailing junk": mk(TypeFetchBatchResp, declareRespN(25, 1)),
	}
	for name, frame := range cases {
		if _, err := Read(bytes.NewReader(frame)); err == nil {
			t.Errorf("Read accepted %s", name)
		}
	}
}

// Property: batches of arbitrary items round-trip exactly.
func TestFetchBatchRoundTripProperty(t *testing.T) {
	f := func(req, epoch uint64, samples []uint32) bool {
		if len(samples) > MaxBatchItems {
			samples = samples[:MaxBatchItems]
		}
		in := &FetchBatch{RequestID: req, Epoch: epoch}
		for i, s := range samples {
			in.Items = append(in.Items, FetchBatchItem{Sample: s, Split: uint8(i % 6)})
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*FetchBatch)
		if !ok || got.RequestID != req || got.Epoch != epoch || len(got.Items) != len(in.Items) {
			return false
		}
		for i := range in.Items {
			if got.Items[i] != in.Items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
