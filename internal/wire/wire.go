// Package wire defines the binary protocol between the compute-node client
// and the storage server (the paper used gRPC; this is a dependency-free
// framed equivalent). Each frame is: 4-byte magic, 1-byte message type,
// 1-byte flags, 4-byte big-endian payload length, 4-byte CRC32-C checksum
// over the type, flags, length, and payload, then the payload. A Fetch
// carries the offload directive — the number of pipeline ops the server
// should execute before replying — plus the epoch so the server derives the
// exact augmentation seeds the client would have used locally.
//
// The checksum turns silent corruption on the link into ErrChecksum, a
// typed transport-level error: a corrupted frame can tear the session down
// and be retried, but can never decode into a wrong artifact.
//
// Protocol version 2 makes the connection a multiplexed session: every
// request and response carries a RequestID, responses to distinct requests
// MAY arrive in any order, and a client correlates them by RequestID alone.
// A server is free to process requests from one connection concurrently and
// write whichever response finishes first. RequestID 0 is reserved for
// connection-level messages (the handshake and fatal ErrorResp frames that
// are not tied to a specific request).
//
// Protocol version 3 stamps every fetch directive with the PlanVersion it
// was issued under, so a server can observe which control-plane snapshot a
// request came from. During a plan swap a session legally carries
// mixed-version requests in flight — fetches stay idempotent because
// augmentation seeds depend only on (job, epoch, sample), never on the plan
// version — so the field is observability and validation, not routing.
// PlanVersion 0 means "unversioned" (a bare plan outside any provider).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/bufpool"
)

// Protocol constants.
const (
	Magic = 0x534F5048 // "SOPH"
	// Version 3: fetch directives carry the PlanVersion they were issued
	// under (version 2 made the session multiplexed).
	Version      = 3
	frameHeader  = 14
	MaxFrameSize = 64 << 20 // generous bound: a 224² tensor is ~600 KB
	// HeaderSize is the exported on-wire frame-header length: magic (4),
	// type (1), flags (1), payload length (4), CRC32-C (4).
	HeaderSize = frameHeader
	// FlagChecksum marks a frame whose header carries a CRC32-C over the
	// type, flags, length, and payload. Every frame this package writes sets
	// it; Read verifies the checksum unconditionally, so the flag is
	// self-description for wire sniffers, not an opt-out.
	FlagChecksum = 0x01
)

// castagnoli is the CRC32-C table used for frame checksums (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MsgType identifies a frame's payload structure.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeHelloAck
	TypeFetch
	TypeFetchResp
	TypeStatsReq
	TypeStatsResp
	TypeError
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeHelloAck:
		return "HelloAck"
	case TypeFetch:
		return "Fetch"
	case TypeFetchResp:
		return "FetchResp"
	case TypeStatsReq:
		return "StatsReq"
	case TypeStatsResp:
		return "StatsResp"
	case TypeError:
		return "Error"
	case TypeFetchBatch:
		return "FetchBatch"
	case TypeFetchBatchResp:
		return "FetchBatchResp"
	case TypeRetryAfter:
		return "RetryAfter"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Protocol errors.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrameSize")
	ErrTruncated   = errors.New("wire: truncated payload")
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrChecksum reports a frame whose CRC32-C does not match its contents:
	// the bytes were corrupted in flight. It is a transport-level error — the
	// session is poisoned and the request retryable — never an application
	// rejection, so a retry layer must treat it like a broken connection.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
)

// Message is any protocol message. Encoding is split into an exact size
// query plus an append-style serializer so Write can frame a message into a
// single pooled buffer without any per-message allocation.
type Message interface {
	Type() MsgType
	// payloadSize returns the exact number of bytes appendPayload will add.
	payloadSize() int
	// appendPayload appends the encoded payload to p and returns it.
	appendPayload(p []byte) []byte
	decodePayload(p []byte) error
}

// Hello opens a session.
type Hello struct {
	Version uint16
	JobID   uint64
}

// HelloAck answers a Hello with dataset facts.
type HelloAck struct {
	Version     uint16
	DatasetName string
	NumSamples  uint32
}

// Fetch requests one sample, asking the server to execute the first Split
// pipeline ops before transmitting (Split 0 ships the raw object).
//
// Fidelity extends the directive with the progressive dimension: the number
// of refinement scans the server should withhold when the stored object is a
// progressive container (imaging.SJPR). It is encoded as a trailing payload
// byte that is present only when non-zero, so full-fidelity traffic stays
// byte-identical to pre-progressive version-3 peers, and a legacy decoder
// rejects (rather than misreads) a reduced-fidelity directive. Fidelity is
// meaningful only at Split 0; servers ignore it on deeper cuts.
type Fetch struct {
	RequestID uint64
	Sample    uint32
	Split     uint8
	Epoch     uint64
	// PlanVersion is the control-plane snapshot this directive came from
	// (0 = unversioned). It lets the server validate which plan epoch a
	// request belongs to; it never affects the artifact produced.
	PlanVersion uint32
	// Fidelity is the number of progressive refinement scans to withhold
	// (0 = ship the full container).
	Fidelity uint8
}

// FetchStatus reports the outcome of a Fetch.
type FetchStatus uint8

// Fetch outcomes.
const (
	FetchOK FetchStatus = iota
	FetchNotFound
	FetchBadSplit
	FetchFailed
)

// FetchResp returns the (possibly partially preprocessed) artifact.
type FetchResp struct {
	RequestID uint64
	Sample    uint32
	Split     uint8
	Status    FetchStatus
	Artifact  []byte
}

// StatsReq asks the server for its counters.
type StatsReq struct {
	RequestID uint64
}

// StatsResp reports server-side accounting.
type StatsResp struct {
	RequestID      uint64
	SamplesServed  uint64
	OpsExecuted    uint64
	BytesSent      uint64
	ServerCPUNanos uint64
}

// ErrCode classifies server errors.
type ErrCode uint16

// Error codes.
const (
	CodeBadRequest ErrCode = iota + 1
	CodeInternal
)

// ErrorResp reports a protocol-level failure. RequestID ties the error to a
// specific in-flight request; 0 means the whole connection is poisoned (bad
// handshake, unparseable frame) and the peer should tear it down.
type ErrorResp struct {
	RequestID uint64
	Code      ErrCode
	Message   string
}

func (*Hello) Type() MsgType     { return TypeHello }
func (*HelloAck) Type() MsgType  { return TypeHelloAck }
func (*Fetch) Type() MsgType     { return TypeFetch }
func (*FetchResp) Type() MsgType { return TypeFetchResp }
func (*StatsReq) Type() MsgType  { return TypeStatsReq }
func (*StatsResp) Type() MsgType { return TypeStatsResp }
func (*ErrorResp) Type() MsgType { return TypeError }

func (m *Hello) payloadSize() int { return 10 }

func (m *Hello) appendPayload(p []byte) []byte {
	var b [10]byte
	binary.BigEndian.PutUint16(b[0:2], m.Version)
	binary.BigEndian.PutUint64(b[2:10], m.JobID)
	return append(p, b[:]...)
}

func (m *Hello) decodePayload(p []byte) error {
	if len(p) != 10 {
		return ErrTruncated
	}
	m.Version = binary.BigEndian.Uint16(p[0:2])
	m.JobID = binary.BigEndian.Uint64(p[2:10])
	return nil
}

func (m *HelloAck) payloadSize() int { return 8 + len(m.DatasetName) }

func (m *HelloAck) appendPayload(p []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], m.Version)
	binary.BigEndian.PutUint32(b[2:6], m.NumSamples)
	binary.BigEndian.PutUint16(b[6:8], uint16(len(m.DatasetName)))
	p = append(p, b[:]...)
	return append(p, m.DatasetName...)
}

func (m *HelloAck) decodePayload(p []byte) error {
	if len(p) < 8 {
		return ErrTruncated
	}
	m.Version = binary.BigEndian.Uint16(p[0:2])
	m.NumSamples = binary.BigEndian.Uint32(p[2:6])
	n := int(binary.BigEndian.Uint16(p[6:8]))
	if len(p) != 8+n {
		return ErrTruncated
	}
	m.DatasetName = string(p[8 : 8+n])
	return nil
}

func (m *Fetch) payloadSize() int {
	if m.Fidelity != 0 {
		return 26
	}
	return 25
}

func (m *Fetch) appendPayload(p []byte) []byte {
	var b [26]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint32(b[8:12], m.Sample)
	b[12] = m.Split
	binary.BigEndian.PutUint64(b[13:21], m.Epoch)
	binary.BigEndian.PutUint32(b[21:25], m.PlanVersion)
	if m.Fidelity != 0 {
		b[25] = m.Fidelity
		return append(p, b[:26]...)
	}
	return append(p, b[:25]...)
}

func (m *Fetch) decodePayload(p []byte) error {
	switch len(p) {
	case 25:
		m.Fidelity = 0
	case 26:
		// The trailing byte exists only to carry a non-zero fidelity; a
		// zero there is a non-canonical frame and is rejected so encodings
		// stay a byte fixed point.
		if p[25] == 0 {
			return ErrTruncated
		}
		m.Fidelity = p[25]
	default:
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	m.Sample = binary.BigEndian.Uint32(p[8:12])
	m.Split = p[12]
	m.Epoch = binary.BigEndian.Uint64(p[13:21])
	m.PlanVersion = binary.BigEndian.Uint32(p[21:25])
	return nil
}

func (m *FetchResp) payloadSize() int { return 18 + len(m.Artifact) }

func (m *FetchResp) appendPayload(p []byte) []byte {
	var b [18]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint32(b[8:12], m.Sample)
	b[12] = m.Split
	b[13] = uint8(m.Status)
	binary.BigEndian.PutUint32(b[14:18], uint32(len(m.Artifact)))
	p = append(p, b[:]...)
	return append(p, m.Artifact...)
}

func (m *FetchResp) decodePayload(p []byte) error {
	if len(p) < 18 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	m.Sample = binary.BigEndian.Uint32(p[8:12])
	m.Split = p[12]
	m.Status = FetchStatus(p[13])
	n := int(binary.BigEndian.Uint32(p[14:18]))
	if len(p) != 18+n {
		return ErrTruncated
	}
	m.Artifact = copyArtifact(p[18 : 18+n])
	return nil
}

func (m *StatsReq) payloadSize() int { return 8 }

func (m *StatsReq) appendPayload(p []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	return append(p, b[:]...)
}

func (m *StatsReq) decodePayload(p []byte) error {
	if len(p) != 8 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	return nil
}

func (m *StatsResp) payloadSize() int { return 40 }

func (m *StatsResp) appendPayload(p []byte) []byte {
	var b [40]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint64(b[8:16], m.SamplesServed)
	binary.BigEndian.PutUint64(b[16:24], m.OpsExecuted)
	binary.BigEndian.PutUint64(b[24:32], m.BytesSent)
	binary.BigEndian.PutUint64(b[32:40], m.ServerCPUNanos)
	return append(p, b[:]...)
}

func (m *StatsResp) decodePayload(p []byte) error {
	if len(p) != 40 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	m.SamplesServed = binary.BigEndian.Uint64(p[8:16])
	m.OpsExecuted = binary.BigEndian.Uint64(p[16:24])
	m.BytesSent = binary.BigEndian.Uint64(p[24:32])
	m.ServerCPUNanos = binary.BigEndian.Uint64(p[32:40])
	return nil
}

func (m *ErrorResp) payloadSize() int { return 12 + len(m.Message) }

func (m *ErrorResp) appendPayload(p []byte) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint16(b[8:10], uint16(m.Code))
	binary.BigEndian.PutUint16(b[10:12], uint16(len(m.Message)))
	p = append(p, b[:]...)
	return append(p, m.Message...)
}

func (m *ErrorResp) decodePayload(p []byte) error {
	if len(p) < 12 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	m.Code = ErrCode(binary.BigEndian.Uint16(p[8:10]))
	n := int(binary.BigEndian.Uint16(p[10:12]))
	if len(p) != 12+n {
		return ErrTruncated
	}
	m.Message = string(p[12 : 12+n])
	return nil
}

// copyArtifact copies an artifact payload into a pool-backed buffer so the
// decoded message can outlive the transient frame buffer. Empty payloads
// decode to nil, matching the historical encoding of "no artifact". The
// caller owns the copy; Recycle returns it to the pool.
func copyArtifact(p []byte) []byte {
	if len(p) == 0 {
		return nil
	}
	out := bufpool.GetBytes(len(p))
	copy(out, p)
	return out
}

// Write frames and sends one message: header and payload are assembled in a
// single pooled buffer and issued as one w.Write, so the hot path performs
// no allocation and one syscall per frame.
func Write(w io.Writer, m Message) error {
	n := m.payloadSize()
	if n > MaxFrameSize {
		return ErrFrameTooBig
	}
	buf := bufpool.GetBytes(frameHeader + n)[:0]
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = uint8(m.Type())
	hdr[5] = FlagChecksum
	binary.BigEndian.PutUint32(hdr[6:10], uint32(n))
	buf = append(buf, hdr[:]...)
	buf = m.appendPayload(buf)
	// CRC32-C over type, flags, length, and payload; magic and the checksum
	// field itself are excluded.
	crc := crc32.Update(0, castagnoli, buf[4:10])
	crc = crc32.Update(crc, castagnoli, buf[frameHeader:])
	binary.BigEndian.PutUint32(buf[10:14], crc)
	_, err := w.Write(buf)
	bufpool.PutBytes(buf)
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// FrameSize returns the total on-wire bytes of a message — header plus
// payload — for traffic accounting. It never allocates.
func FrameSize(m Message) int { return frameHeader + m.payloadSize() }

// Recycle returns a message's pooled payload buffers (fetch-response
// artifacts) to the arena and clears them. Call it once the artifact bytes
// have been fully consumed — e.g. after DecodeArtifact copied them out, or
// after a server finished writing the frame. Safe on every message type;
// messages without pooled payloads are no-ops.
func Recycle(m Message) {
	switch t := m.(type) {
	case *FetchResp:
		if t.Artifact != nil {
			bufpool.PutBytes(t.Artifact)
			t.Artifact = nil
		}
	case *FetchBatchResp:
		for i := range t.Items {
			if t.Items[i].Artifact != nil {
				bufpool.PutBytes(t.Items[i].Artifact)
				t.Items[i].Artifact = nil
			}
		}
	}
}

// Read receives and decodes one message.
func Read(r io.Reader) (Message, error) {
	hdr := bufpool.GetBytes(frameHeader)
	defer bufpool.PutBytes(hdr)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	size := binary.BigEndian.Uint32(hdr[6:10])
	if size > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	if size > math.MaxInt32 {
		return nil, ErrFrameTooBig
	}
	msgType := MsgType(hdr[4])
	payload := bufpool.GetBytes(int(size))
	defer bufpool.PutBytes(payload)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	// Verify integrity before any decoding: a corrupted frame must surface
	// as the typed ErrChecksum, never as a plausibly-decoded wrong message.
	crc := crc32.Update(0, castagnoli, hdr[4:10])
	crc = crc32.Update(crc, castagnoli, payload)
	if got := binary.BigEndian.Uint32(hdr[10:14]); got != crc {
		return nil, fmt.Errorf("%w: frame claims %08x, contents hash %08x", ErrChecksum, got, crc)
	}
	var m Message
	switch msgType {
	case TypeHello:
		m = &Hello{}
	case TypeHelloAck:
		m = &HelloAck{}
	case TypeFetch:
		m = &Fetch{}
	case TypeFetchResp:
		m = &FetchResp{}
	case TypeStatsReq:
		m = &StatsReq{}
	case TypeStatsResp:
		m = &StatsResp{}
	case TypeError:
		m = &ErrorResp{}
	case TypeFetchBatch:
		m = &FetchBatch{}
	case TypeFetchBatchResp:
		m = &FetchBatchResp{}
	case TypeRetryAfter:
		m = &RetryAfter{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(msgType))
	}
	if err := m.decodePayload(payload); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", msgType, err)
	}
	return m, nil
}
