package wire

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the frame parser: it must never panic,
// and any frame it accepts must re-encode to the same bytes.
func FuzzRead(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Hello{Version: 1, JobID: 7})
	seed(&HelloAck{Version: 1, DatasetName: "openimages", NumSamples: 40000})
	seed(&Fetch{RequestID: 1, Sample: 2, Split: 3, Epoch: 4})
	seed(&FetchResp{RequestID: 1, Sample: 2, Status: FetchOK, Artifact: []byte{1, 2, 3}})
	seed(&StatsReq{RequestID: 5})
	seed(&StatsResp{RequestID: 5, SamplesServed: 10, BytesSent: 20})
	seed(&ErrorResp{RequestID: 6, Code: CodeBadRequest, Message: "no"})
	seed(&FetchBatch{RequestID: 1, Epoch: 2, Items: []FetchBatchItem{{Sample: 1, Split: 2}}})
	seed(&FetchBatchResp{RequestID: 1, Items: []FetchBatchRespItem{{Sample: 1, Artifact: []byte{9}}}})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded message failed to parse: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %s -> %s", msg.Type(), again.Type())
		}
	})
}
