package wire

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the frame parser: it must never panic,
// and any frame it accepts must re-encode to the same bytes.
func FuzzRead(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Hello{Version: 1, JobID: 7})
	seed(&HelloAck{Version: 1, DatasetName: "openimages", NumSamples: 40000})
	seed(&Fetch{RequestID: 1, Sample: 2, Split: 3, Epoch: 4})
	seed(&FetchResp{RequestID: 1, Sample: 2, Status: FetchOK, Artifact: []byte{1, 2, 3}})
	seed(&StatsReq{RequestID: 5})
	seed(&StatsResp{RequestID: 5, SamplesServed: 10, BytesSent: 20})
	seed(&ErrorResp{RequestID: 6, Code: CodeBadRequest, Message: "no"})
	seed(&FetchBatch{RequestID: 1, Epoch: 2, Items: []FetchBatchItem{{Sample: 1, Split: 2}}})
	seed(&FetchBatchResp{RequestID: 1, Items: []FetchBatchRespItem{{Sample: 1, Artifact: []byte{9}}}})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded message failed to parse: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %s -> %s", msg.Type(), again.Type())
		}
	})
}

// FuzzDecode checks the codec is canonical: any frame the parser accepts
// must re-encode to a stable fixed point — encoding, re-parsing, and
// encoding again yields byte-identical frames — and FrameSize must agree
// with the bytes actually produced. The multiplexer trusts FrameSize for
// traffic accounting, so drift here silently corrupts the byte counters.
func FuzzDecode(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Hello{Version: Version, JobID: 1})
	seed(&HelloAck{Version: Version, DatasetName: "d", NumSamples: 3})
	seed(&Fetch{RequestID: 9, Sample: 8, Split: 7, Epoch: 6})
	seed(&FetchResp{RequestID: 9, Sample: 8, Status: FetchNotFound})
	seed(&FetchBatch{RequestID: 2, Epoch: 1, Items: []FetchBatchItem{{Sample: 4}, {Sample: 5, Split: 1}}})
	seed(&FetchBatchResp{RequestID: 2, Items: []FetchBatchRespItem{{Sample: 4, Status: FetchOK, Artifact: []byte{1}}}})
	seed(&StatsReq{RequestID: 3})
	seed(&StatsResp{RequestID: 3, OpsExecuted: 11, ServerCPUNanos: 12})
	seed(&ErrorResp{Code: CodeInternal, Message: "boom"})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := Write(&first, msg); err != nil {
			t.Fatalf("accepted message failed to encode: %v", err)
		}
		if got, want := first.Len(), FrameSize(msg); got != want {
			t.Fatalf("FrameSize says %d, encoder wrote %d bytes", want, got)
		}
		again, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical frame failed to parse: %v", err)
		}
		var second bytes.Buffer
		if err := Write(&second, again); err != nil {
			t.Fatalf("re-parsed message failed to encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encoding not canonical:\n first %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}
