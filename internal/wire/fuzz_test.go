package wire

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives the codec from the message side: arbitrary field
// values — including multi-item batches, whose response reassembly slices one
// artifact pool into per-item payloads — must encode and decode losslessly.
// FuzzRead/FuzzDecode fuzz the parser with raw bytes; this target fuzzes the
// encoder with raw values, so the two meet in the middle.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), uint8(3), uint64(4), []byte("artifact"), uint8(2), "dataset")
	f.Add(uint64(0), uint32(0), uint8(0), uint64(0), []byte{}, uint8(0), "")
	f.Add(^uint64(0), ^uint32(0), uint8(255), ^uint64(0), bytes.Repeat([]byte{0xA5}, 300), uint8(64), "x")

	f.Fuzz(func(t *testing.T, reqID uint64, sample uint32, split uint8, epoch uint64, artifact []byte, items uint8, name string) {
		check := func(m Message) Message {
			var buf bytes.Buffer
			if err := Write(&buf, m); err != nil {
				if len(artifact) > MaxFrameSize/2 {
					return nil // oversized frames may legitimately be refused
				}
				t.Fatalf("Write %T: %v", m, err)
			}
			if buf.Len() != FrameSize(m) {
				t.Fatalf("%T: FrameSize %d, encoder wrote %d", m, FrameSize(m), buf.Len())
			}
			out, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read %T: %v", m, err)
			}
			if buf.Len() != 0 {
				t.Fatalf("%T left %d trailing bytes", m, buf.Len())
			}
			return out
		}

		if len(name) <= 0xFFFF {
			in := &HelloAck{Version: uint16(reqID), DatasetName: name, NumSamples: sample}
			got := check(in).(*HelloAck)
			if *got != *in {
				t.Fatalf("HelloAck %+v -> %+v", in, got)
			}
		}

		{
			in := &Fetch{RequestID: reqID, Sample: sample, Split: split, Epoch: epoch, PlanVersion: sample ^ uint32(epoch)}
			got := check(in).(*Fetch)
			if *got != *in {
				t.Fatalf("Fetch %+v -> %+v", in, got)
			}
			// The progressive directive must round-trip too, and a
			// full-fidelity fetch must stay on the legacy 25-byte payload.
			in.Fidelity = split % 4
			got = check(in).(*Fetch)
			if *got != *in {
				t.Fatalf("Fetch fidelity %+v -> %+v", in, got)
			}
			if in.Fidelity == 0 && in.payloadSize() != 25 {
				t.Fatalf("full-fidelity Fetch grew to %d bytes", in.payloadSize())
			}
		}

		{
			in := &FetchResp{RequestID: reqID, Sample: sample, Split: split, Status: FetchStatus(split % 4), Artifact: artifact}
			got := check(in).(*FetchResp)
			if got == nil {
				return
			}
			if got.RequestID != in.RequestID || got.Sample != in.Sample ||
				got.Split != in.Split || got.Status != in.Status || !bytes.Equal(got.Artifact, in.Artifact) {
				t.Fatalf("FetchResp %+v -> %+v", in, got)
			}
		}

		// Batch request and response: n items sliced out of the artifact
		// bytes so each item carries a distinct payload, exercising the
		// reassembly offsets item by item.
		n := int(items)%MaxBatchItems + 1
		req := &FetchBatch{RequestID: reqID, Epoch: epoch, PlanVersion: sample ^ uint32(reqID), Items: make([]FetchBatchItem, n)}
		resp := &FetchBatchResp{RequestID: reqID, Items: make([]FetchBatchRespItem, n)}
		for i := 0; i < n; i++ {
			// Odd item counts exercise the wide (per-item fidelity) batch
			// layout; even counts keep the legacy narrow layout.
			var fid uint8
			if n%2 == 1 {
				fid = uint8(i)%3 + 1
			}
			req.Items[i] = FetchBatchItem{Sample: sample + uint32(i), Split: split + uint8(i), Fidelity: fid}
			var part []byte
			if len(artifact) > 0 {
				lo := i * len(artifact) / n
				hi := (i + 1) * len(artifact) / n
				part = artifact[lo:hi]
			}
			resp.Items[i] = FetchBatchRespItem{
				Sample: sample + uint32(i), Split: split + uint8(i),
				Status: FetchStatus(uint8(i) % 4), Artifact: part,
			}
		}
		gotReq := check(req).(*FetchBatch)
		if gotReq.RequestID != req.RequestID || gotReq.Epoch != req.Epoch ||
			gotReq.PlanVersion != req.PlanVersion || len(gotReq.Items) != n {
			t.Fatalf("FetchBatch %+v -> %+v", req, gotReq)
		}
		for i := range req.Items {
			if gotReq.Items[i] != req.Items[i] {
				t.Fatalf("FetchBatch item %d: %+v -> %+v", i, req.Items[i], gotReq.Items[i])
			}
		}
		gotResp := check(resp).(*FetchBatchResp)
		if gotResp == nil {
			return
		}
		if gotResp.RequestID != resp.RequestID || len(gotResp.Items) != n {
			t.Fatalf("FetchBatchResp %+v -> %+v", resp, gotResp)
		}
		for i := range resp.Items {
			a, b := resp.Items[i], gotResp.Items[i]
			if a.Sample != b.Sample || a.Split != b.Split || a.Status != b.Status || !bytes.Equal(a.Artifact, b.Artifact) {
				t.Fatalf("FetchBatchResp item %d: %+v -> %+v", i, a, b)
			}
		}
	})
}

// FuzzRead throws arbitrary bytes at the frame parser: it must never panic,
// and any frame it accepts must re-encode to the same bytes.
func FuzzRead(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Hello{Version: 1, JobID: 7})
	seed(&HelloAck{Version: 1, DatasetName: "openimages", NumSamples: 40000})
	seed(&Fetch{RequestID: 1, Sample: 2, Split: 3, Epoch: 4})
	seed(&Fetch{RequestID: 1, Sample: 2, Epoch: 4, Fidelity: 2})
	seed(&FetchResp{RequestID: 1, Sample: 2, Status: FetchOK, Artifact: []byte{1, 2, 3}})
	seed(&StatsReq{RequestID: 5})
	seed(&StatsResp{RequestID: 5, SamplesServed: 10, BytesSent: 20})
	seed(&ErrorResp{RequestID: 6, Code: CodeBadRequest, Message: "no"})
	seed(&FetchBatch{RequestID: 1, Epoch: 2, Items: []FetchBatchItem{{Sample: 1, Split: 2}}})
	seed(&FetchBatch{RequestID: 1, Epoch: 2, Items: []FetchBatchItem{{Sample: 1}, {Sample: 2, Fidelity: 3}}})
	seed(&FetchBatchResp{RequestID: 1, Items: []FetchBatchRespItem{{Sample: 1, Artifact: []byte{9}}}})
	seed(&RetryAfter{RequestID: 7, Millis: 50, Queued: 12})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded message failed to parse: %v", err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("type changed across round trip: %s -> %s", msg.Type(), again.Type())
		}
	})
}

// FuzzDecode checks the codec is canonical: any frame the parser accepts
// must re-encode to a stable fixed point — encoding, re-parsing, and
// encoding again yields byte-identical frames — and FrameSize must agree
// with the bytes actually produced. The multiplexer trusts FrameSize for
// traffic accounting, so drift here silently corrupts the byte counters.
func FuzzDecode(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Hello{Version: Version, JobID: 1})
	seed(&HelloAck{Version: Version, DatasetName: "d", NumSamples: 3})
	seed(&Fetch{RequestID: 9, Sample: 8, Split: 7, Epoch: 6})
	seed(&Fetch{RequestID: 9, Sample: 8, Epoch: 6, Fidelity: 1})
	seed(&FetchResp{RequestID: 9, Sample: 8, Status: FetchNotFound})
	seed(&FetchBatch{RequestID: 2, Epoch: 1, Items: []FetchBatchItem{{Sample: 4}, {Sample: 5, Split: 1}}})
	seed(&FetchBatch{RequestID: 2, Epoch: 1, Items: []FetchBatchItem{{Sample: 4, Fidelity: 2}, {Sample: 5, Split: 1}}})
	seed(&FetchBatchResp{RequestID: 2, Items: []FetchBatchRespItem{{Sample: 4, Status: FetchOK, Artifact: []byte{1}}}})
	seed(&StatsReq{RequestID: 3})
	seed(&StatsResp{RequestID: 3, OpsExecuted: 11, ServerCPUNanos: 12})
	seed(&ErrorResp{Code: CodeInternal, Message: "boom"})
	seed(&RetryAfter{RequestID: 4, Millis: 25, Queued: 3})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := Write(&first, msg); err != nil {
			t.Fatalf("accepted message failed to encode: %v", err)
		}
		if got, want := first.Len(), FrameSize(msg); got != want {
			t.Fatalf("FrameSize says %d, encoder wrote %d bytes", want, got)
		}
		again, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical frame failed to parse: %v", err)
		}
		var second bytes.Buffer
		if err := Write(&second, again); err != nil {
			t.Fatalf("re-parsed message failed to encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encoding not canonical:\n first %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}
