package wire

import "encoding/binary"

// Batched fetch: one round trip for many samples. The paper's loader issues
// per-sample requests; batching amortizes framing and kernel crossings when
// the link is fast and the per-request overhead starts to matter.

// Additional message types (continuing the MsgType space).
const (
	TypeFetchBatch MsgType = iota + 8
	TypeFetchBatchResp
)

// FetchBatchItem is one sample request within a batch. Fidelity carries the
// progressive directive (refinement scans to withhold; 0 = full container,
// see Fetch). A batch is encoded with per-item fidelity bytes only when at
// least one item requests a reduction, so full-fidelity batches stay
// byte-identical to the pre-progressive layout.
type FetchBatchItem struct {
	Sample   uint32
	Split    uint8
	Fidelity uint8
}

// FetchBatch requests several samples in one frame, all for the same epoch
// and issued under the same control-plane snapshot (PlanVersion 0 =
// unversioned; see the Fetch doc comment for swap semantics).
type FetchBatch struct {
	RequestID   uint64
	Epoch       uint64
	PlanVersion uint32
	Items       []FetchBatchItem
}

// FetchBatchRespItem is one sample's outcome within a batch response.
type FetchBatchRespItem struct {
	Sample   uint32
	Split    uint8
	Status   FetchStatus
	Artifact []byte
}

// FetchBatchResp answers a FetchBatch, item for item, in request order.
type FetchBatchResp struct {
	RequestID uint64
	Items     []FetchBatchRespItem
}

// MaxBatchItems bounds a batch so a response cannot exceed MaxFrameSize
// even when every item is a full tensor artifact.
const MaxBatchItems = 64

func (*FetchBatch) Type() MsgType     { return TypeFetchBatch }
func (*FetchBatchResp) Type() MsgType { return TypeFetchBatchResp }

// hasFidelity reports whether any item carries a non-zero fidelity
// directive, which selects the wide (6-byte) item encoding.
func (m *FetchBatch) hasFidelity() bool {
	for i := range m.Items {
		if m.Items[i].Fidelity != 0 {
			return true
		}
	}
	return false
}

func (m *FetchBatch) payloadSize() int {
	per := 5
	if m.hasFidelity() {
		per = 6
	}
	return 22 + per*len(m.Items)
}

func (m *FetchBatch) appendPayload(p []byte) []byte {
	var b [22]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint64(b[8:16], m.Epoch)
	binary.BigEndian.PutUint32(b[16:20], m.PlanVersion)
	binary.BigEndian.PutUint16(b[20:22], uint16(len(m.Items)))
	p = append(p, b[:]...)
	wide := m.hasFidelity()
	for _, it := range m.Items {
		var e [6]byte
		binary.BigEndian.PutUint32(e[0:4], it.Sample)
		e[4] = it.Split
		if wide {
			e[5] = it.Fidelity
			p = append(p, e[:6]...)
		} else {
			p = append(p, e[:5]...)
		}
	}
	return p
}

func (m *FetchBatch) decodePayload(p []byte) error {
	if len(p) < 22 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	m.Epoch = binary.BigEndian.Uint64(p[8:16])
	m.PlanVersion = binary.BigEndian.Uint32(p[16:20])
	n := int(binary.BigEndian.Uint16(p[20:22]))
	if n > MaxBatchItems {
		return ErrFrameTooBig
	}
	// The item count disambiguates the narrow (legacy, 5-byte) and wide
	// (progressive, 6-byte) layouts by total length alone.
	per := 0
	switch len(p) {
	case 22 + 5*n:
		per = 5
	case 22 + 6*n:
		if n == 0 {
			break // zero items: both layouts coincide
		}
		per = 6
	default:
		return ErrTruncated
	}
	m.Items = make([]FetchBatchItem, n)
	off := 22
	any := false
	for i := range m.Items {
		m.Items[i].Sample = binary.BigEndian.Uint32(p[off : off+4])
		m.Items[i].Split = p[off+4]
		if per == 6 {
			m.Items[i].Fidelity = p[off+5]
			any = any || p[off+5] != 0
		}
		off += per
	}
	if per == 6 && !any {
		// Wide layout with all-zero fidelity would re-encode narrow; reject
		// the non-canonical frame so encodings stay a byte fixed point.
		return ErrTruncated
	}
	return nil
}

func (m *FetchBatchResp) payloadSize() int {
	size := 8 + 2
	for _, it := range m.Items {
		size += 4 + 1 + 1 + 4 + len(it.Artifact)
	}
	return size
}

func (m *FetchBatchResp) appendPayload(p []byte) []byte {
	var b [10]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint16(b[8:10], uint16(len(m.Items)))
	p = append(p, b[:]...)
	for _, it := range m.Items {
		var e [10]byte
		binary.BigEndian.PutUint32(e[0:4], it.Sample)
		e[4] = it.Split
		e[5] = uint8(it.Status)
		binary.BigEndian.PutUint32(e[6:10], uint32(len(it.Artifact)))
		p = append(p, e[:]...)
		p = append(p, it.Artifact...)
	}
	return p
}

func (m *FetchBatchResp) decodePayload(p []byte) error {
	if len(p) < 10 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	n := int(binary.BigEndian.Uint16(p[8:10]))
	if n > MaxBatchItems {
		return ErrFrameTooBig
	}
	m.Items = make([]FetchBatchRespItem, 0, n)
	off := 10
	for i := 0; i < n; i++ {
		if len(p) < off+10 {
			return ErrTruncated
		}
		it := FetchBatchRespItem{
			Sample: binary.BigEndian.Uint32(p[off : off+4]),
			Split:  p[off+4],
			Status: FetchStatus(p[off+5]),
		}
		alen := int(binary.BigEndian.Uint32(p[off+6 : off+10]))
		if len(p) < off+10+alen {
			return ErrTruncated
		}
		it.Artifact = copyArtifact(p[off+10 : off+10+alen])
		m.Items = append(m.Items, it)
		off += 10 + alen
	}
	if off != len(p) {
		return ErrTruncated
	}
	return nil
}
