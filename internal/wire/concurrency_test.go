package wire

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentFrameRoundTrip hammers the pooled frame encode/decode path
// from GOMAXPROCS goroutines, each with its own connection buffer but all
// sharing the global buffer pools. Every decoded artifact must match the
// pattern its writer stamped in: a pooled buffer handed to two frames at
// once, or recycled while still referenced, shows up as a corrupted payload
// (or a race-detector report).
func TestConcurrentFrameRoundTrip(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	iters := 60
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var conn bytes.Buffer
			for i := 0; i < iters; i++ {
				size := 1<<10 + (w*131+i*17)%(48<<10)
				artifact := make([]byte, size)
				fill := byte(w*31 + i)
				for j := range artifact {
					artifact[j] = fill + byte(j)
				}
				req := &FetchResp{RequestID: uint64(w)<<32 | uint64(i), Sample: uint32(i), Split: uint8(w % 4), Status: FetchOK, Artifact: artifact}
				conn.Reset()
				if err := Write(&conn, req); err != nil {
					t.Error(err)
					return
				}
				msg, err := Read(&conn)
				if err != nil {
					t.Error(err)
					return
				}
				resp, ok := msg.(*FetchResp)
				if !ok {
					t.Errorf("worker %d iter %d: decoded %T, want *FetchResp", w, i, msg)
					return
				}
				if resp.RequestID != req.RequestID || !bytes.Equal(resp.Artifact, artifact) {
					t.Errorf("worker %d iter %d: round-tripped frame corrupted", w, i)
					Recycle(msg)
					return
				}
				Recycle(msg)
			}
		}(w)
	}
	wg.Wait()
}
