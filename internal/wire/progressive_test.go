package wire

import (
	"bytes"
	"testing"
)

// A full-fidelity Fetch must be byte-identical to the pre-progressive
// version-3 encoding, so peers that predate the fidelity extension
// interoperate without a version bump.
func TestFetchFidelityWireCompat(t *testing.T) {
	legacy := &Fetch{RequestID: 11, Sample: 22, Split: 3, Epoch: 44, PlanVersion: 5}
	if got := legacy.payloadSize(); got != 25 {
		t.Fatalf("full-fidelity payload is %d bytes, want 25", got)
	}
	var buf bytes.Buffer
	if err := Write(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)

	reduced := &Fetch{RequestID: 11, Sample: 22, Epoch: 44, PlanVersion: 5, Fidelity: 2}
	if got := reduced.payloadSize(); got != 26 {
		t.Fatalf("reduced-fidelity payload is %d bytes, want 26", got)
	}
	buf.Reset()
	if err := Write(&buf, reduced); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Fetch); *got != *reduced {
		t.Fatalf("reduced fetch round-trip: %+v", got)
	}

	// The legacy frame still parses, with fidelity defaulting to full.
	m, err = Read(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Fetch); got.Fidelity != 0 || got.Sample != 22 {
		t.Fatalf("legacy fetch parsed as %+v", got)
	}

	// A wide payload whose trailing fidelity byte is zero is non-canonical
	// and must be rejected, keeping the codec a byte fixed point.
	var zero Fetch
	if err := zero.decodePayload(make([]byte, 26)); err == nil {
		t.Fatal("accepted non-canonical 26-byte fetch with fidelity 0")
	}
}

// Batches follow the same rule: the wide per-item layout appears only when
// some item actually reduces fidelity.
func TestFetchBatchFidelityWireCompat(t *testing.T) {
	narrow := &FetchBatch{RequestID: 1, Epoch: 2, PlanVersion: 3, Items: []FetchBatchItem{
		{Sample: 10, Split: 2}, {Sample: 11},
	}}
	if got := narrow.payloadSize(); got != 22+5*2 {
		t.Fatalf("narrow batch payload %d, want %d", got, 22+5*2)
	}
	wide := &FetchBatch{RequestID: 1, Epoch: 2, PlanVersion: 3, Items: []FetchBatchItem{
		{Sample: 10, Split: 2}, {Sample: 11, Fidelity: 3},
	}}
	if got := wide.payloadSize(); got != 22+6*2 {
		t.Fatalf("wide batch payload %d, want %d", got, 22+6*2)
	}
	for _, m := range []*FetchBatch{narrow, wide} {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		b := got.(*FetchBatch)
		if len(b.Items) != len(m.Items) {
			t.Fatalf("item count %d, want %d", len(b.Items), len(m.Items))
		}
		for i := range m.Items {
			if b.Items[i] != m.Items[i] {
				t.Fatalf("item %d: %+v, want %+v", i, b.Items[i], m.Items[i])
			}
		}
	}

	// Hand-build a wide batch whose fidelity bytes are all zero: it would
	// re-encode narrow, so the decoder rejects it as non-canonical.
	var payload []byte
	payload = wide.appendPayload(payload)
	bad := append([]byte(nil), payload...)
	bad[22+6*1+5] = 0 // zero the only non-zero fidelity byte
	var dec FetchBatch
	if err := dec.decodePayload(bad); err == nil {
		t.Fatal("accepted non-canonical wide batch with all-zero fidelity")
	}
}
