package wire

import (
	"bytes"
	"testing"
)

func TestRetryAfterRoundTrip(t *testing.T) {
	in := &RetryAfter{RequestID: 77, Millis: 125, Queued: 42}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != FrameSize(in) {
		t.Fatalf("FrameSize %d, wrote %d", FrameSize(in), buf.Len())
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*RetryAfter)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if *got != *in {
		t.Fatalf("%+v -> %+v", in, got)
	}
}

func TestRetryAfterWrongSizeRejected(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17} {
		frame := rawFrame(TypeRetryAfter, make([]byte, n))
		if _, err := Read(bytes.NewReader(frame)); err == nil {
			t.Errorf("accepted %d-byte RetryAfter payload", n)
		}
	}
}

func TestRetryAfterString(t *testing.T) {
	if got := TypeRetryAfter.String(); got != "RetryAfter" {
		t.Fatalf("String() = %q", got)
	}
}
