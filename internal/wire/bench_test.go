package wire

import (
	"bytes"
	"testing"
)

func BenchmarkWriteFetch(b *testing.B) {
	var buf bytes.Buffer
	m := &Fetch{RequestID: 1, Sample: 2, Split: 3, Epoch: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripFetchResp600KB(b *testing.B) {
	artifact := make([]byte, 602134) // a 224² tensor artifact
	m := &FetchResp{RequestID: 1, Sample: 2, Artifact: artifact}
	b.SetBytes(int64(len(artifact)))
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, m); err != nil {
			b.Fatal(err)
		}
		msg, err := Read(&buf)
		if err != nil {
			b.Fatal(err)
		}
		Recycle(msg) // return the pooled artifact, as the storage client does
	}
}
