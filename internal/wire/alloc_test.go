package wire

import (
	"io"
	"testing"

	"repro/internal/raceflag"
)

// TestWriteSteadyStateAllocs pins the frame-encode path: Write assembles
// header and payload in one pooled buffer, so after warmup it should not
// allocate at all. The budget of 2 tolerates an occasional GC pool clear.
func TestWriteSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector degrades sync.Pool caching; budgets not meaningful")
	}
	artifact := make([]byte, 600<<10)
	m := &FetchResp{RequestID: 7, Sample: 3, Split: 2, Status: FetchOK, Artifact: artifact}
	for i := 0; i < 8; i++ {
		if err := Write(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := Write(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Write allocates %.1f allocs/op at steady state, budget is 2", allocs)
	}
}

// FrameSize must never allocate: the multiplexer calls it on every frame for
// traffic accounting.
func TestFrameSizeAllocFree(t *testing.T) {
	m := &FetchResp{RequestID: 7, Artifact: make([]byte, 1024)}
	allocs := testing.AllocsPerRun(100, func() {
		if FrameSize(m) <= 0 {
			t.Fatal("bad frame size")
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameSize allocates %.1f allocs/op, want 0", allocs)
	}
}
