package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write %T: %v", m, err)
	}
	if buf.Len() != FrameSize(m) {
		t.Fatalf("FrameSize(%T) = %d, wrote %d", m, FrameSize(m), buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read %T: %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%T left %d trailing bytes", m, buf.Len())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	got := roundTrip(t, &Hello{Version: 1, JobID: 0xDEADBEEF}).(*Hello)
	if got.Version != 1 || got.JobID != 0xDEADBEEF {
		t.Fatalf("got %+v", got)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	got := roundTrip(t, &HelloAck{Version: 1, DatasetName: "openimages-12g", NumSamples: 40000}).(*HelloAck)
	if got.DatasetName != "openimages-12g" || got.NumSamples != 40000 {
		t.Fatalf("got %+v", got)
	}
}

func TestHelloAckEmptyName(t *testing.T) {
	got := roundTrip(t, &HelloAck{Version: 1}).(*HelloAck)
	if got.DatasetName != "" {
		t.Fatalf("got %+v", got)
	}
}

func TestFetchRoundTrip(t *testing.T) {
	got := roundTrip(t, &Fetch{RequestID: 7, Sample: 12345, Split: 2, Epoch: 9, PlanVersion: 3}).(*Fetch)
	if got.RequestID != 7 || got.Sample != 12345 || got.Split != 2 || got.Epoch != 9 || got.PlanVersion != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestFetchRespRoundTrip(t *testing.T) {
	art := []byte{1, 2, 3, 4, 5}
	got := roundTrip(t, &FetchResp{RequestID: 8, Sample: 3, Split: 4, Status: FetchOK, Artifact: art}).(*FetchResp)
	if !bytes.Equal(got.Artifact, art) || got.Status != FetchOK || got.Split != 4 {
		t.Fatalf("got %+v", got)
	}
}

func TestFetchRespEmptyArtifact(t *testing.T) {
	got := roundTrip(t, &FetchResp{RequestID: 1, Status: FetchNotFound}).(*FetchResp)
	if len(got.Artifact) != 0 || got.Status != FetchNotFound {
		t.Fatalf("got %+v", got)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	req := roundTrip(t, &StatsReq{RequestID: 42}).(*StatsReq)
	if req.RequestID != 42 {
		t.Fatalf("got %+v", req)
	}
	got := roundTrip(t, &StatsResp{RequestID: 42, SamplesServed: 1, OpsExecuted: 2, BytesSent: 3, ServerCPUNanos: 4}).(*StatsResp)
	if got.RequestID != 42 || got.SamplesServed != 1 || got.OpsExecuted != 2 || got.BytesSent != 3 || got.ServerCPUNanos != 4 {
		t.Fatalf("got %+v", got)
	}
}

func TestErrorRespRoundTrip(t *testing.T) {
	got := roundTrip(t, &ErrorResp{RequestID: 9, Code: CodeBadRequest, Message: "nope"}).(*ErrorResp)
	if got.RequestID != 9 || got.Code != CodeBadRequest || got.Message != "nope" {
		t.Fatalf("got %+v", got)
	}
}

func TestSequentialMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{Version: 1, JobID: 2},
		&Fetch{RequestID: 1, Sample: 2, Split: 3, Epoch: 4},
		&StatsReq{},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d type %s, want %s", i, got.Type(), want.Type())
		}
	}
}

// rawFrame assembles a frame by hand — including a valid checksum — so
// decode-level rejections can be exercised without the real encoder.
func rawFrame(mt MsgType, payload []byte) []byte {
	b := make([]byte, HeaderSize+len(payload))
	binary.BigEndian.PutUint32(b[0:4], Magic)
	b[4] = uint8(mt)
	b[5] = FlagChecksum
	binary.BigEndian.PutUint32(b[6:10], uint32(len(payload)))
	copy(b[HeaderSize:], payload)
	crc := crc32.Update(0, crc32.MakeTable(crc32.Castagnoli), b[4:10])
	crc = crc32.Update(crc, crc32.MakeTable(crc32.Castagnoli), payload)
	binary.BigEndian.PutUint32(b[10:14], crc)
	return b
}

func TestReadRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &StatsReq{})
	b := buf.Bytes()
	b[0] = 'X'
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsUnknownType(t *testing.T) {
	// The checksum must be valid so the unknown-type check is what fires.
	b := rawFrame(MsgType(200), make([]byte, 8))
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	b := make([]byte, HeaderSize)
	binary.BigEndian.PutUint32(b[0:4], Magic)
	b[4] = uint8(TypeFetch)
	binary.BigEndian.PutUint32(b[6:10], MaxFrameSize+1)
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v", err)
	}
}

// TestReadRejectsCorruption flips every byte of a frame in turn (except the
// magic, whose corruption is reported as ErrBadMagic, and the length field,
// which desyncs framing): each flip must surface as a typed error — almost
// always ErrChecksum — and never as a successfully decoded message.
func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &FetchResp{RequestID: 3, Sample: 9, Status: FetchOK, Artifact: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	for i := range pristine {
		if i >= 6 && i < 10 {
			continue // length field: corruption shifts framing, tested elsewhere
		}
		b := append([]byte(nil), pristine...)
		b[i] ^= 0x40
		msg, err := Read(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("flip at byte %d decoded silently as %s", i, msg.Type())
		}
		if i >= 4 && !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at byte %d: err = %v, want ErrChecksum", i, err)
		}
	}
	// The pristine frame still parses — the loop above didn't depend on a
	// broken fixture.
	if _, err := Read(bytes.NewReader(pristine)); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

func TestReadTruncatedHeaderAndPayload(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &Fetch{RequestID: 1})
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:5])); err == nil {
		t.Fatal("accepted truncated header")
	}
	if _, err := Read(bytes.NewReader(full[:len(full)-2])); err == nil {
		t.Fatal("accepted truncated payload")
	}
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream err = %v, want EOF", err)
	}
}

func TestDecodeRejectsWrongPayloadSizes(t *testing.T) {
	// Craft frames whose declared type disagrees with payload length; the
	// checksums are valid so the decode check is what rejects them.
	mk := rawFrame
	cases := map[string][]byte{
		"hello short":     mk(TypeHello, make([]byte, 3)),
		"fetch long":      mk(TypeFetch, make([]byte, 30)),
		"stats wrong":     mk(TypeStatsResp, make([]byte, 39)),
		"statsreq extra":  mk(TypeStatsReq, make([]byte, 9)),
		"helloack short":  mk(TypeHelloAck, make([]byte, 4)),
		"error short":     mk(TypeError, make([]byte, 10)),
		"fetchresp short": mk(TypeFetchResp, make([]byte, 10)),
		"helloack bad len": mk(TypeHelloAck, func() []byte {
			p := make([]byte, 9)
			binary.BigEndian.PutUint16(p[6:8], 100) // claims 100-byte name
			return p
		}()),
		"fetchresp bad len": mk(TypeFetchResp, func() []byte {
			p := make([]byte, 19)
			binary.BigEndian.PutUint32(p[14:18], 999)
			return p
		}()),
	}
	for name, frame := range cases {
		if _, err := Read(bytes.NewReader(frame)); err == nil {
			t.Errorf("Read accepted %s", name)
		}
	}
}

func TestFetchRespArtifactIsCopied(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &FetchResp{RequestID: 1, Artifact: []byte{1, 2, 3}})
	raw := buf.Bytes()
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp := got.(*FetchResp)
	raw[len(raw)-1] = 99 // mutate the backing buffer
	if resp.Artifact[2] != 3 {
		t.Fatal("decoded artifact aliases the read buffer")
	}
}

// Property: every Fetch round-trips exactly.
func TestFetchRoundTripProperty(t *testing.T) {
	f := func(req uint64, sample uint32, split uint8, epoch uint64) bool {
		var buf bytes.Buffer
		in := &Fetch{RequestID: req, Sample: sample, Split: split, Epoch: epoch}
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*Fetch)
		return ok && *got == *in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FetchResp round-trips arbitrary artifact bytes.
func TestFetchRespRoundTripProperty(t *testing.T) {
	f := func(req uint64, sample uint32, status uint8, artifact []byte) bool {
		var buf bytes.Buffer
		in := &FetchResp{RequestID: req, Sample: sample, Status: FetchStatus(status % 4), Artifact: artifact}
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*FetchResp)
		return ok && got.RequestID == req && got.Sample == sample && bytes.Equal(got.Artifact, artifact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt, want := range map[MsgType]string{
		TypeHello: "Hello", TypeHelloAck: "HelloAck", TypeFetch: "Fetch",
		TypeFetchResp: "FetchResp", TypeStatsReq: "StatsReq",
		TypeStatsResp: "StatsResp", TypeError: "Error", MsgType(99): "MsgType(99)",
	} {
		if mt.String() != want {
			t.Errorf("MsgType(%d).String() = %q", mt, mt.String())
		}
	}
}
