package wire

import "encoding/binary"

// TypeRetryAfter is the admission-control rejection frame (types 8 and 9
// are the batch fetch pair in batch.go).
const TypeRetryAfter MsgType = 10

// RetryAfter tells the client the server is shedding load: the request was
// NOT queued and should be retried no sooner than Millis milliseconds from
// now. It is an application-level rejection — the session stays healthy and
// other in-flight requests are unaffected — so a retry layer must back off
// without tearing the connection down.
//
// RetryAfter is a protocol extension within version 3: servers only emit it
// when admission control is enabled, and such deployments are upgraded in
// lockstep with their clients (a v3 client that somehow receives one while
// unaware of the type fails the whole request with ErrUnknownType, which is
// still safe — the artifact is simply refetched on a new session).
type RetryAfter struct {
	RequestID uint64
	// Millis is the server's backoff hint in milliseconds.
	Millis uint32
	// Queued is the server-side queue depth at rejection time, an
	// observability hint for client-side load balancing.
	Queued uint32
}

// Type implements Message.
func (*RetryAfter) Type() MsgType { return TypeRetryAfter }

func (m *RetryAfter) payloadSize() int { return 16 }

func (m *RetryAfter) appendPayload(p []byte) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], m.RequestID)
	binary.BigEndian.PutUint32(b[8:12], m.Millis)
	binary.BigEndian.PutUint32(b[12:16], m.Queued)
	return append(p, b[:]...)
}

func (m *RetryAfter) decodePayload(p []byte) error {
	if len(p) != 16 {
		return ErrTruncated
	}
	m.RequestID = binary.BigEndian.Uint64(p[0:8])
	m.Millis = binary.BigEndian.Uint32(p[8:12])
	m.Queued = binary.BigEndian.Uint32(p[12:16])
	return nil
}
