package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/prepsched"
	"repro/internal/profiler"
	"repro/internal/simclock"
)

// TestControllerReplansOnMixDrift: a sustained heavy/light skew flip fed
// through EpochSample.MixHeavy/MixTotal replans with reason "mix-drift", and
// the adopted baseline stops the persistent flip from replanning again.
func TestControllerReplansOnMixDrift(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(48)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	c, err := NewController(ControllerConfig{
		Trace: tr, Env: env, Clock: clock,
		Drift: profiler.DriftConfig{Alpha: 1, MixThreshold: 0.25, Hysteresis: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := c.Telemetry().Snapshot().MixBaseline
	cl, err := prepsched.FromTrace(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if baseline != cl.BaselineHeavyFrac() {
		t.Fatalf("mix baseline %v, want the trace's %v", baseline, cl.BaselineHeavyFrac())
	}

	sample := func(e uint64, heavy int) profiler.EpochSample {
		return profiler.EpochSample{Epoch: e, Bandwidth: env.Bandwidth, MixHeavy: heavy, MixTotal: 100}
	}
	// Epoch 1 at baseline, epochs 2-3 flipped far past the threshold:
	// hysteresis 2 fires at epoch 3.
	c.ObserveEpoch(sample(1, int(100*baseline)))
	if snap, _, _ := c.ObserveEpoch(sample(2, 90)); snap.Version != 1 {
		t.Fatalf("replanned before hysteresis: %v", snap)
	}
	snap, drifts, err := c.ObserveEpoch(sample(3, 90))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || !strings.Contains(snap.Reason, "mix-drift") {
		t.Fatalf("snapshot %v, want v2 with mix-drift reason", snap)
	}
	if len(drifts) != 1 || drifts[0].Kind != profiler.DriftMix {
		t.Fatalf("drifts %v", drifts)
	}
	// The controller adopted the shifted mix: the same skew is steady state.
	if got := c.Telemetry().Snapshot().MixBaseline; got != 0.9 {
		t.Fatalf("adopted mix baseline %v, want 0.9", got)
	}
	for e := uint64(4); e <= 7; e++ {
		snap, drifts, err := c.ObserveEpoch(sample(e, 90))
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version != 2 || len(drifts) != 0 {
			t.Fatalf("epoch %d: persistent flip replanned again: %v %v", e, snap, drifts)
		}
	}
}

// TestControllerHeavyRatioValidation: a negative ratio is rejected rather
// than silently dropping the mix baseline.
func TestControllerHeavyRatioValidation(t *testing.T) {
	tr := openImages(t, 50)
	if _, err := NewController(ControllerConfig{Trace: tr, Env: paperEnv(48), HeavyRatio: -1}); err == nil {
		t.Fatal("negative heavy ratio accepted")
	}
	// A custom positive ratio re-anchors the baseline.
	c, err := NewController(ControllerConfig{Trace: tr, Env: paperEnv(48), HeavyRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := prepsched.FromTrace(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Telemetry().Snapshot().MixBaseline; got != cl.BaselineHeavyFrac() {
		t.Fatalf("baseline %v at ratio 1, want %v", got, cl.BaselineHeavyFrac())
	}
}
