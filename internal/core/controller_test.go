package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/simclock"
)

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{Env: paperEnv(4)}); err == nil {
		t.Fatal("accepted nil trace")
	}
	bad := paperEnv(4)
	bad.ComputeCores = 0
	if _, err := NewController(ControllerConfig{Trace: openImages(t, 50), Env: bad}); err == nil {
		t.Fatal("accepted bad env")
	}
}

func TestControllerInitialPlan(t *testing.T) {
	tr := openImages(t, 500)
	c, err := NewController(ControllerConfig{Trace: tr, Env: paperEnv(48)})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Current()
	if snap.Version != 1 || snap.Reason != "initial" || snap.Epoch != 1 {
		t.Fatalf("initial snapshot %v", snap)
	}
	if snap.Plan.OffloadedCount() == 0 {
		t.Fatal("IO-bound workload planned no offloading")
	}
	h := c.History()
	if len(h) != 1 || h[0].Version != 1 || h[0].Reason != "initial" {
		t.Fatalf("history %v", h)
	}
}

func TestControllerSteadyStateNeverReplans(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(48)
	c, err := NewController(ControllerConfig{Trace: tr, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 8; e++ {
		snap, drifts, err := c.ObserveEpoch(profiler.EpochSample{Epoch: e, Bandwidth: env.Bandwidth})
		if err != nil {
			t.Fatal(err)
		}
		if len(drifts) != 0 || snap.Version != 1 {
			t.Fatalf("epoch %d replanned: %v %v", e, snap, drifts)
		}
	}
	if h := c.History(); len(h) != 1 {
		t.Fatalf("steady state grew history to %d", len(h))
	}
}

func TestControllerReplansOnSustainedBandwidthDrop(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(48)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	c, err := NewController(ControllerConfig{
		Trace: tr, Env: env, Clock: clock,
		Drift: profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	half := env.Bandwidth / 2
	// Epoch 1 healthy, epochs 2-3 halved: hysteresis 2 fires at epoch 3.
	c.ObserveEpoch(profiler.EpochSample{Epoch: 1, Bandwidth: env.Bandwidth})
	if snap, _, _ := c.ObserveEpoch(profiler.EpochSample{Epoch: 2, Bandwidth: half}); snap.Version != 1 {
		t.Fatalf("replanned before hysteresis: %v", snap)
	}
	clock.Advance(time.Minute)
	snap, drifts, err := c.ObserveEpoch(profiler.EpochSample{Epoch: 3, Bandwidth: half})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || len(drifts) != 1 {
		t.Fatalf("no replan at epoch 3: %v %v", snap, drifts)
	}
	if snap.Reason != "bandwidth-drift" {
		t.Fatalf("reason %q", snap.Reason)
	}
	if snap.Epoch != 4 {
		t.Fatalf("boundary replan effective epoch %d, want 4", snap.Epoch)
	}
	if snap.Env.Bandwidth != half {
		t.Fatalf("replanned env bandwidth %v, want %v", snap.Env.Bandwidth, half)
	}
	// The degraded-link plan offloads more aggressively than the original.
	orig := c.History()[0]
	if orig.Bandwidth <= snap.Env.Bandwidth {
		t.Fatalf("history bandwidths %v vs %v", orig.Bandwidth, snap.Env.Bandwidth)
	}
	h := c.History()
	if len(h) != 2 || h[1].Version != 2 || h[1].At != clock.Now() {
		t.Fatalf("history %v (now %v)", h, clock.Now())
	}
	// Subscribers saw the swap.
	// (Subscribe after the fact only sees future publishes; Current is the
	// contract for late joiners.)
	if c.Current() != snap {
		t.Fatal("Current() is not the replanned snapshot")
	}
}

func TestControllerShardChangeReplansImmediately(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(8)
	env.Shards = 4
	c, err := NewController(ControllerConfig{Trace: tr, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the shard baseline at an epoch boundary.
	if _, drifts, _ := c.ObserveEpoch(profiler.EpochSample{
		Epoch: 1, Bandwidth: env.Bandwidth, ShardsUp: 4, Shards: 4,
	}); len(drifts) != 0 {
		t.Fatalf("baseline drifted: %v", drifts)
	}
	// A shard dies mid-epoch 2: replan effective THIS epoch, no hysteresis.
	snap, err := c.ObserveShardChange(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || snap.Epoch != 2 {
		t.Fatalf("immediate replan snapshot %v", snap)
	}
	if snap.Reason != "shard-change" {
		t.Fatalf("reason %q", snap.Reason)
	}
	if snap.Env.Shards != 3 {
		t.Fatalf("replanned env shards %d, want 3", snap.Env.Shards)
	}
	// Reporting the same topology again is a no-op.
	again, err := c.ObserveShardChange(2, 3, 4)
	if err != nil || again.Version != 2 {
		t.Fatalf("no-change report replanned: %v %v", again, err)
	}
}

func TestControllerSubscriberSeesReplan(t *testing.T) {
	tr := openImages(t, 200)
	env := paperEnv(48)
	c, err := NewController(ControllerConfig{
		Trace: tr, Env: env,
		Drift: profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := c.Subscribe()
	if _, _, err := c.ObserveEpoch(profiler.EpochSample{Epoch: 1, Bandwidth: netsim.Mbps(100)}); err != nil {
		t.Fatal(err)
	}
	select {
	case snap := <-sub:
		if snap.Version != 2 {
			t.Fatalf("subscriber got v%d", snap.Version)
		}
	default:
		t.Fatal("subscriber missed the replan")
	}
}

// TestControllerOnReplan: callbacks fire synchronously on every replan —
// including immediate shard-change replans — with the published snapshot,
// before the triggering Observe call returns.
func TestControllerOnReplan(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(48)
	c, err := NewController(ControllerConfig{
		Trace: tr, Env: env,
		Drift: profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen []*policy.PlanSnapshot
	c.OnReplan(func(s *policy.PlanSnapshot) { seen = append(seen, s) })
	c.OnReplan(nil) // must be ignored

	half := env.Bandwidth / 2
	c.ObserveEpoch(profiler.EpochSample{Epoch: 1, Bandwidth: env.Bandwidth})
	c.ObserveEpoch(profiler.EpochSample{Epoch: 2, Bandwidth: half})
	if len(seen) != 0 {
		t.Fatalf("callback fired before hysteresis: %d", len(seen))
	}
	snap, _, err := c.ObserveEpoch(profiler.EpochSample{Epoch: 3, Bandwidth: half})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != snap {
		t.Fatalf("callback saw %d snapshots, want exactly the published one", len(seen))
	}
	if seen[0].Version != 2 {
		t.Fatalf("callback snapshot version %d, want 2", seen[0].Version)
	}
	// A shard change replans immediately and must also reach the callback.
	// (The first observation is the telemetry baseline, not a change.)
	if _, err := c.ObserveShardChange(4, 2, 2); err != nil {
		t.Fatal(err)
	}
	snap2, err := c.ObserveShardChange(4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[1] != snap2 || snap2.Version != 3 {
		t.Fatalf("shard-change replan not delivered: %d callbacks, version %d", len(seen), snap2.Version)
	}
}
