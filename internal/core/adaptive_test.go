package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/profiler"
)

// reshapeAt returns an env schedule that degrades the link to degraded
// bytes/sec starting at epoch from.
func reshapeAt(base policy.Env, from uint64, degraded float64) engine.EnvSchedule {
	return func(epoch uint64) policy.Env {
		env := base
		if epoch >= from {
			env.Bandwidth = degraded
		}
		return env
	}
}

// TestAdaptiveReplanOnReshape is the PR's acceptance test at the model
// tier: the link is reshaped 500→250 Mbps after epoch 2; the adaptive
// controller must replan within one epoch boundary of observing the
// degradation, its post-replan epochs must land within 10% of an oracle
// plan computed directly for the degraded link, and the static plan must be
// measurably worse.
func TestAdaptiveReplanOnReshape(t *testing.T) {
	tr := openImages(t, 2000)
	// A scarce storage-CPU budget makes the optimal plan genuinely
	// bandwidth-dependent: the greedy offloader stops where TNet crosses
	// TCS, and that crossover moves when the link is reshaped. (With
	// plentiful storage cores every beneficial sample offloads at any
	// bandwidth and static == adaptive by construction.)
	env := paperEnv(2)           // 500 Mbps, 2 storage cores
	degraded := netsim.Mbps(250) // reshaped link
	drift := profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 1}
	const epochs = 6

	cfg := SimConfig{
		Trace:    tr,
		Env:      env,
		Epochs:   epochs,
		EnvAt:    reshapeAt(env, 3, degraded),
		Adaptive: true,
		Drift:    drift,
	}
	adaptive, err := RunAdaptiveSim(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Replan within one epoch boundary: epoch 3 is the first degraded
	// epoch, so the new plan must govern from epoch 4.
	if len(adaptive.History) != 2 {
		t.Fatalf("replan history: %v", adaptive.History)
	}
	// The halved link may drag storage occupancy over its gate at the same
	// boundary, so the reason can be compound; bandwidth drift must lead it.
	replan := adaptive.History[1]
	if replan.Epoch != 4 || replan.Version != 2 || !strings.HasPrefix(replan.Reason, "bandwidth-drift") {
		t.Fatalf("replan event %v", replan)
	}
	// Measured bandwidth is quantized by per-transfer durations, so allow
	// a sliver of float error around the true degraded rate.
	if rel := math.Abs(replan.Bandwidth-degraded) / degraded; rel > 1e-6 {
		t.Fatalf("replanned for %v B/s, want ~%v", replan.Bandwidth, degraded)
	}
	for _, e := range adaptive.Epochs {
		wantV := policy.PlanVersion(1)
		if e.Epoch >= 4 {
			wantV = 2
		}
		if e.PlanVersion != wantV {
			t.Fatalf("epoch %d ran plan v%d, want v%d", e.Epoch, e.PlanVersion, wantV)
		}
	}

	// Oracle: plan computed directly for the degraded link, simulated on it.
	envDeg := env
	envDeg.Bandwidth = degraded
	oracleDecision, err := New().Decide(tr, envDeg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := engine.Run(engine.Config{Trace: tr, Plan: oracleDecision.Plan, Env: envDeg})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range adaptive.Epochs[3:] { // post-replan epochs 4..6
		ratio := float64(e.EpochTime) / float64(oracle.EpochTime)
		if ratio > 1.10 {
			t.Fatalf("adaptive epoch %d time %v is %.0f%% above oracle %v",
				e.Epoch, e.EpochTime, (ratio-1)*100, oracle.EpochTime)
		}
	}

	// Static baseline over the same schedule: measurably worse once the
	// link degrades.
	staticCfg := cfg
	staticCfg.Adaptive = false
	static, err := RunAdaptiveSim(staticCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(static.History) != 1 {
		t.Fatalf("static run replanned: %v", static.History)
	}
	for i := 3; i < epochs; i++ { // epochs 4..6: both degraded, adaptive replanned
		s, a := static.Epochs[i].EpochTime, adaptive.Epochs[i].EpochTime
		if float64(s) < 1.05*float64(a) {
			t.Fatalf("epoch %d: static %v not measurably worse than adaptive %v", i+1, s, a)
		}
	}

	// Same-seed determinism: identical replan histories (version, epoch,
	// reason, timestamps under the virtual clock) and epoch series.
	rerun, err := RunAdaptiveSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adaptive.History, rerun.History) {
		t.Fatalf("histories diverged:\n%v\n%v", adaptive.History, rerun.History)
	}
	if !reflect.DeepEqual(adaptive.Epochs, rerun.Epochs) {
		t.Fatal("epoch series diverged between same-seed runs")
	}
}

// TestScheduleReplayRegeneratesAdaptiveRun: the plan schedule emitted by an
// adaptive run replays through the DES to the exact same epoch times — the
// deterministic regeneration the schedule exists for.
func TestScheduleReplayRegeneratesAdaptiveRun(t *testing.T) {
	tr := openImages(t, 1000)
	env := paperEnv(48)
	envAt := reshapeAt(env, 3, netsim.Mbps(250))
	res, err := RunAdaptiveSim(SimConfig{
		Trace: tr, Env: env, Epochs: 5, EnvAt: envAt, Adaptive: true,
		Drift: profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := engine.RunSchedule(engine.ScheduleConfig{
		Base:   engine.Config{Trace: tr},
		Epochs: 5,
		Plans:  res.Schedule,
		EnvAt:  envAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(res.Epochs) {
		t.Fatalf("replay has %d epochs, run had %d", len(replay), len(res.Epochs))
	}
	for i, r := range replay {
		e := res.Epochs[i]
		if r.EpochTime != e.EpochTime || uint32(e.PlanVersion) != r.PlanVersion {
			t.Fatalf("epoch %d: replay (%v, v%d) vs run (%v, v%d)",
				r.Epoch, r.EpochTime, r.PlanVersion, e.EpochTime, e.PlanVersion)
		}
		if r.TrafficBytes != e.TrafficBytes {
			t.Fatalf("epoch %d traffic: %d vs %d", r.Epoch, r.TrafficBytes, e.TrafficBytes)
		}
	}
}

// TestAdaptiveSimValidation covers config rejection.
func TestAdaptiveSimValidation(t *testing.T) {
	tr := openImages(t, 50)
	if _, err := RunAdaptiveSim(SimConfig{Trace: tr, Env: paperEnv(4)}); err == nil {
		t.Fatal("accepted 0 epochs")
	}
	if _, err := RunAdaptiveSim(SimConfig{Env: paperEnv(4), Epochs: 2}); err == nil {
		t.Fatal("accepted nil trace")
	}
}
