// Package core is the SOPHON framework façade — the paper's primary
// contribution assembled from its parts. It gates offloading on the
// stage-1 profiler verdict, feeds stage-2 per-sample metrics to the
// decision engine, and emits the offload plan plus the predicted epoch
// model that the trainer and the evaluation harness consume.
package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/policy"
	"repro/internal/profiler"
)

// Framework wires the two-stage profiler to the decision engine.
type Framework struct {
	// Engine is the decision engine; nil means the paper-faithful engine.
	Engine *policy.Sophon
}

// New returns a framework with the default engine.
func New() *Framework { return &Framework{Engine: policy.NewSophon()} }

// Decision is the outcome of a full SOPHON planning pass.
type Decision struct {
	// Stage1 holds the throughput probes that gated the decision.
	Stage1 profiler.Stage1Result
	// Activated reports whether offloading was turned on (the workload
	// was I/O-bound and the storage node has CPU budget).
	Activated bool
	// Plan is the per-sample offload plan (all-zero when not activated).
	Plan *policy.Plan
	// Baseline and Planned are the epoch models without and with the plan.
	Baseline policy.EpochModel
	Planned  policy.EpochModel
}

// PredictedSpeedup returns baseline/planned predicted epoch time.
func (d Decision) PredictedSpeedup() float64 {
	p := d.Planned.Predicted()
	if p <= 0 {
		return 1
	}
	return float64(d.Baseline.Predicted()) / float64(p)
}

// Decide runs stage 1 analytically from the profiled trace, then — if the
// workload is I/O-bound — runs the decision engine over the stage-2
// records.
func (f *Framework) Decide(tr *dataset.Trace, env policy.Env) (Decision, error) {
	if tr == nil || tr.N() == 0 {
		return Decision{}, errors.New("core: empty trace")
	}
	if err := env.Validate(); err != nil {
		return Decision{}, err
	}
	engine := f.Engine
	if engine == nil {
		engine = policy.NewSophon()
	}

	stage1, err := profiler.Stage1FromTrace(tr, env)
	if err != nil {
		return Decision{}, err
	}
	noOff, err := policy.NewUniformPlan(engine.Name(), tr.N(), 0)
	if err != nil {
		return Decision{}, err
	}
	baseline, err := policy.ModelFor(tr, noOff, env)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{Stage1: stage1, Plan: noOff, Baseline: baseline, Planned: baseline}
	if !stage1.IOBound() || env.StorageCores == 0 {
		// CPU- or GPU-bound workloads don't benefit from traffic
		// reduction; the paper defers those to CPU-offloading systems.
		return d, nil
	}

	plan, err := engine.Plan(tr, env)
	if err != nil {
		return Decision{}, fmt.Errorf("core: decision engine: %w", err)
	}
	planned, err := policy.ModelFor(tr, plan, env)
	if err != nil {
		return Decision{}, err
	}
	d.Plan = plan
	d.Planned = planned
	d.Activated = plan.OffloadedCount() > 0
	return d, nil
}

// DecideWithStage1 is Decide with an externally measured stage-1 result
// (the live trainer's 50-batch probes) instead of the analytic one.
func (f *Framework) DecideWithStage1(tr *dataset.Trace, env policy.Env, stage1 profiler.Stage1Result) (Decision, error) {
	d, err := f.Decide(tr, env)
	if err != nil {
		return Decision{}, err
	}
	d.Stage1 = stage1
	if !stage1.IOBound() {
		// Measured verdict overrides: deactivate.
		noOff, err := policy.NewUniformPlan(d.Plan.Name, tr.N(), 0)
		if err != nil {
			return Decision{}, err
		}
		d.Plan = noOff
		d.Planned = d.Baseline
		d.Activated = false
	}
	return d, nil
}
