package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/profiler"
)

func paperEnv(storageCores int) policy.Env {
	return policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    storageCores,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func openImages(t testing.TB, n int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), 11)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDecideValidation(t *testing.T) {
	f := New()
	if _, err := f.Decide(nil, paperEnv(4)); err == nil {
		t.Fatal("accepted nil trace")
	}
	if _, err := f.Decide(&dataset.Trace{}, paperEnv(4)); err == nil {
		t.Fatal("accepted empty trace")
	}
	tr := openImages(t, 50)
	bad := paperEnv(4)
	bad.ComputeCores = 0
	if _, err := f.Decide(tr, bad); err == nil {
		t.Fatal("accepted bad env")
	}
}

func TestDecideActivatesOnIOBoundWorkload(t *testing.T) {
	tr := openImages(t, 2000)
	d, err := New().Decide(tr, paperEnv(48))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Stage1.IOBound() {
		t.Fatalf("stage 1 verdict: %+v", d.Stage1)
	}
	if !d.Activated || d.Plan.OffloadedCount() == 0 {
		t.Fatal("framework did not activate offloading")
	}
	if d.Planned.Predicted() >= d.Baseline.Predicted() {
		t.Fatalf("planned %v not faster than baseline %v", d.Planned.Predicted(), d.Baseline.Predicted())
	}
	if s := d.PredictedSpeedup(); s < 1.5 || s > 2.6 {
		t.Fatalf("predicted speedup %.2f, want ~2x on OpenImages", s)
	}
}

func TestDecideStaysOffWhenGPUBound(t *testing.T) {
	tr := openImages(t, 500)
	env := paperEnv(48)
	env.GPU = gpu.ResNet50
	env.Bandwidth = netsim.Mbps(50000)
	d, err := New().Decide(tr, env)
	if err != nil {
		t.Fatal(err)
	}
	if d.Activated || d.Plan.OffloadedCount() != 0 {
		t.Fatal("activated on a GPU-bound workload")
	}
	if d.PredictedSpeedup() != 1 {
		t.Fatalf("speedup %v for inactive decision", d.PredictedSpeedup())
	}
}

func TestDecideStaysOffWithoutStorageCores(t *testing.T) {
	tr := openImages(t, 500)
	d, err := New().Decide(tr, paperEnv(0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Activated {
		t.Fatal("activated with 0 storage cores")
	}
}

func TestDecideWithMeasuredStage1Override(t *testing.T) {
	tr := openImages(t, 500)
	f := New()
	// Measured probes say CPU-bound even though the analytic model says
	// I/O-bound: the measured verdict wins and offloading deactivates.
	measured := profiler.Stage1Result{GPUThroughput: 900, IOThroughput: 800, CPUThroughput: 100}
	d, err := f.DecideWithStage1(tr, paperEnv(48), measured)
	if err != nil {
		t.Fatal(err)
	}
	if d.Activated || d.Plan.OffloadedCount() != 0 {
		t.Fatal("measured CPU-bound verdict did not deactivate offloading")
	}
	if d.Stage1 != measured {
		t.Fatal("decision does not carry the measured stage-1 result")
	}

	// Measured I/O-bound verdict keeps the plan.
	ioBound := profiler.Stage1Result{GPUThroughput: 3000, IOThroughput: 100, CPUThroughput: 900}
	d, err = f.DecideWithStage1(tr, paperEnv(48), ioBound)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Activated {
		t.Fatal("measured I/O-bound verdict deactivated offloading")
	}
}

func TestDecideHonorsCustomEngine(t *testing.T) {
	tr := openImages(t, 800)
	guarded := &Framework{Engine: &policy.Sophon{StepGuard: true}}
	d, err := guarded.Decide(tr, paperEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Plan.Name != "SOPHON+guard" {
		t.Fatalf("plan name %q", d.Plan.Name)
	}
	base, err := New().Decide(tr, paperEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Planned.Predicted() > base.Planned.Predicted() {
		t.Fatalf("guarded engine (%v) worse than base (%v)", d.Planned.Predicted(), base.Planned.Predicted())
	}
}
