package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/policy"
	"repro/internal/prepsched"
	"repro/internal/profiler"
	"repro/internal/simclock"
)

// Controller is the adaptive control plane: it owns the live plan feed,
// folds per-epoch telemetry into the drift detector, and replans when the
// measured environment no longer matches the one the current plan was
// computed against. Replans land at epoch boundaries — except shard
// topology changes, which replan immediately — and every transition is
// recorded in a replan history with its reason.
//
// The controller never reads the wall clock directly: history timestamps
// come from the injected simclock.Clock and all other state advances only
// through Observe calls, so same-seed runs under the virtual clock produce
// identical replan histories.
type Controller struct {
	fw         *Framework
	trace      *dataset.Trace
	clock      simclock.Clock
	tel        *profiler.Telemetry
	feed       *policy.PlanFeed
	maxHistory int

	mu       sync.Mutex
	env      policy.Env // environment estimate the current plan assumes
	decision Decision   // latest planning outcome
	history  []ReplanEvent
	onReplan []func(*policy.PlanSnapshot)
}

// ReplanEvent is one control-plane transition.
type ReplanEvent struct {
	// Version and Epoch identify the snapshot and the first epoch it
	// governs.
	Version policy.PlanVersion `json:"version"`
	Epoch   uint64             `json:"epoch"`
	// Reason names what triggered the replan ("initial", "bandwidth-drift",
	// "shard-change", or a "+"-joined combination).
	Reason string `json:"reason"`
	// Bandwidth is the link estimate the new plan assumes (bytes/second).
	Bandwidth float64 `json:"bandwidth"`
	// At is the controller clock's time of the transition.
	At time.Time `json:"at"`
}

// String renders the event for logs.
func (e ReplanEvent) String() string {
	return fmt.Sprintf("v%d@epoch%d %s (%.1f MB/s)", e.Version, e.Epoch, e.Reason, e.Bandwidth/1e6)
}

// DefaultMaxHistory bounds the replan history when ControllerConfig leaves
// MaxHistory zero.
const DefaultMaxHistory = 256

// ControllerConfig configures the adaptive controller.
type ControllerConfig struct {
	// Framework plans; nil means the paper-faithful engine.
	Framework *Framework
	// Trace is the stage-2 profile the decision engine replans over.
	Trace *dataset.Trace
	// Env is the initial environment (the one stage 1/2 profiled).
	Env policy.Env
	// Drift tunes detection; zero fields default (see profiler.DriftConfig).
	Drift profiler.DriftConfig
	// Clock timestamps replan events (nil → wall clock; tests and the DES
	// inject a virtual clock).
	Clock simclock.Clock
	// MaxHistory bounds the replan history (0 → DefaultMaxHistory).
	MaxHistory int
	// HeavyRatio is the variance-aware classifier's threshold as a multiple
	// of the trace's mean preprocessing cost (0 → prepsched's default). The
	// controller uses it to anchor the drift detector's mix track to the
	// trace's plan-time heavy fraction.
	HeavyRatio float64
}

// NewController computes the initial plan (version 1, reason "initial") and
// starts the feed.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.Trace == nil || cfg.Trace.N() == 0 {
		return nil, errors.New("core: controller needs a trace")
	}
	if err := cfg.Env.Validate(); err != nil {
		return nil, err
	}
	fw := cfg.Framework
	if fw == nil {
		fw = New()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real()
	}
	maxHistory := cfg.MaxHistory
	if maxHistory <= 0 {
		maxHistory = DefaultMaxHistory
	}
	tel, err := profiler.NewTelemetry(cfg.Drift)
	if err != nil {
		return nil, err
	}
	d, err := fw.Decide(cfg.Trace, cfg.Env)
	if err != nil {
		return nil, err
	}
	snap := &policy.PlanSnapshot{
		Version: 1,
		Plan:    d.Plan,
		Env:     cfg.Env,
		Epoch:   1,
		Reason:  "initial",
	}
	feed, err := policy.NewPlanFeed(snap)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		fw:         fw,
		trace:      cfg.Trace,
		clock:      clock,
		tel:        tel,
		feed:       feed,
		maxHistory: maxHistory,
		env:        cfg.Env,
		decision:   d,
	}
	c.rebaseLocked(d)
	// Anchor the mix track to the profile's own heavy fraction: the plan was
	// computed over this trace, so its heavy/light mix is the plan-time
	// baseline a mid-training skew flip drifts from.
	if cl, err := prepsched.FromTrace(cfg.Trace, cfg.HeavyRatio); err == nil {
		tel.RebaseMix(cl.BaselineHeavyFrac())
	} else if cfg.HeavyRatio != 0 {
		return nil, fmt.Errorf("core: heavy ratio: %w", err)
	}
	c.history = append(c.history, ReplanEvent{
		Version: 1, Epoch: 1, Reason: "initial",
		Bandwidth: cfg.Env.Bandwidth, At: clock.Now(),
	})
	return c, nil
}

// rebaseLocked anchors the drift detector to the environment the decision
// assumes: bandwidth from the planning env, storage occupancy from the
// model's predicted storage share, per-sample op time from the trace.
func (c *Controller) rebaseLocked(d Decision) {
	occ := 0.0
	if p := d.Planned.Predicted(); p > 0 {
		occ = float64(d.Planned.TCS) / float64(p)
	}
	var opTime time.Duration
	if n := c.trace.N(); n > 0 {
		opTime = c.trace.TotalPreprocessCPU() / time.Duration(n)
	}
	c.tel.Rebase(c.env.Bandwidth, occ, opTime)
	// The replanned plan was computed in full knowledge of the observed mix,
	// so adopt it as the new baseline — a persistent skew flip replans once,
	// not every epoch. A no-op before the first mix observation (the initial
	// plan's baseline comes from RebaseMix over the trace instead).
	c.tel.AdoptMixBaseline()
}

// Current implements policy.PlanProvider.
func (c *Controller) Current() *policy.PlanSnapshot { return c.feed.Current() }

// Subscribe implements policy.PlanProvider.
func (c *Controller) Subscribe() <-chan *policy.PlanSnapshot { return c.feed.Subscribe() }

// Telemetry exposes the drift detector (the monitor reads its gauges).
func (c *Controller) Telemetry() *profiler.Telemetry { return c.tel }

// Decision returns the latest planning outcome.
func (c *Controller) Decision() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decision
}

// History returns a copy of the replan history, oldest first.
func (c *Controller) History() []ReplanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplanEvent, len(c.history))
	copy(out, c.history)
	return out
}

// OnReplan registers a callback invoked synchronously — on the replanning
// goroutine, after the snapshot is published to the feed — for every
// subsequent replan. Unlike Subscribe's buffered channel this cannot drop
// transitions, which is what live consumers of the plan (the trainer's
// lookahead scheduler rotating cut depths mid-stream) need: by the time the
// Observe* call that triggered the replan returns, every callback has seen
// the new snapshot. Callbacks run outside the controller's lock.
func (c *Controller) OnReplan(fn func(*policy.PlanSnapshot)) {
	if fn == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onReplan = append(c.onReplan, fn)
}

// ObserveEpoch folds one epoch's measurements in at the epoch boundary. If
// drift crossed its hysteresis gate, the controller replans effective the
// NEXT epoch and publishes the new snapshot; otherwise the current snapshot
// is returned unchanged. The returned drifts say what (if anything) moved.
func (c *Controller) ObserveEpoch(s profiler.EpochSample) (*policy.PlanSnapshot, []profiler.Drift, error) {
	drifts := c.tel.ObserveEpoch(s)
	if len(drifts) == 0 {
		return c.feed.Current(), nil, nil
	}
	snap, err := c.replan(drifts, s.Epoch+1)
	return snap, drifts, err
}

// ObserveShardChange reports a degradation event landing mid-epoch (a shard
// killed or partitioned). Unlike metric drift this replans immediately —
// effective the CURRENT epoch — because a dead shard invalidates placement
// now, not after hysteresis.
func (c *Controller) ObserveShardChange(epoch uint64, shardsUp, shards int) (*policy.PlanSnapshot, error) {
	d := c.tel.ObserveShardChange(epoch, shardsUp, shards)
	if d == nil {
		return c.feed.Current(), nil
	}
	return c.replan([]profiler.Drift{*d}, epoch)
}

// replan recomputes the plan against the measured environment, publishes it
// effective the given epoch, and then runs the OnReplan callbacks (outside
// the lock, so callbacks may take their own locks freely).
func (c *Controller) replan(drifts []profiler.Drift, effective uint64) (*policy.PlanSnapshot, error) {
	snap, cbs, err := c.replanLocked(drifts, effective)
	if err != nil {
		return nil, err
	}
	for _, fn := range cbs {
		fn(snap)
	}
	return snap, nil
}

func (c *Controller) replanLocked(drifts []profiler.Drift, effective uint64) (*policy.PlanSnapshot, []func(*policy.PlanSnapshot), error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	env := c.env
	if bw := c.tel.Bandwidth(); bw > 0 {
		env.Bandwidth = bw
	}
	for _, d := range drifts {
		if d.Kind == profiler.DriftShard {
			if up := int(d.Current); up >= 1 {
				env.Shards = up
			} else {
				env.Shards = 1
			}
		}
	}

	d, err := c.fw.Decide(c.trace, env)
	if err != nil {
		return nil, nil, fmt.Errorf("core: replan: %w", err)
	}

	kinds := make([]string, 0, len(drifts))
	for _, dr := range drifts {
		k := dr.Kind.String()
		if len(kinds) == 0 || kinds[len(kinds)-1] != k {
			kinds = append(kinds, k)
		}
	}
	reason := strings.Join(kinds, "+")

	cur := c.feed.Current()
	snap := &policy.PlanSnapshot{
		Version: cur.Version + 1,
		Plan:    d.Plan,
		Env:     env,
		Epoch:   effective,
		Reason:  reason,
	}
	if err := c.feed.Publish(snap); err != nil {
		return nil, nil, err
	}
	c.env = env
	c.decision = d
	c.rebaseLocked(d)
	c.history = append(c.history, ReplanEvent{
		Version: snap.Version, Epoch: effective, Reason: reason,
		Bandwidth: env.Bandwidth, At: c.clock.Now(),
	})
	if len(c.history) > c.maxHistory {
		c.history = c.history[len(c.history)-c.maxHistory:]
	}
	cbs := make([]func(*policy.PlanSnapshot), len(c.onReplan))
	copy(cbs, c.onReplan)
	return snap, cbs, nil
}
