package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/simclock"
)

// RunAdaptiveSim drives the controller loop at the model tier: each epoch
// the DES simulates the CURRENT plan against that epoch's TRUE environment,
// the measured outcome (bandwidth from traffic/link-busy, storage occupancy
// from pool busy time) feeds the drift detector, and the controller replans
// at the boundary when the gates trip. This is the adaptive-vs-static
// evaluation harness: run once with Adaptive true and once false over the
// same EnvAt schedule and compare epoch-time series.

// SimConfig describes one adaptive simulation.
type SimConfig struct {
	// Trace is the stage-2 profile (also what the controller replans over).
	Trace *dataset.Trace
	// Env is the profiled environment the initial plan assumes; it is also
	// epoch 1's true environment unless EnvAt overrides it.
	Env policy.Env
	// Epochs to simulate (≥ 1).
	Epochs int
	// BatchSize for the DES (0 → engine default).
	BatchSize int
	// EnvAt gives each epoch's true environment (nil → Env throughout).
	// Deterministic in epoch by contract.
	EnvAt engine.EnvSchedule
	// Adaptive false freezes the initial plan (the static baseline).
	Adaptive bool
	// Drift tunes detection (zero fields default).
	Drift profiler.DriftConfig
	// Framework plans (nil → paper-faithful engine).
	Framework *Framework
	// Clock drives controller timestamps; nil means a virtual clock at the
	// zero instant, so simulations are deterministic BY DEFAULT.
	Clock simclock.Clock
}

// SimEpoch is one simulated epoch's outcome.
type SimEpoch struct {
	Epoch       uint64             `json:"epoch"`
	PlanVersion policy.PlanVersion `json:"plan_version"`
	EpochTime   time.Duration      `json:"epoch_time"`
	// TrafficBytes crossed the storage link this epoch.
	TrafficBytes int64 `json:"traffic_bytes"`
	// MeasuredBandwidth is the link throughput the telemetry observed
	// (bytes/second).
	MeasuredBandwidth float64 `json:"measured_bandwidth"`
}

// SimResult is the full adaptive (or static) run.
type SimResult struct {
	Epochs  []SimEpoch
	History []ReplanEvent
	// Schedule maps the run's plan versions to epoch ranges; replaying it
	// through engine.RunSchedule over the same EnvAt regenerates the exact
	// epoch times with no controller in the loop.
	Schedule *engine.PlanSchedule
}

// RunAdaptiveSim simulates cfg.Epochs epochs of the control loop.
func RunAdaptiveSim(cfg SimConfig) (SimResult, error) {
	if cfg.Epochs < 1 {
		return SimResult{}, fmt.Errorf("core: %d epochs", cfg.Epochs)
	}
	if cfg.Trace == nil || cfg.Trace.N() == 0 {
		return SimResult{}, errors.New("core: empty trace")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.NewVirtual(time.Unix(0, 0))
	}
	envAt := cfg.EnvAt
	if envAt == nil {
		envAt = func(uint64) policy.Env { return cfg.Env }
	}
	ctrl, err := NewController(ControllerConfig{
		Framework: cfg.Framework,
		Trace:     cfg.Trace,
		Env:       cfg.Env,
		Drift:     cfg.Drift,
		Clock:     clock,
	})
	if err != nil {
		return SimResult{}, err
	}

	baseShards := cfg.Env.ShardCount()
	var (
		epochs   []SimEpoch
		schedule []engine.PlanScheduleEntry
	)
	for e := uint64(1); e <= uint64(cfg.Epochs); e++ {
		trueEnv := envAt(e)
		snap := ctrl.Current()
		if len(schedule) == 0 || schedule[len(schedule)-1].Version != uint32(snap.Version) {
			schedule = append(schedule, engine.PlanScheduleEntry{
				FromEpoch: e, Version: uint32(snap.Version), Plan: snap.Plan,
			})
		}
		res, err := engine.Run(engine.Config{
			Trace:     cfg.Trace,
			Plan:      snap.Plan,
			Env:       trueEnv,
			BatchSize: cfg.BatchSize,
			Shards:    trueEnv.ShardCount(),
		})
		if err != nil {
			return SimResult{}, fmt.Errorf("core: epoch %d: %w", e, err)
		}
		if v, ok := clock.(*simclock.Virtual); ok {
			v.Advance(res.EpochTime)
		}

		// Measured bandwidth emerges from the sim: each shard link
		// serializes its traffic at the true rate, so bytes over busy time
		// IS the environment's per-link bandwidth.
		var measuredBW float64
		if res.LinkBusy > 0 {
			measuredBW = float64(res.TrafficBytes) / res.LinkBusy.Seconds()
		}
		var occ float64
		if trueEnv.StorageCores > 0 && res.EpochTime > 0 {
			capacity := res.EpochTime.Seconds() * float64(trueEnv.StorageCores*trueEnv.ShardCount())
			occ = res.StorageBusy.Seconds() / capacity
		}
		epochs = append(epochs, SimEpoch{
			Epoch:             e,
			PlanVersion:       snap.Version,
			EpochTime:         res.EpochTime,
			TrafficBytes:      res.TrafficBytes,
			MeasuredBandwidth: measuredBW,
		})

		if cfg.Adaptive {
			if _, _, err := ctrl.ObserveEpoch(profiler.EpochSample{
				Epoch:            e,
				Bandwidth:        measuredBW,
				StorageOccupancy: occ,
				ShardsUp:         trueEnv.ShardCount(),
				Shards:           baseShards,
			}); err != nil {
				return SimResult{}, err
			}
		}
	}

	sched, err := engine.NewPlanSchedule(schedule)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{Epochs: epochs, History: ctrl.History(), Schedule: sched}, nil
}
