// Package perfbench runs the data plane's micro-benchmarks programmatically
// and reports their results as structured records. It exists so the
// allocation work in the codec, pipeline, and wire layers can be tracked
// outside `go test -bench`: sophon-bench's -json flag runs this suite and
// emits one BENCH record per kernel, which CI and BENCH_pr3.json diff
// against earlier runs.
//
// The suite deliberately re-implements only the loop bodies of the
// corresponding *_test.go benchmarks (full 640×480 decode, fused tensor
// kernel, frame encode, and so on) so the numbers are comparable to
// `go test -benchmem` output for the same kernels.
package perfbench

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bufpool"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Result is one benchmark measurement, mirroring the fields `go test
// -benchmem` prints for a benchmark line.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

func run(name string, bytesPerOp int64, body func() error) (Result, error) {
	var failure error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if bytesPerOp > 0 {
			b.SetBytes(bytesPerOp)
		}
		for i := 0; i < b.N; i++ {
			if err := body(); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return Result{}, fmt.Errorf("perfbench: %s: %w", name, failure)
	}
	r := Result{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if bytesPerOp > 0 && res.NsPerOp() > 0 {
		r.MBPerSec = float64(bytesPerOp) / float64(res.NsPerOp()) * 1e9 / 1e6
	}
	return r, nil
}

// Run executes the whole suite and returns one Result per kernel. It is
// moderately expensive (each kernel runs until testing.Benchmark's default
// 1 s budget is spent) but needs no testdata or network.
func Run() ([]Result, error) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 640, H: 480, Detail: 0.5, Seed: 3})
	if err != nil {
		return nil, err
	}
	raw, err := imaging.EncodeDefault(im)
	if err != nil {
		return nil, err
	}
	im224, err := imaging.Synthesize(imaging.SynthParams{W: 224, H: 224, Detail: 0.5, Seed: 3})
	if err != nil {
		return nil, err
	}
	enc224, err := pipeline.ImageArtifact(im224).Encode()
	if err != nil {
		return nil, err
	}
	p := pipeline.DefaultStandard()
	respArtifact := make([]byte, 600<<10)
	resp := &wire.FetchResp{RequestID: 7, Sample: 3, Split: 2, Status: wire.FetchOK, Artifact: respArtifact}
	prog, err := imaging.EncodeProgressive(im, imaging.DefaultQuality, imaging.MaxScans)
	if err != nil {
		return nil, err
	}

	var results []Result
	var sample uint64
	for _, spec := range []struct {
		name  string
		bytes int64
		body  func() error
	}{
		{"imaging/Decode640x480", int64(len(raw)), func() error {
			out, err := imaging.Decode(raw)
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
		{"imaging/Encode640x480", int64(im.ByteSize()), func() error {
			_, err := imaging.EncodeDefault(im)
			return err
		}},
		{"tensor/FusedToTensorNormalize224", int64(im224.ByteSize()), func() error {
			tt, err := tensor.FromImageNormalized(im224, tensor.ImageNetMean, tensor.ImageNetStd)
			if err != nil {
				return err
			}
			tt.Release()
			return nil
		}},
		{"pipeline/FullPipeline640x480", int64(len(raw)), func() error {
			sample++
			out, err := p.Run(raw, pipeline.Seed{Job: 1, Epoch: 1, Sample: sample})
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
		{"pipeline/ArtifactDecodeImage224", int64(len(enc224)), func() error {
			out, err := pipeline.DecodeArtifact(enc224)
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
		{"wire/WriteFetchResp600KB", int64(wire.FrameSize(resp)), func() error {
			return wire.Write(io.Discard, resp)
		}},
		{"storage/PrefixServe640x480", int64(len(prog)), func() error {
			// The server's reduced-fidelity fast path: slice the stored
			// container (zero-copy) and stage it into a pooled response
			// buffer behind a kind byte.
			prefix, err := imaging.SlicePrefix(prog, imaging.MaxScans-2)
			if err != nil {
				return err
			}
			enc := bufpool.GetBytes(1 + len(prefix))
			enc[0] = byte(pipeline.KindRaw)
			copy(enc[1:], prefix)
			bufpool.PutBytes(enc)
			return nil
		}},
	} {
		r, err := run(spec.name, spec.bytes, spec.body)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}
