package perfbench

import "testing"

func TestRunProducesCompleteRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("perfbench suite takes several seconds")
	}
	results, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results, want 7", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Errorf("incomplete record: %+v", r)
		}
		if r.AllocsPerOp < 0 || r.BytesPerOp < 0 {
			t.Errorf("negative alloc stats: %+v", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate benchmark name %q", r.Name)
		}
		seen[r.Name] = true
	}
}
