package perfbench

import (
	"os"
	"testing"
	"time"

	"repro/internal/loadgen"
)

func sampleRecord() SLORecord {
	return SLORecord{
		Kind:      "SLO",
		Version:   SLORecordVersion,
		GoVersion: "go1.24.0",
		Seed:      2024,
		Scenarios: []SLOScenario{{
			Name:          "steady",
			Sessions:      2400,
			Offered:       10000,
			Completed:     9990,
			OfferedRPS:    5000,
			ThroughputRPS: 4995,
			Classes: map[string]SLOClass{
				"hit":       {Count: 4000, P50Ms: 0.03, P99Ms: 0.05, P999Ms: 0.06},
				"offloaded": {Count: 4000, P50Ms: 1.2, P99Ms: 6.5, P999Ms: 9.8},
				"raw":       {Count: 2000, P50Ms: 2.4, P99Ms: 11.0, P999Ms: 16.0},
			},
		}},
	}
}

func TestCompareSLOPasses(t *testing.T) {
	prev := sampleRecord()
	cur := sampleRecord()
	// Jitter within the 10% noise band must pass.
	s := cur.Scenarios[0]
	s.ThroughputRPS *= 0.95
	c := s.Classes["raw"]
	c.P99Ms *= 1.08
	s.Classes["raw"] = c
	cur.Scenarios[0] = s
	if regs := CompareSLO(prev, cur, 0); len(regs) != 0 {
		t.Fatalf("within-noise diff failed the gate: %v", regs)
	}
}

// TestCompareSLOCatchesInjectedP99Regression is the acceptance check: a 20%
// p99 regression on one class must fail the gate at the default threshold.
func TestCompareSLOCatchesInjectedP99Regression(t *testing.T) {
	prev := sampleRecord()
	cur := sampleRecord()
	s := cur.Scenarios[0]
	c := s.Classes["offloaded"]
	c.P99Ms *= 1.20
	s.Classes["offloaded"] = c
	cur.Scenarios[0] = s
	regs := CompareSLO(prev, cur, 0)
	if len(regs) != 1 {
		t.Fatalf("want exactly the injected p99 regression, got %v", regs)
	}
	t.Logf("gate caught: %s", regs[0])
}

func TestCompareSLOCatchesThroughputDrop(t *testing.T) {
	prev := sampleRecord()
	cur := sampleRecord()
	cur.Scenarios[0].ThroughputRPS *= 0.80
	if regs := CompareSLO(prev, cur, 0); len(regs) != 1 {
		t.Fatalf("want the throughput regression, got %v", regs)
	}
}

func TestCompareSLOStructuralRegressions(t *testing.T) {
	prev := sampleRecord()

	cur := sampleRecord()
	cur.Scenarios = nil
	if regs := CompareSLO(prev, cur, 0); len(regs) != 1 {
		t.Fatalf("missing scenario: got %v", regs)
	}

	cur = sampleRecord()
	delete(cur.Scenarios[0].Classes, "hit")
	if regs := CompareSLO(prev, cur, 0); len(regs) != 1 {
		t.Fatalf("missing class: got %v", regs)
	}

	cur = sampleRecord()
	cur.Version = SLORecordVersion + 1
	if regs := CompareSLO(prev, cur, 0); len(regs) != 1 {
		t.Fatalf("version skew: got %v", regs)
	}

	// Extra scenarios and classes in cur are new baselines, not failures.
	cur = sampleRecord()
	cur.Scenarios = append(cur.Scenarios, SLOScenario{Name: "overload"})
	if regs := CompareSLO(prev, cur, 0); len(regs) != 0 {
		t.Fatalf("new scenario failed the gate: %v", regs)
	}
}

func TestScenarioFromReport(t *testing.T) {
	rep := &loadgen.Report{
		Sessions:      100,
		Offered:       1000,
		Completed:     990,
		Shed:          10,
		ThroughputRPS: 495,
		ShedRate:      0.01,
		Classes: map[string]*loadgen.ClassReport{
			"hit": {Count: 990, P50: 30 * time.Microsecond, P99: 50 * time.Microsecond},
		},
	}
	s := ScenarioFromReport("steady", rep)
	if s.Name != "steady" || s.Sessions != 100 || s.Completed != 990 {
		t.Fatalf("identity fields wrong: %+v", s)
	}
	c, ok := s.Classes["hit"]
	if !ok {
		t.Fatal("hit class missing")
	}
	if c.P50Ms != 0.03 || c.P99Ms != 0.05 {
		t.Fatalf("ns→ms conversion wrong: %+v", c)
	}
}

// TestConvertBenchRecords converts the real committed BENCH records — every
// historical shape must keep converting.
func TestConvertBenchRecords(t *testing.T) {
	cases := []struct {
		file    string
		pr      int
		wantKey string
	}{
		{"../../BENCH_pr3.json", 3, "pipeline/BenchmarkFullPipeline640x480/ns_per_op"},
		{"../../BENCH_pr5.json", 5, "adaptive_vs_oracle"},
		{"../../BENCH_pr6.json", 6, "coordinated_speedup"},
		{"../../BENCH_pr8.json", 8, "prefetch_speedup"},
		{"../../BENCH_pr9.json", 9, "prepsched_speedup"},
		{"../../BENCH_alloc.json", 0, "imaging/Decode640x480/ns_per_op"},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		e, err := ConvertBenchRecord(tc.file, data)
		if err != nil {
			t.Fatal(err)
		}
		if e.PR != tc.pr {
			t.Errorf("%s: pr = %d, want %d", tc.file, e.PR, tc.pr)
		}
		v, ok := e.Metrics[tc.wantKey]
		if !ok || v <= 0 {
			t.Errorf("%s: metric %q = %v (present %v)", tc.file, tc.wantKey, v, ok)
		}
	}

	if _, err := ConvertBenchRecord("bogus", []byte(`{"kind":"???"}`)); err == nil {
		t.Error("unrecognized shape converted without error")
	}
}

// TestCompareBench: the alloc-suite gate catches alloc regressions and
// vanished kernels, tolerates exactly the configured slack, and ignores
// timing entirely.
func TestCompareBench(t *testing.T) {
	base := BenchRecord{Kind: "BENCH", Results: []Result{
		{Name: "imaging/Decode", NsPerOp: 100, AllocsPerOp: 43},
		{Name: "wire/Write", NsPerOp: 50, AllocsPerOp: 0},
	}}
	if regs := CompareBench(base, base, 0); len(regs) != 0 {
		t.Fatalf("identical records failed the gate: %v", regs)
	}

	slower := BenchRecord{Kind: "BENCH", Results: []Result{
		{Name: "imaging/Decode", NsPerOp: 100000, AllocsPerOp: 43},
		{Name: "wire/Write", NsPerOp: 50000, AllocsPerOp: 0},
	}}
	if regs := CompareBench(base, slower, 0); len(regs) != 0 {
		t.Fatalf("timing-only drift failed the alloc gate: %v", regs)
	}

	leaky := BenchRecord{Kind: "BENCH", Results: []Result{
		{Name: "imaging/Decode", NsPerOp: 100, AllocsPerOp: 45},
		{Name: "wire/Write", NsPerOp: 50, AllocsPerOp: 0},
	}}
	if regs := CompareBench(base, leaky, 0); len(regs) != 1 {
		t.Fatalf("2 extra allocs/op not caught: %v", regs)
	}
	if regs := CompareBench(base, leaky, 2); len(regs) != 0 {
		t.Fatalf("allocSlack 2 did not absorb 2 extra allocs/op: %v", regs)
	}
	if regs := CompareBench(base, leaky, 1); len(regs) != 1 {
		t.Fatalf("allocSlack 1 absorbed 2 extra allocs/op: %v", regs)
	}

	gone := BenchRecord{Kind: "BENCH", Results: base.Results[:1]}
	if regs := CompareBench(base, gone, 0); len(regs) != 1 {
		t.Fatalf("vanished kernel not caught: %v", regs)
	}

	grown := BenchRecord{Kind: "BENCH", Results: append([]Result{
		{Name: "new/Kernel", NsPerOp: 10, AllocsPerOp: 99},
	}, base.Results...)}
	if regs := CompareBench(base, grown, 0); len(regs) != 0 {
		t.Fatalf("new kernel failed the gate: %v", regs)
	}
}

// TestIsBenchSuite: the gate's shape detector tells alloc-suite records from
// every other record kind this repo commits.
func TestIsBenchSuite(t *testing.T) {
	suite, err := os.ReadFile("../../BENCH_alloc.json")
	if err != nil {
		t.Fatal(err)
	}
	if !IsBenchSuite(suite) {
		t.Fatal("BENCH_alloc.json not detected as an alloc-suite record")
	}
	for _, f := range []string{"../../BENCH_pr5.json", "../../BENCH_pr7.json", "../../BENCH_pr8.json", "../../BENCH_pr9.json"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if IsBenchSuite(data) {
			t.Fatalf("%s misdetected as an alloc-suite record", f)
		}
	}
	if IsBenchSuite([]byte("not json")) {
		t.Fatal("garbage detected as an alloc-suite record")
	}
}
