package perfbench

// SLO records and the perf-trajectory gate. The load generator
// (internal/loadgen) measures per-fetch-class latency distributions; this
// file freezes them into a versioned, diffable record (SLORecord), compares
// two records with a noise threshold (CompareSLO — the CI gate), and folds
// the repo's historical BENCH_pr*.json records plus SLO records into one
// trajectory format (Trajectory, ConvertBenchRecord) so the perf history of
// the codebase reads as a single time series.

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/loadgen"
)

// SLORecordVersion is bumped whenever SLORecord's shape changes
// incompatibly; CompareSLO refuses cross-version diffs.
const SLORecordVersion = 1

// DefaultNoise is the default relative regression threshold for CompareSLO:
// p99 may rise and throughput may fall by up to this fraction before the
// gate fails. It must sit below any regression CI is expected to catch (the
// acceptance bar is an injected 20% p99 regression).
const DefaultNoise = 0.10

// SLOClass is one fetch class's latency distribution in milliseconds —
// fixed units so records from different runs diff cleanly.
type SLOClass struct {
	Count  uint64  `json:"count"`
	Shed   uint64  `json:"shed"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// SLOScenario is one load-generator run: a named workload with its offered
// and delivered rates and the per-class distributions.
type SLOScenario struct {
	Name          string              `json:"name"`
	Sessions      int                 `json:"sessions"`
	Offered       uint64              `json:"offered"`
	Completed     uint64              `json:"completed"`
	Shed          uint64              `json:"shed"`
	OfferedRPS    float64             `json:"offered_rps"`
	ThroughputRPS float64             `json:"throughput_rps"`
	ShedRate      float64             `json:"shed_rate"`
	MaxQueueDepth int                 `json:"max_queue_depth"`
	Classes       map[string]SLOClass `json:"classes"`
}

// SLORecord is the versioned output of `sophon-bench -load`: one record per
// run, one scenario per workload. CI commits the previous record and diffs
// each new run against it with CompareSLO.
type SLORecord struct {
	Kind      string        `json:"kind"` // always "SLO"
	Version   int           `json:"version"`
	GoVersion string        `json:"go_version"`
	Seed      uint64        `json:"seed"`
	Scenarios []SLOScenario `json:"scenarios"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// ScenarioFromReport freezes one loadgen report into an SLO scenario.
func ScenarioFromReport(name string, r *loadgen.Report) SLOScenario {
	s := SLOScenario{
		Name:          name,
		Sessions:      r.Sessions,
		Offered:       r.Offered,
		Completed:     r.Completed,
		Shed:          r.Shed,
		OfferedRPS:    r.OfferedRPS,
		ThroughputRPS: r.ThroughputRPS,
		ShedRate:      r.ShedRate,
		MaxQueueDepth: r.MaxQueueDepth,
		Classes:       make(map[string]SLOClass, len(r.Classes)),
	}
	for class, c := range r.Classes {
		s.Classes[class] = SLOClass{
			Count:  c.Count,
			Shed:   c.Shed,
			P50Ms:  ms(c.P50),
			P90Ms:  ms(c.P90),
			P99Ms:  ms(c.P99),
			P999Ms: ms(c.P999),
			MaxMs:  ms(c.Max),
			MeanMs: ms(c.Mean),
		}
	}
	return s
}

// CompareSLO diffs cur against prev and returns one message per regression
// past the noise threshold (noise <= 0 → DefaultNoise): throughput down, a
// scenario or class gone, or a class p99/p999 up. An empty slice means the
// gate passes. New scenarios and classes in cur never fail the gate — they
// become the baseline for the next run.
func CompareSLO(prev, cur SLORecord, noise float64) []string {
	if noise <= 0 {
		noise = DefaultNoise
	}
	var regs []string
	if prev.Version != cur.Version {
		return []string{fmt.Sprintf("record version changed %d → %d; re-baseline instead of diffing", prev.Version, cur.Version)}
	}
	curByName := make(map[string]SLOScenario, len(cur.Scenarios))
	for _, s := range cur.Scenarios {
		curByName[s.Name] = s
	}
	for _, p := range prev.Scenarios {
		c, ok := curByName[p.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: scenario disappeared", p.Name))
			continue
		}
		if p.ThroughputRPS > 0 && c.ThroughputRPS < p.ThroughputRPS*(1-noise) {
			regs = append(regs, fmt.Sprintf("%s: throughput %.0f rps → %.0f rps (-%.1f%%, threshold %.0f%%)",
				p.Name, p.ThroughputRPS, c.ThroughputRPS,
				100*(1-c.ThroughputRPS/p.ThroughputRPS), 100*noise))
		}
		classes := make([]string, 0, len(p.Classes))
		for class := range p.Classes {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			pc := p.Classes[class]
			cc, ok := c.Classes[class]
			if !ok {
				regs = append(regs, fmt.Sprintf("%s/%s: class disappeared", p.Name, class))
				continue
			}
			for _, q := range []struct {
				name       string
				prev, curr float64
			}{
				{"p99", pc.P99Ms, cc.P99Ms},
				{"p999", pc.P999Ms, cc.P999Ms},
			} {
				if q.prev > 0 && q.curr > q.prev*(1+noise) {
					regs = append(regs, fmt.Sprintf("%s/%s: %s %.3f ms → %.3f ms (+%.1f%%, threshold %.0f%%)",
						p.Name, class, q.name, q.prev, q.curr,
						100*(q.curr/q.prev-1), 100*noise))
				}
			}
		}
	}
	return regs
}

// TrajectoryEntry is one historical perf record reduced to a flat metric
// map; Source names the file it came from, PR the change that produced it
// (0 when the record carries no PR number).
type TrajectoryEntry struct {
	Source  string             `json:"source"`
	PR      int                `json:"pr,omitempty"`
	Kind    string             `json:"kind"`
	Metrics map[string]float64 `json:"metrics"`
}

// Trajectory is the repo's perf history in one file: every BENCH and SLO
// record converted to a common shape, in the order given.
type Trajectory struct {
	Kind    string            `json:"kind"` // always "TRAJECTORY"
	Version int               `json:"version"`
	Entries []TrajectoryEntry `json:"entries"`
}

// ConvertBenchRecord folds one committed perf record — any of the BENCH_pr*
// shapes this repo has accumulated, a `sophon-bench -json` suite report, or
// an SLO record — into a trajectory entry. It detects the shape from the
// fields present rather than trusting the pr number.
func ConvertBenchRecord(source string, data []byte) (TrajectoryEntry, error) {
	var probe struct {
		Kind               string            `json:"kind"`
		PR                 int               `json:"pr"`
		Results            []Result          `json:"results"`
		Benchmarks         []json.RawMessage `json:"benchmarks"`
		AdaptiveVsOracle   *float64          `json:"adaptive_vs_oracle"`
		StaticVsAdaptive   *float64          `json:"static_vs_adaptive"`
		CoordinatedSpeedup *float64          `json:"coordinated_speedup"`
		Coordinated        struct {
			AggregateEpochSeconds float64 `json:"aggregate_epoch_seconds"`
			CacheHitRate          float64 `json:"cache_hit_rate"`
		} `json:"coordinated"`
		PrefetchSpeedup *float64 `json:"prefetch_speedup"`
		Reactive        struct {
			EpochSeconds float64 `json:"epoch_seconds"`
			LinkIdleFrac float64 `json:"link_idle_frac"`
		} `json:"reactive"`
		Clairvoyant struct {
			EpochSeconds float64 `json:"epoch_seconds"`
			LinkIdleFrac float64 `json:"link_idle_frac"`
		} `json:"clairvoyant"`
		TrafficReduction *float64 `json:"traffic_reduction"`
		Discrete         struct {
			TrafficMB    float64 `json:"traffic_mb"`
			EpochSeconds float64 `json:"epoch_seconds"`
		} `json:"discrete"`
		Progressive struct {
			TrafficMB    float64 `json:"traffic_mb"`
			EpochSeconds float64 `json:"epoch_seconds"`
			MeanQuality  float64 `json:"mean_quality"`
		} `json:"progressive"`
		PrepschedSpeedup *float64 `json:"prepsched_speedup"`
		FIFO             struct {
			EpochSeconds    float64 `json:"epoch_seconds"`
			WorkerStallFrac float64 `json:"worker_stall_frac"`
		} `json:"fifo"`
		Steal struct {
			EpochSeconds    float64 `json:"epoch_seconds"`
			WorkerStallFrac float64 `json:"worker_stall_frac"`
		} `json:"steal"`
		Scenarios []SLOScenario `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("perfbench: convert %s: %w", source, err)
	}
	e := TrajectoryEntry{Source: source, PR: probe.PR, Kind: probe.Kind, Metrics: map[string]float64{}}
	switch {
	case probe.Kind == "SLO":
		for _, s := range probe.Scenarios {
			e.Metrics[s.Name+"/throughput_rps"] = s.ThroughputRPS
			e.Metrics[s.Name+"/shed_rate"] = s.ShedRate
			for class, c := range s.Classes {
				e.Metrics[s.Name+"/"+class+"/p99_ms"] = c.P99Ms
			}
		}
	case len(probe.Results) > 0: // sophon-bench -json suite report
		for _, r := range probe.Results {
			e.Metrics[r.Name+"/ns_per_op"] = r.NsPerOp
			e.Metrics[r.Name+"/allocs_per_op"] = float64(r.AllocsPerOp)
		}
	case len(probe.Benchmarks) > 0: // BENCH_pr3: before/after alloc table
		for _, raw := range probe.Benchmarks {
			var b struct {
				Name  string `json:"name"`
				After struct {
					NsPerOp     float64 `json:"ns_per_op"`
					AllocsPerOp float64 `json:"allocs_per_op"`
				} `json:"after"`
			}
			if err := json.Unmarshal(raw, &b); err != nil {
				return TrajectoryEntry{}, fmt.Errorf("perfbench: convert %s: %w", source, err)
			}
			e.Metrics[b.Name+"/ns_per_op"] = b.After.NsPerOp
			e.Metrics[b.Name+"/allocs_per_op"] = b.After.AllocsPerOp
		}
	case probe.AdaptiveVsOracle != nil: // BENCH_pr5: adaptive control plane
		e.Metrics["adaptive_vs_oracle"] = *probe.AdaptiveVsOracle
		if probe.StaticVsAdaptive != nil {
			e.Metrics["static_vs_adaptive"] = *probe.StaticVsAdaptive
		}
	case probe.CoordinatedSpeedup != nil: // BENCH_pr6: fleet scenario
		e.Metrics["coordinated_speedup"] = *probe.CoordinatedSpeedup
		e.Metrics["coordinated/aggregate_epoch_seconds"] = probe.Coordinated.AggregateEpochSeconds
		e.Metrics["coordinated/cache_hit_rate"] = probe.Coordinated.CacheHitRate
	case probe.PrefetchSpeedup != nil: // BENCH_pr8: clairvoyant prefetching
		e.Metrics["prefetch_speedup"] = *probe.PrefetchSpeedup
		e.Metrics["reactive/epoch_seconds"] = probe.Reactive.EpochSeconds
		e.Metrics["reactive/link_idle_frac"] = probe.Reactive.LinkIdleFrac
		e.Metrics["clairvoyant/epoch_seconds"] = probe.Clairvoyant.EpochSeconds
		e.Metrics["clairvoyant/link_idle_frac"] = probe.Clairvoyant.LinkIdleFrac
	case probe.TrafficReduction != nil: // BENCH_pr10: progressive fidelity
		e.Metrics["traffic_reduction"] = *probe.TrafficReduction
		e.Metrics["discrete/traffic_mb"] = probe.Discrete.TrafficMB
		e.Metrics["discrete/epoch_seconds"] = probe.Discrete.EpochSeconds
		e.Metrics["progressive/traffic_mb"] = probe.Progressive.TrafficMB
		e.Metrics["progressive/epoch_seconds"] = probe.Progressive.EpochSeconds
		e.Metrics["progressive/mean_quality"] = probe.Progressive.MeanQuality
	case probe.PrepschedSpeedup != nil: // BENCH_pr9: variance-aware prepsched
		e.Metrics["prepsched_speedup"] = *probe.PrepschedSpeedup
		e.Metrics["fifo/epoch_seconds"] = probe.FIFO.EpochSeconds
		e.Metrics["fifo/worker_stall_frac"] = probe.FIFO.WorkerStallFrac
		e.Metrics["steal/epoch_seconds"] = probe.Steal.EpochSeconds
		e.Metrics["steal/worker_stall_frac"] = probe.Steal.WorkerStallFrac
	default:
		return TrajectoryEntry{}, fmt.Errorf("perfbench: convert %s: unrecognized record shape (kind %q)", source, probe.Kind)
	}
	return e, nil
}
