package perfbench

// The alloc-suite gate: BENCH records from `sophon-bench -json` (one Result
// per data-plane kernel) are diffed against a committed baseline the same way
// SLO records are. Unlike latency, allocation counts are deterministic — the
// same code allocates the same number of times per op on any machine — so the
// gate holds allocs/op to the baseline exactly (plus an explicit slack) and
// deliberately ignores ns/op, which is pure machine noise on shared CI.

import (
	"encoding/json"
	"fmt"
	"runtime"
)

// BenchRecord is the versioned output of `sophon-bench -json`: the
// data-plane micro-benchmark suite frozen into one record. CI commits the
// previous record (BENCH_alloc.json) and diffs each new run with
// CompareBench.
type BenchRecord struct {
	Kind      string   `json:"kind"` // always "BENCH"
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// NewBenchRecord runs the suite and stamps the record.
func NewBenchRecord() (BenchRecord, error) {
	results, err := Run()
	if err != nil {
		return BenchRecord{}, err
	}
	return BenchRecord{
		Kind:      "BENCH",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   results,
	}, nil
}

// IsBenchSuite reports whether raw JSON is a `sophon-bench -json` suite
// record (as opposed to an SLO record or one of the scenario BENCH shapes);
// the gate uses it to pick CompareBench vs CompareSLO.
func IsBenchSuite(data []byte) bool {
	var probe struct {
		Kind    string   `json:"kind"`
		Results []Result `json:"results"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Kind == "BENCH" && len(probe.Results) > 0
}

// CompareBench diffs cur against prev and returns one message per
// allocation regression: a kernel gone from the suite, or allocs/op above
// the baseline plus allocSlack (negative slack → 0, i.e. exact). New kernels
// in cur never fail — they become the baseline for the next run. ns/op and
// B/op are reported nowhere here on purpose: timing is machine noise, and
// alloc *bytes* scale with payload constants the suite may legitimately
// retune, while alloc *counts* regressing means a hot path gained a heap
// escape.
func CompareBench(prev, cur BenchRecord, allocSlack int64) []string {
	if allocSlack < 0 {
		allocSlack = 0
	}
	var regs []string
	curByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	for _, p := range prev.Results {
		c, ok := curByName[p.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: kernel disappeared from the suite", p.Name))
			continue
		}
		if c.AllocsPerOp > p.AllocsPerOp+allocSlack {
			regs = append(regs, fmt.Sprintf("%s: allocs/op %d → %d (baseline+%d allowed)",
				p.Name, p.AllocsPerOp, c.AllocsPerOp, allocSlack))
		}
	}
	return regs
}
