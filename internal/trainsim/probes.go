package trainsim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/profiler"
)

// decodedDims reads the stored image's dimensions from its SJPG header
// without a full decode.
func decodedDims(raw []byte) (int, int, error) {
	w, h, err := imaging.DecodeDims(raw)
	if err != nil {
		return 0, 0, fmt.Errorf("trainsim: decode dims: %w", err)
	}
	return w, h, nil
}

// MeasureBandwidth estimates the storage link's current throughput in
// bytes/second by fetching n raw samples serially over the shared session
// and timing the wire bytes — the stage-1 I/O probe repurposed for the
// adaptive control plane's between-epoch re-profiling. Serial fetches keep
// the link the bottleneck, so under a shaped link the estimate converges on
// the shaper's rate.
func (t *Trainer) MeasureBandwidth(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("trainsim: bandwidth probe of %d samples", n)
	}
	clock := t.cfg.Clock
	var bytes int64
	start := clock.Now()
	for k := 0; k < n; k++ {
		res, err := t.client.Fetch(context.Background(), uint32(k%t.n), 0, 0)
		if err != nil {
			return 0, fmt.Errorf("trainsim: bandwidth probe fetch %d: %w", k, err)
		}
		if res.Err != nil {
			return 0, fmt.Errorf("trainsim: bandwidth probe fetch %d: %w", k, res.Err)
		}
		bytes += int64(res.WireBytes)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("trainsim: bandwidth probe of %d bytes took no time", bytes)
	}
	return float64(bytes) / elapsed.Seconds(), nil
}

// Stage1Probes builds the profiler's three throughput probes on top of this
// trainer, matching the paper's measurement settings: (1) GPU-only steps on
// synthetic batches, (2) raw fetches with no processing, (3) preprocessing
// of data cached during the I/O probe.
func (t *Trainer) Stage1Probes() profiler.Probes {
	clock := t.cfg.Clock
	batch := t.cfg.BatchSize

	gpuProbe := func(batches int) (int, time.Duration, error) {
		start := clock.Now()
		for b := 0; b < batches; b++ {
			clock.Sleep(t.cfg.GPU.BatchTime(batch))
		}
		return batches * batch, clock.Now().Sub(start), nil
	}

	var cached [][]byte
	ioProbe := func(batches int) (int, time.Duration, error) {
		client := t.client
		total := batches * batch
		start := clock.Now()
		for k := 0; k < total; k++ {
			id := uint32(k % t.n)
			res, err := client.Fetch(context.Background(), id, 0, 0)
			if err != nil {
				return 0, 0, fmt.Errorf("io probe fetch %d: %w", id, err)
			}
			if res.Artifact.Kind != pipeline.KindRaw {
				return 0, 0, fmt.Errorf("io probe got %s artifact", res.Artifact.Kind)
			}
			if len(cached) < batch {
				cached = append(cached, res.Artifact.Raw)
			}
		}
		return total, clock.Now().Sub(start), nil
	}

	cpuProbe := func(batches int) (int, time.Duration, error) {
		if len(cached) == 0 {
			return 0, 0, fmt.Errorf("cpu probe needs the io probe to run first")
		}
		total := batches * batch
		start := clock.Now()
		for k := 0; k < total; k++ {
			raw := cached[k%len(cached)]
			seed := pipeline.Seed{Job: t.cfg.JobID, Epoch: 0, Sample: uint64(k)}
			art, err := t.cfg.Pipeline.Run(raw, seed)
			if err != nil {
				return 0, 0, fmt.Errorf("cpu probe sample %d: %w", k, err)
			}
			art.Release()
		}
		return total, clock.Now().Sub(start), nil
	}

	return profiler.Probes{GPU: gpuProbe, IO: ioProbe, CPU: cpuProbe}
}
