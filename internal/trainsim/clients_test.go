package trainsim

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// Compile-time checks: every composition satisfies StorageClient.
var (
	_ StorageClient = (*storage.Client)(nil)
	_ StorageClient = (*storage.ReconnectingClient)(nil)
	_ StorageClient = (*cache.FetchingCache)(nil)
)

// TestTrainerWithReconnectingClientSurvivesFlakyLinks runs a full epoch
// where every connection dies after a byte budget; the reconnecting client
// must transparently redial and the epoch complete.
func TestTrainerWithReconnectingClientSurvivesFlakyLinks(t *testing.T) {
	h := newHarness(t, 16, 2)
	cfg := h.config()
	cfg.DialClient = func() (StorageClient, error) {
		dial := func() (*storage.Client, error) {
			conn, err := h.listener.Dial()
			if err != nil {
				return nil, err
			}
			// Each connection survives ~6 sample transfers (64² crops run
			// ~12 KB each plus raws), then fails.
			return storage.NewClient(netsim.Flaky(conn, 150<<10), 7)
		}
		return storage.NewReconnecting(dial, 8, time.Millisecond, nil)
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 16 {
		t.Fatalf("trained %d samples over flaky links", rep.Samples)
	}
}

// TestTrainerWithCachingClient runs two epochs with a local cache: the
// second epoch's raw fetches all hit locally, cutting traffic to ~zero.
func TestTrainerWithCachingClient(t *testing.T) {
	h := newHarness(t, 12, 0)
	inner, err := cache.NewNoEvict(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.config()
	cfg.DialClient = func() (StorageClient, error) {
		conn, err := h.listener.Dial()
		if err != nil {
			return nil, err
		}
		c, err := storage.NewClient(conn, 7)
		if err != nil {
			return nil, err
		}
		return cache.NewFetchingCache(c, inner), nil
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	first, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tr.RunEpoch(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.BytesFetched == 0 {
		t.Fatal("first epoch fetched nothing")
	}
	if second.BytesFetched != 0 {
		t.Fatalf("second epoch fetched %d bytes despite a warm cache", second.BytesFetched)
	}
	if inner.Stats().HitRate() <= 0 {
		t.Fatal("cache recorded no hits")
	}
}

// TestTrainerCachingWithBatchedFetches combines the cache wrapper with
// batched fetches.
func TestTrainerCachingWithBatchedFetches(t *testing.T) {
	h := newHarness(t, 12, 0)
	inner, err := cache.NewNoEvict(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.config()
	cfg.FetchBatchSize = 4
	cfg.DialClient = func() (StorageClient, error) {
		conn, err := h.listener.Dial()
		if err != nil {
			return nil, err
		}
		c, err := storage.NewClient(conn, 7)
		if err != nil {
			return nil, err
		}
		return cache.NewFetchingCache(c, inner), nil
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RunEpoch(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	second, err := tr.RunEpoch(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.BytesFetched != 0 {
		t.Fatalf("warm batched epoch fetched %d bytes", second.BytesFetched)
	}
}
