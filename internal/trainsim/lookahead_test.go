package trainsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/prefetch"
	"repro/internal/storage"
)

func TestLookaheadConfigValidation(t *testing.T) {
	h := newHarness(t, 4, 1)
	ledger, err := cache.NewStaging(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"window+lookahead", func(c *Config) { c.PrefetchWindow = 8; c.Lookahead = 4 }},
		{"horizon without lookahead", func(c *Config) { c.LookaheadHorizon = 64 }},
		{"staging without lookahead", func(c *Config) { c.StagingBytes = 1 << 20 }},
		{"ledger without lookahead", func(c *Config) { c.StagingLedger = ledger }},
	}
	for _, tc := range cases {
		cfg := h.config()
		tc.mut(&cfg)
		if _, err := New(cfg); !errors.Is(err, ErrPrefetchConfig) {
			t.Errorf("%s: err = %v, want ErrPrefetchConfig", tc.name, err)
		}
	}

	// Legacy semantics preserved: window 0 still means 2×Workers reactive.
	cfg := h.config()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.cfg.PrefetchWindow != 2*cfg.Workers {
		t.Fatalf("reactive default window %d, want %d", tr.cfg.PrefetchWindow, 2*cfg.Workers)
	}
	// And lookahead mode leaves the window alone (no silent 2×Workers).
	cfg2 := h.config()
	cfg2.Lookahead = 4
	tr2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.cfg.PrefetchWindow != 0 {
		t.Fatalf("lookahead mode defaulted the reactive window to %d", tr2.cfg.PrefetchWindow)
	}
	if tr2.cfg.StagingBytes != DefaultStagingBytes {
		t.Fatalf("staging default %d, want %d", tr2.cfg.StagingBytes, DefaultStagingBytes)
	}
}

// TestLookaheadEpochSingleServer: lookahead over a plain (non-sharded)
// client falls back to single-link scheduling and still trains the full
// epoch, byte-for-byte equal to the reactive run.
func TestLookaheadEpochSingleServer(t *testing.T) {
	h := newHarness(t, 32, 4)

	rcfg := h.config()
	rcfg.FetchBatchSize = 4
	reactive, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reactive.Close()
	r1, err := reactive.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := h.config()
	cfg.Lookahead = 3
	cfg.FetchBatchSize = 4
	la, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	r2, err := la.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Samples != r1.Samples || r2.BytesFetched != r1.BytesFetched {
		t.Fatalf("lookahead epoch (samples %d, bytes %d) != reactive (samples %d, bytes %d)",
			r2.Samples, r2.BytesFetched, r1.Samples, r1.BytesFetched)
	}
	snap := la.PrefetchMetrics().Snapshot()
	if snap.Completed != int64(r2.Samples) || snap.Raw != int64(r2.Samples) {
		t.Fatalf("prefetch counters %+v for %d raw samples", snap, r2.Samples)
	}
}

func lookaheadCluster(t testing.TB, n, shards int, plan *chaos.Plan) (*cluster.Cluster, Config) {
	t.Helper()
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "lookahead", N: n, Seed: 13, MinDim: 48, MaxDim: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	pipe := pipeline.Standard(pipeline.StandardOptions{CropSize: 32, FlipP: -1})
	c, err := cluster.Launch(cluster.Config{
		Shards:        shards,
		Store:         store,
		Pipeline:      pipe,
		CoresPerShard: 2,
		Chaos:         plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cfg := Config{
		DialClient: func() (StorageClient, error) {
			return c.NewShardedClientWithPolicy(storage.ClientOptions{JobID: 7},
				storage.RetryPolicy{Attempts: 2, BaseBackoff: -1, Jitter: -1}, true)
		},
		Workers:        3,
		Pipeline:       pipe,
		GPU:            gpu.AlexNet,
		BatchSize:      8,
		JobID:          7,
		Shuffle:        true,
		FetchBatchSize: 4,
		DegradedMode:   true,
	}
	return c, cfg
}

// TestLookaheadShardedMatchesReactive drives both fetch modes over the same
// 3-shard tier with an offloading plan: per-shard issue queues must deliver
// exactly the reactive pipeline's training outcome (same samples, offload
// count, and wire bytes — artifact sizes are deterministic).
func TestLookaheadShardedMatchesReactive(t *testing.T) {
	const n = 48
	_, cfg := lookaheadCluster(t, n, 3, nil)
	plan, err := policy.NewUniformPlan("half", n, 2)
	if err != nil {
		t.Fatal(err)
	}

	reactive, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reactive.Close()
	r1, err := reactive.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfgLA := cfg
	cfgLA.Lookahead = 4
	la, err := New(cfgLA)
	if err != nil {
		t.Fatal(err)
	}
	defer la.Close()
	r2, err := la.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Samples != n || r2.Samples != n {
		t.Fatalf("samples %d/%d, want %d", r1.Samples, r2.Samples, n)
	}
	if r2.Offloaded != r1.Offloaded {
		t.Fatalf("lookahead offloaded %d != reactive %d", r2.Offloaded, r1.Offloaded)
	}
	// Same artifacts, but per-shard sub-batches amortize response-frame
	// overhead over full batches where the reactive fan-out splits each
	// global chunk into shard fragments — lookahead must never ship MORE
	// bytes, and the payload difference stays within the per-trip overhead.
	if r2.BytesFetched > r1.BytesFetched {
		t.Fatalf("lookahead shipped %d bytes > reactive %d", r2.BytesFetched, r1.BytesFetched)
	}
	if r1.BytesFetched-r2.BytesFetched > int64(n)*64 {
		t.Fatalf("byte gap %d too large for overhead alone", r1.BytesFetched-r2.BytesFetched)
	}
	snap := la.PrefetchMetrics().Snapshot()
	if snap.Offloaded != int64(n) {
		t.Fatalf("prefetch tier accounting %+v, want %d offloaded", snap, n)
	}
}

// TestLookaheadDegradedPartition: with one shard partitioned for the whole
// epoch and a deep lookahead in flight, exactly the dead shard's samples
// fail (EpochReport.Failed) and every healthy sample still trains.
func TestLookaheadDegradedPartition(t *testing.T) {
	const n = 60
	c, cfg := lookaheadCluster(t, n, 3, &chaos.Plan{Seed: 2})
	cfg.Lookahead = 6
	cfg.LookaheadHorizon = n // deep: the whole epoch is eligible
	owned := len(c.ShardMap().Owned(n, 1))
	if owned == 0 {
		t.Fatal("shard 1 owns nothing; test is vacuous")
	}
	tr, err := New(cfg) // dial while healthy, then sever
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := c.PartitionShard(1, true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != owned {
		t.Fatalf("Failed = %d, want exactly the dead shard's %d samples", r.Failed, owned)
	}
	if r.Samples != n-owned {
		t.Fatalf("Samples = %d, want %d healthy", r.Samples, n-owned)
	}
	snap := tr.PrefetchMetrics().Snapshot()
	if snap.Failed != int64(owned) {
		t.Fatalf("prefetch failed counter %d, want %d", snap.Failed, owned)
	}
	// Fail-fast: the epoch must not serialize a retry storm per dead sample.
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("degraded epoch took %v — fail-fast is not engaging", d)
	}
}

// TestLookaheadReplanRotatesCuts: ApplySnapshot mid-training rotates the cut
// source without restarting — the next lookahead epoch fetches under the new
// snapshot's splits, and the rotation is counted.
func TestLookaheadReplanRotatesCuts(t *testing.T) {
	const n = 24
	_, cfg := lookaheadCluster(t, n, 2, nil)
	cfg.Lookahead = 3
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	noOff, err := policy.NewUniformPlan("v1", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	off, err := policy.NewUniformPlan("v2", n, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := tr.RunEpochSnapshot(1, &policy.PlanSnapshot{Version: 1, Plan: noOff, Epoch: 1, Reason: "initial"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Offloaded != 0 {
		t.Fatalf("epoch 1 offloaded %d under the no-offload plan", r1.Offloaded)
	}
	// The control plane replans: the trainer learns via ApplySnapshot (the
	// OnReplan hook path), not by restarting.
	tr.ApplySnapshot(&policy.PlanSnapshot{Version: 2, Plan: off, Epoch: 2, Reason: "bandwidth-drift"})
	r2, err := tr.RunEpochSnapshot(2, &policy.PlanSnapshot{Version: 2, Plan: off, Epoch: 2, Reason: "bandwidth-drift"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Offloaded != n {
		t.Fatalf("epoch 2 offloaded %d, want %d under the rotated plan", r2.Offloaded, n)
	}
	if got := tr.PrefetchMetrics().Snapshot().Replans; got != 1 {
		t.Fatalf("replans counter %d, want 1", got)
	}
	var _ prefetch.Ledger = (*cache.Staging)(nil) // compile-time: ledger contract
}
