package trainsim

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/storage"
)

// TestValidationPipelineEndToEnd runs a server and trainer on the
// deterministic eval pipeline with offloading: split execution works for
// non-training pipelines too, and outputs are seed-independent.
func TestValidationPipelineEndToEnd(t *testing.T) {
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "val", N: 10, Seed: 55, MinDim: 96, MaxDim: 220,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.Validation(96, 80)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := storage.NewServer(storage.ServerConfig{Store: store, Pipeline: p, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	tr, err := New(Config{
		DialClient: func() (StorageClient, error) {
			conn, err := l.Dial()
			if err != nil {
				return nil, err
			}
			return storage.NewClient(conn, 1)
		},
		Workers:   2,
		Pipeline:  p,
		GPU:       gpu.AlexNet,
		BatchSize: 5,
		JobID:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Offload the deterministic prefix (Decode + ResizeShorter +
	// CenterCrop) for every sample.
	plan, err := policy.NewUniformPlan("val-off", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 10 || rep.Offloaded != 10 {
		t.Fatalf("validation epoch: %+v", rep)
	}

	// Server-side prefix for a validation pipeline is epoch-independent:
	// the same sample fetched in different epochs is byte-identical.
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := storage.NewClient(conn, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, err := c.Fetch(context.Background(), 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Fetch(context.Background(), 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Artifact.Equal(b.Artifact) {
		t.Fatal("validation prefix depends on the epoch")
	}
}
