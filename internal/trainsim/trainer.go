// Package trainsim is the live training loop: loader workers fetch samples
// from the storage server over the wire protocol (each carrying the offload
// split the plan assigned), finish the remaining preprocessing locally under
// a compute-core budget, assemble batches, and occupy a simulated GPU for
// each batch. It also hosts the profiler's stage-1 probes and stage-2
// on-the-fly collection, mirroring Figure 2's flow end to end.
package trainsim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/wire"
)

// StorageClient is the compute node's view of the storage service. It is
// satisfied by *storage.Client, *storage.ReconnectingClient (transparent
// retry), and *cache.FetchingCache (local raw-object cache), so resilience
// and caching compose with the trainer without changes here.
type StorageClient interface {
	Fetch(sample uint32, split int, epoch uint64) (storage.FetchResult, error)
	FetchBatch(samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error)
	NumSamples() int
	Close() error
}

// Config describes a training client.
type Config struct {
	// DialClient opens one storage connection; the trainer calls it once
	// per worker.
	DialClient func() (StorageClient, error)
	// Workers is the loader parallelism; 0 means 4.
	Workers int
	// ComputeCores bounds concurrent local preprocessing; 0 means Workers.
	ComputeCores int
	// Pipeline is the preprocessing pipeline (must match the server's).
	Pipeline *pipeline.Pipeline
	// GPU is the simulated accelerator profile.
	GPU gpu.Model
	// BatchSize is the per-step batch; 0 means 32.
	BatchSize int
	// JobID seeds augmentation randomness; must match the value used when
	// dialing clients.
	JobID uint64
	// Clock drives GPU busy-time simulation and timing; nil means real.
	Clock simclock.Clock
	// Shuffle controls whether sample order is permuted each epoch.
	Shuffle bool
	// FetchBatchSize groups this many samples per storage round trip
	// (capped at wire.MaxBatchItems); 0 or 1 means per-sample fetches.
	FetchBatchSize int
	// Metrics, when non-nil, receives per-sample instrumentation:
	// counters trainer.samples / trainer.bytes_fetched / trainer.epochs,
	// histograms trainer.fetch_seconds / trainer.preprocess_seconds.
	Metrics *metrics.Registry
}

// Trainer runs training epochs against a storage server.
type Trainer struct {
	cfg     Config
	clients []StorageClient
	n       int
	closed  bool
	mu      sync.Mutex
}

// EpochReport summarizes one epoch.
type EpochReport struct {
	Epoch          uint64
	Samples        int
	Batches        int
	Duration       time.Duration
	BytesFetched   int64
	GPUBusy        time.Duration
	GPUUtilization float64
	Offloaded      int
	LocalCPU       time.Duration // summed local preprocessing time
}

// New validates the config and dials one client per worker.
func New(cfg Config) (*Trainer, error) {
	if cfg.DialClient == nil {
		return nil, errors.New("trainsim: DialClient is required")
	}
	if cfg.Pipeline == nil {
		return nil, errors.New("trainsim: Pipeline is required")
	}
	if !cfg.GPU.Valid() {
		return nil, errors.New("trainsim: GPU model must have positive throughput")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("trainsim: workers %d", cfg.Workers)
	}
	if cfg.ComputeCores == 0 {
		cfg.ComputeCores = cfg.Workers
	}
	if cfg.ComputeCores < 1 {
		return nil, fmt.Errorf("trainsim: compute cores %d", cfg.ComputeCores)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("trainsim: batch size %d", cfg.BatchSize)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real()
	}
	if cfg.FetchBatchSize < 0 {
		return nil, fmt.Errorf("trainsim: fetch batch size %d", cfg.FetchBatchSize)
	}
	if cfg.FetchBatchSize > wire.MaxBatchItems {
		cfg.FetchBatchSize = wire.MaxBatchItems
	}
	t := &Trainer{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c, err := cfg.DialClient()
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("trainsim: dial worker %d: %w", i, err)
		}
		t.clients = append(t.clients, c)
	}
	t.n = t.clients[0].NumSamples()
	if t.n == 0 {
		t.Close()
		return nil, errors.New("trainsim: server reports empty dataset")
	}
	return t, nil
}

// N returns the dataset size reported by the server.
func (t *Trainer) N() int { return t.n }

// Close releases every client connection.
func (t *Trainer) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, c := range t.clients {
		c.Close()
	}
}

// order returns the epoch's sample visit order.
func (t *Trainer) order(epoch uint64) []int {
	idx := make([]int, t.n)
	for i := range idx {
		idx[i] = i
	}
	if t.cfg.Shuffle {
		rng := rand.New(rand.NewPCG(t.cfg.JobID^0xabcdef, epoch))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	return idx
}

type sampleOutcome struct {
	wireBytes int
	localCPU  time.Duration
	offloaded bool
	err       error
}

// RunEpoch trains one epoch under the plan. A nil plan means no offloading.
// When collector is non-nil the epoch runs in profiling mode: every sample
// is fetched raw and preprocessed locally with per-op measurement — the
// paper's stage-2 "first epoch without offloading".
func (t *Trainer) RunEpoch(epoch uint64, plan *policy.Plan, collector *profiler.Collector) (EpochReport, error) {
	if plan != nil && plan.N() != t.n {
		return EpochReport{}, fmt.Errorf("trainsim: plan covers %d samples, dataset has %d", plan.N(), t.n)
	}
	clock := t.cfg.Clock
	start := clock.Now()

	chunkSize := 1
	if t.cfg.FetchBatchSize > 1 {
		chunkSize = t.cfg.FetchBatchSize
	}
	order := t.order(epoch)
	chunks := make(chan []int, len(order)/chunkSize+1)
	for start := 0; start < len(order); start += chunkSize {
		end := start + chunkSize
		if end > len(order) {
			end = len(order)
		}
		chunks <- order[start:end]
	}
	close(chunks)

	results := make(chan sampleOutcome, t.cfg.BatchSize*2)
	computeSem := make(chan struct{}, t.cfg.ComputeCores)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var aborted atomic.Bool
	stop := func() {
		abortOnce.Do(func() {
			aborted.Store(true)
			close(abort)
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < t.cfg.Workers; w++ {
		wg.Add(1)
		go func(client StorageClient) {
			defer wg.Done()
			for {
				select {
				case <-abort:
					return
				case chunk, ok := <-chunks:
					if !ok {
						return
					}
					for _, out := range t.processChunk(client, epoch, chunk, plan, collector, computeSem) {
						select {
						case results <- out:
						case <-abort:
							return
						}
						if out.err != nil {
							stop()
							return
						}
					}
				}
			}
		}(t.clients[w])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	report := EpochReport{Epoch: epoch}
	inBatch := 0
	var firstErr error
	for out := range results {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		report.Samples++
		report.BytesFetched += int64(out.wireBytes)
		report.LocalCPU += out.localCPU
		if out.offloaded {
			report.Offloaded++
		}
		inBatch++
		if inBatch == t.cfg.BatchSize {
			t.gpuStep(&report, inBatch)
			inBatch = 0
		}
	}
	if firstErr != nil {
		return EpochReport{}, firstErr
	}
	if inBatch > 0 {
		t.gpuStep(&report, inBatch)
	}
	report.Duration = clock.Now().Sub(start)
	if report.Duration > 0 {
		report.GPUUtilization = gpu.Utilization(report.GPUBusy, report.Duration)
	}
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Counter("trainer.epochs").Inc()
	}
	return report, nil
}

func (t *Trainer) gpuStep(report *EpochReport, size int) {
	d := t.cfg.GPU.BatchTime(size)
	t.cfg.Clock.Sleep(d)
	report.GPUBusy += d
	report.Batches++
}

// splitFor returns the server-side prefix length for sample i this epoch.
func (t *Trainer) splitFor(i int, plan *policy.Plan, collector *profiler.Collector) int {
	if collector != nil || plan == nil {
		return 0
	}
	return plan.Split(i)
}

// processChunk fetches a chunk (one round trip when batching is enabled)
// and finishes each sample locally. On a fetch error it returns a single
// failed outcome.
func (t *Trainer) processChunk(client StorageClient, epoch uint64, chunk []int, plan *policy.Plan, collector *profiler.Collector, computeSem chan struct{}) []sampleOutcome {
	if len(chunk) == 1 {
		i := chunk[0]
		split := t.splitFor(i, plan, collector)
		fetchStart := time.Now()
		res, err := client.Fetch(uint32(i), split, epoch)
		if err != nil {
			return []sampleOutcome{{err: fmt.Errorf("trainsim: fetch sample %d: %w", i, err)}}
		}
		t.observeFetch(time.Since(fetchStart), 1, res.WireBytes)
		return []sampleOutcome{t.finishSample(res, epoch, i, split, collector, computeSem)}
	}
	samples := make([]uint32, len(chunk))
	splits := make([]int, len(chunk))
	for k, i := range chunk {
		samples[k] = uint32(i)
		splits[k] = t.splitFor(i, plan, collector)
	}
	fetchStart := time.Now()
	fetched, err := client.FetchBatch(samples, splits, epoch)
	if err != nil {
		return []sampleOutcome{{err: fmt.Errorf("trainsim: batch fetch: %w", err)}}
	}
	var batchBytes int
	for _, res := range fetched {
		batchBytes += res.WireBytes
	}
	t.observeFetch(time.Since(fetchStart), len(fetched), batchBytes)
	outs := make([]sampleOutcome, len(chunk))
	for k, i := range chunk {
		outs[k] = t.finishSample(fetched[k], epoch, i, splits[k], collector, computeSem)
		if outs[k].err != nil {
			return outs[:k+1]
		}
	}
	return outs
}

// observeFetch records fetch instrumentation when a registry is attached.
func (t *Trainer) observeFetch(d time.Duration, samples, bytes int) {
	m := t.cfg.Metrics
	if m == nil {
		return
	}
	m.Histogram("trainer.fetch_seconds").Observe(d.Seconds())
	m.Counter("trainer.samples").Add(int64(samples))
	m.Counter("trainer.bytes_fetched").Add(int64(bytes))
}

// finishSample runs the local part of one sample's preprocessing (or the
// profiling trace) under the compute-core budget.
func (t *Trainer) finishSample(res storage.FetchResult, epoch uint64, i, split int, collector *profiler.Collector, computeSem chan struct{}) sampleOutcome {
	seed := pipeline.Seed{Job: t.cfg.JobID, Epoch: epoch, Sample: uint64(i)}

	computeSem <- struct{}{}
	defer func() { <-computeSem }()

	cpuStart := time.Now()
	var out pipeline.Artifact
	if collector != nil {
		if res.Artifact.Kind != pipeline.KindRaw {
			return sampleOutcome{err: fmt.Errorf("trainsim: profiling fetch of sample %d returned %s", i, res.Artifact.Kind)}
		}
		full, st, err := t.cfg.Pipeline.Trace(res.Artifact.Raw, seed)
		if err != nil {
			return sampleOutcome{err: fmt.Errorf("trainsim: profile sample %d: %w", i, err)}
		}
		// Decode dims come from the stage-1 artifact's size law; measure
		// them by decoding once more is wasteful, so re-derive from the
		// trace: stage 1 wire size = 9 + 3·W·H is not invertible to W×H,
		// so decode the header instead.
		w, h, err := decodedDims(res.Artifact.Raw)
		if err != nil {
			return sampleOutcome{err: err}
		}
		if err := collector.Observe(uint32(i), st, w, h); err != nil {
			return sampleOutcome{err: err}
		}
		out = full
	} else {
		finished, err := t.cfg.Pipeline.RunRange(res.Artifact, split, t.cfg.Pipeline.Len(), seed)
		if err != nil {
			return sampleOutcome{err: fmt.Errorf("trainsim: preprocess sample %d (split %d): %w", i, split, err)}
		}
		out = finished
	}
	if out.Kind != pipeline.KindTensor {
		return sampleOutcome{err: fmt.Errorf("trainsim: sample %d produced %s, want tensor", i, out.Kind)}
	}
	localCPU := time.Since(cpuStart)
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Histogram("trainer.preprocess_seconds").Observe(localCPU.Seconds())
	}
	return sampleOutcome{
		wireBytes: res.WireBytes,
		localCPU:  localCPU,
		offloaded: split > 0,
	}
}
