// Package trainsim is the live training loop: loader workers fetch samples
// from the storage server over the wire protocol (each carrying the offload
// split the plan assigned), finish the remaining preprocessing locally under
// a compute-core budget, assemble batches, and occupy a simulated GPU for
// each batch. It also hosts the profiler's stage-1 probes and stage-2
// on-the-fly collection, mirroring Figure 2's flow end to end.
package trainsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/prefetch"
	"repro/internal/prepsched"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/wire"
)

// StorageClient is the compute node's view of the storage service. It is
// satisfied by *storage.Client, *storage.ReconnectingClient (transparent
// retry), and *cache.FetchingCache (local raw-object cache), so resilience
// and caching compose with the trainer without changes here. Implementations
// must be safe for concurrent use: the trainer pipelines many in-flight
// requests over one shared session.
type StorageClient interface {
	Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error)
	FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error)
	NumSamples() int
	Close() error
}

// Config describes a training client.
type Config struct {
	// DialClient opens the storage session; the trainer calls it exactly
	// once and pipelines all requests over the shared session.
	DialClient func() (StorageClient, error)
	// Workers is the local preprocessing parallelism; 0 means 4.
	Workers int
	// PrefetchWindow bounds concurrently in-flight fetch requests on the
	// session in the legacy reactive mode (Lookahead == 0); 0 keeps meaning
	// 2×Workers there. It is a reactive-mode knob only: setting it together
	// with Lookahead is rejected with ErrPrefetchConfig, because the
	// clairvoyant scheduler replaces the globally-ordered window with
	// per-shard depth targets and a window bound would silently mean
	// nothing.
	PrefetchWindow int
	// Lookahead switches the fetch stage to the clairvoyant scheduler
	// (internal/prefetch): the epoch's exact access stream is derived from
	// the seeded shuffle, partitioned per shard, and fetched ahead of
	// consumption with this many concurrent round trips per shard. 0 keeps
	// the legacy reactive window.
	Lookahead int
	// LookaheadHorizon bounds how many stream positions ahead of
	// consumption the scheduler may issue (the reorder-buffer depth);
	// 0 means 8 × Lookahead × fetch-batch × shards. Lookahead-mode only.
	LookaheadHorizon int
	// StagingBytes budgets the artifacts fetched but not yet consumed;
	// 0 means DefaultStagingBytes, negative means unbounded.
	// Lookahead-mode only.
	StagingBytes int64
	// StagingLedger, when non-nil, additionally charges staged bytes to an
	// external accountant (cache.Staging) — share one across trainers to
	// bound their combined staging footprint. Lookahead-mode only.
	StagingLedger prefetch.Ledger
	// PrefetchMetrics receives the scheduler's instrumentation (the
	// monitor's sophon_prefetch_* block); nil means a private Metrics,
	// still readable via Trainer.PrefetchMetrics.
	PrefetchMetrics *prefetch.Metrics
	// VarianceAware switches local preprocessing from FIFO worker handoff to
	// the variance-aware scheduler (internal/prepsched): delivered stream
	// entries are classified heavy/light by Classify and spread over
	// per-worker work-stealing deques, so light samples flow around heavy
	// ones instead of queueing behind them. Output artifacts stay
	// bit-identical to FIFO scheduling — preprocessing is deterministic in
	// (job, epoch, sample) per cut, so only completion timing changes.
	// Requires Lookahead > 0 and a Classify function.
	VarianceAware bool
	// Classify maps a sample index to its preprocessing class, typically a
	// prepsched.Classifier closure over the stage-2 cost trace.
	// VarianceAware-mode only.
	Classify func(sample int) prepsched.Class
	// PrepMetrics receives the variance-aware scheduler's instrumentation
	// (the monitor's sophon_prepsched_* block); nil means a private Metrics,
	// still readable via Trainer.PrepMetrics. VarianceAware-mode only.
	PrepMetrics *prepsched.Metrics
	// ComputeCores bounds concurrent local preprocessing; 0 means Workers.
	ComputeCores int
	// Pipeline is the preprocessing pipeline (must match the server's).
	Pipeline *pipeline.Pipeline
	// GPU is the simulated accelerator profile.
	GPU gpu.Model
	// BatchSize is the per-step batch; 0 means 32.
	BatchSize int
	// JobID seeds augmentation randomness; must match the value used when
	// dialing clients.
	JobID uint64
	// Clock drives GPU busy-time simulation and timing; nil means real.
	Clock simclock.Clock
	// Shuffle controls whether sample order is permuted each epoch.
	Shuffle bool
	// FetchBatchSize groups this many samples per storage round trip
	// (capped at wire.MaxBatchItems); 0 or 1 means per-sample fetches.
	FetchBatchSize int
	// Metrics, when non-nil, receives per-sample instrumentation:
	// counters trainer.samples / trainer.bytes_fetched / trainer.epochs /
	// trainer.samples_failed, histograms trainer.fetch_seconds /
	// trainer.preprocess_seconds.
	Metrics *metrics.Registry
	// DegradedMode keeps an epoch alive through per-sample fetch failures
	// (e.g. a dead shard of a sharded storage tier): failed samples are
	// skipped and counted in EpochReport.Failed instead of aborting the
	// epoch. An epoch in which every sample fails still errors.
	DegradedMode bool
}

// DefaultStagingBytes is the lookahead staging budget when Config leaves
// StagingBytes zero.
const DefaultStagingBytes = 64 << 20

// ErrPrefetchConfig reports conflicting prefetch knobs: the legacy reactive
// window and the clairvoyant lookahead are mutually exclusive modes, and
// lookahead-only knobs require Lookahead > 0.
var ErrPrefetchConfig = errors.New("trainsim: conflicting prefetch config")

// ErrPrepschedConfig reports conflicting variance-aware scheduler knobs:
// VarianceAware requires the lookahead stream (the dispatcher classifies
// entries in stream order) and a Classify function, and the prepsched-only
// knobs require VarianceAware.
var ErrPrepschedConfig = errors.New("trainsim: conflicting prepsched config")

// Trainer runs training epochs against a storage server.
type Trainer struct {
	cfg    Config
	client StorageClient
	n      int
	closed bool
	mu     sync.Mutex
	// snap is the live plan snapshot lookahead epochs read splits from; it
	// can rotate mid-epoch via ApplySnapshot without restarting the stream.
	snap atomic.Pointer[policy.PlanSnapshot]
	pf   *prefetch.Metrics
	ps   *prepsched.Metrics
}

// EpochReport summarizes one epoch.
type EpochReport struct {
	Epoch          uint64
	Samples        int
	Batches        int
	Duration       time.Duration
	BytesFetched   int64
	GPUBusy        time.Duration
	GPUUtilization float64
	Offloaded      int
	LocalCPU       time.Duration // summed local preprocessing time
	// Failed counts samples skipped in DegradedMode (fetches that kept
	// failing after the retry layer gave up, e.g. on a dead shard).
	Failed int
	// Heavy counts successfully processed samples the variance-aware
	// scheduler classified heavy (0 outside VarianceAware mode). The count
	// is order-independent, so it is deterministic for a given seed.
	Heavy int
	// PlanVersion is the control-plane version the epoch ran under (0 when
	// the epoch was driven by RunEpoch with a bare plan).
	PlanVersion policy.PlanVersion
}

// New validates the config and dials one client per worker.
func New(cfg Config) (*Trainer, error) {
	if cfg.DialClient == nil {
		return nil, errors.New("trainsim: DialClient is required")
	}
	if cfg.Pipeline == nil {
		return nil, errors.New("trainsim: Pipeline is required")
	}
	if !cfg.GPU.Valid() {
		return nil, errors.New("trainsim: GPU model must have positive throughput")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("trainsim: workers %d", cfg.Workers)
	}
	if cfg.ComputeCores == 0 {
		cfg.ComputeCores = cfg.Workers
	}
	if cfg.ComputeCores < 1 {
		return nil, fmt.Errorf("trainsim: compute cores %d", cfg.ComputeCores)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("trainsim: batch size %d", cfg.BatchSize)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real()
	}
	if cfg.FetchBatchSize < 0 {
		return nil, fmt.Errorf("trainsim: fetch batch size %d", cfg.FetchBatchSize)
	}
	if cfg.FetchBatchSize > wire.MaxBatchItems {
		cfg.FetchBatchSize = wire.MaxBatchItems
	}
	if cfg.PrefetchWindow < 0 {
		return nil, fmt.Errorf("trainsim: prefetch window %d", cfg.PrefetchWindow)
	}
	if cfg.Lookahead < 0 {
		return nil, fmt.Errorf("trainsim: lookahead %d", cfg.Lookahead)
	}
	if cfg.Lookahead > 0 && cfg.PrefetchWindow > 0 {
		return nil, fmt.Errorf("%w: PrefetchWindow %d with Lookahead %d (the reactive window and the clairvoyant scheduler are exclusive modes)",
			ErrPrefetchConfig, cfg.PrefetchWindow, cfg.Lookahead)
	}
	if cfg.Lookahead == 0 {
		switch {
		case cfg.LookaheadHorizon != 0:
			return nil, fmt.Errorf("%w: LookaheadHorizon %d without Lookahead", ErrPrefetchConfig, cfg.LookaheadHorizon)
		case cfg.StagingBytes != 0:
			return nil, fmt.Errorf("%w: StagingBytes %d without Lookahead", ErrPrefetchConfig, cfg.StagingBytes)
		case cfg.StagingLedger != nil:
			return nil, fmt.Errorf("%w: StagingLedger without Lookahead", ErrPrefetchConfig)
		}
		// Legacy reactive default, unchanged: 0 means 2×Workers.
		if cfg.PrefetchWindow == 0 {
			cfg.PrefetchWindow = 2 * cfg.Workers
		}
	}
	if cfg.LookaheadHorizon < 0 {
		return nil, fmt.Errorf("trainsim: lookahead horizon %d", cfg.LookaheadHorizon)
	}
	if cfg.StagingBytes == 0 {
		cfg.StagingBytes = DefaultStagingBytes
	}
	if cfg.VarianceAware {
		if cfg.Lookahead == 0 {
			return nil, fmt.Errorf("%w: VarianceAware without Lookahead (the dispatcher classifies the clairvoyant stream)", ErrPrepschedConfig)
		}
		if cfg.Classify == nil {
			return nil, fmt.Errorf("%w: VarianceAware without a Classify function", ErrPrepschedConfig)
		}
	} else {
		switch {
		case cfg.Classify != nil:
			return nil, fmt.Errorf("%w: Classify without VarianceAware", ErrPrepschedConfig)
		case cfg.PrepMetrics != nil:
			return nil, fmt.Errorf("%w: PrepMetrics without VarianceAware", ErrPrepschedConfig)
		}
	}
	t := &Trainer{cfg: cfg, pf: cfg.PrefetchMetrics, ps: cfg.PrepMetrics}
	if t.pf == nil {
		t.pf = &prefetch.Metrics{}
	}
	if t.ps == nil {
		t.ps = &prepsched.Metrics{}
	}
	c, err := cfg.DialClient()
	if err != nil {
		return nil, fmt.Errorf("trainsim: dial: %w", err)
	}
	t.client = c
	t.n = c.NumSamples()
	if t.n == 0 {
		t.Close()
		return nil, errors.New("trainsim: server reports empty dataset")
	}
	return t, nil
}

// N returns the dataset size reported by the server.
func (t *Trainer) N() int { return t.n }

// Close releases the storage session.
func (t *Trainer) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	if t.client != nil {
		t.client.Close()
	}
}

// order returns the epoch's sample visit order — the one definition shared
// with the clairvoyant scheduler, so the prefetched stream and the consumed
// stream can never disagree.
func (t *Trainer) order(epoch uint64) []int {
	return prefetch.Order(t.cfg.JobID, epoch, t.n, t.cfg.Shuffle)
}

// PrefetchMetrics exposes the lookahead scheduler's counters (zero-valued
// while running reactive).
func (t *Trainer) PrefetchMetrics() *prefetch.Metrics { return t.pf }

// PrepMetrics exposes the variance-aware scheduler's counters (zero-valued
// outside VarianceAware mode).
func (t *Trainer) PrepMetrics() *prepsched.Metrics { return t.ps }

// ApplySnapshot rotates the live plan mid-epoch: a lookahead epoch's
// scheduler reads splits at issue time, so every stream entry not yet
// issued is fetched under the new snapshot's cut depths while entries
// already staged are kept — they were fetched at cuts that remain correct
// (preprocessing is deterministic in (job, epoch, sample) for whichever cut
// they carried), so nothing is flushed. The snapshot's version is stamped on
// the session for all subsequent wire fetches. Wire this to
// core.Controller.OnReplan for live replanning; it is a no-op for epochs
// run with a bare plan until the next RunEpochSnapshot.
func (t *Trainer) ApplySnapshot(snap *policy.PlanSnapshot) {
	if snap == nil || snap.Plan == nil || snap.Plan.N() != t.n {
		return
	}
	old := t.snap.Swap(snap)
	if pv, ok := t.client.(storage.PlanVersioner); ok {
		pv.SetPlanVersion(uint32(snap.Version))
	}
	if old != nil && old.Version != snap.Version {
		t.pf.NoteReplan()
	}
}

type sampleOutcome struct {
	wireBytes int
	localCPU  time.Duration
	offloaded bool
	heavy     bool // variance-aware class of the sample
	failed    bool // degraded-mode skip, not a fatal error
	err       error
}

// RunEpoch trains one epoch under the plan. A nil plan means no offloading.
// When collector is non-nil the epoch runs in profiling mode: every sample
// is fetched raw and preprocessed locally with per-op measurement — the
// paper's stage-2 "first epoch without offloading".
//
// The epoch runs as a two-stage pipeline over the shared storage session:
// PrefetchWindow fetcher goroutines keep up to that many requests in flight
// (the session demultiplexes responses), and Workers processor goroutines
// finish preprocessing locally under the compute-core budget. A failure
// cancels the epoch's context, which unblocks in-flight fetches promptly
// without poisoning the session.
func (t *Trainer) RunEpoch(epoch uint64, plan *policy.Plan, collector *profiler.Collector) (EpochReport, error) {
	t.snap.Store(nil) // a bare plan supersedes any earlier snapshot
	return t.runEpoch(epoch, plan, 0, collector)
}

// RunEpochSnapshot trains one epoch under a versioned plan snapshot from the
// control plane. The snapshot's version is stamped onto the storage session
// (when the client supports storage.PlanVersioner) so every fetch the epoch
// issues carries it on the wire, and recorded in the report. Swapping
// snapshots between epochs is always safe: preprocessing is deterministic in
// (job, epoch, sample), so requests stamped with different versions — e.g.
// in-flight fetches racing a swap — return identical artifacts for the same
// split.
func (t *Trainer) RunEpochSnapshot(epoch uint64, snap *policy.PlanSnapshot, collector *profiler.Collector) (EpochReport, error) {
	if snap == nil {
		return EpochReport{}, errors.New("trainsim: nil plan snapshot")
	}
	t.snap.Store(snap)
	if pv, ok := t.client.(storage.PlanVersioner); ok {
		pv.SetPlanVersion(uint32(snap.Version))
	}
	return t.runEpoch(epoch, snap.Plan, snap.Version, collector)
}

func (t *Trainer) runEpoch(epoch uint64, plan *policy.Plan, version policy.PlanVersion, collector *profiler.Collector) (EpochReport, error) {
	if plan != nil && plan.N() != t.n {
		return EpochReport{}, fmt.Errorf("trainsim: plan covers %d samples, dataset has %d", plan.N(), t.n)
	}
	clock := t.cfg.Clock
	start := clock.Now()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	order := t.order(epoch)
	results := make(chan sampleOutcome, t.cfg.BatchSize*2)
	computeSem := make(chan struct{}, t.cfg.ComputeCores)
	if t.cfg.Lookahead > 0 {
		stop, err := t.startLookahead(ctx, cancel, epoch, order, plan, collector, results, computeSem)
		if err != nil {
			return EpochReport{}, err
		}
		defer stop()
	} else {
		t.startReactive(ctx, cancel, epoch, order, plan, collector, results, computeSem)
	}

	report := EpochReport{Epoch: epoch, PlanVersion: version}
	inBatch := 0
	var firstErr error
	for out := range results {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		if out.failed {
			report.Failed++
			if t.cfg.Metrics != nil {
				t.cfg.Metrics.Counter("trainer.samples_failed").Inc()
			}
			continue
		}
		report.Samples++
		report.BytesFetched += int64(out.wireBytes)
		report.LocalCPU += out.localCPU
		if out.offloaded {
			report.Offloaded++
		}
		if out.heavy {
			report.Heavy++
		}
		inBatch++
		if inBatch == t.cfg.BatchSize {
			t.gpuStep(&report, inBatch)
			inBatch = 0
		}
	}
	if firstErr != nil {
		return EpochReport{}, firstErr
	}
	if report.Samples == 0 && report.Failed > 0 {
		return EpochReport{}, fmt.Errorf("trainsim: all %d samples failed in degraded mode", report.Failed)
	}
	if inBatch > 0 {
		t.gpuStep(&report, inBatch)
	}
	report.Duration = clock.Now().Sub(start)
	if report.Duration > 0 {
		report.GPUUtilization = gpu.Utilization(report.GPUBusy, report.Duration)
	}
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Counter("trainer.epochs").Inc()
	}
	return report, nil
}

// startReactive runs the legacy two-stage pipeline: PrefetchWindow fetcher
// goroutines pull globally-ordered chunks and Workers processors finish them
// locally. The goroutines close results when the epoch drains.
func (t *Trainer) startReactive(ctx context.Context, cancel context.CancelFunc, epoch uint64, order []int, plan *policy.Plan, collector *profiler.Collector, results chan<- sampleOutcome, computeSem chan struct{}) {
	chunkSize := 1
	if t.cfg.FetchBatchSize > 1 {
		chunkSize = t.cfg.FetchBatchSize
	}
	chunks := make(chan []int, len(order)/chunkSize+1)
	for start := 0; start < len(order); start += chunkSize {
		end := start + chunkSize
		if end > len(order) {
			end = len(order)
		}
		chunks <- order[start:end]
	}
	close(chunks)

	// Stage 1: fetchers keep the link full. Each goroutine holds at most
	// one chunk request in flight, so the window bounds session occupancy.
	fetched := make(chan fetchedChunk, t.cfg.PrefetchWindow)
	var fwg sync.WaitGroup
	for f := 0; f < t.cfg.PrefetchWindow; f++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for chunk := range chunks {
				if ctx.Err() != nil {
					return
				}
				fc := t.fetchChunk(ctx, epoch, chunk, plan, collector)
				select {
				case fetched <- fc:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		fwg.Wait()
		close(fetched)
	}()

	// Stage 2: processors finish samples locally. After a cancel they keep
	// draining `fetched` without working, so fetchers never block.
	var pwg sync.WaitGroup
	for w := 0; w < t.cfg.Workers; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for fc := range fetched {
				if ctx.Err() != nil {
					continue
				}
				for _, out := range t.processFetched(ctx, fc, epoch, collector, computeSem) {
					select {
					case results <- out:
					case <-ctx.Done():
					}
					if out.err != nil {
						cancel()
						break
					}
				}
			}
		}()
	}
	go func() {
		pwg.Wait()
		close(results)
	}()
}

// startLookahead runs the clairvoyant fetch stage: a prefetch.Scheduler
// materializes the epoch's exact stream, partitions it by the client's
// placement map (storage.ShardRouter — single-link fallback otherwise), and
// keeps Lookahead round trips in flight per shard. Workers consume in
// stream order via Next. The returned stop function aborts the scheduler
// and waits out its issue goroutines; it is safe to call after a normal
// drain.
func (t *Trainer) startLookahead(ctx context.Context, cancel context.CancelFunc, epoch uint64, order []int, plan *policy.Plan, collector *profiler.Collector, results chan<- sampleOutcome, computeSem chan struct{}) (func(), error) {
	shards := 1
	var shardOf func(uint32) int
	router, _ := t.client.(storage.ShardRouter)
	if router != nil {
		if s, f, ok := router.ShardInfo(); ok {
			shards, shardOf = s, f
		} else {
			router = nil
		}
	}
	batch := 1
	if t.cfg.FetchBatchSize > 1 {
		batch = t.cfg.FetchBatchSize
	}
	horizon := t.cfg.LookaheadHorizon
	if horizon == 0 {
		horizon = 8 * t.cfg.Lookahead * batch * shards
	}
	staging := t.cfg.StagingBytes
	if staging < 0 {
		staging = 0 // unbounded
	}
	split := func(sample int) int {
		if collector != nil {
			return 0
		}
		if s := t.snap.Load(); s != nil && s.Plan != nil && s.Plan.N() == t.n {
			return directiveFor(s.Plan, sample)
		}
		if plan == nil {
			return 0
		}
		return directiveFor(plan, sample)
	}
	fetch := func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error) {
		fetchStart := time.Now()
		var res []storage.FetchResult
		var err error
		switch {
		case router != nil:
			res, err = router.FetchShard(ctx, shard, samples, splits, epoch)
		case len(samples) == 1:
			var r storage.FetchResult
			r, err = t.client.Fetch(ctx, samples[0], splits[0], epoch)
			if err == nil {
				res = []storage.FetchResult{r}
			}
		default:
			res, err = t.client.FetchBatch(ctx, samples, splits, epoch)
		}
		if err != nil {
			return nil, err
		}
		var bytes int
		for _, r := range res {
			bytes += r.WireBytes
		}
		t.observeFetch(time.Since(fetchStart), len(res), bytes)
		return res, err
	}
	sched, err := prefetch.NewScheduler(prefetch.Config{
		Order:        order,
		Shards:       shards,
		ShardOf:      shardOf,
		Depth:        t.cfg.Lookahead,
		BatchSize:    batch,
		Horizon:      horizon,
		StagingBytes: staging,
		Ledger:       t.cfg.StagingLedger,
		Split:        split,
		Fetch:        fetch,
		FailFast:     t.cfg.DegradedMode,
		Down:         func(err error) bool { return errors.Is(err, cluster.ErrShardDown) },
		Metrics:      t.pf,
	})
	if err != nil {
		return nil, fmt.Errorf("trainsim: lookahead: %w", err)
	}

	if t.cfg.VarianceAware {
		return t.startVarianceAware(ctx, cancel, sched, epoch, collector, results, computeSem), nil
	}

	var pwg sync.WaitGroup
	for w := 0; w < t.cfg.Workers; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for {
				it, ok := sched.Next()
				if !ok || ctx.Err() != nil {
					return
				}
				out := t.processItem(it, epoch, collector, computeSem)
				select {
				case results <- out:
				case <-ctx.Done():
				}
				if out.err != nil {
					cancel()
					return
				}
			}
		}()
	}
	go func() {
		pwg.Wait()
		close(results)
	}()
	return func() {
		cancel()
		sched.Stop()
		sched.Wait()
	}, nil
}

// startVarianceAware runs the local stage as a variance-aware work-stealing
// pool instead of the FIFO Next loop: a single dispatcher consumes the
// clairvoyant stream in order, classifies each entry heavy/light, and spreads
// it over per-worker deques (sample seq to deque seq%W, the same static
// assignment FIFO would use); workers drain their own deque light-first and
// steal from neighbors when dry, so a heavy decode on one worker overlaps the
// staged samples behind it instead of stalling them. The pool's capacity
// bound keeps the dispatcher from outrunning the workers and defeating the
// prefetcher's staging discipline. Scheduling moves only completion timing:
// preprocessing stays deterministic per (job, epoch, sample), and the batch
// accounting in runEpoch is order-independent, so reports and artifact bytes
// are bit-identical to FIFO scheduling.
func (t *Trainer) startVarianceAware(ctx context.Context, cancel context.CancelFunc, sched *prefetch.Scheduler, epoch uint64, collector *profiler.Collector, results chan<- sampleOutcome, computeSem chan struct{}) func() {
	capacity := 2 * t.cfg.Workers
	if c := 2 * t.cfg.BatchSize; c > capacity {
		capacity = c
	}
	pool, perr := prepsched.NewPool[prefetch.Item](t.cfg.Workers, capacity, t.ps)
	if perr != nil {
		// Unreachable: Workers >= 1 and capacity >= 2*Workers by
		// construction. Fall back to a minimal pool to keep the epoch alive.
		pool, _ = prepsched.NewPool[prefetch.Item](1, 2, t.ps)
	}

	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		defer pool.Close()
		seq := 0
		for {
			it, ok := sched.Next()
			if !ok {
				return
			}
			if !pool.Dispatch(seq, it, t.cfg.Classify(it.Sample)) {
				return
			}
			seq++
		}
	}()

	var pwg sync.WaitGroup
	for w := 0; w < t.cfg.Workers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for {
				it, class, ok := pool.Take(w)
				if !ok || ctx.Err() != nil {
					return
				}
				out := t.processItem(it, epoch, collector, computeSem)
				out.heavy = class == prepsched.Heavy
				select {
				case results <- out:
				case <-ctx.Done():
				}
				if out.err != nil {
					cancel()
					return
				}
			}
		}(w)
	}
	go func() {
		pwg.Wait()
		close(results)
	}()
	return func() {
		cancel()
		pool.Stop()
		sched.Stop()
		sched.Wait()
		dwg.Wait()
	}
}

// processItem finishes one delivered stream entry locally, with the same
// degraded-mode semantics as the reactive path: a failed fetch skips just
// that sample when DegradedMode is on, and aborts the epoch otherwise.
func (t *Trainer) processItem(it prefetch.Item, epoch uint64, collector *profiler.Collector, computeSem chan struct{}) sampleOutcome {
	if it.Err != nil {
		if t.cfg.DegradedMode {
			return sampleOutcome{failed: true}
		}
		return sampleOutcome{err: fmt.Errorf("trainsim: fetch sample %d: %w", it.Sample, it.Err)}
	}
	return t.finishSample(it.Res, epoch, it.Sample, it.Split, collector, computeSem)
}

func (t *Trainer) gpuStep(report *EpochReport, size int) {
	d := t.cfg.GPU.BatchTime(size)
	t.cfg.Clock.Sleep(d)
	report.GPUBusy += d
	report.Batches++
}

// splitFor returns the fetch directive for sample i this epoch: the
// server-side prefix length, with the plan's fidelity drop packed alongside
// for raw samples (see storage.PackDirective).
func (t *Trainer) splitFor(i int, plan *policy.Plan, collector *profiler.Collector) int {
	if collector != nil || plan == nil {
		return 0
	}
	return directiveFor(plan, i)
}

// directiveFor packs one sample's plan decision into a fetch directive.
// Fidelity only exists on the raw object — offloaded cuts ship artifacts
// with no scan structure, so their directive is the bare split.
func directiveFor(plan *policy.Plan, i int) int {
	s := plan.Split(i)
	if s != 0 {
		return s
	}
	return storage.PackDirective(0, plan.FidelityOf(i))
}

// fetchedChunk carries one chunk's fetch results from the fetch stage to
// the preprocessing stage.
type fetchedChunk struct {
	chunk  []int
	splits []int
	items  []storage.FetchResult
	err    error // transport-level failure for the whole chunk
}

// fetchChunk issues one round trip for the chunk (a single Fetch, or a
// FetchBatch when batching is enabled) over the shared session.
func (t *Trainer) fetchChunk(ctx context.Context, epoch uint64, chunk []int, plan *policy.Plan, collector *profiler.Collector) fetchedChunk {
	fc := fetchedChunk{chunk: chunk, splits: make([]int, len(chunk))}
	for k, i := range chunk {
		fc.splits[k] = t.splitFor(i, plan, collector)
	}
	fetchStart := time.Now()
	if len(chunk) == 1 {
		res, err := t.client.Fetch(ctx, uint32(chunk[0]), fc.splits[0], epoch)
		if err != nil {
			fc.err = fmt.Errorf("trainsim: fetch sample %d: %w", chunk[0], err)
			return fc
		}
		t.observeFetch(time.Since(fetchStart), 1, res.WireBytes)
		fc.items = []storage.FetchResult{res}
		return fc
	}
	samples := make([]uint32, len(chunk))
	for k, i := range chunk {
		samples[k] = uint32(i)
	}
	items, err := t.client.FetchBatch(ctx, samples, fc.splits, epoch)
	if err != nil {
		fc.err = fmt.Errorf("trainsim: batch fetch: %w", err)
		return fc
	}
	var batchBytes int
	for _, res := range items {
		batchBytes += res.WireBytes
	}
	t.observeFetch(time.Since(fetchStart), len(items), batchBytes)
	fc.items = items
	return fc
}

// processFetched finishes each sample of a fetched chunk locally. A
// per-item fetch error (surfaced in FetchResult.Err after the retry layer
// gave up) fails that sample; processing stops at the first failure. In
// DegradedMode failures instead skip just the affected samples — a chunk
// whose whole round trip failed marks every one of its samples failed, and
// a per-item error marks only that sample — so a dead shard costs exactly
// its own samples, never the epoch.
func (t *Trainer) processFetched(ctx context.Context, fc fetchedChunk, epoch uint64, collector *profiler.Collector, computeSem chan struct{}) []sampleOutcome {
	if fc.err != nil {
		if t.cfg.DegradedMode {
			outs := make([]sampleOutcome, len(fc.chunk))
			for k := range outs {
				outs[k] = sampleOutcome{failed: true}
			}
			return outs
		}
		return []sampleOutcome{{err: fc.err}}
	}
	outs := make([]sampleOutcome, 0, len(fc.chunk))
	for k, i := range fc.chunk {
		if ctx.Err() != nil {
			return outs
		}
		res := fc.items[k]
		if res.Err != nil {
			if t.cfg.DegradedMode {
				outs = append(outs, sampleOutcome{failed: true})
				continue
			}
			return append(outs, sampleOutcome{err: fmt.Errorf("trainsim: fetch sample %d: %w", i, res.Err)})
		}
		out := t.finishSample(res, epoch, i, fc.splits[k], collector, computeSem)
		outs = append(outs, out)
		if out.err != nil {
			return outs
		}
	}
	return outs
}

// observeFetch records fetch instrumentation when a registry is attached.
func (t *Trainer) observeFetch(d time.Duration, samples, bytes int) {
	m := t.cfg.Metrics
	if m == nil {
		return
	}
	m.Histogram("trainer.fetch_seconds").Observe(d.Seconds())
	m.Counter("trainer.samples").Add(int64(samples))
	m.Counter("trainer.bytes_fetched").Add(int64(bytes))
}

// finishSample runs the local part of one sample's preprocessing (or the
// profiling trace) under the compute-core budget.
func (t *Trainer) finishSample(res storage.FetchResult, epoch uint64, i, split int, collector *profiler.Collector, computeSem chan struct{}) sampleOutcome {
	// The directive packs (cut, fidelity); only the cut matters locally —
	// a reduced-fidelity container decodes transparently from fewer scans.
	split, _ = storage.UnpackDirective(split)
	seed := pipeline.Seed{Job: t.cfg.JobID, Epoch: epoch, Sample: uint64(i)}

	computeSem <- struct{}{}
	defer func() { <-computeSem }()

	cpuStart := time.Now()
	var out pipeline.Artifact
	if collector != nil {
		if res.Artifact.Kind != pipeline.KindRaw {
			return sampleOutcome{err: fmt.Errorf("trainsim: profiling fetch of sample %d returned %s", i, res.Artifact.Kind)}
		}
		full, st, err := t.cfg.Pipeline.Trace(res.Artifact.Raw, seed)
		if err != nil {
			return sampleOutcome{err: fmt.Errorf("trainsim: profile sample %d: %w", i, err)}
		}
		// Decode dims come from the stage-1 artifact's size law; measure
		// them by decoding once more is wasteful, so re-derive from the
		// trace: stage 1 wire size = 9 + 3·W·H is not invertible to W×H,
		// so decode the header instead.
		w, h, err := decodedDims(res.Artifact.Raw)
		if err != nil {
			return sampleOutcome{err: err}
		}
		if err := collector.Observe(uint32(i), st, w, h); err != nil {
			return sampleOutcome{err: err}
		}
		out = full
	} else {
		finished, err := t.cfg.Pipeline.RunRange(res.Artifact, split, t.cfg.Pipeline.Len(), seed)
		if err != nil {
			return sampleOutcome{err: fmt.Errorf("trainsim: preprocess sample %d (split %d): %w", i, split, err)}
		}
		out = finished
	}
	if out.Kind != pipeline.KindTensor {
		return sampleOutcome{err: fmt.Errorf("trainsim: sample %d produced %s, want tensor", i, out.Kind)}
	}
	// The simulated training step consumes the tensor by time, not by value;
	// return its pooled buffer so steady-state training stops allocating.
	out.Release()
	localCPU := time.Since(cpuStart)
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Histogram("trainer.preprocess_seconds").Observe(localCPU.Seconds())
	}
	return sampleOutcome{
		wireBytes: res.WireBytes,
		localCPU:  localCPU,
		offloaded: split > 0,
	}
}
