package trainsim

import (
	"testing"

	"repro/internal/metrics"
)

func TestTrainerFillsMetricsRegistry(t *testing.T) {
	h := newHarness(t, 12, 1)
	reg := metrics.NewRegistry()
	cfg := h.config()
	cfg.Metrics = reg
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, err := tr.RunEpoch(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["trainer.samples"] != 12 {
		t.Fatalf("trainer.samples = %d", snap.Counters["trainer.samples"])
	}
	if snap.Counters["trainer.epochs"] != 1 {
		t.Fatalf("trainer.epochs = %d", snap.Counters["trainer.epochs"])
	}
	if snap.Counters["trainer.bytes_fetched"] == 0 {
		t.Fatal("no bytes recorded")
	}
	if snap.Histograms["trainer.fetch_seconds"].Count != 12 {
		t.Fatalf("fetch histogram count = %d", snap.Histograms["trainer.fetch_seconds"].Count)
	}
	if snap.Histograms["trainer.preprocess_seconds"].Count != 12 {
		t.Fatalf("preprocess histogram count = %d", snap.Histograms["trainer.preprocess_seconds"].Count)
	}
}

func TestTrainerMetricsWithBatchedFetch(t *testing.T) {
	h := newHarness(t, 12, 1)
	reg := metrics.NewRegistry()
	cfg := h.config()
	cfg.Metrics = reg
	cfg.FetchBatchSize = 4
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RunEpoch(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["trainer.samples"] != 12 {
		t.Fatalf("trainer.samples = %d", snap.Counters["trainer.samples"])
	}
	// 12 samples in batches of 4 → 3 fetch observations.
	if snap.Histograms["trainer.fetch_seconds"].Count != 3 {
		t.Fatalf("fetch histogram count = %d", snap.Histograms["trainer.fetch_seconds"].Count)
	}
}
