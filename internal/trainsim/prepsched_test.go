package trainsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/policy"
	"repro/internal/prepsched"
)

// TestPrepschedConfigValidation extends the typed-config table to the
// variance-aware knobs: every invalid pairing gets ErrPrepschedConfig, never
// a silent fallback.
func TestPrepschedConfigValidation(t *testing.T) {
	h := newHarness(t, 4, 1)
	classify := func(int) prepsched.Class { return prepsched.Light }
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"variance-aware without lookahead", func(c *Config) {
			c.VarianceAware = true
			c.Classify = classify
		}},
		{"variance-aware without classify", func(c *Config) {
			c.Lookahead = 4
			c.VarianceAware = true
		}},
		{"classify without variance-aware", func(c *Config) {
			c.Lookahead = 4
			c.Classify = classify
		}},
		{"prep metrics without variance-aware", func(c *Config) {
			c.Lookahead = 4
			c.PrepMetrics = &prepsched.Metrics{}
		}},
		{"classify alone reactive", func(c *Config) {
			c.Classify = classify
		}},
	}
	for _, tc := range cases {
		cfg := h.config()
		tc.mut(&cfg)
		if _, err := New(cfg); !errors.Is(err, ErrPrepschedConfig) {
			t.Errorf("%s: err = %v, want ErrPrepschedConfig", tc.name, err)
		}
	}

	// The valid combination constructs, and a private Metrics is wired when
	// none is supplied.
	cfg := h.config()
	cfg.Lookahead = 4
	cfg.VarianceAware = true
	cfg.Classify = classify
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.PrepMetrics() == nil {
		t.Fatal("no private prepsched metrics wired")
	}
}

// TestVarianceAwareMatchesFIFO is the bit-identity acceptance check: the
// same seeded sharded epoch run under plain lookahead (FIFO handoff) and
// under the variance-aware work-stealing pool must produce identical
// training outcomes — same samples, offload count, and wire bytes (artifact
// sizes are deterministic, so equal bytes means equal artifacts). Only
// completion timing may differ.
func TestVarianceAwareMatchesFIFO(t *testing.T) {
	const n = 48
	_, cfg := lookaheadCluster(t, n, 3, nil)
	cfg.Lookahead = 4
	plan, err := policy.NewUniformPlan("half", n, 2)
	if err != nil {
		t.Fatal(err)
	}

	fifo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fifo.Close()
	r1, err := fifo.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Classify by sample index parity: a deterministic, input-independent
	// stand-in for the profiled-cost classifier that still exercises both
	// lanes on every worker.
	cfgVA := cfg
	cfgVA.VarianceAware = true
	cfgVA.Classify = func(sample int) prepsched.Class {
		if sample%5 == 0 {
			return prepsched.Heavy
		}
		return prepsched.Light
	}
	va, err := New(cfgVA)
	if err != nil {
		t.Fatal(err)
	}
	defer va.Close()
	r2, err := va.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}

	if r2.Samples != r1.Samples || r2.BytesFetched != r1.BytesFetched || r2.Offloaded != r1.Offloaded {
		t.Fatalf("variance-aware epoch (samples %d, bytes %d, offloaded %d) != FIFO (samples %d, bytes %d, offloaded %d)",
			r2.Samples, r2.BytesFetched, r2.Offloaded, r1.Samples, r1.BytesFetched, r1.Offloaded)
	}
	wantHeavy := 0
	for i := 0; i < n; i++ {
		if i%5 == 0 {
			wantHeavy++
		}
	}
	if r2.Heavy != wantHeavy {
		t.Fatalf("Heavy = %d, want %d", r2.Heavy, wantHeavy)
	}
	if r1.Heavy != 0 {
		t.Fatalf("FIFO run reported Heavy = %d", r1.Heavy)
	}
	s := va.PrepMetrics().Snapshot()
	if s.Light+s.Heavy != int64(n) {
		t.Fatalf("prepsched dispatched %d+%d, want %d", s.Light, s.Heavy, n)
	}
	if s.Heavy != int64(wantHeavy) {
		t.Fatalf("prepsched heavy %d, want %d", s.Heavy, wantHeavy)
	}
	if s.OwnPops+s.Steals != int64(n) {
		t.Fatalf("prepsched takes %d+%d, want %d", s.OwnPops, s.Steals, n)
	}
}

// TestVarianceAwareDeterministicRepeat runs the variance-aware epoch twice at
// the same seed: reports must match field for field (Duration aside), the
// scheduling nondeterminism confined entirely to timing.
func TestVarianceAwareDeterministicRepeat(t *testing.T) {
	const n = 32
	_, cfg := lookaheadCluster(t, n, 2, nil)
	cfg.Lookahead = 3
	cfg.VarianceAware = true
	cfg.Classify = func(sample int) prepsched.Class {
		if sample%4 == 0 {
			return prepsched.Heavy
		}
		return prepsched.Light
	}
	run := func() EpochReport {
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		r, err := tr.RunEpoch(2, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	a.Duration, b.Duration = 0, 0
	a.GPUBusy, b.GPUBusy = 0, 0
	a.GPUUtilization, b.GPUUtilization = 0, 0
	a.LocalCPU, b.LocalCPU = 0, 0
	if a != b {
		t.Fatalf("variance-aware repeat diverged:\n  a = %+v\n  b = %+v", a, b)
	}
}

// TestVarianceAwareDegradedPartition: degraded-mode accounting survives the
// pool — with one shard partitioned for the whole epoch, exactly the dead
// shard's samples fail and every healthy sample still trains, whichever
// worker ends up taking each failed entry.
func TestVarianceAwareDegradedPartition(t *testing.T) {
	const n = 60
	c, cfg := lookaheadCluster(t, n, 3, &chaos.Plan{Seed: 2})
	cfg.Lookahead = 6
	cfg.LookaheadHorizon = n
	cfg.VarianceAware = true
	cfg.Classify = func(sample int) prepsched.Class {
		if sample%3 == 0 {
			return prepsched.Heavy
		}
		return prepsched.Light
	}
	owned := len(c.ShardMap().Owned(n, 1))
	if owned == 0 {
		t.Fatal("shard 1 owns nothing; test is vacuous")
	}
	tr, err := New(cfg) // dial while healthy, then sever
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := c.PartitionShard(1, true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != owned {
		t.Fatalf("Failed = %d, want exactly the dead shard's %d samples", r.Failed, owned)
	}
	if r.Samples != n-owned {
		t.Fatalf("Samples = %d, want %d healthy", r.Samples, n-owned)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("degraded epoch took %v — fail-fast is not engaging", d)
	}
}
