package trainsim

import (
	"context"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/storage"
)

// TestTwoJobsShareOneServer runs two trainers with different job IDs
// against the same storage server concurrently: both complete, and their
// augmentation streams are isolated.
func TestTwoJobsShareOneServer(t *testing.T) {
	h := newHarness(t, 16, 2)

	mkTrainer := func(jobID uint64) *Trainer {
		cfg := h.config()
		cfg.JobID = jobID
		cfg.DialClient = func() (StorageClient, error) {
			conn, err := h.listener.Dial()
			if err != nil {
				return nil, err
			}
			return storage.NewClient(conn, jobID)
		}
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		return tr
	}
	a := mkTrainer(100)
	b := mkTrainer(200)

	var wg sync.WaitGroup
	reports := make([]EpochReport, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); reports[0], errs[0] = a.RunEpoch(1, nil, nil) }()
	go func() { defer wg.Done(); reports[1], errs[1] = b.RunEpoch(1, nil, nil) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if reports[i].Samples != 16 {
			t.Fatalf("job %d trained %d samples", i, reports[i].Samples)
		}
	}
}

// TestJobIsolationOfAugmentations: the same sample, epoch, and split yield
// different augmented artifacts for different job IDs (the server derives
// seeds from the handshake's job ID).
func TestJobIsolationOfAugmentations(t *testing.T) {
	h := newHarness(t, 2, 2)
	fetch := func(jobID uint64) pipeline.Artifact {
		conn, err := h.listener.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c, err := storage.NewClient(conn, jobID)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := c.Fetch(context.Background(), 0, 2, 5) // offloaded RandomResizedCrop
		if err != nil {
			t.Fatal(err)
		}
		return res.Artifact
	}
	a := fetch(1)
	b := fetch(2)
	if a.Equal(b) {
		t.Fatal("different jobs received identical augmentations")
	}
	// Same job twice: identical (idempotent fetch).
	if !fetch(1).Equal(a) {
		t.Fatal("same job's refetch differs")
	}
}
