package trainsim

import (
	"testing"

	"repro/internal/imaging"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/storage"
)

// progressiveHarness is newHarness over a store of progressive containers,
// so reduced-fidelity plans exercise the server's prefix fast path live.
func progressiveHarness(t testing.TB, n, serverCores int) *harness {
	t.Helper()
	blobs := make([][]byte, n)
	for i := range blobs {
		im, err := imaging.Synthesize(imaging.SynthParams{
			W: 48 + 4*(i%8), H: 48 + 4*(i%5), Detail: 0.5, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		blobs[i], err = imaging.EncodeProgressive(im, 80, imaging.MaxScans)
		if err != nil {
			t.Fatal(err)
		}
	}
	store, err := storage.NewStore("live-prog", blobs)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.Standard(pipeline.StandardOptions{CropSize: 32, FlipP: -1})
	srv, err := storage.NewServer(storage.ServerConfig{Store: store, Pipeline: p, Cores: serverCores})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return &harness{listener: l, server: srv, pipe: p, n: n}
}

// A live epoch under a reduced-fidelity plan must train every sample while
// fetching strictly fewer bytes than the full-fidelity epoch, with every raw
// fetch answered from the server's prefix fast path.
func TestRunEpochFidelityPlanReducesTraffic(t *testing.T) {
	const n = 16
	h := progressiveHarness(t, n, 0)
	tr := newTrainer(t, h)

	baseline, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := policy.NewUniformPlan("prog", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan.Fidelity = make([]uint8, n)
	for i := range plan.Fidelity {
		plan.Fidelity[i] = 2
	}
	reduced, err := tr.RunEpoch(2, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Samples != n || baseline.Samples != n {
		t.Fatalf("samples: baseline %d, reduced %d", baseline.Samples, reduced.Samples)
	}
	if reduced.BytesFetched >= baseline.BytesFetched {
		t.Fatalf("reduced-fidelity epoch fetched %d bytes, full epoch %d", reduced.BytesFetched, baseline.BytesFetched)
	}
	if reduced.Offloaded != 0 {
		t.Fatalf("fidelity plan counted %d offloaded samples", reduced.Offloaded)
	}
	c := h.server.Counters()
	if got := c.PrefixServed.Load(); got != n {
		t.Fatalf("server prefix-served %d fetches, want %d", got, n)
	}
	if c.PrefixBytesSaved.Load() == 0 {
		t.Fatal("server saved no bytes")
	}
}

// The fidelity dimension must survive the batched fetch path too.
func TestRunEpochFidelityBatched(t *testing.T) {
	const n = 12
	h := progressiveHarness(t, n, 0)
	cfg := h.config()
	cfg.FetchBatchSize = 4
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)

	plan, err := policy.NewUniformPlan("prog", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan.Fidelity = make([]uint8, n)
	for i := range plan.Fidelity {
		plan.Fidelity[i] = 1
	}
	report, err := tr.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Samples != n {
		t.Fatalf("trained %d of %d", report.Samples, n)
	}
	if got := h.server.Counters().PrefixServed.Load(); got != n {
		t.Fatalf("prefix-served %d, want %d", got, n)
	}
	if report.GPUBusy == 0 || report.Batches == 0 {
		t.Fatalf("empty accounting: %+v", report)
	}
}
