package trainsim

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/profiler"
)

func TestBatchedFetchEpochMatchesPerSample(t *testing.T) {
	h := newHarness(t, 24, 2)

	perSample, err := New(h.config())
	if err != nil {
		t.Fatal(err)
	}
	defer perSample.Close()

	batchedCfg := h.config()
	batchedCfg.FetchBatchSize = 8
	batched, err := New(batchedCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	plan, err := policy.NewUniformPlan("resize", 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := perSample.RunEpoch(5, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.RunEpoch(5, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples != b.Samples || a.Offloaded != b.Offloaded || a.Batches != b.Batches {
		t.Fatalf("accounting differs: %+v vs %+v", a, b)
	}
	// Batched framing is strictly cheaper.
	if b.BytesFetched >= a.BytesFetched {
		t.Fatalf("batched traffic %d not below per-sample %d", b.BytesFetched, a.BytesFetched)
	}
}

func TestBatchedProfilingEpoch(t *testing.T) {
	h := newHarness(t, 12, 1)
	cfg := h.config()
	cfg.FetchBatchSize = 5 // does not divide 12: exercises the tail chunk
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	collector, err := profiler.NewCollector(12)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.RunEpoch(1, nil, collector)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 12 || !collector.Complete() {
		t.Fatalf("batched profiling epoch: %d samples, complete=%v", rep.Samples, collector.Complete())
	}
}

func TestBatchSizeValidation(t *testing.T) {
	h := newHarness(t, 4, 1)
	cfg := h.config()
	cfg.FetchBatchSize = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted negative fetch batch size")
	}
	// Oversized values are clamped, not rejected.
	cfg.FetchBatchSize = 10000
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RunEpoch(1, nil, nil); err != nil {
		t.Fatal(err)
	}
}
