package trainsim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/storage"
)

// harness bundles a running server and a trainer config against it.
type harness struct {
	listener *netsim.PipeListener
	server   *storage.Server
	pipe     *pipeline.Pipeline
	n        int
}

func newHarness(t testing.TB, n, serverCores int) *harness {
	t.Helper()
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "live", N: n, Seed: 77, MinDim: 48, MaxDim: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.Standard(pipeline.StandardOptions{CropSize: 64, FlipP: -1})
	srv, err := storage.NewServer(storage.ServerConfig{Store: store, Pipeline: p, Cores: serverCores})
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.NewPipeListener()
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return &harness{listener: l, server: srv, pipe: p, n: n}
}

func (h *harness) config() Config {
	return Config{
		DialClient: func() (StorageClient, error) {
			conn, err := h.listener.Dial()
			if err != nil {
				return nil, err
			}
			return storage.NewClient(conn, 7)
		},
		Workers:   3,
		Pipeline:  h.pipe,
		GPU:       gpu.AlexNet,
		BatchSize: 8,
		JobID:     7,
		Shuffle:   true,
	}
}

func newTrainer(t testing.TB, h *harness) *Trainer {
	t.Helper()
	tr, err := New(h.config())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func TestNewValidatesConfig(t *testing.T) {
	h := newHarness(t, 4, 1)
	good := h.config()

	bad := good
	bad.DialClient = nil
	if _, err := New(bad); err == nil {
		t.Fatal("accepted nil dialer")
	}
	bad = good
	bad.Pipeline = nil
	if _, err := New(bad); err == nil {
		t.Fatal("accepted nil pipeline")
	}
	bad = good
	bad.GPU = gpu.Model{}
	if _, err := New(bad); err == nil {
		t.Fatal("accepted invalid GPU")
	}
	bad = good
	bad.Workers = -1
	if _, err := New(bad); err == nil {
		t.Fatal("accepted negative workers")
	}
	bad = good
	bad.BatchSize = -2
	if _, err := New(bad); err == nil {
		t.Fatal("accepted negative batch")
	}
	bad = good
	bad.DialClient = func() (StorageClient, error) { return nil, errors.New("refused") }
	if _, err := New(bad); err == nil {
		t.Fatal("accepted failing dialer")
	}
}

func TestRunEpochNoOffload(t *testing.T) {
	h := newHarness(t, 20, 0)
	tr := newTrainer(t, h)
	if tr.N() != 20 {
		t.Fatalf("N = %d", tr.N())
	}
	report, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Samples != 20 {
		t.Fatalf("trained %d samples", report.Samples)
	}
	if report.Batches != 3 { // 20 samples at batch 8 → 8+8+4
		t.Fatalf("batches = %d", report.Batches)
	}
	if report.Offloaded != 0 {
		t.Fatalf("offloaded = %d with nil plan", report.Offloaded)
	}
	if report.BytesFetched == 0 || report.Duration == 0 || report.GPUBusy == 0 {
		t.Fatalf("empty accounting: %+v", report)
	}
	if report.GPUUtilization <= 0 || report.GPUUtilization > 1 {
		t.Fatalf("utilization %v", report.GPUUtilization)
	}
}

func TestRunEpochWithOffloadPlanReducesTraffic(t *testing.T) {
	h := newHarness(t, 24, 4)
	tr := newTrainer(t, h)

	baseline, err := tr.RunEpoch(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Offload Decode+Crop for every sample: 64² crops of ≥48² images are
	// smaller than most raws here only sometimes — use full plan anyway
	// and check traffic accounting changes accordingly.
	plan, err := policy.NewUniformPlan("resize", 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	offloaded, err := tr.RunEpoch(2, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if offloaded.Offloaded != 24 {
		t.Fatalf("offloaded %d of 24", offloaded.Offloaded)
	}
	if offloaded.Samples != 24 || baseline.Samples != 24 {
		t.Fatal("sample counts wrong")
	}
	if offloaded.BytesFetched == baseline.BytesFetched {
		t.Fatal("offloading did not change traffic")
	}
	stats := serverStats(t, h)
	if stats.OpsExecuted == 0 {
		t.Fatal("server executed no offloaded ops")
	}
}

func serverStats(t testing.TB, h *harness) (out struct {
	OpsExecuted uint64
}) {
	t.Helper()
	conn, err := h.listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := storage.NewClient(conn, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out.OpsExecuted = s.OpsExecuted
	return out
}

func TestRunEpochRejectsMismatchedPlan(t *testing.T) {
	h := newHarness(t, 6, 1)
	tr := newTrainer(t, h)
	plan, _ := policy.NewUniformPlan("short", 3, 0)
	if _, err := tr.RunEpoch(1, plan, nil); err == nil {
		t.Fatal("accepted mismatched plan")
	}
}

func TestRunEpochOffloadWithoutCoresFails(t *testing.T) {
	h := newHarness(t, 6, 0)
	tr := newTrainer(t, h)
	plan, _ := policy.NewUniformPlan("resize", 6, 2)
	if _, err := tr.RunEpoch(1, plan, nil); err == nil {
		t.Fatal("offload against 0-core server succeeded")
	}
}

func TestProfilingEpochFillsCollector(t *testing.T) {
	h := newHarness(t, 12, 2)
	tr := newTrainer(t, h)
	collector, err := profiler.NewCollector(12)
	if err != nil {
		t.Fatal(err)
	}
	report, err := tr.RunEpoch(1, nil, collector)
	if err != nil {
		t.Fatal(err)
	}
	if report.Samples != 12 {
		t.Fatalf("profiled %d samples", report.Samples)
	}
	if !collector.Complete() {
		observed, total := collector.Progress()
		t.Fatalf("collector %d/%d after profiling epoch", observed, total)
	}
	trace, err := collector.Trace("live")
	if err != nil {
		t.Fatal(err)
	}
	// The measured trace is wired straight into the decision engine.
	env := policy.Env{
		Bandwidth:       netsim.Mbps(2),
		ComputeCores:    4,
		StorageCores:    2,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	plan, err := policy.NewSophon().Plan(trace, env)
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := plan.Traffic(trace)
	if err != nil {
		t.Fatal(err)
	}
	if traffic > trace.TotalRawBytes() {
		t.Fatal("measured-trace plan increased traffic")
	}
}

func TestStage1ProbesLive(t *testing.T) {
	h := newHarness(t, 10, 1)
	tr := newTrainer(t, h)
	res, err := profiler.RunStage1(tr.Stage1Probes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUThroughput <= 0 || res.IOThroughput <= 0 || res.CPUThroughput <= 0 {
		t.Fatalf("probe throughputs: %+v", res)
	}
}

func TestStage1CPUProbeRequiresIOFirst(t *testing.T) {
	h := newHarness(t, 4, 1)
	tr := newTrainer(t, h)
	probes := tr.Stage1Probes()
	if _, _, err := probes.CPU(1); err == nil {
		t.Fatal("cpu probe ran without cached data")
	}
}

func TestEpochDeterministicSampleAccounting(t *testing.T) {
	h := newHarness(t, 16, 2)
	tr := newTrainer(t, h)
	a, err := tr.RunEpoch(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.RunEpoch(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same epoch, same plan → identical traffic (timings differ).
	if a.BytesFetched != b.BytesFetched || a.Samples != b.Samples || a.Batches != b.Batches {
		t.Fatalf("accounting diverged: %+v vs %+v", a, b)
	}
}

func TestTrainerCloseIdempotent(t *testing.T) {
	h := newHarness(t, 4, 1)
	tr := newTrainer(t, h)
	tr.Close()
	tr.Close()
}
