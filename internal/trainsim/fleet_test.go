package trainsim

// Two live trainers of one share group run over TenantFetchers stacked on a
// single SharedArtifactCache: the second tenant's epoch draws a visible
// fraction of its samples from the first tenant's fetches, at zero wire
// bytes for the overlap, with identical training results.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/gpu"
	"repro/internal/policy"
	"repro/internal/storage"
)

func TestFleetTenantsShareArtifacts(t *testing.T) {
	const shareKey = 91
	h := newHarness(t, 32, 2)
	shared, err := cache.NewShared(128 << 20)
	if err != nil {
		t.Fatal(err)
	}

	tenantConfig := func(name string) Config {
		return Config{
			DialClient: func() (StorageClient, error) {
				conn, err := h.listener.Dial()
				if err != nil {
					return nil, err
				}
				// Coordinated prep: every tenant of the group authenticates
				// as the shared dataset key so augmentation seeds match.
				c, err := storage.NewClient(conn, shareKey)
				if err != nil {
					return nil, err
				}
				return cache.NewTenantFetcher(c, shared, name, shareKey)
			},
			Workers:   2,
			Pipeline:  h.pipe,
			GPU:       gpu.AlexNet,
			BatchSize: 8,
			JobID:     shareKey,
		}
	}

	plan, err := policy.NewUniformPlan("half-off", h.n, 2)
	if err != nil {
		t.Fatal(err)
	}

	first, err := New(tenantConfig("tenant-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	repA, err := first.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Samples != h.n {
		t.Fatalf("tenant a trained %d of %d samples", repA.Samples, h.n)
	}

	second, err := New(tenantConfig("tenant-b"))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	repB, err := second.RunEpoch(1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Samples != h.n {
		t.Fatalf("tenant b trained %d of %d samples", repB.Samples, h.n)
	}

	// Tenant b's epoch covers the same (sample, cut, epoch) keys tenant a
	// already pulled — every fetch must have hit the shared cache.
	statsB := shared.TenantStats("tenant-b")
	if statsB.Hits == 0 {
		t.Fatal("overlapping tenant saw no shared-cache hits")
	}
	if statsB.Misses != 0 {
		t.Fatalf("tenant b missed %d times on a fully warmed cache", statsB.Misses)
	}
	if repB.BytesFetched != 0 {
		t.Fatalf("tenant b moved %d wire bytes for fully cached samples", repB.BytesFetched)
	}
	if repA.BytesFetched == 0 {
		t.Fatal("tenant a reported no wire traffic")
	}
	if snap := shared.Snapshot(); snap.HitRate() != 0.5 {
		t.Fatalf("fleet hit rate %.2f, want 0.5 (one warm epoch after one cold)", snap.HitRate())
	}
}
