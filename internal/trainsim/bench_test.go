package trainsim

import (
	"testing"

	"repro/internal/policy"
)

// BenchmarkLiveEpochNoOffload measures a full live epoch (fetch over the
// in-memory transport, real preprocessing, simulated GPU) per iteration.
func BenchmarkLiveEpochNoOffload(b *testing.B) {
	h := newHarness(b, 16, 0)
	tr, err := New(h.config())
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RunEpoch(uint64(i+1), nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveEpochOffloaded measures the same epoch with Decode+Crop
// offloaded for every sample.
func BenchmarkLiveEpochOffloaded(b *testing.B) {
	h := newHarness(b, 16, 4)
	tr, err := New(h.config())
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	plan, err := policy.NewUniformPlan("resize", 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RunEpoch(uint64(i+1), plan, nil); err != nil {
			b.Fatal(err)
		}
	}
}
