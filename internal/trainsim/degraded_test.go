package trainsim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/storage"
)

// failingClient wraps a real session but fails every sample a predicate
// selects — a dead shard seen through a degraded fan-out client, without a
// cluster in the loop.
type failingClient struct {
	StorageClient
	fails func(sample uint32) bool
}

var errInjected = errors.New("injected shard failure")

func (f *failingClient) Fetch(ctx context.Context, sample uint32, split int, epoch uint64) (storage.FetchResult, error) {
	if f.fails(sample) {
		res := storage.FetchResult{Sample: sample, Split: split, Err: errInjected}
		return res, errInjected
	}
	return f.StorageClient.Fetch(ctx, sample, split, epoch)
}

func (f *failingClient) FetchBatch(ctx context.Context, samples []uint32, splits []int, epoch uint64) ([]storage.FetchResult, error) {
	out := make([]storage.FetchResult, len(samples))
	healthyIdx := make([]int, 0, len(samples))
	healthySamples := make([]uint32, 0, len(samples))
	healthySplits := make([]int, 0, len(samples))
	for i, s := range samples {
		if f.fails(s) {
			out[i] = storage.FetchResult{Sample: s, Split: splits[i], Err: errInjected}
			continue
		}
		healthyIdx = append(healthyIdx, i)
		healthySamples = append(healthySamples, s)
		healthySplits = append(healthySplits, splits[i])
	}
	if len(healthySamples) > 0 {
		res, err := f.StorageClient.FetchBatch(ctx, healthySamples, healthySplits, epoch)
		if err != nil {
			return nil, err
		}
		for j, i := range healthyIdx {
			out[i] = res[j]
		}
	}
	return out, nil
}

// TestDegradedModeSkipsFailedSamples: per-item failures become skipped
// samples counted in EpochReport.Failed, not an aborted epoch.
func TestDegradedModeSkipsFailedSamples(t *testing.T) {
	const n = 40
	h := newHarness(t, n, 0)
	fails := func(s uint32) bool { return s%5 == 0 }
	wantFailed := 0
	for s := uint32(0); s < n; s++ {
		if fails(s) {
			wantFailed++
		}
	}

	for _, batched := range []int{0, 8} {
		cfg := h.config()
		inner := cfg.DialClient
		cfg.DialClient = func() (StorageClient, error) {
			c, err := inner()
			if err != nil {
				return nil, err
			}
			return &failingClient{StorageClient: c, fails: fails}, nil
		}
		cfg.DegradedMode = true
		cfg.FetchBatchSize = batched
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tr.RunEpoch(1, nil, nil)
		tr.Close()
		if err != nil {
			t.Fatalf("batch=%d: degraded epoch: %v", batched, err)
		}
		if rep.Failed != wantFailed {
			t.Errorf("batch=%d: Failed = %d, want %d", batched, rep.Failed, wantFailed)
		}
		if rep.Samples != n-wantFailed {
			t.Errorf("batch=%d: Samples = %d, want %d", batched, rep.Samples, n-wantFailed)
		}
	}
}

// TestDegradedModeAllFailedErrors: an epoch that loses every sample is not
// a success — it must still error out.
func TestDegradedModeAllFailedErrors(t *testing.T) {
	h := newHarness(t, 16, 0)
	cfg := h.config()
	inner := cfg.DialClient
	cfg.DialClient = func() (StorageClient, error) {
		c, err := inner()
		if err != nil {
			return nil, err
		}
		return &failingClient{StorageClient: c, fails: func(uint32) bool { return true }}, nil
	}
	cfg.DegradedMode = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RunEpoch(1, nil, nil); err == nil {
		t.Fatal("epoch with every sample failed reported success")
	}
}

// TestStrictModeAbortsOnFailure: without DegradedMode the first failed
// sample aborts the epoch — the seed behaviour, unchanged.
func TestStrictModeAbortsOnFailure(t *testing.T) {
	h := newHarness(t, 16, 0)
	cfg := h.config()
	inner := cfg.DialClient
	cfg.DialClient = func() (StorageClient, error) {
		c, err := inner()
		if err != nil {
			return nil, err
		}
		return &failingClient{StorageClient: c, fails: func(s uint32) bool { return s == 7 }}, nil
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RunEpoch(1, nil, nil); err == nil {
		t.Fatal("strict epoch completed despite a failed sample")
	}
}
