package trainsim

import (
	"testing"

	"repro/internal/policy"
)

// TestRunEpochSnapshotThreadsPlanVersion runs consecutive epochs under two
// plan snapshots — a control-plane swap — and verifies the version reaches
// both ends: the epoch report records it, and the server's high-water mark
// ratchets because every fetch carried the stamp on the wire.
func TestRunEpochSnapshotThreadsPlanVersion(t *testing.T) {
	h := newHarness(t, 24, 4)
	tr := newTrainer(t, h)

	noOff, err := policy.NewUniformPlan("v1", 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	offload, err := policy.NewUniformPlan("v2", 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	env := policy.Env{}

	r1, err := tr.RunEpochSnapshot(1, &policy.PlanSnapshot{
		Version: 1, Plan: noOff, Env: env, Epoch: 1, Reason: "initial",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlanVersion != 1 || r1.Samples != 24 {
		t.Fatalf("epoch 1 report: version %d, samples %d", r1.PlanVersion, r1.Samples)
	}
	if v := h.server.Counters().PlanVersion.Load(); v != 1 {
		t.Fatalf("server saw plan version %d after epoch 1, want 1", v)
	}

	// The replanned snapshot governs epoch 2: the new stamp must ratchet the
	// server mark, and the new plan's offloading must take effect.
	r2, err := tr.RunEpochSnapshot(2, &policy.PlanSnapshot{
		Version: 2, Plan: offload, Env: env, Epoch: 2, Reason: "bandwidth-drift",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.PlanVersion != 2 || r2.Offloaded != 24 {
		t.Fatalf("epoch 2 report: version %d, offloaded %d", r2.PlanVersion, r2.Offloaded)
	}
	if v := h.server.Counters().PlanVersion.Load(); v != 2 {
		t.Fatalf("server saw plan version %d after epoch 2, want 2", v)
	}
	if reg := h.server.Counters().PlanRegressions.Load(); reg != 0 {
		t.Fatalf("monotone swap counted %d regressions", reg)
	}

	// Bare-plan epochs stay unversioned in the report regardless of the
	// session's standing stamp.
	r3, err := tr.RunEpoch(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.PlanVersion != 0 {
		t.Fatalf("bare RunEpoch reported version %d", r3.PlanVersion)
	}

	if _, err := tr.RunEpochSnapshot(4, nil, nil); err == nil {
		t.Fatal("accepted nil snapshot")
	}
}
