package prefetch

import "sync/atomic"

// Metrics is the scheduler's shared instrumentation. One Metrics value can
// outlive many per-epoch Schedulers (counters accumulate across epochs), so
// the monitor watches one object for the lifetime of a trainer. All methods
// are safe for concurrent use.
type Metrics struct {
	issued        atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	cacheHits     atomic.Int64
	offloaded     atomic.Int64
	raw           atomic.Int64
	stagedBytes   atomic.Int64
	stagedPeak    atomic.Int64
	budgetStalls  atomic.Int64
	horizonStalls atomic.Int64
	replans       atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of the counters, shaped for the
// monitor's /stats JSON.
type MetricsSnapshot struct {
	// Issued counts samples handed to fetch round trips (including fail-fast
	// synthetic completions for dead shards).
	Issued int64 `json:"issued"`
	// Completed counts samples fetched successfully.
	Completed int64 `json:"completed"`
	// Failed counts samples whose fetch failed (per-item or whole-chunk).
	Failed int64 `json:"failed"`
	// CacheHits / Offloaded / Raw split Completed by the tier that served
	// the artifact, deepest first: a shared-cache hit moves zero wire bytes,
	// an offloaded fetch carries a positive pipeline cut, a raw fetch
	// carries cut 0.
	CacheHits int64 `json:"cache_hits"`
	Offloaded int64 `json:"offloaded"`
	Raw       int64 `json:"raw"`
	// StagedBytes is the current footprint of fetched-but-unconsumed
	// artifacts; StagedPeakBytes is its high-water mark.
	StagedBytes     int64 `json:"staged_bytes"`
	StagedPeakBytes int64 `json:"staged_peak_bytes"`
	// BudgetStalls / HorizonStalls count issue-loop waits on the staging
	// byte budget and the stream-position horizon respectively.
	BudgetStalls  int64 `json:"budget_stalls"`
	HorizonStalls int64 `json:"horizon_stalls"`
	// Replans counts control-plane plan rotations observed mid-stream.
	Replans int64 `json:"replans"`
}

// Snapshot copies the counters. Safe on a nil receiver (returns zeros) so
// callers can snapshot an optional Metrics unconditionally.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Issued:          m.issued.Load(),
		Completed:       m.completed.Load(),
		Failed:          m.failed.Load(),
		CacheHits:       m.cacheHits.Load(),
		Offloaded:       m.offloaded.Load(),
		Raw:             m.raw.Load(),
		StagedBytes:     m.stagedBytes.Load(),
		StagedPeakBytes: m.stagedPeak.Load(),
		BudgetStalls:    m.budgetStalls.Load(),
		HorizonStalls:   m.horizonStalls.Load(),
		Replans:         m.replans.Load(),
	}
}

// NoteReplan records one observed plan rotation.
func (m *Metrics) NoteReplan() {
	if m != nil {
		m.replans.Add(1)
	}
}

// addStaged moves the staged-bytes gauge and maintains its peak.
func (m *Metrics) addStaged(delta int64) {
	now := m.stagedBytes.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		peak := m.stagedPeak.Load()
		if now <= peak || m.stagedPeak.CompareAndSwap(peak, now) {
			return
		}
	}
}
