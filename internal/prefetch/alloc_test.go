package prefetch

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/raceflag"
	"repro/internal/storage"
)

// TestSchedulerSteadyStateAllocs pins the lookahead hot path: per consumed
// sample the scheduler (claim bookkeeping, issue buffers, slot bookkeeping,
// delivery) must add at most 2 allocs/op over whatever the fetch itself
// costs. The stub fetch reuses one results buffer (safe at Depth 1 — the
// same goroutine completes a round trip before reusing it), so the measured
// allocations are the scheduler's own.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector inflates allocation counts; budgets not meaningful")
	}
	const n = 2048
	order := Order(1, 1, n, true)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	buf := make([]storage.FetchResult, 64)
	fetch := func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error) {
		out := buf[:len(samples)]
		for k, s := range samples {
			out[k] = storage.FetchResult{
				Sample:    s,
				Split:     splits[k],
				WireBytes: len(payload),
				Artifact:  pipeline.Artifact{Kind: pipeline.KindRaw, Raw: payload},
			}
		}
		return out, nil
	}
	run := func() {
		c, err := NewScheduler(Config{
			Order:        order,
			Depth:        1,
			BatchSize:    16,
			Horizon:      256,
			StagingBytes: 1 << 20,
			Split:        func(sample int) int { return sample % 2 },
			Fetch:        fetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		for {
			it, ok := c.Next()
			if !ok {
				break
			}
			if it.Err != nil {
				t.Fatal(it.Err)
			}
		}
		c.Wait()
	}
	run() // warmup
	allocs := testing.AllocsPerRun(5, run)
	perSample := allocs / n
	if perSample > 2 {
		t.Fatalf("lookahead hot path allocates %.2f allocs per sample (%.0f per epoch of %d), budget is 2",
			perSample, allocs, n)
	}
}
