package prefetch

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Config describes one epoch's lookahead schedule.
type Config struct {
	// Order is the epoch's exact visit order (see Order). The scheduler
	// keeps a reference; callers must not mutate it while the scheduler
	// runs.
	Order []int
	// Shards is the storage fan-out width; 1 for a single server.
	Shards int
	// ShardOf maps a sample to its owning shard. Required when Shards > 1;
	// ignored (all samples on shard 0) otherwise.
	ShardOf func(sample uint32) int
	// Depth is the number of concurrent fetch round trips kept in flight
	// per shard; 0 means 2. This is the per-shard depth target that keeps
	// each link saturated independently of the others.
	Depth int
	// BatchSize groups this many samples per round trip; 0 or 1 means
	// per-sample fetches. Callers are responsible for respecting any wire
	// protocol batch cap.
	BatchSize int
	// Horizon bounds how far ahead of consumption (in stream positions) the
	// scheduler may issue; <= 0 means unbounded. It caps the reorder buffer
	// so a fast shard cannot race the whole epoch ahead of a slow one.
	Horizon int
	// StagingBytes is the budget on fetched-but-unconsumed artifact bytes;
	// <= 0 means unbounded. The gate is checked at issue time against bytes
	// charged at completion, so in-flight round trips may overshoot it by
	// up to Shards×Depth×BatchSize samples — a soft budget that bounds the
	// staging footprint without stalling completions. The entry at the
	// consumption cursor is always admitted regardless of budget, so the
	// stream can never deadlock on it.
	StagingBytes int64
	// Ledger, when non-nil, is an external staging accountant (see
	// cache.Staging) charged alongside the internal gauge and consulted by
	// the budget gate in addition to StagingBytes. Sharing one ledger
	// across schedulers bounds their combined staging footprint.
	Ledger Ledger
	// Split returns the pipeline cut to request for a sample. It is read
	// at issue time, so a control-plane replan rotates cuts for not-yet-
	// issued stream entries without flushing anything already staged
	// (staged artifacts stay correct: preprocessing is deterministic in
	// (job, epoch, sample) for whatever cut they were fetched at). Nil
	// means cut 0 for every sample.
	Split func(sample int) int
	// Fetch issues one round trip for a sub-batch that lives entirely on
	// one shard. It must return either len(samples) results or an error
	// describing the whole round trip. Required.
	Fetch func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error)
	// FailFast marks a shard dead on its first Down-classified failure;
	// the shard's remaining stream entries then complete immediately with
	// that error instead of waiting out a retry storm each. Healthy shards
	// keep streaming. Without FailFast every entry is attempted.
	FailFast bool
	// Down classifies an error as a shard-level outage (e.g.
	// cluster.ErrShardDown) for FailFast. Nil means no error qualifies.
	Down func(error) bool
	// Metrics receives instrumentation; nil means a private, unobserved
	// Metrics.
	Metrics *Metrics
}

// Ledger is the external staging-accounting surface (cache.Staging
// implements it). Reserve must never block: the gate consults Over before
// issuing, but completions always land.
type Ledger interface {
	Reserve(n int64)
	Release(n int64)
	Over() bool
}

// Item is one delivered stream entry. Exactly one of Err and Res is
// meaningful: on Err the fetch for this entry failed (per-item or as part of
// a failed round trip) after any retry layer below Fetch gave up.
type Item struct {
	// Pos is the entry's position in the epoch stream.
	Pos int
	// Sample is the dataset sample ID.
	Sample int
	// Split is the pipeline cut the fetch was issued with.
	Split int
	// Res is the fetch result (zero value when Err is non-nil).
	Res storage.FetchResult
	// Err is the fetch failure, nil on success.
	Err error
}

// slot states. Consumption is tracked by the cursor, not a state.
const (
	slotPending = iota
	slotIssued
	slotDone
)

type slot struct {
	res   storage.FetchResult
	err   error
	split int
	bytes int64
	state uint8
}

// Scheduler prefetches one epoch's access stream across the shard fan-out.
// Shards×Depth issue goroutines each keep one round trip in flight against
// their shard, claiming work from per-shard queues derived from the stream;
// Next delivers results in exact stream order. Safe for concurrent Next
// calls (workers race for successive positions).
type Scheduler struct {
	cfg  Config
	m    *Metrics
	mu   sync.Mutex
	cond *sync.Cond

	slots  []slot
	shardQ [][]int // stream positions per shard, in stream order
	qnext  []int   // next unclaimed index into shardQ[s]
	cursor int     // next stream position Next will deliver
	staged int64   // bytes fetched but not yet delivered
	down   []error // first Down-classified error per shard (FailFast)

	stopped bool
	wg      sync.WaitGroup
}

// NewScheduler validates the config, partitions the stream per shard, and
// starts the issue goroutines. Callers must drain Next or call Stop.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Fetch == nil {
		return nil, errors.New("prefetch: Fetch is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > 1 && cfg.ShardOf == nil {
		return nil, fmt.Errorf("prefetch: ShardOf is required for %d shards", cfg.Shards)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	c := &Scheduler{
		cfg:    cfg,
		m:      cfg.Metrics,
		slots:  make([]slot, len(cfg.Order)),
		shardQ: make([][]int, cfg.Shards),
		qnext:  make([]int, cfg.Shards),
		down:   make([]error, cfg.Shards),
	}
	c.cond = sync.NewCond(&c.mu)
	for pos, sample := range cfg.Order {
		s := 0
		if cfg.Shards > 1 {
			s = cfg.ShardOf(uint32(sample))
			if s < 0 || s >= cfg.Shards {
				return nil, fmt.Errorf("prefetch: ShardOf(%d) = %d, want [0,%d)", sample, s, cfg.Shards)
			}
		}
		c.shardQ[s] = append(c.shardQ[s], pos)
	}
	for s := 0; s < cfg.Shards; s++ {
		for d := 0; d < cfg.Depth; d++ {
			c.wg.Add(1)
			go c.issueLoop(s)
		}
	}
	return c, nil
}

// claim takes up to BatchSize contiguous entries from shard s's queue,
// blocking on the staging budget and horizon gates. It returns the claimed
// stream positions appended to buf (empty when the shard's queue is
// exhausted or the scheduler stopped) and the shard's fail-fast error.
func (c *Scheduler) claim(s int, buf []int) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.stopped || c.qnext[s] >= len(c.shardQ[s]) {
			return buf, nil
		}
		pos := c.shardQ[s][c.qnext[s]]
		if pos == c.cursor || c.down[s] != nil {
			// Progress guarantee: the entry the consumer is waiting on is
			// always claimable, whatever the budget and horizon say; and a
			// dead shard's entries drain without occupying either gate.
			break
		}
		if (c.cfg.StagingBytes > 0 && c.staged >= c.cfg.StagingBytes) ||
			(c.cfg.Ledger != nil && c.cfg.Ledger.Over()) {
			c.m.budgetStalls.Add(1)
			c.cond.Wait()
			continue
		}
		if c.cfg.Horizon > 0 && pos >= c.cursor+c.cfg.Horizon {
			c.m.horizonStalls.Add(1)
			c.cond.Wait()
			continue
		}
		break
	}
	for len(buf) < c.cfg.BatchSize && c.qnext[s] < len(c.shardQ[s]) {
		pos := c.shardQ[s][c.qnext[s]]
		if len(buf) > 0 && c.down[s] == nil &&
			c.cfg.Horizon > 0 && pos >= c.cursor+c.cfg.Horizon {
			break
		}
		c.slots[pos].state = slotIssued
		buf = append(buf, pos)
		c.qnext[s]++
	}
	return buf, c.down[s]
}

// issueLoop is one of shard s's Depth in-flight fetch slots. The claim /
// fetch / complete buffers are reused across iterations so the steady-state
// loop does not allocate.
func (c *Scheduler) issueLoop(s int) {
	defer c.wg.Done()
	claim := make([]int, 0, c.cfg.BatchSize)
	samples := make([]uint32, 0, c.cfg.BatchSize)
	splits := make([]int, 0, c.cfg.BatchSize)
	for {
		var downErr error
		claim, downErr = c.claim(s, claim[:0])
		if len(claim) == 0 {
			return
		}
		samples, splits = samples[:0], splits[:0]
		for _, pos := range claim {
			sample := c.cfg.Order[pos]
			samples = append(samples, uint32(sample))
			sp := 0
			if c.cfg.Split != nil {
				sp = c.cfg.Split(sample)
			}
			splits = append(splits, sp)
		}
		c.m.issued.Add(int64(len(claim)))
		var res []storage.FetchResult
		err := downErr
		if err == nil {
			res, err = c.cfg.Fetch(s, samples, splits)
			if err == nil && len(res) != len(samples) {
				err = fmt.Errorf("prefetch: shard %d returned %d results for %d samples", s, len(res), len(samples))
			}
		}
		c.complete(s, claim, splits, res, err)
	}
}

// complete records one round trip's outcome and wakes the consumer.
func (c *Scheduler) complete(s int, claim, splits []int, res []storage.FetchResult, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil && c.cfg.FailFast && c.down[s] == nil && c.cfg.Down != nil && c.cfg.Down(err) {
		c.down[s] = err
	}
	for k, pos := range claim {
		sl := &c.slots[pos]
		sl.split = splits[k]
		switch {
		case err != nil:
			sl.err = err
			c.m.failed.Add(1)
		case res[k].Err != nil:
			sl.err = res[k].Err
			c.m.failed.Add(1)
			if c.cfg.FailFast && c.down[s] == nil && c.cfg.Down != nil && c.cfg.Down(res[k].Err) {
				c.down[s] = res[k].Err
			}
		default:
			sl.res = res[k]
			if !c.stopped {
				// After Stop no consumer will release these bytes; keep the
				// result (harmless) but don't charge an abandoned epoch to
				// the staging ledger.
				sl.bytes = int64(res[k].Artifact.WireSize())
				c.staged += sl.bytes
				c.m.addStaged(sl.bytes)
				if c.cfg.Ledger != nil {
					c.cfg.Ledger.Reserve(sl.bytes)
				}
			}
			c.m.completed.Add(1)
			switch {
			case res[k].WireBytes == 0:
				c.m.cacheHits.Add(1)
			case splits[k] > 0:
				c.m.offloaded.Add(1)
			default:
				c.m.raw.Add(1)
			}
		}
		sl.state = slotDone
	}
	c.cond.Broadcast()
}

// Next blocks until the next stream entry is ready and delivers it,
// transferring ownership of its staged bytes to the caller. It returns
// ok=false once the stream is exhausted or the scheduler stopped.
func (c *Scheduler) Next() (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.stopped || c.cursor >= len(c.cfg.Order) {
			return Item{}, false
		}
		if c.slots[c.cursor].state == slotDone {
			break
		}
		c.cond.Wait()
	}
	pos := c.cursor
	sl := &c.slots[pos]
	it := Item{Pos: pos, Sample: c.cfg.Order[pos], Split: sl.split, Res: sl.res, Err: sl.err}
	c.releaseLocked(sl)
	c.cursor++
	c.cond.Broadcast()
	return it, true
}

// releaseLocked returns one slot's staged bytes and drops its artifact
// reference.
func (c *Scheduler) releaseLocked(sl *slot) {
	c.staged -= sl.bytes
	c.m.addStaged(-sl.bytes)
	if c.cfg.Ledger != nil && sl.bytes > 0 {
		c.cfg.Ledger.Release(sl.bytes)
	}
	sl.res = storage.FetchResult{}
	sl.bytes = 0
}

// Stop aborts the stream: pending claims stop, blocked Next calls return
// false. It does not wait for in-flight fetches — cancel the context their
// Fetch closure captured to unblock them, then Wait.
func (c *Scheduler) Stop() {
	c.mu.Lock()
	c.stopped = true
	// Return the staged bytes of everything fetched but never consumed, so
	// an aborted epoch leaves the (possibly shared) ledger balanced.
	for pos := c.cursor; pos < len(c.slots); pos++ {
		if c.slots[pos].bytes > 0 {
			c.releaseLocked(&c.slots[pos])
		}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Wait blocks until every issue goroutine has exited (the stream drained or
// Stop was called and in-flight fetches returned).
func (c *Scheduler) Wait() {
	c.wg.Wait()
}
