package prefetch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/storage"
)

func rawResult(sample uint32, split, wireBytes int) storage.FetchResult {
	return storage.FetchResult{
		Sample:    sample,
		Split:     split,
		WireBytes: wireBytes,
		Artifact:  pipeline.Artifact{Kind: pipeline.KindRaw, Raw: []byte{1, 2, 3, 4}},
	}
}

// okFetch builds a Fetch stub that serves every sample successfully.
func okFetch(delay time.Duration) func(int, []uint32, []int) ([]storage.FetchResult, error) {
	return func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		out := make([]storage.FetchResult, len(samples))
		for k, s := range samples {
			out[k] = rawResult(s, splits[k], 100)
		}
		return out, nil
	}
}

func TestOrderDeterministic(t *testing.T) {
	plain := Order(7, 3, 5, false)
	for i, v := range plain {
		if v != i {
			t.Fatalf("unshuffled order[%d] = %d, want identity", i, v)
		}
	}
	a := Order(7, 3, 100, true)
	b := Order(7, 3, 100, true)
	seen := make(map[int]bool, len(a))
	permuted := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (job, epoch) produced different orders at %d", i)
		}
		if seen[a[i]] {
			t.Fatalf("duplicate sample %d", a[i])
		}
		seen[a[i]] = true
		if a[i] != i {
			permuted = true
		}
	}
	if !permuted {
		t.Fatal("shuffle left the identity permutation")
	}
	c := Order(7, 4, 100, true)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("epochs 3 and 4 shuffled identically")
	}
}

func TestSchedulerDeliversStreamOrder(t *testing.T) {
	order := Order(11, 1, 200, true)
	m := &Metrics{}
	c, err := NewScheduler(Config{
		Order:     order,
		Shards:    3,
		ShardOf:   func(s uint32) int { return int(s) % 3 },
		Depth:     4,
		BatchSize: 8,
		Split:     func(sample int) int { return sample % 3 },
		Fetch:     okFetch(time.Microsecond),
		Metrics:   m,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent consumers: positions must still come out gap-free.
	var mu sync.Mutex
	got := make([]Item, 0, len(order))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				it, ok := c.Next()
				if !ok {
					return
				}
				mu.Lock()
				got = append(got, it)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	c.Wait()
	if len(got) != len(order) {
		t.Fatalf("delivered %d items, want %d", len(got), len(order))
	}
	seen := make([]bool, len(order))
	for _, it := range got {
		if it.Err != nil {
			t.Fatalf("pos %d failed: %v", it.Pos, it.Err)
		}
		if seen[it.Pos] {
			t.Fatalf("pos %d delivered twice", it.Pos)
		}
		seen[it.Pos] = true
		if it.Sample != order[it.Pos] {
			t.Fatalf("pos %d delivered sample %d, want %d", it.Pos, it.Sample, order[it.Pos])
		}
		if want := order[it.Pos] % 3; it.Split != want {
			t.Fatalf("pos %d used split %d, want %d", it.Pos, it.Split, want)
		}
	}
	snap := m.Snapshot()
	if snap.Completed != int64(len(order)) || snap.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", snap.Completed, snap.Failed, len(order))
	}
	if snap.StagedBytes != 0 {
		t.Fatalf("staged bytes %d after full drain, want 0", snap.StagedBytes)
	}
	if snap.StagedPeakBytes <= 0 {
		t.Fatal("staging peak never moved")
	}
	if snap.Offloaded == 0 || snap.Raw == 0 {
		t.Fatalf("tier accounting offloaded=%d raw=%d, want both > 0", snap.Offloaded, snap.Raw)
	}
}

// TestSchedulerStagingBudget proves the byte budget throttles issue: with a
// slow consumer and a budget of ~4 artifacts, the issue loops must stall on
// the budget, and the staged gauge stays near it rather than absorbing the
// whole epoch.
func TestSchedulerStagingBudget(t *testing.T) {
	order := Order(5, 1, 96, true)
	m := &Metrics{}
	artifactBytes := int64(rawResult(0, 0, 100).Artifact.WireSize())
	c, err := NewScheduler(Config{
		Order:        order,
		Depth:        4,
		BatchSize:    2,
		StagingBytes: 4 * artifactBytes,
		Fetch:        okFetch(0),
		Metrics:      m,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(order); i++ {
		time.Sleep(200 * time.Microsecond) // consumer slower than fetches
		it, ok := c.Next()
		if !ok || it.Err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, it.Err)
		}
	}
	c.Wait()
	snap := m.Snapshot()
	if snap.BudgetStalls == 0 {
		t.Fatal("budget never stalled issue despite a slow consumer")
	}
	// Soft budget: overshoot is bounded by in-flight round trips
	// (Depth × BatchSize artifacts on the single shard).
	limit := 4*artifactBytes + 4*2*artifactBytes
	if snap.StagedPeakBytes > limit {
		t.Fatalf("staging peak %d exceeds soft budget bound %d", snap.StagedPeakBytes, limit)
	}
}

func TestSchedulerHorizonStalls(t *testing.T) {
	order := Order(5, 2, 64, true)
	m := &Metrics{}
	c, err := NewScheduler(Config{
		Order:   order,
		Depth:   4,
		Horizon: 4,
		Fetch:   okFetch(0),
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(order); i++ {
		time.Sleep(100 * time.Microsecond)
		if _, ok := c.Next(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	c.Wait()
	if m.Snapshot().HorizonStalls == 0 {
		t.Fatal("horizon never stalled issue despite a slow consumer")
	}
}

// TestSchedulerFailFast partitions shard 1 of 2: its round trips fail with a
// shard-down error. Fail-fast must stop fetching from the dead shard after
// the in-flight round trips, fail exactly its own stream entries, and keep
// shard 0's entries flowing.
func TestSchedulerFailFast(t *testing.T) {
	errDown := errors.New("shard down")
	order := Order(9, 1, 120, true)
	var deadCalls atomic.Int64
	m := &Metrics{}
	depth := 2
	c, err := NewScheduler(Config{
		Order:     order,
		Shards:    2,
		ShardOf:   func(s uint32) int { return int(s) % 2 },
		Depth:     depth,
		BatchSize: 4,
		Fetch: func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error) {
			if shard == 1 {
				deadCalls.Add(1)
				return nil, fmt.Errorf("dial shard 1: %w", errDown)
			}
			out := make([]storage.FetchResult, len(samples))
			for k, s := range samples {
				out[k] = rawResult(s, splits[k], 80)
			}
			return out, nil
		},
		FailFast: true,
		Down:     func(err error) bool { return errors.Is(err, errDown) },
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	var okN, failN int
	for {
		it, ok := c.Next()
		if !ok {
			break
		}
		owner := it.Sample % 2
		if it.Err != nil {
			if owner != 1 {
				t.Fatalf("healthy shard sample %d failed: %v", it.Sample, it.Err)
			}
			if !errors.Is(it.Err, errDown) {
				t.Fatalf("sample %d failed with %v, want shard-down", it.Sample, it.Err)
			}
			failN++
			continue
		}
		if owner != 0 {
			t.Fatalf("dead shard sample %d succeeded", it.Sample)
		}
		okN++
	}
	c.Wait()
	wantFail := 0
	for _, s := range order {
		if s%2 == 1 {
			wantFail++
		}
	}
	if failN != wantFail || okN != len(order)-wantFail {
		t.Fatalf("ok=%d fail=%d, want %d/%d", okN, failN, len(order)-wantFail, wantFail)
	}
	// Fail-fast: after the first Depth round trips observe the outage, the
	// rest of the dead shard's stream completes synthetically. Allow one
	// extra for a claim racing the down mark.
	if calls := deadCalls.Load(); calls > int64(depth+1) {
		t.Fatalf("dead shard fetched %d times, want ≤ %d (fail-fast)", calls, depth+1)
	}
	if got := m.Snapshot().Failed; got != int64(wantFail) {
		t.Fatalf("metrics failed=%d, want %d", got, wantFail)
	}
}

// TestSchedulerSplitReadAtIssueTime proves a mid-stream plan rotation takes
// effect for not-yet-issued entries: with Horizon 1 the scheduler can only
// run one position ahead of consumption, so entries consumed well after the
// flip must have been issued with the new cut.
func TestSchedulerSplitReadAtIssueTime(t *testing.T) {
	order := Order(3, 1, 40, false)
	var cut atomic.Int64
	cut.Store(1)
	c, err := NewScheduler(Config{
		Order:   order,
		Depth:   2,
		Horizon: 1,
		Split:   func(sample int) int { return int(cut.Load()) },
		Fetch:   okFetch(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	flipAt := 20
	for i := 0; i < len(order); i++ {
		it, ok := c.Next()
		if !ok || it.Err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, it.Err)
		}
		if i == flipAt {
			cut.Store(2)
		}
		// Horizon 1 bounds issue to one position ahead, so by two positions
		// past the flip every delivery was issued under the new plan.
		if i > flipAt+2 && it.Split != 2 {
			t.Fatalf("pos %d issued with split %d after plan rotation to 2", i, it.Split)
		}
		if i < flipAt && it.Split != 1 {
			t.Fatalf("pos %d issued with split %d before plan rotation", i, it.Split)
		}
	}
	c.Wait()
}

func TestSchedulerStopUnblocksNext(t *testing.T) {
	block := make(chan struct{})
	c, err := NewScheduler(Config{
		Order: Order(1, 1, 8, false),
		Fetch: func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error) {
			<-block
			return nil, errors.New("stopped")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := c.Next(); ok {
			t.Error("Next returned an item after Stop")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on Stop")
	}
	close(block)
	c.Wait()
}
