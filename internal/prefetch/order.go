// Package prefetch implements the clairvoyant lookahead scheduler of the
// trainer's fetch stage. Because the epoch's sample order derives from a
// seeded shuffle, the entire future access stream is known the moment an
// epoch starts — the core insight of NoPFS-style clairvoyant prefetching.
// The scheduler materializes that stream, partitions it per storage shard,
// and keeps every shard link saturated with per-shard depth targets instead
// of stalling behind one globally-ordered in-flight window.
package prefetch

import "math/rand/v2"

// shuffleSalt decorrelates the shuffle stream from other per-job PRNG uses
// (augmentation seeds derive from the job ID directly). It is part of the
// persisted-reproducibility contract: changing it changes every epoch's
// visit order for existing seeds.
const shuffleSalt = 0xabcdef

// Order returns the epoch's sample visit order: the identity permutation of
// [0, n), shuffled by a PRNG seeded with (jobID, epoch) when shuffle is set.
// This is the single definition of the stream — the trainer consumes in this
// order and the scheduler prefetches in it, so both sides always agree on
// what "next" means. Deterministic in its arguments.
func Order(jobID, epoch uint64, n int, shuffle bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if shuffle {
		rng := rand.New(rand.NewPCG(jobID^shuffleSalt, epoch))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	return idx
}
