// Package bufpool is the size-classed buffer arena behind the repository's
// zero-allocation data plane. Every hot-path buffer — codec scratch planes,
// decoded pixel buffers, float tensors, wire frames — is drawn from here and
// returned when its owner is done, so the per-sample fetch/preprocess path
// stops allocating at steady state and GC pressure no longer inflates the
// per-op CPU times the profiler measures.
//
// # Ownership rules
//
// A buffer obtained from Get* is owned by the caller until it is passed to
// Put* (at which point the caller must drop every reference) or handed to an
// API documented as taking ownership. Put* is safe to call with any slice:
// only buffers whose capacity exactly matches a size class re-enter the
// pool, so foreign memory (store objects, cache-resident bytes, plain
// make() slices) is silently dropped rather than recycled. This is the
// package-level guarantee that a buffer that was never pooled can never be
// handed out twice.
//
// Returned buffers are not zeroed. Callers that require zeroed memory must
// clear the buffer themselves.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from minClass to maxClass. Requests above
// the largest class fall back to plain make and are never pooled; requests
// below the smallest class round up to it.
const (
	minClassBits = 6  // 64 B
	maxClassBits = 26 // 64 MiB — covers wire.MaxFrameSize
	numClasses   = maxClassBits - minClassBits + 1
)

// Stats counts arena traffic with atomic counters; read them via Snapshot.
type Stats struct {
	Gets     atomic.Uint64 // pooled-size requests served
	Misses   atomic.Uint64 // pooled-size requests that had to allocate
	Puts     atomic.Uint64 // buffers accepted back into the pool
	Rejected atomic.Uint64 // Put* calls dropped (foreign or oversized buffer)
}

// StatsSnapshot is a point-in-time copy of the arena counters.
type StatsSnapshot struct {
	Gets, Misses, Puts, Rejected uint64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Gets:     s.Gets.Load(),
		Misses:   s.Misses.Load(),
		Puts:     s.Puts.Load(),
		Rejected: s.Rejected.Load(),
	}
}

// arena is one element type's set of size-classed pools. The per-class pools
// store *[]T headers; a shared header pool recycles the headers themselves so
// both Get and Put are allocation-free at steady state.
type arena[T any] struct {
	classes [numClasses]sync.Pool // each holds *[]T with cap == classSize(i)
	headers sync.Pool             // spare *[]T with nil payload
	stats   Stats
}

// classFor returns the class index whose buffers can hold n elements, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for s := 1 << minClassBits; s < n; s <<= 1 {
		c++
	}
	return c
}

// classSize returns the capacity of class c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// get returns a []T of length n. Pool hits carry cap == classSize; misses
// and oversized requests allocate.
func (a *arena[T]) get(n int) []T {
	c := classFor(n)
	if c < 0 {
		a.stats.Misses.Add(1)
		return make([]T, n)
	}
	a.stats.Gets.Add(1)
	hp, _ := a.classes[c].Get().(*[]T)
	if hp == nil {
		a.stats.Misses.Add(1)
		return make([]T, classSize(c))[:n]
	}
	b := (*hp)[:n]
	*hp = nil
	a.headers.Put(hp)
	return b
}

// put returns b to its size class. Buffers whose capacity is not exactly a
// class size (foreign memory) are dropped.
func (a *arena[T]) put(b []T) {
	c := classFor(cap(b))
	if cap(b) == 0 || c < 0 || cap(b) != classSize(c) {
		a.stats.Rejected.Add(1)
		return
	}
	hp, _ := a.headers.Get().(*[]T)
	if hp == nil {
		hp = new([]T)
	}
	*hp = b[:0]
	a.classes[c].Put(hp)
	a.stats.Puts.Add(1)
}

var (
	bytes    arena[byte]
	float32s arena[float32]
	uint32s  arena[uint32]
)

// GetBytes returns a []byte of length n from the arena.
func GetBytes(n int) []byte { return bytes.get(n) }

// PutBytes returns b to the arena; the caller must drop all references.
func PutBytes(b []byte) { bytes.put(b) }

// GetFloat32 returns a []float32 of length n from the arena.
func GetFloat32(n int) []float32 { return float32s.get(n) }

// PutFloat32 returns f to the arena; the caller must drop all references.
func PutFloat32(f []float32) { float32s.put(f) }

// GetUint32 returns a []uint32 of length n from the arena.
func GetUint32(n int) []uint32 { return uint32s.get(n) }

// PutUint32 returns u to the arena; the caller must drop all references.
func PutUint32(u []uint32) { uint32s.put(u) }

// ByteStats returns the []byte arena counters.
func ByteStats() StatsSnapshot { return bytes.stats.Snapshot() }

// Float32Stats returns the []float32 arena counters.
func Float32Stats() StatsSnapshot { return float32s.stats.Snapshot() }
