package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, 20 - minClassBits}, {1 << maxClassBits, numClasses - 1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if classFor(1<<maxClassBits+1) != -1 {
		t.Error("oversized request should map to class -1")
	}
}

func TestGetReturnsRequestedLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 16} {
		b := GetBytes(n)
		if len(b) != n {
			t.Fatalf("GetBytes(%d) returned len %d", n, len(b))
		}
		PutBytes(b)
	}
	f := GetFloat32(100)
	if len(f) != 100 {
		t.Fatalf("GetFloat32(100) returned len %d", len(f))
	}
	PutFloat32(f)
	u := GetUint32(10)
	if len(u) != 10 {
		t.Fatalf("GetUint32(10) returned len %d", len(u))
	}
	PutUint32(u)
}

func TestPutRejectsForeignBuffers(t *testing.T) {
	before := ByteStats().Rejected
	PutBytes(make([]byte, 100))      // cap 100 is not a class size
	PutBytes(nil)                    // empty
	PutBytes(make([]byte, 0, 1<<27)) // beyond the largest class
	if got := ByteStats().Rejected - before; got != 3 {
		t.Fatalf("rejected %d foreign buffers, want 3", got)
	}
}

func TestRoundTripReusesMemory(t *testing.T) {
	b := GetBytes(1000)
	b[0] = 42
	p := &b[0]
	PutBytes(b)
	// The very next same-class Get should hand the buffer back (pools are
	// per-P; a single goroutine sees its own private slot first).
	c := GetBytes(900)
	if &c[0] != p {
		t.Skip("pool did not return the same buffer (GC or scheduling); not a correctness failure")
	}
	if cap(c) != 1024 {
		t.Fatalf("recycled cap %d, want 1024", cap(c))
	}
	PutBytes(c)
}

func TestOversizedFallsBackToMake(t *testing.T) {
	n := 1<<maxClassBits + 1
	b := GetBytes(n)
	if len(b) != n {
		t.Fatalf("oversized Get len %d", len(b))
	}
	PutBytes(b) // dropped, must not panic
}

func TestSteadyStateAllocs(t *testing.T) {
	// Warm the pool and the header pool.
	for i := 0; i < 8; i++ {
		PutBytes(GetBytes(4096))
	}
	avg := testing.AllocsPerRun(200, func() {
		b := GetBytes(4096)
		PutBytes(b)
	})
	if avg > 0.5 {
		t.Errorf("steady-state Get/Put allocates %.2f times per op, want ~0", avg)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 64 << (uint(i+g) % 8)
				b := GetBytes(n)
				for j := range b {
					b[j] = byte(g)
				}
				for j := range b {
					if b[j] != byte(g) {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				PutBytes(b)
			}
		}(g)
	}
	wg.Wait()
}
