// Package soak drives end-to-end chaos soaks: a trainer running real epochs
// against a sharded storage tier whose network fabric is injected with
// seeded faults, checked against a fault-free reference cluster serving the
// identical dataset. It is the shared engine behind the repository's chaos
// soak suite (go test -chaos.seed=...) and sophon-bench's chaos mode.
//
// A soak asserts the recovery invariants the fault model promises:
//
//   - Bit identity: every artifact fetched through the faulty fabric equals,
//     byte for byte, the one the pristine cluster serves. Corruption may
//     cost retries, never wrong tensors.
//   - Exact failure accounting: EpochReport.Failed matches the injected
//     unrecoverable faults — zero for recoverable classes, exactly the
//     partitioned shard's owned-sample count for partition epochs.
//   - Reproducibility: the report carries the chaos plan's digest; the same
//     seed yields the same digest, fault schedules, and outcome.
package soak

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/prepsched"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/trainsim"
)

// Class names a fault mix for the whole soak.
type Class string

// Soak fault classes. Recoverable classes (delays, corrupt, mixed) must end
// with zero failed samples; partition is the unrecoverable class whose
// failures are exactly accounted.
const (
	ClassNone      Class = "none"
	ClassDelays    Class = "delays"
	ClassCorrupt   Class = "corrupt"
	ClassMixed     Class = "mixed"
	ClassPartition Class = "partition"
)

// ParseClass validates a -chaos.class flag value.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case ClassNone, ClassDelays, ClassCorrupt, ClassMixed, ClassPartition:
		return Class(s), nil
	case "":
		return ClassMixed, nil
	}
	return "", fmt.Errorf("soak: unknown chaos class %q (want none|delays|corrupt|mixed|partition)", s)
}

// Config parameterizes one soak run. The zero value plus a seed is a valid
// quick soak.
type Config struct {
	Seed    uint64
	Class   Class // "" → mixed
	Samples int   // dataset size (0 → 48)
	Shards  int   // storage shards (0 → 2)
	Epochs  int   // trainer epochs (0 → 3)
	// Lookahead selects the trainer's clairvoyant prefetch scheduler with
	// this per-shard depth; 0 keeps the legacy reactive window. Soaking with
	// a deep lookahead proves the recovery invariants hold while many
	// speculative fetches are in flight against a faulty fabric.
	Lookahead int
	// MixFlip runs the epochs under the variance-aware work-stealing
	// scheduler with a seeded heavy/light classification whose heavy set
	// flips mid-epoch from sparse (~8% of samples) to dominant (~60%), while
	// an adaptive controller watches the observed per-epoch mix. The soak
	// then proves the scheduler invariants end to end: artifacts stay
	// bit-identical to the fault-free reference, failure accounting stays
	// exact, and the sustained skew flip triggers at least one "mix-drift"
	// replan. Implies a lookahead (0 → 4) — variance-aware mode rides the
	// clairvoyant stream.
	MixFlip bool
}

func (c Config) withDefaults() Config {
	if c.Class == "" {
		c.Class = ClassMixed
	}
	if c.MixFlip && c.Lookahead <= 0 {
		c.Lookahead = 4
	}
	if c.Samples <= 0 {
		c.Samples = 48
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	return c
}

// Plan expands the config into the per-shard chaos plan. Every shard gets
// the class's profile; the partition class runs a fault-free wire (the
// partition itself is toggled at epoch boundaries by Run).
func (c Config) Plan() *chaos.Plan {
	c = c.withDefaults()
	var p chaos.Profile
	switch c.Class {
	case ClassDelays:
		p = chaos.Profile{
			DelayEvery: 8 << 10, Delay: 200 * time.Microsecond,
			StallEvery: 128 << 10, Stall: 2 * time.Millisecond,
		}
	case ClassCorrupt:
		p = chaos.Profile{CorruptEvery: 16 << 10}
	case ClassMixed:
		p = chaos.Profile{
			DelayEvery: 16 << 10, Delay: 100 * time.Microsecond,
			CorruptEvery: 32 << 10,
			CloseAfter:   512 << 10,
		}
	case ClassNone, ClassPartition:
		// fault-free wire
	}
	shards := make([]chaos.Profile, c.Shards)
	for i := range shards {
		shards[i] = p
	}
	return &chaos.Plan{Seed: c.Seed, Shards: shards}
}

// Report is the outcome of one soak run.
type Report struct {
	Seed      uint64 `json:"seed"`
	Class     Class  `json:"class"`
	Lookahead int    `json:"lookahead,omitempty"`
	Digest    uint32 `json:"digest"` // chaos plan fingerprint: same seed → same digest

	Compared   int `json:"compared"`   // artifact pairs checked for bit identity
	Mismatches int `json:"mismatches"` // pairs that differed (must be 0)

	Failed     int `json:"failed"`      // samples lost across all epochs
	WantFailed int `json:"want_failed"` // exact expected loss from unrecoverable faults

	Epochs []trainsim.EpochReport `json:"epochs"`
	Chaos  []chaos.StatsSnapshot  `json:"chaos"` // injected faults per shard

	// MixFlip soaks additionally record the control-plane outcome of the
	// skew flip and the work-stealing pool's counters.
	MixFlip       bool                       `json:"mix_flip,omitempty"`
	Replans       int                        `json:"replans,omitempty"`        // replans beyond the initial plan
	ReplanReasons []string                   `json:"replan_reasons,omitempty"` // one per replan, e.g. "mix-drift"
	Prepsched     *prepsched.MetricsSnapshot `json:"prepsched,omitempty"`
}

// Ok reports whether the soak met every invariant.
func (r Report) Ok() bool {
	if r.MixFlip && r.Replans == 0 {
		return false
	}
	return r.Mismatches == 0 && r.Failed == r.WantFailed && len(r.Epochs) > 0
}

// retryPolicy is the soak's hardened client policy: a deep attempt budget
// with no pauses, so recoverable faults are always outlasted and the soak
// stays fast.
var retryPolicy = storage.RetryPolicy{Attempts: 12, BaseBackoff: -1, Jitter: -1}

// Run executes one soak: build the dataset, launch a chaos cluster and a
// pristine reference cluster over it, sweep every sample for bit identity,
// then run trainer epochs in degraded mode (partitioning shard 0 for the
// middle epoch under the partition class) and account failures exactly.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Seed: cfg.Seed, Class: cfg.Class, Lookahead: cfg.Lookahead, MixFlip: cfg.MixFlip}

	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "soak", N: cfg.Samples, Seed: cfg.Seed ^ 0x5eed, MinDim: 32, MaxDim: 96,
	})
	if err != nil {
		return rep, err
	}
	store, err := storage.FromImageSet(set)
	if err != nil {
		return rep, err
	}
	pipe := pipeline.Standard(pipeline.StandardOptions{CropSize: 24, FlipP: 0.5})
	plan := cfg.Plan()
	rep.Digest = plan.Digest(16)

	launch := func(p *chaos.Plan) (*cluster.Cluster, error) {
		return cluster.Launch(cluster.Config{
			Shards: cfg.Shards, Store: store, Pipeline: pipe, CoresPerShard: 1, Chaos: p,
		})
	}
	faulty, err := launch(plan)
	if err != nil {
		return rep, err
	}
	defer faulty.Close()
	pristine, err := launch(nil)
	if err != nil {
		return rep, err
	}
	defer pristine.Close()

	if err := identitySweep(&rep, cfg, store.N(), pipe, faulty, pristine); err != nil {
		return rep, err
	}
	if err := trainEpochs(&rep, cfg, faulty); err != nil {
		return rep, err
	}
	for s := 0; s < cfg.Shards; s++ {
		rep.Chaos = append(rep.Chaos, faulty.ChaosStats(s))
	}
	return rep, nil
}

// identitySweep fetches every sample — raw and fully offloaded — through
// both fabrics and compares artifacts byte for byte. Augmentation seeds
// depend only on (job, epoch, sample), so the two clusters must agree
// exactly; any divergence is a fault that leaked past the checksum.
func identitySweep(rep *Report, cfg Config, n int, pipe *pipeline.Pipeline, faulty, pristine *cluster.Cluster) error {
	opts := storage.ClientOptions{JobID: cfg.Seed}
	fc, err := faulty.NewShardedClientWithPolicy(opts, retryPolicy, false)
	if err != nil {
		return fmt.Errorf("soak: faulty client: %w", err)
	}
	defer fc.Close()
	pc, err := pristine.NewShardedClientWithPolicy(opts, retryPolicy, false)
	if err != nil {
		return fmt.Errorf("soak: pristine client: %w", err)
	}
	defer pc.Close()

	ctx := context.Background()
	for _, split := range []int{0, pipe.Len()} {
		for id := 0; id < n; id++ {
			got, err := fc.Fetch(ctx, uint32(id), split, 1)
			if err != nil {
				return fmt.Errorf("soak: sample %d split %d through faults: %w", id, split, err)
			}
			want, err := pc.Fetch(ctx, uint32(id), split, 1)
			if err != nil {
				return fmt.Errorf("soak: sample %d split %d pristine: %w", id, split, err)
			}
			rep.Compared++
			if !got.Artifact.Equal(want.Artifact) {
				rep.Mismatches++
			}
		}
	}
	return nil
}

// trainEpochs runs the degraded-mode trainer over the faulty fabric. Under
// the partition class, shard 0 is severed for the middle epoch and healed
// after, so the expected failure count is exactly its owned-sample count.
// MixFlip soaks swap the static uniform plan for an adaptive controller and
// run the variance-aware scheduler through a mid-training skew flip.
func trainEpochs(rep *Report, cfg Config, faulty *cluster.Cluster) error {
	tcfg := trainsim.Config{
		DialClient: func() (trainsim.StorageClient, error) {
			return faulty.NewShardedClientWithPolicy(storage.ClientOptions{JobID: cfg.Seed}, retryPolicy, true)
		},
		Workers:        3,
		Pipeline:       pipeline.Standard(pipeline.StandardOptions{CropSize: 24, FlipP: 0.5}),
		GPU:            gpu.AlexNet,
		BatchSize:      8,
		FetchBatchSize: 8,
		JobID:          cfg.Seed,
		DegradedMode:   true,
		Lookahead:      cfg.Lookahead,
	}
	if cfg.MixFlip {
		// The classifier flips its heavy set halfway through epoch 2: the
		// dispatcher classifies exactly once per dispatched sample in stream
		// order, so counting dispatches pins the flip to the same stream
		// position every run — classification (and therefore the per-epoch
		// Heavy counts the controller observes) is fully reproducible even
		// though worker completion order is not.
		var dispatched atomic.Int64
		flipAt := int64(cfg.Samples + cfg.Samples/2)
		tcfg.VarianceAware = true
		tcfg.PrepMetrics = &prepsched.Metrics{}
		tcfg.Classify = func(sample int) prepsched.Class {
			salt, pct := uint64(0xA11CE), uint64(8)
			if dispatched.Add(1) > flipAt {
				salt, pct = 0xB0B, 60
			}
			if heavyMember(cfg.Seed^salt, sample, pct) {
				return prepsched.Heavy
			}
			return prepsched.Light
		}
	}
	tr, err := trainsim.New(tcfg)
	if err != nil {
		return fmt.Errorf("soak: trainer: %w", err)
	}
	defer tr.Close()

	if cfg.MixFlip {
		return mixFlipEpochs(rep, cfg, tr)
	}

	plan, err := policy.NewUniformPlan("soak", tr.N(), 1)
	if err != nil {
		return err
	}
	partitionEpoch := uint64(0)
	if cfg.Class == ClassPartition && cfg.Epochs >= 2 {
		partitionEpoch = uint64(cfg.Epochs/2 + 1)
		rep.WantFailed = len(faulty.ShardMap().Owned(tr.N(), 0))
	}
	for e := uint64(1); e <= uint64(cfg.Epochs); e++ {
		if partitionEpoch != 0 {
			if err := faulty.PartitionShard(0, e == partitionEpoch); err != nil {
				return err
			}
		}
		er, err := tr.RunEpoch(e, plan, nil)
		if err != nil {
			return fmt.Errorf("soak: epoch %d: %w", e, err)
		}
		rep.Epochs = append(rep.Epochs, er)
		rep.Failed += er.Failed
	}
	return nil
}

// mixFlipEpochs drives the variance-aware epochs under an adaptive
// controller: each epoch runs under the controller's current snapshot, the
// observed heavy/light mix is folded back at the boundary, and replans land
// on the live trainer through ApplySnapshot. The controller plans over a
// generated profile trace the same size as the soak dataset, so its plan
// cut depths (0..5) are all servable by the cluster's standard pipeline.
func mixFlipEpochs(rep *Report, cfg Config, tr *trainsim.Trainer) error {
	trace, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(cfg.Samples), cfg.Seed)
	if err != nil {
		return fmt.Errorf("soak: mix trace: %w", err)
	}
	ctrl, err := core.NewController(core.ControllerConfig{
		Trace: trace,
		Env: policy.Env{
			Bandwidth: 1e9, ComputeCores: 4, StorageCores: cfg.Shards,
			StorageSlowdown: 1, GPU: gpu.AlexNet, Shards: cfg.Shards,
		},
		Clock: simclock.NewVirtual(time.Unix(0, 0)),
		// Alpha 1 / hysteresis 1: the boundary observation right after the
		// flip becomes dominant replans immediately; 0.25 is wide enough
		// that the pre-flip sparse mix never drifts from the trace baseline.
		Drift: profiler.DriftConfig{Alpha: 1, MixThreshold: 0.25, Hysteresis: 1},
	})
	if err != nil {
		return fmt.Errorf("soak: mix controller: %w", err)
	}
	ctrl.OnReplan(tr.ApplySnapshot)

	for e := uint64(1); e <= uint64(cfg.Epochs); e++ {
		er, err := tr.RunEpochSnapshot(e, ctrl.Current(), nil)
		if err != nil {
			return fmt.Errorf("soak: epoch %d: %w", e, err)
		}
		rep.Epochs = append(rep.Epochs, er)
		rep.Failed += er.Failed
		if _, _, err := ctrl.ObserveEpoch(profiler.EpochSample{
			Epoch: e, Bandwidth: 1e9, MixHeavy: er.Heavy, MixTotal: er.Samples,
		}); err != nil {
			return fmt.Errorf("soak: epoch %d observe: %w", e, err)
		}
	}
	for _, ev := range ctrl.History()[1:] { // [0] is the initial plan
		rep.Replans++
		rep.ReplanReasons = append(rep.ReplanReasons, ev.Reason)
	}
	snap := tr.PrepMetrics().Snapshot()
	rep.Prepsched = &snap
	return nil
}

// heavyMember deterministically assigns samples to a seeded heavy set
// covering ~pct percent of the dataset (splitmix64 over the sample id).
func heavyMember(seed uint64, sample int, pct uint64) bool {
	x := seed + uint64(sample)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x%100 < pct
}
