// Package compressor implements the paper's first future-work extension:
// selectively compressing transferred artifacts to cut traffic further,
// weighing the bytes saved against the extra storage-node CPU. The real
// tier wraps artifact bytes in a DEFLATE envelope; the model tier adjusts a
// profiled trace (smaller stage sizes, larger op times) so the standard
// decision engine and discrete-event engine account for compression without
// modification.
package compressor

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/policy"
)

// Envelope format: magic byte, uncompressed length (uint32), DEFLATE body.
const (
	envMagic      = 0xC7
	envHeaderSize = 5
	maxBlobSize   = 1 << 30
)

// ErrCorrupt reports a malformed envelope.
var ErrCorrupt = errors.New("compressor: corrupt envelope")

// CompressBlob wraps data in a compressed envelope.
func CompressBlob(data []byte) ([]byte, error) {
	if len(data) > maxBlobSize {
		return nil, fmt.Errorf("compressor: blob of %d bytes too large", len(data))
	}
	var buf bytes.Buffer
	buf.WriteByte(envMagic)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	buf.Write(hdr[:])
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("compressor: init: %w", err)
	}
	if _, err := zw.Write(data); err != nil {
		return nil, fmt.Errorf("compressor: write: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("compressor: close: %w", err)
	}
	return buf.Bytes(), nil
}

// DecompressBlob unwraps a compressed envelope.
func DecompressBlob(data []byte) ([]byte, error) {
	if len(data) < envHeaderSize || data[0] != envMagic {
		return nil, ErrCorrupt
	}
	size := binary.BigEndian.Uint32(data[1:5])
	if size > maxBlobSize {
		return nil, fmt.Errorf("%w: declared size %d", ErrCorrupt, size)
	}
	out := make([]byte, size)
	zr := flate.NewReader(bytes.NewReader(data[envHeaderSize:]))
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if n, err := zr.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		return nil, fmt.Errorf("%w: trailing or malformed data", ErrCorrupt)
	}
	return out, nil
}

// Model estimates, per artifact kind, the achievable compression ratio
// (compressed/original) and the CPU cost of compressing. Calibrated against
// the real DEFLATE path in this package's tests.
type Model struct {
	RawRatio            float64 // stored objects are already compressed: ~1
	ImageRatio          float64 // decoded pixels compress well
	TensorRatio         float64 // float tensors compress a little
	CompressNsPerByte   float64
	DecompressNsPerByte float64
}

// DefaultModel returns the calibrated estimates.
func DefaultModel() Model {
	return Model{
		RawRatio:            1.00,
		ImageRatio:          0.62,
		TensorRatio:         0.85,
		CompressNsPerByte:   14,
		DecompressNsPerByte: 5,
	}
}

// ratioFor maps a pipeline stage to the artifact kind shipped at that
// stage.
func (m Model) ratioFor(stage int) float64 {
	switch {
	case stage == 0:
		return m.RawRatio
	case stage <= 3:
		return m.ImageRatio
	default:
		return m.TensorRatio
	}
}

// KindRatio returns the modeled ratio for an artifact kind.
func (m Model) KindRatio(k pipeline.Kind) float64 {
	switch k {
	case pipeline.KindRaw:
		return m.RawRatio
	case pipeline.KindImage:
		return m.ImageRatio
	case pipeline.KindTensor:
		return m.TensorRatio
	default:
		return 1
	}
}

// Selection is a per-sample compress/don't-compress decision vector.
type Selection struct {
	Flags []bool
}

// Count returns how many samples are flagged.
func (s *Selection) Count() int {
	n := 0
	for _, f := range s.Flags {
		if f {
			n++
		}
	}
	return n
}

// Select greedily flags samples for transfer compression: candidates are
// ranked by bytes-saved per compression CPU second and admitted while the
// epoch remains network-bound — the same shape as SOPHON's own loop, applied
// to the residual traffic after offloading.
func Select(tr *dataset.Trace, plan *policy.Plan, env policy.Env, m Model) (*Selection, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if plan.N() != tr.N() {
		return nil, fmt.Errorf("compressor: plan covers %d samples, trace has %d", plan.N(), tr.N())
	}
	if env.StorageCores == 0 {
		return &Selection{Flags: make([]bool, tr.N())}, nil
	}
	model, err := policy.ModelFor(tr, plan, env)
	if err != nil {
		return nil, err
	}

	type cand struct {
		id     int
		saving int64
		cpu    time.Duration
		eff    float64
	}
	cands := make([]cand, 0, tr.N())
	for i := range tr.Records {
		stage := plan.Split(i)
		size := tr.Records[i].StageSizes[stage]
		ratio := m.ratioFor(stage)
		saving := int64(float64(size) * (1 - ratio))
		if saving <= 0 {
			continue
		}
		cpu := time.Duration(float64(size) * m.CompressNsPerByte)
		eff := float64(saving) / cpu.Seconds()
		cands = append(cands, cand{id: i, saving: saving, cpu: cpu, eff: eff})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].eff != cands[j].eff {
			return cands[i].eff > cands[j].eff
		}
		return cands[i].id < cands[j].id
	})

	sel := &Selection{Flags: make([]bool, tr.N())}
	tg, tcc, tcs, tnet := model.TG, model.TCC, model.TCS, model.TNet
	storage := time.Duration(env.StorageCores)
	for _, c := range cands {
		if !(tnet > tg && tnet > tcc && tnet > tcs) {
			break
		}
		sel.Flags[c.id] = true
		tnet -= time.Duration(float64(c.saving) / env.Bandwidth * float64(time.Second))
		tcs += time.Duration(float64(c.cpu)*env.StorageSlowdown) / storage
	}
	return sel, nil
}

// ApplyToTrace returns a copy of the trace with the selection folded in:
// flagged samples ship a smaller stage-split artifact, pay compression CPU
// on the storage side (attributed to the last offloaded op), and pay
// decompression CPU on the compute side (attributed to the first local op).
// Running the unchanged plan on the adjusted trace through the decision
// model or the discrete-event engine then accounts for compression
// end to end.
func ApplyToTrace(tr *dataset.Trace, plan *policy.Plan, sel *Selection, m Model) (*dataset.Trace, error) {
	if plan.N() != tr.N() || len(sel.Flags) != tr.N() {
		return nil, fmt.Errorf("compressor: sizes disagree: trace %d, plan %d, selection %d",
			tr.N(), plan.N(), len(sel.Flags))
	}
	out := &dataset.Trace{Name: tr.Name + "+compress", Records: make([]dataset.Record, tr.N())}
	copy(out.Records, tr.Records)
	for i := range out.Records {
		if !sel.Flags[i] {
			continue
		}
		stage := plan.Split(i)
		if stage == 0 {
			// Compressing already-compressed raws is modeled as a no-op
			// saving; skip to keep the trace consistent.
			continue
		}
		r := &out.Records[i]
		size := r.StageSizes[stage]
		compressed := int64(float64(size) * m.ratioFor(stage))
		if compressed < 1 {
			compressed = 1
		}
		r.StageSizes[stage] = compressed
		compressCPU := time.Duration(float64(size) * m.CompressNsPerByte)
		r.OpTimes[stage-1] += compressCPU
		if stage < dataset.OpCount {
			decompressCPU := time.Duration(float64(size) * m.DecompressNsPerByte)
			r.OpTimes[stage] += decompressCPU
		}
	}
	return out, nil
}
