package compressor

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// labelCorpus synthesizes the kind of stream the dictionary targets:
// structured per-sample label/metadata records with heavy key repetition.
func labelCorpus(n int, seed uint64) [][]byte {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	classes := []string{"cat", "dog", "car", "ship", "bird"}
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("class=%s;id=%d;bbox=%d,%d,%d,%d;flip=%d",
			classes[rng.IntN(len(classes))], i,
			rng.IntN(64), rng.IntN(64), rng.IntN(64), rng.IntN(64), rng.IntN(2)))
	}
	return out
}

func TestDictRoundTripCorpus(t *testing.T) {
	corpus := labelCorpus(200, 1)
	d, err := TrainDict(corpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Entries() == 0 {
		t.Fatal("training on a repetitive corpus learned no entries")
	}
	for i, s := range corpus {
		enc := d.Encode(s)
		dec, err := d.Decode(enc)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !bytes.Equal(dec, s) {
			t.Fatalf("sample %d: round trip %q -> %q", i, s, dec)
		}
	}
	st := d.Stats(corpus)
	if st.Ratio >= 0.75 {
		t.Fatalf("dictionary ratio %.3f on the label corpus, want < 0.75", st.Ratio)
	}
	if len(d.TopTokens(3)) == 0 {
		t.Fatal("no token expansions reported")
	}
}

// Property: any input round-trips through a trained dictionary, including
// inputs containing the escape and token byte values the corpus never used.
func TestDictRoundTripProperty(t *testing.T) {
	d, err := TrainDict(labelCorpus(100, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte) bool {
		dec, err := d.Decode(d.Encode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A corpus spanning all 256 byte values leaves no room for tokens: training
// degrades to a passthrough dictionary rather than failing.
func TestDictPassthrough(t *testing.T) {
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	d, err := TrainDict([][]byte{all}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Entries() != 0 {
		t.Fatalf("passthrough dictionary has %d entries", d.Entries())
	}
	enc := d.Encode(all)
	if !bytes.Equal(enc, all) {
		t.Fatal("passthrough encode is not a copy")
	}
	dec, err := d.Decode(enc)
	if err != nil || !bytes.Equal(dec, all) {
		t.Fatalf("passthrough round trip failed: %v", err)
	}
}

func TestDictMarshalRoundTrip(t *testing.T) {
	corpus := labelCorpus(150, 3)
	d, err := TrainDict(corpus, 64)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := UnmarshalDict(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range corpus[:20] {
		if !bytes.Equal(d.Encode(s), d2.Encode(s)) {
			t.Fatal("unmarshaled dictionary encodes differently")
		}
		dec, err := d2.Decode(d.Encode(s))
		if err != nil || !bytes.Equal(dec, s) {
			t.Fatalf("cross decode failed: %v", err)
		}
	}

	// Training is deterministic: same corpus, same table.
	d3, err := TrainDict(corpus, 64)
	if err != nil {
		t.Fatal(err)
	}
	blob3, err := d3.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob3) {
		t.Fatal("training is nondeterministic")
	}
}

func TestDictRejectsMalformed(t *testing.T) {
	d, err := TrainDict(labelCorpus(50, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":       blob[:4],
		"bad magic":   append([]byte("XXXXX"), blob[5:]...),
		"bad trailer": append(append([]byte(nil), blob...), 1, 2, 3),
	}
	if d.Entries() > 0 {
		// Forward-referencing entry: left symbol points at itself.
		fwd := append([]byte(nil), blob...)
		p := len(dictMagic) + 3
		fwd[p+1], fwd[p+2] = 0x01, 0x00 // symbol 256 in entry 0
		cases["forward reference"] = fwd
	}
	for name, c := range cases {
		if _, err := UnmarshalDict(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Dangling escape in an encoded stream.
	if d.hasEscape {
		if _, err := d.Decode([]byte{d.escape}); err == nil {
			t.Error("dangling escape accepted")
		}
	}
}
