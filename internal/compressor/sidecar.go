package compressor

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/imaging"
)

// MaterializeProgressive renders every sample of an image set as a
// progressive SJPR container holding scans scans, with the sample's label
// record embedded as a sidecar. Sidecars are compressed with one byte-pair
// dictionary trained over the whole label corpus (TrainDict) — the
// dictionary amortizes across the dataset and is returned for out-of-band
// distribution. Every byte-prefix fetch of a container still carries the
// full sidecar, because the header region precedes every scan.
func MaterializeProgressive(set *dataset.ImageSet, scans int) ([][]byte, *Dict, error) {
	labels := make([][]byte, set.N())
	for i := range labels {
		l, err := set.Label(i)
		if err != nil {
			return nil, nil, err
		}
		labels[i] = l
	}
	dict, err := TrainDict(labels, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("compressor: train sidecar dictionary: %w", err)
	}
	out := make([][]byte, set.N())
	for i := range out {
		m, err := set.Meta(i)
		if err != nil {
			return nil, nil, err
		}
		im, err := set.Image(i)
		if err != nil {
			return nil, nil, err
		}
		out[i], err = imaging.EncodeProgressiveSidecar(im, m.Quality, scans, dict.Encode(labels[i]))
		if err != nil {
			return nil, nil, fmt.Errorf("compressor: materialize progressive sample %d: %w", i, err)
		}
	}
	return out, dict, nil
}

// SidecarLabel extracts and decompresses the label record embedded in a
// progressive container produced by MaterializeProgressive.
func SidecarLabel(container []byte, dict *Dict) ([]byte, error) {
	enc, err := imaging.ProgressiveSidecar(container)
	if err != nil {
		return nil, err
	}
	return dict.Decode(enc)
}
