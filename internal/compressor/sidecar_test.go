package compressor

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/imaging"
)

func TestMaterializeProgressiveRoundTrip(t *testing.T) {
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{
		Name: "prog", N: 8, Seed: 9, MinDim: 40, MaxDim: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	blobs, dict, err := MaterializeProgressive(set, imaging.MaxScans)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 8 || dict == nil {
		t.Fatalf("materialized %d blobs, dict %v", len(blobs), dict)
	}
	for i, b := range blobs {
		if !imaging.IsProgressive(b) {
			t.Fatalf("sample %d is not a progressive container", i)
		}
		// Pixels match the plain SJPG path exactly at full scan depth.
		im, _, err := imaging.DecodeProgressive(b)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := set.Raw(i)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := imaging.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !im.Equal(dec) {
			t.Fatalf("sample %d: progressive pixels differ from SJPG pixels", i)
		}
		// The sidecar label survives compression, and survives prefix
		// truncation — the header region precedes every scan.
		label, err := SidecarLabel(b, dict)
		if err != nil {
			t.Fatal(err)
		}
		want, err := set.Label(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(label, want) {
			t.Fatalf("sample %d label %q, want %q", i, label, want)
		}
		prefix, err := imaging.SlicePrefix(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		fromPrefix, err := SidecarLabel(prefix, dict)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromPrefix, label) {
			t.Fatalf("sample %d: base-scan prefix lost the sidecar", i)
		}
	}
	// Deterministic: a second materialization is bit-identical.
	again, _, err := MaterializeProgressive(set, imaging.MaxScans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blobs {
		if !bytes.Equal(blobs[i], again[i]) {
			t.Fatalf("sample %d differs across materializations", i)
		}
	}
}

func TestSidecarDictionaryCompresses(t *testing.T) {
	set, err := dataset.NewSyntheticImageSet(dataset.SyntheticOptions{Name: "d", N: 64, Seed: 3, MinDim: 32, MaxDim: 48})
	if err != nil {
		t.Fatal(err)
	}
	_, dict, err := MaterializeProgressive(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	var raw, enc int
	for i := 0; i < set.N(); i++ {
		l, err := set.Label(i)
		if err != nil {
			t.Fatal(err)
		}
		raw += len(l)
		enc += len(dict.Encode(l))
	}
	if enc >= raw {
		t.Fatalf("trained dictionary did not compress labels: %d >= %d", enc, raw)
	}
}
