package compressor

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/imaging"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/policy"
)

func env(storageCores int) policy.Env {
	return policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    storageCores,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func openImages(t testing.TB, n int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), 21)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBlobRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("sophon"), 1000)
	comp, err := CompressBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("repetitive data did not compress: %d -> %d", len(data), len(comp))
	}
	got, err := DecompressBlob(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestBlobEmptyAndCorrupt(t *testing.T) {
	comp, err := CompressBlob(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlob(comp)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
	for name, c := range map[string][]byte{
		"empty":     {},
		"bad magic": {0x00, 0, 0, 0, 1},
		"truncated": comp[:3],
		"bad body":  append(append([]byte(nil), comp[:envHeaderSize]...), 0xFF, 0xFF),
	} {
		if _, err := DecompressBlob(c); err == nil {
			t.Errorf("accepted %s", name)
		}
	}
}

// Property: CompressBlob/DecompressBlob is identity for arbitrary bytes.
func TestBlobRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp, err := CompressBlob(data)
		if err != nil {
			return false
		}
		got, err := DecompressBlob(comp)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestModelCalibration checks DefaultModel's per-kind ratios against real
// DEFLATE on real artifacts: image artifacts compress substantially, raw
// SJPG essentially not at all.
func TestModelCalibration(t *testing.T) {
	im, err := imaging.Synthesize(imaging.SynthParams{W: 320, H: 240, Detail: 0.35, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := imaging.EncodeDefault(im)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.DefaultStandard()
	seed := pipeline.Seed{Job: 1, Epoch: 1, Sample: 1}

	ratioOf := func(a pipeline.Artifact) float64 {
		enc, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		comp, err := CompressBlob(enc)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(comp)) / float64(len(enc))
	}

	rawRatio := ratioOf(pipeline.RawArtifact(raw))
	if rawRatio < 0.9 {
		t.Fatalf("raw SJPG compressed to %.2f, expected ~1 (already compressed)", rawRatio)
	}
	img, err := p.RunRange(pipeline.RawArtifact(raw), 0, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	imgRatio := ratioOf(img)
	if imgRatio > 0.85 {
		t.Fatalf("image artifact compressed to only %.2f", imgRatio)
	}
	tensor, err := p.RunRange(img, 2, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	tRatio := ratioOf(tensor)
	if tRatio > 1.05 {
		t.Fatalf("tensor artifact inflated to %.2f", tRatio)
	}
	// The model's assumptions should be in the same regime.
	m := DefaultModel()
	if m.ImageRatio > 0.85 || m.RawRatio < 0.9 {
		t.Fatalf("DefaultModel out of calibration: %+v", m)
	}
}

func TestSelectValidation(t *testing.T) {
	tr := openImages(t, 100)
	plan, _ := policy.NewUniformPlan("p", 100, 2)
	bad := env(4)
	bad.Bandwidth = 0
	if _, err := Select(tr, plan, bad, DefaultModel()); err == nil {
		t.Fatal("accepted bad env")
	}
	short, _ := policy.NewUniformPlan("p", 10, 2)
	if _, err := Select(tr, short, env(4), DefaultModel()); err == nil {
		t.Fatal("accepted mismatched plan")
	}
}

func TestSelectZeroCoresSelectsNothing(t *testing.T) {
	tr := openImages(t, 100)
	plan, _ := policy.NewUniformPlan("p", 100, 0)
	sel, err := Select(tr, plan, env(0), DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 0 {
		t.Fatalf("selected %d with no storage cores", sel.Count())
	}
}

func TestSelectSkipsRawShipments(t *testing.T) {
	tr := openImages(t, 200)
	noOff, _ := policy.NewUniformPlan("no", 200, 0)
	sel, err := Select(tr, noOff, env(8), DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 0 {
		t.Fatalf("selected %d raw shipments for compression (ratio 1)", sel.Count())
	}
}

// TestCompressionReducesEpoch reproduces Ablation B's expected shape: on
// top of a SOPHON plan, selective compression reduces traffic and does not
// slow the epoch.
func TestCompressionReducesEpoch(t *testing.T) {
	tr := openImages(t, 3000)
	e := env(48)
	plan, err := policy.NewSophon().Plan(tr, e)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(tr, plan, e, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() == 0 {
		t.Fatal("nothing selected on an I/O-bound SOPHON plan")
	}
	adjusted, err := ApplyToTrace(tr, plan, sel, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	base, err := engine.Run(engine.Config{Trace: tr, Plan: plan, Env: e})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := engine.Run(engine.Config{Trace: adjusted, Plan: plan, Env: e})
	if err != nil {
		t.Fatal(err)
	}
	if comp.TrafficBytes >= base.TrafficBytes {
		t.Fatalf("compression did not reduce traffic: %d vs %d", comp.TrafficBytes, base.TrafficBytes)
	}
	if float64(comp.EpochTime) > float64(base.EpochTime)*1.01 {
		t.Fatalf("compression slowed the epoch: %v vs %v", comp.EpochTime, base.EpochTime)
	}
}

func TestApplyToTraceAccounting(t *testing.T) {
	tr := openImages(t, 50)
	plan, _ := policy.NewUniformPlan("r", 50, 2)
	sel := &Selection{Flags: make([]bool, 50)}
	sel.Flags[7] = true
	m := DefaultModel()
	adjusted, err := ApplyToTrace(tr, plan, sel, m)
	if err != nil {
		t.Fatal(err)
	}
	// Unflagged records are untouched.
	if adjusted.Records[8] != tr.Records[8] {
		t.Fatal("unflagged record changed")
	}
	orig := &tr.Records[7]
	mod := &adjusted.Records[7]
	wantSize := int64(float64(orig.StageSizes[2]) * m.ImageRatio)
	if mod.StageSizes[2] != wantSize {
		t.Fatalf("stage size %d, want %d", mod.StageSizes[2], wantSize)
	}
	if mod.OpTimes[1] <= orig.OpTimes[1] {
		t.Fatal("compression CPU not charged to the storage-side prefix")
	}
	if mod.OpTimes[2] <= orig.OpTimes[2] {
		t.Fatal("decompression CPU not charged to the local suffix")
	}
	// The original trace is untouched.
	if tr.Records[7].StageSizes[2] == mod.StageSizes[2] {
		t.Fatal("ApplyToTrace mutated its input")
	}

	// Mismatched sizes rejected.
	if _, err := ApplyToTrace(tr, plan, &Selection{Flags: make([]bool, 3)}, m); err == nil {
		t.Fatal("accepted mismatched selection")
	}
}

func TestApplyToTraceFullOffloadEdge(t *testing.T) {
	// Split 5 has no local suffix op; decompression accounting must not
	// panic or write out of bounds.
	tr := openImages(t, 10)
	plan, _ := policy.NewUniformPlan("all", 10, dataset.OpCount)
	sel := &Selection{Flags: make([]bool, 10)}
	for i := range sel.Flags {
		sel.Flags[i] = true
	}
	adjusted, err := ApplyToTrace(tr, plan, sel, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := range adjusted.Records {
		if adjusted.Records[i].StageSizes[dataset.OpCount] >= tr.Records[i].StageSizes[dataset.OpCount] {
			t.Fatalf("record %d tensor stage not compressed", i)
		}
	}
}
