package compressor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Dict is a trained byte-pair dictionary in the OnPair style: training
// greedily promotes the most frequent adjacent symbol pair in a corpus to a
// single-byte token drawn from the byte values the corpus never uses, so
// structured low-entropy streams — label records, metadata sidecars —
// shrink to token sequences with no bit-level entropy coder. Entries are
// hierarchical (a pair's sides may themselves be tokens), and one reserved
// escape byte keeps Encode total: inputs that do use a token's byte value
// round-trip via escaping, merely without gain.
//
// Dictionaries are trained once per stream family and shared out-of-band
// (MarshalBinary); encoded blobs carry only token bytes, which is what
// makes this worthwhile for the progressive container's per-sample sidecar
// — the dictionary amortizes across the dataset instead of riding in every
// record like a DEFLATE header would.
type Dict struct {
	escape    byte
	hasEscape bool
	codes     []byte    // token byte for entry i
	pairs     [][2]rune // entry i expands to two symbols; <256 literal, >=256 entry index+256
	reserved  [256]bool // escape + all token bytes
	entryOf   [256]int  // token byte -> entry index, -1 otherwise
	expSize   []int     // fully-expanded byte length of entry i
}

// Dictionary limits. MaxDictEntries is bounded by the byte values available
// for tokens; maxExpansion rejects unmarshaled dictionaries whose entries
// would expand pathologically.
const (
	MaxDictEntries = 255
	maxExpansion   = 1 << 20
)

// ErrDict reports a malformed dictionary or encoded stream.
var ErrDict = errors.New("compressor: corrupt dictionary data")

// TrainDict builds a dictionary from a corpus of representative streams.
// maxEntries caps the table (clamped to MaxDictEntries and the unused byte
// values available); 0 means the maximum. A corpus that uses all 256 byte
// values yields a passthrough dictionary — Encode degenerates to a copy.
func TrainDict(corpus [][]byte, maxEntries int) (*Dict, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("compressor: negative maxEntries %d", maxEntries)
	}
	if maxEntries == 0 || maxEntries > MaxDictEntries {
		maxEntries = MaxDictEntries
	}
	d := &Dict{}
	for i := range d.entryOf {
		d.entryOf[i] = -1
	}
	var used [256]bool
	total := 0
	for _, s := range corpus {
		total += len(s)
		for _, b := range s {
			used[b] = true
		}
	}
	var unused []byte
	for v := 0; v < 256; v++ {
		if !used[v] {
			unused = append(unused, byte(v))
		}
	}
	if len(unused) < 2 || total == 0 {
		// No room for an escape plus at least one token: passthrough.
		return d, nil
	}
	d.escape = unused[0]
	d.hasEscape = true
	d.reserved[d.escape] = true
	tokens := unused[1:]
	if len(tokens) > maxEntries {
		tokens = tokens[:maxEntries]
	}

	// Work on symbol streams so substitution can never straddle an escape.
	work := make([][]rune, len(corpus))
	for i, s := range corpus {
		w := make([]rune, len(s))
		for j, b := range s {
			w[j] = rune(b)
		}
		work[i] = w
	}

	type pair struct{ l, r rune }
	for _, code := range tokens {
		counts := make(map[pair]int)
		for _, w := range work {
			for j := 0; j+1 < len(w); j++ {
				counts[pair{w[j], w[j+1]}]++
			}
		}
		best := pair{-1, -1}
		bestN := 0
		for p, n := range counts {
			if n > bestN || (n == bestN && (p.l < best.l || (p.l == best.l && p.r < best.r))) {
				best, bestN = p, n
			}
		}
		// A pair seen fewer than 3 times does not pay for its table entry.
		if bestN < 3 {
			break
		}
		sym := rune(256 + len(d.codes))
		d.codes = append(d.codes, code)
		d.pairs = append(d.pairs, [2]rune{best.l, best.r})
		d.reserved[code] = true
		d.entryOf[code] = len(d.codes) - 1
		for i, w := range work {
			work[i] = substitute(w, best.l, best.r, sym)
		}
	}
	d.computeExpansion()
	return d, nil
}

// substitute rewrites w replacing non-overlapping (l, r) pairs with sym,
// scanning left to right.
func substitute(w []rune, l, r, sym rune) []rune {
	out := w[:0]
	for i := 0; i < len(w); i++ {
		if i+1 < len(w) && w[i] == l && w[i+1] == r {
			out = append(out, sym)
			i++
			continue
		}
		out = append(out, w[i])
	}
	return out
}

func (d *Dict) computeExpansion() {
	d.expSize = make([]int, len(d.codes))
	size := func(s rune) int {
		if s < 256 {
			return 1
		}
		return d.expSize[s-256]
	}
	// Entries only reference earlier entries, so one forward pass suffices.
	for i := range d.codes {
		d.expSize[i] = size(d.pairs[i][0]) + size(d.pairs[i][1])
	}
}

// Entries returns the number of trained pair entries.
func (d *Dict) Entries() int { return len(d.codes) }

// Encode compresses data with the trained table. The output is freshly
// allocated; Encode never fails — bytes colliding with reserved token
// values are escaped, so any input round-trips.
func (d *Dict) Encode(data []byte) []byte {
	if len(d.codes) == 0 {
		if !d.hasEscape {
			return append([]byte(nil), data...)
		}
		// Escape-only dictionary: still must protect the escape byte.
	}
	syms := make([]rune, len(data))
	for i, b := range data {
		syms[i] = rune(b)
	}
	for i := range d.codes {
		syms = substitute(syms, d.pairs[i][0], d.pairs[i][1], rune(256+i))
	}
	out := make([]byte, 0, len(syms))
	for _, s := range syms {
		if s >= 256 {
			out = append(out, d.codes[s-256])
			continue
		}
		b := byte(s)
		if d.reserved[b] {
			out = append(out, d.escape, b)
			continue
		}
		out = append(out, b)
	}
	return out
}

// Decode expands an encoded stream. A truncated escape sequence or a token
// byte from a mismatched dictionary surfaces as ErrDict.
func (d *Dict) Decode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*2)
	var stack []rune
	for i := 0; i < len(data); i++ {
		b := data[i]
		if d.hasEscape && b == d.escape {
			i++
			if i >= len(data) {
				return nil, fmt.Errorf("%w: dangling escape", ErrDict)
			}
			out = append(out, data[i])
			continue
		}
		e := d.entryOf[b]
		if e < 0 {
			out = append(out, b)
			continue
		}
		stack = append(stack[:0], rune(256+e))
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s < 256 {
				out = append(out, byte(s))
				continue
			}
			p := d.pairs[s-256]
			stack = append(stack, p[1], p[0])
		}
	}
	return out, nil
}

// dictMagic tags a marshaled dictionary.
var dictMagic = []byte("SDIC1")

// MarshalBinary serializes the dictionary for out-of-band sharing.
func (d *Dict) MarshalBinary() ([]byte, error) {
	out := append([]byte(nil), dictMagic...)
	if d.hasEscape {
		out = append(out, 1, d.escape)
	} else {
		out = append(out, 0, 0)
	}
	out = append(out, byte(len(d.codes)))
	for i, code := range d.codes {
		out = append(out, code)
		out = binary.BigEndian.AppendUint16(out, uint16(d.pairs[i][0]))
		out = binary.BigEndian.AppendUint16(out, uint16(d.pairs[i][1]))
	}
	return out, nil
}

// UnmarshalDict parses a marshaled dictionary, validating that entries only
// reference literals or earlier entries (so expansion terminates) and that
// no entry expands beyond maxExpansion.
func UnmarshalDict(data []byte) (*Dict, error) {
	if len(data) < len(dictMagic)+3 || string(data[:len(dictMagic)]) != string(dictMagic) {
		return nil, ErrDict
	}
	d := &Dict{}
	for i := range d.entryOf {
		d.entryOf[i] = -1
	}
	p := len(dictMagic)
	switch data[p] {
	case 0:
	case 1:
		d.hasEscape = true
		d.escape = data[p+1]
		d.reserved[d.escape] = true
	default:
		return nil, fmt.Errorf("%w: escape flag %d", ErrDict, data[p])
	}
	n := int(data[p+2])
	p += 3
	if len(data) != p+5*n {
		return nil, fmt.Errorf("%w: %d bytes for %d entries", ErrDict, len(data), n)
	}
	if n > 0 && !d.hasEscape {
		return nil, fmt.Errorf("%w: entries without an escape byte", ErrDict)
	}
	for i := 0; i < n; i++ {
		code := data[p]
		l := rune(binary.BigEndian.Uint16(data[p+1 : p+3]))
		r := rune(binary.BigEndian.Uint16(data[p+3 : p+5]))
		p += 5
		if d.reserved[code] {
			return nil, fmt.Errorf("%w: token byte %#x reused", ErrDict, code)
		}
		if l >= rune(256+i) || r >= rune(256+i) {
			return nil, fmt.Errorf("%w: entry %d references symbol %d/%d", ErrDict, i, l, r)
		}
		d.codes = append(d.codes, code)
		d.pairs = append(d.pairs, [2]rune{l, r})
		d.reserved[code] = true
		d.entryOf[code] = i
	}
	d.computeExpansion()
	for i, sz := range d.expSize {
		if sz > maxExpansion {
			return nil, fmt.Errorf("%w: entry %d expands to %d bytes", ErrDict, i, sz)
		}
	}
	return d, nil
}

// DictStats summarizes a dictionary's yield on a corpus, used by the bench
// harness to report sidecar compression honestly.
type DictStats struct {
	Entries    int
	RawBytes   int
	CodedBytes int
	Ratio      float64 // coded/raw; 1 means no gain
}

// Stats encodes every corpus stream and reports the aggregate ratio.
func (d *Dict) Stats(corpus [][]byte) DictStats {
	st := DictStats{Entries: d.Entries()}
	for _, s := range corpus {
		st.RawBytes += len(s)
		st.CodedBytes += len(d.Encode(s))
	}
	if st.RawBytes > 0 {
		st.Ratio = float64(st.CodedBytes) / float64(st.RawBytes)
	} else {
		st.Ratio = 1
	}
	return st
}

// TopTokens returns up to n entry expansions ordered by expanded length,
// longest first — a debugging view of what the dictionary learned.
func (d *Dict) TopTokens(n int) []string {
	idx := make([]int, len(d.codes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if d.expSize[idx[a]] != d.expSize[idx[b]] {
			return d.expSize[idx[a]] > d.expSize[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, 0, n)
	for _, i := range idx[:n] {
		expanded, err := d.Decode([]byte{d.codes[i]})
		if err != nil {
			continue
		}
		out = append(out, string(expanded))
	}
	return out
}
