// Package netsim simulates the constrained storage↔compute network of the
// paper's testbed: a token-bucket rate limiter (the 500 Mbps cap), net.Conn
// wrappers that shape traffic through a shared bucket, and an in-memory pipe
// listener so the full client/server stack can run without real sockets in
// tests.
package netsim

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/simclock"
)

// TokenBucket is a reservation-style rate limiter: WaitN always succeeds
// immediately in bookkeeping terms and sleeps for however long the
// reservation overdraws the bucket. A shared bucket serializes the
// aggregate throughput of all its users, which is exactly how a capped
// physical link behaves.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	tokens float64 // may go negative while reservations drain
	burst  float64
	last   time.Time
	clock  simclock.Clock
}

// NewTokenBucket builds a limiter producing bytesPerSec tokens per second
// with the given burst allowance. A nil clock means the real clock.
func NewTokenBucket(bytesPerSec float64, burst int, clock simclock.Clock) (*TokenBucket, error) {
	if bytesPerSec <= 0 {
		return nil, errors.New("netsim: rate must be positive")
	}
	if burst < 0 {
		return nil, errors.New("netsim: burst must be non-negative")
	}
	if clock == nil {
		clock = simclock.Real()
	}
	return &TokenBucket{
		rate:   bytesPerSec,
		tokens: float64(burst),
		burst:  float64(burst),
		last:   clock.Now(),
		clock:  clock,
	}, nil
}

// Rate returns the configured bytes/second.
func (tb *TokenBucket) Rate() float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.rate
}

// SetRate retunes the bucket to a new bytes/second rate — a live link
// reshape. Accrual up to now is settled at the old rate; reservations made
// after the call drain at the new one.
func (tb *TokenBucket) SetRate(bytesPerSec float64) error {
	if bytesPerSec <= 0 {
		return errors.New("netsim: rate must be positive")
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.clock.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	tb.rate = bytesPerSec
	return nil
}

// WaitN reserves n tokens, sleeping for as long as the reservation
// overdraws the bucket. n <= 0 returns immediately.
func (tb *TokenBucket) WaitN(n int) {
	if n <= 0 {
		return
	}
	tb.mu.Lock()
	now := tb.clock.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	tb.tokens -= float64(n)
	var wait time.Duration
	if tb.tokens < 0 {
		wait = time.Duration(-tb.tokens / tb.rate * float64(time.Second))
	}
	tb.mu.Unlock()
	if wait > 0 {
		tb.clock.Sleep(wait)
	}
}

// shapeChunk bounds how many bytes a single reservation covers so
// concurrent connections sharing one bucket interleave fairly.
const shapeChunk = 32 << 10

// ShapedConn wraps a net.Conn, charging every written byte against a token
// bucket. Reads are unshaped (the peer's writes are charged on its side, or
// by the same shared bucket when both ends wrap it).
type ShapedConn struct {
	net.Conn
	bucket *TokenBucket
}

// Shape wraps conn so writes drain bucket.
func Shape(conn net.Conn, bucket *TokenBucket) *ShapedConn {
	return &ShapedConn{Conn: conn, bucket: bucket}
}

// Write charges the bucket in chunks before forwarding to the underlying
// connection.
func (c *ShapedConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > shapeChunk {
			n = shapeChunk
		}
		c.bucket.WaitN(n)
		m, err := c.Conn.Write(p[written : written+n])
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ShapedListener wraps every accepted connection with a shared bucket,
// modeling all clients contending for one capped link.
type ShapedListener struct {
	net.Listener
	bucket *TokenBucket
}

// ShapeListener builds a ShapedListener.
func ShapeListener(inner net.Listener, bucket *TokenBucket) *ShapedListener {
	return &ShapedListener{Listener: inner, bucket: bucket}
}

// Accept shapes the accepted connection.
func (l *ShapedListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Shape(conn, l.bucket), nil
}

// PipeListener is an in-memory net.Listener: Dial creates a synchronous
// net.Pipe whose server half is delivered to Accept.
type PipeListener struct {
	conns  chan net.Conn
	done   chan struct{}
	closed sync.Once
}

// NewPipeListener returns a ready listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

// ErrListenerClosed is returned by Accept and Dial after Close.
var ErrListenerClosed = errors.New("netsim: pipe listener closed")

// Accept waits for the next dialed connection.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Dial creates a client connection to the listener.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, ErrListenerClosed
	}
}

// Close stops the listener; it is safe to call multiple times.
func (l *PipeListener) Close() error {
	l.closed.Do(func() { close(l.done) })
	return nil
}

// Addr returns a synthetic address.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// Mbps converts megabits/second to bytes/second — the unit the paper uses
// for its 500 Mbps cap.
func Mbps(mbps float64) float64 { return mbps * 1e6 / 8 }
