package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
)

func TestFlakyConnBudget(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Flaky(a, 4)

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()

	if _, err := fc.Write([]byte{1, 2}); err != nil {
		t.Fatalf("write inside budget: %v", err)
	}
	if _, err := fc.Write([]byte{3, 4, 5}); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("write past budget: %v, want ErrInjectedFailure", err)
	}
	// Once failed, every later operation fails too.
	if _, err := fc.Write([]byte{6}); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("write after failure: %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("read after failure: %v", err)
	}
	<-done // peer saw the close
}

// TestFlakyConnConcurrent hammers one FlakyConn from concurrent readers and
// writers (run under -race in CI): the byte budget must trip exactly once,
// every operation after the trip must fail, and the accounting must stay
// consistent under contention.
func TestFlakyConnConcurrent(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Flaky(a, 1<<12)
	defer fc.Close()

	// The peer echoes everything back so the flaky side has bytes to read.
	go func() {
		io.Copy(b, b)
	}()

	const goroutines = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var injected int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 200; i++ {
				var err error
				if g%2 == 0 {
					_, err = fc.Write(buf)
				} else {
					_, err = fc.Read(buf)
				}
				if err != nil {
					if errors.Is(err, ErrInjectedFailure) {
						mu.Lock()
						injected++
						mu.Unlock()
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if injected == 0 {
		t.Fatal("budget never tripped despite writing far past it")
	}
	// After the dust settles the connection is failed for good.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("write after concurrent trip: %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("read after concurrent trip: %v", err)
	}
}
