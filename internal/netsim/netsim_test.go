package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewTokenBucketValidates(t *testing.T) {
	if _, err := NewTokenBucket(0, 0, nil); err == nil {
		t.Fatal("accepted zero rate")
	}
	if _, err := NewTokenBucket(-5, 0, nil); err == nil {
		t.Fatal("accepted negative rate")
	}
	if _, err := NewTokenBucket(100, -1, nil); err == nil {
		t.Fatal("accepted negative burst")
	}
	tb, err := NewTokenBucket(100, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rate() != 100 {
		t.Fatalf("Rate = %v", tb.Rate())
	}
}

func TestTokenBucketBurstIsFree(t *testing.T) {
	tb, _ := NewTokenBucket(1, 1000, nil) // 1 B/s but big burst
	start := time.Now()
	tb.WaitN(1000)
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("burst-sized reservation blocked")
	}
}

func TestTokenBucketEnforcesRate(t *testing.T) {
	// 1 MB/s, no burst: 200 KB must take ≈200 ms.
	tb, _ := NewTokenBucket(1e6, 0, nil)
	start := time.Now()
	for i := 0; i < 20; i++ {
		tb.WaitN(10000)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("200KB at 1MB/s took only %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("200KB at 1MB/s took %v", elapsed)
	}
}

func TestTokenBucketZeroAndNegativeN(t *testing.T) {
	tb, _ := NewTokenBucket(1, 0, nil)
	done := make(chan struct{})
	go func() {
		tb.WaitN(0)
		tb.WaitN(-5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitN(<=0) blocked")
	}
}

// Property: total time for sequential reservations is at least
// (total - burst) / rate, i.e. the bucket never over-delivers.
func TestTokenBucketNeverOverDelivers(t *testing.T) {
	f := func(chunks8 uint8) bool {
		chunks := int(chunks8%5) + 2
		const rate, burst, per = 2e6, 4096, 50000
		tb, err := NewTokenBucket(rate, burst, nil)
		if err != nil {
			return false
		}
		start := time.Now()
		for i := 0; i < chunks; i++ {
			tb.WaitN(per)
		}
		minSec := (float64(chunks*per) - burst) / rate
		// Allow 20% scheduling slack below the theoretical floor.
		return time.Since(start).Seconds() >= minSec*0.8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeListenerRoundTrip(t *testing.T) {
	l := NewPipeListener()
	defer l.Close()

	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Error(err)
			return
		}
		got = buf
		conn.Write([]byte("pong!"))
	}()

	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("ping!")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 5)
	if _, err := io.ReadFull(client, reply); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if string(got) != "ping!" || string(reply) != "pong!" {
		t.Fatalf("round trip got %q / %q", got, reply)
	}
}

func TestPipeListenerClose(t *testing.T) {
	l := NewPipeListener()
	l.Close()
	l.Close() // idempotent
	if _, err := l.Accept(); err != ErrListenerClosed {
		t.Fatalf("Accept after close: %v", err)
	}
	if _, err := l.Dial(); err != ErrListenerClosed {
		t.Fatalf("Dial after close: %v", err)
	}
	if l.Addr().Network() != "pipe" {
		t.Fatal("Addr network")
	}
}

func TestShapedConnDeliversBytesIntact(t *testing.T) {
	l := NewPipeListener()
	defer l.Close()
	tb, _ := NewTokenBucket(100e6, 1<<20, nil)

	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 40000) // 80 KB, > shapeChunk
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		shaped := Shape(conn, tb)
		defer shaped.Close()
		if _, err := shaped.Write(payload); err != nil {
			t.Error(err)
		}
	}()
	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatal("shaped transfer corrupted payload")
	}
}

func TestShapedConnThrottles(t *testing.T) {
	l := NewPipeListener()
	defer l.Close()
	// 1 MB/s with small burst; transfer 300 KB; expect ≥ ~250 ms.
	tb, _ := NewTokenBucket(1e6, 32<<10, nil)
	payload := make([]byte, 300<<10)

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		shaped := Shape(conn, tb)
		defer shaped.Close()
		shaped.Write(payload)
	}()
	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := io.ReadFull(client, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("300KB at 1MB/s finished in %v", elapsed)
	}
}

func TestShapedListenerWrapsAccepted(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := NewTokenBucket(10e6, 1<<16, nil)
	l := ShapeListener(inner, tb)
	defer l.Close()

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if _, ok := conn.(*ShapedConn); !ok {
			t.Error("accepted conn is not shaped")
		}
		conn.Write([]byte("ok"))
		conn.Close()
	}()

	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ok" {
		t.Fatalf("got %q", buf)
	}
}

func TestSharedBucketSerializesConnections(t *testing.T) {
	// Two connections sharing one 1 MB/s bucket should take ~2x longer in
	// aggregate than one connection alone would for the same per-conn bytes.
	l := NewPipeListener()
	defer l.Close()
	tb, _ := NewTokenBucket(1e6, 0, nil)
	const per = 150 << 10

	var wg sync.WaitGroup
	serve := func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			return
		}
		shaped := Shape(conn, tb)
		defer shaped.Close()
		shaped.Write(make([]byte, per))
	}
	wg.Add(2)
	go serve()
	go serve()

	start := time.Now()
	var cg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			c, err := l.Dial()
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			io.ReadFull(c, make([]byte, per))
		}()
	}
	cg.Wait()
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("300KB aggregate at shared 1MB/s finished in %v", elapsed)
	}
}

func TestMbps(t *testing.T) {
	if got := Mbps(500); got != 62.5e6 {
		t.Fatalf("Mbps(500) = %v, want 62.5e6 B/s", got)
	}
}
