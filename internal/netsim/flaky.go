package netsim

import (
	"errors"
	"net"
	"sync"
)

// FlakyConn injects deterministic connection failures: after a configured
// byte budget (reads + writes combined) every operation returns
// ErrInjectedFailure and the underlying connection closes. Used to test
// retry/reconnect paths without real network faults.
type FlakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
	failed bool
}

// ErrInjectedFailure marks a fault introduced by FlakyConn.
var ErrInjectedFailure = errors.New("netsim: injected connection failure")

// Flaky wraps conn with a failure budget of n bytes.
func Flaky(conn net.Conn, n int64) *FlakyConn {
	return &FlakyConn{Conn: conn, budget: n}
}

func (c *FlakyConn) charge(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return ErrInjectedFailure
	}
	c.budget -= int64(n)
	if c.budget < 0 {
		c.failed = true
		c.Conn.Close()
		return ErrInjectedFailure
	}
	return nil
}

// Read forwards to the inner connection until the budget is spent.
func (c *FlakyConn) Read(p []byte) (int, error) {
	if err := c.charge(0); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(p)
	if cerr := c.charge(n); cerr != nil {
		return n, cerr
	}
	return n, err
}

// Write forwards to the inner connection until the budget is spent.
func (c *FlakyConn) Write(p []byte) (int, error) {
	if err := c.charge(len(p)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}
