package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/storage"
)

// TestStatsGauges: the live in-flight and open-connection gauges must show
// up in /stats even for a single watched server.
func TestStatsGauges(t *testing.T) {
	m, counters, _ := testMonitor()
	counters.InFlight.Add(3)
	counters.Connections.Add(2)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["in_flight_requests"].(float64) != 3 {
		t.Fatalf("in_flight_requests = %v", got["in_flight_requests"])
	}
	if got["open_connections"].(float64) != 2 {
		t.Fatalf("open_connections = %v", got["open_connections"])
	}
	if _, ok := got["per_server"]; ok {
		t.Fatal("per_server breakdown emitted for a single source")
	}
}

// TestStatsMulti: several watched servers aggregate at the top level and
// break out per server.
func TestStatsMulti(t *testing.T) {
	a, b := &storage.Counters{}, &storage.Counters{}
	a.SamplesServed.Add(10)
	a.InFlight.Add(1)
	a.Connections.Add(1)
	b.SamplesServed.Add(4)
	b.BytesSent.Add(256)
	b.InFlight.Add(2)
	m := NewMulti(nil, a, b)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.SamplesServed != 14 || got.BytesSent != 256 || got.InFlightRequests != 3 || got.OpenConnections != 1 {
		t.Fatalf("aggregate: %+v", got)
	}
	if len(got.PerServer) != 2 {
		t.Fatalf("per_server has %d entries", len(got.PerServer))
	}
	if got.PerServer[0].Server != 0 || got.PerServer[0].SamplesServed != 10 || got.PerServer[0].InFlightRequests != 1 {
		t.Fatalf("server 0: %+v", got.PerServer[0])
	}
	if got.PerServer[1].Server != 1 || got.PerServer[1].SamplesServed != 4 || got.PerServer[1].BytesSent != 256 {
		t.Fatalf("server 1: %+v", got.PerServer[1])
	}
}

// TestMetricsMulti: /metrics gains the gauge lines and a per-server series.
func TestMetricsMulti(t *testing.T) {
	a, b := &storage.Counters{}, &storage.Counters{}
	a.SamplesServed.Add(6)
	b.InFlight.Add(5)
	m := NewMulti(nil, a, b)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"sophon_in_flight_requests 5",
		"sophon_open_connections 0",
		`sophon_server_samples_served{server="0"} 6`,
		`sophon_server_in_flight_requests{server="1"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
