package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/storage"
)

func testMonitor() (*Server, *storage.Counters, *metrics.Registry) {
	reg := metrics.NewRegistry()
	counters := &storage.Counters{}
	return New(reg, counters), counters, reg
}

func TestHealthz(t *testing.T) {
	m, _, _ := testMonitor()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestStatsJSON(t *testing.T) {
	m, counters, reg := testMonitor()
	counters.SamplesServed.Add(5)
	counters.BytesSent.Add(1024)
	reg.Counter("fetches").Add(5)
	reg.Histogram("latency").Observe(0.5)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["samples_served"].(float64) != 5 {
		t.Fatalf("samples_served = %v", got["samples_served"])
	}
	if got["bytes_sent"].(float64) != 1024 {
		t.Fatalf("bytes_sent = %v", got["bytes_sent"])
	}
	counters2 := got["counters"].(map[string]interface{})
	if counters2["fetches"].(float64) != 5 {
		t.Fatalf("registry counter missing: %v", counters2)
	}
	if _, ok := got["histograms"].(map[string]interface{})["latency"]; !ok {
		t.Fatal("histogram missing")
	}
}

func TestMetricsText(t *testing.T) {
	m, counters, reg := testMonitor()
	counters.OpsExecuted.Add(7)
	reg.Gauge("inflight").Set(2)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{"sophon_ops_executed 7", "sophon_uptime_seconds", "gauge inflight = 2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestNilSources(t *testing.T) {
	m := New(nil, nil)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats with nil sources: %d", resp.StatusCode)
	}
}

func TestListenAndServeLifecycle(t *testing.T) {
	m, counters, _ := testMonitor()
	counters.SamplesServed.Add(1)
	addr, err := m.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("endpoint alive after Close")
	}
	if _, err := m.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("ListenAndServe after Close succeeded")
	}
}
