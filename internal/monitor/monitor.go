// Package monitor exposes the storage server's runtime counters over HTTP —
// /healthz for liveness, /stats for a JSON snapshot, /metrics for a
// plain-text listing — so a deployed sophon-server can be observed like any
// production storage service.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/prefetch"
	"repro/internal/prepsched"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// ControlPlane is the adaptive controller's observability surface: the live
// plan snapshot, the replan history, and the drift detector's gauges. It is
// satisfied by *core.Controller.
type ControlPlane interface {
	Current() *policy.PlanSnapshot
	History() []core.ReplanEvent
	Telemetry() *profiler.Telemetry
}

// FleetPlane is the fleet coordinator's observability surface: the live
// tenant roster with grants and the admission/departure/drift event history.
// It is satisfied by *sched.Coordinator.
type FleetPlane interface {
	Status() sched.FleetStatus
}

// SharedCacheView is the cross-job artifact cache's observability surface.
// It is satisfied by *cache.SharedArtifactCache.
type SharedCacheView interface {
	Snapshot() cache.SharedSnapshot
}

// AdmissionView is the admission controller's observability surface: the
// live byte budget, queue depth, and admitted/queued/shed counters. It is
// satisfied by *storage.AdmissionController.
type AdmissionView interface {
	Stats() storage.AdmissionStats
}

// Server wires a metrics registry and storage counters into an HTTP mux. It
// can watch several storage servers at once (one per shard of a sharded
// deployment): /stats reports both the aggregate and a per-server
// breakdown, including the live in-flight-request and open-connection
// gauges. When a control plane is attached, /stats also reports the current
// plan version, the replan history, and the drift gauges.
type Server struct {
	registry *metrics.Registry
	sources  []*storage.Counters
	clock    simclock.Clock
	start    time.Time
	plane    ControlPlane

	fleet     FleetPlane
	shared    SharedCacheView
	admission AdmissionView
	prefetch  PrefetchView
	staging   StagingView
	prepsched PrepschedView

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
	closed   bool
}

// New builds a monitor over the given sources. Either may be nil.
func New(registry *metrics.Registry, counters *storage.Counters) *Server {
	if counters == nil {
		return NewMulti(registry)
	}
	return NewMulti(registry, counters)
}

// NewMulti builds a monitor over several storage servers' counters — one
// entry per shard, in shard order.
func NewMulti(registry *metrics.Registry, counters ...*storage.Counters) *Server {
	clock := simclock.Real()
	return &Server{registry: registry, sources: counters, clock: clock, start: clock.Now()}
}

// UseClock replaces the monitor's uptime clock (virtual-clock tests and
// simulations); call before serving.
func (s *Server) UseClock(c simclock.Clock) *Server {
	s.clock = c
	s.start = c.Now()
	return s
}

// WatchControlPlane attaches the adaptive controller so /stats and /metrics
// report plan version, replan history, and drift gauges; call before serving.
func (s *Server) WatchControlPlane(p ControlPlane) *Server {
	s.plane = p
	return s
}

// WatchFleet attaches the fleet coordinator so /stats and /metrics report the
// tenant roster, per-tenant grants, and fleet events; call before serving.
func (s *Server) WatchFleet(f FleetPlane) *Server {
	s.fleet = f
	return s
}

// WatchSharedCache attaches the cross-job artifact cache so /stats and
// /metrics report fleet-wide and per-tenant hit/byte accounting; call before
// serving.
func (s *Server) WatchSharedCache(c SharedCacheView) *Server {
	s.shared = c
	return s
}

// WatchAdmission attaches the shared admission controller so /stats and
// /metrics report the in-flight byte budget, queue depth, and shed-load
// counters; call before serving.
func (s *Server) WatchAdmission(a AdmissionView) *Server {
	s.admission = a
	return s
}

// statsSnapshot is the JSON shape of /stats. The top-level fields aggregate
// across every watched server; PerServer breaks them out per shard.
type statsSnapshot struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	SamplesServed    uint64  `json:"samples_served"`
	OpsExecuted      uint64  `json:"ops_executed"`
	BytesSent        uint64  `json:"bytes_sent"`
	ServerCPUNanos   uint64  `json:"server_cpu_nanos"`
	InFlightRequests int64   `json:"in_flight_requests"`
	OpenConnections  int64   `json:"open_connections"`
	// PlanVersion is the highest plan version any watched server observed on
	// the wire; PlanRegressions sums older-than-mark stamps (mixed-version
	// traffic during a swap).
	PlanVersion     uint32 `json:"plan_version"`
	PlanRegressions uint64 `json:"plan_regressions"`
	// ShedLoad sums requests every watched server rejected with a
	// retry-after because admission was saturated.
	ShedLoad uint64 `json:"shed_load"`
	// PrefixServed / PrefixBytesSaved sum raw fetches answered from the
	// progressive fast path (a stored-container prefix sliced in place of
	// the full object) and the wire bytes that avoided.
	PrefixServed     uint64                     `json:"prefix_served"`
	PrefixBytesSaved uint64                     `json:"prefix_bytes_saved"`
	Admission        *storage.AdmissionStats    `json:"admission,omitempty"`
	Prefetch         *prefetch.MetricsSnapshot  `json:"prefetch,omitempty"`
	Staging          *cache.StagingSnapshot     `json:"staging,omitempty"`
	Prepsched        *prepsched.MetricsSnapshot `json:"prepsched,omitempty"`
	ControlPlane     *controlPlaneSnapshot      `json:"control_plane,omitempty"`
	Fleet            *sched.FleetStatus         `json:"fleet,omitempty"`
	SharedCache      *cache.SharedSnapshot      `json:"shared_cache,omitempty"`
	PerServer        []serverSnapshot           `json:"per_server,omitempty"`
	Counters         map[string]int64           `json:"counters,omitempty"`
	Gauges           map[string]int64           `json:"gauges,omitempty"`
	Histograms       map[string]hStats          `json:"histograms,omitempty"`
}

// controlPlaneSnapshot is the adaptive controller's slice of /stats.
type controlPlaneSnapshot struct {
	// PlanVersion / EffectiveEpoch / Reason describe the live snapshot.
	PlanVersion    policy.PlanVersion         `json:"plan_version"`
	EffectiveEpoch uint64                     `json:"effective_epoch"`
	Reason         string                     `json:"reason"`
	Replans        int                        `json:"replans"`
	History        []core.ReplanEvent         `json:"history"`
	Drift          profiler.TelemetrySnapshot `json:"drift"`
}

// serverSnapshot is one storage server's slice of /stats.
type serverSnapshot struct {
	Server           int    `json:"server"`
	SamplesServed    uint64 `json:"samples_served"`
	OpsExecuted      uint64 `json:"ops_executed"`
	BytesSent        uint64 `json:"bytes_sent"`
	ServerCPUNanos   uint64 `json:"server_cpu_nanos"`
	InFlightRequests int64  `json:"in_flight_requests"`
	OpenConnections  int64  `json:"open_connections"`
	PlanVersion      uint32 `json:"plan_version"`
	PlanRegressions  uint64 `json:"plan_regressions"`
	ShedLoad         uint64 `json:"shed_load"`
	PrefixServed     uint64 `json:"prefix_served"`
	PrefixBytesSaved uint64 `json:"prefix_bytes_saved"`
}

type hStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

func (s *Server) snapshot() statsSnapshot {
	out := statsSnapshot{UptimeSeconds: s.clock.Now().Sub(s.start).Seconds()}
	for i, c := range s.sources {
		one := serverSnapshot{
			Server:           i,
			SamplesServed:    c.SamplesServed.Load(),
			OpsExecuted:      c.OpsExecuted.Load(),
			BytesSent:        c.BytesSent.Load(),
			ServerCPUNanos:   c.CPUNanos.Load(),
			InFlightRequests: c.InFlight.Load(),
			OpenConnections:  c.Connections.Load(),
			PlanVersion:      c.PlanVersion.Load(),
			PlanRegressions:  c.PlanRegressions.Load(),
			ShedLoad:         c.ShedLoad.Load(),
			PrefixServed:     c.PrefixServed.Load(),
			PrefixBytesSaved: c.PrefixBytesSaved.Load(),
		}
		out.SamplesServed += one.SamplesServed
		out.OpsExecuted += one.OpsExecuted
		out.BytesSent += one.BytesSent
		out.ServerCPUNanos += one.ServerCPUNanos
		out.InFlightRequests += one.InFlightRequests
		out.OpenConnections += one.OpenConnections
		// The fleet's version is the highest any shard has seen: shards
		// converge to it as stamped traffic arrives.
		if one.PlanVersion > out.PlanVersion {
			out.PlanVersion = one.PlanVersion
		}
		out.PlanRegressions += one.PlanRegressions
		out.ShedLoad += one.ShedLoad
		out.PrefixServed += one.PrefixServed
		out.PrefixBytesSaved += one.PrefixBytesSaved
		if len(s.sources) > 1 {
			out.PerServer = append(out.PerServer, one)
		}
	}
	if s.plane != nil {
		snap := s.plane.Current()
		hist := s.plane.History()
		out.ControlPlane = &controlPlaneSnapshot{
			PlanVersion:    snap.Version,
			EffectiveEpoch: snap.Epoch,
			Reason:         snap.Reason,
			Replans:        len(hist) - 1, // the "initial" event is not a replan
			History:        hist,
			Drift:          s.plane.Telemetry().Snapshot(),
		}
	}
	if s.fleet != nil {
		st := s.fleet.Status()
		out.Fleet = &st
	}
	if s.shared != nil {
		sc := s.shared.Snapshot()
		out.SharedCache = &sc
	}
	if s.admission != nil {
		st := s.admission.Stats()
		out.Admission = &st
	}
	if s.prefetch != nil {
		pf := s.prefetch.Snapshot()
		out.Prefetch = &pf
	}
	if s.staging != nil {
		st := s.staging.Snapshot()
		out.Staging = &st
	}
	if s.prepsched != nil {
		ps := s.prepsched.Snapshot()
		out.Prepsched = &ps
	}
	if s.registry != nil {
		snap := s.registry.Snapshot()
		out.Counters = snap.Counters
		out.Gauges = snap.Gauges
		out.Histograms = make(map[string]hStats, len(snap.Histograms))
		for k, h := range snap.Histograms {
			out.Histograms[k] = hStats{Count: h.Count, Mean: h.Mean, P50: h.P50, P99: h.P99}
		}
	}
	return out
}

// Handler returns the HTTP mux serving the three endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap := s.snapshot()
		fmt.Fprintf(w, "sophon_uptime_seconds %.1f\n", snap.UptimeSeconds)
		fmt.Fprintf(w, "sophon_samples_served %d\n", snap.SamplesServed)
		fmt.Fprintf(w, "sophon_ops_executed %d\n", snap.OpsExecuted)
		fmt.Fprintf(w, "sophon_bytes_sent %d\n", snap.BytesSent)
		fmt.Fprintf(w, "sophon_server_cpu_nanos %d\n", snap.ServerCPUNanos)
		fmt.Fprintf(w, "sophon_in_flight_requests %d\n", snap.InFlightRequests)
		fmt.Fprintf(w, "sophon_open_connections %d\n", snap.OpenConnections)
		fmt.Fprintf(w, "sophon_plan_version %d\n", snap.PlanVersion)
		fmt.Fprintf(w, "sophon_plan_regressions %d\n", snap.PlanRegressions)
		fmt.Fprintf(w, "sophon_shed_load_total %d\n", snap.ShedLoad)
		fmt.Fprintf(w, "sophon_prefix_served_total %d\n", snap.PrefixServed)
		fmt.Fprintf(w, "sophon_prefix_bytes_saved_total %d\n", snap.PrefixBytesSaved)
		for _, ps := range snap.PerServer {
			fmt.Fprintf(w, "sophon_server_samples_served{server=\"%d\"} %d\n", ps.Server, ps.SamplesServed)
			fmt.Fprintf(w, "sophon_server_in_flight_requests{server=\"%d\"} %d\n", ps.Server, ps.InFlightRequests)
			fmt.Fprintf(w, "sophon_server_open_connections{server=\"%d\"} %d\n", ps.Server, ps.OpenConnections)
			fmt.Fprintf(w, "sophon_server_plan_version{server=\"%d\"} %d\n", ps.Server, ps.PlanVersion)
		}
		if ad := snap.Admission; ad != nil {
			fmt.Fprintf(w, "sophon_admission_in_flight_bytes %d\n", ad.InFlightBytes)
			fmt.Fprintf(w, "sophon_admission_max_in_flight_bytes %d\n", ad.MaxInFlightBytes)
			fmt.Fprintf(w, "sophon_admission_queue_depth %d\n", ad.QueueDepth)
			fmt.Fprintf(w, "sophon_admission_admitted_total %d\n", ad.Admitted)
			fmt.Fprintf(w, "sophon_admission_queued_total %d\n", ad.Queued)
			fmt.Fprintf(w, "sophon_admission_shed_total %d\n", ad.Shed)
		}
		writePrefetchMetrics(w, snap.Prefetch, snap.Staging)
		writePrepschedMetrics(w, snap.Prepsched)
		if cp := snap.ControlPlane; cp != nil {
			fmt.Fprintf(w, "sophon_control_plan_version %d\n", cp.PlanVersion)
			fmt.Fprintf(w, "sophon_control_replans_total %d\n", cp.Replans)
			fmt.Fprintf(w, "sophon_drift_bandwidth_bytes_per_sec %g\n", cp.Drift.Bandwidth)
			fmt.Fprintf(w, "sophon_drift_bandwidth_baseline_bytes_per_sec %g\n", cp.Drift.BandwidthBaseline)
			fmt.Fprintf(w, "sophon_drift_storage_occupancy %g\n", cp.Drift.StorageOccupancy)
			fmt.Fprintf(w, "sophon_drift_shards_up %d\n", cp.Drift.ShardsUp)
		}
		if fl := snap.Fleet; fl != nil {
			fmt.Fprintf(w, "sophon_fleet_generation %d\n", fl.Generation)
			fmt.Fprintf(w, "sophon_fleet_tenants %d\n", len(fl.Tenants))
			fmt.Fprintf(w, "sophon_fleet_cores_used %d\n", fl.CoresUsed)
			fmt.Fprintf(w, "sophon_fleet_cores_total %d\n", fl.Cores)
			fmt.Fprintf(w, "sophon_fleet_rejections_total %d\n", fl.Rejections)
			for _, t := range fl.Tenants {
				fmt.Fprintf(w, "sophon_tenant_cores{tenant=\"%s\"} %d\n", t.Name, t.Cores)
				fmt.Fprintf(w, "sophon_tenant_bandwidth_mbps{tenant=\"%s\"} %g\n", t.Name, t.BandwidthMBps)
				fmt.Fprintf(w, "sophon_tenant_offloaded{tenant=\"%s\"} %d\n", t.Name, t.Offloaded)
			}
		}
		if sc := snap.SharedCache; sc != nil {
			fmt.Fprintf(w, "sophon_shared_cache_items %d\n", sc.Items)
			fmt.Fprintf(w, "sophon_shared_cache_bytes %d\n", sc.Bytes)
			fmt.Fprintf(w, "sophon_shared_cache_hits %d\n", sc.Hits)
			fmt.Fprintf(w, "sophon_shared_cache_misses %d\n", sc.Misses)
			fmt.Fprintf(w, "sophon_shared_cache_evictions %d\n", sc.Evictions)
			for _, name := range sc.TenantNames() {
				ts := sc.Tenants[name]
				fmt.Fprintf(w, "sophon_shared_cache_tenant_hits{tenant=\"%s\"} %d\n", name, ts.Hits)
				fmt.Fprintf(w, "sophon_shared_cache_tenant_bytes_saved{tenant=\"%s\"} %d\n", name, ts.BytesSaved)
			}
		}
		if s.registry != nil {
			fmt.Fprint(w, s.registry.Snapshot().String())
		}
	})
	return mux
}

// ListenAndServe starts the HTTP endpoint on addr and returns the bound
// address (useful with ":0").
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("monitor: closed")
	}
	s.listener = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.mu.Unlock()
	go s.httpSrv.Serve(l)
	return l.Addr().String(), nil
}

// Close stops the HTTP endpoint; idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}
