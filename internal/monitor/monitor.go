// Package monitor exposes the storage server's runtime counters over HTTP —
// /healthz for liveness, /stats for a JSON snapshot, /metrics for a
// plain-text listing — so a deployed sophon-server can be observed like any
// production storage service.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// Server wires a metrics registry and storage counters into an HTTP mux.
type Server struct {
	registry *metrics.Registry
	counters *storage.Counters
	start    time.Time

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
	closed   bool
}

// New builds a monitor over the given sources. Either may be nil.
func New(registry *metrics.Registry, counters *storage.Counters) *Server {
	return &Server{registry: registry, counters: counters, start: time.Now()}
}

// statsSnapshot is the JSON shape of /stats.
type statsSnapshot struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	SamplesServed  uint64            `json:"samples_served"`
	OpsExecuted    uint64            `json:"ops_executed"`
	BytesSent      uint64            `json:"bytes_sent"`
	ServerCPUNanos uint64            `json:"server_cpu_nanos"`
	Counters       map[string]int64  `json:"counters,omitempty"`
	Gauges         map[string]int64  `json:"gauges,omitempty"`
	Histograms     map[string]hStats `json:"histograms,omitempty"`
}

type hStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

func (s *Server) snapshot() statsSnapshot {
	out := statsSnapshot{UptimeSeconds: time.Since(s.start).Seconds()}
	if s.counters != nil {
		out.SamplesServed = s.counters.SamplesServed.Load()
		out.OpsExecuted = s.counters.OpsExecuted.Load()
		out.BytesSent = s.counters.BytesSent.Load()
		out.ServerCPUNanos = s.counters.CPUNanos.Load()
	}
	if s.registry != nil {
		snap := s.registry.Snapshot()
		out.Counters = snap.Counters
		out.Gauges = snap.Gauges
		out.Histograms = make(map[string]hStats, len(snap.Histograms))
		for k, h := range snap.Histograms {
			out.Histograms[k] = hStats{Count: h.Count, Mean: h.Mean, P50: h.P50, P99: h.P99}
		}
	}
	return out
}

// Handler returns the HTTP mux serving the three endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap := s.snapshot()
		fmt.Fprintf(w, "sophon_uptime_seconds %.1f\n", snap.UptimeSeconds)
		fmt.Fprintf(w, "sophon_samples_served %d\n", snap.SamplesServed)
		fmt.Fprintf(w, "sophon_ops_executed %d\n", snap.OpsExecuted)
		fmt.Fprintf(w, "sophon_bytes_sent %d\n", snap.BytesSent)
		fmt.Fprintf(w, "sophon_server_cpu_nanos %d\n", snap.ServerCPUNanos)
		if s.registry != nil {
			fmt.Fprint(w, s.registry.Snapshot().String())
		}
	})
	return mux
}

// ListenAndServe starts the HTTP endpoint on addr and returns the bound
// address (useful with ":0").
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("monitor: closed")
	}
	s.listener = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.mu.Unlock()
	go s.httpSrv.Serve(l)
	return l.Addr().String(), nil
}

// Close stops the HTTP endpoint; idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}
