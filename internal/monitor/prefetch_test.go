package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/prefetch"
	"repro/internal/storage"
)

// drainScheduler runs a small clairvoyant schedule against a stub fetch so
// the watched Metrics carry real counts.
func drainScheduler(t *testing.T, m *prefetch.Metrics, ledger *cache.Staging) {
	t.Helper()
	const n = 12
	payload := make([]byte, 64)
	sched, err := prefetch.NewScheduler(prefetch.Config{
		Order:   prefetch.Order(1, 1, n, false),
		Shards:  1,
		Depth:   2,
		Ledger:  ledger,
		Metrics: m,
		Fetch: func(shard int, samples []uint32, splits []int) ([]storage.FetchResult, error) {
			out := make([]storage.FetchResult, len(samples))
			for i, s := range samples {
				out[i] = storage.FetchResult{
					Sample:    s,
					Artifact:  pipeline.RawArtifact(payload),
					WireBytes: len(payload),
				}
			}
			return out, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Stop()
	for i := 0; i < n; i++ {
		it, ok := sched.Next()
		if !ok || it.Err != nil {
			t.Fatalf("item %d: ok=%v %+v", i, ok, it)
		}
	}
	sched.Wait()
}

func TestMonitorReportsPrefetch(t *testing.T) {
	var pf prefetch.Metrics
	ledger, err := cache.NewStaging(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	drainScheduler(t, &pf, ledger)
	pf.NoteReplan()

	m, _, _ := testMonitor()
	m.WatchPrefetch(&pf).WatchStaging(ledger)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Prefetch *prefetch.MetricsSnapshot `json:"prefetch"`
		Staging  *cache.StagingSnapshot    `json:"staging"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Prefetch == nil || got.Staging == nil {
		t.Fatalf("stats missing prefetch/staging blocks: %+v", got)
	}
	if got.Prefetch.Completed != 12 || got.Prefetch.Raw != 12 {
		t.Fatalf("prefetch block %+v, want 12 raw completions", got.Prefetch)
	}
	if got.Prefetch.Replans != 1 {
		t.Fatalf("replans %d, want 1", got.Prefetch.Replans)
	}
	if got.Prefetch.StagedBytes != 0 {
		t.Fatalf("staged bytes %d after full drain", got.Prefetch.StagedBytes)
	}
	if got.Staging.Capacity != 1<<20 || got.Staging.UsedBytes != 0 {
		t.Fatalf("staging block %+v, want drained 1MiB ledger", got.Staging)
	}
	if got.Staging.PeakBytes == 0 {
		t.Fatal("staging peak never moved — the ledger was not charged")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"sophon_prefetch_issued_total 12",
		"sophon_prefetch_completed_total 12",
		"sophon_prefetch_failed_total 0",
		"sophon_prefetch_raw_total 12",
		"sophon_prefetch_staged_bytes 0",
		"sophon_prefetch_replans_total 1",
		"sophon_prefetch_staging_used_bytes 0",
		"sophon_prefetch_staging_capacity_bytes 1048576",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMonitorWithoutPrefetch: an unwatched monitor must not emit the
// prefetch family at all — the block is strictly opt-in.
func TestMonitorWithoutPrefetch(t *testing.T) {
	m, _, _ := testMonitor()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "sophon_prefetch_") {
		t.Fatal("prefetch gauges leaked into an unwatched monitor")
	}
}
