package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/storage"
)

// TestHammerScrapeDuringCoordinatorChurn exists for the race detector: it
// scrapes /stats and /metrics over live HTTP while the watched fleet
// coordinator churns through admissions, departures, and bandwidth
// observations, the shared admission controller cycles its byte budget,
// and the storage counters tick. Under `go test -race ./internal/monitor`
// any observability path that reads coordinator or admission state without
// synchronization fails here.
func TestHammerScrapeDuringCoordinatorChurn(t *testing.T) {
	coord, err := sched.NewCoordinator(sched.FleetConfig{Cores: 8, Bandwidth: netsim.Mbps(1000)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(300), 17)
	if err != nil {
		t.Fatal(err)
	}
	env := policy.Env{Bandwidth: netsim.Mbps(1000), ComputeCores: 16, StorageSlowdown: 1, GPU: gpu.AlexNet}
	// One resident tenant keeps the roster non-empty between churn cycles.
	if _, err := coord.Admit(sched.Tenant{Name: "resident", Trace: tr, Env: env, Dataset: 3}); err != nil {
		t.Fatal(err)
	}
	adm, err := storage.NewAdmissionController(storage.AdmissionConfig{
		MaxInFlightBytes:  1 << 20,
		MaxQueuePerTenant: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	counters := []*storage.Counters{{}, {}}
	m := NewMulti(nil, counters...)
	m.WatchFleet(coord).WatchAdmission(adm)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	const churnCycles = 30
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Coordinator churn: admit a transient tenant, nudge the observed
	// bandwidth (every flip past the drift threshold replans the fleet),
	// then depart — each step publishing new grants mid-scrape.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < churnCycles; i++ {
			if _, err := coord.Admit(sched.Tenant{Name: "churn", Trace: tr, Env: env, Dataset: 3}); err != nil {
				t.Errorf("admit: %v", err)
				return
			}
			measured := netsim.Mbps(600)
			if i%2 == 0 {
				measured = netsim.Mbps(1000)
			}
			if _, err := coord.ObserveBandwidth(measured); err != nil {
				t.Errorf("observe: %v", err)
				return
			}
			if err := coord.Depart("churn"); err != nil {
				t.Errorf("depart: %v", err)
				return
			}
		}
	}()

	// Admission churn: cycle the byte budget so in-flight bytes, queue
	// depth, and the admitted/shed counters move under the scrapers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			release, err := adm.Acquire(i%3, 512<<10, nil)
			if err != nil {
				continue
			}
			release()
		}
	}()

	// Counter churn: the per-shard atomics the aggregate sums over.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := counters[i%len(counters)]
			c.SamplesServed.Add(1)
			c.BytesSent.Add(4096)
			c.InFlight.Add(1)
			c.InFlight.Add(-1)
			c.ShedLoad.Add(1)
		}
	}()

	// Scrapers: alternate /stats and /metrics over real HTTP until the
	// churn finishes. Every /stats body must stay parseable JSON.
	scrape := func(path string) ([]byte, error) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := "/stats"
			if g%2 == 1 {
				path = "/metrics"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := scrape(path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				if path == "/stats" {
					var snap statsSnapshot
					if err := json.Unmarshal(body, &snap); err != nil {
						t.Errorf("unmarshal /stats: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The dust has settled: one final scrape must reflect the resident
	// tenant and the admission counters the churn left behind.
	body, err := scrape("/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap statsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Fleet == nil || len(snap.Fleet.Tenants) != 1 {
		t.Fatalf("final fleet snapshot = %+v, want 1 resident tenant", snap.Fleet)
	}
	if snap.Admission == nil || snap.Admission.Admitted == 0 {
		t.Fatalf("final admission snapshot = %+v, want admitted > 0", snap.Admission)
	}
	if snap.ShedLoad == 0 || snap.SamplesServed == 0 {
		t.Fatalf("final counters: shed=%d served=%d, want both > 0", snap.ShedLoad, snap.SamplesServed)
	}
}
