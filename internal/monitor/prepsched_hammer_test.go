package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/prepsched"
)

// TestHammerScrapeDuringPrepschedChurn extends the hammer pattern to the
// variance-aware scheduler: a real work-stealing pool churns under N worker
// goroutines plus dedicated stealer-like consumers, the classifier's
// threshold is retuned mid-flight while its class counters climb, and live
// /stats + /metrics scrapes run through it all. Under `go test -race` any
// unsynchronized read in the prepsched observability path fails here — and
// the conservation check at the end proves the churn itself lost nothing.
func TestHammerScrapeDuringPrepschedChurn(t *testing.T) {
	const (
		workers = 4
		samples = 20000
	)
	var pm prepsched.Metrics
	pool, err := prepsched.NewPool[int](workers, 4*workers, &pm)
	if err != nil {
		t.Fatal(err)
	}
	// Mean 100µs, default ratio 4 → threshold 400µs: the 2ms samples are
	// heavy at the initial threshold and at every retuned one below.
	cl, err := prepsched.NewClassifier([]time.Duration{
		100 * time.Microsecond, 100 * time.Microsecond, 100 * time.Microsecond, 100 * time.Microsecond,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}

	m := NewMulti(nil)
	m.WatchPrepsched(&pm)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Workers: drain the pool (own pops + steals) until it closes.
	var takenMu sync.Mutex
	taken := make(map[int]struct{}, samples)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				v, _, ok := pool.Take(w)
				if !ok {
					return
				}
				takenMu.Lock()
				if _, dup := taken[v]; dup {
					t.Errorf("sample %d taken twice", v)
				}
				taken[v] = struct{}{}
				takenMu.Unlock()
			}
		}(w)
	}

	// Dispatcher: classify through the live classifier (cost keyed off the
	// sample) and push the full stream, then close the pool and stop the
	// churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		defer pool.Close()
		for i := 0; i < samples; i++ {
			cost := 100 * time.Microsecond
			if i%19 == 0 {
				cost = 2 * time.Millisecond
			}
			if !pool.Dispatch(i, i, cl.Classify(cost)) {
				t.Errorf("dispatch %d rejected", i)
				return
			}
		}
	}()

	// Classifier churn: an adaptive controller retuning the threshold while
	// the dispatcher classifies against it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cl.SetThreshold(time.Duration(400+i%400) * time.Microsecond)
			_ = cl.HeavyFrac()
			_, _ = cl.Observed()
		}
	}()

	// Scrapers: alternate /stats and /metrics over real HTTP until the
	// stream drains. Every /stats body must stay parseable JSON.
	scrape := func(path string) ([]byte, error) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := "/stats"
			if g%2 == 1 {
				path = "/metrics"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := scrape(path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				if path == "/stats" {
					var snap statsSnapshot
					if err := json.Unmarshal(body, &snap); err != nil {
						t.Errorf("unmarshal /stats: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Conservation under churn: every dispatched sample came out exactly
	// once, and the final scrape reflects the totals.
	if len(taken) != samples {
		t.Fatalf("took %d of %d dispatched samples", len(taken), samples)
	}
	body, err := scrape("/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap statsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Prepsched == nil {
		t.Fatal("final /stats has no prepsched block")
	}
	if snap.Prepsched.Light+snap.Prepsched.Heavy != samples {
		t.Fatalf("final prepsched dispatch %d+%d, want %d", snap.Prepsched.Light, snap.Prepsched.Heavy, samples)
	}
	if snap.Prepsched.OwnPops+snap.Prepsched.Steals != samples {
		t.Fatalf("final prepsched takes %d+%d, want %d", snap.Prepsched.OwnPops, snap.Prepsched.Steals, samples)
	}
	if snap.Prepsched.Heavy == 0 || snap.Prepsched.HeavyFrac <= 0 {
		t.Fatalf("heavy lane never exercised: %+v", snap.Prepsched)
	}
	metricsBody, err := scrape("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sophon_prepsched_light_total ",
		"sophon_prepsched_heavy_total ",
		"sophon_prepsched_own_pops_total ",
		"sophon_prepsched_steals_total ",
		"sophon_prepsched_stalls_total ",
		"sophon_prepsched_heavy_frac ",
	} {
		if !containsLine(metricsBody, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}
}

func containsLine(body []byte, prefix string) bool {
	for _, line := range splitLines(body) {
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

func splitLines(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, string(b[start:i]))
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, string(b[start:]))
	}
	return out
}
