package monitor

// The clairvoyant prefetch scheduler's observability surface: WatchPrefetch
// attaches a trainer's prefetch counters, WatchStaging the shared staging
// ledger, and /stats gains a "prefetch" block while /metrics gains the
// sophon_prefetch_* gauge family.

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/prefetch"
)

// PrefetchView is the clairvoyant prefetch scheduler's observability
// surface. It is satisfied by *prefetch.Metrics.
type PrefetchView interface {
	Snapshot() prefetch.MetricsSnapshot
}

// StagingView is the staging ledger's observability surface. It is
// satisfied by *cache.Staging.
type StagingView interface {
	Snapshot() cache.StagingSnapshot
}

// WatchPrefetch attaches a trainer's prefetch metrics so /stats and /metrics
// report the clairvoyant scheduler's issue/delivery/stall counters; call
// before serving.
func (s *Server) WatchPrefetch(p PrefetchView) *Server {
	s.prefetch = p
	return s
}

// WatchStaging attaches the staging-byte ledger so /stats and /metrics
// report the prefetch staging budget's occupancy; call before serving.
func (s *Server) WatchStaging(v StagingView) *Server {
	s.staging = v
	return s
}

// writePrefetchMetrics emits the sophon_prefetch_* family for /metrics.
func writePrefetchMetrics(w io.Writer, pf *prefetch.MetricsSnapshot, st *cache.StagingSnapshot) {
	if pf != nil {
		fmt.Fprintf(w, "sophon_prefetch_issued_total %d\n", pf.Issued)
		fmt.Fprintf(w, "sophon_prefetch_completed_total %d\n", pf.Completed)
		fmt.Fprintf(w, "sophon_prefetch_failed_total %d\n", pf.Failed)
		fmt.Fprintf(w, "sophon_prefetch_cache_hits_total %d\n", pf.CacheHits)
		fmt.Fprintf(w, "sophon_prefetch_offloaded_total %d\n", pf.Offloaded)
		fmt.Fprintf(w, "sophon_prefetch_raw_total %d\n", pf.Raw)
		fmt.Fprintf(w, "sophon_prefetch_staged_bytes %d\n", pf.StagedBytes)
		fmt.Fprintf(w, "sophon_prefetch_staged_peak_bytes %d\n", pf.StagedPeakBytes)
		fmt.Fprintf(w, "sophon_prefetch_budget_stalls_total %d\n", pf.BudgetStalls)
		fmt.Fprintf(w, "sophon_prefetch_horizon_stalls_total %d\n", pf.HorizonStalls)
		fmt.Fprintf(w, "sophon_prefetch_replans_total %d\n", pf.Replans)
	}
	if st != nil {
		fmt.Fprintf(w, "sophon_prefetch_staging_used_bytes %d\n", st.UsedBytes)
		fmt.Fprintf(w, "sophon_prefetch_staging_peak_bytes %d\n", st.PeakBytes)
		fmt.Fprintf(w, "sophon_prefetch_staging_capacity_bytes %d\n", st.Capacity)
	}
}
