package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sched"
)

func fleetFixture(t *testing.T) (*sched.Coordinator, *cache.SharedArtifactCache) {
	t.Helper()
	coord, err := sched.NewCoordinator(sched.FleetConfig{Cores: 4, Bandwidth: netsim.Mbps(500)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	env := policy.Env{Bandwidth: netsim.Mbps(500), ComputeCores: 16, StorageSlowdown: 1, GPU: gpu.AlexNet}
	for _, name := range []string{"alpha", "beta"} {
		if _, err := coord.Admit(sched.Tenant{Name: name, Trace: tr, Env: env, Dataset: 5}); err != nil {
			t.Fatal(err)
		}
	}
	shared, err := cache.NewShared(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	shared.Put("alpha", cache.ArtifactKey{Dataset: 5, Sample: 1}, []byte{1, 2, 3})
	if _, ok := shared.Get("beta", cache.ArtifactKey{Dataset: 5, Sample: 1}); !ok {
		t.Fatal("fixture cache miss")
	}
	return coord, shared
}

func TestStatsReportsFleetAndSharedCache(t *testing.T) {
	coord, shared := fleetFixture(t)
	m, _, _ := testMonitor()
	m.WatchFleet(coord).WatchSharedCache(shared)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Fleet *struct {
			Generation uint64 `json:"generation"`
			CoresUsed  int    `json:"cores_used"`
			Tenants    []struct {
				Name  string `json:"name"`
				Cores int    `json:"cores"`
			} `json:"tenants"`
			History []json.RawMessage `json:"history"`
		} `json:"fleet"`
		SharedCache *struct {
			Items   int                               `json:"items"`
			Hits    int64                             `json:"hits"`
			Tenants map[string]map[string]json.Number `json:"tenants"`
		} `json:"shared_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Fleet == nil {
		t.Fatal("/stats has no fleet section")
	}
	if got.Fleet.Generation != 2 || len(got.Fleet.Tenants) != 2 {
		t.Fatalf("fleet section: generation %d, %d tenants", got.Fleet.Generation, len(got.Fleet.Tenants))
	}
	if got.Fleet.Tenants[0].Name != "alpha" || got.Fleet.Tenants[1].Name != "beta" {
		t.Fatalf("tenants out of admission order: %+v", got.Fleet.Tenants)
	}
	if len(got.Fleet.History) != 2 {
		t.Fatalf("history has %d events", len(got.Fleet.History))
	}
	if got.SharedCache == nil {
		t.Fatal("/stats has no shared_cache section")
	}
	if got.SharedCache.Items != 1 || got.SharedCache.Hits != 1 {
		t.Fatalf("shared cache section: %+v", got.SharedCache)
	}
	if _, ok := got.SharedCache.Tenants["beta"]; !ok {
		t.Fatal("per-tenant cache accounting missing")
	}
}

func TestMetricsReportsFleetAndSharedCache(t *testing.T) {
	coord, shared := fleetFixture(t)
	m, _, _ := testMonitor()
	m.WatchFleet(coord).WatchSharedCache(shared)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"sophon_fleet_generation 2",
		"sophon_fleet_tenants 2",
		"sophon_tenant_cores{tenant=\"alpha\"}",
		"sophon_shared_cache_items 1",
		"sophon_shared_cache_hits 1",
		"sophon_shared_cache_tenant_hits{tenant=\"beta\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
