package monitor

// The variance-aware preprocessing scheduler's observability surface:
// WatchPrepsched attaches a trainer's prepsched counters, and /stats gains a
// "prepsched" block while /metrics gains the sophon_prepsched_* gauge
// family.

import (
	"fmt"
	"io"

	"repro/internal/prepsched"
)

// PrepschedView is the variance-aware preprocessing scheduler's
// observability surface. It is satisfied by *prepsched.Metrics.
type PrepschedView interface {
	Snapshot() prepsched.MetricsSnapshot
}

// WatchPrepsched attaches a trainer's prepsched metrics so /stats and
// /metrics report the work-stealing pool's class/steal/stall counters; call
// before serving.
func (s *Server) WatchPrepsched(v PrepschedView) *Server {
	s.prepsched = v
	return s
}

// writePrepschedMetrics emits the sophon_prepsched_* family for /metrics.
func writePrepschedMetrics(w io.Writer, ps *prepsched.MetricsSnapshot) {
	if ps == nil {
		return
	}
	fmt.Fprintf(w, "sophon_prepsched_light_total %d\n", ps.Light)
	fmt.Fprintf(w, "sophon_prepsched_heavy_total %d\n", ps.Heavy)
	fmt.Fprintf(w, "sophon_prepsched_own_pops_total %d\n", ps.OwnPops)
	fmt.Fprintf(w, "sophon_prepsched_steals_total %d\n", ps.Steals)
	fmt.Fprintf(w, "sophon_prepsched_stalls_total %d\n", ps.Stalls)
	fmt.Fprintf(w, "sophon_prepsched_heavy_frac %g\n", ps.HeavyFrac)
}
