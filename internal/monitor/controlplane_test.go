package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/storage"
)

func testController(t *testing.T) *core.Controller {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(200), 9)
	if err != nil {
		t.Fatal(err)
	}
	env := policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    4,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
	c, err := core.NewController(core.ControllerConfig{
		Trace: tr, Env: env,
		Clock: simclock.NewVirtual(time.Unix(0, 0)),
		Drift: profiler.DriftConfig{Alpha: 1, RelThreshold: 0.2, Hysteresis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStatsReportsControlPlane attaches a controller, forces one replan, and
// checks /stats carries the plan version, the replan history with reasons,
// and the drift gauges — plus the wire-observed version from the storage
// counters.
func TestStatsReportsControlPlane(t *testing.T) {
	ctrl := testController(t)
	counters := &storage.Counters{}
	counters.ObservePlanVersion(2)
	counters.ObservePlanVersion(1) // stale stamp during the swap

	m := New(nil, counters).WatchControlPlane(ctrl).UseClock(simclock.NewVirtual(time.Unix(0, 0)))
	if _, _, err := ctrl.ObserveEpoch(profiler.EpochSample{Epoch: 1, Bandwidth: netsim.Mbps(100)}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		PlanVersion     uint32 `json:"plan_version"`
		PlanRegressions uint64 `json:"plan_regressions"`
		ControlPlane    *struct {
			PlanVersion    uint32 `json:"plan_version"`
			EffectiveEpoch uint64 `json:"effective_epoch"`
			Reason         string `json:"reason"`
			Replans        int    `json:"replans"`
			History        []struct {
				Version uint32 `json:"version"`
				Reason  string `json:"reason"`
			} `json:"history"`
			Drift struct {
				Bandwidth float64 `json:"bandwidth"`
			} `json:"drift"`
		} `json:"control_plane"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.PlanVersion != 2 || got.PlanRegressions != 1 {
		t.Fatalf("wire-observed version/regressions = %d/%d", got.PlanVersion, got.PlanRegressions)
	}
	cp := got.ControlPlane
	if cp == nil {
		t.Fatal("control_plane missing from /stats")
	}
	if cp.PlanVersion != 2 || cp.EffectiveEpoch != 2 || cp.Replans != 1 {
		t.Fatalf("control plane snapshot %+v", cp)
	}
	if cp.Reason != "bandwidth-drift" {
		t.Fatalf("reason %q", cp.Reason)
	}
	if len(cp.History) != 2 || cp.History[0].Reason != "initial" || cp.History[1].Version != 2 {
		t.Fatalf("history %+v", cp.History)
	}
	if cp.Drift.Bandwidth != netsim.Mbps(100) {
		t.Fatalf("drift bandwidth gauge %v", cp.Drift.Bandwidth)
	}
}

// TestMetricsReportsControlPlane checks the plain-text listing.
func TestMetricsReportsControlPlane(t *testing.T) {
	ctrl := testController(t)
	counters := &storage.Counters{}
	counters.ObservePlanVersion(1)
	m := New(nil, counters).WatchControlPlane(ctrl)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"sophon_plan_version 1",
		"sophon_plan_regressions 0",
		"sophon_control_plan_version 1",
		"sophon_control_replans_total 0",
		"sophon_drift_bandwidth_bytes_per_sec",
		"sophon_drift_shards_up",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMonitorVirtualClockUptime: the injected clock drives uptime, so a
// monitor inside a simulation reports virtual time.
func TestMonitorVirtualClockUptime(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	m := New(nil, nil).UseClock(clock)
	clock.Advance(90 * time.Second)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.UptimeSeconds != 90 {
		t.Fatalf("uptime %v under virtual clock, want 90", got.UptimeSeconds)
	}
}
