// Package wfq implements a virtual-time weighted fair queue (start-time
// fair queueing) over opaque per-tenant FIFOs.
//
// Each tenant owns a FIFO of items; every item carries a cost (typically
// bytes). When an item is pushed it is stamped with a virtual finish time
//
//	vft = max(globalVirtualTime, tenantLastVft) + cost/weight
//
// and Pop always returns the queued item with the smallest virtual finish
// time, ties broken by tenant id then arrival order. Over any busy interval
// each tenant therefore drains throughput proportional to its weight,
// independent of how bursty its arrivals are — the property the storage
// tier's admission controller needs so one greedy trainer cannot starve the
// rest of the fleet.
//
// The queue is not safe for concurrent use; callers hold their own lock.
package wfq

// Item is a queued entry. The zero Item is not meaningful; items are
// created by Push and handed back by Pop/Peek.
type Item struct {
	Tenant uint64
	Cost   float64
	// Value is the caller's payload (e.g. a waiter channel or request).
	Value any

	vft float64
	seq uint64
}

// VFT returns the item's stamped virtual finish time. Exposed for tests
// and for discrete-event simulations that want to mirror the server's
// scheduling decisions exactly.
func (it *Item) VFT() float64 { return it.vft }

type tenantQueue struct {
	items   []*Item
	lastVft float64
	weight  float64
}

// Queue is a weighted fair queue across tenants.
type Queue struct {
	tenants map[uint64]*tenantQueue
	vtime   float64
	seq     uint64
	length  int
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{tenants: make(map[uint64]*tenantQueue)}
}

// Len reports the total number of queued items across all tenants.
func (q *Queue) Len() int { return q.length }

// TenantLen reports the number of queued items for one tenant.
func (q *Queue) TenantLen(tenant uint64) int {
	tq := q.tenants[tenant]
	if tq == nil {
		return 0
	}
	return len(tq.items)
}

// Push enqueues a value for tenant with the given weight and cost and
// returns the stamped item. Weight must be positive; zero or negative
// weights are clamped to 1 so a misconfigured tenant degrades to unit
// share instead of corrupting the virtual clock. Cost must be
// non-negative; a zero-cost item still serializes behind the tenant's
// earlier items.
func (q *Queue) Push(tenant uint64, weight, cost float64, value any) *Item {
	if weight <= 0 {
		weight = 1
	}
	if cost < 0 {
		cost = 0
	}
	tq := q.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{lastVft: q.vtime}
		q.tenants[tenant] = tq
	}
	tq.weight = weight
	start := q.vtime
	if tq.lastVft > start {
		start = tq.lastVft
	}
	it := &Item{
		Tenant: tenant,
		Cost:   cost,
		Value:  value,
		vft:    start + cost/weight,
		seq:    q.seq,
	}
	q.seq++
	tq.lastVft = it.vft
	tq.items = append(tq.items, it)
	q.length++
	return it
}

// head returns the tenant queue whose head item has the minimum virtual
// finish time, or nil if the queue is empty. Ties break by (vft, seq) so
// the order is fully deterministic.
func (q *Queue) head() *tenantQueue {
	var best *tenantQueue
	for _, tq := range q.tenants {
		if len(tq.items) == 0 {
			continue
		}
		if best == nil {
			best = tq
			continue
		}
		h, b := tq.items[0], best.items[0]
		if h.vft < b.vft || (h.vft == b.vft && h.seq < b.seq) {
			best = tq
		}
	}
	return best
}

// Peek returns the item Pop would return next without removing it, or nil
// if the queue is empty.
func (q *Queue) Peek() *Item {
	tq := q.head()
	if tq == nil {
		return nil
	}
	return tq.items[0]
}

// Pop removes and returns the item with the smallest virtual finish time,
// or nil if the queue is empty. The global virtual clock advances to the
// popped item's finish time (it never moves backwards).
func (q *Queue) Pop() *Item {
	tq := q.head()
	if tq == nil {
		return nil
	}
	it := tq.items[0]
	copy(tq.items, tq.items[1:])
	tq.items[len(tq.items)-1] = nil
	tq.items = tq.items[:len(tq.items)-1]
	q.length--
	if it.vft > q.vtime {
		q.vtime = it.vft
	}
	return it
}

// Remove unlinks a specific item (identified by pointer) from its tenant
// FIFO, returning true if it was found. Used to drop cancelled waiters
// without disturbing the rest of the queue; the virtual clock is left
// untouched so remaining stamps stay valid.
func (q *Queue) Remove(it *Item) bool {
	tq := q.tenants[it.Tenant]
	if tq == nil {
		return false
	}
	for i, cur := range tq.items {
		if cur == it {
			copy(tq.items[i:], tq.items[i+1:])
			tq.items[len(tq.items)-1] = nil
			tq.items = tq.items[:len(tq.items)-1]
			q.length--
			return true
		}
	}
	return false
}
