package wfq

import "testing"

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Fatal("Pop/Peek on empty queue should return nil")
	}
}

func TestFIFOWithinTenant(t *testing.T) {
	q := New()
	for i := 0; i < 5; i++ {
		q.Push(1, 1, 100, i)
	}
	for i := 0; i < 5; i++ {
		it := q.Pop()
		if it == nil || it.Value.(int) != i {
			t.Fatalf("pop %d: got %v", i, it)
		}
	}
}

// TestWeightedShare drains a long busy period with two backlogged tenants
// at weights 3:1 and checks the served-cost ratio tracks the weights.
func TestWeightedShare(t *testing.T) {
	q := New()
	const items = 300
	for i := 0; i < items; i++ {
		q.Push(1, 3, 100, nil)
		q.Push(2, 1, 100, nil)
	}
	served := map[uint64]float64{}
	// Serve the first half of the backlog; both tenants stay backlogged
	// throughout so the fair-share property applies cleanly.
	for i := 0; i < items; i++ {
		it := q.Pop()
		served[it.Tenant] += it.Cost
	}
	ratio := served[1] / served[2]
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("served ratio = %.2f (t1=%v t2=%v), want ~3", ratio, served[1], served[2])
	}
}

// TestCostWeighting checks that a tenant sending big items gets the same
// byte share as a tenant sending many small ones.
func TestCostWeighting(t *testing.T) {
	q := New()
	for i := 0; i < 40; i++ {
		q.Push(1, 1, 1000, nil) // few big
	}
	for i := 0; i < 400; i++ {
		q.Push(2, 1, 100, nil) // many small
	}
	served := map[uint64]float64{}
	for i := 0; i < 220; i++ { // drain half the total cost
		it := q.Pop()
		served[it.Tenant] += it.Cost
	}
	ratio := served[1] / served[2]
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte-share ratio = %.2f, want ~1", ratio)
	}
}

// TestLateArrivalNotStarved: a tenant that goes idle and comes back must
// not be penalized for its idle time (start = max(vtime, lastVft)).
func TestLateArrivalNotStarved(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Push(1, 1, 100, nil)
	}
	for i := 0; i < 50; i++ {
		q.Pop()
	}
	// Tenant 2 arrives late; its first item should be served almost
	// immediately, not after tenant 1's whole backlog.
	q.Push(2, 1, 100, "late")
	var pos int
	for i := 0; ; i++ {
		it := q.Pop()
		if it == nil {
			t.Fatal("queue drained without serving the late arrival")
		}
		if it.Tenant == 2 {
			pos = i
			break
		}
	}
	if pos > 2 {
		t.Fatalf("late arrival served at position %d, want <= 2", pos)
	}
}

func TestRemove(t *testing.T) {
	q := New()
	a := q.Push(1, 1, 100, "a")
	b := q.Push(1, 1, 100, "b")
	q.Push(2, 1, 100, "c")
	if !q.Remove(b) {
		t.Fatal("Remove(b) = false")
	}
	if q.Remove(b) {
		t.Fatal("double Remove(b) = true")
	}
	if q.Len() != 2 || q.TenantLen(1) != 1 {
		t.Fatalf("Len=%d TenantLen(1)=%d after remove", q.Len(), q.TenantLen(1))
	}
	seen := map[string]bool{}
	for it := q.Pop(); it != nil; it = q.Pop() {
		seen[it.Value.(string)] = true
	}
	if !seen["a"] || !seen["c"] || seen["b"] {
		t.Fatalf("drained %v, want a and c only", seen)
	}
	_ = a
}

func TestClampedWeightAndCost(t *testing.T) {
	q := New()
	q.Push(1, 0, -5, "x") // weight clamps to 1, cost to 0
	it := q.Pop()
	if it == nil || it.Cost != 0 {
		t.Fatalf("got %+v, want cost 0", it)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	run := func() []uint64 {
		q := New()
		for i := 0; i < 20; i++ {
			q.Push(uint64(i%4), 1, 100, nil)
		}
		var order []uint64
		for it := q.Pop(); it != nil; it = q.Pop() {
			order = append(order, it.Tenant)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic pop order at %d: %v vs %v", i, a, b)
		}
	}
}
