package engine

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/policy"
)

func env(storageCores int) policy.Env {
	return policy.Env{
		Bandwidth:       netsim.Mbps(500),
		ComputeCores:    48,
		StorageCores:    storageCores,
		StorageSlowdown: 1,
		GPU:             gpu.AlexNet,
	}
}

func openImages(t testing.TB, n int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(n), 5)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func noOffPlan(t testing.TB, tr *dataset.Trace) *policy.Plan {
	t.Helper()
	p, err := policy.NewUniformPlan("No-Off", tr.N(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunValidation(t *testing.T) {
	tr := openImages(t, 50)
	plan := noOffPlan(t, tr)
	if _, err := Run(Config{Plan: plan, Env: env(0)}); err == nil {
		t.Fatal("accepted nil trace")
	}
	if _, err := Run(Config{Trace: tr, Env: env(0)}); err == nil {
		t.Fatal("accepted nil plan")
	}
	short, _ := policy.NewUniformPlan("s", 10, 0)
	if _, err := Run(Config{Trace: tr, Plan: short, Env: env(0)}); err == nil {
		t.Fatal("accepted mismatched plan")
	}
	if _, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), BatchSize: -1}); err == nil {
		t.Fatal("accepted negative batch")
	}
	if _, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), BatchSize: 64, PrefetchWindow: 32}); err == nil {
		t.Fatal("accepted window < batch")
	}
	bad := env(0)
	bad.Bandwidth = 0
	if _, err := Run(Config{Trace: tr, Plan: plan, Env: bad}); err == nil {
		t.Fatal("accepted invalid env")
	}
	all, _ := policy.NewUniformPlan("all", tr.N(), dataset.OpCount)
	if _, err := Run(Config{Trace: tr, Plan: all, Env: env(0)}); err == nil {
		t.Fatal("accepted offload plan with 0 storage cores")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := openImages(t, 500)
	plan := noOffPlan(t, tr)
	a, err := Run(Config{Trace: tr, Plan: plan, Env: env(4)})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(Config{Trace: tr, Plan: plan, Env: env(4)})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced %+v then %+v", a, b)
	}
}

// TestTrafficConservation is invariant #4: bytes crossing the link equal
// planned artifact sizes plus per-sample overhead, and link busy time equals
// traffic / bandwidth.
func TestTrafficConservation(t *testing.T) {
	tr := openImages(t, 400)
	plan := noOffPlan(t, tr)
	res, err := Run(Config{Trace: tr, Plan: plan, Env: env(0)})
	if err != nil {
		t.Fatal(err)
	}
	want := tr.TotalRawBytes() + int64(tr.N()*DefaultRequestOverhead)
	if res.TrafficBytes != want {
		t.Fatalf("traffic %d, want %d", res.TrafficBytes, want)
	}
	wantBusy := time.Duration(float64(want) / env(0).Bandwidth * float64(time.Second))
	diff := res.LinkBusy - wantBusy
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("link busy %v, want %v", res.LinkBusy, wantBusy)
	}
	// Compute busy equals total preprocessing CPU (nothing offloaded).
	if res.ComputeBusy != tr.TotalPreprocessCPU() {
		t.Fatalf("compute busy %v, want %v", res.ComputeBusy, tr.TotalPreprocessCPU())
	}
	if res.StorageBusy != 0 || res.SamplesOffloaded != 0 {
		t.Fatal("no-off run used storage CPU")
	}
}

// TestEpochTimeTracksLinkWhenIOBound: for the I/O-bound paper setup, the
// epoch time is within a few percent of the pure transfer time.
func TestEpochTimeTracksLinkWhenIOBound(t *testing.T) {
	tr := openImages(t, 2000)
	plan := noOffPlan(t, tr)
	res, err := Run(Config{Trace: tr, Plan: plan, Env: env(0)})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.EpochTime) / float64(res.LinkBusy)
	if ratio < 1.0 || ratio > 1.15 {
		t.Fatalf("epoch/link = %.3f, want just above 1 (pipeline drain only)", ratio)
	}
	if res.GPUUtilization > 0.25 {
		t.Fatalf("AlexNet under 500 Mbps shows %.2f utilization, want low", res.GPUUtilization)
	}
}

// TestGPUUtilizationFigure1d reproduces the figure's regime ordering.
func TestGPUUtilizationFigure1d(t *testing.T) {
	tr := openImages(t, 2000)
	plan := noOffPlan(t, tr)
	util := map[string]float64{}
	for _, m := range gpu.Models() {
		e := env(0)
		e.GPU = m
		res, err := Run(Config{Trace: tr, Plan: plan, Env: e})
		if err != nil {
			t.Fatal(err)
		}
		util[m.Name] = res.GPUUtilization
	}
	if util["resnet50"] < 0.85 {
		t.Fatalf("ResNet50 utilization %.2f, want near max", util["resnet50"])
	}
	if util["resnet18"] < 0.25 || util["resnet18"] > 0.50 {
		t.Fatalf("ResNet18 utilization %.2f, want ~0.35", util["resnet18"])
	}
	if util["alexnet"] > 0.20 {
		t.Fatalf("AlexNet utilization %.2f, want low", util["alexnet"])
	}
}

// TestPolicyOrderingAmpleCores reproduces Figure 3 (OpenImages, 48 cores):
// SOPHON ≤ Resize-Off < No-Off ≈ FastFlow < All-Off on epoch time.
func TestPolicyOrderingAmpleCores(t *testing.T) {
	tr := openImages(t, 3000)
	e := env(48)
	times := map[string]time.Duration{}
	for _, p := range policy.All() {
		res, _, err := RunPolicy(p, tr, e, 256)
		if err != nil {
			t.Fatal(err)
		}
		times[p.Name()] = res.EpochTime
	}
	if !(times["SOPHON"] < times["No-Off"]) {
		t.Fatalf("SOPHON %v not faster than No-Off %v", times["SOPHON"], times["No-Off"])
	}
	if !(times["All-Off"] > times["No-Off"]) {
		t.Fatalf("All-Off %v not slower than No-Off %v", times["All-Off"], times["No-Off"])
	}
	if times["FastFlow"] != times["No-Off"] {
		t.Fatalf("FastFlow %v != No-Off %v (it declines offloading)", times["FastFlow"], times["No-Off"])
	}
	if !(times["SOPHON"] <= times["Resize-Off"]) {
		t.Fatalf("SOPHON %v slower than Resize-Off %v with ample cores", times["SOPHON"], times["Resize-Off"])
	}
	// Headline: 1.2-2.2x improvement over No-Off on OpenImages.
	speedup := float64(times["No-Off"]) / float64(times["SOPHON"])
	if speedup < 1.5 || speedup > 2.6 {
		t.Fatalf("SOPHON speedup %.2fx, want ~2x", speedup)
	}
}

// TestResizeOffWeakStorageCrossover reproduces Figure 4's key crossover:
// with ≤2 storage cores Resize-Off is slower than No-Off; with ample cores
// it is faster.
func TestResizeOffWeakStorageCrossover(t *testing.T) {
	tr := openImages(t, 3000)
	noOff, _, err := RunPolicy(policy.NoOff{}, tr, env(48), 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2} {
		res, _, err := RunPolicy(policy.ResizeOff{}, tr, env(cores), 256)
		if err != nil {
			t.Fatal(err)
		}
		if res.EpochTime <= noOff.EpochTime {
			t.Fatalf("Resize-Off@%dcores %v not slower than No-Off %v",
				cores, res.EpochTime, noOff.EpochTime)
		}
	}
	rich, _, err := RunPolicy(policy.ResizeOff{}, tr, env(48), 256)
	if err != nil {
		t.Fatal(err)
	}
	if rich.EpochTime >= noOff.EpochTime {
		t.Fatalf("Resize-Off@48cores %v not faster than No-Off %v", rich.EpochTime, noOff.EpochTime)
	}
}

// TestSophonBestAcrossCoreCounts reproduces Figure 4's headline: SOPHON has
// the shortest epoch of all policies at every storage-core count, with
// diminishing returns as cores grow.
func TestSophonBestAcrossCoreCounts(t *testing.T) {
	tr := openImages(t, 3000)
	var prev time.Duration
	for _, cores := range []int{1, 2, 3, 4, 5} {
		e := env(cores)
		sophon, _, err := RunPolicy(policy.NewSophon(), tr, e, 256)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range policy.Baselines() {
			res, _, err := RunPolicy(p, tr, e, 256)
			if err != nil {
				t.Fatal(err)
			}
			// Allow 1% slack for pipeline-drain noise.
			if float64(sophon.EpochTime) > float64(res.EpochTime)*1.01 {
				t.Fatalf("cores=%d: SOPHON %v slower than %s %v",
					cores, sophon.EpochTime, p.Name(), res.EpochTime)
			}
		}
		if prev > 0 && sophon.EpochTime > prev+prev/50 {
			t.Fatalf("cores=%d: epoch %v regressed vs %v with more cores", cores, sophon.EpochTime, prev)
		}
		prev = sophon.EpochTime
	}
}

// TestDiminishingReturns: the 0→1 core gain exceeds the 4→5 core gain
// (paper: 22 s vs 9 s at full scale).
func TestDiminishingReturns(t *testing.T) {
	tr := openImages(t, 4000)
	run := func(cores int) time.Duration {
		res, _, err := RunPolicy(policy.NewSophon(), tr, env(cores), 256)
		if err != nil {
			t.Fatal(err)
		}
		return res.EpochTime
	}
	e0, e1, e4, e5 := run(0), run(1), run(4), run(5)
	gainFirst := e0 - e1
	gainLast := e4 - e5
	if gainFirst <= 0 {
		t.Fatalf("first core gained nothing: %v -> %v", e0, e1)
	}
	if gainLast >= gainFirst {
		t.Fatalf("no diminishing returns: 0→1 gains %v, 4→5 gains %v", gainFirst, gainLast)
	}
}

func TestStorageSlowdownHurts(t *testing.T) {
	tr := openImages(t, 1000)
	fast := env(2)
	slow := env(2)
	slow.StorageSlowdown = 3
	plan, err := policy.ResizeOff{}.Plan(tr, fast)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(Config{Trace: tr, Plan: plan, Env: fast})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(Config{Trace: tr, Plan: plan, Env: slow})
	if err != nil {
		t.Fatal(err)
	}
	if rs.StorageBusy <= rf.StorageBusy {
		t.Fatalf("slowdown did not stretch storage busy: %v vs %v", rs.StorageBusy, rf.StorageBusy)
	}
	if rs.EpochTime < rf.EpochTime {
		t.Fatalf("slower storage produced faster epoch: %v vs %v", rs.EpochTime, rf.EpochTime)
	}
}

func TestPartialLastBatch(t *testing.T) {
	tr := openImages(t, 130) // 130 samples, batch 64 → 3 batches (2 full + 1 partial)
	plan := noOffPlan(t, tr)
	res, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 3 {
		t.Fatalf("batches = %d, want 3", res.Batches)
	}
	wantGPU := gpu.AlexNet.BatchTime(64)*2 + gpu.AlexNet.BatchTime(2)
	if res.GPUBusy != wantGPU {
		t.Fatalf("GPU busy %v, want %v", res.GPUBusy, wantGPU)
	}
}

// TestShuffleDeterministicAndConservative: shuffling changes scheduling
// micro-structure but conserves traffic exactly, and the same seed replays
// identically.
func TestShuffleDeterministicAndConservative(t *testing.T) {
	tr := openImages(t, 800)
	plan := noOffPlan(t, tr)
	base, err := Run(Config{Trace: tr, Plan: plan, Env: env(0)})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), ShuffleSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), ShuffleSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same shuffle seed produced different results")
	}
	if a.TrafficBytes != base.TrafficBytes {
		t.Fatalf("shuffle changed traffic: %d vs %d", a.TrafficBytes, base.TrafficBytes)
	}
	if a.ComputeBusy != base.ComputeBusy || a.GPUBusy != base.GPUBusy {
		t.Fatal("shuffle changed total work")
	}
	// Epoch time may differ slightly but stays in the same regime.
	ratio := float64(a.EpochTime) / float64(base.EpochTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("shuffle moved epoch time by %.2fx", ratio)
	}
}

// TestMultiGPUScalesComputeBoundEpoch: for a GPU-bound workload, adding
// GPUs cuts the epoch roughly linearly; for an I/O-bound one it does
// nothing (the link is shared).
func TestMultiGPUScalesComputeBoundEpoch(t *testing.T) {
	tr := openImages(t, 2000)
	plan := noOffPlan(t, tr)

	gpuBound := env(0)
	gpuBound.GPU = gpu.ResNet50
	gpuBound.Bandwidth = netsim.Mbps(50000)
	one, err := Run(Config{Trace: tr, Plan: plan, Env: gpuBound})
	if err != nil {
		t.Fatal(err)
	}
	gpuBound.GPUCount = 4
	four, err := Run(Config{Trace: tr, Plan: plan, Env: gpuBound})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.EpochTime) / float64(four.EpochTime)
	if speedup < 3.0 || speedup > 4.2 {
		t.Fatalf("4-GPU speedup %.2fx on a compute-bound epoch", speedup)
	}
	if four.GPUUtilization > 1 {
		t.Fatalf("multi-GPU utilization %v > 1", four.GPUUtilization)
	}

	ioBound := env(0)
	ioBound.GPUCount = 4
	io4, err := Run(Config{Trace: tr, Plan: plan, Env: ioBound})
	if err != nil {
		t.Fatal(err)
	}
	ioBound.GPUCount = 1
	io1, err := Run(Config{Trace: tr, Plan: plan, Env: ioBound})
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(io1.EpochTime-io4.EpochTime) / float64(io1.EpochTime)
	if diff > 0.05 {
		t.Fatalf("extra GPUs changed an I/O-bound epoch by %.1f%%", diff*100)
	}
}

// TestRTTHiddenByPrefetch: with deep prefetch a multi-millisecond RTT
// barely moves an I/O-bound epoch; with no overlap (window == batch == 1)
// it dominates.
func TestRTTHiddenByPrefetch(t *testing.T) {
	tr := openImages(t, 500)
	plan := noOffPlan(t, tr)
	base, err := Run(Config{Trace: tr, Plan: plan, Env: env(0)})
	if err != nil {
		t.Fatal(err)
	}
	withRTT, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), RTT: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	slowdown := float64(withRTT.EpochTime) / float64(base.EpochTime)
	if slowdown > 1.05 {
		t.Fatalf("deep prefetch failed to hide RTT: %.3fx slowdown", slowdown)
	}
	serial, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), RTT: 5 * time.Millisecond,
		BatchSize: 1, PrefetchWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Serial fetching pays the RTT per sample: ≥ 500 × 5 ms on top.
	if serial.EpochTime < base.EpochTime+2*time.Second {
		t.Fatalf("serial fetch hid the RTT: %v vs %v", serial.EpochTime, base.EpochTime)
	}
}

func TestPrefetchWindowLimitsOverlap(t *testing.T) {
	// A tiny prefetch window should lengthen the epoch versus a deep one.
	tr := openImages(t, 1000)
	plan := noOffPlan(t, tr)
	deep, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), BatchSize: 32, PrefetchWindow: 512})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), BatchSize: 32, PrefetchWindow: 32})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.EpochTime < deep.EpochTime {
		t.Fatalf("shallow prefetch %v faster than deep %v", shallow.EpochTime, deep.EpochTime)
	}
}
