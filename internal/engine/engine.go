// Package engine is a discrete-event simulator of one training epoch over
// the disaggregated setup: storage-node CPU pool → capped network link →
// compute-node CPU pool → GPU with batch semantics. It replays a profiled
// trace under an offload plan and reports epoch time, per-resource busy
// time, and traffic — the quantities behind the paper's Figures 1d, 3, and
// 4. The live trainer (internal/trainsim) exercises the same policies over
// real sockets; the engine exists so full 40k–91k-sample epochs simulate in
// milliseconds, deterministically.
package engine

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/policy"
)

// Config describes one epoch simulation.
type Config struct {
	Trace *dataset.Trace
	Plan  *policy.Plan
	Env   policy.Env

	// BatchSize is the GPU batch size; 0 means 256.
	BatchSize int
	// PrefetchWindow bounds in-flight samples (loader prefetch depth);
	// 0 means 4×BatchSize. Must be ≥ BatchSize.
	PrefetchWindow int
	// RequestOverheadBytes is added per sample for protocol framing;
	// 0 means DefaultRequestOverhead.
	RequestOverheadBytes int
	// RTT is the request/response round-trip latency added to each fetch
	// before its transfer starts (propagation, not bandwidth). Deep
	// prefetching hides it almost entirely, as in real loaders.
	RTT time.Duration
	// ShuffleSeed, when non-zero, permutes the sample visit order the way
	// a real epoch shuffle does. Zero keeps trace order.
	ShuffleSeed uint64
	// Shards simulates a sharded storage tier: K independent storage-CPU
	// pools (Env.StorageCores each) and K independent links (Env.Bandwidth
	// each), with every sample served by the shard cluster.ShardMap places
	// it on. 0 or 1 reproduces the single-server setup exactly.
	Shards int
}

// DefaultRequestOverhead approximates the wire package's per-fetch framing
// (request frame + response header; the v3 request carries a 4-byte
// PlanVersion stamp).
const DefaultRequestOverhead = 53

// Result summarizes a simulated epoch.
type Result struct {
	EpochTime    time.Duration
	TrafficBytes int64

	StorageBusy time.Duration // summed storage-core busy time
	LinkBusy    time.Duration // link transmit time
	ComputeBusy time.Duration // summed compute-core busy time
	GPUBusy     time.Duration

	GPUUtilization   float64
	SamplesOffloaded int
	Batches          int
}

// multiServer models a k-server FIFO resource by tracking per-server free
// times in a min-heap.
type multiServer struct {
	free timeHeap
	busy time.Duration
}

type timeHeap []time.Duration

func (h timeHeap) Len() int            { return len(h) }
func (h timeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *timeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func newMultiServer(servers int) *multiServer {
	m := &multiServer{free: make(timeHeap, servers)}
	heap.Init(&m.free)
	return m
}

// schedule runs a job arriving at arrival for dur on the earliest-free
// server and returns its completion time.
func (m *multiServer) schedule(arrival, dur time.Duration) time.Duration {
	start := m.free[0]
	if arrival > start {
		start = arrival
	}
	end := start + dur
	m.free[0] = end
	heap.Fix(&m.free, 0)
	m.busy += dur
	return end
}

// Run simulates the epoch.
func Run(cfg Config) (Result, error) {
	if cfg.Trace == nil || cfg.Trace.N() == 0 {
		return Result{}, errors.New("engine: empty trace")
	}
	if cfg.Plan == nil {
		return Result{}, errors.New("engine: nil plan")
	}
	if err := cfg.Env.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Plan.N() != cfg.Trace.N() {
		return Result{}, fmt.Errorf("engine: plan covers %d samples, trace has %d", cfg.Plan.N(), cfg.Trace.N())
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = 256
	}
	if batch < 1 {
		return Result{}, fmt.Errorf("engine: batch size %d", batch)
	}
	window := cfg.PrefetchWindow
	if window == 0 {
		window = 4 * batch
	}
	if window < batch {
		return Result{}, fmt.Errorf("engine: prefetch window %d < batch %d", window, batch)
	}
	overhead := cfg.RequestOverheadBytes
	if overhead == 0 {
		overhead = DefaultRequestOverhead
	}

	n := cfg.Trace.N()
	offloaded := 0
	for i := 0; i < n; i++ {
		if cfg.Plan.Split(i) > 0 {
			offloaded++
		}
	}
	if offloaded > 0 && cfg.Env.StorageCores == 0 {
		return Result{}, errors.New("engine: plan offloads but storage has 0 cores")
	}

	if cfg.Shards < 0 {
		return Result{}, fmt.Errorf("engine: shard count %d", cfg.Shards)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	shardMap, err := cluster.NewShardMap(shards)
	if err != nil {
		return Result{}, err
	}

	// One storage pool and one link PER SHARD: a sample queues only behind
	// its own shard's work, which is how the sharded tier multiplies both
	// binding resources.
	storagePools := make([]*multiServer, shards)
	links := make([]*multiServer, shards)
	for s := 0; s < shards; s++ {
		if cfg.Env.StorageCores > 0 {
			storagePools[s] = newMultiServer(cfg.Env.StorageCores)
		}
		links[s] = newMultiServer(1)
	}
	computePool := newMultiServer(cfg.Env.ComputeCores)
	gpuPool := newMultiServer(cfg.Env.GPUs())

	// consumed[i] is when sample i's batch left the GPU; the loader may
	// only hold `window` samples in flight.
	consumed := make([]time.Duration, n)
	batchReady := time.Duration(0) // max ready time in the current batch
	batchStart := 0
	var traffic int64
	var lastGPUEnd time.Duration
	batches := 0

	flushBatch := func(upto int) {
		// Samples [batchStart, upto) form a batch; run it on the
		// earliest-free accelerator.
		size := upto - batchStart
		if size <= 0 {
			return
		}
		end := gpuPool.schedule(batchReady, cfg.Env.GPU.BatchTime(size))
		for i := batchStart; i < upto; i++ {
			consumed[i] = end
		}
		if end > lastGPUEnd {
			lastGPUEnd = end
		}
		batchStart = upto
		batchReady = 0
		batches++
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if cfg.ShuffleSeed != 0 {
		rng := rand.New(rand.NewPCG(cfg.ShuffleSeed, cfg.ShuffleSeed^0xb533_1157))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	for i := 0; i < n; i++ {
		var gate time.Duration
		if i >= window {
			gate = consumed[i-window]
		}
		rec := &cfg.Trace.Records[order[i]]
		split := cfg.Plan.Split(order[i])
		shard := shardMap.ShardOf(uint32(order[i]))

		// Storage-side prefix under the owning shard's core budget.
		t := gate
		if split > 0 {
			dur := time.Duration(float64(rec.PrefixTime(split)) * cfg.Env.StorageSlowdown)
			t = storagePools[shard].schedule(t, dur)
		}

		// Transfer over the owning shard's link, serialized at the
		// configured bandwidth. The RTT delays the transfer's start but
		// does not occupy the link.
		bytes := rec.StageSizes[split] + int64(overhead)
		traffic += bytes
		xfer := time.Duration(float64(bytes) / cfg.Env.Bandwidth * float64(time.Second))
		t = links[shard].schedule(t+cfg.RTT, xfer)

		// Local suffix on the compute pool.
		suffix := rec.TotalTime() - rec.PrefixTime(split)
		if suffix > 0 {
			t = computePool.schedule(t, suffix)
		}

		if t > batchReady {
			batchReady = t
		}
		if i-batchStart+1 == batch {
			flushBatch(i + 1)
		}
	}
	flushBatch(n) // trailing partial batch

	res := Result{
		EpochTime:        lastGPUEnd,
		TrafficBytes:     traffic,
		ComputeBusy:      computePool.busy,
		GPUBusy:          gpuPool.busy,
		SamplesOffloaded: offloaded,
		Batches:          batches,
	}
	for s := 0; s < shards; s++ {
		res.LinkBusy += links[s].busy
		if storagePools[s] != nil {
			res.StorageBusy += storagePools[s].busy
		}
	}
	if res.EpochTime > 0 {
		res.GPUUtilization = float64(res.GPUBusy) / float64(res.EpochTime) / float64(cfg.Env.GPUs())
	}
	return res, nil
}

// RunPolicy plans with p and simulates the resulting epoch — the common
// composition used by the evaluation harness.
func RunPolicy(p policy.Policy, tr *dataset.Trace, env policy.Env, batch int) (Result, *policy.Plan, error) {
	plan, err := p.Plan(tr, env)
	if err != nil {
		return Result{}, nil, err
	}
	res, err := Run(Config{Trace: tr, Plan: plan, Env: env, BatchSize: batch, Shards: env.ShardCount()})
	if err != nil {
		return Result{}, nil, err
	}
	return res, plan, nil
}
