// Package engine is a discrete-event simulator of one training epoch over
// the disaggregated setup: storage-node CPU pool → capped network link →
// compute-node CPU pool → GPU with batch semantics. It replays a profiled
// trace under an offload plan and reports epoch time, per-resource busy
// time, and traffic — the quantities behind the paper's Figures 1d, 3, and
// 4. The live trainer (internal/trainsim) exercises the same policies over
// real sockets; the engine exists so full 40k–91k-sample epochs simulate in
// milliseconds, deterministically.
package engine

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/policy"
	"repro/internal/prepsched"
)

// Config describes one epoch simulation.
type Config struct {
	Trace *dataset.Trace
	Plan  *policy.Plan
	Env   policy.Env

	// BatchSize is the GPU batch size; 0 means 256.
	BatchSize int
	// PrefetchWindow bounds in-flight samples (loader prefetch depth);
	// 0 means 4×BatchSize. Must be ≥ BatchSize.
	PrefetchWindow int
	// RequestOverheadBytes is added per sample for protocol framing;
	// 0 means DefaultRequestOverhead.
	RequestOverheadBytes int
	// RTT is the request/response round-trip latency added to each fetch
	// before its transfer starts (propagation, not bandwidth). Deep
	// prefetching hides it almost entirely, as in real loaders.
	RTT time.Duration
	// ShuffleSeed, when non-zero, permutes the sample visit order the way
	// a real epoch shuffle does. Zero keeps trace order.
	ShuffleSeed uint64
	// Shards simulates a sharded storage tier: K independent storage-CPU
	// pools (Env.StorageCores each) and K independent links (Env.Bandwidth
	// each), with every sample served by the shard cluster.ShardMap places
	// it on. 0 or 1 reproduces the single-server setup exactly.
	Shards int

	// Lookahead switches the loader model from the reactive global window
	// to clairvoyant per-shard scheduling: the epoch's access stream is
	// known up front (the shuffle is seeded), so each shard issues its own
	// positions in stream order, keeping up to Lookahead transfers in
	// flight on its link regardless of where the global consumption cursor
	// sits. 0 keeps the reactive window model. Mutually exclusive with a
	// non-zero PrefetchWindow (ErrLookaheadConfig).
	Lookahead int
	// LookaheadHorizon bounds how many stream positions ahead of
	// consumption any shard may issue (0 = unbounded). Must be ≥ the batch
	// size when set, so the gating position's batch has always flushed.
	LookaheadHorizon int
	// StagingBudgetBytes softly bounds the bytes fetched but not yet
	// consumed (0 = unbounded). Like the live scheduler's ledger it is
	// checked at issue time, so overshoot is bounded by in-flight work;
	// the consumption cursor's own fetch is always admitted.
	StagingBudgetBytes int64

	// PrepSched selects the local-preprocessing service model. The default,
	// PrepSchedShared, is the historical earliest-free shared pool of
	// Env.ComputeCores. PrepSchedFIFO statically assigns stream position i to
	// worker i%W (each worker a single-core FIFO queue — the head-of-line
	// blocking a real per-worker loader exhibits); PrepSchedSteal is the
	// work-conserving variance-aware model: a sample runs on its home worker
	// unless another worker frees up earlier, which counts as a steal.
	PrepSched PrepSchedModel
	// PrepWorkers is the per-worker model's worker count; 0 means
	// Env.ComputeCores. PrepSched≠Shared only (ErrPrepSchedConfig).
	PrepWorkers int
	// HeavyRatio is the heavy-classification threshold as a multiple of the
	// trace's mean preprocessing cost (prepsched.DefaultHeavyRatio when 0) —
	// it only affects Result.HeavySamples accounting, not scheduling.
	// PrepSched≠Shared only (ErrPrepSchedConfig).
	HeavyRatio float64

	// Fidelity, when non-nil, enables progressive byte accounting: a raw
	// (split-0) sample whose plan entry withholds scans ships only the
	// ladder's prefix fraction of its stored size, at zero storage-CPU cost
	// (the server slices, never re-encodes). nil ignores the plan's fidelity
	// dimension entirely, reproducing pre-progressive runs byte for byte.
	Fidelity *policy.FidelityModel
}

// PrepSchedModel names a local-preprocessing service model.
type PrepSchedModel int

// Local preprocessing service models.
const (
	// PrepSchedShared is the historical earliest-free shared core pool.
	PrepSchedShared PrepSchedModel = iota
	// PrepSchedFIFO pins stream position i to worker i%W, FIFO per worker.
	PrepSchedFIFO
	// PrepSchedSteal lets an idle worker take a queued sample from a busy
	// one: each sample starts on whichever worker frees up first, its home
	// worker preferred on ties.
	PrepSchedSteal
)

// String names the model for reports.
func (m PrepSchedModel) String() string {
	switch m {
	case PrepSchedShared:
		return "shared"
	case PrepSchedFIFO:
		return "fifo"
	case PrepSchedSteal:
		return "steal"
	default:
		return fmt.Sprintf("prepsched(%d)", int(m))
	}
}

// ErrPrepSchedConfig marks contradictory preprocessing-scheduler knobs:
// an unknown PrepSched model, or per-worker knobs set under the shared pool.
var ErrPrepSchedConfig = errors.New("engine: prepsched knobs conflict")

// ErrLookaheadConfig marks contradictory loader knobs: a clairvoyant
// lookahead combined with a reactive prefetch window, or lookahead-only
// knobs (horizon, staging budget) without Lookahead.
var ErrLookaheadConfig = errors.New("engine: lookahead and reactive window knobs conflict")

// DefaultRequestOverhead approximates the wire package's per-fetch framing
// (request frame + response header; the v3 request carries a 4-byte
// PlanVersion stamp).
const DefaultRequestOverhead = 53

// Result summarizes a simulated epoch.
type Result struct {
	EpochTime    time.Duration
	TrafficBytes int64

	StorageBusy time.Duration // summed storage-core busy time
	LinkBusy    time.Duration // link transmit time
	ComputeBusy time.Duration // summed compute-core busy time
	GPUBusy     time.Duration

	GPUUtilization   float64
	SamplesOffloaded int
	Batches          int

	// PerLinkIdle is each shard link's idle time inside its own active
	// period: lastTransferEnd − busy. Gaps here are transfers the link
	// could have run but the loader had not issued yet — the quantity the
	// clairvoyant scheduler drives to zero.
	PerLinkIdle []time.Duration
	// LinkIdleFrac is the mean per-link idle fraction of the epoch:
	// (Σ PerLinkIdle / K) / EpochTime.
	LinkIdleFrac float64

	// PerWorkerIdle is each preprocessing worker's stall time under the
	// per-worker models (PrepSched ≠ Shared): prepMakespan − busy, where
	// prepMakespan is the last local completion across all workers. A large
	// value is a worker that ran dry while another worker's queue — heavy
	// samples pinned behind the static assignment — still held the epoch
	// open; the imbalance work-stealing removes.
	PerWorkerIdle []time.Duration
	// WorkerStallFrac is the mean per-worker stalled fraction of the
	// preprocessing phase: (Σ PerWorkerIdle / W) / prepMakespan.
	WorkerStallFrac float64
	// Steals counts samples PrepSchedSteal ran away from their home worker.
	Steals int
	// HeavySamples counts trace records classified heavy at HeavyRatio ×
	// mean cost (0 under PrepSchedShared).
	HeavySamples int

	// MeanQuality is the plan's mean per-sample reconstruction quality under
	// the fidelity ladder (1 without a ladder or with no reduced samples).
	MeanQuality float64
	// SamplesReduced counts raw samples shipped at reduced fidelity.
	SamplesReduced int
	// FidelityBytesSaved is traffic avoided by withholding refinement scans
	// relative to shipping every raw sample in full.
	FidelityBytesSaved int64
}

// multiServer models a k-server FIFO resource by tracking per-server free
// times in a min-heap.
type multiServer struct {
	free timeHeap
	busy time.Duration
	last time.Duration // latest completion scheduled so far
}

type timeHeap []time.Duration

func (h timeHeap) Len() int            { return len(h) }
func (h timeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *timeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// prepWorkers models W single-core preprocessing workers individually —
// unlike multiServer's earliest-free pool, each worker has its own queue, so
// head-of-line blocking (FIFO) and its removal (steal) are visible per
// worker.
type prepWorkers struct {
	free, busy, last []time.Duration
}

func newPrepWorkers(w int) *prepWorkers {
	return &prepWorkers{
		free: make([]time.Duration, w),
		busy: make([]time.Duration, w),
		last: make([]time.Duration, w),
	}
}

// schedule runs stream position i's local suffix arriving at arrival. Under
// FIFO the sample queues on its home worker i%W no matter how backed up it
// is; under steal it runs on whichever worker starts it earliest, the home
// worker preferred on ties (so an idle home never counts as a steal).
// Reports the completion time and whether the sample was stolen.
func (p *prepWorkers) schedule(i int, arrival, dur time.Duration, steal bool) (time.Duration, bool) {
	home := i % len(p.free)
	w := home
	if steal {
		best := p.free[home]
		if arrival > best {
			best = arrival
		}
		for j := range p.free {
			start := p.free[j]
			if arrival > start {
				start = arrival
			}
			if start < best {
				best, w = start, j
			}
		}
	}
	start := p.free[w]
	if arrival > start {
		start = arrival
	}
	end := start + dur
	p.free[w] = end
	p.busy[w] += dur
	p.last[w] = end
	return end, w != home
}

func newMultiServer(servers int) *multiServer {
	m := &multiServer{free: make(timeHeap, servers)}
	heap.Init(&m.free)
	return m
}

// schedule runs a job arriving at arrival for dur on the earliest-free
// server and returns its completion time.
func (m *multiServer) schedule(arrival, dur time.Duration) time.Duration {
	start := m.free[0]
	if arrival > start {
		start = arrival
	}
	end := start + dur
	m.free[0] = end
	heap.Fix(&m.free, 0)
	m.busy += dur
	if end > m.last {
		m.last = end
	}
	return end
}

// Run simulates the epoch.
func Run(cfg Config) (Result, error) {
	if cfg.Trace == nil || cfg.Trace.N() == 0 {
		return Result{}, errors.New("engine: empty trace")
	}
	if cfg.Plan == nil {
		return Result{}, errors.New("engine: nil plan")
	}
	if err := cfg.Env.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Plan.N() != cfg.Trace.N() {
		return Result{}, fmt.Errorf("engine: plan covers %d samples, trace has %d", cfg.Plan.N(), cfg.Trace.N())
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = 256
	}
	if batch < 1 {
		return Result{}, fmt.Errorf("engine: batch size %d", batch)
	}
	if cfg.Lookahead < 0 {
		return Result{}, fmt.Errorf("engine: lookahead depth %d", cfg.Lookahead)
	}
	if cfg.Lookahead > 0 && cfg.PrefetchWindow > 0 {
		return Result{}, fmt.Errorf("%w: lookahead %d with reactive window %d", ErrLookaheadConfig, cfg.Lookahead, cfg.PrefetchWindow)
	}
	if cfg.Lookahead == 0 && (cfg.LookaheadHorizon != 0 || cfg.StagingBudgetBytes != 0) {
		return Result{}, fmt.Errorf("%w: horizon/staging budget set without lookahead", ErrLookaheadConfig)
	}
	if cfg.LookaheadHorizon < 0 || cfg.StagingBudgetBytes < 0 {
		return Result{}, fmt.Errorf("engine: negative lookahead horizon or staging budget")
	}
	if cfg.LookaheadHorizon > 0 && cfg.LookaheadHorizon < batch {
		return Result{}, fmt.Errorf("engine: lookahead horizon %d < batch %d", cfg.LookaheadHorizon, batch)
	}
	switch cfg.PrepSched {
	case PrepSchedShared:
		if cfg.PrepWorkers != 0 || cfg.HeavyRatio != 0 {
			return Result{}, fmt.Errorf("%w: PrepWorkers %d / HeavyRatio %v under the shared pool", ErrPrepSchedConfig, cfg.PrepWorkers, cfg.HeavyRatio)
		}
	case PrepSchedFIFO, PrepSchedSteal:
		if cfg.PrepWorkers < 0 {
			return Result{}, fmt.Errorf("engine: prep workers %d", cfg.PrepWorkers)
		}
		if cfg.HeavyRatio < 0 {
			return Result{}, fmt.Errorf("engine: heavy ratio %v", cfg.HeavyRatio)
		}
	default:
		return Result{}, fmt.Errorf("%w: unknown model %d", ErrPrepSchedConfig, int(cfg.PrepSched))
	}
	window := cfg.PrefetchWindow
	if cfg.Lookahead == 0 {
		if window == 0 {
			window = 4 * batch
		}
		if window < batch {
			return Result{}, fmt.Errorf("engine: prefetch window %d < batch %d", window, batch)
		}
	}
	overhead := cfg.RequestOverheadBytes
	if overhead == 0 {
		overhead = DefaultRequestOverhead
	}
	if cfg.Fidelity != nil {
		if err := cfg.Fidelity.Validate(); err != nil {
			return Result{}, err
		}
	}
	// xferBytes prices one sample's transfer: stage-split artifact plus
	// framing, with the raw container scaled to its fidelity prefix when the
	// ladder is enabled — the same rule policy.Plan.TrafficWith applies.
	xferBytes := func(rec *dataset.Record, id, split int) int64 {
		size := rec.StageSizes[split]
		if split == 0 && cfg.Fidelity != nil {
			size = cfg.Fidelity.BytesAt(size, cfg.Plan.FidelityOf(id))
		}
		return size + int64(overhead)
	}

	n := cfg.Trace.N()
	offloaded := 0
	for i := 0; i < n; i++ {
		if cfg.Plan.Split(i) > 0 {
			offloaded++
		}
	}
	if offloaded > 0 && cfg.Env.StorageCores == 0 {
		return Result{}, errors.New("engine: plan offloads but storage has 0 cores")
	}

	if cfg.Shards < 0 {
		return Result{}, fmt.Errorf("engine: shard count %d", cfg.Shards)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	shardMap, err := cluster.NewShardMap(shards)
	if err != nil {
		return Result{}, err
	}

	// One storage pool and one link PER SHARD: a sample queues only behind
	// its own shard's work, which is how the sharded tier multiplies both
	// binding resources.
	storagePools := make([]*multiServer, shards)
	links := make([]*multiServer, shards)
	for s := 0; s < shards; s++ {
		if cfg.Env.StorageCores > 0 {
			storagePools[s] = newMultiServer(cfg.Env.StorageCores)
		}
		links[s] = newMultiServer(1)
	}
	computePool := newMultiServer(cfg.Env.ComputeCores)
	gpuPool := newMultiServer(cfg.Env.GPUs())

	// Per-worker preprocessing model (FIFO or steal) plus a cost classifier
	// for the heavy-sample accounting.
	var prep *prepWorkers
	var classifier *prepsched.Classifier
	heavySamples, steals := 0, 0
	if cfg.PrepSched != PrepSchedShared {
		workers := cfg.PrepWorkers
		if workers == 0 {
			workers = cfg.Env.ComputeCores
		}
		prep = newPrepWorkers(workers)
		classifier, err = prepsched.FromTrace(cfg.Trace, cfg.HeavyRatio)
		if err != nil {
			return Result{}, err
		}
	}

	// consumed[i] is when sample i's batch left the GPU; the loader may
	// only hold `window` samples in flight.
	consumed := make([]time.Duration, n)
	batchReady := time.Duration(0) // max ready time in the current batch
	batchStart := 0
	var traffic, fidelitySaved int64
	samplesReduced := 0
	var lastGPUEnd time.Duration
	batches := 0

	flushBatch := func(upto int) {
		// Samples [batchStart, upto) form a batch; run it on the
		// earliest-free accelerator.
		size := upto - batchStart
		if size <= 0 {
			return
		}
		end := gpuPool.schedule(batchReady, cfg.Env.GPU.BatchTime(size))
		for i := batchStart; i < upto; i++ {
			consumed[i] = end
		}
		if end > lastGPUEnd {
			lastGPUEnd = end
		}
		batchStart = upto
		batchReady = 0
		batches++
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if cfg.ShuffleSeed != 0 {
		rng := rand.New(rand.NewPCG(cfg.ShuffleSeed, cfg.ShuffleSeed^0xb533_1157))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	// Clairvoyant issue state: each shard's transfer-end history (the depth
	// gate), and a prefix-sum byte ledger for the staging budget gate.
	var shardEnds [][]time.Duration
	var bytesPrefix []int64
	budgetLo := 0
	if cfg.Lookahead > 0 {
		shardEnds = make([][]time.Duration, shards)
		if cfg.StagingBudgetBytes > 0 {
			bytesPrefix = make([]int64, n+1)
			for i := 0; i < n; i++ {
				rec := &cfg.Trace.Records[order[i]]
				split := cfg.Plan.Split(order[i])
				bytesPrefix[i+1] = bytesPrefix[i] + xferBytes(rec, order[i], split)
			}
		}
	}

	for i := 0; i < n; i++ {
		rec := &cfg.Trace.Records[order[i]]
		split := cfg.Plan.Split(order[i])
		shard := shardMap.ShardOf(uint32(order[i]))

		var gate time.Duration
		if cfg.Lookahead > 0 {
			// Depth gate: this shard keeps at most Lookahead transfers in
			// flight; issue j waits for delivery of the shard's own j−D.
			if k := len(shardEnds[shard]); k >= cfg.Lookahead {
				gate = shardEnds[shard][k-cfg.Lookahead]
			}
			// Horizon gate: no shard runs more than H stream positions
			// ahead of the consumption cursor.
			if h := cfg.LookaheadHorizon; h > 0 && i >= h {
				if g := consumed[i-h]; g > gate {
					gate = g
				}
			}
			// Budget gate: positions [budgetLo, i] must fit in the staging
			// budget; everything before budgetLo has to be consumed first.
			// The cursor entry itself is always admitted (budgetLo ≤ i), and
			// positions still inside the unflushed batch gate at 0 — the
			// soft-budget overshoot bounded by in-flight work.
			if bytesPrefix != nil {
				for budgetLo < i && bytesPrefix[i+1]-bytesPrefix[budgetLo] > cfg.StagingBudgetBytes {
					budgetLo++
				}
				if budgetLo > 0 {
					if g := consumed[budgetLo-1]; g > gate {
						gate = g
					}
				}
			}
		} else if i >= window {
			gate = consumed[i-window]
		}

		// Storage-side prefix under the owning shard's core budget.
		t := gate
		if split > 0 {
			dur := time.Duration(float64(rec.PrefixTime(split)) * cfg.Env.StorageSlowdown)
			t = storagePools[shard].schedule(t, dur)
		}

		// Transfer over the owning shard's link, serialized at the
		// configured bandwidth. The RTT delays the transfer's start but
		// does not occupy the link.
		bytes := xferBytes(rec, order[i], split)
		if full := rec.StageSizes[split] + int64(overhead); bytes < full {
			fidelitySaved += full - bytes
			samplesReduced++
		}
		traffic += bytes
		xfer := time.Duration(float64(bytes) / cfg.Env.Bandwidth * float64(time.Second))
		t = links[shard].schedule(t+cfg.RTT, xfer)
		if shardEnds != nil {
			shardEnds[shard] = append(shardEnds[shard], t)
		}

		// Local suffix on the compute pool (or the per-worker model).
		suffix := rec.TotalTime() - rec.PrefixTime(split)
		if prep != nil {
			if classifier.Class(rec.TotalTime()) == prepsched.Heavy {
				heavySamples++
			}
			if suffix > 0 {
				var stole bool
				t, stole = prep.schedule(i, t, suffix, cfg.PrepSched == PrepSchedSteal)
				if stole {
					steals++
				}
			}
		} else if suffix > 0 {
			t = computePool.schedule(t, suffix)
		}

		if t > batchReady {
			batchReady = t
		}
		if i-batchStart+1 == batch {
			flushBatch(i + 1)
		}
	}
	flushBatch(n) // trailing partial batch

	res := Result{
		EpochTime:          lastGPUEnd,
		TrafficBytes:       traffic,
		ComputeBusy:        computePool.busy,
		GPUBusy:            gpuPool.busy,
		SamplesOffloaded:   offloaded,
		Batches:            batches,
		MeanQuality:        1,
		SamplesReduced:     samplesReduced,
		FidelityBytesSaved: fidelitySaved,
	}
	if cfg.Fidelity != nil {
		res.MeanQuality = cfg.Plan.MeanQuality(*cfg.Fidelity)
	}
	res.PerLinkIdle = make([]time.Duration, shards)
	var idleSum time.Duration
	for s := 0; s < shards; s++ {
		res.LinkBusy += links[s].busy
		res.PerLinkIdle[s] = links[s].last - links[s].busy
		idleSum += res.PerLinkIdle[s]
		if storagePools[s] != nil {
			res.StorageBusy += storagePools[s].busy
		}
	}
	if prep != nil {
		res.PerWorkerIdle = make([]time.Duration, len(prep.free))
		var makespan time.Duration
		for w := range prep.free {
			if prep.last[w] > makespan {
				makespan = prep.last[w]
			}
		}
		var workerIdle time.Duration
		res.ComputeBusy = 0
		for w := range prep.free {
			res.ComputeBusy += prep.busy[w]
			res.PerWorkerIdle[w] = makespan - prep.busy[w]
			workerIdle += res.PerWorkerIdle[w]
		}
		res.Steals = steals
		res.HeavySamples = heavySamples
		if makespan > 0 {
			res.WorkerStallFrac = float64(workerIdle) / float64(len(prep.free)) / float64(makespan)
		}
	}
	if res.EpochTime > 0 {
		res.GPUUtilization = float64(res.GPUBusy) / float64(res.EpochTime) / float64(cfg.Env.GPUs())
		res.LinkIdleFrac = float64(idleSum) / float64(shards) / float64(res.EpochTime)
	}
	return res, nil
}

// RunPolicy plans with p and simulates the resulting epoch — the common
// composition used by the evaluation harness.
func RunPolicy(p policy.Policy, tr *dataset.Trace, env policy.Env, batch int) (Result, *policy.Plan, error) {
	plan, err := p.Plan(tr, env)
	if err != nil {
		return Result{}, nil, err
	}
	res, err := Run(Config{Trace: tr, Plan: plan, Env: env, BatchSize: batch, Shards: env.ShardCount()})
	if err != nil {
		return Result{}, nil, err
	}
	return res, plan, nil
}
