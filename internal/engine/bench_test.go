package engine

import (
	"testing"

	"repro/internal/policy"
)

func BenchmarkEpochSimulation40k(b *testing.B) {
	tr := openImages(b, 40000)
	plan := noOffPlan(b, tr)
	cfg := Config{Trace: tr, Plan: plan, Env: env(4)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpochSimulationSophon40k(b *testing.B) {
	tr := openImages(b, 40000)
	e := env(4)
	plan, err := policy.NewSophon().Plan(tr, e)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Trace: tr, Plan: plan, Env: e}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanAndSimulate40k(b *testing.B) {
	tr := openImages(b, 40000)
	e := env(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunPolicy(policy.NewSophon(), tr, e, 256); err != nil {
			b.Fatal(err)
		}
	}
}
