package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/policy"
)

// Fleet replay: N concurrent training jobs over ONE shared storage tier.
// Every job keeps its own compute pool and accelerator, but all jobs queue
// on the same per-shard storage-CPU pools and links — the contention a
// multi-tenant cluster actually exhibits, which the single-job Run above
// cannot model. A deterministic round-robin interleave (jobs issue samples
// in lockstep, ties broken by admission order) makes same-seed replays
// bit-identical; FleetResult.Digest witnesses it.
//
// The shared cross-job artifact cache is modeled at the compute tier: jobs
// carrying the same non-zero Dataset key train on the same dataset, so once
// any of them has fetched a (sample, cut) artifact, later fetches of that
// key hit local memory — zero storage CPU, zero link bytes. Capacity is
// admit-until-full (the deterministic policy DL caches use under repeated
// full scans).

// FleetJob is one tenant of a fleet replay.
type FleetJob struct {
	Name  string
	Trace *dataset.Trace
	Plan  *policy.Plan
	// Dataset is the artifact share key; jobs with equal non-zero keys must
	// carry traces that agree on shared sample IDs (same dataset). 0 keeps
	// the job's artifacts private.
	Dataset uint64
}

// FleetConfig describes a fleet replay.
type FleetConfig struct {
	Jobs []FleetJob
	// Env supplies the SHARED tier: Bandwidth and StorageCores are the
	// per-shard budgets every job contends for. ComputeCores, GPU, and
	// GPUCount are per-job resources (each job owns its own copy).
	Env policy.Env
	// Shards is the storage server count (0 → Env.ShardCount()).
	Shards int
	// BatchSize is the per-job GPU batch (0 → 256).
	BatchSize int
	// PrefetchWindow bounds each job's in-flight samples (0 → 4×BatchSize).
	PrefetchWindow int
	// RequestOverheadBytes is per-sample protocol framing (0 → default).
	RequestOverheadBytes int
	// CacheBytes is the shared cross-job artifact cache capacity; 0
	// disables the cache entirely.
	CacheBytes int64
	// ShuffleSeed permutes each job's visit order (per-job streams derived
	// deterministically); 0 keeps trace order for every job.
	ShuffleSeed uint64
}

// FleetJobResult is one job's slice of a fleet replay.
type FleetJobResult struct {
	Name             string        `json:"name"`
	EpochTime        time.Duration `json:"epoch_time"`
	TrafficBytes     int64         `json:"traffic_bytes"`
	SamplesOffloaded int           `json:"samples_offloaded"`
	CacheHits        int64         `json:"cache_hits"`
	CacheMisses      int64         `json:"cache_misses"`
	BytesSaved       int64         `json:"bytes_saved"`
}

// FleetResult summarizes a fleet replay.
type FleetResult struct {
	Jobs []FleetJobResult `json:"jobs"`
	// Makespan is when the last job finished its epoch.
	Makespan time.Duration `json:"makespan"`
	// AggregateEpochTime sums per-job epoch times — the fleet-level
	// objective the coordinator minimizes.
	AggregateEpochTime time.Duration `json:"aggregate_epoch_time"`
	TrafficBytes       int64         `json:"traffic_bytes"`
	StorageBusy        time.Duration `json:"storage_busy"`
	LinkBusy           time.Duration `json:"link_busy"`
	CacheHits          int64         `json:"cache_hits"`
	CacheMisses        int64         `json:"cache_misses"`
	CacheBytesSaved    int64         `json:"cache_bytes_saved"`
	// Digest fingerprints the whole result; equal seeds must produce equal
	// digests (the determinism gate in CI asserts exactly this).
	Digest uint64 `json:"digest"`
}

// CacheHitRate returns hits / (hits + misses) across the fleet.
func (r FleetResult) CacheHitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// fleetJobState is one job's in-flight simulation state.
type fleetJobState struct {
	cfg      FleetJob
	order    []int
	next     int
	consumed []time.Duration
	compute  *multiServer
	gpu      *multiServer

	batchReady time.Duration
	batchStart int
	lastGPUEnd time.Duration

	res FleetJobResult
}

// gate returns when the job's loader may issue its next sample.
func (j *fleetJobState) gate(window int) time.Duration {
	if j.next >= window {
		return j.consumed[j.next-window]
	}
	return 0
}

// fleetCacheKey identifies one shared artifact inside the replay.
type fleetCacheKey struct {
	dataset uint64
	sample  uint32
	cut     uint8
}

// RunFleet replays one epoch of every job over the shared tier.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	if len(cfg.Jobs) == 0 {
		return FleetResult{}, errors.New("engine: fleet needs jobs")
	}
	if err := cfg.Env.Validate(); err != nil {
		return FleetResult{}, err
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = 256
	}
	if batch < 1 {
		return FleetResult{}, fmt.Errorf("engine: batch size %d", batch)
	}
	window := cfg.PrefetchWindow
	if window == 0 {
		window = 4 * batch
	}
	if window < batch {
		return FleetResult{}, fmt.Errorf("engine: prefetch window %d < batch %d", window, batch)
	}
	overhead := cfg.RequestOverheadBytes
	if overhead == 0 {
		overhead = DefaultRequestOverhead
	}
	if cfg.CacheBytes < 0 {
		return FleetResult{}, fmt.Errorf("engine: cache bytes %d", cfg.CacheBytes)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = cfg.Env.ShardCount()
	}
	shardMap, err := cluster.NewShardMap(shards)
	if err != nil {
		return FleetResult{}, err
	}

	// Shared tier: one storage pool and one link per shard, queued on by
	// EVERY job. Compute pools and GPUs are per job.
	storagePools := make([]*multiServer, shards)
	links := make([]*multiServer, shards)
	for s := 0; s < shards; s++ {
		if cfg.Env.StorageCores > 0 {
			storagePools[s] = newMultiServer(cfg.Env.StorageCores)
		}
		links[s] = newMultiServer(1)
	}

	jobs := make([]*fleetJobState, len(cfg.Jobs))
	seen := make(map[string]bool, len(cfg.Jobs))
	remaining := 0
	for i, jc := range cfg.Jobs {
		if jc.Name == "" {
			return FleetResult{}, fmt.Errorf("engine: fleet job %d has no name", i)
		}
		if seen[jc.Name] {
			return FleetResult{}, fmt.Errorf("engine: duplicate fleet job %q", jc.Name)
		}
		seen[jc.Name] = true
		if jc.Trace == nil || jc.Trace.N() == 0 {
			return FleetResult{}, fmt.Errorf("engine: fleet job %q has an empty trace", jc.Name)
		}
		if jc.Plan == nil {
			return FleetResult{}, fmt.Errorf("engine: fleet job %q has no plan", jc.Name)
		}
		if jc.Plan.N() != jc.Trace.N() {
			return FleetResult{}, fmt.Errorf("engine: fleet job %q: plan covers %d samples, trace has %d",
				jc.Name, jc.Plan.N(), jc.Trace.N())
		}
		n := jc.Trace.N()
		st := &fleetJobState{
			cfg:      jc,
			order:    make([]int, n),
			consumed: make([]time.Duration, n),
			compute:  newMultiServer(cfg.Env.ComputeCores),
			gpu:      newMultiServer(cfg.Env.GPUs()),
			res:      FleetJobResult{Name: jc.Name},
		}
		for k := range st.order {
			st.order[k] = k
		}
		if cfg.ShuffleSeed != 0 {
			// Independent per-job stream so jobs do not march in identical
			// sample order (which would overstate cache locality).
			s1 := cfg.ShuffleSeed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
			rng := rand.New(rand.NewPCG(s1, s1^0xb533_1157))
			rng.Shuffle(n, func(a, b int) { st.order[a], st.order[b] = st.order[b], st.order[a] })
		}
		for k := 0; k < n; k++ {
			if jc.Plan.Split(k) > 0 {
				st.res.SamplesOffloaded++
			}
		}
		if st.res.SamplesOffloaded > 0 && cfg.Env.StorageCores == 0 {
			return FleetResult{}, fmt.Errorf("engine: fleet job %q offloads but the tier has 0 cores", jc.Name)
		}
		jobs[i] = st
		remaining += n
	}

	cacheOn := cfg.CacheBytes > 0
	resident := make(map[fleetCacheKey]bool)
	var cacheBytes int64

	flushBatch := func(j *fleetJobState, upto int) {
		size := upto - j.batchStart
		if size <= 0 {
			return
		}
		end := j.gpu.schedule(j.batchReady, cfg.Env.GPU.BatchTime(size))
		for k := j.batchStart; k < upto; k++ {
			j.consumed[k] = end
		}
		if end > j.lastGPUEnd {
			j.lastGPUEnd = end
		}
		j.batchStart = upto
		j.batchReady = 0
	}

	// Deterministic interleave: each step issues the next sample of the job
	// with the earliest loader gate; among equally-gated jobs the one with
	// the fewest issued samples goes first (round-robin), then admission
	// order. With deep prefetch windows this opens as a strict round-robin
	// across the fleet, exactly how concurrent loaders share a tier.
	for remaining > 0 {
		best := -1
		var bestGate time.Duration
		for i, j := range jobs {
			if j.next >= len(j.order) {
				continue
			}
			g := j.gate(window)
			if best < 0 || g < bestGate ||
				(g == bestGate && j.next < jobs[best].next) {
				best = i
				bestGate = g
			}
		}
		j := jobs[best]
		id := j.order[j.next]
		rec := &j.cfg.Trace.Records[id]
		split := j.cfg.Plan.Split(id)
		shard := shardMap.ShardOf(uint32(id))

		t := bestGate
		key := fleetCacheKey{dataset: j.cfg.Dataset, sample: uint32(id), cut: uint8(split)}
		cached := cacheOn && j.cfg.Dataset != 0 && resident[key]
		if cached {
			// Shared-cache hit: another tenant of the share group already
			// pulled this artifact. No storage CPU, no link transfer.
			j.res.CacheHits++
			j.res.BytesSaved += rec.StageSizes[split] + int64(overhead)
		} else {
			if split > 0 {
				dur := time.Duration(float64(rec.PrefixTime(split)) * cfg.Env.StorageSlowdown)
				t = storagePools[shard].schedule(t, dur)
			}
			bytes := rec.StageSizes[split] + int64(overhead)
			j.res.TrafficBytes += bytes
			xfer := time.Duration(float64(bytes) / cfg.Env.Bandwidth * float64(time.Second))
			t = links[shard].schedule(t, xfer)
			if cacheOn && j.cfg.Dataset != 0 {
				j.res.CacheMisses++
				sz := rec.StageSizes[split]
				if cacheBytes+sz <= cfg.CacheBytes {
					resident[key] = true
					cacheBytes += sz
				}
			}
		}

		suffix := rec.TotalTime() - rec.PrefixTime(split)
		if suffix > 0 {
			t = j.compute.schedule(t, suffix)
		}
		if t > j.batchReady {
			j.batchReady = t
		}
		j.next++
		if j.next-j.batchStart == batch {
			flushBatch(j, j.next)
		}
		if j.next == len(j.order) {
			flushBatch(j, j.next) // trailing partial batch
		}
		remaining--
	}

	out := FleetResult{Jobs: make([]FleetJobResult, len(jobs))}
	h := fnv.New64a()
	for i, j := range jobs {
		j.res.EpochTime = j.lastGPUEnd
		out.Jobs[i] = j.res
		out.AggregateEpochTime += j.res.EpochTime
		out.TrafficBytes += j.res.TrafficBytes
		out.CacheHits += j.res.CacheHits
		out.CacheMisses += j.res.CacheMisses
		out.CacheBytesSaved += j.res.BytesSaved
		if j.res.EpochTime > out.Makespan {
			out.Makespan = j.res.EpochTime
		}
		fmt.Fprintf(h, "%s|%d|%d|%d|%d\n", j.res.Name, j.res.EpochTime.Nanoseconds(),
			j.res.TrafficBytes, j.res.CacheHits, j.res.BytesSaved)
	}
	for s := 0; s < shards; s++ {
		out.LinkBusy += links[s].busy
		if storagePools[s] != nil {
			out.StorageBusy += storagePools[s].busy
		}
	}
	fmt.Fprintf(h, "agg|%d|%d\n", out.AggregateEpochTime.Nanoseconds(), out.TrafficBytes)
	out.Digest = h.Sum64()
	return out, nil
}
