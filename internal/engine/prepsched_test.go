package engine

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/dataset"
)

// skewTrace makes heavyFrac of the samples costRatio× more expensive in
// every preprocessing op — the skewed service-time mix the variance-aware
// models are about. The heavy set is chosen by a seeded PCG so the mix is
// spread across stream positions.
func skewTrace(t testing.TB, n int, heavyFrac float64, costRatio int, seed uint64) *dataset.Trace {
	t.Helper()
	tr := openImages(t, n)
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	heavy := int(float64(n) * heavyFrac)
	for _, i := range rng.Perm(n)[:heavy] {
		for op := range tr.Records[i].OpTimes {
			tr.Records[i].OpTimes[op] *= time.Duration(costRatio)
		}
	}
	return tr
}

func TestPrepSchedValidation(t *testing.T) {
	tr := openImages(t, 40)
	plan := noOffPlan(t, tr)
	base := Config{Trace: tr, Plan: plan, Env: env(0)}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"unknown model", func(c *Config) { c.PrepSched = PrepSchedSteal + 1 }},
		{"negative model", func(c *Config) { c.PrepSched = -1 }},
		{"workers under shared", func(c *Config) { c.PrepWorkers = 8 }},
		{"heavy ratio under shared", func(c *Config) { c.HeavyRatio = 4 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrPrepSchedConfig) {
			t.Errorf("%s: err = %v, want ErrPrepSchedConfig", tc.name, err)
		}
	}
	// Plain negatives under a per-worker model are range errors, not a knob
	// conflict.
	cfg := base
	cfg.PrepSched = PrepSchedFIFO
	cfg.PrepWorkers = -1
	if _, err := Run(cfg); err == nil || errors.Is(err, ErrPrepSchedConfig) {
		t.Errorf("negative workers: err = %v", err)
	}
	cfg = base
	cfg.PrepSched = PrepSchedSteal
	cfg.HeavyRatio = -0.5
	if _, err := Run(cfg); err == nil || errors.Is(err, ErrPrepSchedConfig) {
		t.Errorf("negative heavy ratio: err = %v", err)
	}
}

// TestPrepSchedSharedUnchanged: the default config must reproduce the
// historical shared-pool result exactly — same epoch time, no per-worker
// accounting.
func TestPrepSchedSharedUnchanged(t *testing.T) {
	tr := openImages(t, 200)
	cfg := Config{Trace: tr, Plan: noOffPlan(t, tr), Env: env(0), BatchSize: 32}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PrepSched = PrepSchedShared // explicit zero value
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EpochTime != b.EpochTime || a.TrafficBytes != b.TrafficBytes {
		t.Fatalf("explicit shared model diverged: %v vs %v", a.EpochTime, b.EpochTime)
	}
	if a.PerWorkerIdle != nil || a.Steals != 0 || a.HeavySamples != 0 || a.WorkerStallFrac != 0 {
		t.Fatalf("shared run carries per-worker accounting: %+v", a)
	}
}

// TestPrepSchedStealBeatsFIFO is the model-level version of the BENCH_pr9
// claim: under a 95/5 light/heavy mix at 20× cost ratio, per-worker FIFO
// queues stall behind the heavy samples while work-stealing keeps every
// worker busy — steal must win on epoch time and on stall fraction, without
// touching traffic.
func TestPrepSchedStealBeatsFIFO(t *testing.T) {
	const n = 1000
	tr := skewTrace(t, n, 0.05, 20, 42)
	e := env(0)
	e.Bandwidth = e.Bandwidth * 1000 // compute-bound: the link never binds
	e.ComputeCores = 8
	base := Config{
		Trace:       tr,
		Plan:        noOffPlan(t, tr),
		Env:         e,
		BatchSize:   64,
		ShuffleSeed: 42,
		Lookahead:   8,
	}

	fifoCfg := base
	fifoCfg.PrepSched = PrepSchedFIFO
	fifo, err := Run(fifoCfg)
	if err != nil {
		t.Fatal(err)
	}
	stealCfg := base
	stealCfg.PrepSched = PrepSchedSteal
	steal, err := Run(stealCfg)
	if err != nil {
		t.Fatal(err)
	}

	if fifo.TrafficBytes != steal.TrafficBytes {
		t.Fatalf("scheduling changed traffic: %d vs %d", fifo.TrafficBytes, steal.TrafficBytes)
	}
	if fifo.HeavySamples != steal.HeavySamples {
		t.Fatalf("heavy accounting diverged: %d vs %d", fifo.HeavySamples, steal.HeavySamples)
	}
	if fifo.HeavySamples == 0 || fifo.HeavySamples >= n/2 {
		t.Fatalf("degenerate heavy count %d of %d", fifo.HeavySamples, n)
	}
	if fifo.Steals != 0 {
		t.Fatalf("FIFO stole %d samples", fifo.Steals)
	}
	if steal.Steals == 0 {
		t.Fatal("steal model never stole")
	}
	speedup := fifo.EpochTime.Seconds() / steal.EpochTime.Seconds()
	if speedup < 1.05 {
		t.Fatalf("steal speedup %.3fx over FIFO, want comfortably > 1", speedup)
	}
	if steal.WorkerStallFrac >= fifo.WorkerStallFrac {
		t.Fatalf("steal stall frac %.3f not below FIFO %.3f", steal.WorkerStallFrac, fifo.WorkerStallFrac)
	}
	if len(fifo.PerWorkerIdle) != 8 || len(steal.PerWorkerIdle) != 8 {
		t.Fatalf("per-worker idle lengths %d/%d, want 8", len(fifo.PerWorkerIdle), len(steal.PerWorkerIdle))
	}
}

// TestPrepSchedDeterministic: same seed, same result — the DES model has no
// hidden randomness.
func TestPrepSchedDeterministic(t *testing.T) {
	tr := skewTrace(t, 300, 0.1, 10, 7)
	cfg := Config{
		Trace: tr, Plan: noOffPlan(t, tr), Env: env(0),
		BatchSize: 32, ShuffleSeed: 9, Lookahead: 4,
		PrepSched: PrepSchedSteal, PrepWorkers: 6, HeavyRatio: 4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EpochTime != b.EpochTime || a.Steals != b.Steals || a.WorkerStallFrac != b.WorkerStallFrac {
		t.Fatalf("steal model nondeterministic: %+v vs %+v", a, b)
	}
	if len(a.PerWorkerIdle) != 6 {
		t.Fatalf("PrepWorkers override ignored: %d workers", len(a.PerWorkerIdle))
	}
}
