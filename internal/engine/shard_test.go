package engine

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/policy"
)

// TestRunShardedMatchesSingle: Shards 0 and 1 must simulate the identical
// epoch — sharding is strictly additive over the seed behaviour.
func TestRunShardedMatchesSingle(t *testing.T) {
	tr := openImages(t, 200)
	plan := noOffPlan(t, tr)
	base := Config{Trace: tr, Plan: plan, Env: env(0), BatchSize: 32}
	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.Shards = 1
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r0, r1) {
		t.Fatalf("Shards=1 result %+v differs from Shards=0 result %+v", r1, r0)
	}
}

func TestRunRejectsNegativeShards(t *testing.T) {
	tr := openImages(t, 50)
	if _, err := Run(Config{Trace: tr, Plan: noOffPlan(t, tr), Env: env(0), Shards: -1}); err == nil {
		t.Fatal("accepted negative shard count")
	}
}

// TestRunShardedMonotonic: on a link-bound workload, every added shard adds
// an independent link, so the simulated epoch must keep getting faster while
// total traffic stays identical.
func TestRunShardedMonotonic(t *testing.T) {
	tr := openImages(t, 400)
	plan := noOffPlan(t, tr)
	e := env(0)
	e.Bandwidth = netsim.Mbps(100) // slow per-shard link: I/O-bound through K=4

	var prev Result
	for k := 1; k <= 4; k++ {
		res, err := Run(Config{Trace: tr, Plan: plan, Env: e, BatchSize: 32, Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		if k > 1 {
			if res.EpochTime >= prev.EpochTime {
				t.Errorf("shards=%d: epoch %v not faster than %d-shard %v",
					k, res.EpochTime, k-1, prev.EpochTime)
			}
			if res.TrafficBytes != prev.TrafficBytes {
				t.Errorf("shards=%d: traffic %d changed from %d — sharding moved bytes",
					k, res.TrafficBytes, prev.TrafficBytes)
			}
		}
		prev = res
	}
}

// TestRunPolicyShardedEnv: RunPolicy must thread Env.Shards through to the
// simulation — a sharded env on a link-bound workload beats the same env
// with one shard.
func TestRunPolicyShardedEnv(t *testing.T) {
	tr := openImages(t, 300)
	e := env(8)
	e.Bandwidth = netsim.Mbps(100)
	single, _, err := RunPolicy(policy.NoOff{}, tr, e, 32)
	if err != nil {
		t.Fatal(err)
	}
	e.Shards = 4
	sharded, _, err := RunPolicy(policy.NoOff{}, tr, e, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.EpochTime >= single.EpochTime {
		t.Fatalf("4-shard epoch %v not faster than single-shard %v", sharded.EpochTime, single.EpochTime)
	}
}
