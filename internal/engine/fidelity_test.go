package engine

import (
	"reflect"
	"testing"

	"repro/internal/policy"
)

// fidelityPlan marks every sample raw with drop scans withheld.
func fidelityPlan(t testing.TB, n, drop int) *policy.Plan {
	t.Helper()
	p, err := policy.NewUniformPlan("Prog", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Fidelity = make([]uint8, n)
	for i := range p.Fidelity {
		p.Fidelity[i] = uint8(drop)
	}
	return p
}

// A fidelity-carrying plan simulated without a ladder must be byte-identical
// to the discrete plan — the dimension is invisible until priced — and with
// the ladder the traffic must match policy.TrafficWith exactly.
func TestFidelityByteAccounting(t *testing.T) {
	tr := openImages(t, 400)
	fm := policy.DefaultFidelityModel()
	plan := fidelityPlan(t, tr.N(), 2)

	off, err := Run(Config{Trace: tr, Plan: plan, Env: env(0)})
	if err != nil {
		t.Fatal(err)
	}
	discrete, err := Run(Config{Trace: tr, Plan: noOffPlan(t, tr), Env: env(0)})
	if err != nil {
		t.Fatal(err)
	}
	if off.TrafficBytes != discrete.TrafficBytes {
		t.Fatalf("un-priced fidelity changed traffic: %d vs %d", off.TrafficBytes, discrete.TrafficBytes)
	}
	if off.SamplesReduced != 0 || off.FidelityBytesSaved != 0 || off.MeanQuality != 1 {
		t.Fatalf("un-priced run reported fidelity effects: %+v", off)
	}

	on, err := Run(Config{Trace: tr, Plan: plan, Env: env(0), Fidelity: &fm})
	if err != nil {
		t.Fatal(err)
	}
	wantPayload, err := plan.TrafficWith(tr, fm)
	if err != nil {
		t.Fatal(err)
	}
	want := wantPayload + int64(tr.N()*DefaultRequestOverhead)
	if on.TrafficBytes != want {
		t.Fatalf("priced traffic %d, want %d (policy.TrafficWith)", on.TrafficBytes, want)
	}
	if on.TrafficBytes >= discrete.TrafficBytes {
		t.Fatal("withholding scans did not reduce traffic")
	}
	if on.SamplesReduced != tr.N() {
		t.Fatalf("SamplesReduced %d, want %d", on.SamplesReduced, tr.N())
	}
	if on.FidelityBytesSaved != discrete.TrafficBytes-on.TrafficBytes {
		t.Fatalf("FidelityBytesSaved %d, traffic delta %d", on.FidelityBytesSaved, discrete.TrafficBytes-on.TrafficBytes)
	}
	if q := plan.MeanQuality(fm); on.MeanQuality != q {
		t.Fatalf("MeanQuality %v, want %v", on.MeanQuality, q)
	}
	// Less traffic can only help the I/O-bound epoch.
	if on.EpochTime > discrete.EpochTime {
		t.Fatalf("reduced fidelity slowed the epoch: %v > %v", on.EpochTime, discrete.EpochTime)
	}
}

func TestFidelityDeterministicUnderShuffleAndLookahead(t *testing.T) {
	tr := openImages(t, 500)
	fm := policy.DefaultFidelityModel()
	plan := fidelityPlan(t, tr.N(), 1)
	cfg := Config{
		Trace: tr, Plan: plan, Env: env(4), Fidelity: &fm,
		ShuffleSeed: 7, Shards: 2, Lookahead: 8, StagingBudgetBytes: 64 << 20,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fidelity config produced %+v then %+v", a, b)
	}
	if a.SamplesReduced != tr.N() {
		t.Fatalf("SamplesReduced %d under shuffle", a.SamplesReduced)
	}
}

func TestFidelityRejectsBadLadder(t *testing.T) {
	tr := openImages(t, 20)
	bad := policy.FidelityModel{Levels: 2, ByteFrac: []float64{0.9, 0.5}, Quality: []float64{1, 1}}
	if _, err := Run(Config{Trace: tr, Plan: noOffPlan(t, tr), Env: env(0), Fidelity: &bad}); err == nil {
		t.Fatal("accepted non-monotone ladder")
	}
}
