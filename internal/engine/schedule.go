package engine

import (
	"errors"
	"fmt"

	"repro/internal/policy"
)

// Plan schedules let the DES replay an adaptive run deterministically: the
// controller's replan history maps plan versions to epoch ranges, and
// RunSchedule applies each epoch's governing plan against that epoch's true
// environment. An adaptive-vs-static comparison is then two RunSchedule
// calls over the same trace — one with the replanned schedule, one with a
// single-entry schedule — with no controller in the loop.

// PlanScheduleEntry applies Plan (published as Version) from FromEpoch
// until the next entry's FromEpoch.
type PlanScheduleEntry struct {
	FromEpoch uint64
	Version   uint32
	Plan      *policy.Plan
}

// PlanSchedule maps every epoch ≥ 1 to its governing plan.
type PlanSchedule struct {
	entries []PlanScheduleEntry
}

// NewPlanSchedule validates and wraps entries: the first must start at
// epoch 1 (every epoch needs a plan), FromEpoch must strictly increase, and
// all plans must cover the same sample count.
func NewPlanSchedule(entries []PlanScheduleEntry) (*PlanSchedule, error) {
	if len(entries) == 0 {
		return nil, errors.New("engine: empty plan schedule")
	}
	if entries[0].FromEpoch != 1 {
		return nil, fmt.Errorf("engine: schedule starts at epoch %d, want 1", entries[0].FromEpoch)
	}
	n := -1
	for i, e := range entries {
		if e.Plan == nil {
			return nil, fmt.Errorf("engine: schedule entry %d has nil plan", i)
		}
		if n == -1 {
			n = e.Plan.N()
		} else if e.Plan.N() != n {
			return nil, fmt.Errorf("engine: schedule entry %d covers %d samples, entry 0 covers %d", i, e.Plan.N(), n)
		}
		if i > 0 && e.FromEpoch <= entries[i-1].FromEpoch {
			return nil, fmt.Errorf("engine: schedule epoch %d does not follow %d", e.FromEpoch, entries[i-1].FromEpoch)
		}
	}
	out := make([]PlanScheduleEntry, len(entries))
	copy(out, entries)
	return &PlanSchedule{entries: out}, nil
}

// StaticSchedule wraps one plan as the schedule a non-adaptive run follows.
func StaticSchedule(plan *policy.Plan, version uint32) (*PlanSchedule, error) {
	return NewPlanSchedule([]PlanScheduleEntry{{FromEpoch: 1, Version: version, Plan: plan}})
}

// PlanAt returns the plan and version governing epoch (≥ 1).
func (s *PlanSchedule) PlanAt(epoch uint64) (*policy.Plan, uint32) {
	cur := s.entries[0]
	for _, e := range s.entries[1:] {
		if e.FromEpoch > epoch {
			break
		}
		cur = e
	}
	return cur.Plan, cur.Version
}

// Entries returns a copy of the schedule.
func (s *PlanSchedule) Entries() []PlanScheduleEntry {
	out := make([]PlanScheduleEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// EnvSchedule gives the true environment for each epoch, modeling mid-run
// reshapes (bandwidth changes, shard loss). It must be deterministic in
// epoch for replays to reproduce.
type EnvSchedule func(epoch uint64) policy.Env

// ScheduleConfig describes a multi-epoch simulation under a plan schedule.
type ScheduleConfig struct {
	// Base supplies the trace and tuning knobs; its Plan and Env fields are
	// ignored (the schedules below govern per epoch). Base.Shards 0 means
	// each epoch simulates the epoch env's ShardCount.
	Base Config
	// Epochs is how many epochs to simulate (≥ 1).
	Epochs int
	// Plans maps epochs to plans.
	Plans *PlanSchedule
	// EnvAt is the true environment per epoch; nil is invalid (a schedule
	// run exists to model changing conditions — pass a constant closure for
	// a fixed environment).
	EnvAt EnvSchedule
}

// EpochResult is one epoch of a schedule run.
type EpochResult struct {
	Epoch       uint64
	PlanVersion uint32
	Result
}

// RunSchedule simulates cfg.Epochs consecutive epochs, each under its
// governing plan and true environment.
func RunSchedule(cfg ScheduleConfig) ([]EpochResult, error) {
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("engine: %d epochs", cfg.Epochs)
	}
	if cfg.Plans == nil {
		return nil, errors.New("engine: nil plan schedule")
	}
	if cfg.EnvAt == nil {
		return nil, errors.New("engine: nil env schedule")
	}
	out := make([]EpochResult, 0, cfg.Epochs)
	for e := uint64(1); e <= uint64(cfg.Epochs); e++ {
		plan, version := cfg.Plans.PlanAt(e)
		env := cfg.EnvAt(e)
		run := cfg.Base
		run.Plan = plan
		run.Env = env
		if run.Shards == 0 {
			run.Shards = env.ShardCount()
		}
		res, err := Run(run)
		if err != nil {
			return nil, fmt.Errorf("engine: epoch %d: %w", e, err)
		}
		out = append(out, EpochResult{Epoch: e, PlanVersion: version, Result: res})
	}
	return out, nil
}
