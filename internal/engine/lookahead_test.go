package engine

import (
	"errors"
	"testing"
	"time"
)

func TestLookaheadValidation(t *testing.T) {
	tr := openImages(t, 50)
	plan := noOffPlan(t, tr)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative depth", Config{Trace: tr, Plan: plan, Env: env(0), Lookahead: -1}},
		{"depth+window", Config{Trace: tr, Plan: plan, Env: env(0), Lookahead: 4, PrefetchWindow: 64}},
		{"horizon without depth", Config{Trace: tr, Plan: plan, Env: env(0), LookaheadHorizon: 64}},
		{"budget without depth", Config{Trace: tr, Plan: plan, Env: env(0), StagingBudgetBytes: 1 << 20}},
		{"horizon < batch", Config{Trace: tr, Plan: plan, Env: env(0), Lookahead: 4, BatchSize: 32, LookaheadHorizon: 16}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	bad := Config{Trace: tr, Plan: plan, Env: env(0), Lookahead: 2, PrefetchWindow: 8}
	if _, err := Run(bad); !errors.Is(err, ErrLookaheadConfig) {
		t.Fatalf("conflict error = %v, want ErrLookaheadConfig", err)
	}
}

// TestLookaheadTrafficInvariant: the clairvoyant loader moves exactly the
// same bytes as the reactive one — it reorders fetches, it never adds any.
func TestLookaheadTrafficInvariant(t *testing.T) {
	tr := openImages(t, 800)
	plan := noOffPlan(t, tr)
	base := Config{Trace: tr, Plan: plan, Env: env(0), Shards: 4, ShuffleSeed: 9, BatchSize: 64}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	la := base
	la.Lookahead = 16
	r2, err := Run(la)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TrafficBytes != r1.TrafficBytes {
		t.Fatalf("lookahead traffic %d != reactive %d", r2.TrafficBytes, r1.TrafficBytes)
	}
	if r2.LinkBusy != r1.LinkBusy {
		t.Fatalf("lookahead link busy %v != reactive %v", r2.LinkBusy, r1.LinkBusy)
	}
	if r2.Batches != r1.Batches || r2.SamplesOffloaded != r1.SamplesOffloaded {
		t.Fatalf("lookahead batches/offload %d/%d != reactive %d/%d",
			r2.Batches, r2.SamplesOffloaded, r1.Batches, r1.SamplesOffloaded)
	}
}

// TestLookaheadDrivesLinkIdleDown is the PR's headline claim on the DES: for
// an I/O-bound sharded epoch, reactive windowed fetching leaves shard links
// idle (the global window stalls on the slowest shard) while the clairvoyant
// scheduler keeps every link saturated and finishes the epoch sooner.
func TestLookaheadDrivesLinkIdleDown(t *testing.T) {
	tr := openImages(t, 4000)
	plan := noOffPlan(t, tr)
	e := env(0)
	base := Config{Trace: tr, Plan: plan, Env: e, Shards: 4, ShuffleSeed: 7, BatchSize: 64, RTT: 200 * time.Microsecond}
	reactive, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	la := base
	la.Lookahead = 16
	clair, err := Run(la)
	if err != nil {
		t.Fatal(err)
	}
	if len(clair.PerLinkIdle) != 4 || len(reactive.PerLinkIdle) != 4 {
		t.Fatalf("per-link idle arity %d/%d", len(clair.PerLinkIdle), len(reactive.PerLinkIdle))
	}
	if clair.LinkIdleFrac >= 0.05 {
		t.Fatalf("clairvoyant link idle %.2f%%, want < 5%%", 100*clair.LinkIdleFrac)
	}
	if clair.LinkIdleFrac >= reactive.LinkIdleFrac {
		t.Fatalf("clairvoyant idle %.2f%% not below reactive %.2f%%",
			100*clair.LinkIdleFrac, 100*reactive.LinkIdleFrac)
	}
	if clair.EpochTime > reactive.EpochTime {
		t.Fatalf("clairvoyant epoch %v slower than reactive %v", clair.EpochTime, reactive.EpochTime)
	}
}

// TestLookaheadHorizonAndBudgetGate: tightening the horizon or the staging
// budget must slow the clairvoyant epoch back toward the reactive one (the
// gates really bind), while an unbounded run is the fastest.
func TestLookaheadHorizonAndBudgetGate(t *testing.T) {
	tr := openImages(t, 2000)
	plan := noOffPlan(t, tr)
	base := Config{Trace: tr, Plan: plan, Env: env(0), Shards: 4, ShuffleSeed: 3, BatchSize: 64, Lookahead: 16}
	free, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	tightH := base
	tightH.LookaheadHorizon = 64 // = one batch: barely ahead of the cursor
	hRes, err := Run(tightH)
	if err != nil {
		t.Fatal(err)
	}
	if hRes.EpochTime < free.EpochTime {
		t.Fatalf("tight horizon epoch %v faster than unbounded %v", hRes.EpochTime, free.EpochTime)
	}
	tightB := base
	tightB.StagingBudgetBytes = 1 << 20 // ~a handful of samples staged
	bRes, err := Run(tightB)
	if err != nil {
		t.Fatal(err)
	}
	if bRes.EpochTime < free.EpochTime {
		t.Fatalf("tight budget epoch %v faster than unbounded %v", bRes.EpochTime, free.EpochTime)
	}
	if bRes.TrafficBytes != free.TrafficBytes || hRes.TrafficBytes != free.TrafficBytes {
		t.Fatal("gates changed traffic")
	}
}
