package engine

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/policy"
)

func uniformPlan(t testing.TB, n, split int) *policy.Plan {
	t.Helper()
	p, err := policy.NewUniformPlan("sched", n, split)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanScheduleValidation(t *testing.T) {
	p := uniformPlan(t, 10, 0)
	if _, err := NewPlanSchedule(nil); err == nil {
		t.Fatal("accepted empty schedule")
	}
	if _, err := NewPlanSchedule([]PlanScheduleEntry{{FromEpoch: 2, Version: 1, Plan: p}}); err == nil {
		t.Fatal("accepted schedule not starting at epoch 1")
	}
	if _, err := NewPlanSchedule([]PlanScheduleEntry{{FromEpoch: 1, Version: 1}}); err == nil {
		t.Fatal("accepted nil plan")
	}
	if _, err := NewPlanSchedule([]PlanScheduleEntry{
		{FromEpoch: 1, Version: 1, Plan: p},
		{FromEpoch: 1, Version: 2, Plan: p},
	}); err == nil {
		t.Fatal("accepted non-increasing epochs")
	}
	if _, err := NewPlanSchedule([]PlanScheduleEntry{
		{FromEpoch: 1, Version: 1, Plan: p},
		{FromEpoch: 3, Version: 2, Plan: uniformPlan(t, 5, 0)},
	}); err == nil {
		t.Fatal("accepted mismatched plan sizes")
	}
}

func TestPlanSchedulePlanAt(t *testing.T) {
	p1 := uniformPlan(t, 10, 0)
	p2 := uniformPlan(t, 10, 1)
	p3 := uniformPlan(t, 10, 2)
	s, err := NewPlanSchedule([]PlanScheduleEntry{
		{FromEpoch: 1, Version: 1, Plan: p1},
		{FromEpoch: 4, Version: 2, Plan: p2},
		{FromEpoch: 7, Version: 5, Plan: p3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		epoch uint64
		plan  *policy.Plan
		ver   uint32
	}{
		{1, p1, 1}, {3, p1, 1}, {4, p2, 2}, {6, p2, 2}, {7, p3, 5}, {100, p3, 5},
	}
	for _, tc := range cases {
		plan, ver := s.PlanAt(tc.epoch)
		if plan != tc.plan || ver != tc.ver {
			t.Fatalf("PlanAt(%d) = (%p, %d), want (%p, %d)", tc.epoch, plan, ver, tc.plan, tc.ver)
		}
	}
}

// TestRunScheduleAppliesPerEpochPlanAndEnv: a two-entry schedule under a
// mid-run bandwidth reshape produces per-epoch results matching individual
// Run calls with the same plan and env.
func TestRunScheduleAppliesPerEpochPlanAndEnv(t *testing.T) {
	tr := openImages(t, 200)
	e := env(4)
	degraded := e
	degraded.Bandwidth = netsim.Mbps(250)
	p1 := noOffPlan(t, tr)
	p2 := uniformPlan(t, tr.N(), 1)

	sched, err := NewPlanSchedule([]PlanScheduleEntry{
		{FromEpoch: 1, Version: 1, Plan: p1},
		{FromEpoch: 3, Version: 2, Plan: p2},
	})
	if err != nil {
		t.Fatal(err)
	}
	envAt := func(epoch uint64) policy.Env {
		if epoch >= 3 {
			return degraded
		}
		return e
	}
	got, err := RunSchedule(ScheduleConfig{
		Base:   Config{Trace: tr},
		Epochs: 4,
		Plans:  sched,
		EnvAt:  envAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("%d epochs", len(got))
	}
	for _, r := range got {
		plan, ver := sched.PlanAt(r.Epoch)
		want, err := Run(Config{Trace: tr, Plan: plan, Env: envAt(r.Epoch)})
		if err != nil {
			t.Fatal(err)
		}
		if r.PlanVersion != ver || !reflect.DeepEqual(r.Result, want) {
			t.Fatalf("epoch %d: schedule run %+v, direct run %+v", r.Epoch, r.Result, want)
		}
	}
	// The reshape must be visible: epoch 1 (fast link, no offload) differs
	// from epoch 3 (slow link, offloaded).
	if got[0].EpochTime == got[2].EpochTime {
		t.Fatal("reshape invisible in schedule run")
	}
}

func TestRunScheduleValidation(t *testing.T) {
	tr := openImages(t, 50)
	sched, _ := StaticSchedule(noOffPlan(t, tr), 1)
	envAt := func(uint64) policy.Env { return env(0) }
	if _, err := RunSchedule(ScheduleConfig{Base: Config{Trace: tr}, Plans: sched, EnvAt: envAt}); err == nil {
		t.Fatal("accepted 0 epochs")
	}
	if _, err := RunSchedule(ScheduleConfig{Base: Config{Trace: tr}, Epochs: 2, EnvAt: envAt}); err == nil {
		t.Fatal("accepted nil plans")
	}
	if _, err := RunSchedule(ScheduleConfig{Base: Config{Trace: tr}, Epochs: 2, Plans: sched}); err == nil {
		t.Fatal("accepted nil env schedule")
	}
}
