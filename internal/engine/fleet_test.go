package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/policy"
)

func fleetJobs(t testing.TB, n int, samples int, shareKey uint64) []FleetJob {
	t.Helper()
	jobs := make([]FleetJob, n)
	for i := range jobs {
		tr, err := dataset.GenerateTrace(dataset.OpenImages12G().ScaledTo(samples), 100)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := policy.NewSophon().Plan(tr, env(4))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = FleetJob{
			Name:    "job" + string(rune('a'+i)),
			Trace:   tr,
			Plan:    plan,
			Dataset: shareKey,
		}
	}
	return jobs
}

func TestRunFleetValidation(t *testing.T) {
	jobs := fleetJobs(t, 1, 50, 0)
	if _, err := RunFleet(FleetConfig{Env: env(4)}); err == nil {
		t.Fatal("accepted empty fleet")
	}
	if _, err := RunFleet(FleetConfig{Jobs: jobs, Env: policy.Env{}}); err == nil {
		t.Fatal("accepted invalid env")
	}
	anon := []FleetJob{{Trace: jobs[0].Trace, Plan: jobs[0].Plan}}
	if _, err := RunFleet(FleetConfig{Jobs: anon, Env: env(4)}); err == nil {
		t.Fatal("accepted unnamed job")
	}
	dup := []FleetJob{jobs[0], jobs[0]}
	if _, err := RunFleet(FleetConfig{Jobs: dup, Env: env(4)}); err == nil {
		t.Fatal("accepted duplicate names")
	}
	short, _ := policy.NewUniformPlan("s", 10, 0)
	bad := []FleetJob{{Name: "bad", Trace: jobs[0].Trace, Plan: short}}
	if _, err := RunFleet(FleetConfig{Jobs: bad, Env: env(4)}); err == nil {
		t.Fatal("accepted mismatched plan")
	}
	if _, err := RunFleet(FleetConfig{Jobs: jobs, Env: env(0)}); err == nil {
		t.Fatal("accepted offloading plan on a 0-core tier")
	}
	if _, err := RunFleet(FleetConfig{Jobs: jobs, Env: env(4), CacheBytes: -1}); err == nil {
		t.Fatal("accepted negative cache capacity")
	}
}

// Same seed, same fleet → bit-identical digests. This is the CI determinism
// gate's contract.
func TestRunFleetDeterministic(t *testing.T) {
	jobs := fleetJobs(t, 4, 200, 7)
	cfg := FleetConfig{
		Jobs:        jobs,
		Env:         env(4),
		BatchSize:   64,
		CacheBytes:  64 << 20,
		ShuffleSeed: 42,
	}
	a, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests: %x vs %x", a.Digest, b.Digest)
	}
	cfg.ShuffleSeed = 43
	c, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds collided on the same digest")
	}
}

// A single-job fleet with no cache degenerates to the single-job engine: the
// epoch time must match Run's within the same model.
func TestRunFleetMatchesSingleJobEngine(t *testing.T) {
	jobs := fleetJobs(t, 1, 300, 0)
	e := env(4)
	fleet, err := RunFleet(FleetConfig{Jobs: jobs, Env: e, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Run(Config{Trace: jobs[0].Trace, Plan: jobs[0].Plan, Env: e, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Jobs[0].EpochTime != solo.EpochTime {
		t.Fatalf("fleet epoch %v vs solo epoch %v", fleet.Jobs[0].EpochTime, solo.EpochTime)
	}
	if fleet.TrafficBytes != solo.TrafficBytes {
		t.Fatalf("fleet traffic %d vs solo %d", fleet.TrafficBytes, solo.TrafficBytes)
	}
}

// Tenants of one share group hit the shared cache on each other's fetches;
// private jobs (Dataset 0) never do.
func TestRunFleetSharedCacheHits(t *testing.T) {
	shared := fleetJobs(t, 3, 150, 9)
	cfg := FleetConfig{Jobs: shared, Env: env(4), BatchSize: 32, CacheBytes: 1 << 30}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Fatal("overlapping tenants produced no shared-cache hits")
	}
	if res.CacheHitRate() < 0.5 {
		// 3 identical tenants with an unbounded cache: at most one miss per
		// (sample, cut), so the hit rate approaches 2/3.
		t.Fatalf("hit rate %.2f, want ≥ 0.5 for identical tenants", res.CacheHitRate())
	}
	if res.CacheBytesSaved == 0 {
		t.Fatal("hits saved no bytes")
	}

	private := fleetJobs(t, 3, 150, 0)
	cfg.Jobs = private
	res, err = RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Fatalf("private jobs touched the shared cache: %d hits %d misses",
			res.CacheHits, res.CacheMisses)
	}
}

// The cache cuts both traffic and epoch time for a network-bound share group.
func TestRunFleetCacheReducesTrafficAndTime(t *testing.T) {
	jobs := fleetJobs(t, 3, 200, 5)
	base := FleetConfig{Jobs: jobs, Env: env(4), BatchSize: 64}
	cold, err := RunFleet(base)
	if err != nil {
		t.Fatal(err)
	}
	base.CacheBytes = 1 << 30
	warm, err := RunFleet(base)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TrafficBytes >= cold.TrafficBytes {
		t.Fatalf("cache did not cut traffic: %d vs %d", warm.TrafficBytes, cold.TrafficBytes)
	}
	if warm.AggregateEpochTime >= cold.AggregateEpochTime {
		t.Fatalf("cache did not cut aggregate epoch time: %v vs %v",
			warm.AggregateEpochTime, cold.AggregateEpochTime)
	}
}

// A bounded cache admits until full and stays within capacity.
func TestRunFleetCacheRespectsCapacity(t *testing.T) {
	jobs := fleetJobs(t, 2, 200, 3)
	small := FleetConfig{Jobs: jobs, Env: env(4), BatchSize: 64, CacheBytes: 1 << 20}
	big := FleetConfig{Jobs: jobs, Env: env(4), BatchSize: 64, CacheBytes: 1 << 30}
	sRes, err := RunFleet(small)
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := RunFleet(big)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.CacheHits >= bRes.CacheHits {
		t.Fatalf("1MiB cache (%d hits) not worse than 1GiB (%d hits)",
			sRes.CacheHits, bRes.CacheHits)
	}
}

// 100-job smoke: the determinism digest holds at fleet scale.
func TestRunFleetHundredJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale replay")
	}
	var jobs []FleetJob
	for d := 0; d < 20; d++ {
		group := fleetJobs(t, 5, 40, uint64(d+1))
		for i := range group {
			group[i].Name = group[i].Name + "-" + string(rune('A'+d))
		}
		jobs = append(jobs, group...)
	}
	cfg := FleetConfig{
		Jobs:        jobs,
		Env:         env(8),
		BatchSize:   16,
		CacheBytes:  256 << 20,
		ShuffleSeed: 1,
	}
	a, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("100-job replay not deterministic: %x vs %x", a.Digest, b.Digest)
	}
	if len(a.Jobs) != 100 {
		t.Fatalf("replay covered %d jobs", len(a.Jobs))
	}
	if a.CacheHits == 0 {
		t.Fatal("20 share groups of 5 produced no cache hits")
	}
	if a.Makespan <= 0 || a.AggregateEpochTime < a.Makespan {
		t.Fatalf("inconsistent times: makespan %v aggregate %v", a.Makespan, a.AggregateEpochTime)
	}
}
