package dataset

import "testing"

func BenchmarkGenerateTrace40k(b *testing.B) {
	p := OpenImages12G()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinStageHistogram40k(b *testing.B) {
	tr, err := GenerateTrace(OpenImages12G(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.MinStageHistogram()
	}
}

func BenchmarkSyntheticImageRaw(b *testing.B) {
	set, err := NewSyntheticImageSet(SyntheticOptions{N: 16, Seed: 1, MinDim: 200, MaxDim: 400})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.Raw(i % 16); err != nil {
			b.Fatal(err)
		}
	}
}
