package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// TextProfile models an LLM pre-training shard workload — the scenario the
// paper's Discussion singles out as one SOPHON does not help: token shards
// are already densely packed binary, tokenization-style preprocessing barely
// changes their size, and no intermediate stage is smaller than the stored
// form.
type TextProfile struct {
	Name string
	N    int

	// Shard size in bytes: lognormal over ln-bytes.
	SizeMu    float64
	SizeSigma float64

	// PreprocessNsPerByte is the (cheap) per-byte cost of the shard
	// pipeline (parse, pack, shift labels), spread across the five op
	// slots so the record shape matches the image pipeline's.
	PreprocessNsPerByte float64
}

// TextShards1G is a representative 1 GB-scale LLM shard profile.
func TextShards1G() TextProfile {
	return TextProfile{
		Name:   "text-shards-1g",
		N:      4000,
		SizeMu: math.Log(256 << 10), SizeSigma: 0.15,
		PreprocessNsPerByte: 2,
	}
}

// GenerateTextTrace draws a trace whose samples never shrink during
// preprocessing: every stage ships essentially the stored bytes, so
// Candidates finds nothing to offload and SOPHON correctly degenerates to
// No-Off.
func GenerateTextTrace(p TextProfile, seed uint64) (*Trace, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("dataset: text profile %q has N=%d", p.Name, p.N)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x1ce4_e5b9))
	tr := &Trace{Name: p.Name, Records: make([]Record, p.N)}
	for i := 0; i < p.N; i++ {
		size := int64(math.Exp(p.SizeMu + p.SizeSigma*rng.NormFloat64()))
		if size < 1024 {
			size = 1024
		}
		perOp := time.Duration(p.PreprocessNsPerByte * float64(size) / OpCount)
		rec := Record{
			ID:      uint32(i),
			RawSize: size,
			Width:   0,
			Height:  0,
		}
		for k := 0; k < StageCount; k++ {
			// Token shards stay byte-for-byte the same size through the
			// pipeline (plus the artifact framing byte at stage 0).
			rec.StageSizes[k] = size + 1
		}
		for k := 0; k < OpCount; k++ {
			rec.OpTimes[k] = perOp
		}
		tr.Records[i] = rec
	}
	return tr, nil
}
