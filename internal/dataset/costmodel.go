package dataset

import "time"

// CostModel gives the per-op CPU cost law used by the trace generator and
// by the discrete-event engine when replaying profiled records. Constants
// are nanoseconds per unit and were calibrated so that (a) full-pipeline
// preprocessing of the OpenImages-12G profile takes ~15 ms/sample on one
// core — matching the paper's setup where 48 compute cores eliminate the
// preprocessing bottleneck while ≤2 storage cores create one — and (b) the
// Decode+RandomResizedCrop prefix costs ~13 ms/sample so Resize-Off beats
// No-Off only with ≥3 storage cores, as in Figure 4.
type CostModel struct {
	DecodePerPixel  float64 // ns per decoded pixel
	DecodePerByte   float64 // ns per raw (compressed) byte
	CropPerOutPixel float64 // ns per output pixel of RandomResizedCrop
	CropPerSrcPixel float64 // ns per source pixel of RandomResizedCrop
	FlipPerPixel    float64 // ns per pixel of RandomHorizontalFlip
	ToTensorPerPix  float64 // ns per pixel of ToTensor
	NormalizePerPix float64 // ns per pixel of Normalize
}

// DefaultCostModel is the calibrated cost law from DESIGN.md.
func DefaultCostModel() CostModel {
	return CostModel{
		DecodePerPixel:  8,
		DecodePerByte:   4,
		CropPerOutPixel: 20,
		CropPerSrcPixel: 1,
		FlipPerPixel:    4,
		ToTensorPerPix:  18,
		NormalizePerPix: 12,
	}
}

// Scaled returns the cost model with every constant multiplied by factor —
// used to model heterogeneous (slower or faster) storage-node CPUs.
func (m CostModel) Scaled(factor float64) CostModel {
	m.DecodePerPixel *= factor
	m.DecodePerByte *= factor
	m.CropPerOutPixel *= factor
	m.CropPerSrcPixel *= factor
	m.FlipPerPixel *= factor
	m.ToTensorPerPix *= factor
	m.NormalizePerPix *= factor
	return m
}

// OpTimes evaluates the cost law for a sample with the given raw byte size,
// decoded pixel count, and crop-output pixel count. jitter multiplies every
// op time (1 means none).
func (m CostModel) OpTimes(rawBytes, srcPixels, outPixels int64, jitter float64) [OpCount]time.Duration {
	ns := func(v float64) time.Duration { return time.Duration(v * jitter) }
	return [OpCount]time.Duration{
		ns(m.DecodePerPixel*float64(srcPixels) + m.DecodePerByte*float64(rawBytes)),
		ns(m.CropPerOutPixel*float64(outPixels) + m.CropPerSrcPixel*float64(srcPixels)),
		ns(m.FlipPerPixel * float64(outPixels)),
		ns(m.ToTensorPerPix * float64(outPixels)),
		ns(m.NormalizePerPix * float64(outPixels)),
	}
}
